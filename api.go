package provcompress

import (
	"fmt"
	"time"

	"provcompress/internal/analysis"
	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/metrics"
	"provcompress/internal/ndlog"
	"provcompress/internal/netsim"
	"provcompress/internal/provserve"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/trace"
	"provcompress/internal/types"
)

// Core data types.
type (
	// Value is a typed attribute value (int, string, or bool).
	Value = types.Value
	// Tuple is a relation instance; its first attribute is the location.
	Tuple = types.Tuple
	// ID is a 160-bit content hash (VID/RID/EVID).
	ID = types.ID
	// NodeAddr names a node of the distributed system.
	NodeAddr = types.NodeAddr
	// Program is a parsed NDlog program.
	Program = ndlog.Program
	// FuncMap registers user-defined functions callable from rule bodies.
	FuncMap = ndlog.FuncMap
	// Graph is an undirected network topology with link parameters.
	Graph = topo.Graph
	// Routes holds shortest-path next hops for every node pair.
	Routes = topo.Routes
	// Tree is a provenance tree (Appendix A of the paper).
	Tree = core.Tree
	// QueryResult is the outcome of a distributed provenance query.
	QueryResult = core.QueryResult
	// QueryCostModel calibrates query-time computation cost.
	QueryCostModel = core.QueryCostModel
	// Maintainer is a provenance maintenance scheme (ExSPAN, Basic,
	// Advanced).
	Maintainer = core.Maintainer
	// Runtime is the execution engine coupling a program, a network, and a
	// maintenance scheme.
	Runtime = engine.Runtime
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = types.Int
	// Str builds a string value.
	Str = types.String
	// Bool builds a boolean value.
	Bool = types.Bool
	// NewTuple builds a tuple from a relation name and values.
	NewTuple = types.NewTuple
	// HashTuple computes a tuple's VID.
	HashTuple = types.HashTuple
	// ZeroID is the absent identifier (query "all derivations").
	ZeroID = types.ZeroID
)

// Program handling.
var (
	// Parse parses NDlog source.
	Parse = ndlog.Parse
	// ParseDELP parses NDlog source and validates the DELP restriction
	// (Definition 1).
	ParseDELP = ndlog.ParseDELP
	// EquivalenceKeys runs the static analysis of Section 5.2, returning
	// the key attribute indexes of the program's input event relation.
	EquivalenceKeys = analysis.EquivalenceKeys
)

// DependencyDOT renders the attribute-level dependency graph of a program
// in Graphviz format (Figure 17 style).
func DependencyDOT(p *Program) string {
	return analysis.BuildGraph(p).DOT()
}

// Bundled applications (Figures 1 and 19, plus ARP, BGP, and gossip).
var (
	// ForwardingProgram returns the packet-forwarding DELP of Figure 1.
	ForwardingProgram = apps.Forwarding
	// DNSProgram returns the DNS resolution DELP of Figure 19.
	DNSProgram = apps.DNS
	// ARPProgram returns the ARP DELP.
	ARPProgram = apps.ARP
	// BGPProgram returns the BGP-style interdomain routing DELP.
	BGPProgram = apps.BGP
	// GossipProgram returns the epidemic rumor-dissemination DELP.
	GossipProgram = apps.Gossip
	// BuiltinFuncs returns the UDF registry the bundled programs need.
	BuiltinFuncs = apps.Funcs
)

// MergePrograms combines several DELPs into one rule set for joint
// deployment, sharing textually identical rules (Section 8 future work).
var MergePrograms = ndlog.MergePrograms

// NewMultiSystem deploys several DELPs jointly on one network: every
// program's rules fire on the shared event streams, provenance chains may
// interleave rules of different programs, and — under the Advanced schemes
// — chains shared across programs are stored once.
func NewMultiSystem(g *Graph, progs []*Program, scheme string, funcs FuncMap) (*System, error) {
	maint, err := core.NewScheme(scheme)
	if err != nil {
		return nil, err
	}
	if _, ok := maint.(*core.Advanced); ok {
		merged, err := ndlog.MergePrograms(progs...)
		if err != nil {
			return nil, err
		}
		if err := analysis.CheckAdvancedApplicableFor(merged, ndlog.InputEvents(progs...)); err != nil {
			return nil, err
		}
	}
	sched := &sim.Scheduler{}
	net := netsim.New(sched, g)
	rt, err := engine.NewMultiRuntime(net, progs, funcs, maint)
	if err != nil {
		return nil, err
	}
	return &System{Runtime: rt, Scheme: maint, sched: sched}, nil
}

// Topology constructors.
var (
	// NewGraph returns an empty topology.
	NewGraph = topo.NewGraph
	// Fig2 builds the paper's 3-node running example; Fig2Routes returns
	// its route table tuples.
	Fig2 = topo.Fig2
	// Fig2Routes returns the route tuples of Figure 2.
	Fig2Routes = topo.Fig2Routes
	// Line builds a chain topology.
	Line = topo.Line
	// GenTransitStub builds the Section 6.1 evaluation topology.
	GenTransitStub = topo.GenTransitStub
	// DefaultTransitStub is the paper's 100-node configuration.
	DefaultTransitStub = topo.DefaultTransitStub
	// GenDNSTree builds the Section 6.2 nameserver hierarchy.
	GenDNSTree = topo.GenDNSTree
	// DefaultDNSTree is the paper's 100-server configuration.
	DefaultDNSTree = topo.DefaultDNSTree
)

// Real-socket cluster deployment (the paper's Section 6.1.3 physical
// testbed): one TCP listener per node, binary frames on the wire, and a
// fault-tolerant transport with reconnection, retries, backoff, write
// deadlines, deterministic fault injection, and node crash/restart.
type (
	// Cluster is a set of live nodes on loopback TCP.
	Cluster = cluster.Cluster
	// ClusterNode is one cluster member (exposes Kill for crash testing).
	ClusterNode = cluster.Node
	// ClusterConfig describes the cluster to boot, including transport
	// tuning and an optional fault plan.
	ClusterConfig = cluster.Config
	// ClusterQueryResult is the outcome of a distributed query over TCP.
	ClusterQueryResult = cluster.QueryResult
	// TransportConfig tunes the cluster's fault-tolerant sender
	// (queue bound, retry budget, backoff, deadlines).
	TransportConfig = cluster.TransportConfig
	// TransportStats snapshots the transport counters (dials, redials,
	// retries, drops, suppressed duplicates, ...).
	TransportStats = cluster.TransportStats
	// FaultPlan deterministically injects transport faults (drops,
	// delays, one-shot connection resets) keyed off a seed.
	FaultPlan = cluster.FaultPlan
)

// NewCluster boots a real-socket cluster from a ClusterConfig.
var NewCluster = cluster.New

// Distributed tracing: set ClusterConfig.Tracer and one injected event or
// one distributed query yields a single parent-linked span tree across
// every node it touched, exportable as Chrome trace JSON
// (chrome://tracing / Perfetto).
type (
	// TraceCollector gathers spans from every node of a traced cluster.
	TraceCollector = trace.Collector
	// TraceSpan is one timed operation (inject, process, rule, walk,
	// query, reconstruct) on one node of a trace.
	TraceSpan = trace.Span
	// TraceID names one distributed trace (zero = untraced).
	TraceID = trace.TraceID
)

var (
	// NewTraceCollector builds a span collector (0 = default span budget).
	NewTraceCollector = trace.NewCollector
	// CheckTraceLinked verifies spans form one parent-linked tree.
	CheckTraceLinked = trace.CheckLinked
)

// Serving layer (cmd/provd): a long-lived HTTP/JSON daemon over live
// clusters with an epoch-invalidated result cache, a bounded query worker
// pool with admission control (429 + Retry-After on overload), Prometheus
// /metrics, and pprof.
type (
	// ServeConfig describes the daemon (clusters per scheme, pool and
	// queue sizes, cache capacity, query timeout).
	ServeConfig = provserve.Config
	// ProvServer is the daemon: an http.Handler plus its worker pool.
	ProvServer = provserve.Server
	// LoadConfig drives the Zipf-sampled query load generator.
	LoadConfig = provserve.LoadConfig
	// LoadReport is the generator's QPS + p50/p95/p99 summary.
	LoadReport = provserve.LoadReport
)

var (
	// NewProvServer builds the serving daemon and starts its worker pool.
	NewProvServer = provserve.New
	// RunLoad hammers a running daemon with Zipf-sampled queries.
	RunLoad = provserve.RunLoad
)

// Measurement helpers for serving-style workloads.
type (
	// Histogram is a fixed-bucket, concurrency-safe latency histogram
	// with p50/p95/p99 estimation and Prometheus exposition.
	Histogram = metrics.Histogram
	// MetricCounters is an ordered set of named int64 counters.
	MetricCounters = metrics.Counters
)

var (
	// NewHistogram builds a histogram over explicit bucket bounds.
	NewHistogram = metrics.NewHistogram
	// NewLatencyHistogram builds a histogram over the default latency
	// buckets (50µs..30s).
	NewLatencyHistogram = metrics.NewLatencyHistogram
	// WritePrometheus renders counters in Prometheus text exposition.
	WritePrometheus = metrics.WritePrometheus
)

// Scheme names accepted by NewSystem.
const (
	SchemeExSPAN   = core.SchemeExSPAN
	SchemeBasic    = core.SchemeBasic
	SchemeAdvanced = core.SchemeAdvanced
	// SchemeAdvancedInterClass additionally shares rule-execution nodes
	// across equivalence classes (Section 5.4).
	SchemeAdvancedInterClass = core.SchemeAdvancedInterClass
)

// System couples a DELP, a simulated network over a topology, and a
// provenance maintenance scheme, with a synchronous convenience API.
type System struct {
	// Runtime exposes the underlying engine for advanced use.
	Runtime *Runtime
	// Scheme is the provenance maintainer in use.
	Scheme Maintainer

	sched *sim.Scheduler
}

// NewSystem builds a ready-to-run system: one engine node per topology
// node, the program deployed on all of them, provenance maintained by the
// named scheme. funcs may be nil if the program calls no UDFs.
func NewSystem(g *Graph, prog *Program, scheme string, funcs FuncMap) (*System, error) {
	if err := prog.ValidateDELP(); err != nil {
		return nil, err
	}
	maint, err := core.NewScheme(scheme)
	if err != nil {
		return nil, err
	}
	if _, ok := maint.(*core.Advanced); ok {
		// Stage 3 requires outputs of one equivalence class to land on one
		// node; reject programs where the static analysis cannot show it.
		if err := analysis.CheckAdvancedApplicable(prog); err != nil {
			return nil, err
		}
	}
	sched := &sim.Scheduler{}
	net := netsim.New(sched, g)
	rt := engine.NewRuntime(net, prog, funcs, maint)
	return &System{Runtime: rt, Scheme: maint, sched: sched}, nil
}

// LoadBase installs base (slow-changing) tuples at the nodes named by
// their location specifiers.
func (s *System) LoadBase(tuples ...Tuple) error {
	return s.Runtime.LoadBase(tuples)
}

// Inject schedules an input event at the current virtual time.
func (s *System) Inject(ev Tuple) { s.Runtime.Inject(ev) }

// InjectAt schedules an input event at an absolute virtual time.
func (s *System) InjectAt(t time.Duration, ev Tuple) { s.Runtime.InjectAt(t, ev) }

// InsertSlow inserts into a slow-changing table at runtime (triggering the
// sig broadcast under Advanced, Section 5.5).
func (s *System) InsertSlow(t Tuple) { s.Runtime.InsertSlow(t) }

// DeleteSlow deletes from a slow-changing table at runtime.
func (s *System) DeleteSlow(t Tuple) { s.Runtime.DeleteSlow(t) }

// Run executes the simulation until quiescence and returns the first
// evaluation error, if any.
func (s *System) Run() error {
	s.sched.Run()
	if errs := s.Runtime.Errors(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// Now returns the current virtual time.
func (s *System) Now() time.Duration { return s.sched.Now() }

// Outputs returns the output tuples produced so far.
func (s *System) Outputs() []Tuple {
	outs := s.Runtime.Outputs()
	tuples := make([]Tuple, len(outs))
	for i, o := range outs {
		tuples[i] = o.Tuple
	}
	return tuples
}

// Query synchronously retrieves the provenance of an output tuple: it
// issues the distributed query, drives the simulation until the result
// arrives, and returns it. Pass ZeroID as evid to retrieve every stored
// derivation, or a specific event hash to select one (Section 5.6).
func (s *System) Query(out Tuple, evid ID) (QueryResult, error) {
	var res QueryResult
	done := false
	s.Scheme.QueryProvenance(out, evid, func(r QueryResult) { res = r; done = true })
	s.sched.Run()
	if !done {
		return QueryResult{}, fmt.Errorf("provcompress: query for %s did not complete", out)
	}
	return res, nil
}

// StorageBytes returns the provenance storage at one node.
func (s *System) StorageBytes(addr NodeAddr) int64 { return s.Scheme.StorageBytes(addr) }

// TotalStorageBytes returns the provenance storage across all nodes.
func (s *System) TotalStorageBytes() int64 { return s.Scheme.TotalStorageBytes() }

// NetworkBytes returns the total bytes carried on the wire so far.
func (s *System) NetworkBytes() int64 { return s.Runtime.Net.TotalBytes() }

// RunFor executes the simulation for d of virtual time.
func (s *System) RunFor(d time.Duration) error {
	s.sched.RunFor(d)
	if errs := s.Runtime.Errors(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// DumpTables renders the scheme's provenance tables for the given nodes in
// the paper's Tables 1-4 style (all nodes when none are named).
func (s *System) DumpTables(nodes ...NodeAddr) string {
	src, ok := s.Scheme.(core.TableSource)
	if !ok {
		return ""
	}
	if len(nodes) == 0 {
		nodes = s.Runtime.Net.Graph().Nodes()
	}
	return core.DumpTables(src, nodes)
}

// ReplayTrees reconstructs provenance by re-executing a program from its
// non-deterministic inputs (slow-changing tuples and one input event) —
// the reactive maintenance strategy of Section 3.2. It returns the trees
// of every derived tuple keyed by VID.
var ReplayTrees = core.ReplayTrees
