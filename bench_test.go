package provcompress

import (
	"fmt"
	"testing"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/experiments"
	"provcompress/internal/types"
)

// The benchmarks below regenerate every figure of the paper's evaluation
// section at reduced scale (one full experiment per iteration) and report
// the figure's headline quantity as custom metrics. cmd/provsim runs the
// same experiments at paper scale and prints the full series.

func benchForwardingCfg() experiments.ForwardingConfig {
	cfg := experiments.DefaultForwardingConfig()
	cfg.Pairs = 10
	cfg.Rate = 10
	cfg.Duration = 2 * time.Second
	cfg.Snapshots = 4
	return cfg
}

func benchDNSCfg() experiments.DNSConfig {
	cfg := experiments.DefaultDNSConfig()
	cfg.Tree.NumServers = 25
	cfg.Tree.MaxDepth = 8
	cfg.URLs = 10
	cfg.Rate = 100
	cfg.Duration = 2 * time.Second
	cfg.Snapshots = 4
	return cfg
}

// BenchmarkFig8PerNodeStorageGrowth reports the maximum per-node storage
// growth rate (bits/s) per scheme for the forwarding workload.
func BenchmarkFig8PerNodeStorageGrowth(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig8(benchForwardingCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		b.ReportMetric(res.PerScheme[s].Percentile(1), "max-bps-"+s)
	}
}

// BenchmarkFig9TotalStorage reports the final total storage per scheme.
func BenchmarkFig9TotalStorage(b *testing.B) {
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig9(benchForwardingCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		b.ReportMetric(res.PerScheme[s].Last(), "bytes-"+s)
	}
}

// BenchmarkFig10StorageVsPairs reports total storage at the largest pair
// count per scheme.
func BenchmarkFig10StorageVsPairs(b *testing.B) {
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig10(benchForwardingCfg(), 200, []int{5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		vals := res.Storage[s]
		b.ReportMetric(float64(vals[len(vals)-1]), "bytes-"+s)
	}
}

// BenchmarkFig11Bandwidth reports the total wire bytes per scheme and the
// Advanced route-update overhead percentage.
func BenchmarkFig11Bandwidth(b *testing.B) {
	var res *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig11(benchForwardingCfg(), 500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		b.ReportMetric(res.PerScheme[s].Last(), "wire-bytes-"+s)
	}
	b.ReportMetric(res.UpdateOverheadPct, "update-overhead-pct")
}

// BenchmarkFig12QueryLatency reports the median distributed query latency
// (ms) per scheme.
func BenchmarkFig12QueryLatency(b *testing.B) {
	cfg := benchForwardingCfg()
	cfg.Rate = 5
	cfg.Duration = time.Second
	var res *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig12(cfg, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		b.ReportMetric(res.PerScheme[s].Percentile(0.5), "median-ms-"+s)
	}
}

// BenchmarkFig13DNSPerNodeStorage reports the p80 per-nameserver storage
// growth rate per scheme.
func BenchmarkFig13DNSPerNodeStorage(b *testing.B) {
	var res *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig13(benchDNSCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		b.ReportMetric(res.PerScheme[s].Percentile(0.8), "p80-bps-"+s)
	}
}

// BenchmarkFig14DNSStorageVsURLs reports total storage at the largest URL
// count per scheme.
func BenchmarkFig14DNSStorageVsURLs(b *testing.B) {
	var res *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig14(benchDNSCfg(), 200, []int{2, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		vals := res.Storage[s]
		b.ReportMetric(float64(vals[len(vals)-1]), "bytes-"+s)
	}
}

// BenchmarkFig15DNSBandwidth reports total wire bytes per scheme; the
// Advanced overhead over ExSPAN is the paper's ~25% headline.
func BenchmarkFig15DNSBandwidth(b *testing.B) {
	cfg := benchDNSCfg()
	cfg.Duration = 0
	var res *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig15(cfg, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	ex := res.PerScheme[core.SchemeExSPAN].Last()
	for _, s := range core.SchemeNames() {
		b.ReportMetric(res.PerScheme[s].Last(), "wire-bytes-"+s)
	}
	if ex > 0 {
		b.ReportMetric((res.PerScheme[core.SchemeAdvanced].Last()-ex)/ex*100, "advanced-overhead-pct")
	}
}

// BenchmarkFig16DNSStorageGrowth reports the storage growth rate (bits/s)
// per scheme.
func BenchmarkFig16DNSStorageGrowth(b *testing.B) {
	var res *experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig16(benchDNSCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range core.SchemeNames() {
		b.ReportMetric(res.PerScheme[s].GrowthRate()*8, "growth-bps-"+s)
	}
}

// BenchmarkAblationInterClass reports the Section 5.4 split's storage
// saving on a convergent workload.
func BenchmarkAblationInterClass(b *testing.B) {
	var res *experiments.AblationICResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationInterClass(10, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Chained), "bytes-chained")
	b.ReportMetric(float64(res.InterClass), "bytes-interclass")
}

// BenchmarkAblationMetaOverhead reports the metadata overhead at zero and
// 500-byte payloads.
func BenchmarkAblationMetaOverhead(b *testing.B) {
	var res *experiments.AblationMetaResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationMetaOverhead([]int{0, 500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OverheadPct[0], "overhead-pct-0B")
	b.ReportMetric(res.OverheadPct[1], "overhead-pct-500B")
}

// BenchmarkCrossProgram measures joint deployment of forwarding plus a tap
// program (the Section 8 extension): per-packet storage with chains shared
// across programs.
func BenchmarkCrossProgram(b *testing.B) {
	tap, err := ParseDELP(`t1 mirror(@M, S, D, DT) :- packet(@L, S, D, DT), tap(@L, M).`)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewMultiSystem(Fig2(), []*Program{ForwardingProgram(), tap}, SchemeAdvanced, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.LoadBase(Fig2Routes()...); err != nil {
		b.Fatal(err)
	}
	if err := sys.LoadBase(NewTuple("tap", Str("n2"), Str("n3"))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Inject(NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str(fmt.Sprintf("p%d", i))))
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sys.TotalStorageBytes())/float64(b.N), "stored-bytes/pkt")
}

// --- microbenchmarks of the core data path ---

// benchSystem builds a 7-node line with one scheme and returns it.
func benchSystem(b *testing.B, scheme string) *System {
	b.Helper()
	g := Line(7, "n")
	sys, err := NewSystem(g, ForwardingProgram(), scheme, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.LoadBase(g.ShortestPaths().RouteTuples()...); err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkMaintainPerPacket measures the end-to-end cost (engine +
// maintenance) of pushing one packet through a 7-node path per scheme.
func BenchmarkMaintainPerPacket(b *testing.B) {
	for _, scheme := range []string{SchemeExSPAN, SchemeBasic, SchemeAdvanced} {
		b.Run(scheme, func(b *testing.B) {
			sys := benchSystem(b, scheme)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Inject(NewTuple("packet",
					Str("n0"), Str("n0"), Str("n6"), Str(fmt.Sprintf("p%d", i))))
				if err := sys.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sys.TotalStorageBytes())/float64(b.N), "stored-bytes/pkt")
		})
	}
}

// BenchmarkQueryPerScheme measures one distributed provenance query over a
// 7-node chain per scheme (wall-clock cost of the walk + reconstruction).
func BenchmarkQueryPerScheme(b *testing.B) {
	for _, scheme := range []string{SchemeExSPAN, SchemeBasic, SchemeAdvanced} {
		b.Run(scheme, func(b *testing.B) {
			sys := benchSystem(b, scheme)
			ev := NewTuple("packet", Str("n0"), Str("n0"), Str("n6"), Str("payload"))
			sys.Inject(ev)
			if err := sys.Run(); err != nil {
				b.Fatal(err)
			}
			out := sys.Outputs()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sys.Query(out, HashTuple(ev))
				if err != nil || len(res.Trees) != 1 {
					b.Fatalf("query: %v, %d trees", err, len(res.Trees))
				}
			}
		})
	}
}

// BenchmarkHashTuple measures VID computation on a packet-sized tuple.
func BenchmarkHashTuple(b *testing.B) {
	t := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str(string(make([]byte, 500))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HashTuple(t)
	}
}

// BenchmarkTupleEncode measures canonical encoding of a packet tuple.
func BenchmarkTupleEncode(b *testing.B) {
	t := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str(string(make([]byte, 500))))
	buf := make([]byte, 0, t.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = t.AppendEncode(buf[:0])
	}
	_ = buf
}

// BenchmarkEquivalenceKeys measures the static analysis on the DNS program
// (the larger of the two bundled DELPs).
func BenchmarkEquivalenceKeys(b *testing.B) {
	prog := DNSProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EquivalenceKeys(prog)
	}
}

var sinkID types.ID

// BenchmarkEquivalenceKeyCheck measures the Stage 1 runtime check: hashing
// the key attributes of an event tuple.
func BenchmarkEquivalenceKeyCheck(b *testing.B) {
	ev := NewTuple("packet", Str("n1"), Str("n1"), Str("n3"), Str(string(make([]byte, 500))))
	keys := EquivalenceKeys(ForwardingProgram())
	vals := make([]Value, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, k := range keys {
			vals[j] = ev.Args[k]
		}
		sinkID = types.HashValues(vals)
	}
}
