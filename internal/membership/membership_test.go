package membership

import (
	"fmt"
	"math/rand"
	"testing"

	"provcompress/internal/types"
	"provcompress/internal/wire"
)

func addr(i int) types.NodeAddr {
	return types.NodeAddr(fmt.Sprintf("n%d", i))
}

func TestStateRanks(t *testing.T) {
	// Left must outrank Down (graceful departure is terminal), Down must
	// outrank the live states (a suspicion beats a stale "up" at equal
	// epoch), and the live states must merge toward the later lifecycle
	// phase (Joining < Up < Leaving).
	order := []State{Joining, Up, Leaving, Down, Left}
	for i := 1; i < len(order); i++ {
		lo := Member{Addr: "a", Epoch: 7, State: order[i-1]}
		hi := Member{Addr: "a", Epoch: 7, State: order[i]}
		if !hi.supersedes(lo) {
			t.Errorf("%v should supersede %v at equal epoch", hi.State, lo.State)
		}
		if lo.supersedes(hi) {
			t.Errorf("%v should not supersede %v at equal epoch", lo.State, hi.State)
		}
	}
	// A higher epoch beats any state rank: refutation works.
	dead := Member{Addr: "a", Epoch: 3, State: Down}
	refuted := Member{Addr: "a", Epoch: 4, State: Up}
	if !refuted.supersedes(dead) {
		t.Error("higher epoch must beat Down")
	}
	if !Joining.Alive() || !Up.Alive() || !Leaving.Alive() || Down.Alive() || Left.Alive() {
		t.Error("Alive: want joining/up/leaving alive, down/left not")
	}
}

func TestViewSetAndMerge(t *testing.T) {
	v := NewView()
	if !v.Set(Member{Addr: "a", Epoch: 1, State: Up}) {
		t.Fatal("first Set must change the view")
	}
	if v.Set(Member{Addr: "a", Epoch: 1, State: Up}) {
		t.Fatal("identical Set must be a no-op")
	}
	if v.Set(Member{Addr: "a", Epoch: 0, State: Down}) {
		t.Fatal("older epoch must lose")
	}
	if !v.Set(Member{Addr: "a", Epoch: 1, State: Down}) {
		t.Fatal("same epoch, higher rank must win")
	}
	if v.Alive("a") {
		t.Fatal("down member reported alive")
	}
	if !v.Alive("unknown") {
		t.Fatal("unknown member must default to alive")
	}

	o := NewView()
	o.Set(Member{Addr: "a", Epoch: 2, State: Up})
	o.Set(Member{Addr: "b", Epoch: 1, State: Joining})
	if !v.Merge(o) {
		t.Fatal("merge with news must report a change")
	}
	if m, _ := v.Get("a"); m.Epoch != 2 || m.State != Up {
		t.Fatalf("a after merge = %+v, want epoch 2 up", m)
	}
	if v.Merge(o) {
		t.Fatal("repeated merge must be idempotent")
	}
}

// TestMergeConvergence drives random views through merges in random
// orders and asserts they all converge to the same state — the CRDT
// property the gossip layer depends on.
func TestMergeConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		// Random ground truth: 6 members with random epochs and states.
		updates := make([]Member, 0, 24)
		for i := 0; i < 6; i++ {
			for j := 0; j < 4; j++ {
				updates = append(updates, Member{
					Addr:  addr(i),
					Epoch: uint64(rng.Intn(5)),
					State: State(rng.Intn(5)),
				})
			}
		}
		// Three replicas each apply the updates in a different shuffle,
		// then merge pairwise in a random pattern.
		views := make([]*View, 3)
		for r := range views {
			views[r] = NewView()
			perm := rng.Perm(len(updates))
			for _, k := range perm {
				views[r].Set(updates[k])
			}
		}
		for step := 0; step < 10; step++ {
			a, b := rng.Intn(3), rng.Intn(3)
			views[a].Merge(views[b])
		}
		// Full pairwise exchange to finish.
		for a := range views {
			for b := range views {
				views[a].Merge(views[b])
			}
		}
		for r := 1; r < 3; r++ {
			if views[r].Version() != views[0].Version() {
				t.Fatalf("trial %d: replica %d version %d != replica 0 version %d",
					trial, r, views[r].Version(), views[0].Version())
			}
			a, b := views[0].Members(), views[r].Members()
			if len(a) != len(b) {
				t.Fatalf("trial %d: member count diverged", trial)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: member %d diverged: %+v vs %+v", trial, i, a[i], b[i])
				}
			}
		}
	}
}

func TestViewCodecRoundTrip(t *testing.T) {
	v := NewView()
	v.Set(Member{Addr: "n0", Epoch: 3, State: Up})
	v.Set(Member{Addr: "n1", Epoch: 1, State: Joining})
	v.Set(Member{Addr: "n2", Epoch: 9, State: Left})
	e := wire.NewEncoder(64)
	v.Encode(e)
	got, err := DecodeView(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != v.Version() || got.Len() != v.Len() {
		t.Fatalf("round trip lost data: %d/%d vs %d/%d",
			got.Version(), got.Len(), v.Version(), v.Len())
	}
	a, b := v.Members(), got.Members()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("member %d: %+v vs %+v", i, a[i], b[i])
		}
	}

	// Truncated input must error, not panic.
	if _, err := DecodeView(wire.NewDecoder(e.Bytes()[:5])); err == nil {
		t.Fatal("truncated view decoded without error")
	}
	// Absurd member count must be rejected before allocation.
	bad := wire.NewEncoder(16)
	bad.U8(viewCodecVersion)
	bad.U32(maxViewMembers + 1)
	if _, err := DecodeView(wire.NewDecoder(bad.Bytes())); err == nil {
		t.Fatal("oversized view decoded without error")
	}
}

func TestOwnersDeterministicAndStable(t *testing.T) {
	members := make([]types.NodeAddr, 10)
	for i := range members {
		members[i] = addr(i)
	}
	key := []byte("partition-key-7")
	a := Owners(key, 3, members)
	b := Owners(key, 3, members)
	if len(a) != 3 {
		t.Fatalf("want 3 owners, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Owners must be deterministic")
		}
	}
	seen := map[types.NodeAddr]bool{}
	for _, o := range a {
		if seen[o] {
			t.Fatalf("duplicate owner %s", o)
		}
		seen[o] = true
	}
	// Shuffling the candidate list must not change the placement.
	shuffled := append([]types.NodeAddr(nil), members...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	c := Owners(key, 3, shuffled)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("Owners must be order-independent in candidates")
		}
	}
	if got := Owners(key, 5, members[:2]); len(got) != 2 {
		t.Fatalf("k beyond candidates: want 2, got %d", len(got))
	}
	if Owners(key, 0, members) != nil || Owners(key, 3, nil) != nil {
		t.Fatal("degenerate Owners calls must return nil")
	}
}

// TestOwnersMinimalMovement checks the rendezvous property the handoff
// protocol relies on: adding one member to an N-member ring reassigns
// roughly 1/(N+1) of the partitions and nothing else moves anywhere
// except to the new member.
func TestOwnersMinimalMovement(t *testing.T) {
	members := make([]types.NodeAddr, 10)
	for i := range members {
		members[i] = addr(i)
	}
	grown := append(append([]types.NodeAddr(nil), members...), addr(10))

	const keys = 2000
	moved := 0
	for k := 0; k < keys; k++ {
		id := types.HashBytes([]byte(fmt.Sprintf("key-%d", k)))
		before := PartitionOwner(id, members)
		after := PartitionOwner(id, grown)
		if before != after {
			moved++
			if after != addr(10) {
				t.Fatalf("key %d moved %s -> %s, not to the new member", k, before, after)
			}
		}
	}
	// Expect ~keys/11 ≈ 182 moves; allow a generous band.
	if moved < keys/20 || moved > keys/5 {
		t.Fatalf("moved %d of %d keys on single join; want roughly 1/11", moved, keys)
	}
}

func TestReplicasExcludePrimary(t *testing.T) {
	members := make([]types.NodeAddr, 6)
	for i := range members {
		members[i] = addr(i)
	}
	for _, p := range members {
		reps := Replicas(p, 2, members)
		if len(reps) != 2 {
			t.Fatalf("want 2 replicas for %s, got %d", p, len(reps))
		}
		for _, r := range reps {
			if r == p {
				t.Fatalf("replica set for %s contains the primary", p)
			}
		}
	}
	if got := Replicas("n0", 2, []types.NodeAddr{"n0"}); len(got) != 0 {
		t.Fatalf("single-member cluster must have no replicas, got %v", got)
	}
	if Replicas("n0", 0, members) != nil {
		t.Fatal("k=0 must return nil")
	}
}
