// Package membership is the elastic-cluster subsystem: a versioned view of
// the member set (who is in the cluster and in what lifecycle state) and a
// rendezvous-hash ownership map that places equivalence-key partitions and
// their replicas on members.
//
// The view is a state-based CRDT in the SWIM style: each member carries an
// epoch (its own incarnation counter) and a lifecycle state, and two views
// merge member-wise — the higher epoch wins, and at equal epochs the
// higher-ranked state wins. Merging is commutative, associative, and
// idempotent, so flooding view frames over the unreliable cluster
// transport converges regardless of ordering, duplication, or loss (any
// later exchange heals a lost frame). A member refutes a false suspicion
// by re-announcing itself at a higher epoch.
//
// Ownership uses highest-random-weight (rendezvous) hashing: every member
// scores against a partition key, the top score is the owner and the next
// k scores are its replicas. Placement is a pure function of (key, member
// list), so every node computes the same map from the same view with no
// coordinator, and adding or removing one member moves only ~1/N of the
// partitions (the minimal-movement property the handoff protocol relies
// on).
package membership

import (
	"fmt"
	"hash/fnv"
	"sort"

	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// State is a member's lifecycle state. The rank order matters: when two
// views disagree about a member at the same epoch, the higher-ranked
// state wins the merge. Down outranks the live states (a suspicion beats
// a stale "up" without consuming an epoch), and Left outranks Down (a
// graceful departure is terminal; a later dial failure to the gone node
// must not resurrect it as merely "down").
type State uint8

const (
	// Joining members are receiving partition handoffs and must not serve
	// queries yet.
	Joining State = iota
	// Up members are full participants.
	Up
	// Leaving members are draining: still serving, handing partitions off.
	Leaving
	// Down members are suspected crashed: skipped by query routing, their
	// partitions served by replicas until they refute at a higher epoch.
	Down
	// Left members departed gracefully after handoff; terminal.
	Left
)

var stateNames = [...]string{
	Joining: "joining",
	Up:      "up",
	Leaving: "leaving",
	Down:    "down",
	Left:    "left",
}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Alive reports whether a member in this state serves traffic: it can be
// dialed and owns (or is draining) its partitions.
func (s State) Alive() bool { return s == Joining || s == Up || s == Leaving }

// Member is one row of the view: a member address, the epoch of its most
// recent self- or suspicion-announcement, and its lifecycle state.
type Member struct {
	Addr  types.NodeAddr
	Epoch uint64
	State State
}

// supersedes reports whether m wins a merge against o (same address).
func (m Member) supersedes(o Member) bool {
	if m.Epoch != o.Epoch {
		return m.Epoch > o.Epoch
	}
	return m.State > o.State
}

// View is a versioned membership map. It is not safe for concurrent use;
// callers serialize access (internal/cluster guards each node's view with
// a mutex).
type View struct {
	members map[types.NodeAddr]Member
}

// NewView returns an empty view.
func NewView() *View {
	return &View{members: make(map[types.NodeAddr]Member)}
}

// Get returns a member row.
func (v *View) Get(addr types.NodeAddr) (Member, bool) {
	m, ok := v.members[addr]
	return m, ok
}

// Set installs a member row unconditionally if it supersedes the current
// row (or the member is unknown), reporting whether the view changed.
// Local authoritative updates (a node announcing itself, a detector
// raising a suspicion) go through Set; remote views go through Merge.
func (v *View) Set(m Member) bool {
	cur, ok := v.members[m.Addr]
	if ok && !m.supersedes(cur) {
		return false
	}
	v.members[m.Addr] = m
	return true
}

// Merge folds another view in member-wise, reporting whether anything
// changed. It is commutative, associative, and idempotent.
func (v *View) Merge(o *View) bool {
	return len(v.MergeDelta(o)) > 0
}

// MergeDelta is Merge returning the rows that actually superseded local
// state. Because the merge is row-wise, a view holding only those rows
// carries the full news of this merge: re-gossiping the delta instead of
// the whole view is what keeps an N-member convergence from moving
// O(N^2) view bytes.
func (v *View) MergeDelta(o *View) []Member {
	var delta []Member
	for _, m := range o.Members() {
		if v.Set(m) {
			delta = append(delta, m)
		}
	}
	return delta
}

// Clone returns an independent copy.
func (v *View) Clone() *View {
	c := &View{members: make(map[types.NodeAddr]Member, len(v.members))}
	for a, m := range v.members {
		c.members[a] = m
	}
	return c
}

// Members returns the rows sorted by address, for stable display and
// deterministic iteration.
func (v *View) Members() []Member {
	out := make([]Member, 0, len(v.members))
	for _, m := range v.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Len returns the number of known members (any state).
func (v *View) Len() int { return len(v.members) }

// Alive reports whether the view believes a member serves traffic.
// Unknown members are treated as alive: the view is advisory, and routing
// around a member requires positive evidence of its death, not absence of
// evidence.
func (v *View) Alive(addr types.NodeAddr) bool {
	m, ok := v.members[addr]
	return !ok || m.State.Alive()
}

// AliveAddrs returns the alive members' addresses, sorted.
func (v *View) AliveAddrs() []types.NodeAddr {
	var out []types.NodeAddr
	for a, m := range v.members {
		if m.State.Alive() {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Version summarizes the view's progress: the sum of member epochs and
// state ranks. It grows monotonically under Set/Merge (both only replace
// a row with a superseding one), so converged views report equal versions
// and a version increase means new information arrived.
func (v *View) Version() uint64 {
	var sum uint64
	for _, m := range v.members {
		sum += m.Epoch + uint64(m.State)
	}
	return sum
}

// viewCodecVersion tags the encoded view layout.
const viewCodecVersion = 1

// maxViewMembers bounds a decoded view; anything larger is corruption,
// not a plausible cluster.
const maxViewMembers = 1 << 20

// Encode serializes the view.
func (v *View) Encode(e *wire.Encoder) {
	e.U8(viewCodecVersion)
	e.U32(uint32(len(v.members)))
	for _, m := range v.Members() {
		e.Str(string(m.Addr))
		e.U64(m.Epoch)
		e.U8(uint8(m.State))
	}
}

// DecodeView rebuilds a view from its encoding.
func DecodeView(d *wire.Decoder) (*View, error) {
	if ver := d.U8(); d.Err() == nil && ver != viewCodecVersion {
		return nil, fmt.Errorf("membership: unsupported view version %d", ver)
	}
	n := d.U32()
	if n > maxViewMembers {
		return nil, fmt.Errorf("membership: view with %d members", n)
	}
	v := NewView()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var m Member
		m.Addr = types.NodeAddr(d.Str())
		m.Epoch = d.U64()
		m.State = State(d.U8())
		v.members[m.Addr] = m
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("membership: corrupt view: %w", err)
	}
	return v, nil
}

// --- Rendezvous (highest-random-weight) ownership ---

// score is the rendezvous weight of one (member, key) pair.
func score(addr types.NodeAddr, key []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr)) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})    //nolint:errcheck
	h.Write(key)          //nolint:errcheck
	return h.Sum64()
}

// Owners returns the top-k members for a partition key by rendezvous
// hashing, best first. Ties break by address so the order is total. The
// candidate list is typically the full member set regardless of liveness:
// placement must be stable across transient failures (a down member keeps
// its slot; readers skip to the next owner), and only actual membership
// changes (join/leave) move partitions.
func Owners(key []byte, k int, candidates []types.NodeAddr) []types.NodeAddr {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	type scored struct {
		addr types.NodeAddr
		s    uint64
	}
	ss := make([]scored, 0, len(candidates))
	for _, a := range candidates {
		ss = append(ss, scored{a, score(a, key)})
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].s != ss[j].s {
			return ss[i].s > ss[j].s
		}
		return ss[i].addr < ss[j].addr
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]types.NodeAddr, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].addr
	}
	return out
}

// Replicas returns the k replica holders for a member's partition: the
// best k candidates, by rendezvous over the member's own address as the
// partition key, excluding the member itself. In the located-data model
// (tuples live at the node their @-attribute names) a node's primary
// partition is the union of the equivalence-key partitions stored there,
// so the replica set is keyed by the node address.
func Replicas(primary types.NodeAddr, k int, candidates []types.NodeAddr) []types.NodeAddr {
	if k <= 0 {
		return nil
	}
	eligible := make([]types.NodeAddr, 0, len(candidates))
	for _, a := range candidates {
		if a != primary {
			eligible = append(eligible, a)
		}
	}
	return Owners([]byte(primary), k, eligible)
}

// PartitionOwner returns the single rendezvous owner of an equivalence-key
// partition among candidates ("" when there are none). The provsim scale
// experiments use it to measure partition movement under churn at 1000+
// members.
func PartitionOwner(eq types.ID, candidates []types.NodeAddr) types.NodeAddr {
	o := Owners(eq[:], 1, candidates)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
