// Package clusterboot is the shared bring-up path for the binaries that
// run a real-socket cluster (cmd/provquery, cmd/provd): one set of
// topology/scheme/fault-injection flags, one way to turn them into a
// running, route-loaded cluster. Keeping the construction in one place
// means the one-shot CLI and the long-lived daemon cannot drift in how
// they interpret the same flags.
package clusterboot

import (
	"flag"
	"fmt"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/cluster"
	"provcompress/internal/topo"
	"provcompress/internal/trace"
)

// Flags bundles the cluster bring-up options shared by the binaries.
type Flags struct {
	// Nodes is the cluster size; the topology is a chain n0--n1--...
	Nodes int
	// Scheme is the default provenance scheme (exspan, basic, advanced).
	Scheme string
	// Fault injection knobs (all zero means no FaultPlan).
	Drop       float64
	Delay      float64
	DelayFor   time.Duration
	ResetAfter int
	FaultSeed  int64
	// GraveyardCap bounds each node's deleted-tuple graveyard
	// (0 = unbounded; see engine.Database.SetGraveyardCap).
	GraveyardCap int
	// Tracer, when set programmatically by the binary (the -trace flags
	// differ per cmd, so it is not a shared flag), enables distributed
	// span collection on the booted cluster.
	Tracer *trace.Collector
}

// Register installs the shared flags on fs (use flag.CommandLine for a
// binary's global flag set) and returns the struct they populate.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Nodes, "nodes", 8, "cluster size (chain topology)")
	fs.StringVar(&f.Scheme, "scheme", "advanced", "provenance scheme: exspan, basic, or advanced")
	fs.Float64Var(&f.Drop, "drop", 0, "fault injection: per-attempt probability a frame write is dropped")
	fs.Float64Var(&f.Delay, "delay", 0, "fault injection: per-attempt probability a frame write stalls")
	fs.DurationVar(&f.DelayFor, "delay-for", 5*time.Millisecond, "fault injection: how long a stalled write waits")
	fs.IntVar(&f.ResetAfter, "reset-after", 0, "fault injection: reset each link once after N successful writes")
	fs.Int64Var(&f.FaultSeed, "fault-seed", 1, "fault injection: RNG seed (runs with the same seed inject the same faults)")
	fs.IntVar(&f.GraveyardCap, "graveyard-cap", 0, "max deleted tuples retained per node for provenance VID resolution (0 = unbounded)")
	return f
}

// Plan returns the FaultPlan the flags describe, or nil when no fault
// injection was requested.
func (f *Flags) Plan() *cluster.FaultPlan {
	if f.Drop <= 0 && f.Delay <= 0 && f.ResetAfter <= 0 {
		return nil
	}
	return &cluster.FaultPlan{
		Seed:       f.FaultSeed,
		Drop:       f.Drop,
		Delay:      f.Delay,
		DelayFor:   f.DelayFor,
		ResetAfter: f.ResetAfter,
	}
}

// Boot builds the chain topology, boots one cluster running the
// packet-forwarding DELP under the given scheme (empty means f.Scheme),
// and loads the shortest-path route table as base tuples. The caller owns
// the returned cluster and must Close it.
func (f *Flags) Boot(scheme string) (*cluster.Cluster, *topo.Graph, error) {
	if f.Nodes < 2 {
		return nil, nil, fmt.Errorf("clusterboot: need at least 2 nodes, have %d", f.Nodes)
	}
	if scheme == "" {
		scheme = f.Scheme
	}
	g := topo.Line(f.Nodes, "n")
	routes := g.ShortestPaths().RouteTuples()
	c, err := cluster.New(cluster.Config{
		Prog:         apps.Forwarding(),
		Funcs:        apps.Funcs(),
		Nodes:        g.Nodes(),
		Scheme:       scheme,
		Faults:       f.Plan(),
		Tracer:       f.Tracer,
		GraveyardCap: f.GraveyardCap,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := c.LoadBase(routes); err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, g, nil
}
