// Package clusterboot is the shared bring-up path for the binaries that
// run a real-socket cluster (cmd/provquery, cmd/provd): one set of
// topology/scheme/fault-injection flags, one way to turn them into a
// running, route-loaded cluster. Keeping the construction in one place
// means the one-shot CLI and the long-lived daemon cannot drift in how
// they interpret the same flags.
package clusterboot

import (
	"flag"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"provcompress/internal/cluster"
	"provcompress/internal/scenario"
	"provcompress/internal/store"
	"provcompress/internal/topo"
	"provcompress/internal/trace"
	"provcompress/internal/types"
)

// Flags bundles the cluster bring-up options shared by the binaries.
type Flags struct {
	// Nodes is the cluster size; the topology shape is the scenario's
	// (chain for forwarding/bgp, binary out-tree for gossip).
	Nodes int
	// App names the deployed scenario (see internal/scenario.Names).
	App string
	// Scheme is the default provenance scheme (exspan, basic, advanced).
	Scheme string
	// Fault injection knobs (all zero means no FaultPlan).
	Drop       float64
	Delay      float64
	DelayFor   time.Duration
	ResetAfter int
	FaultSeed  int64
	// GraveyardCap bounds each node's deleted-tuple graveyard
	// (0 = unbounded; see engine.Database.SetGraveyardCap).
	GraveyardCap int
	// Replicas is the k of k-way provenance replication: each member
	// ships its provenance records to k rendezvous-placed replicas, and
	// queries fail over to them when the owner is down (0 = off).
	Replicas int
	// Join lists member addresses to add elastically after boot
	// (comma-separated, e.g. "n8,n9"): each joins through the membership
	// protocol — view gossip, bootstrap partition handoff, then Up.
	Join string
	// DataDir, when non-empty, makes the cluster durable: each node keeps
	// a WAL + snapshots under DataDir/<scheme>/<node>/ and recovers from
	// them on boot and restart. Empty keeps the cluster in-memory only.
	DataDir string
	// Fsync selects the WAL sync policy (always, interval, off).
	Fsync string
	// FsyncInterval is the flush period under -fsync=interval.
	FsyncInterval time.Duration
	// SnapshotEvery checkpoints a node after this many WAL records
	// (0 = only explicit checkpoints, e.g. clean shutdown).
	SnapshotEvery int
	// WireBatch enables frame coalescing on the transport (the ingest
	// fast path: many sub-frames per delivery, one write syscall per
	// flush). On by default; off selects the per-tuple wire format.
	WireBatch bool
	// WireCompress delta-encodes batched sub-frames against their
	// predecessor (on by default; only meaningful with -wire-batch).
	WireCompress bool
	// Tracer, when set programmatically by the binary (the -trace flags
	// differ per cmd, so it is not a shared flag), enables distributed
	// span collection on the booted cluster.
	Tracer *trace.Collector
}

// Register installs the shared flags on fs (use flag.CommandLine for a
// binary's global flag set) and returns the struct they populate.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Nodes, "nodes", 8, "cluster size (topology shape per -app)")
	fs.StringVar(&f.App, "app", "forwarding", fmt.Sprintf("deployed application scenario: %s", strings.Join(scenario.Names(), ", ")))
	fs.StringVar(&f.Scheme, "scheme", "advanced", "provenance scheme: exspan, basic, or advanced")
	fs.Float64Var(&f.Drop, "drop", 0, "fault injection: per-attempt probability a frame write is dropped")
	fs.Float64Var(&f.Delay, "delay", 0, "fault injection: per-attempt probability a frame write stalls")
	fs.DurationVar(&f.DelayFor, "delay-for", 5*time.Millisecond, "fault injection: how long a stalled write waits")
	fs.IntVar(&f.ResetAfter, "reset-after", 0, "fault injection: reset each link once after N successful writes")
	fs.Int64Var(&f.FaultSeed, "fault-seed", 1, "fault injection: RNG seed (runs with the same seed inject the same faults)")
	fs.IntVar(&f.GraveyardCap, "graveyard-cap", 0, "max deleted tuples retained per node for provenance VID resolution (0 = unbounded)")
	fs.IntVar(&f.Replicas, "replicas", 0, "k-way provenance replication factor; queries fail over to replicas when a member is down (0 = off)")
	fs.StringVar(&f.Join, "join", "", "comma-separated member addresses to join elastically after boot (e.g. n8,n9)")
	fs.StringVar(&f.DataDir, "data-dir", "", "directory for the durable provenance store (WAL + snapshots); empty runs in-memory only")
	fs.StringVar(&f.Fsync, "fsync", "always", "WAL fsync policy: always (per record), interval, or off")
	fs.DurationVar(&f.FsyncInterval, "fsync-interval", 50*time.Millisecond, "flush period under -fsync=interval")
	fs.IntVar(&f.SnapshotEvery, "snapshot-every", 10000, "checkpoint a node after this many WAL records (0 = only on clean shutdown)")
	fs.BoolVar(&f.WireBatch, "wire-batch", true, "coalesce outbound frames into batched deliveries (the ingest fast path)")
	fs.BoolVar(&f.WireCompress, "wire-compress", true, "delta-compress batched sub-frames against their predecessor")
	return f
}

// Durability returns the store options the flags describe; the error names
// a bad -fsync spelling.
func (f *Flags) Durability() (store.Options, error) {
	policy, err := store.ParseSyncPolicy(f.Fsync)
	if err != nil {
		return store.Options{}, err
	}
	return store.Options{
		Fsync:         policy,
		FsyncInterval: f.FsyncInterval,
		SnapshotEvery: f.SnapshotEvery,
	}, nil
}

// Plan returns the FaultPlan the flags describe, or nil when no fault
// injection was requested.
func (f *Flags) Plan() *cluster.FaultPlan {
	if f.Drop <= 0 && f.Delay <= 0 && f.ResetAfter <= 0 {
		return nil
	}
	return &cluster.FaultPlan{
		Seed:       f.FaultSeed,
		Drop:       f.Drop,
		Delay:      f.Delay,
		DelayFor:   f.DelayFor,
		ResetAfter: f.ResetAfter,
	}
}

// Boot builds the scenario's topology (-app, default packet forwarding on
// a chain), boots one cluster running its DELP under the given scheme
// (empty means f.Scheme), and loads the scenario's base tuples. The caller
// owns the returned cluster and must Close it.
func (f *Flags) Boot(scheme string) (*cluster.Cluster, *topo.Graph, error) {
	if f.Nodes < 2 {
		return nil, nil, fmt.Errorf("clusterboot: need at least 2 nodes, have %d", f.Nodes)
	}
	if scheme == "" {
		scheme = f.Scheme
	}
	app := f.App
	if app == "" {
		app = "forwarding"
	}
	sc, err := scenario.Get(app)
	if err != nil {
		return nil, nil, err
	}
	g := sc.Topology(f.Nodes)
	base := sc.Base(g)
	cfg := cluster.Config{
		Prog:         sc.Prog(),
		Funcs:        sc.Funcs(),
		Nodes:        g.Nodes(),
		Scheme:       scheme,
		Faults:       f.Plan(),
		Tracer:       f.Tracer,
		GraveyardCap: f.GraveyardCap,
		Replicas:     f.Replicas,
		Transport: cluster.TransportConfig{
			DisableBatch:    !f.WireBatch,
			DisableCompress: !f.WireCompress,
		},
	}
	// Validate the policy spelling even on a volatile run, so a typo'd
	// -fsync fails fast instead of being discovered the day -data-dir is
	// finally set.
	opts, err := f.Durability()
	if err != nil {
		return nil, nil, err
	}
	recovering := false
	if f.DataDir != "" {
		// Per-app, per-scheme subdirectory: a daemon serving several
		// schemes (or re-deployed with a different -app) from one
		// -data-dir must not replay one state machine's log into another.
		cfg.DataDir = filepath.Join(f.DataDir, app, scheme)
		cfg.Durability = opts
		recovering = dirHasState(cfg.DataDir)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	// A recovered cluster already holds its base tuples (and everything
	// since); reloading them would be harmless no-op inserts, but skipping
	// keeps the recovery counters honest.
	if !recovering {
		if err := c.LoadBase(base); err != nil {
			c.Close()
			return nil, nil, err
		}
	}
	// Elastic joins happen after the base load: each newcomer enters
	// through the membership protocol (gossip, bootstrap handoff, Up), so
	// a -join run exercises the same path a live scale-out would.
	for _, addr := range splitJoin(f.Join) {
		if err := c.Join(types.NodeAddr(addr)); err != nil {
			c.Close()
			return nil, nil, fmt.Errorf("clusterboot: join %s: %w", addr, err)
		}
	}
	return c, g, nil
}

// splitJoin parses the -join flag into trimmed, deduplicated addresses.
func splitJoin(s string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		addr := strings.TrimSpace(part)
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		out = append(out, addr)
	}
	return out
}

// dirHasState reports whether a scheme data dir holds prior state to
// recover (any snapshot or WAL file in any node subdirectory).
func dirHasState(dir string) bool {
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*"))
	if err != nil {
		return false
	}
	for _, m := range matches {
		base := filepath.Base(m)
		if filepath.Ext(base) == ".snap" || filepath.Ext(base) == ".log" {
			return true
		}
	}
	return false
}
