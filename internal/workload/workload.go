// Package workload generates the traffic of the paper's evaluation
// (Section 6): packet streams between random node pairs for the forwarding
// application, and Zipfian DNS request streams for the resolution
// application. All generators are deterministic given their seeds and
// schedule themselves incrementally on the simulator (each injection
// schedules the next), so arbitrarily long runs keep a bounded event queue.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"provcompress/internal/engine"
	"provcompress/internal/types"
)

// Pair is a communicating (source, destination) node pair.
type Pair struct {
	Src, Dst types.NodeAddr
}

// ChoosePairs deterministically selects n distinct ordered pairs with
// src != dst from the candidate nodes.
func ChoosePairs(nodes []types.NodeAddr, n int, seed int64) []Pair {
	if len(nodes) < 2 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	seen := make(map[Pair]bool)
	var out []Pair
	maxPairs := len(nodes) * (len(nodes) - 1)
	if n > maxPairs {
		n = maxPairs
	}
	for len(out) < n {
		p := Pair{nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]}
		if p.Src == p.Dst || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Payload builds a deterministic packet payload of the given size whose
// first bytes encode the sequence number, so every packet tuple is unique.
func Payload(seq int64, size int) string {
	head := fmt.Sprintf("p%d-", seq)
	if len(head) >= size {
		return head
	}
	return head + strings.Repeat("x", size-len(head))
}

// PacketEvent builds the packet(@src, src, dst, payload) input event.
func PacketEvent(p Pair, seq int64, payloadSize int) types.Tuple {
	return types.NewTuple("packet",
		types.String(string(p.Src)), types.String(string(p.Src)),
		types.String(string(p.Dst)), types.String(Payload(seq, payloadSize)))
}

// PairTraffic streams packets on each pair at a fixed rate.
type PairTraffic struct {
	Pairs        []Pair
	Rate         float64 // packets per second per pair
	PayloadBytes int     // payload size (the paper uses 500 characters)
	// Exactly one of Duration and PerPairCount bounds the stream.
	Duration     time.Duration
	PerPairCount int
}

// Schedule installs the traffic on the runtime starting at virtual time
// start and returns the total number of packets that will be injected.
// Injections self-schedule: each one enqueues the pair's next packet.
func (w PairTraffic) Schedule(rt *engine.Runtime, start time.Duration) int64 {
	if w.Rate <= 0 {
		panic("workload: PairTraffic.Rate must be positive")
	}
	interval := time.Duration(float64(time.Second) / w.Rate)
	var perPair int64
	if w.PerPairCount > 0 {
		perPair = int64(w.PerPairCount)
	} else {
		perPair = int64(w.Duration / interval)
		if w.Duration%interval != 0 || perPair == 0 {
			perPair++ // the packet at t=start counts
		}
	}
	var seq int64
	for i, p := range w.Pairs {
		p := p
		// Stagger pair start times within one interval so the aggregate
		// stream is smooth rather than bursty.
		offset := time.Duration(int64(interval) * int64(i) / int64(max(1, len(w.Pairs))))
		var inject func(k int64)
		inject = func(k int64) {
			if k >= perPair {
				return
			}
			mySeq := seq
			seq++
			rt.Inject(PacketEvent(p, mySeq, w.PayloadBytes))
			rt.Net.Scheduler().After(interval, func() { inject(k + 1) })
		}
		k0 := start + offset
		rt.Net.Scheduler().At(k0, func() { inject(0) })
	}
	return perPair * int64(len(w.Pairs))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
