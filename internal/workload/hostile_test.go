package workload

import (
	"math/rand"
	"testing"
	"time"

	"provcompress/internal/types"
)

// TestBurstyExactMultipleClosedForm pins the fence-post behavior of the
// bursty generator: for a horizon d = m*Period (BurstLen an exact multiple
// of the event interval), exactly m full bursts fire plus the single event
// opening the burst that starts at the horizon itself —
// m*(BurstLen/interval + 1) + 1 events.
func TestBurstyExactMultipleClosedForm(t *testing.T) {
	w := Bursty{Period: time.Second, BurstLen: 200 * time.Millisecond, Rate: 10}
	// interval = 100ms; per full burst: t = 0, 100ms, 200ms → 3 events.
	times := w.Times(3 * time.Second)
	want := 3*3 + 1
	if len(times) != want {
		t.Fatalf("bursty events = %d, want %d", len(times), want)
	}
	if times[len(times)-1] != 3*time.Second {
		t.Errorf("last event at %v, want 3s (horizon edge)", times[len(times)-1])
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("times not strictly increasing at %d: %v", i, times[:i+1])
		}
	}

	// Non-multiple horizon: the partial cycle contributes only the events
	// that fit.
	if got := w.Times(2550 * time.Millisecond); len(got) != 9 {
		t.Errorf("non-multiple events = %d, want 9", len(got))
	}
	// Zero horizon: the single event at t=0.
	if got := w.Times(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("zero-horizon events = %v, want [0]", got)
	}
}

// TestBurstyClosedFormProperty sweeps seeded random configurations whose
// parameters divide evenly and checks Times against the closed form.
func TestBurstyClosedFormProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		interval := time.Duration(1+rng.Intn(20)) * 10 * time.Millisecond
		perBurst := 1 + rng.Intn(5) // events per burst window = perBurst (j = 0..perBurst-1)
		burstLen := time.Duration(perBurst-1) * interval
		period := burstLen + time.Duration(1+rng.Intn(5))*interval
		m := 1 + rng.Intn(4)
		w := Bursty{Period: period, BurstLen: burstLen, Rate: float64(time.Second) / float64(interval)}
		d := time.Duration(m) * period
		want := m*perBurst + 1
		if got := w.Times(d); len(got) != want {
			t.Fatalf("trial %d: %+v horizon %v: events = %d, want %d",
				trial, w, d, len(got), want)
		}
	}
}

// TestDiurnalExactMultipleClosedForm pins the diurnal generator's phase
// ownership: phases own [start, end), so for d = m*Period the count is m
// full cycles plus the event at t = d (the next cycle's first phase
// opening at the horizon).
func TestDiurnalExactMultipleClosedForm(t *testing.T) {
	w := Diurnal{Period: time.Second, Rates: []float64{10, 0, 5, 0}}
	// phaseLen = 250ms. Phase 0 (100ms interval): j = 0,100,200 → 3.
	// Phase 2 (200ms interval): j = 0,200 → 2. Per cycle: 5.
	times := w.Times(2 * time.Second)
	want := 2*5 + 1
	if len(times) != want {
		t.Fatalf("diurnal events = %d, want %d", len(times), want)
	}
	if times[len(times)-1] != 2*time.Second {
		t.Errorf("last event at %v, want 2s", times[len(times)-1])
	}
	// Silent phases contribute nothing: no event in [250ms, 500ms).
	for _, at := range times {
		phase := (at % time.Second) / (250 * time.Millisecond)
		if phase == 1 || phase == 3 {
			t.Errorf("event at %v falls in a silent phase", at)
		}
	}
	// Determinism.
	again := w.Times(2 * time.Second)
	for i := range times {
		if times[i] != again[i] {
			t.Fatal("Diurnal.Times not deterministic")
		}
	}
}

// TestHostileSchedulesRun drives both generators end to end on the
// simulator and checks every scheduled event is injected exactly once.
func TestHostileSchedulesRun(t *testing.T) {
	build := func(seq int64) types.Tuple {
		return PacketEvent(Pair{Src: "n0", Dst: "n2"}, seq, 20)
	}

	rt := lineRT(t, 3)
	w := Bursty{Period: 500 * time.Millisecond, BurstLen: 100 * time.Millisecond, Rate: 20}
	n := w.Schedule(rt, 0, time.Second, build)
	if want := int64(len(w.Times(time.Second))); n != want {
		t.Fatalf("bursty scheduled = %d, want %d", n, want)
	}
	rt.Run()
	if got := rt.Injected(); got != n {
		t.Errorf("bursty injected = %d, want %d", got, n)
	}
	if got := rt.NumOutputs(); got != n {
		t.Errorf("bursty delivered = %d, want %d", got, n)
	}

	rt2 := lineRT(t, 3)
	d := Diurnal{Period: 400 * time.Millisecond, Rates: []float64{20, 5}}
	n2 := d.Schedule(rt2, 0, 800*time.Millisecond, build)
	if want := int64(len(d.Times(800 * time.Millisecond))); n2 != want {
		t.Fatalf("diurnal scheduled = %d, want %d", n2, want)
	}
	rt2.Run()
	if got := rt2.Injected(); got != n2 {
		t.Errorf("diurnal injected = %d, want %d", got, n2)
	}
	if got := rt2.NumOutputs(); got != n2 {
		t.Errorf("diurnal delivered = %d, want %d", got, n2)
	}
}

// TestDeletionStormOps pins the storm sequence: Waves insert+delete passes
// over the tuple set, then the restoring re-insert.
func TestDeletionStormOps(t *testing.T) {
	tuples := []types.Tuple{
		types.NewTuple("route", types.String("n1"), types.String("a"), types.String("n2")),
		types.NewTuple("route", types.String("n1"), types.String("b"), types.String("n2")),
	}
	s := DeletionStorm{Tuples: tuples, Waves: 3, Restore: true}
	ops := s.Ops()
	if want := 3*2*len(tuples) + len(tuples); len(ops) != want {
		t.Fatalf("ops = %d, want %d", len(ops), want)
	}
	// First wave: all inserts, then all deletes.
	for i := 0; i < len(tuples); i++ {
		if !ops[i].Insert || ops[len(tuples)+i].Insert {
			t.Fatalf("wave 0 malformed at %d", i)
		}
	}
	// Tail: the restoring inserts.
	for _, op := range ops[len(ops)-len(tuples):] {
		if !op.Insert {
			t.Fatal("restore pass contains a delete")
		}
	}
	// Deterministic.
	again := s.Ops()
	for i := range ops {
		if ops[i].Insert != again[i].Insert || !ops[i].Tuple.Equal(again[i].Tuple) {
			t.Fatal("DeletionStorm.Ops not deterministic")
		}
	}
}

// TestHotKeys pins determinism and skew of the hot-key sampler.
func TestHotKeys(t *testing.T) {
	a := HotKeys(42, 2000, 50, 1.2)
	b := HotKeys(42, 2000, 50, 1.2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("HotKeys not deterministic")
		}
	}
	counts := make(map[int]int)
	for _, k := range a {
		if k < 0 || k >= 50 {
			t.Fatalf("rank %d out of universe", k)
		}
		counts[k]++
	}
	// Zipf with alpha > 1: rank 0 must dominate the median rank.
	if counts[0] <= counts[25] {
		t.Errorf("no skew: counts[0]=%d counts[25]=%d", counts[0], counts[25])
	}
}
