package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"provcompress/internal/engine"
	"provcompress/internal/types"
)

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^alpha.
// Unlike math/rand's Zipf it supports alpha <= 1, which DNS popularity
// follows (the paper adopts the Zipfian distribution measured by Jung et
// al. [9], with exponent below one).
type Zipf struct {
	cum []float64
	r   *rand.Rand
}

// NewZipf builds a sampler over n ranks with the given exponent.
func NewZipf(r *rand.Rand, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("workload: NewZipf needs n > 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, r: r}
}

// Next returns the next sampled rank.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// DNSTraffic streams url(@client, url, rqid) request events: URLs sampled
// Zipfian by popularity rank, clients round-robin, at a fixed aggregate
// rate.
type DNSTraffic struct {
	URLs    []string
	Clients []types.NodeAddr
	Rate    float64 // requests per second, aggregate
	Alpha   float64 // Zipf exponent (the paper-style default is 0.9)
	Seed    int64
	// Exactly one of Duration and Count bounds the stream.
	Duration time.Duration
	Count    int
}

// URLEvent builds the url(@client, url, rqid) input event.
func URLEvent(client types.NodeAddr, url string, rqid int64) types.Tuple {
	return types.NewTuple("url",
		types.String(string(client)), types.String(url), types.Int(rqid))
}

// Schedule installs the request stream starting at virtual time start and
// returns the number of requests that will be injected.
func (w DNSTraffic) Schedule(rt *engine.Runtime, start time.Duration) int64 {
	if w.Rate <= 0 || len(w.URLs) == 0 || len(w.Clients) == 0 {
		panic("workload: DNSTraffic needs positive rate, URLs, and clients")
	}
	interval := time.Duration(float64(time.Second) / w.Rate)
	var total int64
	if w.Count > 0 {
		total = int64(w.Count)
	} else {
		// Requests fire at start + k*interval for k = 0..total-1, so a
		// stream covering [start, start+Duration] holds Duration/interval
		// intervals plus the request at the starting instant. Computing
		// just floor(Duration/interval) and bumping only on a remainder
		// dropped the final request firing exactly at start + Duration
		// whenever Duration was an exact multiple of the interval.
		total = int64(w.Duration/interval) + 1
	}
	z := NewZipf(rand.New(rand.NewSource(w.Seed)), len(w.URLs), w.Alpha)
	var inject func(k int64)
	inject = func(k int64) {
		if k >= total {
			return
		}
		url := w.URLs[z.Next()]
		client := w.Clients[int(k)%len(w.Clients)]
		rt.Inject(URLEvent(client, url, k))
		rt.Net.Scheduler().After(interval, func() { inject(k + 1) })
	}
	rt.Net.Scheduler().At(start, func() { inject(0) })
	return total
}
