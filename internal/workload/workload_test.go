package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

func TestChoosePairs(t *testing.T) {
	nodes := []types.NodeAddr{"a", "b", "c", "d", "e"}
	pairs := ChoosePairs(nodes, 10, 1)
	if len(pairs) != 10 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := make(map[Pair]bool)
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Errorf("self pair %v", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	// Deterministic.
	again := ChoosePairs(nodes, 10, 1)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("ChoosePairs not deterministic")
		}
	}
	// Capped at n*(n-1).
	if got := ChoosePairs([]types.NodeAddr{"a", "b"}, 99, 1); len(got) != 2 {
		t.Errorf("capped pairs = %d, want 2", len(got))
	}
	if got := ChoosePairs([]types.NodeAddr{"a"}, 5, 1); got != nil {
		t.Errorf("single-node pairs = %v", got)
	}
}

func TestPayload(t *testing.T) {
	p := Payload(42, 500)
	if len(p) != 500 {
		t.Errorf("payload length = %d", len(p))
	}
	if !strings.HasPrefix(p, "p42-") {
		t.Errorf("payload prefix = %q", p[:8])
	}
	// Tiny sizes still embed the sequence number.
	if got := Payload(123456, 3); !strings.HasPrefix(got, "p123456") {
		t.Errorf("tiny payload = %q", got)
	}
	if Payload(1, 100) == Payload(2, 100) {
		t.Error("payloads not unique per sequence")
	}
}

type nopMaint struct{ rt *engine.Runtime }

func (n *nopMaint) Name() string                                   { return "nop" }
func (n *nopMaint) Attach(rt *engine.Runtime)                      { n.rt = rt }
func (n *nopMaint) OnInject(*engine.Node, types.Tuple) engine.Meta { return nil }
func (n *nopMaint) OnFire(_ *engine.Node, f engine.Firing, m engine.Meta) engine.Meta {
	return m
}
func (n *nopMaint) OnOutput(*engine.Node, types.Tuple, engine.Meta) {}
func (n *nopMaint) OnSlowUpdate(*engine.Node, types.Tuple, bool)    {}
func (n *nopMaint) HandleMessage(*engine.Node, netsim.Message) bool { return false }
func (n *nopMaint) MetaSize(engine.Meta) int                        { return 0 }
func (n *nopMaint) StorageBytes(types.NodeAddr) int64               { return 0 }
func (n *nopMaint) TotalStorageBytes() int64                        { return 0 }

func lineRT(t *testing.T, n int) *engine.Runtime {
	t.Helper()
	var sched sim.Scheduler
	g := topo.Line(n, "n")
	net := netsim.New(&sched, g)
	rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), &nopMaint{})
	if err := rt.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestPairTrafficByDuration(t *testing.T) {
	rt := lineRT(t, 4)
	w := PairTraffic{
		Pairs:        []Pair{{"n0", "n3"}, {"n3", "n0"}},
		Rate:         10,
		PayloadBytes: 50,
		Duration:     time.Second,
	}
	n := w.Schedule(rt, 0)
	if n != 20 {
		t.Fatalf("scheduled = %d, want 20", n)
	}
	rt.Run()
	if rt.Injected() != 20 {
		t.Errorf("injected = %d, want 20", rt.Injected())
	}
	if rt.NumOutputs() != 20 {
		t.Errorf("outputs = %d, want 20 (all packets delivered)", rt.NumOutputs())
	}
}

func TestPairTrafficByCount(t *testing.T) {
	rt := lineRT(t, 3)
	w := PairTraffic{
		Pairs:        []Pair{{"n0", "n2"}},
		Rate:         100,
		PayloadBytes: 20,
		PerPairCount: 7,
	}
	if n := w.Schedule(rt, 0); n != 7 {
		t.Fatalf("scheduled = %d, want 7", n)
	}
	rt.Run()
	if rt.NumOutputs() != 7 {
		t.Errorf("outputs = %d, want 7", rt.NumOutputs())
	}
}

func TestPairTrafficUniquePayloads(t *testing.T) {
	rt := lineRT(t, 3)
	w := PairTraffic{
		Pairs:        []Pair{{"n0", "n2"}, {"n1", "n2"}},
		Rate:         50,
		PayloadBytes: 30,
		PerPairCount: 5,
	}
	w.Schedule(rt, 0)
	rt.Run()
	seen := make(map[string]bool)
	for _, o := range rt.Outputs() {
		pl := o.Tuple.Args[3].AsString()
		if seen[pl] {
			t.Errorf("duplicate payload %q", pl)
		}
		seen[pl] = true
	}
}

func TestZipfDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	z := NewZipf(r, 38, 0.9)
	if z.N() != 38 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 38)
	const samples = 100000
	for i := 0; i < samples; i++ {
		k := z.Next()
		if k < 0 || k >= 38 {
			t.Fatalf("rank out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 must dominate and the tail must still be hit.
	if counts[0] <= counts[1] || counts[1] <= counts[5] {
		t.Errorf("head not dominant: %v", counts[:6])
	}
	if counts[37] == 0 {
		t.Error("tail rank never sampled")
	}
	// Empirical ratio count[0]/count[1] should approximate 2^0.9.
	ratio := float64(counts[0]) / float64(counts[1])
	want := math.Pow(2, 0.9)
	if ratio < want*0.8 || ratio > want*1.2 {
		t.Errorf("rank0/rank1 = %.2f, want about %.2f", ratio, want)
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) should panic")
		}
	}()
	NewZipf(rand.New(rand.NewSource(1)), 0, 1)
}

func dnsRT(t *testing.T) (*engine.Runtime, []topo.URLRecord, []types.NodeAddr) {
	t.Helper()
	tree := topo.GenDNSTree(topo.DNSTreeConfig{NumServers: 10, MaxDepth: 4, Seed: 1})
	clients := tree.AttachClients(2)
	urls := tree.PickURLs(5)
	var sched sim.Scheduler
	net := netsim.New(&sched, tree.Graph)
	rt := engine.NewRuntime(net, apps.DNS(), apps.Funcs(), &nopMaint{})
	if err := rt.LoadBase(tree.NameServerTuples(clients)); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadBase(topo.AddressRecordTuples(urls)); err != nil {
		t.Fatal(err)
	}
	return rt, urls, clients
}

func TestDNSTraffic(t *testing.T) {
	rt, urls, clients := dnsRT(t)
	var urlNames []string
	for _, u := range urls {
		urlNames = append(urlNames, u.URL)
	}
	w := DNSTraffic{
		URLs:    urlNames,
		Clients: clients,
		Rate:    100,
		Alpha:   0.9,
		Seed:    2,
		Count:   50,
	}
	if n := w.Schedule(rt, 0); n != 50 {
		t.Fatalf("scheduled = %d", n)
	}
	rt.Run()
	if rt.Injected() != 50 {
		t.Errorf("injected = %d", rt.Injected())
	}
	if rt.NumOutputs() != 50 {
		t.Errorf("outputs = %d, want 50 (every request resolved)", rt.NumOutputs())
	}
	for _, err := range rt.Errors() {
		t.Errorf("runtime error: %v", err)
	}
}

func TestDNSTrafficByDuration(t *testing.T) {
	rt, urls, clients := dnsRT(t)
	w := DNSTraffic{
		URLs:     []string{urls[0].URL},
		Clients:  clients[:1],
		Rate:     10,
		Alpha:    1,
		Duration: time.Second,
	}
	// 1s at 10 rps is an exact multiple of the 100ms interval: requests
	// fire at t = 0, 100ms, ..., 1s inclusive — 11 of them.
	if n := w.Schedule(rt, 0); n != 11 {
		t.Fatalf("scheduled = %d, want 11", n)
	}
	rt.Run()
	if rt.NumOutputs() != 11 {
		t.Errorf("outputs = %d", rt.NumOutputs())
	}
}

// TestDNSTrafficExactMultipleFencePost is the regression test for the
// fence-post bug where a Duration that divided evenly by the interval
// dropped the final request firing at start + Duration.
func TestDNSTrafficExactMultipleFencePost(t *testing.T) {
	rt, urls, clients := dnsRT(t)
	w := DNSTraffic{
		URLs:     []string{urls[0].URL},
		Clients:  clients[:1],
		Rate:     4, // 250ms interval
		Alpha:    1,
		Duration: 500 * time.Millisecond, // exact multiple: t = 0, 250ms, 500ms
	}
	if n := w.Schedule(rt, 0); n != 3 {
		t.Fatalf("scheduled = %d, want 3 (0ms, 250ms, and the 500ms edge)", n)
	}
	rt.Run()
	if rt.NumOutputs() != 3 {
		t.Errorf("outputs = %d, want 3", rt.NumOutputs())
	}

	// Non-multiples keep their old count: 625ms at 4 rps still covers
	// t = 0, 250ms, 500ms and nothing else fits before 625ms.
	rt2, urls2, clients2 := dnsRT(t)
	w2 := DNSTraffic{
		URLs:     []string{urls2[0].URL},
		Clients:  clients2[:1],
		Rate:     4,
		Alpha:    1,
		Duration: 625 * time.Millisecond,
	}
	if n := w2.Schedule(rt2, 0); n != 3 {
		t.Fatalf("non-multiple scheduled = %d, want 3", n)
	}

	// Duration 0 degenerates to the single request at the start instant.
	rt3, urls3, clients3 := dnsRT(t)
	w3 := DNSTraffic{
		URLs:    []string{urls3[0].URL},
		Clients: clients3[:1],
		Rate:    4,
		Alpha:   1,
	}
	if n := w3.Schedule(rt3, 0); n != 1 {
		t.Fatalf("zero-duration scheduled = %d, want 1", n)
	}
}
