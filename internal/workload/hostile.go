// Hostile workload generators: adversarial arrival processes and deletion
// storms for the soak harness (ROADMAP item 5). Every generator is purely
// deterministic — arrival times are closed-form functions of the
// configuration and storm/skew sequences derive from an explicit seed — so
// a soak failure reproduces exactly. Arrival schedules follow the
// fence-post convention of DNSTraffic.Schedule: a stream covering
// [start, start+Duration] includes events landing exactly on interval
// boundaries, including the one at start+Duration.
package workload

import (
	"math/rand"
	"time"

	"provcompress/internal/engine"
	"provcompress/internal/types"
)

// Bursty is an ON/OFF arrival process: each cycle of length Period opens
// with a burst window of length BurstLen during which events fire at Rate,
// followed by silence until the next cycle. Burst windows are inclusive of
// both edges (an event fires at the window start and, when BurstLen is an
// exact multiple of the event interval, at the window end).
type Bursty struct {
	Period   time.Duration // cycle length
	BurstLen time.Duration // active window at the start of each cycle
	Rate     float64       // events per second inside a burst
}

// Times returns every arrival time in [0, d], in order. For d an exact
// multiple m of Period (with BurstLen < Period an exact multiple of the
// interval), the count is m*(BurstLen/interval + 1) + 1: m full bursts
// plus the single event opening the burst that starts exactly at d.
func (w Bursty) Times(d time.Duration) []time.Duration {
	if w.Period <= 0 || w.Rate <= 0 || w.BurstLen < 0 || w.BurstLen >= w.Period {
		panic("workload: Bursty needs 0 <= BurstLen < Period and Rate > 0")
	}
	interval := time.Duration(float64(time.Second) / w.Rate)
	var out []time.Duration
	for cycle := time.Duration(0); cycle <= d; cycle += w.Period {
		for j := time.Duration(0); ; j += interval {
			if j > w.BurstLen || cycle+j > d {
				break
			}
			out = append(out, cycle+j)
			if interval == 0 {
				break
			}
		}
	}
	return out
}

// Schedule installs the bursty stream on the runtime starting at virtual
// time start, covering [start, start+d]. build maps the event's sequence
// number to the tuple to inject. Injections self-schedule so the
// simulator's queue stays bounded. Returns the number of events scheduled.
func (w Bursty) Schedule(rt *engine.Runtime, start, d time.Duration, build func(seq int64) types.Tuple) int64 {
	return scheduleTimes(rt, start, w.Times(d), build)
}

// Diurnal is a cyclic arrival process modeling daily load variation: each
// cycle of length Period is split into len(Rates) equal phases, phase p
// firing events at Rates[p] (0 = silent). Each phase owns the half-open
// window [phaseStart, phaseEnd): its events fire at phaseStart + k*interval
// strictly before phaseEnd, so phase boundaries are unambiguous. The single
// event at an exact-multiple horizon belongs to the next cycle's first
// phase.
type Diurnal struct {
	Period time.Duration // full cycle length
	Rates  []float64     // per-phase events/sec; phases split Period evenly
}

// Times returns every arrival time in [0, d], in order. For d an exact
// multiple m of Period, the count is m*sum(countPhase) + extra, where
// countPhase(p) = ceil(phaseLen / interval_p) for active phases — plus the
// event at t = d itself when Rates[0] > 0 (the next cycle's first phase
// opens exactly at the horizon).
func (w Diurnal) Times(d time.Duration) []time.Duration {
	if w.Period <= 0 || len(w.Rates) == 0 {
		panic("workload: Diurnal needs Period > 0 and at least one phase")
	}
	for _, r := range w.Rates {
		if r < 0 {
			panic("workload: Diurnal rates must be non-negative")
		}
	}
	phaseLen := w.Period / time.Duration(len(w.Rates))
	if phaseLen <= 0 {
		panic("workload: Diurnal Period too short for the phase count")
	}
	var out []time.Duration
	for cycle := time.Duration(0); cycle <= d; cycle += w.Period {
		for p, rate := range w.Rates {
			if rate <= 0 {
				continue
			}
			phaseStart := cycle + time.Duration(p)*phaseLen
			if phaseStart > d {
				break
			}
			interval := time.Duration(float64(time.Second) / rate)
			for j := time.Duration(0); ; j += interval {
				if j >= phaseLen || phaseStart+j > d {
					break
				}
				out = append(out, phaseStart+j)
				if interval == 0 {
					break
				}
			}
		}
	}
	return out
}

// Schedule installs the diurnal stream on the runtime starting at virtual
// time start, covering [start, start+d]; see Bursty.Schedule.
func (w Diurnal) Schedule(rt *engine.Runtime, start, d time.Duration, build func(seq int64) types.Tuple) int64 {
	return scheduleTimes(rt, start, w.Times(d), build)
}

// scheduleTimes injects build(i) at start+times[i], each injection
// scheduling the next so the simulator queue holds at most one pending
// arrival per stream.
func scheduleTimes(rt *engine.Runtime, start time.Duration, times []time.Duration, build func(seq int64) types.Tuple) int64 {
	if len(times) == 0 {
		return 0
	}
	var inject func(i int64)
	inject = func(i int64) {
		rt.Inject(build(i))
		if next := i + 1; next < int64(len(times)) {
			rt.Net.Scheduler().After(times[next]-times[i], func() { inject(next) })
		}
	}
	rt.Net.Scheduler().At(start+times[0], func() { inject(0) })
	return int64(len(times))
}

// StormOp is one step of a deletion storm: an insert or a delete of a slow
// tuple.
type StormOp struct {
	Insert bool
	Tuple  types.Tuple
}

// DeletionStorm builds a deterministic slow-churn sequence that hammers
// the graveyard retention cap: every wave inserts each tuple then deletes
// it again (each delete burying the tuple, sustained waves overflowing any
// cap below the tuple count), and with Restore set a final pass re-inserts
// every tuple so a leak-free system ends with an empty graveyard and all
// state back to baseline.
type DeletionStorm struct {
	Tuples  []types.Tuple
	Waves   int
	Restore bool
}

// Ops returns the storm's operation sequence. The caller applies each op
// through its own mutation path (e.g. Cluster.InsertSlow / DeleteSlow).
func (s DeletionStorm) Ops() []StormOp {
	var ops []StormOp
	for w := 0; w < s.Waves; w++ {
		for _, t := range s.Tuples {
			ops = append(ops, StormOp{Insert: true, Tuple: t})
		}
		for _, t := range s.Tuples {
			ops = append(ops, StormOp{Insert: false, Tuple: t})
		}
	}
	if s.Restore {
		for _, t := range s.Tuples {
			ops = append(ops, StormOp{Insert: true, Tuple: t})
		}
	}
	return ops
}

// HotKeys returns n Zipf-skewed ranks over [0, universe), deterministic
// under seed — the hot-key access pattern for skewed query load.
func HotKeys(seed int64, n, universe int, alpha float64) []int {
	z := NewZipf(rand.New(rand.NewSource(seed)), universe, alpha)
	out := make([]int, n)
	for i := range out {
		out[i] = z.Next()
	}
	return out
}
