// Package scenario is the registry of deployable DELP scenarios: each
// entry bundles a program with the topology shape it runs over, its
// slow-changing base tuples, a deterministic input-event generator, and a
// slow-churn generator for deletion storms. The cluster bring-up path
// (internal/clusterboot) and the soak harness (cmd/provsim soak) resolve
// scenarios by name, so every binary deploys an application the same way.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
	"provcompress/internal/topo"
	"provcompress/internal/types"
	"provcompress/internal/workload"
)

// Scenario describes one deployable application.
type Scenario struct {
	// Name resolves the scenario (the -app flag).
	Name string
	// Description is a one-line summary for usage text.
	Description string
	// Prog returns the scenario's DELP.
	Prog func() *ndlog.Program
	// Funcs returns the UDF registry the program needs.
	Funcs func() ndlog.FuncMap
	// Topology builds the n-node deployment graph. Node names are n0..n%d
	// for every scenario, so operational tooling stays shape-agnostic.
	Topology func(n int) *topo.Graph
	// Base returns the slow-changing base tuples to load at boot.
	Base func(g *topo.Graph) []types.Tuple
	// Event returns the seq-th input event. Events are deterministic in
	// seq and unique (distinct VIDs), while mapping onto a bounded set of
	// equivalence classes so the Advanced scheme's sharing is exercised.
	Event func(g *topo.Graph, seq int64) types.Tuple
	// Churn returns the i-th slow-churn tuple for deletion storms:
	// insert/delete cycles on it bury graveyard entries and fire §5.5 sig
	// broadcasts without perturbing the live base state the events use.
	Churn func(g *topo.Graph, i int) types.Tuple
}

// prefixes is the bounded prefix universe of the BGP scenario: adverts for
// the same prefix share an equivalence class.
const prefixes = 4

var registry = map[string]Scenario{
	"forwarding": {
		Name:        "forwarding",
		Description: "packet forwarding over a chain (Figure 1) — the paper's primary workload",
		Prog:        apps.Forwarding,
		Funcs:       apps.Funcs,
		Topology:    func(n int) *topo.Graph { return topo.Line(n, "n") },
		Base:        func(g *topo.Graph) []types.Tuple { return g.ShortestPaths().RouteTuples() },
		Event: func(g *topo.Graph, seq int64) types.Tuple {
			nodes := g.Nodes()
			first, last := string(nodes[0]), string(nodes[len(nodes)-1])
			return types.NewTuple("packet",
				types.String(first), types.String(first), types.String(last),
				types.String(workload.Payload(seq, 40)))
		},
		Churn: func(g *topo.Graph, i int) types.Tuple {
			nodes := g.Nodes()
			// A route for a destination no packet targets: inert for the
			// live traffic, real churn for the graveyard and sig path.
			return types.NewTuple("route",
				types.String(string(nodes[0])),
				types.String(fmt.Sprintf("ghost-%d", i)),
				types.String(string(nodes[1])))
		},
	},
	"bgp": {
		Name:        "bgp",
		Description: "BGP-style interdomain routing — deep chains, slow route churn hammering the §5.5 sig path",
		Prog:        apps.BGP,
		Funcs:       apps.Funcs,
		Topology:    func(n int) *topo.Graph { return topo.Line(n, "n") },
		Base: func(g *topo.Graph) []types.Tuple {
			nodes := g.Nodes()
			var out []types.Tuple
			// bgpRoute(@ni, P, ni+1) for every prefix: adverts injected at
			// n0 traverse the full chain, the deepest provenance shape the
			// topology allows.
			for p := 0; p < prefixes; p++ {
				prefix := fmt.Sprintf("p%d", p)
				for i := 0; i+1 < len(nodes); i++ {
					out = append(out, types.NewTuple("bgpRoute",
						types.String(string(nodes[i])), types.String(prefix),
						types.String(string(nodes[i+1]))))
				}
				// The chain's far end owns every prefix's policy entry, so
				// the RIB materializes after the longest possible walk.
				out = append(out, types.NewTuple("bgpOwner",
					types.String(string(nodes[len(nodes)-1])), types.String(prefix)))
			}
			return out
		},
		Event: func(g *topo.Graph, seq int64) types.Tuple {
			nodes := g.Nodes()
			return types.NewTuple("advert",
				types.String(string(nodes[0])),
				types.String(fmt.Sprintf("p%d", seq%prefixes)),
				types.String("as-origin"),
				types.Int(seq))
		},
		Churn: func(g *topo.Graph, i int) types.Tuple {
			nodes := g.Nodes()
			// Route policy for a prefix never advertised: every insert
			// fires a sig broadcast (the §5.5 path), every delete buries a
			// tuple, and the advert traffic is untouched.
			return types.NewTuple("bgpRoute",
				types.String(string(nodes[0])),
				types.String(fmt.Sprintf("withdrawn-%d", i)),
				types.String(string(nodes[1])))
		},
	},
	"gossip": {
		Name:        "gossip",
		Description: "epidemic rumor dissemination over a binary out-tree — exponential fan-out, wide trees",
		Prog:        apps.Gossip,
		Funcs:       apps.Funcs,
		Topology:    GossipTree,
		Base: func(g *topo.Graph) []types.Tuple {
			nodes := g.Nodes()
			var out []types.Tuple
			for i := range nodes {
				// Peers follow the tree's child edges: rumors flood root to
				// leaves and terminate (the peer relation is a DAG).
				for _, c := range []int{2*i + 1, 2*i + 2} {
					if c < len(nodes) {
						out = append(out, types.NewTuple("gossipPeer",
							types.String(string(nodes[i])), types.String(string(nodes[c]))))
					}
				}
				out = append(out, types.NewTuple("gossipMember",
					types.String(string(nodes[i]))))
			}
			return out
		},
		Event: func(g *topo.Graph, seq int64) types.Tuple {
			nodes := g.Nodes()
			return types.NewTuple("rumor",
				types.String(string(nodes[0])),
				types.String(fmt.Sprintf("r%d", seq)),
				types.String("member-0"))
		},
		Churn: func(g *topo.Graph, i int) types.Tuple {
			nodes := g.Nodes()
			// A standby-peer relation no rule consumes: pure slow-state
			// churn against the graveyard and sig machinery.
			return types.NewTuple("gossipStandby",
				types.String(string(nodes[0])),
				types.String(fmt.Sprintf("standby-%d", i)))
		},
	},
}

// GossipTree builds the gossip scenario's n-node binary out-tree with the
// same n0..n%d naming as the chain topologies.
func GossipTree(n int) *topo.Graph {
	g := topo.NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(types.NodeAddr(fmt.Sprintf("n%d", i)))
	}
	nodes := g.Nodes()
	for i := range nodes {
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(nodes) {
				g.MustAddLink(nodes[i], nodes[c], time.Millisecond, 1_000_000)
			}
		}
	}
	return g
}

// Get resolves a scenario by name.
func Get(name string) (Scenario, error) {
	s, ok := registry[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown app %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
