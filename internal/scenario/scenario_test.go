package scenario

import (
	"reflect"
	"sort"
	"testing"

	"provcompress/internal/analysis"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/types"
)

func TestRegistry(t *testing.T) {
	want := []string{"bgp", "forwarding", "gossip"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("Get(nosuch) succeeded")
	}
	for _, name := range want {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name || s.Prog == nil || s.Funcs == nil || s.Topology == nil ||
			s.Base == nil || s.Event == nil || s.Churn == nil {
			t.Fatalf("scenario %q incomplete: %+v", name, s)
		}
	}
}

// TestScenarioShapes pins the structural invariants every scenario must
// hold: base tuples and events sit at live nodes, events are unique per
// sequence number, churn tuples are deterministic and disjoint from the
// base set, and the Advanced scheme's applicability analysis accepts the
// program.
func TestScenarioShapes(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			g := s.Topology(8)
			if len(g.Nodes()) != 8 {
				t.Fatalf("topology nodes = %d, want 8", len(g.Nodes()))
			}
			live := make(map[types.NodeAddr]bool)
			for _, n := range g.Nodes() {
				live[n] = true
			}
			baseVIDs := make(map[types.ID]bool)
			for _, b := range s.Base(g) {
				if !live[b.Loc()] {
					t.Fatalf("base tuple %s at unknown node", b)
				}
				baseVIDs[types.HashTuple(b)] = true
			}
			seen := make(map[types.ID]bool)
			for seq := int64(0); seq < 16; seq++ {
				ev := s.Event(g, seq)
				if !live[ev.Loc()] {
					t.Fatalf("event %s at unknown node", ev)
				}
				vid := types.HashTuple(ev)
				if seen[vid] {
					t.Fatalf("event seq %d duplicates an earlier event", seq)
				}
				seen[vid] = true
				if !ev.Equal(s.Event(g, seq)) {
					t.Fatalf("event seq %d not deterministic", seq)
				}
			}
			for i := 0; i < 8; i++ {
				c := s.Churn(g, i)
				if !live[c.Loc()] {
					t.Fatalf("churn tuple %s at unknown node", c)
				}
				if baseVIDs[types.HashTuple(c)] {
					t.Fatalf("churn tuple %d collides with the base set", i)
				}
				if !c.Equal(s.Churn(g, i)) {
					t.Fatalf("churn tuple %d not deterministic", i)
				}
			}
			if err := analysis.CheckAdvancedApplicable(s.Prog()); err != nil {
				t.Fatalf("CheckAdvancedApplicable: %v", err)
			}
		})
	}
}

// TestScenarioSchemesAgree runs every scenario under all three maintenance
// schemes on the simulator and requires the derived outputs to be
// identical — provenance maintenance must never change evaluation.
func TestScenarioSchemesAgree(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			var want []string
			for _, scheme := range []string{core.SchemeExSPAN, core.SchemeBasic, core.SchemeAdvanced} {
				maint, err := core.NewScheme(scheme)
				if err != nil {
					t.Fatal(err)
				}
				var sched sim.Scheduler
				g := s.Topology(7)
				net := netsim.New(&sched, g)
				rt := engine.NewRuntime(net, s.Prog(), s.Funcs(), maint)
				if err := rt.LoadBase(s.Base(g)); err != nil {
					t.Fatal(err)
				}
				for seq := int64(0); seq < 6; seq++ {
					rt.Inject(s.Event(g, seq))
				}
				rt.Run()
				if len(rt.Errors()) > 0 {
					t.Fatalf("%s: runtime errors: %v", scheme, rt.Errors())
				}
				if rt.NumOutputs() == 0 {
					t.Fatalf("%s: no outputs derived", scheme)
				}
				var got []string
				for _, o := range rt.Outputs() {
					got = append(got, o.Tuple.String())
				}
				sort.Strings(got)
				if want == nil {
					want = got
				} else if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s outputs diverge from ExSPAN:\n got %v\nwant %v", scheme, got, want)
				}
			}
		})
	}
}
