package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/metrics"
	"provcompress/internal/types"
)

// Fig8Result holds, per scheme, the distribution of per-node provenance
// storage growth rates (bits per second) for the packet-forwarding
// workload — the CDF of the paper's Figure 8.
type Fig8Result struct {
	Cfg       ForwardingConfig
	PerScheme map[string]*metrics.CDF
	order     []string
}

// Fig8 runs the per-node storage growth experiment.
func Fig8(cfg ForwardingConfig) (*Fig8Result, error) {
	res := &Fig8Result{Cfg: cfg, PerScheme: make(map[string]*metrics.CDF), order: schemesOrDefault(cfg.Schemes)}
	for _, scheme := range res.order {
		run, err := buildForwarding(cfg, scheme, false)
		if err != nil {
			return nil, err
		}
		run.rt.Run()
		dur := cfg.Duration.Seconds()
		if dur <= 0 {
			dur = run.rt.Net.Scheduler().Now().Seconds()
		}
		var rates []float64
		for _, addr := range run.ts.Graph.Nodes() {
			rates = append(rates, float64(run.maint.StorageBytes(addr))*8/dur)
		}
		res.PerScheme[scheme] = metrics.NewCDF(rates)
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig8Result) Title() string {
	return fmt.Sprintf("Figure 8: CDF of per-node provenance storage growth rate (packet forwarding, %d pairs, %.0f pkt/s each)",
		r.Cfg.Pairs, r.Cfg.Rate)
}

// Headers returns the table header.
func (r *Fig8Result) Headers() []string {
	return append([]string{"percentile"}, r.order...)
}

// Rows returns growth-rate percentiles per scheme.
func (r *Fig8Result) Rows() [][]string {
	var rows [][]string
	for _, p := range []float64{0.10, 0.25, 0.50, 0.80, 0.96, 1.00} {
		row := []string{fmt.Sprintf("p%.0f", p*100)}
		for _, s := range r.order {
			row = append(row, metrics.HumanRate(r.PerScheme[s].Percentile(p)))
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig9Result holds the total provenance storage over time per scheme
// (Figure 9), sampled at snapshot intervals.
type Fig9Result struct {
	Cfg       ForwardingConfig
	PerScheme map[string]*metrics.Series
	order     []string
}

// Fig9 runs the total-storage-growth experiment.
func Fig9(cfg ForwardingConfig) (*Fig9Result, error) {
	res := &Fig9Result{Cfg: cfg, PerScheme: make(map[string]*metrics.Series), order: schemesOrDefault(cfg.Schemes)}
	for _, scheme := range res.order {
		run, err := buildForwarding(cfg, scheme, false)
		if err != nil {
			return nil, err
		}
		maint := run.maint
		res.PerScheme[scheme] = snapshotSeries(run.rt, cfg.Duration, cfg.Snapshots,
			func() float64 { return float64(maint.TotalStorageBytes()) })
		run.rt.Run()
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig9Result) Title() string {
	return fmt.Sprintf("Figure 9: total provenance storage vs. time (packet forwarding, %d pairs at %.0f pkt/s)",
		r.Cfg.Pairs, r.Cfg.Rate)
}

// Headers returns the table header.
func (r *Fig9Result) Headers() []string {
	return append([]string{"t (s)"}, r.order...)
}

// Rows returns one row per snapshot plus a growth-rate summary row.
func (r *Fig9Result) Rows() [][]string {
	var rows [][]string
	ref := r.PerScheme[r.order[0]]
	for i := 0; i < ref.Len(); i++ {
		row := []string{fseconds(ref.Times[i])}
		for _, s := range r.order {
			row = append(row, fbytes(r.PerScheme[s].Values[i]))
		}
		rows = append(rows, row)
	}
	rate := []string{"growth"}
	for _, s := range r.order {
		rate = append(rate, metrics.HumanBytes(int64(r.PerScheme[s].GrowthRate()))+"/s")
	}
	rows = append(rows, rate)
	return rows
}

// Fig10Result holds total storage versus the number of communicating pairs
// at a fixed total packet count (Figure 10).
type Fig10Result struct {
	Cfg          ForwardingConfig
	TotalPackets int
	PairCounts   []int
	// Storage[scheme][i] is the total storage with PairCounts[i] pairs.
	Storage map[string][]int64
	order   []string
}

// Fig10 runs the storage-vs-pairs experiment: TotalPackets packets evenly
// divided among an increasing number of pairs.
func Fig10(cfg ForwardingConfig, totalPackets int, pairCounts []int) (*Fig10Result, error) {
	res := &Fig10Result{
		Cfg: cfg, TotalPackets: totalPackets, PairCounts: pairCounts,
		Storage: make(map[string][]int64), order: schemesOrDefault(cfg.Schemes),
	}
	for _, scheme := range res.order {
		for _, pairs := range pairCounts {
			c := cfg
			c.Pairs = pairs
			c.Duration = 0
			c.PerPairCount = totalPackets / pairs
			if c.PerPairCount == 0 {
				c.PerPairCount = 1
			}
			run, err := buildForwarding(c, scheme, false)
			if err != nil {
				return nil, err
			}
			run.rt.Run()
			res.Storage[scheme] = append(res.Storage[scheme], run.maint.TotalStorageBytes())
		}
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig10Result) Title() string {
	return fmt.Sprintf("Figure 10: total provenance storage vs. communicating pairs (%d packets total)", r.TotalPackets)
}

// Headers returns the table header.
func (r *Fig10Result) Headers() []string {
	return append([]string{"pairs"}, r.order...)
}

// Rows returns one row per pair count.
func (r *Fig10Result) Rows() [][]string {
	var rows [][]string
	for i, pairs := range r.PairCounts {
		row := []string{fmt.Sprint(pairs)}
		for _, s := range r.order {
			row = append(row, metrics.HumanBytes(r.Storage[s][i]))
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig11Result holds the network bandwidth consumption over time per scheme
// (Figure 11), plus the Advanced variant with periodic route updates
// (Section 6.1.2's 0.6% overhead experiment).
type Fig11Result struct {
	Cfg       ForwardingConfig
	PerScheme map[string]*metrics.Series // cumulative bytes on the wire
	// UpdateOverheadPct is the relative extra bandwidth of Advanced when a
	// route is updated every UpdateEvery.
	UpdateOverheadPct float64
	UpdateEvery       time.Duration
	order             []string
}

// Fig11 runs the bandwidth experiment; updateEvery > 0 additionally runs
// Advanced with periodic route insertions to measure the sig-broadcast
// overhead.
func Fig11(cfg ForwardingConfig, updateEvery time.Duration) (*Fig11Result, error) {
	res := &Fig11Result{
		Cfg: cfg, PerScheme: make(map[string]*metrics.Series),
		UpdateEvery: updateEvery, order: schemesOrDefault(cfg.Schemes),
	}
	for _, scheme := range res.order {
		run, err := buildForwarding(cfg, scheme, false)
		if err != nil {
			return nil, err
		}
		net := run.rt.Net
		res.PerScheme[scheme] = snapshotSeries(run.rt, cfg.Duration, cfg.Snapshots,
			func() float64 { return float64(net.TotalBytes()) })
		run.rt.Run()
	}
	if updateEvery > 0 {
		run, err := buildForwarding(cfg, core.SchemeAdvanced, false)
		if err != nil {
			return nil, err
		}
		// Insert a fresh route entry periodically at pseudo-random transit
		// nodes: each insertion triggers a sig broadcast.
		r := rand.New(rand.NewSource(cfg.Seed + 99))
		nodes := run.ts.Transit
		var ticks int
		for at := updateEvery; at <= cfg.Duration; at += updateEvery {
			ticks++
			tick := ticks
			rt := run.rt
			rt.Net.Scheduler().At(at, func() {
				n := nodes[r.Intn(len(nodes))]
				dst := fmt.Sprintf("upd-dst-%d", tick)
				next := run.ts.Graph.Neighbors(n)[0]
				rt.InsertSlow(types.NewTuple("route",
					types.String(string(n)), types.String(dst), types.String(string(next))))
			})
		}
		run.rt.Run()
		withUpdates := float64(run.rt.Net.TotalBytes())
		baseline := res.PerScheme[core.SchemeAdvanced].Last()
		if baseline > 0 {
			res.UpdateOverheadPct = (withUpdates - baseline) / baseline * 100
		}
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig11Result) Title() string {
	return fmt.Sprintf("Figure 11: bandwidth consumption during packet forwarding (%d pairs, %d-byte payloads)",
		r.Cfg.Pairs, r.Cfg.PayloadBytes)
}

// Headers returns the table header.
func (r *Fig11Result) Headers() []string {
	return append([]string{"t (s)"}, r.order...)
}

// Rows returns cumulative megabytes on the wire per snapshot plus summary
// rows for relative overhead.
func (r *Fig11Result) Rows() [][]string {
	var rows [][]string
	ref := r.PerScheme[r.order[0]]
	for i := 0; i < ref.Len(); i++ {
		row := []string{fseconds(ref.Times[i])}
		for _, s := range r.order {
			row = append(row, fbytes(r.PerScheme[s].Values[i]))
		}
		rows = append(rows, row)
	}
	base := r.PerScheme[core.SchemeExSPAN].Last()
	over := []string{"vs ExSPAN"}
	for _, s := range r.order {
		if base > 0 {
			over = append(over, fmt.Sprintf("%+.1f%%", (r.PerScheme[s].Last()-base)/base*100))
		} else {
			over = append(over, "n/a")
		}
	}
	rows = append(rows, over)
	if r.UpdateEvery > 0 {
		rows = append(rows, []string{
			fmt.Sprintf("route update every %s", r.UpdateEvery),
			"", "", fmt.Sprintf("%+.2f%%", r.UpdateOverheadPct),
		})
	}
	return rows
}

// Fig12Result holds the distributed query latency distribution per scheme
// (Figure 12).
type Fig12Result struct {
	Cfg       ForwardingConfig
	Queries   int
	PerScheme map[string]*metrics.CDF // latencies in milliseconds
	order     []string
}

// Fig12 runs the query-latency experiment: after the workload completes,
// it issues queries for randomly selected recv tuples and measures the
// distributed query latency under each scheme. Following Section 6.1.3,
// the topology is deployed with uniform LAN links (the paper's physical
// 25-machine testbed with real sockets) rather than the simulated WAN
// links, so processing cost — not propagation — dominates.
func Fig12(cfg ForwardingConfig, queries int) (*Fig12Result, error) {
	if cfg.LANLatency == 0 {
		cfg.LANLatency = 200 * time.Microsecond
	}
	res := &Fig12Result{Cfg: cfg, Queries: queries,
		PerScheme: make(map[string]*metrics.CDF), order: schemesOrDefault(cfg.Schemes)}
	for _, scheme := range res.order {
		run, err := buildForwarding(cfg, scheme, true)
		if err != nil {
			return nil, err
		}
		run.rt.Run()
		outs := run.rt.Outputs()
		if len(outs) == 0 {
			return nil, fmt.Errorf("experiments: no outputs to query")
		}
		r := rand.New(rand.NewSource(cfg.Seed + 7))
		var lats []float64
		for i := 0; i < queries; i++ {
			out := outs[r.Intn(len(outs))].Tuple
			var got *core.QueryResult
			run.maint.QueryProvenance(out, types.ZeroID, func(qr core.QueryResult) { got = &qr })
			run.rt.Run()
			if got == nil {
				return nil, fmt.Errorf("experiments: query %d did not complete", i)
			}
			if len(got.Trees) == 0 {
				return nil, fmt.Errorf("experiments: query %d returned no trees for %v", i, out)
			}
			lats = append(lats, float64(got.Latency)/float64(time.Millisecond))
		}
		res.PerScheme[scheme] = metrics.NewCDF(lats)
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig12Result) Title() string {
	return fmt.Sprintf("Figure 12: CDF of provenance query latency (%d random queries)", r.Queries)
}

// Headers returns the table header.
func (r *Fig12Result) Headers() []string {
	return append([]string{"statistic"}, r.order...)
}

// Rows returns latency statistics per scheme (the paper reports mean and
// median).
func (r *Fig12Result) Rows() [][]string {
	stat := func(name string, f func(*metrics.CDF) float64) []string {
		row := []string{name}
		for _, s := range r.order {
			row = append(row, fmt.Sprintf("%.1f ms", f(r.PerScheme[s])))
		}
		return row
	}
	return [][]string{
		stat("mean", func(c *metrics.CDF) float64 {
			xs, _ := c.Points()
			return metrics.Mean(xs)
		}),
		stat("median", func(c *metrics.CDF) float64 { return c.Percentile(0.5) }),
		stat("p90", func(c *metrics.CDF) float64 { return c.Percentile(0.9) }),
		stat("max", func(c *metrics.CDF) float64 { return c.Percentile(1) }),
	}
}
