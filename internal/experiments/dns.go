package experiments

import (
	"fmt"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/metrics"
)

// Fig13Result holds the per-nameserver storage growth distribution for DNS
// resolution (Figure 13).
type Fig13Result struct {
	Cfg       DNSConfig
	PerScheme map[string]*metrics.CDF // bits per second per nameserver
	order     []string
}

// Fig13 runs the per-nameserver storage growth experiment.
func Fig13(cfg DNSConfig) (*Fig13Result, error) {
	res := &Fig13Result{Cfg: cfg, PerScheme: make(map[string]*metrics.CDF), order: schemesOrDefault(cfg.Schemes)}
	for _, scheme := range res.order {
		run, err := buildDNS(cfg, scheme, false)
		if err != nil {
			return nil, err
		}
		run.rt.Run()
		dur := cfg.Duration.Seconds()
		if dur <= 0 {
			dur = run.rt.Net.Scheduler().Now().Seconds()
		}
		var rates []float64
		for _, srv := range run.tree.Servers {
			rates = append(rates, float64(run.maint.StorageBytes(srv))*8/dur)
		}
		res.PerScheme[scheme] = metrics.NewCDF(rates)
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig13Result) Title() string {
	return fmt.Sprintf("Figure 13: CDF of per-nameserver storage growth rate (DNS, %.0f req/s, %d URLs)",
		r.Cfg.Rate, r.Cfg.URLs)
}

// Headers returns the table header.
func (r *Fig13Result) Headers() []string {
	return append([]string{"percentile"}, r.order...)
}

// Rows returns growth-rate percentiles per scheme (the paper highlights
// the 80th percentile: 476 Kbps for ExSPAN vs 121 Kbps for Advanced).
func (r *Fig13Result) Rows() [][]string {
	var rows [][]string
	for _, p := range []float64{0.25, 0.50, 0.80, 0.96, 1.00} {
		row := []string{fmt.Sprintf("p%.0f", p*100)}
		for _, s := range r.order {
			row = append(row, metrics.HumanRate(r.PerScheme[s].Percentile(p)))
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig14Result holds DNS storage versus the number of distinct URLs at a
// fixed request count (Figure 14).
type Fig14Result struct {
	Cfg           DNSConfig
	TotalRequests int
	URLCounts     []int
	Storage       map[string][]int64
	order         []string
}

// Fig14 runs the storage-vs-URLs experiment: TotalRequests requests spread
// over an increasing URL population.
func Fig14(cfg DNSConfig, totalRequests int, urlCounts []int) (*Fig14Result, error) {
	res := &Fig14Result{
		Cfg: cfg, TotalRequests: totalRequests, URLCounts: urlCounts,
		Storage: make(map[string][]int64), order: schemesOrDefault(cfg.Schemes),
	}
	for _, scheme := range res.order {
		for _, urls := range urlCounts {
			c := cfg
			c.URLs = urls
			c.Duration = 0
			c.Count = totalRequests
			run, err := buildDNS(c, scheme, false)
			if err != nil {
				return nil, err
			}
			run.rt.Run()
			res.Storage[scheme] = append(res.Storage[scheme], run.maint.TotalStorageBytes())
		}
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig14Result) Title() string {
	return fmt.Sprintf("Figure 14: DNS provenance storage vs. distinct URLs (%d requests total)", r.TotalRequests)
}

// Headers returns the table header.
func (r *Fig14Result) Headers() []string {
	return append([]string{"urls"}, r.order...)
}

// Rows returns one row per URL count.
func (r *Fig14Result) Rows() [][]string {
	var rows [][]string
	for i, urls := range r.URLCounts {
		row := []string{fmt.Sprint(urls)}
		for _, s := range r.order {
			row = append(row, metrics.HumanBytes(r.Storage[s][i]))
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig15Result holds the DNS bandwidth consumption over time (Figure 15).
type Fig15Result struct {
	Cfg       DNSConfig
	Requests  int
	PerScheme map[string]*metrics.Series // cumulative bytes on the wire
	order     []string
}

// Fig15 runs the DNS bandwidth experiment with a fixed request count.
func Fig15(cfg DNSConfig, requests int) (*Fig15Result, error) {
	res := &Fig15Result{Cfg: cfg, Requests: requests,
		PerScheme: make(map[string]*metrics.Series), order: schemesOrDefault(cfg.Schemes)}
	c := cfg
	c.Count = requests
	// Duration implied by rate and count; size snapshots to cover it.
	span := c.Duration
	if span == 0 {
		span = timeForRequests(c.Rate, requests)
	}
	for _, scheme := range res.order {
		run, err := buildDNS(c, scheme, false)
		if err != nil {
			return nil, err
		}
		net := run.rt.Net
		res.PerScheme[scheme] = snapshotSeries(run.rt, span, cfg.Snapshots,
			func() float64 { return float64(net.TotalBytes()) })
		run.rt.Run()
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig15Result) Title() string {
	return fmt.Sprintf("Figure 15: bandwidth consumption for DNS resolution (%d requests)", r.Requests)
}

// Headers returns the table header.
func (r *Fig15Result) Headers() []string {
	return append([]string{"t (s)"}, r.order...)
}

// Rows returns cumulative traffic per snapshot plus the Advanced overhead
// summary (the paper reports about 25% over ExSPAN/Basic, since DNS
// requests carry no payload to amortize the compression metadata).
func (r *Fig15Result) Rows() [][]string {
	var rows [][]string
	ref := r.PerScheme[r.order[0]]
	for i := 0; i < ref.Len(); i++ {
		row := []string{fseconds(ref.Times[i])}
		for _, s := range r.order {
			row = append(row, fbytes(r.PerScheme[s].Values[i]))
		}
		rows = append(rows, row)
	}
	base := r.PerScheme[core.SchemeExSPAN].Last()
	over := []string{"vs ExSPAN"}
	for _, s := range r.order {
		if base > 0 {
			over = append(over, fmt.Sprintf("%+.1f%%", (r.PerScheme[s].Last()-base)/base*100))
		} else {
			over = append(over, "n/a")
		}
	}
	rows = append(rows, over)
	return rows
}

// Fig16Result holds the DNS total storage over time (Figure 16).
type Fig16Result struct {
	Cfg       DNSConfig
	PerScheme map[string]*metrics.Series
	order     []string
}

// Fig16 runs the DNS total-storage-growth experiment.
func Fig16(cfg DNSConfig) (*Fig16Result, error) {
	res := &Fig16Result{Cfg: cfg, PerScheme: make(map[string]*metrics.Series), order: schemesOrDefault(cfg.Schemes)}
	for _, scheme := range res.order {
		run, err := buildDNS(cfg, scheme, false)
		if err != nil {
			return nil, err
		}
		maint := run.maint
		res.PerScheme[scheme] = snapshotSeries(run.rt, cfg.Duration, cfg.Snapshots,
			func() float64 { return float64(maint.TotalStorageBytes()) })
		run.rt.Run()
	}
	return res, nil
}

// Title describes the figure.
func (r *Fig16Result) Title() string {
	return fmt.Sprintf("Figure 16: DNS provenance storage vs. time (%.0f req/s)", r.Cfg.Rate)
}

// Headers returns the table header.
func (r *Fig16Result) Headers() []string {
	return append([]string{"t (s)"}, r.order...)
}

// Rows returns one row per snapshot plus a growth-rate summary (the paper
// reports 13.15 / 11.57 / 3.81 Mbps).
func (r *Fig16Result) Rows() [][]string {
	var rows [][]string
	ref := r.PerScheme[r.order[0]]
	for i := 0; i < ref.Len(); i++ {
		row := []string{fseconds(ref.Times[i])}
		for _, s := range r.order {
			row = append(row, fbytes(r.PerScheme[s].Values[i]))
		}
		rows = append(rows, row)
	}
	rate := []string{"growth"}
	for _, s := range r.order {
		rate = append(rate, metrics.HumanRate(r.PerScheme[s].GrowthRate()*8))
	}
	rows = append(rows, rate)
	return rows
}

// timeForRequests returns how long a request stream of the given rate and
// count spans.
func timeForRequests(rate float64, count int) time.Duration {
	return time.Duration(float64(time.Second) * float64(count) / rate)
}
