package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestPaperConfigsMatchSection6(t *testing.T) {
	f := PaperForwardingConfig()
	if f.Pairs != 100 || f.Rate != 100 || f.Duration != 100*time.Second {
		t.Errorf("paper forwarding config = %+v", f)
	}
	if f.PayloadBytes != 500 {
		t.Errorf("payload = %d, want the paper's 500 characters", f.PayloadBytes)
	}
	if f.Topo.NumTransit != 4 || f.Topo.DomainsPerTransit != 3 || f.Topo.NodesPerDomain != 8 {
		t.Errorf("topology config = %+v, want the 100-node transit-stub", f.Topo)
	}

	d := PaperDNSConfig()
	if d.Rate != 1000 || d.URLs != 38 || d.Duration != 100*time.Second {
		t.Errorf("paper dns config = %+v", d)
	}
	if d.Tree.NumServers != 100 || d.Tree.MaxDepth != 27 {
		t.Errorf("dns tree config = %+v, want 100 servers / depth 27", d.Tree)
	}
}

func TestBuildErrorsSurface(t *testing.T) {
	cfg := DefaultForwardingConfig()
	if _, err := buildForwarding(cfg, "nosuchscheme", false); err == nil {
		t.Error("unknown scheme accepted")
	}
	dcfg := DefaultDNSConfig()
	if _, err := buildDNS(dcfg, "nosuchscheme", false); err == nil {
		t.Error("unknown scheme accepted")
	}
	// Every figure driver surfaces the scheme error path through the same
	// builders; spot-check one.
	if _, err := Fig10(cfg, 10, []int{1000000}); err != nil {
		// Pair counts above n*(n-1) are capped by the workload generator,
		// not an error.
		t.Errorf("oversized pair count errored: %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := AblationMetaOverhead([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "payload (bytes),") {
		t.Errorf("header = %q", lines[0])
	}
}
