package experiments

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/metrics"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
	"provcompress/internal/workload"
)

// Ablation experiments probe the design choices DESIGN.md calls out: the
// value of the Section 5.4 inter-class table split, the cost of the
// compression metadata as payloads shrink, and how query latency scales
// with path length.

// AblationICResult compares the default (chained) Advanced scheme against
// the Section 5.4 inter-class split on a convergent workload where many
// equivalence classes share path suffixes.
type AblationICResult struct {
	Nodes           int
	PacketsPerClass int
	Chained         int64
	InterClass      int64
	ChainedNodes    int
	ICNodes         int
}

// AblationInterClass sends packets from every node of a chain towards the
// last node: class i's provenance chain is a suffix of class i+1's, the
// sharing opportunity the split exploits.
func AblationInterClass(nodes, packetsPerClass int) (*AblationICResult, error) {
	res := &AblationICResult{Nodes: nodes, PacketsPerClass: packetsPerClass}
	run := func(scheme string) (int64, int, error) {
		maint, err := core.NewScheme(scheme)
		if err != nil {
			return 0, 0, err
		}
		var sched sim.Scheduler
		g := topo.Line(nodes, "n")
		net := netsim.New(&sched, g)
		rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
		rt.KeepOutputs = false
		if err := rt.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
			return 0, 0, err
		}
		dst := types.NodeAddr(fmt.Sprintf("n%d", nodes-1))
		seq := 0
		for i := 0; i < nodes-1; i++ {
			src := types.NodeAddr(fmt.Sprintf("n%d", i))
			for k := 0; k < packetsPerClass; k++ {
				rt.InjectAt(time.Duration(seq)*time.Millisecond,
					workload.PacketEvent(workload.Pair{Src: src, Dst: dst}, int64(seq), 64))
				seq++
			}
		}
		rt.Run()
		execRows := 0
		for _, addr := range g.Nodes() {
			switch m := maint.(type) {
			case *core.Advanced:
				execRows += len(m.RuleExecRows(addr))
			}
		}
		return maint.TotalStorageBytes(), execRows, nil
	}
	var err error
	if res.Chained, res.ChainedNodes, err = run(core.SchemeAdvanced); err != nil {
		return nil, err
	}
	if res.InterClass, res.ICNodes, err = run(core.SchemeAdvancedInterClass); err != nil {
		return nil, err
	}
	return res, nil
}

// Title describes the ablation.
func (r *AblationICResult) Title() string {
	return fmt.Sprintf("Ablation: Section 5.4 inter-class sharing (%d convergent classes, %d packets each)",
		r.Nodes-1, r.PacketsPerClass)
}

// Headers returns the table header.
func (r *AblationICResult) Headers() []string {
	return []string{"variant", "ruleExec rows", "prov storage", "saving"}
}

// Rows returns the comparison.
func (r *AblationICResult) Rows() [][]string {
	saving := float64(r.Chained-r.InterClass) / float64(r.Chained) * 100
	return [][]string{
		{"Advanced (chained)", fmt.Sprint(r.ChainedNodes), metrics.HumanBytes(r.Chained), ""},
		{"Advanced+IC (5.4)", fmt.Sprint(r.ICNodes), metrics.HumanBytes(r.InterClass),
			fmt.Sprintf("%.1f%%", saving)},
	}
}

// AblationMetaResult measures the bandwidth overhead of the compression
// metadata as the application payload shrinks — the mechanism behind the
// Figure 11 vs Figure 15 contrast.
type AblationMetaResult struct {
	PayloadSizes []int
	// OverheadPct[i] is Advanced's wire-byte overhead over ExSPAN at
	// PayloadSizes[i].
	OverheadPct []float64
}

// AblationMetaOverhead runs a fixed forwarding workload at several payload
// sizes and reports Advanced's relative bandwidth overhead.
func AblationMetaOverhead(payloadSizes []int) (*AblationMetaResult, error) {
	res := &AblationMetaResult{PayloadSizes: payloadSizes}
	for _, size := range payloadSizes {
		bytes := make(map[string]int64)
		for _, scheme := range []string{core.SchemeExSPAN, core.SchemeAdvanced} {
			maint, err := core.NewScheme(scheme)
			if err != nil {
				return nil, err
			}
			var sched sim.Scheduler
			g := topo.Line(6, "n")
			net := netsim.New(&sched, g)
			rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
			rt.KeepOutputs = false
			if err := rt.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
				return nil, err
			}
			w := workload.PairTraffic{
				Pairs:        []workload.Pair{{Src: "n0", Dst: "n5"}, {Src: "n5", Dst: "n0"}},
				Rate:         100,
				PayloadBytes: size,
				PerPairCount: 100,
			}
			w.Schedule(rt, 0)
			rt.Run()
			bytes[scheme] = net.TotalBytes()
		}
		res.OverheadPct = append(res.OverheadPct,
			float64(bytes[core.SchemeAdvanced]-bytes[core.SchemeExSPAN])/float64(bytes[core.SchemeExSPAN])*100)
	}
	return res, nil
}

// Title describes the ablation.
func (r *AblationMetaResult) Title() string {
	return "Ablation: compression metadata overhead vs. payload size (Advanced over ExSPAN)"
}

// Headers returns the table header.
func (r *AblationMetaResult) Headers() []string {
	return []string{"payload (bytes)", "bandwidth overhead"}
}

// Rows returns the overhead per payload size.
func (r *AblationMetaResult) Rows() [][]string {
	var rows [][]string
	for i, size := range r.PayloadSizes {
		rows = append(rows, []string{fmt.Sprint(size), fmt.Sprintf("%+.1f%%", r.OverheadPct[i])})
	}
	return rows
}

// AblationGzipResult compares the equivalence-based structural compression
// against content-level compression of the uncompressed tables — the
// alternative Section 2.3 argues against (gzip would save space but make
// the provenance unqueryable without decompressing and would not reduce
// maintenance-time state).
type AblationGzipResult struct {
	Packets      int
	ExSPANRaw    int64 // serialized ExSPAN tables
	ExSPANGzip   int64 // the same tables gzip-compressed
	AdvancedRaw  int64 // serialized Advanced tables (queryable as-is)
	AdvancedGzip int64
}

// AblationGzip runs a shared-class forwarding workload and measures each
// representation.
func AblationGzip(packets int) (*AblationGzipResult, error) {
	res := &AblationGzipResult{Packets: packets}
	serialized := func(scheme string) ([]byte, error) {
		maint, err := core.NewScheme(scheme)
		if err != nil {
			return nil, err
		}
		var sched sim.Scheduler
		g := topo.Line(6, "n")
		net := netsim.New(&sched, g)
		rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
		rt.KeepOutputs = false
		if err := rt.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
			return nil, err
		}
		for i := 0; i < packets; i++ {
			rt.InjectAt(time.Duration(i)*time.Millisecond,
				workload.PacketEvent(workload.Pair{Src: "n0", Dst: "n5"}, int64(i), 64))
		}
		rt.Run()
		type serializer interface {
			SerializeNode(types.NodeAddr) []byte
		}
		sz, ok := maint.(serializer)
		if !ok {
			return nil, fmt.Errorf("experiments: %s does not serialize", scheme)
		}
		var all []byte
		for _, addr := range g.Nodes() {
			all = append(all, sz.SerializeNode(addr)...)
		}
		return all, nil
	}
	gz := func(b []byte) (int64, error) {
		var buf bytes.Buffer
		w, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
		if err != nil {
			return 0, err
		}
		if _, err := w.Write(b); err != nil {
			return 0, err
		}
		if err := w.Close(); err != nil {
			return 0, err
		}
		return int64(buf.Len()), nil
	}

	ex, err := serialized(core.SchemeExSPAN)
	if err != nil {
		return nil, err
	}
	ad, err := serialized(core.SchemeAdvanced)
	if err != nil {
		return nil, err
	}
	res.ExSPANRaw = int64(len(ex))
	res.AdvancedRaw = int64(len(ad))
	if res.ExSPANGzip, err = gz(ex); err != nil {
		return nil, err
	}
	if res.AdvancedGzip, err = gz(ad); err != nil {
		return nil, err
	}
	return res, nil
}

// Title describes the ablation.
func (r *AblationGzipResult) Title() string {
	return fmt.Sprintf("Ablation: structural compression vs. gzip of uncompressed tables (%d shared-class packets)", r.Packets)
}

// Headers returns the table header.
func (r *AblationGzipResult) Headers() []string {
	return []string{"representation", "bytes", "queryable in place"}
}

// Rows returns the comparison.
func (r *AblationGzipResult) Rows() [][]string {
	return [][]string{
		{"ExSPAN tables", metrics.HumanBytes(r.ExSPANRaw), "yes"},
		{"ExSPAN tables, gzipped", metrics.HumanBytes(r.ExSPANGzip), "no (decompress first)"},
		{"Advanced tables", metrics.HumanBytes(r.AdvancedRaw), "yes"},
		{"Advanced tables, gzipped", metrics.HumanBytes(r.AdvancedGzip), "no (decompress first)"},
	}
}

// AblationQueryResult measures query latency against path length per
// scheme.
type AblationQueryResult struct {
	PathLengths []int
	// LatencyMS[scheme][i] is the query latency in milliseconds over a
	// path of PathLengths[i] hops.
	LatencyMS map[string][]float64
	order     []string
}

// AblationQueryScaling runs one query per chain length per scheme.
func AblationQueryScaling(pathLengths []int) (*AblationQueryResult, error) {
	res := &AblationQueryResult{
		PathLengths: pathLengths,
		LatencyMS:   make(map[string][]float64),
		order:       core.SchemeNames(),
	}
	for _, scheme := range res.order {
		for _, hops := range pathLengths {
			maint, err := core.NewScheme(scheme)
			if err != nil {
				return nil, err
			}
			var sched sim.Scheduler
			g := topo.Line(hops+1, "n").WithUniformLinks(200*time.Microsecond, 1_000_000_000)
			net := netsim.New(&sched, g)
			rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
			if err := rt.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
				return nil, err
			}
			dst := types.NodeAddr(fmt.Sprintf("n%d", hops))
			ev := workload.PacketEvent(workload.Pair{Src: "n0", Dst: dst}, 1, 500)
			rt.InjectAt(0, ev)
			rt.Run()
			if rt.NumOutputs() != 1 {
				return nil, fmt.Errorf("experiments: ablation query: no output at %d hops", hops)
			}
			out := rt.Outputs()[0].Tuple
			var lat time.Duration
			maint.QueryProvenance(out, types.HashTuple(ev), func(qr core.QueryResult) {
				lat = qr.Latency
			})
			rt.Run()
			res.LatencyMS[scheme] = append(res.LatencyMS[scheme],
				float64(lat)/float64(time.Millisecond))
		}
	}
	return res, nil
}

// Title describes the ablation.
func (r *AblationQueryResult) Title() string {
	return "Ablation: query latency vs. path length (LAN emulation)"
}

// Headers returns the table header.
func (r *AblationQueryResult) Headers() []string {
	return []string{"hops", "ExSPAN", "Basic", "Advanced"}
}

// Rows returns one row per path length.
func (r *AblationQueryResult) Rows() [][]string {
	var rows [][]string
	for i, hops := range r.PathLengths {
		row := []string{fmt.Sprint(hops)}
		for _, s := range r.order {
			row = append(row, fmt.Sprintf("%.1f ms", r.LatencyMS[s][i]))
		}
		rows = append(rows, row)
	}
	return rows
}
