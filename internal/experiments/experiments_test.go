package experiments

import (
	"strings"
	"testing"
	"time"

	"provcompress/internal/core"
)

// smallForwarding returns a fast configuration that still exercises the
// full 100-node topology.
func smallForwarding() ForwardingConfig {
	cfg := DefaultForwardingConfig()
	cfg.Pairs = 10
	cfg.Rate = 10
	cfg.Duration = 2 * time.Second
	cfg.Snapshots = 4
	return cfg
}

func smallDNS() DNSConfig {
	cfg := DefaultDNSConfig()
	cfg.Tree.NumServers = 25
	cfg.Tree.MaxDepth = 8
	cfg.URLs = 10
	cfg.Rate = 100
	cfg.Duration = 2 * time.Second
	cfg.Snapshots = 4
	return cfg
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(smallForwarding())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: ExSPAN grows fastest per node, Advanced
	// slowest, at the heavy end of the distribution.
	for _, p := range []float64{0.8, 1.0} {
		ex := res.PerScheme[core.SchemeExSPAN].Percentile(p)
		ba := res.PerScheme[core.SchemeBasic].Percentile(p)
		ad := res.PerScheme[core.SchemeAdvanced].Percentile(p)
		if !(ex > ba && ba > ad) {
			t.Errorf("p%.0f: want ExSPAN > Basic > Advanced, got %v > %v > %v", p*100, ex, ba, ad)
		}
	}
	// Substantial compression at the top end.
	ex := res.PerScheme[core.SchemeExSPAN].Percentile(1)
	ad := res.PerScheme[core.SchemeAdvanced].Percentile(1)
	if ex < 3*ad {
		t.Errorf("max rate ratio = %.2f, want >= 3 (paper reports ~11x)", ex/ad)
	}
	if len(res.Rows()) == 0 || len(res.Headers()) != 4 {
		t.Error("result table malformed")
	}
	if !strings.Contains(Format(res), "Figure 8") {
		t.Error("Format missing title")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(smallForwarding())
	if err != nil {
		t.Fatal(err)
	}
	ex := res.PerScheme[core.SchemeExSPAN]
	ba := res.PerScheme[core.SchemeBasic]
	ad := res.PerScheme[core.SchemeAdvanced]
	if !(ex.Last() > ba.Last() && ba.Last() > ad.Last()) {
		t.Errorf("final storage: ExSPAN %v, Basic %v, Advanced %v", ex.Last(), ba.Last(), ad.Last())
	}
	// ExSPAN and Basic grow roughly linearly: the midpoint sample is close
	// to half the final value.
	mid := ex.Values[ex.Len()/2]
	if mid < 0.25*ex.Last() || mid > 0.75*ex.Last() {
		t.Errorf("ExSPAN growth not roughly linear: mid %v vs final %v", mid, ex.Last())
	}
	// Advanced also grows (one prov row per packet) but at a much lower
	// rate — the paper reports 131 vs 10.3 MB/s, a 12.7x gap; require 3x.
	if ex.GrowthRate() < 3*ad.GrowthRate() {
		t.Errorf("growth-rate ratio = %.2f, want >= 3 (ExSPAN %v/s vs Advanced %v/s)",
			ex.GrowthRate()/ad.GrowthRate(), ex.GrowthRate(), ad.GrowthRate())
	}
	if len(res.Rows()) != ex.Len()+1 {
		t.Errorf("rows = %d, want %d", len(res.Rows()), ex.Len()+1)
	}
}

func TestFig10Shape(t *testing.T) {
	cfg := smallForwarding()
	res, err := Fig10(cfg, 200, []int{5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Storage[core.SchemeExSPAN]
	ad := res.Storage[core.SchemeAdvanced]
	// ExSPAN roughly constant in the number of pairs (per-packet storage).
	ratio := float64(maxI64(ex)) / float64(minI64(ex))
	if ratio > 1.6 {
		t.Errorf("ExSPAN storage varies %0.2fx across pair counts: %v", ratio, ex)
	}
	// Advanced grows with pair count (one shared tree per class)...
	if !(ad[0] < ad[1] && ad[1] < ad[2]) {
		t.Errorf("Advanced storage not increasing with pairs: %v", ad)
	}
	// ...but stays well below ExSPAN everywhere.
	for i := range ad {
		if ad[i]*2 > ex[i] {
			t.Errorf("pairs=%d: Advanced %d not well below ExSPAN %d", res.PairCounts[i], ad[i], ex[i])
		}
	}
	if len(res.Rows()) != 3 {
		t.Errorf("rows = %d", len(res.Rows()))
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := smallForwarding()
	res, err := Fig11(cfg, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ex := res.PerScheme[core.SchemeExSPAN].Last()
	ba := res.PerScheme[core.SchemeBasic].Last()
	ad := res.PerScheme[core.SchemeAdvanced].Last()
	// With 500-byte payloads the three schemes consume similar bandwidth
	// (the paper: "close"): within 15%.
	for name, v := range map[string]float64{"Basic": ba, "Advanced": ad} {
		if v < ex*0.85 || v > ex*1.15 {
			t.Errorf("%s bandwidth %v not within 15%% of ExSPAN %v", name, v, ex)
		}
	}
	// Route updates add little. (The paper reports 0.6% at full scale —
	// updates every 10 s over 100 s; this scaled-down run updates every
	// 500 ms over 2 s, so allow up to 10%.)
	if res.UpdateOverheadPct < 0 || res.UpdateOverheadPct > 10 {
		t.Errorf("update overhead = %.2f%%, want small and nonnegative", res.UpdateOverheadPct)
	}
	if !strings.Contains(Format(res), "route update") {
		t.Error("update row missing")
	}
}

func TestFig12Shape(t *testing.T) {
	cfg := smallForwarding()
	cfg.Pairs = 8
	cfg.Rate = 5
	cfg.Duration = time.Second
	res, err := Fig12(cfg, 15)
	if err != nil {
		t.Fatal(err)
	}
	exMean := res.PerScheme[core.SchemeExSPAN].Percentile(0.5)
	baMean := res.PerScheme[core.SchemeBasic].Percentile(0.5)
	adMean := res.PerScheme[core.SchemeAdvanced].Percentile(0.5)
	// The paper reports about 3x; require at least 1.5x to stay robust to
	// configuration scale.
	if exMean < 1.5*baMean {
		t.Errorf("ExSPAN median %v < 1.5x Basic %v", exMean, baMean)
	}
	if exMean < 1.5*adMean {
		t.Errorf("ExSPAN median %v < 1.5x Advanced %v", exMean, adMean)
	}
	if len(res.Rows()) != 4 {
		t.Errorf("rows = %d", len(res.Rows()))
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(smallDNS())
	if err != nil {
		t.Fatal(err)
	}
	ex := res.PerScheme[core.SchemeExSPAN].Percentile(0.8)
	ad := res.PerScheme[core.SchemeAdvanced].Percentile(0.8)
	if ex <= ad {
		t.Errorf("p80: ExSPAN %v <= Advanced %v", ex, ad)
	}
	// The paper reports about 4x at the 80th percentile; require >= 2x.
	if ex < 2*ad {
		t.Errorf("p80 ratio = %.2f, want >= 2", ex/ad)
	}
}

func TestFig14Shape(t *testing.T) {
	cfg := smallDNS()
	res, err := Fig14(cfg, 200, []int{2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Storage[core.SchemeExSPAN]
	ad := res.Storage[core.SchemeAdvanced]
	// Advanced grows with URL count but stays smallest.
	if !(ad[0] < ad[1] && ad[1] < ad[2]) {
		t.Errorf("Advanced not increasing with URLs: %v", ad)
	}
	for i := range ad {
		if ad[i] >= ex[i] {
			t.Errorf("urls=%d: Advanced %d >= ExSPAN %d", res.URLCounts[i], ad[i], ex[i])
		}
	}
}

func TestFig15Shape(t *testing.T) {
	cfg := smallDNS()
	cfg.Duration = 0
	res, err := Fig15(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	ex := res.PerScheme[core.SchemeExSPAN].Last()
	ad := res.PerScheme[core.SchemeAdvanced].Last()
	// DNS requests have no payload, so the compression metadata shows up:
	// Advanced consumes measurably more bandwidth (the paper: ~25% more).
	if ad <= ex*1.05 {
		t.Errorf("Advanced bandwidth %v not measurably above ExSPAN %v", ad, ex)
	}
	if ad > ex*1.6 {
		t.Errorf("Advanced bandwidth %v implausibly above ExSPAN %v", ad, ex)
	}
}

func TestFig16Shape(t *testing.T) {
	res, err := Fig16(smallDNS())
	if err != nil {
		t.Fatal(err)
	}
	ex := res.PerScheme[core.SchemeExSPAN]
	ba := res.PerScheme[core.SchemeBasic]
	ad := res.PerScheme[core.SchemeAdvanced]
	if !(ex.GrowthRate() > ba.GrowthRate() && ba.GrowthRate() > ad.GrowthRate()) {
		t.Errorf("growth rates: ExSPAN %v, Basic %v, Advanced %v",
			ex.GrowthRate(), ba.GrowthRate(), ad.GrowthRate())
	}
	if len(res.Rows()) != ex.Len()+1 {
		t.Errorf("rows = %d", len(res.Rows()))
	}
}

func maxI64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minI64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
