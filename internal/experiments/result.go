package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"provcompress/internal/engine"
	"provcompress/internal/metrics"
)

// Result is the common surface of every experiment outcome: a title and
// the table the paper's figure corresponds to.
type Result interface {
	Title() string
	Headers() []string
	Rows() [][]string
}

// Format renders a result as an aligned text table with its title.
func Format(r Result) string {
	return r.Title() + "\n" + metrics.FormatTable(r.Headers(), r.Rows())
}

// WriteCSV writes a result as CSV (header row first), the plot-ready
// format for regenerating the paper's figures with external tooling.
func WriteCSV(w io.Writer, r Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Headers()); err != nil {
		return err
	}
	if err := cw.WriteAll(r.Rows()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// snapshotSeries schedules periodic measurements of measure() on the
// runtime's clock: one sample every duration/snapshots, plus the sample at
// t=0. Call before rt.Run().
func snapshotSeries(rt *engine.Runtime, duration time.Duration, snapshots int, measure func() float64) *metrics.Series {
	s := &metrics.Series{}
	if snapshots < 1 {
		snapshots = 1
	}
	interval := duration / time.Duration(snapshots)
	for i := 0; i <= snapshots; i++ {
		at := time.Duration(i) * interval
		rt.Net.Scheduler().At(at, func() { s.Add(rt.Net.Scheduler().Now(), measure()) })
	}
	return s
}

func fseconds(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}

func fbytes(v float64) string {
	return metrics.HumanBytes(int64(v))
}
