// Package experiments regenerates every figure of the paper's evaluation
// (Section 6): Figures 8-12 for packet forwarding and Figures 13-16 for DNS
// resolution. Each FigN function runs the corresponding experiment for the
// compared maintenance schemes and returns a typed result that formats the
// same rows/series the paper plots.
//
// Default configurations are scaled down so the whole suite runs in
// seconds; Paper* configurations reproduce the paper's parameters (100
// communicating pairs at 100 packets/second for 100 seconds, 1000 DNS
// requests/second, ...) for full-scale runs from cmd/provsim.
package experiments

import (
	"fmt"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/workload"
)

// ForwardingConfig parameterizes the packet-forwarding experiments
// (Section 6.1).
type ForwardingConfig struct {
	Topo         topo.TransitStubConfig
	Pairs        int
	Rate         float64 // packets per second per pair
	PayloadBytes int
	Duration     time.Duration
	PerPairCount int // alternative to Duration when > 0
	Snapshots    int
	Seed         int64
	// Schemes lists the maintenance schemes to compare; empty means the
	// paper's three (ExSPAN, Basic, Advanced). Append
	// core.SchemeAdvancedInterClass to add the Section 5.4 variant as a
	// fourth series.
	Schemes []string
	// LANLatency, when positive, replaces every link's parameters with a
	// uniform LAN-class link (latency LANLatency, 1 Gbps), emulating the
	// paper's physical 25-machine testbed of Section 6.1.3. Storage and
	// bandwidth experiments leave it zero (ns-3 WAN links).
	LANLatency time.Duration
}

// DefaultForwardingConfig is the scaled-down configuration used by tests
// and benchmarks.
func DefaultForwardingConfig() ForwardingConfig {
	return ForwardingConfig{
		Topo:         topo.DefaultTransitStub(),
		Pairs:        20,
		Rate:         20,
		PayloadBytes: 500,
		Duration:     5 * time.Second,
		Snapshots:    10,
		Seed:         1,
	}
}

// PaperForwardingConfig reproduces Section 6.1: 100 random pairs of a
// 100-node transit-stub topology at 100 packets/second each, payloads of
// 500 characters, measured over 100 seconds.
func PaperForwardingConfig() ForwardingConfig {
	cfg := DefaultForwardingConfig()
	cfg.Pairs = 100
	cfg.Rate = 100
	cfg.Duration = 100 * time.Second
	return cfg
}

// DNSConfig parameterizes the DNS resolution experiments (Section 6.2).
type DNSConfig struct {
	Tree      topo.DNSTreeConfig
	URLs      int
	Clients   int
	Rate      float64 // requests per second, aggregate
	Alpha     float64 // Zipf exponent
	Duration  time.Duration
	Count     int // alternative to Duration when > 0
	Snapshots int
	Seed      int64
	// Schemes lists the maintenance schemes to compare; empty means the
	// paper's three.
	Schemes []string
}

// DefaultDNSConfig is the scaled-down configuration used by tests and
// benchmarks.
func DefaultDNSConfig() DNSConfig {
	return DNSConfig{
		Tree:      topo.DNSTreeConfig{NumServers: 40, MaxDepth: 12, Seed: 1},
		URLs:      38,
		Clients:   4,
		Rate:      200,
		Alpha:     0.9,
		Duration:  5 * time.Second,
		Snapshots: 10,
		Seed:      1,
	}
}

// PaperDNSConfig reproduces Section 6.2: 100 nameservers with tree depth
// 27, 38 distinct URLs requested Zipfian at 1000 requests/second over 100
// seconds.
func PaperDNSConfig() DNSConfig {
	cfg := DefaultDNSConfig()
	cfg.Tree = topo.DefaultDNSTree()
	cfg.Rate = 1000
	cfg.Duration = 100 * time.Second
	return cfg
}

// forwardingRun is one scheme's instantiated forwarding experiment.
type forwardingRun struct {
	rt    *engine.Runtime
	maint core.Maintainer
	ts    *topo.TransitStub
	pairs []workload.Pair
}

// buildForwarding constructs the topology, runtime, routes and traffic for
// one scheme. Traffic is scheduled but not yet run.
func buildForwarding(cfg ForwardingConfig, scheme string, materialize bool) (*forwardingRun, error) {
	maint, err := core.NewScheme(scheme)
	if err != nil {
		return nil, err
	}
	return buildForwardingMaint(cfg, maint, materialize)
}

// buildForwardingMaint is buildForwarding with an explicit maintainer,
// letting tests tune scheme parameters (e.g. the query cost model) before
// the run.
func buildForwardingMaint(cfg ForwardingConfig, maint core.Maintainer, materialize bool) (*forwardingRun, error) {
	ts := topo.GenTransitStub(cfg.Topo)
	if cfg.LANLatency > 0 {
		ts.Graph = ts.Graph.WithUniformLinks(cfg.LANLatency, 1_000_000_000)
	}
	var sched sim.Scheduler
	net := netsim.New(&sched, ts.Graph)
	rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
	rt.KeepOutputs = materialize
	rt.MaterializeDeliveries = materialize
	if err := rt.LoadBase(ts.Graph.ShortestPaths().RouteTuples()); err != nil {
		return nil, err
	}
	pairs := workload.ChoosePairs(ts.Stubs, cfg.Pairs, cfg.Seed)
	w := workload.PairTraffic{
		Pairs:        pairs,
		Rate:         cfg.Rate,
		PayloadBytes: cfg.PayloadBytes,
		Duration:     cfg.Duration,
		PerPairCount: cfg.PerPairCount,
	}
	w.Schedule(rt, 0)
	return &forwardingRun{rt: rt, maint: maint, ts: ts, pairs: pairs}, nil
}

// schemesOrDefault returns the configured scheme list or the paper's three.
func schemesOrDefault(schemes []string) []string {
	if len(schemes) == 0 {
		return core.SchemeNames()
	}
	return append([]string(nil), schemes...)
}

// dnsRun is one scheme's instantiated DNS experiment.
type dnsRun struct {
	rt      *engine.Runtime
	maint   core.Maintainer
	tree    *topo.DNSTree
	urls    []topo.URLRecord
	clients []string
}

// buildDNS constructs the DNS hierarchy, runtime, and request stream for
// one scheme.
func buildDNS(cfg DNSConfig, scheme string, materialize bool) (*dnsRun, error) {
	maint, err := core.NewScheme(scheme)
	if err != nil {
		return nil, err
	}
	tree := topo.GenDNSTree(cfg.Tree)
	clients := tree.AttachClients(cfg.Clients)
	urls := tree.PickURLs(cfg.URLs)
	if len(urls) == 0 {
		return nil, fmt.Errorf("experiments: no resolvable URLs in tree config %+v", cfg.Tree)
	}
	var sched sim.Scheduler
	net := netsim.New(&sched, tree.Graph)
	rt := engine.NewRuntime(net, apps.DNS(), apps.Funcs(), maint)
	rt.KeepOutputs = materialize
	rt.MaterializeDeliveries = materialize
	if err := rt.LoadBase(tree.NameServerTuples(clients)); err != nil {
		return nil, err
	}
	if err := rt.LoadBase(topo.AddressRecordTuples(urls)); err != nil {
		return nil, err
	}
	names := make([]string, len(urls))
	for i, u := range urls {
		names[i] = u.URL
	}
	w := workload.DNSTraffic{
		URLs:     names,
		Clients:  clients,
		Rate:     cfg.Rate,
		Alpha:    cfg.Alpha,
		Seed:     cfg.Seed,
		Duration: cfg.Duration,
		Count:    cfg.Count,
	}
	w.Schedule(rt, 0)
	run := &dnsRun{rt: rt, maint: maint, tree: tree, urls: urls}
	for _, c := range clients {
		run.clients = append(run.clients, string(c))
	}
	return run, nil
}
