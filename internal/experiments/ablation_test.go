package experiments

import (
	"strings"
	"testing"

	"provcompress/internal/core"
)

func TestAblationInterClass(t *testing.T) {
	res, err := AblationInterClass(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Convergent classes share suffixes: the split stores fewer bytes and
	// fewer rule-execution node rows.
	if res.InterClass >= res.Chained {
		t.Errorf("inter-class %d >= chained %d", res.InterClass, res.Chained)
	}
	if res.ICNodes >= res.ChainedNodes {
		t.Errorf("inter-class rows %d >= chained rows %d", res.ICNodes, res.ChainedNodes)
	}
	// Chained mode on an n-node chain with classes from every source:
	// class i contributes i+1 fresh rows (suffixes differ by chained RIDs),
	// so sum = n(n+1)/2 - 1... at least quadratic-ish; the split stores
	// ~2 rows per node (r1 and the shared r2).
	if res.ICNodes > 2*res.Nodes {
		t.Errorf("inter-class rows = %d, want <= %d", res.ICNodes, 2*res.Nodes)
	}
	if !strings.Contains(Format(res), "inter-class") {
		t.Error("format missing title")
	}
}

func TestAblationMetaOverhead(t *testing.T) {
	res, err := AblationMetaOverhead([]int{0, 64, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverheadPct) != 3 {
		t.Fatalf("overheads = %v", res.OverheadPct)
	}
	// Overhead shrinks monotonically as payloads grow (Fig. 15 vs Fig. 11).
	if !(res.OverheadPct[0] > res.OverheadPct[1] && res.OverheadPct[1] > res.OverheadPct[2]) {
		t.Errorf("overhead not decreasing with payload: %v", res.OverheadPct)
	}
	if res.OverheadPct[0] < 5 {
		t.Errorf("zero-payload overhead = %.1f%%, want substantial", res.OverheadPct[0])
	}
	if res.OverheadPct[2] > 10 {
		t.Errorf("500-byte payload overhead = %.1f%%, want small", res.OverheadPct[2])
	}
}

func TestAblationGzip(t *testing.T) {
	res, err := AblationGzip(100)
	if err != nil {
		t.Fatal(err)
	}
	// gzip helps ExSPAN but the structural compression still wins while
	// staying queryable in place (Section 2.3's argument).
	if res.ExSPANGzip >= res.ExSPANRaw {
		t.Errorf("gzip did not shrink ExSPAN: %d -> %d", res.ExSPANRaw, res.ExSPANGzip)
	}
	if res.AdvancedRaw >= res.ExSPANGzip {
		t.Errorf("Advanced raw %d not below gzipped ExSPAN %d", res.AdvancedRaw, res.ExSPANGzip)
	}
	if len(res.Rows()) != 4 {
		t.Errorf("rows = %d", len(res.Rows()))
	}
}

func TestAblationQueryScaling(t *testing.T) {
	res, err := AblationQueryScaling([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range core.SchemeNames() {
		lats := res.LatencyMS[scheme]
		if len(lats) != 3 {
			t.Fatalf("%s: lats = %v", scheme, lats)
		}
		// Latency grows with path length.
		if !(lats[0] < lats[1] && lats[1] < lats[2]) {
			t.Errorf("%s: latency not increasing: %v", scheme, lats)
		}
	}
	// ExSPAN pays more at every length.
	for i := range res.PathLengths {
		if res.LatencyMS[core.SchemeExSPAN][i] <= res.LatencyMS[core.SchemeBasic][i] {
			t.Errorf("hops=%d: ExSPAN %.1f <= Basic %.1f", res.PathLengths[i],
				res.LatencyMS[core.SchemeExSPAN][i], res.LatencyMS[core.SchemeBasic][i])
		}
	}
}
