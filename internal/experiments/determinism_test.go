package experiments

import (
	"testing"

	"provcompress/internal/core"
)

// TestExperimentsDeterministic: the entire pipeline — topology generation,
// workload, simulation, maintenance — is reproducible: two runs with the
// same seed produce byte-identical storage and bandwidth numbers.
func TestExperimentsDeterministic(t *testing.T) {
	cfg := smallForwarding()
	run := func() (map[string]float64, map[string]float64) {
		storage := make(map[string]float64)
		wire := make(map[string]float64)
		res9, err := Fig9(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res11, err := Fig11(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range core.SchemeNames() {
			storage[s] = res9.PerScheme[s].Last()
			wire[s] = res11.PerScheme[s].Last()
		}
		return storage, wire
	}
	s1, w1 := run()
	s2, w2 := run()
	for _, s := range core.SchemeNames() {
		if s1[s] != s2[s] {
			t.Errorf("%s: storage diverged: %v vs %v", s, s1[s], s2[s])
		}
		if w1[s] != w2[s] {
			t.Errorf("%s: wire bytes diverged: %v vs %v", s, w1[s], w2[s])
		}
	}
	// A different seed produces a different workload (and so different
	// numbers).
	cfg2 := cfg
	cfg2.Seed = 99
	res, err := Fig9(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerScheme[core.SchemeExSPAN].Last() == s1[core.SchemeExSPAN] {
		t.Log("note: different seed produced identical storage (possible but unlikely)")
	}
}

// TestQueryCostModelSensitivity: the calibrated cost model actually drives
// the measured latency.
func TestQueryCostModelSensitivity(t *testing.T) {
	base, err := AblationQueryScaling([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	// Indirect check through core: double the per-entry cost, latency grows.
	m1 := core.NewAdvanced()
	m2 := core.NewAdvanced()
	m2.Cost.PerEntry *= 10

	lat := func(m core.Maintainer) float64 {
		run, err := buildForwardingWith(m)
		if err != nil {
			t.Fatal(err)
		}
		run.rt.Run()
		out := run.rt.Outputs()[0].Tuple
		var l float64
		m.QueryProvenance(out, [20]byte{}, func(qr core.QueryResult) {
			l = qr.Latency.Seconds()
		})
		run.rt.Run()
		return l
	}
	l1, l2 := lat(m1), lat(m2)
	if l2 <= l1 {
		t.Errorf("10x PerEntry cost did not increase latency: %v vs %v", l1, l2)
	}
}

// buildForwardingWith runs a tiny fixed workload under the given
// maintainer for cost-model tests.
func buildForwardingWith(m core.Maintainer) (*forwardingRun, error) {
	cfg := smallForwarding()
	cfg.Pairs = 1
	cfg.Rate = 1
	cfg.PerPairCount = 1
	cfg.Duration = 0
	run, err := buildForwardingMaint(cfg, m, true)
	return run, err
}
