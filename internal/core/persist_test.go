package core

import (
	"reflect"
	"testing"

	"provcompress/internal/analysis"
	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/topo"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// clusterSchemes are the scheme names the cluster transport (and thus the
// durability layer) runs NodeState machines for.
var clusterSchemes = []string{"exspan", "basic", "advanced"}

// stateStore reaches into a NodeState for its backing store, for
// white-box equality checks.
func stateStore(t *testing.T, st NodeState) *store {
	t.Helper()
	switch s := st.(type) {
	case *AdvancedState:
		return s.st
	case *BasicState:
		return s.st
	case *ExSPANState:
		return s.st
	}
	t.Fatalf("unknown NodeState %T", st)
	return nil
}

// driveForwarding pushes events through one NodeState with the same
// frame discipline the cluster runtime uses (internal/cluster/node.go
// applyTuple): insert the tuple at its location's database, Inject if
// fresh, fire the matching rules threading the metadata, Output when no
// rule consumes the relation. One state instance holds every node's rows
// (keyed by Loc), exactly like the simulated maintainers.
func driveForwarding(t *testing.T, st NodeState, events ...types.Tuple) {
	t.Helper()
	prog := apps.Forwarding()
	funcs := apps.Funcs()
	dbs := map[types.NodeAddr]*engine.Database{}
	dbFor := func(loc types.NodeAddr) *engine.Database {
		if dbs[loc] == nil {
			dbs[loc] = engine.NewDatabase()
		}
		return dbs[loc]
	}
	for _, r := range topo.Fig2Routes() {
		dbFor(r.Loc()).Insert(r)
	}
	type frame struct {
		t     types.Tuple
		m     AdvMeta
		fresh bool
	}
	var queue []frame
	for _, ev := range events {
		queue = append(queue, frame{t: ev, fresh: true})
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		loc := f.t.Loc()
		db := dbFor(loc)
		db.Insert(f.t)
		meta := f.m
		if f.fresh {
			meta = st.Inject(f.t)
		}
		rules := prog.RulesForEvent(f.t.Rel)
		if len(rules) == 0 {
			st.Output(f.t, meta)
			continue
		}
		for _, r := range rules {
			firings, err := engine.EvalRule(r, db, f.t, funcs)
			if err != nil {
				t.Fatal(err)
			}
			for _, fr := range firings {
				out := st.FireAt(loc, fr, meta)
				queue = append(queue, frame{t: fr.Head, m: out})
			}
		}
	}
}

// populatedNodeState runs the Figure 2 forwarding example under one
// scheme with packets that share an equivalence class (populating every
// table: ruleExec, prov, and for Advanced htequi and hmap).
func populatedNodeState(t *testing.T, scheme string) NodeState {
	t.Helper()
	keys := analysis.EquivalenceKeys(apps.Forwarding())
	st, err := NewNodeState(scheme, keys)
	if err != nil {
		t.Fatal(err)
	}
	driveForwarding(t, st,
		packet("n1", "n1", "n3", "data"),
		packet("n1", "n1", "n3", "url"), // same class: the sharing path
		packet("n2", "n2", "n3", "ack"))
	return st
}

func freshNodeState(t *testing.T, scheme string) NodeState {
	t.Helper()
	st, err := NewNodeState(scheme, analysis.EquivalenceKeys(apps.Forwarding()))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// assertStoresEqual compares two stores: the deterministic measurement
// serialization (ruleExec/links/prov), the auxiliary tables the
// serialization does not cover, and the byte accounting — StorageBytes
// is the paper's headline metric and must survive a crash bit-for-bit.
func assertStoresEqual(t *testing.T, want, got *store) {
	t.Helper()
	if w, g := string(want.serialize()), string(got.serialize()); w != g {
		t.Error("measurement serialization diverged after restore")
	}
	if !reflect.DeepEqual(want.htequi, got.htequi) {
		t.Errorf("htequi diverged: want %v, got %v", want.htequi, got.htequi)
	}
	if !reflect.DeepEqual(want.hmap, got.hmap) {
		t.Error("hmap diverged after restore")
	}
	if !reflect.DeepEqual(want.pending, got.pending) {
		t.Error("pending outputs diverged after restore")
	}
	if want.bytes() != got.bytes() {
		t.Errorf("byte accounting diverged: want %d, got %d", want.bytes(), got.bytes())
	}
}

func persistBytes(st NodeState) []byte {
	e := wire.NewEncoder(1024)
	st.Persist(e)
	return e.Bytes()
}

// TestStatePersistRoundTrip: Persist into a fresh state of the same
// scheme reproduces every table and the accounting, and the restored
// machine answers query-walk Collect calls identically.
func TestStatePersistRoundTrip(t *testing.T) {
	for _, scheme := range clusterSchemes {
		t.Run(scheme, func(t *testing.T) {
			st := populatedNodeState(t, scheme)
			if st.StorageBytes() <= 0 {
				t.Fatalf("populated %s state reports %d bytes", scheme, st.StorageBytes())
			}
			fresh := freshNodeState(t, scheme)
			if err := fresh.Restore(wire.NewDecoder(persistBytes(st))); err != nil {
				t.Fatal(err)
			}
			assertStoresEqual(t, stateStore(t, st), stateStore(t, fresh))

			// The restored machine serves the query walk identically: every
			// stored rule execution collects to the same entry and nexts.
			for rid, row := range stateStore(t, st).ruleExec {
				ref := Ref{Loc: row.Loc, RID: rid}
				wantCE, wantVIDs, wantProvs, wantNexts, wantOK := st.Collect(ref)
				gotCE, gotVIDs, gotProvs, gotNexts, gotOK := fresh.Collect(ref)
				if wantOK != gotOK ||
					!reflect.DeepEqual(wantCE, gotCE) ||
					!reflect.DeepEqual(wantVIDs, gotVIDs) ||
					!reflect.DeepEqual(wantProvs, gotProvs) ||
					!reflect.DeepEqual(wantNexts, gotNexts) {
					t.Fatalf("Collect(%v) diverged after restore", ref)
				}
			}
		})
	}
}

// TestStatePersistRestoreReplaces: restoring over an already-populated
// state drops the old contents instead of merging.
func TestStatePersistRestoreReplaces(t *testing.T) {
	for _, scheme := range clusterSchemes {
		t.Run(scheme, func(t *testing.T) {
			src := freshNodeState(t, scheme)
			driveForwarding(t, src, packet("n1", "n1", "n3", "data"))
			buf := persistBytes(src)

			dst := freshNodeState(t, scheme)
			driveForwarding(t, dst, packet("n2", "n2", "n3", "other")) // different rows land first
			if err := dst.Restore(wire.NewDecoder(buf)); err != nil {
				t.Fatal(err)
			}
			assertStoresEqual(t, stateStore(t, src), stateStore(t, dst))
		})
	}
}

// TestStatePersistTruncatedErrors: every strict prefix of a valid state
// snapshot fails cleanly — the torn-snapshot corpus at the state-machine
// layer — and a bumped version byte is rejected.
func TestStatePersistTruncatedErrors(t *testing.T) {
	for _, scheme := range clusterSchemes {
		t.Run(scheme, func(t *testing.T) {
			buf := persistBytes(populatedNodeState(t, scheme))
			for cut := 0; cut < len(buf); cut++ {
				if err := freshNodeState(t, scheme).Restore(wire.NewDecoder(buf[:cut])); err == nil {
					t.Fatalf("truncated state snapshot of %d/%d bytes restored without error", cut, len(buf))
				}
			}
			bad := append([]byte(nil), buf...)
			bad[0] = statePersistVersion + 1
			if err := freshNodeState(t, scheme).Restore(wire.NewDecoder(bad)); err == nil {
				t.Fatal("unknown state snapshot version accepted")
			}
			if err := freshNodeState(t, scheme).Restore(wire.NewDecoder(buf)); err != nil {
				t.Fatalf("full snapshot failed: %v", err)
			}
		})
	}
}

// TestStatePersistEmpty: a never-used state round-trips too (a fresh
// boot's checkpoint before any traffic).
func TestStatePersistEmpty(t *testing.T) {
	for _, scheme := range clusterSchemes {
		t.Run(scheme, func(t *testing.T) {
			st := freshNodeState(t, scheme)
			fresh := freshNodeState(t, scheme)
			if err := fresh.Restore(wire.NewDecoder(persistBytes(st))); err != nil {
				t.Fatal(err)
			}
			if got := fresh.StorageBytes(); got != 0 {
				t.Errorf("empty state restored to %d bytes", got)
			}
		})
	}
}

// TestStorePersistAllTables populates every store table directly —
// including the links and pending tables the forwarding workload may not
// reach — and round-trips at the store layer.
func TestStorePersistAllTables(t *testing.T) {
	// Inter-class shape: next-hops live in the links table.
	s := newStore(false, true, true)
	s.addRuleExec(RuleExec{Loc: "n1", RID: id("a"), Rule: "r1",
		VIDs: []types.ID{id("v1"), id("v2")}})
	s.addRuleExec(RuleExec{Loc: "n2", RID: id("b"), Rule: "r2"})
	s.addLink(id("a"), Ref{Loc: "n3", RID: id("linked")})
	s.addLink(id("a"), NilRef)
	s.addProv(Prov{Loc: "n3", VID: id("out"), Ref: Ref{Loc: "n3", RID: id("a")}, EvID: id("e1")})
	s.addProv(Prov{Loc: "n3", VID: id("out"), Ref: Ref{Loc: "n3", RID: id("a")}, EvID: id("e2")})
	s.seenEquiKey(id("k1"))
	s.seenEquiKey(id("k2"))
	s.addHmapRef(id("class"), "recv", id("e1"), Ref{Loc: "n3", RID: id("chain")})
	s.deferOutput(id("class2"), "recv", pendingOutput{vid: id("o1"), evid: id("e3")})

	e := wire.NewEncoder(1024)
	s.persist(e)
	s2 := newStore(false, true, true)
	if err := s2.restore(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, s2)
	if !reflect.DeepEqual(s.links, s2.links) {
		t.Errorf("links diverged: want %v, got %v", s.links, s2.links)
	}
	if got := s2.nexts(id("a")); len(got) != 2 {
		t.Errorf("nexts after restore = %v, want the two links", got)
	}
	if got := s2.provRows(id("out"), id("e1")); len(got) != 1 {
		t.Errorf("filtered prov rows after restore = %v", got)
	}
	if !s2.seenEquiKey(id("k1")) {
		t.Error("equi key forgotten across restore")
	}
	if got := s2.hmapRefs(id("class"), "recv"); len(got) != 1 {
		t.Errorf("hmap refs after restore = %v", got)
	}
	// The parked output is still pending: the next addHmapRef releases it.
	if waiting := s2.addHmapRef(id("class2"), "recv", id("e3"), Ref{Loc: "n1", RID: id("c")}); len(waiting) != 1 {
		t.Errorf("pending output not released after restore: %v", waiting)
	}

	// Chained shape: the row's own Next column survives.
	c := newStore(true, true, false)
	c.addRuleExec(RuleExec{Loc: "n1", RID: id("a"), Rule: "r1",
		VIDs: []types.ID{id("v1")}, Next: Ref{Loc: "n0", RID: id("prev")}})
	e2 := wire.NewEncoder(256)
	c.persist(e2)
	c2 := newStore(true, true, false)
	if err := c2.restore(wire.NewDecoder(e2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := c2.nexts(id("a")); len(got) != 1 || got[0] != (Ref{Loc: "n0", RID: id("prev")}) {
		t.Errorf("chained nexts after restore = %v", got)
	}
}
