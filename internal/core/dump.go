package core

import (
	"sort"
	"strings"

	"provcompress/internal/metrics"
	"provcompress/internal/types"
)

// TableSource is any maintainer exposing its provenance tables per node
// (the three schemes, through their shared base).
type TableSource interface {
	RuleExecRows(addr types.NodeAddr) []RuleExec
	ProvRows(addr types.NodeAddr) []Prov
}

// DumpTables renders the ruleExec and prov tables of the given nodes in
// the style of the paper's Tables 1-4, with short hash prefixes.
func DumpTables(src TableSource, nodes []types.NodeAddr) string {
	sorted := append([]types.NodeAddr(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var exec []RuleExec
	var prov []Prov
	for _, n := range sorted {
		exec = append(exec, sortExecRows(src.RuleExecRows(n))...)
		prov = append(prov, sortProvRows(src.ProvRows(n))...)
	}

	var b strings.Builder
	b.WriteString("ruleExec\n")
	rows := make([][]string, 0, len(exec))
	for _, e := range exec {
		rows = append(rows, []string{
			string(e.Loc), e.RID.String(), e.Rule, vidList(e.VIDs),
			string(nlocOf(e.Next)), e.Next.RID.String(),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"RLoc", "RID", "RULE", "VIDS", "NLoc", "NRID"}, rows))

	b.WriteString("\nprov\n")
	rows = rows[:0]
	for _, p := range prov {
		rows = append(rows, []string{
			string(p.Loc), p.VID.String(),
			string(nlocOf(p.Ref)), p.Ref.RID.String(), p.EvID.String(),
		})
	}
	b.WriteString(metrics.FormatTable(
		[]string{"Loc", "VID", "RLoc", "RID", "EVID"}, rows))
	return b.String()
}

func nlocOf(r Ref) types.NodeAddr {
	if r.IsNil() {
		return "NULL"
	}
	return r.Loc
}

func vidList(vids []types.ID) string {
	if len(vids) == 0 {
		return "NULL"
	}
	parts := make([]string, len(vids))
	for i, v := range vids {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func sortExecRows(rows []RuleExec) []RuleExec {
	out := append([]RuleExec(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].RID.Hex() < out[j].RID.Hex()
	})
	return out
}

func sortProvRows(rows []Prov) []Prov {
	out := append([]Prov(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].VID != out[j].VID {
			return out[i].VID.Hex() < out[j].VID.Hex()
		}
		return out[i].EvID.Hex() < out[j].EvID.Hex()
	})
	return out
}
