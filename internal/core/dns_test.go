package core

import (
	"fmt"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// dnsRuntime builds a small DNS hierarchy with clients and returns the
// runtime plus the resolvable URL records.
func dnsRuntime(t *testing.T, maint engine.Maintainer) (*engine.Runtime, []topo.URLRecord, []types.NodeAddr) {
	t.Helper()
	tree := topo.GenDNSTree(topo.DNSTreeConfig{NumServers: 12, MaxDepth: 5, Seed: 3})
	clients := tree.AttachClients(2)
	urls := tree.PickURLs(4)

	var sched sim.Scheduler
	net := netsim.New(&sched, tree.Graph)
	rt := engine.NewRuntime(net, apps.DNS(), apps.Funcs(), maint)
	if err := rt.LoadBase(tree.NameServerTuples(clients)); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadBase(topo.AddressRecordTuples(urls)); err != nil {
		t.Fatal(err)
	}
	return rt, urls, clients
}

func urlEvent(host types.NodeAddr, url string, rqid int) types.Tuple {
	return types.NewTuple("url", types.String(string(host)), types.String(url), types.Int(int64(rqid)))
}

// TestDNSResolutionEndToEnd runs the Figure 19 program: every request is
// answered with the right IP at the right client.
func TestDNSResolutionEndToEnd(t *testing.T) {
	rec := NewRecorder()
	rt, urls, clients := dnsRuntime(t, rec)
	for i, u := range urls {
		rt.InjectAt(0, urlEvent(clients[i%len(clients)], u.URL, i))
	}
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != int64(len(urls)) {
		t.Fatalf("outputs = %d, want %d", rt.NumOutputs(), len(urls))
	}
	for i, u := range urls {
		want := types.NewTuple("reply",
			types.String(string(clients[i%len(clients)])), types.String(u.URL),
			types.String(u.IP), types.Int(int64(i)))
		found := false
		for _, o := range rt.Outputs() {
			if o.Tuple.Equal(want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing reply %v", want)
		}
	}
	// Every tree ends at rule r4 and starts at rule r1's url event.
	for _, tr := range rec.Trees() {
		if tr.Rule != "r4" {
			t.Errorf("root rule = %s, want r4", tr.Rule)
		}
		if tr.EventOf().Rel != "url" {
			t.Errorf("leaf event relation = %s, want url", tr.EventOf().Rel)
		}
		if tr.Depth() < 3 {
			t.Errorf("tree depth = %d, want >= 3 (r1, r3, r4 at least)", tr.Depth())
		}
	}
}

// TestDNSQueryAllSchemes checks the compressed schemes reconstruct the DNS
// provenance trees exactly.
func TestDNSQueryAllSchemes(t *testing.T) {
	rec := NewRecorder()
	rrt, urls, clients := dnsRuntime(t, rec)
	var evs []types.Tuple
	for i, u := range urls {
		evs = append(evs, urlEvent(clients[i%len(clients)], u.URL, i))
	}
	injectSpaced(rrt, evs...)
	rrt.Run()
	checkNoErrors(t, rrt)

	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced(), NewAdvancedInterClass()} {
		t.Run(m.Name(), func(t *testing.T) {
			rt, _, _ := dnsRuntime(t, m)
			injectSpaced(rt, evs...)
			rt.Run()
			checkNoErrors(t, rt)

			for _, tr := range rec.Trees() {
				res := runQuery(t, rt, m, tr.Output, tr.EvID())
				if len(res.Trees) != 1 {
					t.Fatalf("%s: query %v: %d trees, want 1", m.Name(), tr.Output, len(res.Trees))
				}
				if !res.Trees[0].Equal(tr) {
					t.Errorf("%s: tree mismatch for %v:\ngot:\n%s\nwant:\n%s",
						m.Name(), tr.Output, res.Trees[0], tr)
				}
			}
		})
	}
}

// TestDNSEquivalenceClassesByURL checks the Section 6.2 claim driving
// Figure 14: the number of shared chains Advanced maintains grows with the
// number of distinct (host, URL) pairs, not with the number of requests.
func TestDNSEquivalenceClassesByURL(t *testing.T) {
	a := NewAdvanced()
	rt, urls, clients := dnsRuntime(t, a)
	host := clients[0]
	// 12 requests, but only 3 distinct URLs from one host.
	var evs []types.Tuple
	for i := 0; i < 12; i++ {
		evs = append(evs, urlEvent(host, urls[i%3].URL, i))
	}
	injectSpaced(rt, evs...)
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != 12 {
		t.Fatalf("outputs = %d, want 12", rt.NumOutputs())
	}
	// htequi at the origin host has exactly 3 classes.
	if n := len(a.store(host).htequi); n != 3 {
		t.Errorf("classes = %d, want 3", n)
	}
	// prov rows: one per request, all at the client.
	if n := len(a.ProvRows(host)); n != 12 {
		t.Errorf("prov rows at client = %d, want 12", n)
	}
}

// TestDNSKeysIncludeHostAndURL pins the analysis result the runtime uses.
func TestDNSKeysIncludeHostAndURL(t *testing.T) {
	a := NewAdvanced()
	rt, _, _ := dnsRuntime(t, a)
	_ = rt
	keys := a.Keys()
	if len(keys) != 2 || keys[0] != 0 || keys[1] != 1 {
		t.Errorf("keys = %v, want [0 1]", keys)
	}
}

// TestDNSDelegationAmbiguity: two sibling delegations where only one covers
// the URL — r2 must follow exactly the matching child.
func TestDNSDelegationAmbiguity(t *testing.T) {
	g := topo.NewGraph()
	g.MustAddLink("root", "a", topo.NSLinkLatency, topo.NSLinkBandwidth)
	g.MustAddLink("root", "b", topo.NSLinkLatency, topo.NSLinkBandwidth)
	g.MustAddLink("host", "root", topo.ClientLinkLatency, topo.ClientLinkBandwidth)

	var sched sim.Scheduler
	net := netsim.New(&sched, g)
	rec := NewRecorder()
	rt := engine.NewRuntime(net, apps.DNS(), apps.Funcs(), rec)
	base := []types.Tuple{
		types.NewTuple("rootServer", types.String("host"), types.String("root")),
		types.NewTuple("nameServer", types.String("root"), types.String("alpha"), types.String("a")),
		types.NewTuple("nameServer", types.String("root"), types.String("beta"), types.String("b")),
		types.NewTuple("addressRecord", types.String("a"), types.String("www.alpha"), types.String("10.0.0.1")),
		types.NewTuple("addressRecord", types.String("b"), types.String("www.beta"), types.String("10.0.0.2")),
	}
	if err := rt.LoadBase(base); err != nil {
		t.Fatal(err)
	}
	rt.Inject(urlEvent("host", "www.alpha", 1))
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != 1 {
		t.Fatalf("outputs = %d, want 1", rt.NumOutputs())
	}
	out := rt.Outputs()[0].Tuple
	if out.Args[2].AsString() != "10.0.0.1" {
		t.Errorf("resolved to %v, want 10.0.0.1 via nameserver a", out)
	}
	// The tree passes through exactly one delegation (r2 once).
	tr := rec.Trees()[0]
	r2Count := 0
	for cur := tr; cur != nil; cur = cur.Child {
		if cur.Rule == "r2" {
			r2Count++
		}
	}
	if r2Count != 1 {
		t.Errorf("r2 executions = %d, want 1\n%s", r2Count, tr)
	}
}

// TestDNSManyRequestsLossless is a heavier randomized check: many repeated
// requests, then every reply's provenance is queried under Advanced.
func TestDNSManyRequestsLossless(t *testing.T) {
	rec := NewRecorder()
	rrt, urls, clients := dnsRuntime(t, rec)
	var evs []types.Tuple
	for i := 0; i < 30; i++ {
		evs = append(evs, urlEvent(clients[i%len(clients)], urls[i%len(urls)].URL, i))
	}
	injectSpaced(rrt, evs...)
	rrt.Run()

	a := NewAdvanced()
	rt, _, _ := dnsRuntime(t, a)
	injectSpaced(rt, evs...)
	rt.Run()
	checkNoErrors(t, rt)

	for i, tr := range rec.Trees() {
		res := runQuery(t, rt, a, tr.Output, tr.EvID())
		if len(res.Trees) != 1 || !res.Trees[0].Equal(tr) {
			t.Fatalf("tree %d mismatch (%s)", i, fmt.Sprint(tr.Output))
		}
	}
}
