package core

import (
	"strings"
	"testing"

	"provcompress/internal/types"
)

// chainTree builds a depth-n forwarding-style tree for tree unit tests.
func chainTree(payload string, hops int) *Tree {
	ev := packet("n1", "n1", "n3", payload)
	cur := &Tree{
		Rule:   "r1",
		Output: packet("n2", "n1", "n3", payload),
		Event:  &ev,
		Slow:   []types.Tuple{routeTuple("n1", "n3", "n2")},
	}
	for i := 2; i < hops; i++ {
		cur = &Tree{
			Rule:   "r1",
			Output: packet("nx", "n1", "n3", payload),
			Child:  cur,
			Slow:   []types.Tuple{routeTuple("n2", "n3", "n3")},
		}
	}
	return &Tree{
		Rule:   "r2",
		Output: recvTuple("n3", "n1", "n3", payload),
		Child:  cur,
	}
}

func TestTreeEventOfAndDepth(t *testing.T) {
	tr := chainTree("data", 3)
	if got := tr.EventOf(); !got.Equal(packet("n1", "n1", "n3", "data")) {
		t.Errorf("EventOf = %v", got)
	}
	if tr.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", tr.Depth())
	}
	if tr.EvID() != types.HashTuple(packet("n1", "n1", "n3", "data")) {
		t.Error("EvID mismatch")
	}
}

func TestTreeEventOfPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EventOf on leafless tree should panic")
		}
	}()
	(&Tree{Rule: "r1", Output: packet("n1", "n1", "n3", "x")}).EventOf()
}

func TestTreeEqual(t *testing.T) {
	a := chainTree("data", 3)
	b := chainTree("data", 3)
	if !a.Equal(b) {
		t.Error("identical trees not Equal")
	}
	if !a.Equal(a) {
		t.Error("tree not Equal to itself")
	}
	if a.Equal(chainTree("url", 3)) {
		t.Error("different payload trees Equal")
	}
	if a.Equal(chainTree("data", 4)) {
		t.Error("different depth trees Equal")
	}
	if a.Equal(nil) {
		t.Error("tree Equal nil")
	}
	// Different rule at root.
	c := chainTree("data", 3)
	c.Rule = "r9"
	if a.Equal(c) {
		t.Error("different rule trees Equal")
	}
	// Different slow tuples.
	d := chainTree("data", 3)
	d.Child.Slow = []types.Tuple{routeTuple("n9", "n3", "n3")}
	if a.Equal(d) {
		t.Error("different slow trees Equal")
	}
	// Slow arity difference.
	e := chainTree("data", 3)
	e.Child.Slow = append(e.Child.Slow, routeTuple("n8", "n3", "n3"))
	if a.Equal(e) {
		t.Error("different slow count trees Equal")
	}
}

func TestTreeEquivalent(t *testing.T) {
	// The Section 5.1 relation: equal modulo output tuples and event.
	a := chainTree("data", 3)
	b := chainTree("url", 3)
	if !a.Equivalent(b) {
		t.Error("same-class trees not Equivalent")
	}
	if !a.Equivalent(a) {
		t.Error("tree not Equivalent to itself")
	}
	if a.Equivalent(chainTree("data", 4)) {
		t.Error("different-structure trees Equivalent")
	}
	c := chainTree("x", 3)
	c.Child.Slow = []types.Tuple{routeTuple("n9", "n3", "n3")}
	if a.Equivalent(c) {
		t.Error("different-slow trees Equivalent")
	}
	if a.Equivalent(nil) {
		t.Error("tree Equivalent nil")
	}
}

func TestTreeString(t *testing.T) {
	s := chainTree("data", 3).String()
	for _, want := range []string{
		"recv(@n3", "<- r2", "<- r1", "[route(@n1", "event packet(@n1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	// Leaf event is the most indented line.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[3], strings.Repeat("  ", 3)) {
		t.Errorf("event line not indented: %q", lines[3])
	}
}

func TestTreeWireSize(t *testing.T) {
	small := chainTree("x", 2)
	big := chainTree(strings.Repeat("x", 500), 2)
	deep := chainTree("x", 6)
	if small.WireSize() <= 0 {
		t.Error("WireSize not positive")
	}
	if big.WireSize() <= small.WireSize() {
		t.Error("payload size not reflected")
	}
	if deep.WireSize() <= small.WireSize() {
		t.Error("depth not reflected")
	}
}

func TestTreeDOT(t *testing.T) {
	dot := chainTree("data", 3).DOT()
	for _, want := range []string{
		"digraph provenance {",
		"shape=box",     // tuple nodes (including the leaf event)
		"shape=ellipse", // rule nodes
		"recv(@n3",
		"route(@n1",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic, balanced braces.
	if dot != chainTree("data", 3).DOT() {
		t.Error("DOT not deterministic")
	}
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
	// One rule node per level.
	if got := strings.Count(dot, "shape=ellipse"); got != 3 {
		t.Errorf("rule nodes = %d, want 3", got)
	}
}

func TestRefString(t *testing.T) {
	if NilRef.String() != "NULL" {
		t.Errorf("NilRef = %q", NilRef.String())
	}
	r := Ref{Loc: "n1", RID: types.HashBytes([]byte("x"))}
	if !strings.Contains(r.String(), "@n1") {
		t.Errorf("Ref = %q", r.String())
	}
	if r.IsNil() || !NilRef.IsNil() {
		t.Error("IsNil wrong")
	}
}

func TestRowWireSizes(t *testing.T) {
	rid := types.HashBytes([]byte("r"))
	e := RuleExec{Loc: "n1", RID: rid, Rule: "r1",
		VIDs: []types.ID{rid, rid}, Next: Ref{Loc: "n2", RID: rid}}
	if e.WireSize(true) <= e.WireSize(false) {
		t.Error("NLoc/NRID column not priced")
	}
	noVids := e
	noVids.VIDs = nil
	if e.WireSize(false) <= noVids.WireSize(false) {
		t.Error("VIDs not priced")
	}
	p := Prov{Loc: "n1", VID: rid, Ref: Ref{Loc: "n2", RID: rid}, EvID: rid}
	if p.WireSize(true) <= p.WireSize(false) {
		t.Error("EVID column not priced")
	}
}
