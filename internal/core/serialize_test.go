package core

import (
	"bytes"
	"testing"

	"provcompress/internal/types"
)

// TestSerializedSizeMatchesAccounting pins the storage measurement to the
// actual serialization: for every scheme and every node of a mixed
// workload, the length of SerializeNode equals StorageBytes. The Section 6
// figures are therefore literally "size of the serialized per-node
// provenance tables", as in the paper.
func TestSerializedSizeMatchesAccounting(t *testing.T) {
	type serializer interface {
		SerializeNode(types.NodeAddr) []byte
		StorageBytes(types.NodeAddr) int64
	}
	evs := []types.Tuple{
		packet("n1", "n1", "n3", "data"),
		packet("n1", "n1", "n3", "url"),
		packet("n2", "n2", "n3", "ack"),
	}
	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced(), NewAdvancedInterClass()} {
		t.Run(m.Name(), func(t *testing.T) {
			rt := fig2Runtime(t, m)
			injectSpaced(rt, evs...)
			rt.Run()
			checkNoErrors(t, rt)
			// Exercise the slow-update state too (htequi/hmap under Advanced).
			rt.InsertSlow(routeTuple("n1", "n2", "n2"))
			rt.Run()

			sz, ok := m.(serializer)
			if !ok {
				t.Fatalf("%s does not serialize", m.Name())
			}
			for _, addr := range []types.NodeAddr{"n1", "n2", "n3"} {
				got := sz.SerializeNode(addr)
				if int64(len(got)) != sz.StorageBytes(addr) {
					t.Errorf("%s at %s: serialized %d bytes, accounting says %d",
						m.Name(), addr, len(got), sz.StorageBytes(addr))
				}
			}
			if sz.SerializeNode("ghost") != nil {
				t.Error("unknown node serialized")
			}
		})
	}
}

// TestSerializeDeterministic: the serialization is byte-stable across
// calls (required for reproducible measurements).
func TestSerializeDeterministic(t *testing.T) {
	a := NewAdvanced()
	rt := fig2Runtime(t, a)
	injectSpaced(rt, packet("n1", "n1", "n3", "x"), packet("n1", "n1", "n3", "y"))
	rt.Run()
	for _, addr := range []types.NodeAddr{"n1", "n2", "n3"} {
		if !bytes.Equal(a.SerializeNode(addr), a.SerializeNode(addr)) {
			t.Errorf("serialization of %s not deterministic", addr)
		}
	}
}
