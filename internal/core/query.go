package core

import (
	"time"

	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/types"
)

// Message kinds of the distributed provenance query protocol.
const (
	// msgWalk carries the traveling query along the provenance pointers.
	msgWalk = "provq.walk"
	// msgResult returns the collected entries to the querier.
	msgResult = "provq.result"
)

// maxQueryDepth bounds pointer chases, guarding against corrupt stores.
const maxQueryDepth = 1 << 14

// QueryCostModel parameterizes the computation cost of query processing,
// calibrating the simulated nodes to the paper's testbed (Section 6.1.3):
// PerEntry is charged per provenance table row touched, PerByte per byte of
// provenance data fetched or deserialized, and PerRederive per rule
// re-execution during reconstruction (the symbolic re-derivation that lets
// Basic and Advanced skip storing intermediate tuples).
type QueryCostModel struct {
	PerEntry    time.Duration
	PerByte     time.Duration
	PerRederive time.Duration
}

// DefaultQueryCost returns the calibration used in the experiments.
func DefaultQueryCost() QueryCostModel {
	return QueryCostModel{
		PerEntry:    2 * time.Millisecond,
		PerByte:     10 * time.Microsecond,
		PerRederive: 300 * time.Microsecond,
	}
}

// QueryResult is the outcome of a distributed provenance query.
type QueryResult struct {
	// Root is the queried output tuple.
	Root types.Tuple
	// Trees holds the reconstructed provenance trees, one per stored
	// derivation matching the query.
	Trees []*Tree
	// Latency is the virtual time from query start to result delivery,
	// including network hops and processing.
	Latency time.Duration
	// Hops counts protocol messages (walk steps plus the result return).
	Hops int
	// Bytes is the provenance data volume the query moved.
	Bytes int64
}

// CollectedEntry is a collected rule-execution node plus its outgoing links.
type CollectedEntry struct {
	Entry RuleExec
	Nexts []Ref
}

// walkAcc accumulates the entries, prov rows, and tuple contents a query
// collects while walking the distributed tables.
type walkAcc struct {
	Entries []CollectedEntry
	Tuples  []types.Tuple
	Provs   []Prov

	entrySeen map[Ref]bool
	tupleSeen map[types.ID]bool
	provSeen  map[Prov]bool
}

func newWalkAcc() *walkAcc {
	return &walkAcc{
		entrySeen: make(map[Ref]bool),
		tupleSeen: make(map[types.ID]bool),
		provSeen:  make(map[Prov]bool),
	}
}

func (a *walkAcc) addEntry(ce CollectedEntry) bool {
	key := Ref{Loc: ce.Entry.Loc, RID: ce.Entry.RID}
	if a.entrySeen[key] {
		return false
	}
	a.entrySeen[key] = true
	a.Entries = append(a.Entries, ce)
	return true
}

func (a *walkAcc) addTuple(t types.Tuple) bool {
	vid := types.HashTuple(t)
	if a.tupleSeen[vid] {
		return false
	}
	a.tupleSeen[vid] = true
	a.Tuples = append(a.Tuples, t)
	return true
}

func (a *walkAcc) addProv(p Prov) bool {
	if a.provSeen[p] {
		return false
	}
	a.provSeen[p] = true
	a.Provs = append(a.Provs, p)
	return true
}

func (a *walkAcc) entryIndex() map[Ref]CollectedEntry {
	idx := make(map[Ref]CollectedEntry, len(a.Entries))
	for _, ce := range a.Entries {
		idx[Ref{Loc: ce.Entry.Loc, RID: ce.Entry.RID}] = ce
	}
	return idx
}

func (a *walkAcc) tupleIndex() map[types.ID]types.Tuple {
	idx := make(map[types.ID]types.Tuple, len(a.Tuples))
	for _, t := range a.Tuples {
		idx[types.HashTuple(t)] = t
	}
	return idx
}

func (a *walkAcc) provIndex() map[types.ID][]Prov {
	idx := make(map[types.ID][]Prov, len(a.Provs))
	for _, p := range a.Provs {
		idx[p.VID] = append(idx[p.VID], p)
	}
	return idx
}

// walkQuery is the traveling state of one query: a depth-first worklist of
// rule-execution references plus everything collected so far. A single
// message carries it from node to node, so no distributed branch counting
// is needed even when the inter-class tables fork the walk.
type walkQuery struct {
	id        int64
	querier   types.NodeAddr
	root      types.Tuple
	rootVID   types.ID
	evid      types.ID
	rootProvs []Prov

	work    []Ref
	visited map[Ref]bool
	acc     *walkAcc

	bytes int64
	hops  int
	start time.Duration
}

// eventIDs returns the event IDs whose leaf tuples the walk must fetch:
// the explicit query evid, or the EVIDs of the anchoring prov rows.
func (q *walkQuery) eventIDs() []types.ID {
	if !q.evid.IsZero() {
		return []types.ID{q.evid}
	}
	var out []types.ID
	seen := make(map[types.ID]bool)
	for _, p := range q.rootProvs {
		if !p.EvID.IsZero() && !seen[p.EvID] {
			seen[p.EvID] = true
			out = append(out, p.EvID)
		}
	}
	return out
}

// queryDispatcher runs the shared walk protocol on behalf of a scheme.
type queryDispatcher struct {
	b      *base
	s      scheme
	nextID int64
	active map[int64]func(QueryResult)
}

func newQueryDispatcher(b *base, s scheme) *queryDispatcher {
	return &queryDispatcher{b: b, s: s, active: make(map[int64]func(QueryResult))}
}

// start anchors a query at the output tuple's node and begins the walk.
func (d *queryDispatcher) start(out types.Tuple, evid types.ID, cb func(QueryResult)) {
	sched := d.b.rt.Net.Scheduler()
	d.nextID++
	q := &walkQuery{
		id:      d.nextID,
		querier: out.Loc(),
		root:    out,
		rootVID: types.HashTuple(out),
		evid:    evid,
		visited: make(map[Ref]bool),
		acc:     newWalkAcc(),
		start:   sched.Now(),
	}
	d.active[q.id] = cb
	node := d.b.rt.Node(q.querier)
	if node == nil {
		sched.After(0, func() { d.complete(q) })
		return
	}
	st := d.b.store(q.querier)
	q.rootProvs = d.s.provRefsFor(st, q.rootVID, evid)
	for _, p := range q.rootProvs {
		if !p.Ref.IsNil() {
			q.work = append(q.work, p.Ref)
		}
		q.bytes += int64(p.WireSize(d.b.withEvID))
	}
	lookups := len(q.rootProvs)
	if lookups == 0 {
		lookups = 1
	}
	cost := time.Duration(lookups) * d.b.Cost.PerEntry
	sched.After(cost, func() { d.continueAt(node, q) })
}

// continueAt processes every worklist reference local to node n, then
// either forwards the walk to the next node or returns the result to the
// querier.
func (d *queryDispatcher) continueAt(n *engine.Node, q *walkQuery) {
	sched := d.b.rt.Net.Scheduler()
	st := d.b.store(n.Addr)
	processed := 0
	var delta int64
	for {
		idx := -1
		for i := len(q.work) - 1; i >= 0; i-- {
			if q.work[i].Loc == n.Addr {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		ref := q.work[idx]
		q.work = append(q.work[:idx], q.work[idx+1:]...)
		if q.visited[ref] {
			continue
		}
		q.visited[ref] = true
		nexts, bytes := d.s.collectEntry(n, st, ref, q)
		for _, nx := range nexts {
			if !nx.IsNil() && !q.visited[nx] {
				q.work = append(q.work, nx)
			}
		}
		processed++
		delta += bytes
	}
	q.bytes += delta
	cost := time.Duration(processed)*d.b.Cost.PerEntry + time.Duration(delta)*d.b.Cost.PerByte
	sched.After(cost, func() {
		if len(q.work) == 0 {
			if n.Addr == q.querier {
				d.finish(q)
				return
			}
			d.b.rt.Net.Send(netsim.Message{
				From:    n.Addr,
				To:      q.querier,
				Kind:    msgResult,
				Payload: q,
				Size:    d.b.rt.HeaderSize + int(q.bytes),
			})
			return
		}
		target := q.work[len(q.work)-1].Loc
		if target == n.Addr {
			// New local work appeared; keep going without a message.
			d.continueAt(n, q)
			return
		}
		d.b.rt.Net.Send(netsim.Message{
			From:    n.Addr,
			To:      target,
			Kind:    msgWalk,
			Payload: q,
			Size:    d.b.rt.HeaderSize + 64 + int(q.bytes),
		})
	})
}

// handle processes walk and result messages on behalf of the maintainer.
func (d *queryDispatcher) handle(n *engine.Node, msg netsim.Message) bool {
	switch msg.Kind {
	case msgWalk:
		q := msg.Payload.(*walkQuery)
		q.hops++
		d.continueAt(n, q)
		return true
	case msgResult:
		q := msg.Payload.(*walkQuery)
		q.hops++
		d.finish(q)
		return true
	default:
		return false
	}
}

// finish charges the reconstruction cost at the querier, then completes.
func (d *queryDispatcher) finish(q *walkQuery) {
	cost := time.Duration(len(q.acc.Entries))*d.b.Cost.PerRederive +
		time.Duration(q.bytes)*d.b.Cost.PerByte
	d.b.rt.Net.Scheduler().After(cost, func() { d.complete(q) })
}

// complete assembles the trees, applies the event filter, and delivers the
// result.
func (d *queryDispatcher) complete(q *walkQuery) {
	trees := d.s.assemble(q)
	if !q.evid.IsZero() {
		kept := trees[:0]
		for _, t := range trees {
			if t.EvID() == q.evid {
				kept = append(kept, t)
			}
		}
		trees = kept
	}
	trees = dedupTrees(trees)
	cb := d.active[q.id]
	delete(d.active, q.id)
	if cb == nil {
		return
	}
	cb(QueryResult{
		Root:    q.root,
		Trees:   trees,
		Latency: d.b.rt.Net.Scheduler().Now() - q.start,
		Hops:    q.hops,
		Bytes:   q.bytes,
	})
}

// dedupTrees removes structurally equal duplicates (overlapping inter-class
// link paths can reconstruct the same derivation more than once).
func dedupTrees(trees []*Tree) []*Tree {
	var out []*Tree
	for _, t := range trees {
		dup := false
		for _, u := range out {
			if t.Equal(u) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}
