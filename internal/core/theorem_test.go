package core

import (
	"fmt"
	"math/rand"
	"testing"

	"provcompress/internal/analysis"
	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// lineRuntime builds an n-node line topology running packet forwarding with
// full shortest-path route tables, so packets can travel between any pair.
func lineRuntime(t *testing.T, n int, maint engine.Maintainer) *engine.Runtime {
	t.Helper()
	var sched sim.Scheduler
	g := topo.Line(n, "n")
	net := netsim.New(&sched, g)
	rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
	if err := rt.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return rt
}

// randomPackets generates events with random sources, destinations, and
// payloads over an n-node line.
func randomPackets(r *rand.Rand, n, count int) []types.Tuple {
	evs := make([]types.Tuple, count)
	for i := range evs {
		src := r.Intn(n)
		dst := r.Intn(n)
		for dst == src {
			dst = r.Intn(n)
		}
		evs[i] = packet(
			fmt.Sprintf("n%d", src), fmt.Sprintf("n%d", src), fmt.Sprintf("n%d", dst),
			fmt.Sprintf("payload-%d", r.Intn(5)))
	}
	return evs
}

// TestTheorem1Property checks Theorem 1 on the forwarding program: events
// that agree on the equivalence keys generate equivalent provenance trees,
// and events that disagree do not (for this program, where every non-key
// attribute is payload-only).
func TestTheorem1Property(t *testing.T) {
	const nodes = 8
	r := rand.New(rand.NewSource(42))
	keys := analysis.EquivalenceKeys(apps.Forwarding())

	rec := NewRecorder()
	rt := lineRuntime(t, nodes, rec)
	evs := randomPackets(r, nodes, 60)
	injectSpaced(rt, evs...)
	rt.Run()
	checkNoErrors(t, rt)

	distinct := make(map[types.ID]bool)
	for _, ev := range evs {
		distinct[types.HashTuple(ev)] = true
	}
	if len(rec.Trees()) != len(distinct) {
		t.Fatalf("trees = %d, want %d (one per distinct event)", len(rec.Trees()), len(distinct))
	}

	keyHash := func(ev types.Tuple) types.ID {
		vals := make([]types.Value, len(keys))
		for i, k := range keys {
			vals[i] = ev.Args[k]
		}
		return types.HashValues(vals)
	}

	trees := rec.Trees()
	checked := 0
	for i := 0; i < len(trees); i++ {
		for j := i + 1; j < len(trees); j++ {
			ti, tj := trees[i], trees[j]
			sameClass := keyHash(ti.EventOf()) == keyHash(tj.EventOf())
			equiv := ti.Equivalent(tj)
			if sameClass && !equiv {
				t.Fatalf("Theorem 1 violated: same-key events produced non-equivalent trees:\n%s\nvs\n%s", ti, tj)
			}
			if !sameClass && equiv {
				// For forwarding, different (loc, dst) means a different
				// route chain, so trees cannot be equivalent.
				t.Fatalf("different-key events produced equivalent trees:\n%s\nvs\n%s", ti, tj)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
}

// TestCompressionLosslessRandomWorkload checks Theorems 3 and 5 end to end:
// for a random workload, every output tuple's provenance queried from the
// compressed stores equals the tree semi-naïve evaluation derived.
func TestCompressionLosslessRandomWorkload(t *testing.T) {
	const nodes = 8
	r := rand.New(rand.NewSource(7))
	evs := randomPackets(r, nodes, 40)

	rec := NewRecorder()
	rrt := lineRuntime(t, nodes, rec)
	injectSpaced(rrt, evs...)
	rrt.Run()
	checkNoErrors(t, rrt)

	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced(), NewAdvancedInterClass()} {
		t.Run(m.Name(), func(t *testing.T) {
			rt := lineRuntime(t, nodes, m)
			injectSpaced(rt, evs...)
			rt.Run()
			checkNoErrors(t, rt)
			if rt.NumOutputs() != int64(len(evs)) {
				t.Fatalf("outputs = %d, want %d", rt.NumOutputs(), len(evs))
			}

			// Query every distinct (output, event) pair.
			type target struct {
				out  types.Tuple
				evid types.ID
			}
			seen := make(map[string]bool)
			var targets []target
			for _, tr := range rec.Trees() {
				key := tr.Output.String() + "|" + tr.EvID().String()
				if !seen[key] {
					seen[key] = true
					targets = append(targets, target{tr.Output, tr.EvID()})
				}
			}
			for _, tg := range targets {
				res := runQuery(t, rt, m, tg.out, tg.evid)
				want := rec.TreesFor(types.HashTuple(tg.out), tg.evid)
				if len(res.Trees) != len(want) {
					t.Fatalf("%s: query %v evid %v: %d trees, want %d",
						m.Name(), tg.out, tg.evid, len(res.Trees), len(want))
				}
				for _, w := range want {
					found := false
					for _, g := range res.Trees {
						if g.Equal(w) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s: missing tree for %v:\n%s", m.Name(), tg.out, w)
					}
				}
			}
		})
	}
}

// TestAdvancedStorageInvariant checks the compression invariant directly:
// under Advanced, the number of stored rule-execution nodes depends on the
// number of equivalence classes, not the number of events.
func TestAdvancedStorageInvariant(t *testing.T) {
	a := NewAdvanced()
	rt := lineRuntime(t, 5, a)
	// 30 packets, all in one equivalence class (same origin, same dest).
	var evs []types.Tuple
	for i := 0; i < 30; i++ {
		evs = append(evs, packet("n0", "n0", "n4", fmt.Sprintf("p%d", i)))
	}
	injectSpaced(rt, evs...)
	rt.Run()
	checkNoErrors(t, rt)

	totalExec := 0
	for _, addr := range rt.Net.Graph().Nodes() {
		totalExec += len(a.RuleExecRows(addr))
	}
	// Path n0..n4: 4 r1 firings + 1 r2 firing = 5 shared nodes total.
	if totalExec != 5 {
		t.Errorf("ruleExec nodes = %d, want 5 (one shared chain)", totalExec)
	}
	// But one prov row per event at the output.
	if n := len(a.ProvRows("n4")); n != 30 {
		t.Errorf("prov rows = %d, want 30", n)
	}
}

// TestEquivalenceStorageComparison checks the headline inequality of the
// paper on a shared-destination workload: Advanced < Basic < ExSPAN.
func TestEquivalenceStorageComparison(t *testing.T) {
	var evs []types.Tuple
	for i := 0; i < 20; i++ {
		evs = append(evs, packet("n0", "n0", "n6", fmt.Sprintf("payload-%04d", i)))
	}
	totals := make(map[string]int64)
	for _, m := range []engine.Maintainer{NewExSPAN(), NewBasic(), NewAdvanced()} {
		rt := lineRuntime(t, 7, m)
		injectSpaced(rt, evs...)
		rt.Run()
		checkNoErrors(t, rt)
		totals[m.Name()] = m.TotalStorageBytes()
	}
	if !(totals["Advanced"] < totals["Basic"] && totals["Basic"] < totals["ExSPAN"]) {
		t.Errorf("storage ordering violated: %v", totals)
	}
	// The compression should be substantial on this workload (20 events in
	// one class): at least 5x over ExSPAN.
	if totals["ExSPAN"] < 5*totals["Advanced"] {
		t.Errorf("compression ratio = %.1f, want >= 5",
			float64(totals["ExSPAN"])/float64(totals["Advanced"]))
	}
}
