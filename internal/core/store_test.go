package core

import (
	"testing"

	"provcompress/internal/types"
)

func id(s string) types.ID { return types.HashBytes([]byte(s)) }

func TestStoreRuleExecDedup(t *testing.T) {
	s := newStore(true, false, false)
	e := RuleExec{Loc: "n1", RID: id("a"), Rule: "r1", VIDs: []types.ID{id("v")}}
	if !s.addRuleExec(e) {
		t.Error("first insert reported duplicate")
	}
	before := s.bytes()
	if s.addRuleExec(e) {
		t.Error("duplicate insert reported new")
	}
	if s.bytes() != before {
		t.Error("duplicate insert changed accounting")
	}
	got, ok := s.getRuleExec(id("a"))
	if !ok || got.Rule != "r1" {
		t.Errorf("getRuleExec = %+v, %v", got, ok)
	}
	if _, ok := s.getRuleExec(id("zzz")); ok {
		t.Error("missing rid found")
	}
	if s.numRuleExec() != 1 {
		t.Errorf("numRuleExec = %d", s.numRuleExec())
	}
}

func TestStoreNexts(t *testing.T) {
	// Chained mode: the row's own Next column.
	s := newStore(true, true, false)
	next := Ref{Loc: "n0", RID: id("child")}
	s.addRuleExec(RuleExec{Loc: "n1", RID: id("a"), Rule: "r1", Next: next})
	if got := s.nexts(id("a")); len(got) != 1 || got[0] != next {
		t.Errorf("nexts = %v", got)
	}
	if got := s.nexts(id("missing")); got != nil {
		t.Errorf("nexts of missing = %v", got)
	}

	// Inter-class mode: links table only.
	ic := newStore(false, true, true)
	ic.addRuleExec(RuleExec{Loc: "n1", RID: id("a"), Rule: "r1"})
	if !ic.addLink(id("a"), next) {
		t.Error("first link rejected")
	}
	if ic.addLink(id("a"), next) {
		t.Error("duplicate link accepted")
	}
	ic.addLink(id("a"), NilRef)
	got := ic.nexts(id("a"))
	if len(got) != 2 {
		t.Fatalf("nexts = %v", got)
	}
	// Mutating the returned slice must not corrupt the store.
	got[0] = Ref{Loc: "junk"}
	if ic.nexts(id("a"))[0].Loc == "junk" {
		t.Error("nexts returns aliased storage")
	}
}

func TestStoreProvDedupAndFilter(t *testing.T) {
	s := newStore(true, true, false)
	p1 := Prov{Loc: "n3", VID: id("out"), Ref: Ref{Loc: "n3", RID: id("r")}, EvID: id("e1")}
	p2 := p1
	p2.EvID = id("e2")
	if !s.addProv(p1) || !s.addProv(p2) {
		t.Fatal("insert failed")
	}
	if s.addProv(p1) {
		t.Error("duplicate prov accepted")
	}
	if s.numProv() != 2 {
		t.Errorf("numProv = %d", s.numProv())
	}
	if got := s.provRows(id("out"), types.ZeroID); len(got) != 2 {
		t.Errorf("unfiltered rows = %d", len(got))
	}
	if got := s.provRows(id("out"), id("e1")); len(got) != 1 || got[0].EvID != id("e1") {
		t.Errorf("filtered rows = %v", got)
	}
	if got := s.provRows(id("out"), id("e9")); len(got) != 0 {
		t.Errorf("foreign-evid rows = %v", got)
	}
	if got := s.provRows(id("nothing"), types.ZeroID); got != nil {
		t.Errorf("missing vid rows = %v", got)
	}
}

func TestStoreEquiKeysLifecycle(t *testing.T) {
	s := newStore(true, true, false)
	if s.seenEquiKey(id("k1")) {
		t.Error("fresh key reported seen")
	}
	if !s.seenEquiKey(id("k1")) {
		t.Error("repeated key reported fresh")
	}
	if s.seenEquiKey(id("k2")) {
		t.Error("second fresh key reported seen")
	}
	if s.htequiBytes <= 0 {
		t.Error("htequi not accounted")
	}
	s.clearEquiKeys()
	if s.htequiBytes != 0 {
		t.Error("accounting not reset on clear")
	}
	if s.seenEquiKey(id("k1")) {
		t.Error("key survived clear (sig must reset Stage 1)")
	}
}

func TestStoreHmapAndPending(t *testing.T) {
	s := newStore(true, true, false)
	if got := s.hmapRefs(id("class"), "recv"); got != nil {
		t.Error("empty hmap hit")
	}
	// Outputs arriving before the class's first execution completes are
	// parked and released by addHmapRef.
	s.deferOutput(id("class"), "recv", pendingOutput{vid: id("o1"), evid: id("e1")})
	s.deferOutput(id("class"), "recv", pendingOutput{vid: id("o2"), evid: id("e2")})
	ref := Ref{Loc: "n3", RID: id("chain")}
	waiting := s.addHmapRef(id("class"), "recv", id("e1"), ref)
	if len(waiting) != 2 {
		t.Fatalf("waiting = %v", waiting)
	}
	if got := s.hmapRefs(id("class"), "recv"); len(got) != 1 || got[0] != ref {
		t.Errorf("hmap = %v", got)
	}
	// Pending entries are per output relation.
	if got := s.hmapRefs(id("class"), "mirror"); got != nil {
		t.Errorf("foreign relation hit: %v", got)
	}

	// A second chain of the same event accumulates.
	ref2 := Ref{Loc: "n3", RID: id("chain2")}
	s.addHmapRef(id("class"), "recv", id("e1"), ref2)
	if got := s.hmapRefs(id("class"), "recv"); len(got) != 2 {
		t.Errorf("same-epoch refs = %v, want 2", got)
	}
	// Duplicate refs are ignored.
	s.addHmapRef(id("class"), "recv", id("e1"), ref2)
	if got := s.hmapRefs(id("class"), "recv"); len(got) != 2 {
		t.Errorf("duplicate ref accumulated: %v", got)
	}

	// A fresh event (post-sig re-maintenance) replaces the epoch.
	ref3 := Ref{Loc: "n3", RID: id("chain3")}
	s.addHmapRef(id("class"), "recv", id("e9"), ref3)
	if got := s.hmapRefs(id("class"), "recv"); len(got) != 1 || got[0] != ref3 {
		t.Errorf("epoch not replaced: %v", got)
	}
	if s.hmapBytes <= 0 {
		t.Error("hmap not accounted")
	}
}

func TestStoreBytesComposition(t *testing.T) {
	s := newStore(true, true, false)
	if s.bytes() != 0 {
		t.Error("empty store has bytes")
	}
	s.addRuleExec(RuleExec{Loc: "n1", RID: id("a"), Rule: "r1"})
	s.addProv(Prov{Loc: "n1", VID: id("v"), EvID: id("e")})
	s.seenEquiKey(id("k"))
	s.addHmapRef(id("k"), "out", id("e"), Ref{Loc: "n1", RID: id("a")})
	want := s.ruleExecBytes + s.provBytes + s.htequiBytes + s.hmapBytes
	if s.bytes() != want || want <= 0 {
		t.Errorf("bytes = %d, want %d", s.bytes(), want)
	}
}
