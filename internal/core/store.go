package core

import (
	"fmt"

	"provcompress/internal/types"
)

// Ref references a rule-execution provenance node: the (RLoc, RID) and
// (NLoc, NRID) pairs of the paper's tables. The zero Ref is NULL.
type Ref struct {
	Loc types.NodeAddr
	RID types.ID
}

// NilRef is the NULL reference.
var NilRef Ref

// IsNil reports whether the reference is NULL.
func (r Ref) IsNil() bool { return r == NilRef }

// String renders the reference as rid@loc or NULL.
func (r Ref) String() string {
	if r.IsNil() {
		return "NULL"
	}
	return fmt.Sprintf("%s@%s", r.RID, r.Loc)
}

// WireSize returns the serialized size of the reference.
func (r Ref) WireSize() int { return 2 + len(r.Loc) + len(r.RID) }

// RuleExec is a row of the ruleExec table: a rule-execution provenance
// node. VIDs holds the recorded body-tuple hashes (which bodies are
// recorded differs per scheme); Next is the (NLoc, NRID) link towards the
// event leaf used by the Basic and Advanced schemes (NULL for ExSPAN rows
// and for leaf rows).
type RuleExec struct {
	Loc  types.NodeAddr
	RID  types.ID
	Rule string
	VIDs []types.ID
	Next Ref
}

// WireSize returns the serialized size of the row; withNext controls
// whether the NLoc/NRID columns exist in this scheme's table.
func (e RuleExec) WireSize(withNext bool) int {
	n := 2 + len(e.Loc) + len(e.RID) + 1 + len(e.Rule) + 1 + len(e.VIDs)*len(types.ID{})
	if withNext {
		n += e.Next.WireSize()
	}
	return n
}

// Prov is a row of the prov table: it associates a tuple (by VID) with the
// rule execution that derived it. EvID identifies the input event of the
// execution under the Advanced scheme (zero otherwise); Ref is NULL for
// base tuples (ExSPAN only stores those).
type Prov struct {
	Loc  types.NodeAddr
	VID  types.ID
	Ref  Ref
	EvID types.ID
}

// WireSize returns the serialized size of the row; withEvID controls
// whether the EVID column exists in this scheme's table.
func (p Prov) WireSize(withEvID bool) int {
	n := 2 + len(p.Loc) + len(p.VID) + p.Ref.WireSize()
	if withEvID {
		n += len(p.EvID)
	}
	return n
}

// pendingOutput is an output waiting for its equivalence class's shared
// tree reference to be installed in hmap (Advanced scheme, out-of-order
// arrival protection).
type pendingOutput struct {
	vid  types.ID
	evid types.ID
}

// hmapKey addresses one equivalence class's shared chain for one output
// relation.
type hmapKey struct {
	eq  types.ID
	rel string
}

// hmapEntry holds the shared-chain references of one class/relation, and
// the event (epoch) that installed them.
type hmapEntry struct {
	evid types.ID
	refs []Ref
}

// store holds one node's provenance state for one maintenance scheme, with
// running serialized-size accounting in the paper's measurement style
// (Section 6: "we serialize the per-node provenance tables ... and measure
// the size").
type store struct {
	withNext bool // scheme has NLoc/NRID columns
	withEvID bool // scheme has an EVID column
	useLinks bool // Section 5.4: next refs live in a separate ruleExecLink table

	ruleExec map[types.ID]*RuleExec
	// links holds additional next-references per RID for the
	// inter-equivalence-class table split of Section 5.4 (ruleExecLink).
	links map[types.ID][]Ref
	prov  map[types.ID][]Prov

	// Advanced runtime state (Section 5.3). hmap is keyed by (equivalence
	// hash, output relation): one input event may complete several chains
	// when multiple programs share its event stream (Section 8), each
	// producing its own output relation. The epoch EVID lets a post-sig
	// re-maintenance replace a class's references instead of accumulating
	// stale ones.
	htequi  map[types.ID]bool
	hmap    map[hmapKey]*hmapEntry
	pending map[hmapKey][]pendingOutput

	ruleExecBytes int64
	provBytes     int64
	htequiBytes   int64
	hmapBytes     int64

	// Observability counters for the Advanced scheme's §5.5 sig path and
	// §5.3 out-of-order landing machinery. Process-local: they are not
	// persisted and reset with the state machine.
	sigClears        int64
	deferredOutputs  int64
	deferredLandings int64
}

func newStore(withNext, withEvID, useLinks bool) *store {
	return &store{
		withNext: withNext,
		withEvID: withEvID,
		useLinks: useLinks,
		ruleExec: make(map[types.ID]*RuleExec),
		prov:     make(map[types.ID][]Prov),
	}
}

// bytes returns the node's total provenance storage.
func (s *store) bytes() int64 {
	return s.ruleExecBytes + s.provBytes + s.htequiBytes + s.hmapBytes
}

// addRuleExec inserts a ruleExec row keyed by RID; duplicate RIDs are kept
// once (set semantics). It reports whether the row was new.
func (s *store) addRuleExec(e RuleExec) bool {
	if _, ok := s.ruleExec[e.RID]; ok {
		return false
	}
	cp := e
	s.ruleExec[e.RID] = &cp
	s.ruleExecBytes += int64(e.WireSize(s.withNext))
	return true
}

// addLink records an extra (NLoc, NRID) link for a shared rule-execution
// node (ruleExecLink table of Section 5.4). Duplicate links are ignored.
func (s *store) addLink(rid types.ID, next Ref) bool {
	for _, r := range s.links[rid] {
		if r == next {
			return false
		}
	}
	if s.links == nil {
		s.links = make(map[types.ID][]Ref)
	}
	s.links[rid] = append(s.links[rid], next)
	// A link row carries (Loc, RID, NLoc, NRID).
	s.ruleExecBytes += int64(2 + len(rid) + next.WireSize())
	return true
}

// getRuleExec fetches a row by RID.
func (s *store) getRuleExec(rid types.ID) (RuleExec, bool) {
	e, ok := s.ruleExec[rid]
	if !ok {
		return RuleExec{}, false
	}
	return *e, true
}

// nexts returns every recorded next-reference of a rule-execution node.
// Under the inter-class table split (Section 5.4) the references live in
// the ruleExecLink table and one node may carry several; otherwise the
// row's own Next column is the single reference. A leaf contributes NilRef.
func (s *store) nexts(rid types.ID) []Ref {
	e, ok := s.ruleExec[rid]
	if !ok {
		return nil
	}
	if s.useLinks {
		return append([]Ref(nil), s.links[rid]...)
	}
	out := []Ref{e.Next}
	for _, r := range s.links[rid] {
		if r != e.Next {
			out = append(out, r)
		}
	}
	return out
}

// addProv inserts a prov row; exact duplicates are ignored. It reports
// whether the row was new.
func (s *store) addProv(p Prov) bool {
	for _, q := range s.prov[p.VID] {
		if q == p {
			return false
		}
	}
	s.prov[p.VID] = append(s.prov[p.VID], p)
	s.provBytes += int64(p.WireSize(s.withEvID))
	return true
}

// provRows returns the prov rows for a VID, optionally filtered by EvID.
func (s *store) provRows(vid, evid types.ID) []Prov {
	rows := s.prov[vid]
	if evid.IsZero() {
		return rows
	}
	var out []Prov
	for _, p := range rows {
		if p.EvID == evid {
			out = append(out, p)
		}
	}
	return out
}

// seenEquiKey implements Stage 1 of Section 5.3: it checks whether the
// equivalence-key hash was seen at this node and records it if not,
// returning the prior existence (the existFlag value).
func (s *store) seenEquiKey(h types.ID) bool {
	if s.htequi == nil {
		s.htequi = make(map[types.ID]bool)
	}
	if s.htequi[h] {
		return true
	}
	s.htequi[h] = true
	s.htequiBytes += int64(len(h))
	return false
}

// clearEquiKeys empties htequi on receipt of a sig broadcast (Section 5.5).
func (s *store) clearEquiKeys() {
	s.htequi = nil
	s.htequiBytes = 0
	s.sigClears++
}

// addHmapRef installs a shared-chain reference for (class, output
// relation) and returns any outputs that were waiting for it. A reference
// installed by a new event (fresh evid — e.g. after a sig reset) replaces
// the previous epoch's references; references from the same event
// accumulate (one event may complete several chains to the same output
// relation).
func (s *store) addHmapRef(eq types.ID, rel string, evid types.ID, ref Ref) []pendingOutput {
	if s.hmap == nil {
		s.hmap = make(map[hmapKey]*hmapEntry)
	}
	k := hmapKey{eq, rel}
	e := s.hmap[k]
	if e == nil {
		e = &hmapEntry{evid: evid}
		s.hmap[k] = e
		s.hmapBytes += int64(len(eq) + len(rel) + len(evid))
	} else if e.evid != evid {
		for _, old := range e.refs {
			s.hmapBytes -= int64(old.WireSize())
		}
		e.evid = evid
		e.refs = e.refs[:0]
	}
	for _, r := range e.refs {
		if r == ref {
			waiting := s.pending[k]
			delete(s.pending, k)
			s.deferredLandings += int64(len(waiting))
			return waiting
		}
	}
	e.refs = append(e.refs, ref)
	s.hmapBytes += int64(ref.WireSize())
	waiting := s.pending[k]
	delete(s.pending, k)
	s.deferredLandings += int64(len(waiting))
	return waiting
}

// hmapRefs returns the shared-chain references for (class, output
// relation).
func (s *store) hmapRefs(eq types.ID, rel string) []Ref {
	e := s.hmap[hmapKey{eq, rel}]
	if e == nil {
		return nil
	}
	return e.refs
}

// deferOutput queues an output until the class's hmap entry arrives.
func (s *store) deferOutput(eq types.ID, rel string, p pendingOutput) {
	if s.pending == nil {
		s.pending = make(map[hmapKey][]pendingOutput)
	}
	k := hmapKey{eq, rel}
	s.pending[k] = append(s.pending[k], p)
	s.deferredOutputs++
}

// numRuleExec and numProv report row counts, for tests and table dumps.
func (s *store) numRuleExec() int { return len(s.ruleExec) }
func (s *store) numProv() int {
	n := 0
	for _, rows := range s.prov {
		n += len(rows)
	}
	return n
}
