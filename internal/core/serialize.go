package core

import (
	"sort"

	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// SerializeNode encodes one node's provenance tables into the binary form
// the storage measurement assumes (the counterpart of the paper's
// boost-serialization step): every ruleExec row, link row, prov row, and —
// under Advanced — the htequi and hmap entries. The length of the returned
// buffer equals StorageBytes for the node, which
// TestSerializedSizeMatchesAccounting pins.
func (b *base) SerializeNode(addr types.NodeAddr) []byte {
	s, ok := b.stores[addr]
	if !ok {
		return nil
	}
	return s.serialize()
}

// serialize writes the store's rows deterministically.
func (s *store) serialize() []byte {
	e := wire.NewEncoder(int(s.bytes()))

	// ruleExec rows, ordered by RID.
	rids := make([]string, 0, len(s.ruleExec))
	byHex := make(map[string]*RuleExec, len(s.ruleExec))
	for rid, row := range s.ruleExec {
		h := rid.Hex()
		rids = append(rids, h)
		byHex[h] = row
	}
	sort.Strings(rids)
	for _, h := range rids {
		row := byHex[h]
		encodeAddr(e, string(row.Loc))
		e.ID(row.RID)
		encodeName(e, row.Rule)
		e.U8(uint8(len(row.VIDs)))
		for _, v := range row.VIDs {
			e.ID(v)
		}
		if s.withNext {
			encodeAddr(e, string(row.Next.Loc))
			e.ID(row.Next.RID)
		}
	}
	// Link rows (inter-class split, or converging Basic chains).
	linkRids := make([]string, 0, len(s.links))
	linkByHex := make(map[string][]Ref, len(s.links))
	for rid, refs := range s.links {
		h := rid.Hex()
		linkRids = append(linkRids, h)
		linkByHex[h] = refs
	}
	sort.Strings(linkRids)
	for _, h := range linkRids {
		for _, r := range linkByHex[h] {
			// A link row carries (RID, NLoc, NRID): accounted as
			// 2 + len(rid) + next.WireSize().
			e.U8(0)
			e.U8(0)
			var rid types.ID
			copy(rid[:], hexToID(h))
			e.ID(rid)
			encodeAddr(e, string(r.Loc))
			e.ID(r.RID)
		}
	}

	// prov rows, ordered by VID then EvID.
	var provRows []Prov
	for _, rows := range s.prov {
		provRows = append(provRows, rows...)
	}
	sort.Slice(provRows, func(i, j int) bool {
		if provRows[i].VID != provRows[j].VID {
			return provRows[i].VID.Hex() < provRows[j].VID.Hex()
		}
		return provRows[i].EvID.Hex() < provRows[j].EvID.Hex()
	})
	for _, p := range provRows {
		encodeAddr(e, string(p.Loc))
		e.ID(p.VID)
		encodeAddr(e, string(p.Ref.Loc))
		e.ID(p.Ref.RID)
		if s.withEvID {
			e.ID(p.EvID)
		}
	}

	// htequi entries.
	eqs := make([]string, 0, len(s.htequi))
	for k := range s.htequi {
		eqs = append(eqs, k.Hex())
	}
	sort.Strings(eqs)
	for _, h := range eqs {
		var id types.ID
		copy(id[:], hexToID(h))
		e.ID(id)
	}

	// hmap entries.
	keys := make([]hmapKey, 0, len(s.hmap))
	for k := range s.hmap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].eq != keys[j].eq {
			return keys[i].eq.Hex() < keys[j].eq.Hex()
		}
		return keys[i].rel < keys[j].rel
	})
	for _, k := range keys {
		entry := s.hmap[k]
		e.ID(k.eq)
		for i := 0; i < len(k.rel); i++ {
			e.U8(k.rel[i])
		}
		e.ID(entry.evid)
		for _, r := range entry.refs {
			encodeAddr(e, string(r.Loc))
			e.ID(r.RID)
		}
	}
	return e.Bytes()
}

// encodeAddr writes a node address with the 2-byte length prefix the
// WireSize formulas assume.
func encodeAddr(e *wire.Encoder, s string) {
	e.U8(uint8(len(s) >> 8))
	e.U8(uint8(len(s)))
	for i := 0; i < len(s); i++ {
		e.U8(s[i])
	}
}

// encodeName writes a rule name with a 1-byte length prefix.
func encodeName(e *wire.Encoder, s string) {
	e.U8(uint8(len(s)))
	for i := 0; i < len(s); i++ {
		e.U8(s[i])
	}
}

// hexToID converts the hex form back to raw bytes (sorting keys by hex
// keeps the output deterministic).
func hexToID(h string) []byte {
	out := make([]byte, len(h)/2)
	for i := 0; i < len(out); i++ {
		out[i] = unhexByte(h[2*i])<<4 | unhexByte(h[2*i+1])
	}
	return out
}

func unhexByte(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}
