package core

import (
	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// ExSPAN maintains uncompressed distributed provenance in the style of the
// ExSPAN system (Section 2.2, Table 1): every rule execution stores a
// ruleExec row with the VIDs of all its body tuples, and every tuple node
// of every provenance tree — derived tuples, intermediate event tuples, and
// the base tuples they joined with — gets a prov row at its location.
type ExSPAN struct {
	base
}

// NewExSPAN returns the uncompressed maintainer.
func NewExSPAN() *ExSPAN {
	return &ExSPAN{base: newBase(false, false, false)}
}

// exspanMeta carries the reference to the rule execution that derived the
// shipped tuple, so the receiving node can store the tuple's prov row.
type exspanMeta struct {
	Ref Ref
}

// Name identifies the scheme.
func (e *ExSPAN) Name() string { return "ExSPAN" }

// Attach wires the maintainer to the runtime.
func (e *ExSPAN) Attach(rt *engine.Runtime) { e.attach(rt, e) }

// OnInject starts an execution; the injected event has no deriving rule,
// so its prov row (stored when it first triggers a rule) will carry NULL.
func (e *ExSPAN) OnInject(*engine.Node, types.Tuple) engine.Meta {
	return exspanMeta{Ref: NilRef}
}

// OnFire stores the ruleExec row for the execution at the firing node,
// prov rows for the event tuple (referencing its deriving execution, NULL
// for injected events) and for the slow-changing body tuples (NULL).
func (e *ExSPAN) OnFire(n *engine.Node, f engine.Firing, in engine.Meta) engine.Meta {
	m := in.(exspanMeta)
	st := e.store(n.Addr)

	evVID := types.HashTuple(f.Event)
	st.addProv(Prov{Loc: n.Addr, VID: evVID, Ref: m.Ref})

	vids := slowVIDs(f)
	for _, v := range vids {
		st.addProv(Prov{Loc: n.Addr, VID: v, Ref: NilRef})
	}
	vids = append(vids, evVID)

	rid := types.RuleExecID(f.Rule.Label, n.Addr, vids)
	st.addRuleExec(RuleExec{Loc: n.Addr, RID: rid, Rule: f.Rule.Label, VIDs: vids})
	return exspanMeta{Ref: Ref{Loc: n.Addr, RID: rid}}
}

// OnOutput stores the output tuple's prov row at the output node
// (Table 1's vid6 row).
func (e *ExSPAN) OnOutput(n *engine.Node, out types.Tuple, in engine.Meta) {
	m := in.(exspanMeta)
	e.store(n.Addr).addProv(Prov{Loc: n.Addr, VID: types.HashTuple(out), Ref: m.Ref})
}

// MetaSize prices the (RID, RLoc) reference shipped with each tuple.
func (e *ExSPAN) MetaSize(m engine.Meta) int {
	return m.(exspanMeta).Ref.WireSize()
}

// --- query scheme implementation ---

// provRefsFor anchors the query at every derivation of the tuple; ExSPAN
// has no EVID column, so event filtering happens after reconstruction.
func (e *ExSPAN) provRefsFor(st *store, vid, _ types.ID) []Prov {
	return st.provRows(vid, types.ZeroID)
}

// collectEntry fetches a ruleExec row plus, for each of its body VIDs, the
// local prov rows and the tuple contents, following the event tuple's prov
// reference to the previous node (the recursive querying of Section 2.2).
func (e *ExSPAN) collectEntry(n *engine.Node, st *store, ref Ref, q *walkQuery) ([]Ref, int64) {
	entry, ok := st.getRuleExec(ref.RID)
	if !ok {
		return nil, 0
	}
	var bytes int64
	bytes += int64(entry.WireSize(false))
	q.acc.addEntry(CollectedEntry{Entry: entry})
	var nexts []Ref
	for _, vid := range entry.VIDs {
		if t, ok := n.DB.LookupVID(vid); ok {
			if q.acc.addTuple(t) {
				bytes += int64(t.EncodedSize())
			}
		}
		for _, p := range st.provRows(vid, types.ZeroID) {
			if q.acc.addProv(p) {
				bytes += int64(p.WireSize(false))
			}
			if !p.Ref.IsNil() {
				nexts = append(nexts, p.Ref)
			}
		}
	}
	return nexts, bytes
}

// assemble reconstructs the trees directly from the collected entries,
// prov rows and tuple contents — no re-execution needed, since ExSPAN
// materialized everything.
func (e *ExSPAN) assemble(q *walkQuery) []*Tree {
	return AssembleExSPAN(e.rt.Prog, q.root, q.rootProvs,
		q.acc.entryIndex(), q.acc.tupleIndex(), q.acc.provIndex())
}

// AssembleExSPAN reconstructs provenance trees from an uncompressed
// (ExSPAN) walk: entries carry every body VID, tuples their contents, and
// the prov rows link each derived tuple to the execution that produced it.
// Exported for transport implementations (internal/cluster).
func AssembleExSPAN(prog *ndlog.Program, root types.Tuple, rootProvs []Prov,
	entries map[Ref]CollectedEntry, tuples map[types.ID]types.Tuple, provs map[types.ID][]Prov) []*Tree {
	var build func(ref Ref, output types.Tuple, depth int) []*Tree
	build = func(ref Ref, output types.Tuple, depth int) []*Tree {
		if depth > maxQueryDepth {
			return nil
		}
		ce, ok := entries[ref]
		if !ok {
			return nil
		}
		rule := prog.Rule(ce.Entry.Rule)
		if rule == nil {
			return nil
		}
		var slow []types.Tuple
		var event types.Tuple
		haveEvent := false
		for _, vid := range ce.Entry.VIDs {
			t, ok := tuples[vid]
			if !ok {
				return nil
			}
			if t.Rel == rule.Event.Rel {
				event, haveEvent = t, true
			} else {
				slow = append(slow, t)
			}
		}
		if !haveEvent {
			return nil
		}
		var childRefs []Ref
		for _, p := range provs[types.HashTuple(event)] {
			if !p.Ref.IsNil() {
				childRefs = append(childRefs, p.Ref)
			}
		}
		if len(childRefs) == 0 {
			ev := event
			return []*Tree{{Rule: rule.Label, Output: output, Event: &ev, Slow: slow}}
		}
		var out []*Tree
		for _, cr := range childRefs {
			for _, sub := range build(cr, event, depth+1) {
				out = append(out, &Tree{Rule: rule.Label, Output: output, Child: sub, Slow: slow})
			}
		}
		return out
	}

	var trees []*Tree
	for _, p := range rootProvs {
		if p.Ref.IsNil() {
			continue
		}
		trees = append(trees, build(p.Ref, root, 0)...)
	}
	return trees
}
