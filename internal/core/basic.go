package core

import (
	"provcompress/internal/engine"
	"provcompress/internal/types"
)

// Basic implements the storage optimization of Section 4: provenance nodes
// for intermediate event tuples are removed. Each ruleExec row records only
// the slow-changing body VIDs (plus the input-event VID at the leaf) and an
// (NLoc, NRID) link to the previous rule execution; the prov table holds a
// single row per output tuple. Querying re-derives the intermediate tuples
// bottom-up (Section 4, step 2).
//
// Note: RIDs hash the rule name, location, and all body VIDs, so they equal
// ExSPAN's RIDs for the same execution — exactly the relationship between
// the paper's Tables 1 and 2.
type Basic struct {
	base
}

// NewBasic returns the intermediate-node-removal maintainer.
func NewBasic() *Basic {
	return &Basic{base: newBase(true, false, false)}
}

// basicMeta carries the (NLoc, NRID) reference to the previous rule
// execution in the chain; NULL at the first rule.
type basicMeta struct {
	Prev Ref
}

// Name identifies the scheme.
func (b *Basic) Name() string { return "Basic" }

// Attach wires the maintainer to the runtime.
func (b *Basic) Attach(rt *engine.Runtime) { b.attach(rt, b) }

// OnInject starts an execution chain with a NULL previous reference.
func (b *Basic) OnInject(*engine.Node, types.Tuple) engine.Meta {
	return basicMeta{Prev: NilRef}
}

// OnFire stores the optimized ruleExec row (Table 2): slow-changing VIDs
// only — plus the input event's VID at the chain's first rule, which the
// bottom-up re-derivation starts from — linked to the previous execution.
func (b *Basic) OnFire(n *engine.Node, f engine.Firing, in engine.Meta) engine.Meta {
	m := in.(basicMeta)
	st := b.store(n.Addr)

	stored := slowVIDs(f)
	allVids := append(append([]types.ID(nil), stored...), types.HashTuple(f.Event))
	if m.Prev.IsNil() {
		stored = allVids // leaf keeps the event VID too
	}
	rid := types.RuleExecID(f.Rule.Label, n.Addr, allVids)
	if !st.addRuleExec(RuleExec{Loc: n.Addr, RID: rid, Rule: f.Rule.Label, VIDs: stored, Next: m.Prev}) {
		// The same rule execution already chains to another derivation of
		// this event tuple (converging derivations). Record the extra
		// predecessor as a link row; queries enumerate both chains and
		// validate during re-derivation (as in Section 5.4's split tables).
		if prev, ok := st.getRuleExec(rid); ok && prev.Next != m.Prev {
			st.addLink(rid, m.Prev)
		}
	}
	return basicMeta{Prev: Ref{Loc: n.Addr, RID: rid}}
}

// OnOutput stores the single prov row of the optimized scheme, pointing at
// the last rule execution of the chain.
func (b *Basic) OnOutput(n *engine.Node, out types.Tuple, in engine.Meta) {
	m := in.(basicMeta)
	b.store(n.Addr).addProv(Prov{Loc: n.Addr, VID: types.HashTuple(out), Ref: m.Prev})
}

// MetaSize prices the (NLoc, NRID) reference shipped with each tuple.
func (b *Basic) MetaSize(m engine.Meta) int {
	return m.(basicMeta).Prev.WireSize()
}

// --- query scheme implementation ---

// provRefsFor anchors the query; Basic has no EVID column, so event
// filtering happens after reconstruction.
func (b *Basic) provRefsFor(st *store, vid, _ types.ID) []Prov {
	return st.provRows(vid, types.ZeroID)
}

// collectEntry fetches the optimized ruleExec row and the contents of the
// tuples its VIDs reference (slow-changing tuples, and the input event at
// the leaf), then follows the NLoc/NRID link.
func (b *Basic) collectEntry(n *engine.Node, st *store, ref Ref, q *walkQuery) ([]Ref, int64) {
	entry, ok := st.getRuleExec(ref.RID)
	if !ok {
		return nil, 0
	}
	var bytes int64
	bytes += int64(entry.WireSize(true))
	nexts := st.nexts(ref.RID)
	ce := CollectedEntry{Entry: entry, Nexts: nexts}
	q.acc.addEntry(ce)
	for _, vid := range entry.VIDs {
		if t, ok := n.DB.LookupVID(vid); ok {
			if q.acc.addTuple(t) {
				bytes += int64(t.EncodedSize())
			}
		}
	}
	var live []Ref
	for _, nx := range nexts {
		if !nx.IsNil() {
			live = append(live, nx)
		}
	}
	return live, bytes
}

// assemble re-derives the intermediate tuples bottom-up from the event and
// slow-changing leaves (Section 4, step 2).
func (b *Basic) assemble(q *walkQuery) []*Tree {
	return b.reconstructChains(q, BasicLeafEvent(b.rt.Prog, q.acc.tupleIndex()))
}
