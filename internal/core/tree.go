// Package core implements the paper's contribution: distributed provenance
// maintenance and compression for DELPs. It provides the provenance tree
// representation (Appendix A), the distributed storage model (prov and
// ruleExec tables, Section 2.2), the three maintenance schemes evaluated in
// Section 6 — ExSPAN (uncompressed), Basic (intermediate-node removal,
// Section 4), and Advanced (equivalence-based compression, Section 5) — and
// the distributed provenance query protocols (Sections 4 and 5.6).
package core

import (
	"fmt"
	"strings"

	"provcompress/internal/types"
)

// Tree is a provenance tree per Appendix A:
//
//	tr ::= <rID, P, ev, B1::...::Bn>   (base: triggered by the input event)
//	     | <rID, P, tr, B1::...::Bn>   (recursive: triggered by a derived tuple)
//
// Output is the derived tuple P; Slow holds the slow-changing tuples
// B1..Bn; exactly one of Event (base case) and Child (recursive case) is
// set.
type Tree struct {
	Rule   string
	Output types.Tuple
	Event  *types.Tuple
	Child  *Tree
	Slow   []types.Tuple
}

// EventOf returns the input event tuple at the leaf of the tree (the
// EVENTOF function used by Theorem 5).
func (t *Tree) EventOf() types.Tuple {
	cur := t
	for cur.Child != nil {
		cur = cur.Child
	}
	if cur.Event == nil {
		panic("core: malformed tree: leaf without event")
	}
	return *cur.Event
}

// EvID returns the hash of the tree's input event tuple.
func (t *Tree) EvID() types.ID { return types.HashTuple(t.EventOf()) }

// Depth returns the number of rule executions in the tree.
func (t *Tree) Depth() int {
	d := 0
	for cur := t; cur != nil; cur = cur.Child {
		d++
	}
	return d
}

// Equal reports structural equality: same rules, same outputs, same event,
// same slow tuples at every level.
func (t *Tree) Equal(u *Tree) bool {
	for {
		switch {
		case t == nil && u == nil:
			return true
		case t == nil || u == nil:
			return false
		case t.Rule != u.Rule,
			!t.Output.Equal(u.Output),
			len(t.Slow) != len(u.Slow),
			(t.Event == nil) != (u.Event == nil):
			return false
		}
		for i := range t.Slow {
			if !t.Slow[i].Equal(u.Slow[i]) {
				return false
			}
		}
		if t.Event != nil {
			return t.Event.Equal(*u.Event)
		}
		t, u = t.Child, u.Child
	}
}

// Equivalent implements the ~ relation of Section 5.1 / Appendix A: the
// trees share the identical rule sequence and identical slow-changing
// tuples at every level, differing only in the output tuples and the input
// event. (Appendix A's definition is additionally parameterized by event
// equivalence w.r.t. keys; callers check event equivalence separately.)
func (t *Tree) Equivalent(u *Tree) bool {
	for {
		switch {
		case t == nil && u == nil:
			return true
		case t == nil || u == nil:
			return false
		case t.Rule != u.Rule,
			len(t.Slow) != len(u.Slow),
			(t.Event == nil) != (u.Event == nil):
			return false
		}
		for i := range t.Slow {
			if !t.Slow[i].Equal(u.Slow[i]) {
				return false
			}
		}
		if t.Event != nil {
			return true // events may differ
		}
		t, u = t.Child, u.Child
	}
}

// String renders the tree root-first with indentation, e.g.
//
//	recv(@n3, "n1", "n3", "data") <- r2
//	  packet(@n3, "n1", "n3", "data") <- r1 [route(@n2, "n3", "n3")]
//	  ...
func (t *Tree) String() string {
	var b strings.Builder
	t.format(&b, 0)
	return b.String()
}

func (t *Tree) format(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s <- %s", indent, t.Output, t.Rule)
	if len(t.Slow) > 0 {
		parts := make([]string, len(t.Slow))
		for i, s := range t.Slow {
			parts[i] = s.String()
		}
		fmt.Fprintf(b, " [%s]", strings.Join(parts, ", "))
	}
	b.WriteByte('\n')
	if t.Child != nil {
		t.Child.format(b, depth+1)
		return
	}
	fmt.Fprintf(b, "%sevent %s\n", strings.Repeat("  ", depth+1), t.Event)
}

// WireSize estimates the serialized size of the full tree: what a
// centralized uncompressed store would pay per tree.
func (t *Tree) WireSize() int {
	n := 0
	for cur := t; cur != nil; cur = cur.Child {
		n += len(cur.Rule) + 1 + cur.Output.EncodedSize()
		for _, s := range cur.Slow {
			n += s.EncodedSize()
		}
		if cur.Event != nil {
			n += cur.Event.EncodedSize()
		}
	}
	return n
}
