package core

import (
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/types"
)

// Recorder is a reference maintainer: it carries the full provenance tree
// of each execution along with the tuples and stores every completed tree
// at the output, exactly what semi-naïve evaluation with uncompressed
// provenance derives (the C_sn states of Lemma 4). It is the ground truth
// the correctness tests compare the compressed schemes against, and doubles
// as the "centralized uncompressed" baseline for ablations.
type Recorder struct {
	rt       *engine.Runtime
	trees    []*Tree
	byOutput map[types.ID][]*Tree
}

// NewRecorder returns an empty reference maintainer.
func NewRecorder() *Recorder {
	return &Recorder{byOutput: make(map[types.ID][]*Tree)}
}

// Name identifies the scheme.
func (r *Recorder) Name() string { return "Recorder" }

// Attach wires the maintainer to the runtime.
func (r *Recorder) Attach(rt *engine.Runtime) { r.rt = rt }

// OnInject starts an execution with no subtree.
func (r *Recorder) OnInject(*engine.Node, types.Tuple) engine.Meta { return (*Tree)(nil) }

// OnFire extends the carried tree with the new rule execution.
func (r *Recorder) OnFire(_ *engine.Node, f engine.Firing, in engine.Meta) engine.Meta {
	child, _ := in.(*Tree)
	node := &Tree{Rule: f.Rule.Label, Output: f.Head, Slow: f.Slow}
	if child == nil {
		ev := f.Event
		node.Event = &ev
	} else {
		node.Child = child
	}
	return node
}

// OnOutput records the completed tree. Semi-naïve evaluation has set
// semantics: re-deriving an identical tree (e.g. by injecting the same
// event tuple twice) does not grow the stored set.
func (r *Recorder) OnOutput(_ *engine.Node, out types.Tuple, in engine.Meta) {
	t, _ := in.(*Tree)
	if t == nil {
		return // an injected tuple landed directly on an output relation
	}
	vid := types.HashTuple(out)
	for _, prev := range r.byOutput[vid] {
		if prev.Equal(t) {
			return
		}
	}
	r.trees = append(r.trees, t)
	r.byOutput[vid] = append(r.byOutput[vid], t)
}

// OnSlowUpdate is a no-op: the recorder always maintains full trees.
func (r *Recorder) OnSlowUpdate(*engine.Node, types.Tuple, bool) {}

// HandleMessage handles nothing.
func (r *Recorder) HandleMessage(*engine.Node, netsim.Message) bool { return false }

// MetaSize is zero: the recorder is a reference, not a wire protocol.
func (r *Recorder) MetaSize(engine.Meta) int { return 0 }

// Trees returns every completed provenance tree in completion order.
func (r *Recorder) Trees() []*Tree { return r.trees }

// TreesFor returns the trees of the output tuple with the given VID,
// optionally restricted to those triggered by the event with hash evid.
func (r *Recorder) TreesFor(vid, evid types.ID) []*Tree {
	rows := r.byOutput[vid]
	if evid.IsZero() {
		return rows
	}
	var out []*Tree
	for _, t := range rows {
		if t.EvID() == evid {
			out = append(out, t)
		}
	}
	return out
}

// StorageBytes sums the serialized sizes of the trees rooted at addr: the
// cost of storing every tree whole, per node.
func (r *Recorder) StorageBytes(addr types.NodeAddr) int64 {
	var total int64
	for _, t := range r.trees {
		if t.Output.Loc() == addr {
			total += int64(t.WireSize())
		}
	}
	return total
}

// TotalStorageBytes sums the serialized sizes of all trees.
func (r *Recorder) TotalStorageBytes() int64 {
	var total int64
	for _, t := range r.trees {
		total += int64(t.WireSize())
	}
	return total
}
