package core

import (
	"fmt"
	"strings"

	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// AdvMeta is the exported form of the per-execution metadata transport
// implementations serialize alongside each shipped tuple. It is the
// superset used by the three schemes: ExSPAN and Basic use only Prev (the
// reference to the last rule execution); Advanced uses every field
// (Section 5.3).
type AdvMeta struct {
	Eq    types.ID
	Exist bool
	EvID  types.ID
	Prev  Ref
}

// WireSize returns the metadata's on-the-wire size under the Advanced
// scheme.
func (m AdvMeta) WireSize() int {
	n := len(m.Eq) + 1 + len(m.EvID)
	if !m.Exist {
		n += m.Prev.WireSize()
	}
	return n
}

// NodeState is a transport-agnostic per-node provenance state machine: the
// same maintenance and query-walk logic the simulated maintainers run,
// exposed so a real-socket deployment (internal/cluster) can drive it from
// its own message loop. Implementations are not safe for concurrent use;
// callers serialize access per node.
type NodeState interface {
	// Scheme names the maintenance scheme.
	Scheme() string
	// Inject performs the scheme's injection step at the origin node.
	Inject(ev types.Tuple) AdvMeta
	// FireAt performs the scheme's maintenance for one rule firing.
	FireAt(addr types.NodeAddr, f engine.Firing, m AdvMeta) AdvMeta
	// Output performs the scheme's output association step. It returns the
	// VIDs of the output tuples whose provenance gained rows in this call —
	// usually just out's VID, but the Advanced scheme's deferred waiting
	// list can land rows for several earlier outputs at once, and a
	// deferred landing returns nil until a later Output resolves it. The
	// serving layer keys cache invalidation on these VIDs (DESIGN.md §14).
	Output(out types.Tuple, m AdvMeta) []types.ID
	// ClearEquiKeys handles a sig broadcast (no-op outside Advanced).
	ClearEquiKeys()
	// ProvRows anchors a query at an output VID (evid filter where the
	// scheme records one).
	ProvRows(vid, evid types.ID) []Prov
	// Collect processes one query-walk reference at this node: the
	// collected entry with its links, the VIDs whose tuple contents the
	// walk must fetch here, the local prov rows to ship (ExSPAN), and the
	// next references to follow.
	Collect(ref Ref) (ce CollectedEntry, vids []types.ID, provs []Prov, nexts []Ref, ok bool)
	// EventByEvID reports whether chain-leaf events resolve through EVID
	// lookups (Advanced) rather than through recorded VIDs (Basic) or prov
	// rows (ExSPAN).
	EventByEvID() bool
	// Reconstruct rebuilds the provenance trees at the querier from the
	// completed walk.
	Reconstruct(prog *ndlog.Program, funcs ndlog.FuncMap, root types.Tuple, rootProvs []Prov,
		entries map[Ref]CollectedEntry, tuples map[types.ID]types.Tuple, provs map[types.ID][]Prov) []*Tree
	// StorageBytes returns the serialized size of the node's tables.
	StorageBytes() int64
	// Persist serializes the full state machine (all tables plus byte
	// accounting) into the encoder, for durability checkpoints.
	Persist(e *wire.Encoder)
	// Restore resets the state machine and rebuilds it from a Persist
	// snapshot.
	Restore(d *wire.Decoder) error
	// Merge folds a Persist snapshot into the existing state without
	// resetting it: rows already present stay, absent rows are added
	// through the normal insertion paths so the byte accounting tracks
	// them. The membership subsystem uses it to install a partition
	// handoff or read-repair payload over state that may already hold
	// replicated records for the same partition.
	Merge(d *wire.Decoder) error
}

// NewNodeState builds the per-node state machine for a scheme name
// (SchemeExSPAN, SchemeBasic, SchemeAdvanced, case-insensitive); keys are
// the program's equivalence keys (used by Advanced only).
func NewNodeState(scheme string, keys []int) (NodeState, error) {
	switch strings.ToLower(scheme) {
	case "exspan":
		return NewExSPANState(), nil
	case "basic":
		return NewBasicState(), nil
	case "advanced":
		return NewAdvancedState(keys), nil
	default:
		if _, err := NewScheme(scheme); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: scheme %s is not available on the cluster transport", scheme)
	}
}

// --- Advanced ---

// AdvancedState is the Advanced scheme's per-node state machine
// (Sections 5.2-5.3, chained RIDs).
type AdvancedState struct {
	keys []int
	st   *store
}

// NewAdvancedState builds the state for one node given the program's
// equivalence-key indexes (from analysis.EquivalenceKeys).
func NewAdvancedState(keys []int) *AdvancedState {
	return &AdvancedState{
		keys: append([]int(nil), keys...),
		st:   newStore(true, true, false),
	}
}

// Scheme names the scheme.
func (s *AdvancedState) Scheme() string { return SchemeAdvanced }

// Inject performs Stage 1 at the event's origin node.
func (s *AdvancedState) Inject(ev types.Tuple) AdvMeta {
	vals := make([]types.Value, len(s.keys))
	for i, k := range s.keys {
		vals[i] = ev.Args[k]
	}
	eq := types.HashValues(vals)
	return AdvMeta{Eq: eq, Exist: s.st.seenEquiKey(eq), EvID: types.HashTuple(ev), Prev: NilRef}
}

// FireAt performs Stage 2 for one rule firing at the named node.
func (s *AdvancedState) FireAt(addr types.NodeAddr, f engine.Firing, m AdvMeta) AdvMeta {
	if m.Exist {
		return m
	}
	svids := slowVIDs(f)
	rid := types.RuleExecID(f.Rule.Label, "", append(append([]types.ID(nil), svids...), m.Prev.RID))
	s.st.addRuleExec(RuleExec{Loc: addr, RID: rid, Rule: f.Rule.Label, VIDs: svids, Next: m.Prev})
	m.Prev = Ref{Loc: addr, RID: rid}
	return m
}

// Output performs Stage 3 at the output tuple's node.
func (s *AdvancedState) Output(out types.Tuple, m AdvMeta) []types.ID {
	vid := types.HashTuple(out)
	if !m.Exist {
		waiting := s.st.addHmapRef(m.Eq, out.Rel, m.EvID, m.Prev)
		s.st.addProv(Prov{Loc: out.Loc(), VID: vid, Ref: m.Prev, EvID: m.EvID})
		landed := make([]types.ID, 0, 1+len(waiting))
		landed = append(landed, vid)
		for _, w := range waiting {
			s.st.addProv(Prov{Loc: out.Loc(), VID: w.vid, Ref: m.Prev, EvID: w.evid})
			landed = append(landed, w.vid)
		}
		return landed
	}
	if refs := s.st.hmapRefs(m.Eq, out.Rel); len(refs) > 0 {
		for _, ref := range refs {
			s.st.addProv(Prov{Loc: out.Loc(), VID: vid, Ref: ref, EvID: m.EvID})
		}
		return []types.ID{vid}
	}
	s.st.deferOutput(m.Eq, out.Rel, pendingOutput{vid: vid, evid: m.EvID})
	return nil
}

// ClearEquiKeys handles a sig broadcast (Section 5.5).
func (s *AdvancedState) ClearEquiKeys() { s.st.clearEquiKeys() }

// AdvancedStats counts the Advanced scheme's §5.5 sig resets and §5.3
// deferred-landing activity at one node. The counters are process-local
// observability state: they are not persisted and reset with the state
// machine.
type AdvancedStats struct {
	// SigClears counts htequi resets from sig broadcasts (Section 5.5).
	SigClears int64
	// DeferredOutputs counts outputs queued because their class's shared
	// chain had not yet landed (out-of-order arrival, Section 5.3).
	DeferredOutputs int64
	// DeferredLandings counts queued outputs later resolved by an
	// arriving chain reference.
	DeferredLandings int64
}

// Add accumulates another node's counters.
func (a *AdvancedStats) Add(b AdvancedStats) {
	a.SigClears += b.SigClears
	a.DeferredOutputs += b.DeferredOutputs
	a.DeferredLandings += b.DeferredLandings
}

// Stats snapshots the node's sig/deferred-landing counters.
func (s *AdvancedState) Stats() AdvancedStats {
	return AdvancedStats{
		SigClears:        s.st.sigClears,
		DeferredOutputs:  s.st.deferredOutputs,
		DeferredLandings: s.st.deferredLandings,
	}
}

// RuleExec fetches a rule-execution row by RID.
func (s *AdvancedState) RuleExec(rid types.ID) (RuleExec, bool) {
	return s.st.getRuleExec(rid)
}

// ProvRows anchors a query at an output VID.
func (s *AdvancedState) ProvRows(vid, evid types.ID) []Prov {
	return s.st.provRows(vid, evid)
}

// Collect processes one walk reference.
func (s *AdvancedState) Collect(ref Ref) (CollectedEntry, []types.ID, []Prov, []Ref, bool) {
	entry, ok := s.st.getRuleExec(ref.RID)
	if !ok {
		return CollectedEntry{}, nil, nil, nil, false
	}
	nexts := s.st.nexts(ref.RID)
	return CollectedEntry{Entry: entry, Nexts: nexts}, entry.VIDs, nil, liveRefs(nexts), true
}

// EventByEvID reports that leaf events resolve through EVID lookups.
func (s *AdvancedState) EventByEvID() bool { return true }

// Reconstruct runs TRANSFORM_TO_D.
func (s *AdvancedState) Reconstruct(prog *ndlog.Program, funcs ndlog.FuncMap, root types.Tuple, rootProvs []Prov,
	entries map[Ref]CollectedEntry, tuples map[types.ID]types.Tuple, _ map[types.ID][]Prov) []*Tree {
	return AssembleChains(prog, funcs, root, rootProvs, entries, tuples, EvIDLeafEvent(tuples))
}

// StorageBytes returns the serialized size of the node's tables.
func (s *AdvancedState) StorageBytes() int64 { return s.st.bytes() }

// --- Basic ---

// BasicState is the Basic scheme's per-node state machine (Section 4).
type BasicState struct {
	st *store
}

// NewBasicState builds the state for one node.
func NewBasicState() *BasicState {
	return &BasicState{st: newStore(true, false, false)}
}

// Scheme names the scheme.
func (s *BasicState) Scheme() string { return SchemeBasic }

// Inject starts a chain with a NULL previous reference.
func (s *BasicState) Inject(ev types.Tuple) AdvMeta {
	return AdvMeta{EvID: types.HashTuple(ev), Prev: NilRef}
}

// FireAt stores the optimized ruleExec row.
func (s *BasicState) FireAt(addr types.NodeAddr, f engine.Firing, m AdvMeta) AdvMeta {
	stored := slowVIDs(f)
	allVids := append(append([]types.ID(nil), stored...), types.HashTuple(f.Event))
	if m.Prev.IsNil() {
		stored = allVids
	}
	rid := types.RuleExecID(f.Rule.Label, addr, allVids)
	if !s.st.addRuleExec(RuleExec{Loc: addr, RID: rid, Rule: f.Rule.Label, VIDs: stored, Next: m.Prev}) {
		if prev, ok := s.st.getRuleExec(rid); ok && prev.Next != m.Prev {
			s.st.addLink(rid, m.Prev)
		}
	}
	m.Prev = Ref{Loc: addr, RID: rid}
	return m
}

// Output stores the single prov row of the optimized scheme.
func (s *BasicState) Output(out types.Tuple, m AdvMeta) []types.ID {
	vid := types.HashTuple(out)
	s.st.addProv(Prov{Loc: out.Loc(), VID: vid, Ref: m.Prev})
	return []types.ID{vid}
}

// ClearEquiKeys is a no-op for Basic.
func (s *BasicState) ClearEquiKeys() {}

// ProvRows anchors a query at an output VID (no EVID column).
func (s *BasicState) ProvRows(vid, _ types.ID) []Prov {
	return s.st.provRows(vid, types.ZeroID)
}

// Collect processes one walk reference.
func (s *BasicState) Collect(ref Ref) (CollectedEntry, []types.ID, []Prov, []Ref, bool) {
	entry, ok := s.st.getRuleExec(ref.RID)
	if !ok {
		return CollectedEntry{}, nil, nil, nil, false
	}
	nexts := s.st.nexts(ref.RID)
	return CollectedEntry{Entry: entry, Nexts: nexts}, entry.VIDs, nil, liveRefs(nexts), true
}

// EventByEvID reports that leaf events come from the recorded VIDs.
func (s *BasicState) EventByEvID() bool { return false }

// Reconstruct re-derives the chain bottom-up (Section 4 step 2).
func (s *BasicState) Reconstruct(prog *ndlog.Program, funcs ndlog.FuncMap, root types.Tuple, rootProvs []Prov,
	entries map[Ref]CollectedEntry, tuples map[types.ID]types.Tuple, _ map[types.ID][]Prov) []*Tree {
	return AssembleChains(prog, funcs, root, rootProvs, entries, tuples, BasicLeafEvent(prog, tuples))
}

// StorageBytes returns the serialized size of the node's tables.
func (s *BasicState) StorageBytes() int64 { return s.st.bytes() }

// --- ExSPAN ---

// ExSPANState is the uncompressed scheme's per-node state machine
// (Section 2.2).
type ExSPANState struct {
	st *store
}

// NewExSPANState builds the state for one node.
func NewExSPANState() *ExSPANState {
	return &ExSPANState{st: newStore(false, false, false)}
}

// Scheme names the scheme.
func (s *ExSPANState) Scheme() string { return SchemeExSPAN }

// Inject starts an execution; the injected event's prov row carries NULL.
func (s *ExSPANState) Inject(ev types.Tuple) AdvMeta {
	return AdvMeta{EvID: types.HashTuple(ev), Prev: NilRef}
}

// FireAt stores the full ruleExec row plus prov rows for every body tuple.
func (s *ExSPANState) FireAt(addr types.NodeAddr, f engine.Firing, m AdvMeta) AdvMeta {
	evVID := types.HashTuple(f.Event)
	s.st.addProv(Prov{Loc: addr, VID: evVID, Ref: m.Prev})
	vids := slowVIDs(f)
	for _, v := range vids {
		s.st.addProv(Prov{Loc: addr, VID: v, Ref: NilRef})
	}
	vids = append(vids, evVID)
	rid := types.RuleExecID(f.Rule.Label, addr, vids)
	s.st.addRuleExec(RuleExec{Loc: addr, RID: rid, Rule: f.Rule.Label, VIDs: vids})
	m.Prev = Ref{Loc: addr, RID: rid}
	return m
}

// Output stores the output tuple's prov row.
func (s *ExSPANState) Output(out types.Tuple, m AdvMeta) []types.ID {
	vid := types.HashTuple(out)
	s.st.addProv(Prov{Loc: out.Loc(), VID: vid, Ref: m.Prev})
	return []types.ID{vid}
}

// ClearEquiKeys is a no-op for ExSPAN.
func (s *ExSPANState) ClearEquiKeys() {}

// ProvRows anchors a query at an output VID (no EVID column).
func (s *ExSPANState) ProvRows(vid, _ types.ID) []Prov {
	return s.st.provRows(vid, types.ZeroID)
}

// Collect processes one walk reference: the entry, its body VIDs, the
// local prov rows of those VIDs, and the next references (the event
// tuple's deriving executions).
func (s *ExSPANState) Collect(ref Ref) (CollectedEntry, []types.ID, []Prov, []Ref, bool) {
	entry, ok := s.st.getRuleExec(ref.RID)
	if !ok {
		return CollectedEntry{}, nil, nil, nil, false
	}
	var provs []Prov
	var nexts []Ref
	for _, vid := range entry.VIDs {
		for _, p := range s.st.provRows(vid, types.ZeroID) {
			provs = append(provs, p)
			if !p.Ref.IsNil() {
				nexts = append(nexts, p.Ref)
			}
		}
	}
	return CollectedEntry{Entry: entry}, entry.VIDs, provs, nexts, true
}

// EventByEvID reports that leaf events come from the prov rows.
func (s *ExSPANState) EventByEvID() bool { return false }

// Reconstruct assembles the trees from the fully materialized data.
func (s *ExSPANState) Reconstruct(prog *ndlog.Program, _ ndlog.FuncMap, root types.Tuple, rootProvs []Prov,
	entries map[Ref]CollectedEntry, tuples map[types.ID]types.Tuple, provs map[types.ID][]Prov) []*Tree {
	return AssembleExSPAN(prog, root, rootProvs, entries, tuples, provs)
}

// StorageBytes returns the serialized size of the node's tables.
func (s *ExSPANState) StorageBytes() int64 { return s.st.bytes() }

// liveRefs filters NULL references out of a next-list.
func liveRefs(nexts []Ref) []Ref {
	var out []Ref
	for _, nx := range nexts {
		if !nx.IsNil() {
			out = append(out, nx)
		}
	}
	return out
}

// EnumerateChains lists every root-to-leaf path through collected
// rule-execution nodes — exported for transport implementations that run
// the Section 5.6 query over their own protocol.
func EnumerateChains(entries map[Ref]CollectedEntry, root Ref) [][]CollectedEntry {
	return enumerateChains(entries, root)
}

// RebuildChain re-derives a full provenance tree from one chain, the input
// event, and the referenced tuple contents (Section 4 step 2 /
// TRANSFORM_TO_D) — exported for transport implementations.
func RebuildChain(prog *ndlog.Program, funcs ndlog.FuncMap, chain []CollectedEntry, event types.Tuple, tuples map[types.ID]types.Tuple) []*Tree {
	return rebuildChain(prog, funcs, chain, event, tuples)
}
