package core

import (
	"strings"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// tapSrc is a second program deployed alongside packet forwarding: nodes
// with a tap entry mirror traversing packets to a monitor. Its provenance
// trees share the forwarding rules' execution nodes — the Section 8
// future-work scenario.
const tapSrc = `
t1 mirror(@M, S, D, DT) :- packet(@L, S, D, DT), tap(@L, M).
`

func multiRuntime(t *testing.T, maint engine.Maintainer) *engine.Runtime {
	t.Helper()
	tap, err := ndlog.ParseDELP(tapSrc)
	if err != nil {
		t.Fatal(err)
	}
	var sched sim.Scheduler
	net := netsim.New(&sched, topo.Fig2())
	rt, err := engine.NewMultiRuntime(net,
		[]*ndlog.Program{apps.Forwarding(), tap}, apps.Funcs(), maint)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadBase(topo.Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadBase([]types.Tuple{
		types.NewTuple("tap", types.String("n2"), types.String("n3")),
	}); err != nil {
		t.Fatal(err)
	}
	return rt
}

func mirrorTuple(m, s, d, dt string) types.Tuple {
	return types.NewTuple("mirror",
		types.String(m), types.String(s), types.String(d), types.String(dt))
}

// TestMergePrograms checks the merge validation rules.
func TestMergePrograms(t *testing.T) {
	tap := ndlog.MustParse(tapSrc)
	merged, err := ndlog.MergePrograms(apps.Forwarding(), tap)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Rules) != 3 {
		t.Errorf("merged rules = %d, want 3", len(merged.Rules))
	}
	// Identical shared rules collapse.
	again, err := ndlog.MergePrograms(apps.Forwarding(), apps.Forwarding())
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Rules) != 2 {
		t.Errorf("self-merge rules = %d, want 2", len(again.Rules))
	}
	// Label collision with a different body is rejected.
	other := ndlog.MustParse(`r1 blah(@L, X) :- foo(@L, X).`)
	if _, err := ndlog.MergePrograms(apps.Forwarding(), other); err == nil {
		t.Error("conflicting label accepted")
	}
	// A program deriving another's slow relation is rejected.
	routeWriter := ndlog.MustParse(`w1 route(@L, D, N) :- linkUp(@L, D, N).`)
	if _, err := ndlog.MergePrograms(apps.Forwarding(), routeWriter); err == nil {
		t.Error("slow-relation writer accepted")
	}
	if _, err := ndlog.MergePrograms(); err == nil {
		t.Error("empty merge accepted")
	}
	evs := ndlog.InputEvents(apps.Forwarding(), tap)
	if len(evs) != 1 || evs[0] != "packet" {
		t.Errorf("InputEvents = %v", evs)
	}
}

// TestCrossProgramExecution checks that one injected packet drives both
// programs: forwarding delivers recv at n3 and the tap at n2 mirrors the
// traversing packet.
func TestCrossProgramExecution(t *testing.T) {
	rec := NewRecorder()
	rt := multiRuntime(t, rec)
	ev := packet("n1", "n1", "n3", "data")
	rt.Inject(ev)
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != 2 {
		t.Fatalf("outputs = %d, want 2 (recv + mirror)", rt.NumOutputs())
	}
	wantMirror := mirrorTuple("n3", "n1", "n3", "data")
	var sawRecv, sawMirror bool
	for _, o := range rt.Outputs() {
		switch {
		case o.Tuple.Equal(recvTuple("n3", "n1", "n3", "data")):
			sawRecv = true
		case o.Tuple.Equal(wantMirror):
			sawMirror = true
		}
	}
	if !sawRecv || !sawMirror {
		t.Fatalf("missing outputs: recv=%v mirror=%v", sawRecv, sawMirror)
	}

	// The mirror tree interleaves rules of both programs: t1 on top of r1.
	trees := rec.TreesFor(types.HashTuple(wantMirror), types.ZeroID)
	if len(trees) != 1 {
		t.Fatalf("mirror trees = %d", len(trees))
	}
	tr := trees[0]
	if tr.Rule != "t1" || tr.Child == nil || tr.Child.Rule != "r1" {
		t.Errorf("mirror tree rules wrong:\n%s", tr)
	}
	if !tr.EventOf().Equal(ev) {
		t.Errorf("mirror tree event = %v", tr.EventOf())
	}
}

// TestCrossProgramSharedChain checks the future-work headline: under
// Advanced, the mirror chain reuses the forwarding chain's rule-execution
// node at n1 — provenance compressed across programs.
func TestCrossProgramSharedChain(t *testing.T) {
	a := NewAdvanced()
	rt := multiRuntime(t, a)
	injectSpaced(rt,
		packet("n1", "n1", "n3", "data"),
		packet("n1", "n1", "n3", "url"))
	rt.Run()
	checkNoErrors(t, rt)
	if rt.NumOutputs() != 4 {
		t.Fatalf("outputs = %d, want 4", rt.NumOutputs())
	}

	// n1 stores exactly one rule-execution node (r1), shared by the recv
	// chains and the mirror chains of both packets.
	if rows := a.RuleExecRows("n1"); len(rows) != 1 || rows[0].Rule != "r1" {
		t.Fatalf("n1 rows = %v, want one shared r1 node", rows)
	}
	// n2 stores r1 (forwarding) and t1 (tap).
	n2rules := map[string]bool{}
	for _, r := range a.RuleExecRows("n2") {
		n2rules[r.Rule] = true
	}
	if len(n2rules) != 2 || !n2rules["r1"] || !n2rules["t1"] {
		t.Fatalf("n2 rules = %v", n2rules)
	}
	// The t1 node's Next points at the shared r1 node at n1.
	for _, r := range a.RuleExecRows("n2") {
		if r.Rule == "t1" {
			if r.Next.Loc != "n1" {
				t.Errorf("t1 next = %v, want the shared n1 node", r.Next)
			}
			n1row := a.RuleExecRows("n1")[0]
			if r.Next.RID != n1row.RID {
				t.Error("t1 does not reference the same RID recv's chain uses")
			}
		}
	}

	// Both packets' mirror and recv trees reconstruct exactly.
	rec := NewRecorder()
	rrec := multiRuntime(t, rec)
	injectSpaced(rrec,
		packet("n1", "n1", "n3", "data"),
		packet("n1", "n1", "n3", "url"))
	rrec.Run()
	for _, want := range rec.Trees() {
		res := runQuery(t, rt, a, want.Output, want.EvID())
		if len(res.Trees) != 1 || !res.Trees[0].Equal(want) {
			t.Errorf("query %v: got %d trees", want.Output, len(res.Trees))
		}
	}
}

// TestMultiProgramDisjointApps deploys forwarding and DNS jointly: the
// programs share no relations, each input event relation gets its own
// equivalence keys, and both applications maintain and answer provenance
// side by side.
func TestMultiProgramDisjointApps(t *testing.T) {
	// One topology hosting both: a forwarding chain f0-f1-f2 and a DNS
	// mini-hierarchy host-root-auth, joined so the graph is connected.
	g := topo.NewGraph()
	g.MustAddLink("f0", "f1", topo.SimpleLatency, topo.SimpleBandwidth)
	g.MustAddLink("f1", "f2", topo.SimpleLatency, topo.SimpleBandwidth)
	g.MustAddLink("f2", "host", topo.SimpleLatency, topo.SimpleBandwidth)
	g.MustAddLink("host", "root", topo.SimpleLatency, topo.SimpleBandwidth)
	g.MustAddLink("root", "auth", topo.SimpleLatency, topo.SimpleBandwidth)

	// Rule labels must be unique across jointly deployed programs (RIDs
	// hash them); deploy the DNS program with q-labels.
	dns, err := ndlog.ParseDELP(strings.NewReplacer(
		"r1 ", "q1 ", "r2 ", "q2 ", "r3 ", "q3 ", "r4 ", "q4 ").Replace(apps.DNSSrc))
	if err != nil {
		t.Fatal(err)
	}

	a := NewAdvanced()
	var sched sim.Scheduler
	net := netsim.New(&sched, g)
	rt, err := engine.NewMultiRuntime(net,
		[]*ndlog.Program{apps.Forwarding(), dns}, apps.Funcs(), a)
	if err != nil {
		t.Fatal(err)
	}
	base := []types.Tuple{
		routeTuple("f0", "f2", "f1"),
		routeTuple("f1", "f2", "f2"),
		types.NewTuple("rootServer", types.String("host"), types.String("root")),
		types.NewTuple("nameServer", types.String("root"), types.String("x"), types.String("auth")),
		types.NewTuple("addressRecord", types.String("auth"), types.String("www.x"), types.String("10.1.1.1")),
	}
	if err := rt.LoadBase(base); err != nil {
		t.Fatal(err)
	}

	pktEv := packet("f0", "f0", "f2", "payload")
	dnsEv := types.NewTuple("url", types.String("host"), types.String("www.x"), types.Int(1))
	injectSpaced(rt, pktEv, dnsEv)
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != 2 {
		t.Fatalf("outputs = %d, want recv + reply", rt.NumOutputs())
	}

	// Per-input-event equivalence keys: packet -> (0,2); url -> (0,1).
	for _, tc := range []struct {
		rel  string
		want []int
	}{
		{"packet", []int{0, 2}},
		{"url", []int{0, 1}},
	} {
		got := a.keysByEvent[tc.rel]
		if len(got) != len(tc.want) {
			t.Errorf("keys[%s] = %v, want %v", tc.rel, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("keys[%s] = %v, want %v", tc.rel, got, tc.want)
			}
		}
	}

	// Both applications' provenance answers correctly.
	recv := recvTuple("f2", "f0", "f2", "payload")
	res := runQuery(t, rt, a, recv, types.HashTuple(pktEv))
	if len(res.Trees) != 1 || !res.Trees[0].EventOf().Equal(pktEv) {
		t.Errorf("forwarding query: %d trees", len(res.Trees))
	}
	reply := types.NewTuple("reply",
		types.String("host"), types.String("www.x"), types.String("10.1.1.1"), types.Int(1))
	res = runQuery(t, rt, a, reply, types.HashTuple(dnsEv))
	if len(res.Trees) != 1 || !res.Trees[0].EventOf().Equal(dnsEv) {
		t.Errorf("dns query: %d trees", len(res.Trees))
	}
}

// TestMultiProgramKeys: the merged analysis still finds (packet:0,
// packet:2) — the tap join touches only the location, which is always a
// key.
func TestMultiProgramKeys(t *testing.T) {
	a := NewAdvanced()
	_ = multiRuntime(t, a)
	keys := a.Keys()
	if len(keys) != 2 || keys[0] != 0 || keys[1] != 2 {
		t.Errorf("keys = %v, want [0 2]", keys)
	}
}
