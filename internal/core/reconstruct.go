package core

import (
	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// reconstructChains rebuilds full provenance trees from a completed walk
// under the Basic and Advanced schemes: it enumerates root-to-leaf chains
// through the collected rule-execution nodes, obtains the input event of
// each derivation (scheme-specific, via eventFor), and re-derives the
// intermediate tuples bottom-up by re-executing the rules (Section 4
// step 2 / TRANSFORM_TO_D of Appendix E). Candidate chains that do not
// re-derive the queried output are discarded — the validation that gives
// Theorem 5 its set semantics under inter-class sharing.
func (b *base) reconstructChains(q *walkQuery, eventFor func(leaf RuleExec, evid types.ID) (types.Tuple, bool)) []*Tree {
	return AssembleChains(b.rt.Prog, b.rt.Funcs, q.root, q.rootProvs,
		q.acc.entryIndex(), q.acc.tupleIndex(), eventFor)
}

// AssembleChains is the transport-agnostic form of the Basic/Advanced
// reconstruction: given the anchor prov rows and the collected entries and
// tuple contents of a completed walk, it enumerates the chains, re-derives
// each one bottom-up, and keeps the derivations of root. Exported for
// transport implementations (internal/cluster).
func AssembleChains(prog *ndlog.Program, funcs ndlog.FuncMap, root types.Tuple, rootProvs []Prov,
	entries map[Ref]CollectedEntry, tuples map[types.ID]types.Tuple,
	eventFor func(leaf RuleExec, evid types.ID) (types.Tuple, bool)) []*Tree {
	var results []*Tree
	for _, p := range rootProvs {
		if p.Ref.IsNil() {
			continue
		}
		for _, chain := range enumerateChains(entries, p.Ref) {
			ev, ok := eventFor(chain[len(chain)-1].Entry, p.EvID)
			if !ok {
				continue
			}
			for _, t := range rebuildChain(prog, funcs, chain, ev, tuples) {
				if t.Output.Equal(root) {
					results = append(results, t)
				}
			}
		}
	}
	return results
}

// BasicLeafEvent returns the eventFor resolver of the Basic scheme: the
// leaf row's VIDs include the input event's VID, identified by its
// relation.
func BasicLeafEvent(prog *ndlog.Program, tuples map[types.ID]types.Tuple) func(RuleExec, types.ID) (types.Tuple, bool) {
	return func(leaf RuleExec, _ types.ID) (types.Tuple, bool) {
		rule := prog.Rule(leaf.Rule)
		if rule == nil {
			return types.Tuple{}, false
		}
		for _, vid := range leaf.VIDs {
			if t, ok := tuples[vid]; ok && t.Rel == rule.Event.Rel {
				return t, true
			}
		}
		return types.Tuple{}, false
	}
}

// EvIDLeafEvent returns the eventFor resolver of the Advanced scheme: the
// event is looked up by the EVID recorded in the prov row.
func EvIDLeafEvent(tuples map[types.ID]types.Tuple) func(RuleExec, types.ID) (types.Tuple, bool) {
	return func(_ RuleExec, evid types.ID) (types.Tuple, bool) {
		t, ok := tuples[evid]
		return t, ok
	}
}

// enumerateChains lists every root-to-leaf path through the collected
// rule-execution nodes starting at root. Under the default chained scheme
// each node has a single next reference, so there is exactly one chain;
// under the inter-class split a node may fork.
func enumerateChains(entries map[Ref]CollectedEntry, root Ref) [][]CollectedEntry {
	var chains [][]CollectedEntry
	var dfs func(ref Ref, path []CollectedEntry)
	dfs = func(ref Ref, path []CollectedEntry) {
		if len(path) > maxQueryDepth {
			return
		}
		ce, ok := entries[ref]
		if !ok {
			return
		}
		path = append(path[:len(path):len(path)], ce)
		leaf := len(ce.Nexts) == 0
		for _, nx := range ce.Nexts {
			if nx.IsNil() {
				leaf = true
			} else {
				dfs(nx, path)
			}
		}
		if leaf {
			chains = append(chains, path)
		}
	}
	dfs(root, nil)
	return chains
}

// rebuildChain re-executes the chain's rules bottom-up: starting from the
// input event at the leaf, each level joins the recorded slow-changing
// tuples and produces the next level's event, reconstructing the
// intermediate provenance nodes that were never stored.
func rebuildChain(prog *ndlog.Program, funcs ndlog.FuncMap, chain []CollectedEntry, event types.Tuple, tuples map[types.ID]types.Tuple) []*Tree {
	type frame struct {
		ev types.Tuple
		tr *Tree
	}
	level := []frame{{ev: event}}
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i].Entry
		rule := prog.Rule(e.Rule)
		if rule == nil {
			return nil
		}
		db := engine.NewDatabase()
		for _, vid := range e.VIDs {
			if t, ok := tuples[vid]; ok && t.Rel != rule.Event.Rel {
				db.Insert(t)
			}
		}
		var next []frame
		for _, f := range level {
			firings, err := engine.EvalRule(rule, db, f.ev, funcs)
			if err != nil {
				continue
			}
			for _, fr := range firings {
				t := &Tree{Rule: rule.Label, Output: fr.Head, Slow: fr.Slow}
				if f.tr == nil {
					ev := f.ev
					t.Event = &ev
				} else {
					t.Child = f.tr
				}
				next = append(next, frame{ev: fr.Head, tr: t})
			}
		}
		if len(next) == 0 {
			return nil
		}
		level = next
	}
	out := make([]*Tree, 0, len(level))
	for _, f := range level {
		out = append(out, f.tr)
	}
	return out
}
