package core

import (
	"strings"
	"testing"

	"provcompress/internal/types"
)

// TestTable1ExspanTables reproduces Table 1: the prov and ruleExec rows
// ExSPAN maintains for the provenance tree of Figure 3 after
// packet(@n1, n1, n3, "data") traverses n1 -> n2 -> n3.
func TestTable1ExspanTables(t *testing.T) {
	e := NewExSPAN()
	rt := fig2Runtime(t, e)
	ev := packet("n1", "n1", "n3", "data")
	rt.Inject(ev)
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != 1 {
		t.Fatalf("outputs = %d, want 1", rt.NumOutputs())
	}
	out := rt.Outputs()[0].Tuple
	if !out.Equal(recvTuple("n3", "n1", "n3", "data")) {
		t.Fatalf("output = %v", out)
	}

	// VIDs of the paper's table.
	vid1 := types.HashTuple(routeTuple("n1", "n3", "n2"))
	vid2 := types.HashTuple(packet("n1", "n1", "n3", "data"))
	vid3 := types.HashTuple(routeTuple("n2", "n3", "n3"))
	vid4 := types.HashTuple(packet("n2", "n1", "n3", "data"))
	vid5 := types.HashTuple(packet("n3", "n1", "n3", "data"))
	vid6 := types.HashTuple(out)

	// RIDs per the table's hash recipe: sha1(rule + loc + vids).
	rid1 := types.RuleExecID("r1", "n1", []types.ID{vid1, vid2})
	rid2 := types.RuleExecID("r1", "n2", []types.ID{vid3, vid4})
	rid3 := types.RuleExecID("r2", "n3", []types.ID{vid5})

	// ruleExec rows: one per node, matching Table 1.
	wantExec := []struct {
		loc  types.NodeAddr
		rid  types.ID
		rule string
		vids []types.ID
	}{
		{"n1", rid1, "r1", []types.ID{vid1, vid2}},
		{"n2", rid2, "r1", []types.ID{vid3, vid4}},
		{"n3", rid3, "r2", []types.ID{vid5}},
	}
	for _, w := range wantExec {
		rows := e.RuleExecRows(w.loc)
		if len(rows) != 1 {
			t.Fatalf("%s: ruleExec rows = %d, want 1", w.loc, len(rows))
		}
		got := rows[0]
		if got.RID != w.rid || got.Rule != w.rule {
			t.Errorf("%s: ruleExec = (%s, %s), want (%s, %s)", w.loc, got.RID, got.Rule, w.rid, w.rule)
		}
		if len(got.VIDs) != len(w.vids) {
			t.Fatalf("%s: vids = %v, want %v", w.loc, got.VIDs, w.vids)
		}
		for i := range w.vids {
			if got.VIDs[i] != w.vids[i] {
				t.Errorf("%s: vid[%d] = %s, want %s", w.loc, i, got.VIDs[i], w.vids[i])
			}
		}
		if !got.Next.IsNil() {
			t.Errorf("%s: ExSPAN rows have no NLoc/NRID, got %v", w.loc, got.Next)
		}
	}

	// prov rows, matching Table 1: (loc, vid) -> (rid, rloc).
	wantProv := map[types.ID]Prov{
		vid6: {Loc: "n3", VID: vid6, Ref: Ref{"n3", rid3}},
		vid5: {Loc: "n3", VID: vid5, Ref: Ref{"n2", rid2}},
		vid4: {Loc: "n2", VID: vid4, Ref: Ref{"n1", rid1}},
		vid3: {Loc: "n2", VID: vid3, Ref: NilRef},
		vid2: {Loc: "n1", VID: vid2, Ref: NilRef},
		vid1: {Loc: "n1", VID: vid1, Ref: NilRef},
	}
	var total int
	for _, loc := range []types.NodeAddr{"n1", "n2", "n3"} {
		for _, p := range e.ProvRows(loc) {
			w, ok := wantProv[p.VID]
			if !ok {
				t.Errorf("unexpected prov row %+v", p)
				continue
			}
			if p != w {
				t.Errorf("prov row = %+v, want %+v", p, w)
			}
			total++
		}
	}
	if total != len(wantProv) {
		t.Errorf("prov rows = %d, want %d", total, len(wantProv))
	}
	if e.TotalStorageBytes() <= 0 {
		t.Error("storage accounting is zero")
	}
}

// TestTable2BasicTables reproduces Table 2: the optimized tables after the
// same single-packet run. RIDs are identical to Table 1's; the prov table
// holds only the output row; NLoc/NRID link the chain; intermediate event
// VIDs are dropped except at the leaf.
func TestTable2BasicTables(t *testing.T) {
	b := NewBasic()
	rt := fig2Runtime(t, b)
	rt.Inject(packet("n1", "n1", "n3", "data"))
	rt.Run()
	checkNoErrors(t, rt)

	vid1 := types.HashTuple(routeTuple("n1", "n3", "n2"))
	vid2 := types.HashTuple(packet("n1", "n1", "n3", "data"))
	vid3 := types.HashTuple(routeTuple("n2", "n3", "n3"))
	vid4 := types.HashTuple(packet("n2", "n1", "n3", "data"))
	vid5 := types.HashTuple(packet("n3", "n1", "n3", "data"))
	vid6 := types.HashTuple(recvTuple("n3", "n1", "n3", "data"))
	rid1 := types.RuleExecID("r1", "n1", []types.ID{vid1, vid2})
	rid2 := types.RuleExecID("r1", "n2", []types.ID{vid3, vid4})
	rid3 := types.RuleExecID("r2", "n3", []types.ID{vid5})

	wantExec := []struct {
		loc  types.NodeAddr
		rid  types.ID
		rule string
		vids []types.ID
		next Ref
	}{
		{"n3", rid3, "r2", nil, Ref{"n2", rid2}},
		{"n2", rid2, "r1", []types.ID{vid3}, Ref{"n1", rid1}},
		{"n1", rid1, "r1", []types.ID{vid1, vid2}, NilRef},
	}
	for _, w := range wantExec {
		rows := b.RuleExecRows(w.loc)
		if len(rows) != 1 {
			t.Fatalf("%s: ruleExec rows = %d, want 1", w.loc, len(rows))
		}
		got := rows[0]
		if got.RID != w.rid || got.Rule != w.rule || got.Next != w.next {
			t.Errorf("%s: row = %+v, want rid=%s rule=%s next=%v", w.loc, got, w.rid, w.rule, w.next)
		}
		if len(got.VIDs) != len(w.vids) {
			t.Fatalf("%s: vids = %v, want %v", w.loc, got.VIDs, w.vids)
		}
		for i := range w.vids {
			if got.VIDs[i] != w.vids[i] {
				t.Errorf("%s: vid[%d] mismatch", w.loc, i)
			}
		}
	}

	// Only the output's prov row exists.
	if n := len(b.ProvRows("n1")) + len(b.ProvRows("n2")); n != 0 {
		t.Errorf("intermediate prov rows = %d, want 0", n)
	}
	rows := b.ProvRows("n3")
	if len(rows) != 1 {
		t.Fatalf("n3 prov rows = %d, want 1", len(rows))
	}
	if rows[0].VID != vid6 || rows[0].Ref != (Ref{"n3", rid3}) {
		t.Errorf("prov row = %+v", rows[0])
	}

	// Basic must store strictly less than ExSPAN for the same run.
	e := NewExSPAN()
	rte := fig2Runtime(t, e)
	rte.Inject(packet("n1", "n1", "n3", "data"))
	rte.Run()
	if b.TotalStorageBytes() >= e.TotalStorageBytes() {
		t.Errorf("Basic storage %d >= ExSPAN storage %d", b.TotalStorageBytes(), e.TotalStorageBytes())
	}
}

// TestTable3AdvancedTables reproduces Table 3: after packet "data" followed
// by packet "url" (same equivalence keys), only one shared chain of three
// rule-execution nodes exists, and the prov table holds two rows pointing
// at the same chain with distinct EVIDs.
func TestTable3AdvancedTables(t *testing.T) {
	a := NewAdvanced()
	rt := fig2Runtime(t, a)
	evData := packet("n1", "n1", "n3", "data")
	evURL := packet("n1", "n1", "n3", "url")
	injectSpaced(rt, evData, evURL)
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != 2 {
		t.Fatalf("outputs = %d, want 2", rt.NumOutputs())
	}

	// Exactly one rule-execution node per hop; the second packet added none.
	vid1 := types.HashTuple(routeTuple("n2", "n3", "n3")) // Table 3's vid1
	vid2 := types.HashTuple(routeTuple("n1", "n3", "n2")) // Table 3's vid2
	for _, w := range []struct {
		loc  types.NodeAddr
		rule string
		vids []types.ID
	}{
		{"n3", "r2", nil},
		{"n2", "r1", []types.ID{vid1}},
		{"n1", "r1", []types.ID{vid2}},
	} {
		rows := a.RuleExecRows(w.loc)
		if len(rows) != 1 {
			t.Fatalf("%s: ruleExec rows = %d, want 1 (shared chain)", w.loc, len(rows))
		}
		got := rows[0]
		if got.Rule != w.rule {
			t.Errorf("%s: rule = %s, want %s", w.loc, got.Rule, w.rule)
		}
		if len(got.VIDs) != len(w.vids) {
			t.Fatalf("%s: vids = %v, want %v (slow-changing only)", w.loc, got.VIDs, w.vids)
		}
		for i := range w.vids {
			if got.VIDs[i] != w.vids[i] {
				t.Errorf("%s: vid[%d] mismatch", w.loc, i)
			}
		}
	}

	// Chain links: n3 -> n2 -> n1 -> NULL.
	n3row := a.RuleExecRows("n3")[0]
	n2row := a.RuleExecRows("n2")[0]
	n1row := a.RuleExecRows("n1")[0]
	if n3row.Next != (Ref{"n2", n2row.RID}) {
		t.Errorf("n3 next = %v, want -> n2", n3row.Next)
	}
	if n2row.Next != (Ref{"n1", n1row.RID}) {
		t.Errorf("n2 next = %v, want -> n1", n2row.Next)
	}
	if !n1row.Next.IsNil() {
		t.Errorf("n1 next = %v, want NULL", n1row.Next)
	}

	// prov rows: two outputs sharing the chain head, distinct EVIDs.
	rows := a.ProvRows("n3")
	if len(rows) != 2 {
		t.Fatalf("n3 prov rows = %d, want 2", len(rows))
	}
	sharedRef := Ref{"n3", n3row.RID}
	evids := map[types.ID]bool{}
	for _, p := range rows {
		if p.Ref != sharedRef {
			t.Errorf("prov ref = %v, want shared %v", p.Ref, sharedRef)
		}
		evids[p.EvID] = true
	}
	if !evids[types.HashTuple(evData)] || !evids[types.HashTuple(evURL)] {
		t.Errorf("EVIDs = %v, want hashes of both input events", evids)
	}

	// Stage 1 state: one equivalence class seen at the origin.
	if st := a.store("n1"); len(st.htequi) != 1 {
		t.Errorf("htequi size = %d, want 1", len(st.htequi))
	}
	// Stage 3 state: the shared-chain reference installed at the output node.
	refs := a.store("n3").hmapRefs(hashKeys(a, evData), "recv")
	if len(refs) != 1 || refs[0] != sharedRef {
		t.Errorf("hmap = %v; want [%v]", refs, sharedRef)
	}
}

// TestDumpTables renders the Table 3 scenario and checks the paper-style
// layout.
func TestDumpTables(t *testing.T) {
	a := NewAdvanced()
	rt := fig2Runtime(t, a)
	injectSpaced(rt, packet("n1", "n1", "n3", "data"), packet("n1", "n1", "n3", "url"))
	rt.Run()

	dump := DumpTables(a, []types.NodeAddr{"n1", "n2", "n3"})
	for _, want := range []string{
		"ruleExec", "prov", "RLoc", "NRID", "EVID",
		"r1", "r2", "NULL",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	// Three ruleExec rows, two prov rows.
	if got := strings.Count(dump, "\nn1 ") + strings.Count(dump, "\nn2 ") + strings.Count(dump, "\nn3 "); got != 5 {
		t.Errorf("rows = %d, want 5:\n%s", got, dump)
	}
	// Deterministic.
	if dump != DumpTables(a, []types.NodeAddr{"n3", "n2", "n1"}) {
		t.Error("dump depends on node order")
	}
}

// hashKeys computes the equivalence-key hash of an event the way the
// Advanced maintainer does.
func hashKeys(a *Advanced, ev types.Tuple) types.ID {
	vals := make([]types.Value, len(a.keys))
	for i, k := range a.keys {
		vals[i] = ev.Args[k]
	}
	return types.HashValues(vals)
}

// TestTable4InterClassSharing reproduces Table 4: with the ruleExecNode /
// ruleExecLink split, the tree of packet(@n2, n2, n3, "ack") — a different
// equivalence class — shares the rule-execution nodes of the data packet's
// tree at n2 and n3, adding only link rows.
func TestTable4InterClassSharing(t *testing.T) {
	a := NewAdvancedInterClass()
	rt := fig2Runtime(t, a)
	evData := packet("n1", "n1", "n3", "data")
	evAck := packet("n2", "n2", "n3", "ack")
	injectSpaced(rt, evData, evAck)
	rt.Run()
	checkNoErrors(t, rt)

	if rt.NumOutputs() != 2 {
		t.Fatalf("outputs = %d, want 2", rt.NumOutputs())
	}

	// Shared nodes: one per location despite two classes.
	for _, loc := range []types.NodeAddr{"n1", "n2", "n3"} {
		if n := len(a.RuleExecRows(loc)); n != 1 {
			t.Errorf("%s: ruleExecNode rows = %d, want 1 (shared across classes)", loc, n)
		}
	}

	// Links at n2: the r1 node is both an interior node (-> n1) for the
	// data tree and a leaf (NULL) for the ack tree.
	n2rid := a.RuleExecRows("n2")[0].RID
	nexts := a.store("n2").nexts(n2rid)
	if len(nexts) != 2 {
		t.Fatalf("n2 links = %v, want 2 (interior + leaf)", nexts)
	}
	var sawNil, sawN1 bool
	for _, nx := range nexts {
		if nx.IsNil() {
			sawNil = true
		} else if nx.Loc == "n1" {
			sawN1 = true
		}
	}
	if !sawNil || !sawN1 {
		t.Errorf("n2 links = %v, want one NULL and one -> n1", nexts)
	}

	// Queries disambiguate via validation (Theorem 5 set semantics): the ack
	// query returns exactly the 2-rule derivation, the data query the 3-rule
	// one.
	resAck := runQuery(t, rt, a, recvTuple("n3", "n2", "n3", "ack"), types.HashTuple(evAck))
	if len(resAck.Trees) != 1 {
		t.Fatalf("ack query trees = %d, want 1\n%v", len(resAck.Trees), resAck.Trees)
	}
	if d := resAck.Trees[0].Depth(); d != 2 {
		t.Errorf("ack tree depth = %d, want 2\n%s", d, resAck.Trees[0])
	}
	if !resAck.Trees[0].EventOf().Equal(evAck) {
		t.Errorf("ack tree event = %v", resAck.Trees[0].EventOf())
	}

	resData := runQuery(t, rt, a, recvTuple("n3", "n1", "n3", "data"), types.HashTuple(evData))
	if len(resData.Trees) != 1 {
		t.Fatalf("data query trees = %d, want 1", len(resData.Trees))
	}
	if d := resData.Trees[0].Depth(); d != 3 {
		t.Errorf("data tree depth = %d, want 3\n%s", d, resData.Trees[0])
	}

	// Inter-class storage is at most the chained scheme's for this workload.
	chained := NewAdvanced()
	rtc := fig2Runtime(t, chained)
	injectSpaced(rtc, evData, evAck)
	rtc.Run()
	if a.TotalStorageBytes() >= chained.TotalStorageBytes() {
		t.Errorf("inter-class storage %d >= chained %d", a.TotalStorageBytes(), chained.TotalStorageBytes())
	}
}
