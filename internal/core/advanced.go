package core

import (
	"provcompress/internal/analysis"
	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/netsim"
	"provcompress/internal/types"
)

// MsgSig is the control broadcast sent when a slow-changing table grows
// (Section 5.5); receivers empty their equivalence-key hash tables.
const MsgSig = "prov.sig"

// SigWireSize approximates the sig control message size on the wire.
const SigWireSize = 16

// Advanced implements the equivalence-based online compression of
// Section 5: equivalence keys are identified by static analysis at attach
// time; at runtime the origin node checks each input event's key valuation
// against htequi (Stage 1), rule executions maintain the shared provenance
// chain only for the first execution of a class (Stage 2), and every output
// tuple is associated to its class's shared chain through hmap, with the
// input event recoverable through the EVID column (Stage 3).
//
// With InterClass set, the ruleExec table is split into ruleExecNode /
// ruleExecLink (Section 5.4), letting different equivalence classes share
// identical rule-execution nodes; queries may then encounter several next
// links per node and validate candidate derivations during reconstruction
// (the set semantics of Theorem 5).
//
// RID construction: the paper hashes the rule name and slow-changing VIDs
// (Table 3). We additionally fold in the child RID in the default (chained)
// mode so that (Loc, RID) keeps the uniqueness property Lemma 6 relies on
// when chains of different classes overlap; the InterClass mode uses the
// paper's location-free hash and resolves the resulting link ambiguity
// through validation, as Theorem 5 prescribes.
type Advanced struct {
	base
	// InterClass enables the Section 5.4 table split.
	InterClass bool

	keys []int // equivalence keys of the primary input event relation
	// keysByEvent holds the equivalence keys per input event relation; a
	// multi-program deployment has one entry per constituent program.
	keysByEvent map[string][]int
}

// NewAdvanced returns the equivalence-based compression maintainer.
func NewAdvanced() *Advanced {
	return &Advanced{base: newBase(true, true, false)}
}

// NewAdvancedInterClass returns the maintainer with the Section 5.4
// ruleExecNode/ruleExecLink split enabled.
func NewAdvancedInterClass() *Advanced {
	a := &Advanced{base: newBase(false, true, true)}
	a.InterClass = true
	return a
}

// advMeta is the metadata tagged along with every execution: the
// equivalence-key hash, the existFlag of Stage 1, the input event's ID, and
// the reference to the last maintained rule execution (meaningful only when
// existFlag is false).
type advMeta struct {
	Eq    types.ID
	Exist bool
	EvID  types.ID
	Prev  Ref
}

// Name identifies the scheme.
func (a *Advanced) Name() string {
	if a.InterClass {
		return "Advanced+IC"
	}
	return "Advanced"
}

// Attach runs the static analysis to obtain the equivalence keys — one key
// set per input event relation, computed on the merged rule set so that
// cross-program attribute flows count — then wires the maintainer to the
// runtime.
func (a *Advanced) Attach(rt *engine.Runtime) {
	g := analysis.BuildGraph(rt.Prog)
	a.keysByEvent = make(map[string][]int)
	for _, ev := range ndlog.InputEvents(rt.SourcePrograms()...) {
		a.keysByEvent[ev] = g.EquivalenceKeysFor(ev)
	}
	a.keys = a.keysByEvent[rt.Prog.InputEvent()]
	a.attach(rt, a)
}

// Keys returns the equivalence-key attribute indexes in use.
func (a *Advanced) Keys() []int { return append([]int(nil), a.keys...) }

// OnInject performs Stage 1 (equivalence keys checking) at the origin node.
// Events of a relation the analysis did not see fall back to treating
// every attribute as a key: no compression, but correct.
func (a *Advanced) OnInject(n *engine.Node, ev types.Tuple) engine.Meta {
	keys, ok := a.keysByEvent[ev.Rel]
	if !ok {
		keys = make([]int, ev.Arity())
		for i := range keys {
			keys[i] = i
		}
	}
	vals := make([]types.Value, len(keys))
	for i, k := range keys {
		vals[i] = ev.Args[k]
	}
	eq := types.HashValues(vals)
	exist := a.store(n.Addr).seenEquiKey(eq)
	return advMeta{Eq: eq, Exist: exist, EvID: types.HashTuple(ev), Prev: NilRef}
}

// OnFire performs Stage 2 (online provenance maintenance): nothing is
// stored when existFlag is true; otherwise the shared chain grows by one
// rule-execution node.
func (a *Advanced) OnFire(n *engine.Node, f engine.Firing, in engine.Meta) engine.Meta {
	m := in.(advMeta)
	if m.Exist {
		return m
	}
	st := a.store(n.Addr)
	svids := slowVIDs(f)
	var rid types.ID
	if a.InterClass {
		rid = types.RuleExecID(f.Rule.Label, "", svids)
		st.addRuleExec(RuleExec{Loc: n.Addr, RID: rid, Rule: f.Rule.Label, VIDs: svids})
		st.addLink(rid, m.Prev)
	} else {
		rid = types.RuleExecID(f.Rule.Label, "", append(append([]types.ID(nil), svids...), m.Prev.RID))
		st.addRuleExec(RuleExec{Loc: n.Addr, RID: rid, Rule: f.Rule.Label, VIDs: svids, Next: m.Prev})
	}
	m.Prev = Ref{Loc: n.Addr, RID: rid}
	return m
}

// OnOutput performs Stage 3 (output tuple provenance maintenance): the
// class's first execution installs the shared-chain reference in hmap and
// releases any outputs that arrived before it; later executions associate
// their output through hmap.
func (a *Advanced) OnOutput(n *engine.Node, out types.Tuple, in engine.Meta) {
	m := in.(advMeta)
	st := a.store(n.Addr)
	vid := types.HashTuple(out)
	if !m.Exist {
		waiting := st.addHmapRef(m.Eq, out.Rel, m.EvID, m.Prev)
		st.addProv(Prov{Loc: n.Addr, VID: vid, Ref: m.Prev, EvID: m.EvID})
		for _, w := range waiting {
			st.addProv(Prov{Loc: n.Addr, VID: w.vid, Ref: m.Prev, EvID: w.evid})
		}
		return
	}
	if refs := st.hmapRefs(m.Eq, out.Rel); len(refs) > 0 {
		for _, ref := range refs {
			st.addProv(Prov{Loc: n.Addr, VID: vid, Ref: ref, EvID: m.EvID})
		}
		return
	}
	// The class's first execution has not finished yet (its chain-building
	// messages are still in flight); park the association until it does.
	st.deferOutput(m.Eq, out.Rel, pendingOutput{vid: vid, evid: m.EvID})
}

// OnSlowUpdate broadcasts sig when a slow-changing table grows
// (Section 5.5). Deletions do not invalidate stored provenance.
func (a *Advanced) OnSlowUpdate(n *engine.Node, _ types.Tuple, inserted bool) {
	if inserted {
		a.rt.Net.Broadcast(n.Addr, MsgSig, SigWireSize, nil)
	}
}

// HandleMessage processes sig broadcasts, then defers to the query
// protocol.
func (a *Advanced) HandleMessage(n *engine.Node, msg netsim.Message) bool {
	if msg.Kind == MsgSig {
		a.store(n.Addr).clearEquiKeys()
		return true
	}
	return a.base.HandleMessage(n, msg)
}

// MetaSize prices the equivalence hash, the existFlag, the event ID, and —
// for the class's first execution — the chain reference.
func (a *Advanced) MetaSize(in engine.Meta) int {
	m := in.(advMeta)
	n := len(m.Eq) + 1 + len(m.EvID)
	if !m.Exist {
		n += m.Prev.WireSize()
	}
	return n
}

// --- query scheme implementation ---

// provRefsFor anchors the query, filtering by the EVID column when an
// event ID is given (Section 5.6).
func (a *Advanced) provRefsFor(st *store, vid, evid types.ID) []Prov {
	return st.provRows(vid, evid)
}

// collectEntry fetches a shared rule-execution node, the contents of its
// slow-changing tuples, and — at chain leaves — the input event tuples of
// the derivations being queried, then follows the next links.
func (a *Advanced) collectEntry(n *engine.Node, st *store, ref Ref, q *walkQuery) ([]Ref, int64) {
	entry, ok := st.getRuleExec(ref.RID)
	if !ok {
		return nil, 0
	}
	var bytes int64
	bytes += int64(entry.WireSize(!a.InterClass))
	nexts := st.nexts(ref.RID)
	if a.InterClass {
		bytes += int64(len(nexts) * (2 + len(ref.RID) + NilRef.WireSize()))
	}
	q.acc.addEntry(CollectedEntry{Entry: entry, Nexts: nexts})
	for _, vid := range entry.VIDs {
		if t, ok := n.DB.LookupVID(vid); ok {
			if q.acc.addTuple(t) {
				bytes += int64(t.EncodedSize())
			}
		}
	}
	var live []Ref
	isLeaf := false
	for _, nx := range nexts {
		if nx.IsNil() {
			isLeaf = true
		} else {
			live = append(live, nx)
		}
	}
	if isLeaf {
		// The tagged evid retrieves the event tuple materialized at the
		// chain's origin node (Section 5.6).
		for _, evid := range q.eventIDs() {
			if t, ok := n.DB.LookupVID(evid); ok {
				if q.acc.addTuple(t) {
					bytes += int64(t.EncodedSize())
				}
			}
		}
	}
	return live, bytes
}

// assemble runs TRANSFORM_TO_D: it re-derives the intermediate tuples
// bottom-up from the event tuple (found by EVID) and the shared chain
// (Appendix E), validating candidate chains against the queried output.
func (a *Advanced) assemble(q *walkQuery) []*Tree {
	return a.reconstructChains(q, EvIDLeafEvent(q.acc.tupleIndex()))
}
