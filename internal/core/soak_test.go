package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"provcompress/internal/analysis"
	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
	"provcompress/internal/workload"
)

// transitRuntime builds the full 100-node evaluation topology.
func transitRuntime(t *testing.T, maint engine.Maintainer) (*engine.Runtime, *topo.TransitStub) {
	t.Helper()
	ts := topo.GenTransitStub(topo.DefaultTransitStub())
	var sched sim.Scheduler
	net := netsim.New(&sched, ts.Graph)
	rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
	if err := rt.LoadBase(ts.Graph.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return rt, ts
}

// TestTransitStubSoakLossless runs a substantial randomized workload on
// the evaluation topology and verifies every output's provenance under
// Advanced against the reference recorder.
func TestTransitStubSoakLossless(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	ts := topo.GenTransitStub(topo.DefaultTransitStub())
	pairs := workload.ChoosePairs(ts.Stubs, 15, 3)
	var evs []types.Tuple
	for i, p := range pairs {
		for k := 0; k < 8; k++ {
			evs = append(evs, workload.PacketEvent(p, int64(i*100+k), 64))
		}
	}

	rec := NewRecorder()
	rrt, _ := transitRuntime(t, rec)
	injectSpaced(rrt, evs...)
	rrt.Run()
	checkNoErrors(t, rrt)
	if len(rec.Trees()) != len(evs) {
		t.Fatalf("reference trees = %d, want %d", len(rec.Trees()), len(evs))
	}

	a := NewAdvanced()
	rt, _ := transitRuntime(t, a)
	injectSpaced(rt, evs...)
	rt.Run()
	checkNoErrors(t, rt)

	// Compression: rule-exec rows bounded by classes * path length, far
	// below the event count * path length.
	var rows int
	for _, n := range rt.Net.Graph().Nodes() {
		rows += len(a.RuleExecRows(n))
	}
	if rows >= len(evs)*4 {
		t.Errorf("ruleExec rows = %d for %d events: compression ineffective", rows, len(evs))
	}

	for i, want := range rec.Trees() {
		res := runQuery(t, rt, a, want.Output, want.EvID())
		if len(res.Trees) != 1 || !res.Trees[0].Equal(want) {
			t.Fatalf("soak query %d (%v): %d trees", i, want.Output, len(res.Trees))
		}
	}
}

// TestTheorem1Quick drives Theorem 1 with testing/quick: arbitrary pairs
// of events on a fixed line topology — if their equivalence keys agree,
// their trees are equivalent.
func TestTheorem1Quick(t *testing.T) {
	const nodes = 6
	keys := analysis.EquivalenceKeys(apps.Forwarding())

	gen := func(vals []reflect.Value, r *rand.Rand) {
		for i := range vals {
			src := r.Intn(nodes)
			dst := r.Intn(nodes)
			for dst == src {
				dst = r.Intn(nodes)
			}
			vals[i] = reflect.ValueOf(packet(
				fmt.Sprintf("n%d", src), fmt.Sprintf("n%d", src),
				fmt.Sprintf("n%d", dst), fmt.Sprintf("p%d", r.Intn(3))))
		}
	}
	keyHash := func(ev types.Tuple) types.ID {
		vals := make([]types.Value, len(keys))
		for i, k := range keys {
			vals[i] = ev.Args[k]
		}
		return types.HashValues(vals)
	}

	prop := func(ev1, ev2 types.Tuple) bool {
		rec := NewRecorder()
		rt := lineRuntime(t, nodes, rec)
		rt.InjectAt(0, ev1)
		rt.InjectAt(time.Millisecond, ev2)
		rt.Run()
		// Find the tree of each event.
		var tr1, tr2 *Tree
		for _, tr := range rec.Trees() {
			switch {
			case tr.EventOf().Equal(ev1):
				tr1 = tr
			case tr.EventOf().Equal(ev2):
				tr2 = tr
			}
		}
		if ev1.Equal(ev2) {
			// Set semantics: a duplicate event re-derives the same tree.
			return tr1 != nil
		}
		if tr1 == nil || tr2 == nil {
			return false
		}
		same := keyHash(ev1) == keyHash(ev2)
		return tr1.Equivalent(tr2) == same
	}
	cfg := &quick.Config{MaxCount: 30, Values: gen}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
