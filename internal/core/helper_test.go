package core

import (
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// fig2Runtime builds the paper's running example: the 3-node topology of
// Figure 2 running the packet forwarding program with the routes of the
// figure loaded.
func fig2Runtime(t *testing.T, maint engine.Maintainer) *engine.Runtime {
	t.Helper()
	var sched sim.Scheduler
	net := netsim.New(&sched, topo.Fig2())
	rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
	if err := rt.LoadBase(topo.Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	return rt
}

func packet(loc, src, dst, data string) types.Tuple {
	return types.NewTuple("packet",
		types.String(loc), types.String(src), types.String(dst), types.String(data))
}

func recvTuple(loc, src, dst, data string) types.Tuple {
	return types.NewTuple("recv",
		types.String(loc), types.String(src), types.String(dst), types.String(data))
}

func routeTuple(loc, dst, next string) types.Tuple {
	return types.NewTuple("route",
		types.String(loc), types.String(dst), types.String(next))
}

// runQuery drives a provenance query to completion in virtual time and
// returns the result.
func runQuery(t *testing.T, rt *engine.Runtime, q interface {
	QueryProvenance(types.Tuple, types.ID, func(QueryResult))
}, out types.Tuple, evid types.ID) QueryResult {
	t.Helper()
	var res QueryResult
	done := false
	q.QueryProvenance(out, evid, func(r QueryResult) { res = r; done = true })
	rt.Run()
	if !done {
		t.Fatal("query did not complete")
	}
	return res
}

// mustDELPSrc parses and validates a DELP from source.
func mustDELPSrc(t *testing.T, src string) *ndlog.Program {
	t.Helper()
	p, err := ndlog.ParseDELP(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkNoErrors fails the test if the runtime collected evaluation errors.
func checkNoErrors(t *testing.T, rt *engine.Runtime) {
	t.Helper()
	for _, err := range rt.Errors() {
		t.Errorf("runtime error: %v", err)
	}
}

// injectSpaced injects events one millisecond apart starting at t=0.
func injectSpaced(rt *engine.Runtime, evs ...types.Tuple) {
	for i, ev := range evs {
		rt.InjectAt(time.Duration(i)*time.Millisecond, ev)
	}
}
