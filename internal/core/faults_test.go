package core

import (
	"fmt"
	"testing"

	"provcompress/internal/types"
)

// TestLossyNetworkDegradesGracefully injects message loss under every
// scheme: executions whose messages are lost simply produce no output, the
// runtime stays consistent (no errors, no panics), and queries for the
// outputs that did complete still reconstruct correct trees or — when the
// load-bearing chain message was lost — return empty rather than wrong.
func TestLossyNetworkDegradesGracefully(t *testing.T) {
	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced()} {
		t.Run(m.Name(), func(t *testing.T) {
			rt := lineRuntime(t, 6, m)
			rt.Net.SetLossRate(0.2, 42)
			var evs []types.Tuple
			for i := 0; i < 40; i++ {
				evs = append(evs, packet("n0", "n0", "n5", fmt.Sprintf("p%d", i)))
			}
			injectSpaced(rt, evs...)
			rt.Run()
			checkNoErrors(t, rt)

			delivered := rt.NumOutputs()
			if delivered == 0 {
				t.Fatal("no packet survived 20% loss (loss model broken)")
			}
			if delivered == int64(len(evs)) {
				t.Fatal("no packet lost at 20% loss (loss model inert)")
			}
			if rt.Net.Dropped() == 0 {
				t.Fatal("drop counter not incremented")
			}

			// Heal the network for querying (a lossy network also loses
			// query messages — tested separately below).
			rt.Net.SetLossRate(0, 1)

			// Query every delivered output: each returns either its correct
			// tree or nothing (when the chain itself was severed), never a
			// wrong tree.
			var answered int
			for _, o := range rt.Outputs() {
				res := runQuery(t, rt, m, o.Tuple, types.ZeroID)
				for _, tr := range res.Trees {
					if !tr.Output.Equal(o.Tuple) {
						t.Fatalf("%s: wrong tree for %v:\n%s", m.Name(), o.Tuple, tr)
					}
					payload := tr.EventOf().Args[3].AsString()
					if payload != o.Tuple.Args[3].AsString() {
						t.Fatalf("%s: tree of %v claims event %s", m.Name(), o.Tuple, payload)
					}
				}
				if len(res.Trees) > 0 {
					answered++
				}
			}
			t.Logf("%s: %d/%d packets delivered, %d queries answered",
				m.Name(), delivered, len(evs), answered)
			if answered == 0 {
				t.Errorf("%s: no query answerable despite %d deliveries", m.Name(), delivered)
			}
		})
	}
}

// TestLossyAdvancedPendingBounded: when the class's first execution is
// lost mid-chain, later outputs park in the pending table; they stay
// parked (correctly unanswerable) until a fresh chain completes, at which
// point they attach to it.
func TestLossyAdvancedPendingBounded(t *testing.T) {
	a := NewAdvanced()
	rt := lineRuntime(t, 4, a)
	// Drop everything: the first packet's chain never completes.
	rt.Net.SetLossRate(1.0, 1)
	rt.Inject(packet("n0", "n0", "n3", "lost"))
	rt.Run()
	if rt.NumOutputs() != 0 {
		t.Fatalf("outputs = %d under total loss", rt.NumOutputs())
	}

	// Heal the network; the next packet of the class still has
	// existFlag=true (htequi was set by the lost packet) but no hmap entry
	// exists — it parks, then a sig reset re-maintains the class.
	rt.Net.SetLossRate(0, 1)
	rt.Inject(packet("n0", "n0", "n3", "parked"))
	rt.Run()
	checkNoErrors(t, rt)
	if rt.NumOutputs() != 1 {
		t.Fatalf("outputs = %d", rt.NumOutputs())
	}
	res := runQuery(t, rt, a, recvTuple("n3", "n0", "n3", "parked"), types.ZeroID)
	if len(res.Trees) != 0 {
		t.Fatalf("parked output answered without a chain: %v", res.Trees)
	}

	// The administrator's recovery lever is the Section 5.5 reset: insert
	// a slow tuple, which broadcasts sig and clears htequi everywhere.
	rt.InsertSlow(routeTuple("n0", "recover", "n1"))
	rt.Run()
	rt.Inject(packet("n0", "n0", "n3", "fresh"))
	rt.Run()
	checkNoErrors(t, rt)

	// The fresh packet rebuilt the shared chain and released the parked
	// association.
	for _, payload := range []string{"parked", "fresh"} {
		res := runQuery(t, rt, a, recvTuple("n3", "n0", "n3", payload), types.ZeroID)
		if len(res.Trees) != 1 {
			t.Errorf("%s: trees = %d after recovery", payload, len(res.Trees))
			continue
		}
		if got := res.Trees[0].EventOf().Args[3].AsString(); got != payload {
			t.Errorf("%s: tree claims event %s", payload, got)
		}
	}
}
