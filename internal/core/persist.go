package core

import (
	"fmt"

	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// Persistence codec for the per-node provenance state machines: the
// durability layer (internal/cluster + internal/store) checkpoints a
// NodeState into a snapshot and restores it on crash recovery. All three
// schemes share one store layout, so one codec covers them; the byte
// accounting is carried verbatim rather than recomputed, which keeps
// StorageBytes — the paper's headline metric — bit-identical across a
// crash.

// statePersistVersion tags the NodeState snapshot layout.
const statePersistVersion = 1

// maxPersistItems bounds decoded collection sizes; anything larger is a
// corrupt snapshot, not a plausible node state.
const maxPersistItems = 1 << 26

// Persist serializes the state machine into the encoder.
func (s *AdvancedState) Persist(e *wire.Encoder) { s.st.persist(e) }

// Restore rebuilds the state machine from an encoded snapshot.
func (s *AdvancedState) Restore(d *wire.Decoder) error { return s.st.restore(d) }

// Merge folds a snapshot into the existing state without resetting it.
func (s *AdvancedState) Merge(d *wire.Decoder) error { return s.st.merge(d) }

// Persist serializes the state machine into the encoder.
func (s *BasicState) Persist(e *wire.Encoder) { s.st.persist(e) }

// Restore rebuilds the state machine from an encoded snapshot.
func (s *BasicState) Restore(d *wire.Decoder) error { return s.st.restore(d) }

// Merge folds a snapshot into the existing state without resetting it.
func (s *BasicState) Merge(d *wire.Decoder) error { return s.st.merge(d) }

// Persist serializes the state machine into the encoder.
func (s *ExSPANState) Persist(e *wire.Encoder) { s.st.persist(e) }

// Restore rebuilds the state machine from an encoded snapshot.
func (s *ExSPANState) Restore(d *wire.Decoder) error { return s.st.restore(d) }

// Merge folds a snapshot into the existing state without resetting it.
func (s *ExSPANState) Merge(d *wire.Decoder) error { return s.st.merge(d) }

func encodePersistRef(e *wire.Encoder, r Ref) {
	e.Str(string(r.Loc))
	e.ID(r.RID)
}

func decodePersistRef(d *wire.Decoder) Ref {
	loc := d.Str()
	rid := d.ID()
	return Ref{Loc: types.NodeAddr(loc), RID: rid}
}

// persist writes every table of the store plus its running byte
// accounting. Iteration order is whatever the maps yield — restore is
// order-insensitive, and the measurement serialization (serialize.go)
// remains the deterministic form.
func (s *store) persist(e *wire.Encoder) {
	e.U8(statePersistVersion)

	e.U32(uint32(len(s.ruleExec)))
	for _, row := range s.ruleExec {
		e.Str(string(row.Loc))
		e.ID(row.RID)
		e.Str(row.Rule)
		e.U32(uint32(len(row.VIDs)))
		for _, v := range row.VIDs {
			e.ID(v)
		}
		encodePersistRef(e, row.Next)
	}

	e.U32(uint32(len(s.links)))
	for rid, refs := range s.links {
		e.ID(rid)
		e.U32(uint32(len(refs)))
		for _, r := range refs {
			encodePersistRef(e, r)
		}
	}

	nProv := 0
	for _, rows := range s.prov {
		nProv += len(rows)
	}
	e.U32(uint32(nProv))
	for _, rows := range s.prov {
		for _, p := range rows {
			e.Str(string(p.Loc))
			e.ID(p.VID)
			encodePersistRef(e, p.Ref)
			e.ID(p.EvID)
		}
	}

	e.U32(uint32(len(s.htequi)))
	for h, seen := range s.htequi {
		e.ID(h)
		e.Bool(seen)
	}

	e.U32(uint32(len(s.hmap)))
	for k, entry := range s.hmap {
		e.ID(k.eq)
		e.Str(k.rel)
		e.ID(entry.evid)
		e.U32(uint32(len(entry.refs)))
		for _, r := range entry.refs {
			encodePersistRef(e, r)
		}
	}

	nPend := 0
	for _, ps := range s.pending {
		nPend += len(ps)
	}
	e.U32(uint32(nPend))
	for k, ps := range s.pending {
		for _, p := range ps {
			e.ID(k.eq)
			e.Str(k.rel)
			e.ID(p.vid)
			e.ID(p.evid)
		}
	}

	e.U64(uint64(s.ruleExecBytes))
	e.U64(uint64(s.provBytes))
	e.U64(uint64(s.htequiBytes))
	e.U64(uint64(s.hmapBytes))
}

// restore resets the store and rebuilds it from an encoded snapshot. The
// scheme flags (withNext/withEvID/useLinks) stay as constructed — they
// derive from the scheme name, not from persisted state.
func (s *store) restore(d *wire.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != statePersistVersion {
		return fmt.Errorf("core: unsupported state snapshot version %d", v)
	}
	s.ruleExec = make(map[types.ID]*RuleExec)
	s.links = nil
	s.prov = make(map[types.ID][]Prov)
	s.htequi = nil
	s.hmap = nil
	s.pending = nil

	n := d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d ruleExec rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var row RuleExec
		row.Loc = types.NodeAddr(d.Str())
		row.RID = d.ID()
		row.Rule = d.Str()
		vn := d.U32()
		if vn > maxPersistItems {
			return fmt.Errorf("core: ruleExec row with %d vids", vn)
		}
		// Non-nil even when empty: rows are built that way (slowVIDs), so a
		// restored row is indistinguishable from the original. Capacity is
		// clamped so a corrupt in-bounds count cannot force a huge allocation.
		row.VIDs = make([]types.ID, 0, min(vn, 64))
		for j := uint32(0); j < vn && d.Err() == nil; j++ {
			row.VIDs = append(row.VIDs, d.ID())
		}
		row.Next = decodePersistRef(d)
		s.ruleExec[row.RID] = &row
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d link rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		rid := d.ID()
		rn := d.U32()
		if rn > maxPersistItems {
			return fmt.Errorf("core: link row with %d refs", rn)
		}
		refs := make([]Ref, 0, rn)
		for j := uint32(0); j < rn && d.Err() == nil; j++ {
			refs = append(refs, decodePersistRef(d))
		}
		if s.links == nil {
			s.links = make(map[types.ID][]Ref)
		}
		s.links[rid] = refs
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d prov rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var p Prov
		p.Loc = types.NodeAddr(d.Str())
		p.VID = d.ID()
		p.Ref = decodePersistRef(d)
		p.EvID = d.ID()
		s.prov[p.VID] = append(s.prov[p.VID], p)
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d htequi entries", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		h := d.ID()
		seen := d.Bool()
		if s.htequi == nil {
			s.htequi = make(map[types.ID]bool)
		}
		s.htequi[h] = seen
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d hmap entries", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		eq := d.ID()
		rel := d.Str()
		entry := &hmapEntry{evid: d.ID()}
		rn := d.U32()
		if rn > maxPersistItems {
			return fmt.Errorf("core: hmap entry with %d refs", rn)
		}
		for j := uint32(0); j < rn && d.Err() == nil; j++ {
			entry.refs = append(entry.refs, decodePersistRef(d))
		}
		if s.hmap == nil {
			s.hmap = make(map[hmapKey]*hmapEntry)
		}
		s.hmap[hmapKey{eq: eq, rel: rel}] = entry
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d pending outputs", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		eq := d.ID()
		rel := d.Str()
		var p pendingOutput
		p.vid = d.ID()
		p.evid = d.ID()
		if s.pending == nil {
			s.pending = make(map[hmapKey][]pendingOutput)
		}
		k := hmapKey{eq: eq, rel: rel}
		s.pending[k] = append(s.pending[k], p)
	}

	s.ruleExecBytes = int64(d.U64())
	s.provBytes = int64(d.U64())
	s.htequiBytes = int64(d.U64())
	s.hmapBytes = int64(d.U64())

	if err := d.Err(); err != nil {
		return fmt.Errorf("core: corrupt state snapshot: %w", err)
	}
	return nil
}

// merge folds a Persist snapshot into the live store without resetting
// it. Every row goes through the normal dup-checked insertion paths
// (addRuleExec/addLink/addProv/seenEquiKey), so rows already present —
// e.g. delivered by replication while the snapshot was in flight — are
// kept once and the running byte accounting stays exact. The snapshot's
// own byte trailer is decoded and discarded: it describes the donor's
// totals, not this store's.
//
// hmap entries and pending outputs install only for keys this store has
// never seen. For a key both sides hold, the live entry may reflect a
// newer sig epoch than the snapshot (taken before a reset); folding the
// snapshot's references in via addHmapRef would clobber the newer epoch,
// so the live side wins. The cost is bounded staleness on a replica's
// advanced-scheme chains until the next firing refreshes the entry —
// never wrong answers, because queries resolve through prov/ruleExec
// rows, which do merge.
func (s *store) merge(d *wire.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != statePersistVersion {
		return fmt.Errorf("core: unsupported state snapshot version %d", v)
	}

	n := d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d ruleExec rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var row RuleExec
		row.Loc = types.NodeAddr(d.Str())
		row.RID = d.ID()
		row.Rule = d.Str()
		vn := d.U32()
		if vn > maxPersistItems {
			return fmt.Errorf("core: ruleExec row with %d vids", vn)
		}
		row.VIDs = make([]types.ID, 0, min(vn, 64))
		for j := uint32(0); j < vn && d.Err() == nil; j++ {
			row.VIDs = append(row.VIDs, d.ID())
		}
		row.Next = decodePersistRef(d)
		if d.Err() == nil {
			s.addRuleExec(row)
		}
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d link rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		rid := d.ID()
		rn := d.U32()
		if rn > maxPersistItems {
			return fmt.Errorf("core: link row with %d refs", rn)
		}
		for j := uint32(0); j < rn && d.Err() == nil; j++ {
			ref := decodePersistRef(d)
			if d.Err() == nil {
				s.addLink(rid, ref)
			}
		}
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d prov rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var p Prov
		p.Loc = types.NodeAddr(d.Str())
		p.VID = d.ID()
		p.Ref = decodePersistRef(d)
		p.EvID = d.ID()
		if d.Err() == nil {
			s.addProv(p)
		}
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d htequi entries", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		h := d.ID()
		seen := d.Bool()
		if d.Err() == nil && seen {
			s.seenEquiKey(h)
		}
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d hmap entries", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		eq := d.ID()
		rel := d.Str()
		evid := d.ID()
		rn := d.U32()
		if rn > maxPersistItems {
			return fmt.Errorf("core: hmap entry with %d refs", rn)
		}
		k := hmapKey{eq: eq, rel: rel}
		_, have := s.hmap[k]
		for j := uint32(0); j < rn && d.Err() == nil; j++ {
			ref := decodePersistRef(d)
			if d.Err() == nil && !have {
				s.addHmapRef(eq, rel, evid, ref)
			}
		}
		if rn == 0 && !have && d.Err() == nil {
			// Entry with an epoch but no refs yet: preserve the epoch marker.
			if s.hmap == nil {
				s.hmap = make(map[hmapKey]*hmapEntry)
			}
			s.hmap[k] = &hmapEntry{evid: evid}
			s.hmapBytes += int64(len(eq) + len(rel) + len(evid))
		}
	}

	n = d.U32()
	if n > maxPersistItems {
		return fmt.Errorf("core: state snapshot with %d pending outputs", n)
	}
	livePending := make(map[hmapKey]bool, len(s.pending))
	for k := range s.pending {
		livePending[k] = true
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		eq := d.ID()
		rel := d.Str()
		var p pendingOutput
		p.vid = d.ID()
		p.evid = d.ID()
		k := hmapKey{eq: eq, rel: rel}
		if d.Err() == nil && !livePending[k] {
			s.deferOutput(eq, rel, p)
		}
	}

	// The donor's byte-accounting trailer: read for framing, discard for
	// content — this store's counters were maintained by the add* calls.
	_ = d.U64()
	_ = d.U64()
	_ = d.U64()
	_ = d.U64()

	if err := d.Err(); err != nil {
		return fmt.Errorf("core: corrupt state snapshot: %w", err)
	}
	return nil
}
