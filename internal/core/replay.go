package core

import (
	"fmt"

	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// ReplayTrees implements the reactive maintenance strategy of Section 3.2
// (after DTaP): instead of materializing provenance for every relation,
// keep only the non-deterministic inputs — the slow-changing tables and
// the input events — and re-execute the program deterministically to
// reconstruct the provenance trees of any tuple on demand, including the
// "tuples of less interest" whose provenance the online schemes do not
// maintain concretely.
//
// slow is a snapshot of every node's slow-changing tuples (their location
// specifiers keep the joins node-faithful: a rule firing "at" a node only
// ever joins tuples whose location attribute matches). The replay returns
// the provenance trees of every tuple the event derives, keyed by the
// derived tuple's VID. maxSteps bounds runaway recursion in
// non-terminating programs.
func ReplayTrees(prog *ndlog.Program, funcs ndlog.FuncMap, slow []types.Tuple, ev types.Tuple, maxSteps int) (map[types.ID][]*Tree, error) {
	db := engine.NewDatabase()
	for _, t := range slow {
		db.Insert(t)
	}
	trees := make(map[types.ID][]*Tree)
	record := func(t *Tree) {
		vid := types.HashTuple(t.Output)
		for _, prev := range trees[vid] {
			if prev.Equal(t) {
				return
			}
		}
		trees[vid] = append(trees[vid], t)
	}

	type item struct {
		tuple types.Tuple
		sub   *Tree // derivation of tuple; nil for the input event
	}
	queue := []item{{tuple: ev}}
	steps := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, r := range prog.RulesForEvent(cur.tuple.Rel) {
			firings, err := engine.EvalRule(r, db, cur.tuple, funcs)
			if err != nil {
				return nil, fmt.Errorf("core: replay: %w", err)
			}
			for _, f := range firings {
				steps++
				if steps > maxSteps {
					return nil, fmt.Errorf("core: replay exceeded %d steps (non-terminating program?)", maxSteps)
				}
				node := &Tree{Rule: r.Label, Output: f.Head, Slow: f.Slow}
				if cur.sub == nil {
					e := cur.tuple
					node.Event = &e
				} else {
					node.Child = cur.sub
				}
				record(node)
				queue = append(queue, item{tuple: f.Head, sub: node})
			}
		}
	}
	return trees, nil
}

// ReplayTreesFor reconstructs the provenance trees of one specific tuple
// derived (directly or transitively) from the input event.
func ReplayTreesFor(prog *ndlog.Program, funcs ndlog.FuncMap, slow []types.Tuple, ev types.Tuple, target types.Tuple, maxSteps int) ([]*Tree, error) {
	all, err := ReplayTrees(prog, funcs, slow, ev, maxSteps)
	if err != nil {
		return nil, err
	}
	return all[types.HashTuple(target)], nil
}
