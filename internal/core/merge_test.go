package core

import (
	"testing"

	"provcompress/internal/wire"
)

// TestStateMergeIntoFresh: merging a snapshot into a never-used state is
// equivalent to restoring it — same tables, same byte accounting.
func TestStateMergeIntoFresh(t *testing.T) {
	for _, scheme := range clusterSchemes {
		t.Run(scheme, func(t *testing.T) {
			src := populatedNodeState(t, scheme)
			dst := freshNodeState(t, scheme)
			if err := dst.Merge(wire.NewDecoder(persistBytes(src))); err != nil {
				t.Fatal(err)
			}
			assertStoresEqual(t, stateStore(t, src), stateStore(t, dst))
		})
	}
}

// TestStateMergeIdempotent: merging the same snapshot twice changes
// nothing the second time — replication may deliver a handoff or repair
// payload more than once.
func TestStateMergeIdempotent(t *testing.T) {
	for _, scheme := range clusterSchemes {
		t.Run(scheme, func(t *testing.T) {
			src := populatedNodeState(t, scheme)
			buf := persistBytes(src)
			dst := freshNodeState(t, scheme)
			if err := dst.Merge(wire.NewDecoder(buf)); err != nil {
				t.Fatal(err)
			}
			before := dst.StorageBytes()
			if err := dst.Merge(wire.NewDecoder(buf)); err != nil {
				t.Fatal(err)
			}
			if got := dst.StorageBytes(); got != before {
				t.Fatalf("second merge changed accounting: %d -> %d", before, got)
			}
			assertStoresEqual(t, stateStore(t, src), stateStore(t, dst))
		})
	}
}

// TestStateMergeUnion: a state that already holds a subset of the
// snapshot's rows (e.g. delivered by replication while the handoff was in
// flight) merges to exactly the superset state, including byte
// accounting — the reorder-tolerance the handoff install depends on.
func TestStateMergeUnion(t *testing.T) {
	// Two packets in different equivalence classes so the subset state's
	// advanced-scheme hmap entries match the superset's for the shared
	// class.
	a := packet("n1", "n1", "n3", "data")
	b := packet("n2", "n2", "n3", "ack")
	for _, scheme := range clusterSchemes {
		t.Run(scheme, func(t *testing.T) {
			full := freshNodeState(t, scheme)
			driveForwarding(t, full, a, b)

			partial := freshNodeState(t, scheme)
			driveForwarding(t, partial, a) // subset arrives first
			if err := partial.Merge(wire.NewDecoder(persistBytes(full))); err != nil {
				t.Fatal(err)
			}
			assertStoresEqual(t, stateStore(t, full), stateStore(t, partial))
		})
	}
}

// TestStateMergeTruncatedErrors: every strict prefix of a snapshot fails
// cleanly when merged, and a bumped version byte is rejected.
func TestStateMergeTruncatedErrors(t *testing.T) {
	scheme := "advanced"
	buf := persistBytes(populatedNodeState(t, scheme))
	for cut := 0; cut < len(buf); cut++ {
		if err := freshNodeState(t, scheme).Merge(wire.NewDecoder(buf[:cut])); err == nil {
			t.Fatalf("truncated snapshot of %d/%d bytes merged without error", cut, len(buf))
		}
	}
	bad := append([]byte(nil), buf...)
	bad[0] = statePersistVersion + 1
	if err := freshNodeState(t, scheme).Merge(wire.NewDecoder(bad)); err == nil {
		t.Fatal("unknown snapshot version accepted by merge")
	}
}

// TestStoreMergeKeepsNewerEpoch: when both sides hold an hmap entry for
// the same class, the live (receiver) entry wins — a snapshot taken
// before a sig reset must not clobber the newer epoch's references.
func TestStoreMergeKeepsNewerEpoch(t *testing.T) {
	donor := newStore(false, true, false)
	donor.addHmapRef(id("class"), "recv", id("old-epoch"), Ref{Loc: "n1", RID: id("stale")})
	e := wire.NewEncoder(256)
	donor.persist(e)

	live := newStore(false, true, false)
	live.addHmapRef(id("class"), "recv", id("new-epoch"), Ref{Loc: "n2", RID: id("fresh")})
	if err := live.merge(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	entry := live.hmap[hmapKey{eq: id("class"), rel: "recv"}]
	if entry == nil || entry.evid != id("new-epoch") {
		t.Fatalf("live epoch clobbered by merge: %+v", entry)
	}
	if len(entry.refs) != 1 || entry.refs[0] != (Ref{Loc: "n2", RID: id("fresh")}) {
		t.Fatalf("live refs clobbered by merge: %v", entry.refs)
	}
}
