package core

import (
	"fmt"
	"strings"

	"provcompress/internal/engine"
	"provcompress/internal/types"
)

// Maintainer is the full surface of a provenance maintenance scheme: the
// engine hooks plus distributed querying and per-node storage accounting.
type Maintainer interface {
	engine.Maintainer
	// QueryProvenance starts a distributed provenance query for an output
	// tuple; cb is invoked in virtual time with the result.
	QueryProvenance(out types.Tuple, evid types.ID, cb func(QueryResult))
}

// Scheme names accepted by NewScheme.
const (
	SchemeExSPAN             = "ExSPAN"
	SchemeBasic              = "Basic"
	SchemeAdvanced           = "Advanced"
	SchemeAdvancedInterClass = "Advanced+IC"
)

// SchemeNames lists the maintenance schemes the evaluation compares, in
// presentation order.
func SchemeNames() []string {
	return []string{SchemeExSPAN, SchemeBasic, SchemeAdvanced}
}

// AllSchemeNames additionally includes the Section 5.4 inter-class variant.
func AllSchemeNames() []string {
	return []string{SchemeExSPAN, SchemeBasic, SchemeAdvanced, SchemeAdvancedInterClass}
}

// NewScheme constructs a maintenance scheme by name (case-insensitive;
// "advanced-ic" and "advanced+ic" both select the inter-class variant).
func NewScheme(name string) (Maintainer, error) {
	switch strings.ToLower(name) {
	case "exspan":
		return NewExSPAN(), nil
	case "basic":
		return NewBasic(), nil
	case "advanced":
		return NewAdvanced(), nil
	case "advanced+ic", "advanced-ic", "advancedic", "interclass":
		return NewAdvancedInterClass(), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %q (want exspan, basic, advanced, or advanced-ic)", name)
	}
}
