package core

import (
	"fmt"
	"strings"
)

// DOT renders the provenance tree in Graphviz format, in the paper's
// Figure 3 style: square (box) nodes for tuples, oval nodes for rule
// executions, edges from each rule execution up to the tuple it derives
// and down to the tuples that triggered it.
func (t *Tree) DOT() string {
	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [fontsize=10];\n")
	id := 0
	fresh := func() string {
		id++
		return fmt.Sprintf("n%d", id)
	}
	tupleNode := func(label string) string {
		n := fresh()
		fmt.Fprintf(&b, "  %s [shape=box, label=%q];\n", n, label)
		return n
	}
	ruleNode := func(label string) string {
		n := fresh()
		fmt.Fprintf(&b, "  %s [shape=ellipse, label=%q];\n", n, label)
		return n
	}

	var emit func(tr *Tree) string // returns the output tuple's node id
	emit = func(tr *Tree) string {
		out := tupleNode(tr.Output.String())
		rule := ruleNode(tr.Rule)
		fmt.Fprintf(&b, "  %s -> %s;\n", rule, out)
		if tr.Child != nil {
			child := emit(tr.Child)
			fmt.Fprintf(&b, "  %s -> %s;\n", child, rule)
		} else {
			ev := tupleNode(tr.Event.String())
			fmt.Fprintf(&b, "  %s -> %s;\n", ev, rule)
		}
		for _, s := range tr.Slow {
			sn := tupleNode(s.String())
			fmt.Fprintf(&b, "  %s -> %s;\n", sn, rule)
		}
		return out
	}
	emit(t)
	b.WriteString("}\n")
	return b.String()
}
