package core

import (
	"testing"

	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// projSrc projects away the event attribute Y, so different events can
// derive the same output tuple — exercising multi-derivation handling.
const projSrc = `
r1 mid(@R, X)  :- ev(@L, X, Y), hop(@L, Y, R).
r2 out(@R, X)  :- mid(@R, X), sink(@R, X).
`

func projRuntime(t *testing.T, maint engine.Maintainer) *engine.Runtime {
	t.Helper()
	prog, err := ndlog.ParseDELP(projSrc)
	if err != nil {
		t.Fatal(err)
	}
	var sched sim.Scheduler
	g := topo.Line(2, "n")
	net := netsim.New(&sched, g)
	rt := engine.NewRuntime(net, prog, nil, maint)
	base := []types.Tuple{
		types.NewTuple("hop", types.String("n0"), types.Int(1), types.String("n1")),
		types.NewTuple("hop", types.String("n0"), types.Int(2), types.String("n1")),
		types.NewTuple("sink", types.String("n1"), types.Int(7)),
	}
	if err := rt.LoadBase(base); err != nil {
		t.Fatal(err)
	}
	return rt
}

func projEvent(y int64) types.Tuple {
	return types.NewTuple("ev", types.String("n0"), types.Int(7), types.Int(y))
}

// TestMultipleDerivationsSameOutput injects two events that differ only in
// the projected-away attribute: both derive out(@n1, 7) through different
// slow tuples, so the output has two stored derivations. Every scheme must
// return both trees for an unfiltered query and exactly one for an
// evid-filtered query.
func TestMultipleDerivationsSameOutput(t *testing.T) {
	ev1, ev2 := projEvent(1), projEvent(2)

	rec := NewRecorder()
	rrec := projRuntime(t, rec)
	injectSpaced(rrec, ev1, ev2)
	rrec.Run()
	checkNoErrors(t, rrec)
	out := types.NewTuple("out", types.String("n1"), types.Int(7))
	if got := rec.TreesFor(types.HashTuple(out), types.ZeroID); len(got) != 2 {
		t.Fatalf("reference trees = %d, want 2", len(got))
	}

	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced(), NewAdvancedInterClass()} {
		t.Run(m.Name(), func(t *testing.T) {
			rt := projRuntime(t, m)
			injectSpaced(rt, ev1, ev2)
			rt.Run()
			checkNoErrors(t, rt)
			if rt.NumOutputs() != 2 {
				t.Fatalf("outputs = %d, want 2 (out derived twice)", rt.NumOutputs())
			}

			// Unfiltered query: both derivations.
			res := runQuery(t, rt, m, out, types.ZeroID)
			if len(res.Trees) != 2 {
				t.Fatalf("%s: unfiltered trees = %d, want 2", m.Name(), len(res.Trees))
			}
			for _, want := range rec.TreesFor(types.HashTuple(out), types.ZeroID) {
				found := false
				for _, g := range res.Trees {
					if g.Equal(want) {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: derivation missing:\n%s", m.Name(), want)
				}
			}

			// Filtered by each event: exactly that derivation.
			for _, ev := range []types.Tuple{ev1, ev2} {
				res := runQuery(t, rt, m, out, types.HashTuple(ev))
				if len(res.Trees) != 1 {
					t.Fatalf("%s: filtered trees = %d, want 1", m.Name(), len(res.Trees))
				}
				if !res.Trees[0].EventOf().Equal(ev) {
					t.Errorf("%s: wrong event %v", m.Name(), res.Trees[0].EventOf())
				}
			}
		})
	}
}

// TestProjectionKeysIncludeY pins why the two events above form different
// equivalence classes: Y joins the hop table, so it is a key.
func TestProjectionKeysIncludeY(t *testing.T) {
	a := NewAdvanced()
	rt := projRuntime(t, a)
	_ = rt
	keys := a.Keys()
	if len(keys) != 3 {
		t.Errorf("keys = %v, want [0 1 2] (X joins sink downstream, Y joins hop)", keys)
	}
}
