package core

import (
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// fig7Runtime builds the updated topology of Figure 7 (n4 added between n1
// and n3) with the original Figure 2 routes loaded.
func fig7Runtime(t *testing.T, maint engine.Maintainer) *engine.Runtime {
	t.Helper()
	var sched sim.Scheduler
	net := netsim.New(&sched, topo.Fig7())
	rt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
	if err := rt.LoadBase(topo.Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadBase([]types.Tuple{routeTuple("n4", "n3", "n3")}); err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestSlowUpdateScenario reproduces Section 5.5's Figure 7 walkthrough:
// after rerouting n1's traffic through n4, the sig broadcast resets the
// equivalence-key tables, so the next packet of the (n1, n3) class
// re-maintains provenance along the new path — and its queried tree shows
// the n1 -> n4 -> n3 traversal.
func TestSlowUpdateScenario(t *testing.T) {
	a := NewAdvanced()
	rt := fig7Runtime(t, a)

	evOld := packet("n1", "n1", "n3", "before")
	rt.InjectAt(0, evOld)
	rt.Run()
	checkNoErrors(t, rt)

	if len(a.store("n1").htequi) != 1 {
		t.Fatalf("htequi at n1 = %d, want 1", len(a.store("n1").htequi))
	}

	// The administrator redirects traffic: delete route(@n1,n3,n2), insert
	// route(@n1,n3,n4). The insertion broadcasts sig.
	rt.DeleteSlow(routeTuple("n1", "n3", "n2"))
	rt.InsertSlow(routeTuple("n1", "n3", "n4"))
	rt.Run() // deliver the broadcast

	for _, addr := range []types.NodeAddr{"n1", "n2", "n3", "n4"} {
		if n := len(a.store(addr).htequi); n != 0 {
			t.Errorf("%s: htequi = %d after sig, want 0", addr, n)
		}
	}

	// A new packet of the same class: existFlag is false again, so the new
	// path's provenance is concretely maintained.
	evNew := packet("n1", "n1", "n3", "after")
	rt.Inject(evNew)
	rt.Run()
	checkNoErrors(t, rt)

	// n4 now holds a rule-execution node.
	if n := len(a.RuleExecRows("n4")); n != 1 {
		t.Fatalf("n4 ruleExec rows = %d, want 1", n)
	}

	res := runQuery(t, rt, a, recvTuple("n3", "n1", "n3", "after"), types.HashTuple(evNew))
	if len(res.Trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(res.Trees))
	}
	tr := res.Trees[0]
	// The tree shows the n1 -> n4 -> n3 traversal: the intermediate packet
	// materialized at n4.
	if !tr.Child.Output.Equal(packet("n3", "n1", "n3", "after")) {
		t.Errorf("level 2 output = %v", tr.Child.Output)
	}
	if !tr.Child.Child.Output.Equal(packet("n4", "n1", "n3", "after")) {
		t.Errorf("level 3 output = %v, want the hop through n4", tr.Child.Child.Output)
	}
	if len(tr.Child.Slow) != 1 || !tr.Child.Slow[0].Equal(routeTuple("n4", "n3", "n3")) {
		t.Errorf("new path should join route(@n4, n3, n3): %v", tr.Child.Slow)
	}

	// The old tree is untouched (provenance is monotone): query it.
	resOld := runQuery(t, rt, a, recvTuple("n3", "n1", "n3", "before"), types.HashTuple(evOld))
	if len(resOld.Trees) != 1 {
		t.Fatalf("old trees = %d, want 1", len(resOld.Trees))
	}
	if !resOld.Trees[0].Child.Child.Output.Equal(packet("n2", "n1", "n3", "before")) {
		t.Errorf("old tree should still traverse n2:\n%s", resOld.Trees[0])
	}
}

// TestDeletionDoesNotBroadcast checks that slow-table deletions neither
// broadcast sig nor clear htequi (Section 5.5: stored provenance is
// monotone).
func TestDeletionDoesNotBroadcast(t *testing.T) {
	a := NewAdvanced()
	rt := fig7Runtime(t, a)
	rt.Inject(packet("n1", "n1", "n3", "x"))
	rt.Run()

	msgsBefore := rt.Net.TotalMessages()
	rt.DeleteSlow(routeTuple("n2", "n3", "n3"))
	rt.Run()
	if rt.Net.TotalMessages() != msgsBefore {
		t.Error("deletion sent messages")
	}
	if len(a.store("n1").htequi) != 1 {
		t.Error("deletion cleared htequi")
	}
}

// TestSigBroadcastCost measures that the sig broadcast reaches every node
// and costs one message per node.
func TestSigBroadcastCost(t *testing.T) {
	a := NewAdvanced()
	rt := fig7Runtime(t, a)
	rt.Run()
	before := rt.Net.TotalMessages()
	rt.InsertSlow(routeTuple("n1", "n2", "n2"))
	rt.Run()
	sent := rt.Net.TotalMessages() - before
	if sent != int64(rt.Net.Graph().NumNodes()) {
		t.Errorf("sig messages = %d, want %d", sent, rt.Net.Graph().NumNodes())
	}
}

// TestStaleClassAfterUpdateStillMaintained: packets of a class whose first
// post-sig member is in flight still get associated once the new chain
// completes (the pending-output path).
func TestStaleClassAfterUpdateStillMaintained(t *testing.T) {
	a := NewAdvanced()
	rt := fig7Runtime(t, a)
	// Two packets injected back-to-back before any execution completes: the
	// second sees existFlag=true but arrives at n3 after the first, so the
	// hmap entry exists. Then force the pending path by injecting a third
	// packet whose class was reset mid-flight.
	ev1 := packet("n1", "n1", "n3", "a")
	ev2 := packet("n1", "n1", "n3", "b")
	rt.InjectAt(0, ev1)
	rt.InjectAt(time.Microsecond, ev2)
	rt.Run()
	checkNoErrors(t, rt)
	if n := len(a.ProvRows("n3")); n != 2 {
		t.Fatalf("prov rows = %d, want 2", n)
	}
	for _, p := range a.ProvRows("n3") {
		if p.Ref.IsNil() {
			t.Error("output associated to NULL chain")
		}
	}
}
