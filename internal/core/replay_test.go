package core

import (
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

func fig2Slow() []types.Tuple { return topo.Fig2Routes() }

// TestReplayMatchesDistributedExecution checks the Section 3.2 claim: the
// trees reconstructed by replaying the non-deterministic inputs equal the
// trees the distributed execution maintains.
func TestReplayMatchesDistributedExecution(t *testing.T) {
	ev := packet("n1", "n1", "n3", "data")

	rec := NewRecorder()
	rt := fig2Runtime(t, rec)
	rt.Inject(ev)
	rt.Run()

	trees, err := ReplayTrees(apps.Forwarding(), apps.Funcs(), fig2Slow(), ev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	out := recvTuple("n3", "n1", "n3", "data")
	got := trees[types.HashTuple(out)]
	want := rec.TreesFor(types.HashTuple(out), types.ZeroID)
	if len(got) != 1 || len(want) != 1 || !got[0].Equal(want[0]) {
		t.Errorf("replayed tree differs:\ngot %v\nwant %v", got, want)
	}
}

// TestReplayIntermediateTuples: replay also yields the provenance of the
// "tuples of less interest" — the intermediate packet tuples whose
// provenance no online scheme materializes.
func TestReplayIntermediateTuples(t *testing.T) {
	ev := packet("n1", "n1", "n3", "data")
	trees, err := ReplayTrees(apps.Forwarding(), apps.Funcs(), fig2Slow(), ev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	mid := packet("n2", "n1", "n3", "data")
	got := trees[types.HashTuple(mid)]
	if len(got) != 1 {
		t.Fatalf("intermediate trees = %d", len(got))
	}
	if got[0].Depth() != 1 || got[0].Rule != "r1" {
		t.Errorf("intermediate tree wrong:\n%s", got[0])
	}
	if len(got[0].Slow) != 1 || !got[0].Slow[0].Equal(routeTuple("n1", "n3", "n2")) {
		t.Errorf("intermediate slow tuples: %v", got[0].Slow)
	}
}

func TestReplayTreesFor(t *testing.T) {
	ev := packet("n1", "n1", "n3", "data")
	got, err := ReplayTreesFor(apps.Forwarding(), apps.Funcs(), fig2Slow(), ev,
		recvTuple("n3", "n1", "n3", "data"), 1000)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
	if none, err := ReplayTreesFor(apps.Forwarding(), apps.Funcs(), fig2Slow(), ev,
		recvTuple("n3", "zz", "n3", "ghost"), 1000); err != nil || len(none) != 0 {
		t.Errorf("ghost target: %v, %v", none, err)
	}
}

func TestReplayStepBound(t *testing.T) {
	// A self-looping rule never terminates; the step bound must trip.
	prog := mustDELPSrc(t, `r1 tick(@L, N) :- tick(@L, M), N := M + 1, N > 0.`)
	ev := types.NewTuple("tick", types.String("n1"), types.Int(0))
	if _, err := ReplayTrees(prog, nil, nil, ev, 50); err == nil {
		t.Error("non-terminating replay did not trip the bound")
	}
}

func TestReplayDNS(t *testing.T) {
	tree := topo.GenDNSTree(topo.DNSTreeConfig{NumServers: 10, MaxDepth: 4, Seed: 3})
	clients := tree.AttachClients(1)
	urls := tree.PickURLs(2)
	slow := append(tree.NameServerTuples(clients), topo.AddressRecordTuples(urls)...)
	ev := urlEvent(clients[0], urls[1].URL, 9)
	trees, err := ReplayTrees(apps.DNS(), apps.Funcs(), slow, ev, 10000)
	if err != nil {
		t.Fatal(err)
	}
	reply := types.NewTuple("reply",
		types.String(string(clients[0])), types.String(urls[1].URL),
		types.String(urls[1].IP), types.Int(9))
	got := trees[types.HashTuple(reply)]
	if len(got) != 1 {
		t.Fatalf("reply trees = %d", len(got))
	}
	if got[0].Rule != "r4" || !got[0].EventOf().Equal(ev) {
		t.Errorf("reply tree wrong:\n%s", got[0])
	}
}
