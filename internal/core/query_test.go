package core

import (
	"testing"
	"time"

	"provcompress/internal/engine"
	"provcompress/internal/types"
)

// referenceTrees runs the same injections under the Recorder maintainer
// and returns it, providing ground-truth semi-naïve provenance trees.
func referenceTrees(t *testing.T, evs ...types.Tuple) *Recorder {
	t.Helper()
	rec := NewRecorder()
	rt := fig2Runtime(t, rec)
	injectSpaced(rt, evs...)
	rt.Run()
	checkNoErrors(t, rt)
	return rec
}

// queryMaintainer is the common query surface of the three schemes.
type queryMaintainer interface {
	engine.Maintainer
	QueryProvenance(types.Tuple, types.ID, func(QueryResult))
}

func TestQueryMatchesReferenceAllSchemes(t *testing.T) {
	evData := packet("n1", "n1", "n3", "data")
	evURL := packet("n1", "n1", "n3", "url")
	evAck := packet("n2", "n2", "n3", "ack")
	rec := referenceTrees(t, evData, evURL, evAck)

	schemes := []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced(), NewAdvancedInterClass()}
	for _, m := range schemes {
		t.Run(m.Name(), func(t *testing.T) {
			rt := fig2Runtime(t, m)
			injectSpaced(rt, evData, evURL, evAck)
			rt.Run()
			checkNoErrors(t, rt)

			for _, tc := range []struct {
				out types.Tuple
				ev  types.Tuple
			}{
				{recvTuple("n3", "n1", "n3", "data"), evData},
				{recvTuple("n3", "n1", "n3", "url"), evURL},
				{recvTuple("n3", "n2", "n3", "ack"), evAck},
			} {
				evid := types.HashTuple(tc.ev)
				res := runQuery(t, rt, m, tc.out, evid)
				want := rec.TreesFor(types.HashTuple(tc.out), evid)
				if len(want) != 1 {
					t.Fatalf("reference trees for %v = %d", tc.out, len(want))
				}
				if len(res.Trees) != 1 {
					t.Fatalf("%s: query %v returned %d trees, want 1", m.Name(), tc.out, len(res.Trees))
				}
				if !res.Trees[0].Equal(want[0]) {
					t.Errorf("%s: reconstructed tree differs for %v:\ngot:\n%s\nwant:\n%s",
						m.Name(), tc.out, res.Trees[0], want[0])
				}
				if res.Latency <= 0 {
					t.Errorf("%s: latency = %v, want > 0", m.Name(), res.Latency)
				}
				if res.Bytes <= 0 {
					t.Errorf("%s: bytes = %d, want > 0", m.Name(), res.Bytes)
				}
			}
		})
	}
}

func TestQueryWithoutEvidReturnsAllDerivations(t *testing.T) {
	// Two packets in the same class produce two distinct recv tuples; a
	// query without evid on one output returns just that output's
	// derivation (distinct payloads -> distinct outputs).
	a := NewAdvanced()
	rt := fig2Runtime(t, a)
	injectSpaced(rt, packet("n1", "n1", "n3", "data"), packet("n1", "n1", "n3", "url"))
	rt.Run()
	res := runQuery(t, rt, a, recvTuple("n3", "n1", "n3", "url"), types.ZeroID)
	if len(res.Trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(res.Trees))
	}
	if !res.Trees[0].EventOf().Equal(packet("n1", "n1", "n3", "url")) {
		t.Errorf("event = %v", res.Trees[0].EventOf())
	}
}

func TestQueryUnknownTuple(t *testing.T) {
	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced()} {
		rt := fig2Runtime(t, m)
		rt.Inject(packet("n1", "n1", "n3", "data"))
		rt.Run()
		res := runQuery(t, rt, m, recvTuple("n3", "n9", "n3", "ghost"), types.ZeroID)
		if len(res.Trees) != 0 {
			t.Errorf("%s: query for unknown tuple returned %d trees", m.Name(), len(res.Trees))
		}
	}
}

func TestQueryLatencyOrdering(t *testing.T) {
	// The headline of Figure 12: ExSPAN's query latency exceeds Basic's and
	// Advanced's, because it ships and processes the materialized
	// intermediate tuples.
	evData := packet("n1", "n1", "n3", "data500_"+string(make([]byte, 0)))
	lat := make(map[string]time.Duration)
	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced()} {
		rt := fig2Runtime(t, m)
		rt.Inject(evData)
		rt.Run()
		res := runQuery(t, rt, m, recvTuple("n3", "n1", "n3", evData.Args[3].AsString()), types.HashTuple(evData))
		if len(res.Trees) != 1 {
			t.Fatalf("%s: trees = %d", m.Name(), len(res.Trees))
		}
		lat[m.Name()] = res.Latency
	}
	if lat["ExSPAN"] <= lat["Basic"] {
		t.Errorf("ExSPAN latency %v <= Basic %v", lat["ExSPAN"], lat["Basic"])
	}
	if lat["ExSPAN"] <= lat["Advanced"] {
		t.Errorf("ExSPAN latency %v <= Advanced %v", lat["ExSPAN"], lat["Advanced"])
	}
}

func TestQueryBytesOrdering(t *testing.T) {
	// ExSPAN's walk must move more bytes than Basic's, which moves more
	// than Advanced's (Advanced ships no per-hop event VIDs).
	ev := packet("n1", "n1", "n3", "payloadpayloadpayload")
	bytes := make(map[string]int64)
	for _, m := range []queryMaintainer{NewExSPAN(), NewBasic(), NewAdvanced()} {
		rt := fig2Runtime(t, m)
		rt.Inject(ev)
		rt.Run()
		res := runQuery(t, rt, m, recvTuple("n3", "n1", "n3", "payloadpayloadpayload"), types.HashTuple(ev))
		bytes[m.Name()] = res.Bytes
	}
	if bytes["ExSPAN"] <= bytes["Basic"] {
		t.Errorf("ExSPAN bytes %d <= Basic %d", bytes["ExSPAN"], bytes["Basic"])
	}
	if bytes["Basic"] < bytes["Advanced"] {
		t.Errorf("Basic bytes %d < Advanced %d", bytes["Basic"], bytes["Advanced"])
	}
}

func TestQueryHops(t *testing.T) {
	// The walk crosses n3 -> n2 -> n1 and the result returns n1 -> n3:
	// 2 walk messages + 1 result message.
	a := NewAdvanced()
	rt := fig2Runtime(t, a)
	ev := packet("n1", "n1", "n3", "data")
	rt.Inject(ev)
	rt.Run()
	res := runQuery(t, rt, a, recvTuple("n3", "n1", "n3", "data"), types.HashTuple(ev))
	if res.Hops != 3 {
		t.Errorf("hops = %d, want 3", res.Hops)
	}
}

func TestQuerySecondClassMemberReconstructs(t *testing.T) {
	// The "url" packet maintained no provenance of its own; its tree must
	// still be fully reconstructible from the shared chain + its EVID.
	a := NewAdvanced()
	rt := fig2Runtime(t, a)
	evURL := packet("n1", "n1", "n3", "url")
	injectSpaced(rt, packet("n1", "n1", "n3", "data"), evURL)
	rt.Run()

	res := runQuery(t, rt, a, recvTuple("n3", "n1", "n3", "url"), types.HashTuple(evURL))
	if len(res.Trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(res.Trees))
	}
	tr := res.Trees[0]
	if !tr.EventOf().Equal(evURL) {
		t.Errorf("event = %v, want %v", tr.EventOf(), evURL)
	}
	// The reconstructed intermediate tuples carry the "url" payload even
	// though only the "data" execution was concretely maintained.
	if !tr.Child.Output.Equal(packet("n3", "n1", "n3", "url")) {
		t.Errorf("intermediate = %v", tr.Child.Output)
	}
}

func TestConcurrentQueries(t *testing.T) {
	// Several queries issued before the simulation runs: their walks
	// interleave in virtual time and every one completes with its own
	// result.
	a := NewAdvanced()
	rt := fig2Runtime(t, a)
	evs := []types.Tuple{
		packet("n1", "n1", "n3", "a"),
		packet("n1", "n1", "n3", "b"),
		packet("n2", "n2", "n3", "c"),
	}
	injectSpaced(rt, evs...)
	rt.Run()

	results := make(map[string]QueryResult)
	for _, ev := range evs {
		ev := ev
		out := recvTuple("n3", ev.Args[1].AsString(), "n3", ev.Args[3].AsString())
		a.QueryProvenance(out, types.HashTuple(ev), func(r QueryResult) {
			results[ev.Args[3].AsString()] = r
		})
	}
	rt.Run()
	if len(results) != 3 {
		t.Fatalf("completed queries = %d, want 3", len(results))
	}
	for payload, r := range results {
		if len(r.Trees) != 1 {
			t.Errorf("query %s: trees = %d", payload, len(r.Trees))
			continue
		}
		if got := r.Trees[0].EventOf().Args[3].AsString(); got != payload {
			t.Errorf("query %s answered with event payload %s", payload, got)
		}
	}
}

func TestRecorderState(t *testing.T) {
	rec := referenceTrees(t, packet("n1", "n1", "n3", "data"), packet("n1", "n1", "n3", "url"))
	if len(rec.Trees()) != 2 {
		t.Fatalf("trees = %d, want 2", len(rec.Trees()))
	}
	for _, tr := range rec.Trees() {
		if tr.Depth() != 3 {
			t.Errorf("depth = %d, want 3", tr.Depth())
		}
	}
	if rec.TotalStorageBytes() <= 0 {
		t.Error("recorder storage accounting zero")
	}
	if rec.StorageBytes("n3") != rec.TotalStorageBytes() {
		t.Error("all trees root at n3")
	}
	vid := types.HashTuple(recvTuple("n3", "n1", "n3", "data"))
	if got := rec.TreesFor(vid, types.ZeroID); len(got) != 1 {
		t.Errorf("TreesFor = %d, want 1", len(got))
	}
	if got := rec.TreesFor(vid, types.HashTuple(packet("n1", "n1", "n3", "url"))); len(got) != 0 {
		t.Errorf("TreesFor with foreign evid = %d, want 0", len(got))
	}
}
