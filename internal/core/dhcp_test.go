package core

import (
	"testing"

	"provcompress/internal/analysis"
	"provcompress/internal/apps"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

func dhcpRuntime(t *testing.T, maint engine.Maintainer) *engine.Runtime {
	t.Helper()
	var sched sim.Scheduler
	g := topo.Star(4, "h") // h0 is the server; h1..h3 are clients
	net := netsim.New(&sched, g)
	rt := engine.NewRuntime(net, apps.DHCP(), apps.Funcs(), maint)
	base := []types.Tuple{
		types.NewTuple("pool", types.String("h0"), types.String("10.0.0.5")),
		types.NewTuple("pool", types.String("h0"), types.String("10.0.0.6")),
		types.NewTuple("accept", types.String("h1"), types.String("h0")),
		types.NewTuple("accept", types.String("h2"), types.String("h0")),
	}
	if err := rt.LoadBase(base); err != nil {
		t.Fatal(err)
	}
	return rt
}

func discover(sv, h string) types.Tuple {
	return types.NewTuple("dhcpDiscover", types.String(sv), types.String(h))
}

// TestDHCPHandshake runs the four-message handshake: one discover yields
// one ack per pool address (each a separate provenance chain).
func TestDHCPHandshake(t *testing.T) {
	rec := NewRecorder()
	rt := dhcpRuntime(t, rec)
	rt.Inject(discover("h0", "h1"))
	rt.Run()
	checkNoErrors(t, rt)

	// Two pool addresses -> two offers -> two acks at h1.
	if rt.NumOutputs() != 2 {
		t.Fatalf("outputs = %d, want 2", rt.NumOutputs())
	}
	for _, o := range rt.Outputs() {
		if o.Tuple.Rel != "dhcpAck" || o.Tuple.Loc() != "h1" {
			t.Errorf("output = %v", o.Tuple)
		}
	}
	// Trees span d1, d2, d3.
	for _, tr := range rec.Trees() {
		if tr.Depth() != 3 || tr.Rule != "d3" {
			t.Errorf("tree shape wrong:\n%s", tr)
		}
	}
}

// TestDHCPKeysAndCompression: the discover's client attribute joins the
// accept table downstream, so (loc, client) are the keys — repeated
// discovers from the same client share one pair of chains.
func TestDHCPKeysAndCompression(t *testing.T) {
	if err := analysis.CheckAdvancedApplicable(apps.DHCP()); err != nil {
		t.Fatalf("DHCP not compressible: %v", err)
	}
	keys := analysis.EquivalenceKeys(apps.DHCP())
	if len(keys) != 2 || keys[0] != 0 || keys[1] != 1 {
		t.Fatalf("keys = %v, want [0 1]", keys)
	}

	a := NewAdvanced()
	rt := dhcpRuntime(t, a)
	// The same client discovers three times; a different client once.
	injectSpaced(rt,
		discover("h0", "h1"), discover("h0", "h1"), discover("h0", "h1"),
		discover("h0", "h2"))
	rt.Run()
	checkNoErrors(t, rt)

	// Chains: class h1 stores 2 chains x 3 nodes = 6 rows. Class h2's d1
	// executions are *identical* to h1's (same rule, same pool tuple, both
	// chain leaves), so even the chained scheme shares them: only d2@h2
	// and d3@h0 add rows (+4). Repeated discovers added nothing.
	rows := 0
	for _, n := range rt.Net.Graph().Nodes() {
		rows += len(a.RuleExecRows(n))
	}
	if rows != 10 {
		t.Errorf("ruleExec rows = %d, want 10", rows)
	}

	// Every ack's provenance is queryable with the right event; identical
	// repeat events re-derive identical trees (set semantics).
	rec := NewRecorder()
	rrec := dhcpRuntime(t, rec)
	injectSpaced(rrec,
		discover("h0", "h1"), discover("h0", "h1"), discover("h0", "h1"),
		discover("h0", "h2"))
	rrec.Run()
	for _, want := range rec.Trees() {
		res := runQuery(t, rt, a, want.Output, want.EvID())
		found := false
		for _, g := range res.Trees {
			if g.Equal(want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing tree for %v", want.Output)
		}
	}
}
