package core

import (
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/types"
)

// scheme is the per-maintainer behaviour the shared query walker needs.
type scheme interface {
	// provRefsFor returns the prov rows anchoring the query for a tuple
	// (filtered by event ID where the scheme records one).
	provRefsFor(st *store, vid, evid types.ID) []Prov
	// collectEntry fetches the rule-execution node ref at node n, records
	// it (and any tuple contents the scheme needs) into the query's
	// accumulator, and returns the next references to walk plus the bytes
	// fetched.
	collectEntry(n *engine.Node, st *store, ref Ref, q *walkQuery) (nexts []Ref, bytes int64)
	// assemble reconstructs the provenance trees from the accumulated walk.
	assemble(q *walkQuery) []*Tree
}

// base carries the state shared by the three maintainers: per-node stores,
// the runtime handle, and the query walker.
type base struct {
	rt     *engine.Runtime
	stores map[types.NodeAddr]*store

	withNext bool
	withEvID bool
	useLinks bool

	// Cost is the query-time computation model (see QueryCostModel).
	Cost QueryCostModel

	queries *queryDispatcher
}

func newBase(withNext, withEvID, useLinks bool) base {
	return base{
		stores:   make(map[types.NodeAddr]*store),
		withNext: withNext,
		withEvID: withEvID,
		useLinks: useLinks,
		Cost:     DefaultQueryCost(),
	}
}

// attach wires the base to the runtime.
func (b *base) attach(rt *engine.Runtime, s scheme) {
	b.rt = rt
	b.queries = newQueryDispatcher(b, s)
}

// store returns (lazily creating) the provenance store at addr.
func (b *base) store(addr types.NodeAddr) *store {
	s, ok := b.stores[addr]
	if !ok {
		s = newStore(b.withNext, b.withEvID, b.useLinks)
		b.stores[addr] = s
	}
	return s
}

// StorageBytes returns the serialized provenance storage at one node.
func (b *base) StorageBytes(addr types.NodeAddr) int64 {
	if s, ok := b.stores[addr]; ok {
		return s.bytes()
	}
	return 0
}

// TotalStorageBytes sums provenance storage over all nodes.
func (b *base) TotalStorageBytes() int64 {
	var total int64
	for _, s := range b.stores {
		total += s.bytes()
	}
	return total
}

// RuleExecRows and ProvRows report table sizes at a node, for tests and
// table dumps.
func (b *base) RuleExecRows(addr types.NodeAddr) []RuleExec {
	s, ok := b.stores[addr]
	if !ok {
		return nil
	}
	out := make([]RuleExec, 0, len(s.ruleExec))
	for _, e := range s.ruleExec {
		out = append(out, *e)
	}
	return out
}

// ProvRows returns the prov rows stored at a node.
func (b *base) ProvRows(addr types.NodeAddr) []Prov {
	s, ok := b.stores[addr]
	if !ok {
		return nil
	}
	var out []Prov
	for _, rows := range s.prov {
		out = append(out, rows...)
	}
	return out
}

// OnSlowUpdate is a no-op by default (ExSPAN, Basic); Advanced overrides it
// to broadcast sig on insertion (Section 5.5).
func (b *base) OnSlowUpdate(*engine.Node, types.Tuple, bool) {}

// HandleMessage routes provenance-query protocol messages; other kinds are
// unhandled.
func (b *base) HandleMessage(n *engine.Node, msg netsim.Message) bool {
	return b.queries.handle(n, msg)
}

// QueryProvenance starts a distributed provenance query for the output
// tuple out (which must have been produced at its location). evid selects
// the derivation triggered by one specific input event; pass types.ZeroID
// to retrieve every stored derivation. cb runs, in virtual time, when the
// result is complete.
func (b *base) QueryProvenance(out types.Tuple, evid types.ID, cb func(QueryResult)) {
	b.queries.start(out, evid, cb)
}

// slowVIDs hashes the slow tuples of a firing in body order.
func slowVIDs(f engine.Firing) []types.ID {
	vids := make([]types.ID, len(f.Slow))
	for i, s := range f.Slow {
		vids[i] = types.HashTuple(s)
	}
	return vids
}
