package analysis

import (
	"reflect"
	"strings"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
)

// TestForwardingEquivalenceKeys reproduces the paper's Section 5.2 result:
// GetEquiKeys on the packet forwarding program identifies (packet:0,
// packet:2) — the input location and the destination — as equivalence keys.
func TestForwardingEquivalenceKeys(t *testing.T) {
	keys := EquivalenceKeys(apps.Forwarding())
	if !reflect.DeepEqual(keys, []int{0, 2}) {
		t.Errorf("forwarding equivalence keys = %v, want [0 2]", keys)
	}
}

// TestDNSEquivalenceKeys checks the DNS program of Figure 19: the keys are
// (url:0, url:1) — the requesting host and the URL — while the request ID
// (url:2) flows only to heads and is not a key. This matches Section 6.2,
// where each distinct URL forms its own equivalence class.
func TestDNSEquivalenceKeys(t *testing.T) {
	keys := EquivalenceKeys(apps.DNS())
	if !reflect.DeepEqual(keys, []int{0, 1}) {
		t.Errorf("dns equivalence keys = %v, want [0 1]", keys)
	}
}

func TestARPEquivalenceKeys(t *testing.T) {
	// arpRequest(@O, IP, H): O is the location (always a key); IP joins the
	// arpEntry slow table; H joins the known-hosts table (which also makes
	// the reply location key-determined).
	keys := EquivalenceKeys(apps.ARP())
	if !reflect.DeepEqual(keys, []int{0, 1, 2}) {
		t.Errorf("arp equivalence keys = %v, want [0 1 2]", keys)
	}
}

// TestBGPEquivalenceKeys: adverts advert(@L, P, O, SQ) join slow state on
// the location (bgpRoute:0, bgpOwner:0) and the prefix (bgpRoute:1,
// bgpOwner:1); the origin AS and sequence number flow only to heads. All
// adverts for one prefix entering at one border router therefore share an
// equivalence class, no matter how many updates the origin emits.
func TestBGPEquivalenceKeys(t *testing.T) {
	keys := EquivalenceKeys(apps.BGP())
	if !reflect.DeepEqual(keys, []int{0, 1}) {
		t.Errorf("bgp equivalence keys = %v, want [0 1]", keys)
	}
}

// TestGossipEquivalenceKeys: rumors rumor(@L, R, O) join slow state only on
// the location (gossipPeer:0, gossipMember:0) — the rumor ID and origin are
// payload. Every rumor entering at one member shares a single equivalence
// class, the maximal-sharing extreme of the analysis.
func TestGossipEquivalenceKeys(t *testing.T) {
	keys := EquivalenceKeys(apps.Gossip())
	if !reflect.DeepEqual(keys, []int{0}) {
		t.Errorf("gossip equivalence keys = %v, want [0]", keys)
	}
}

// TestForwardingDependencyGraph checks the structure of Figure 17's graph:
// joinSAttr marks on packet:0 and packet:2, joinFAttr edges from the packet
// attributes to the recv attributes, and connectivity of payload to head
// only.
func TestForwardingDependencyGraph(t *testing.T) {
	g := BuildGraph(apps.Forwarding())

	for _, tc := range []struct {
		node AttrNode
		want bool
	}{
		{AttrNode{"packet", 0}, true},  // L joins route:0 and appears in D == L
		{AttrNode{"packet", 2}, true},  // D joins route:1 and appears in D == L
		{AttrNode{"packet", 1}, false}, // S only flows to heads
		{AttrNode{"packet", 3}, false}, // DT only flows to heads
		{AttrNode{"recv", 0}, false},
	} {
		if got := g.JoinSAttr(tc.node); got != tc.want {
			t.Errorf("JoinSAttr(%s) = %v, want %v", tc.node, got, tc.want)
		}
	}

	for _, tc := range []struct {
		a, b AttrNode
		want bool
	}{
		{AttrNode{"packet", 1}, AttrNode{"recv", 1}, true},
		{AttrNode{"packet", 3}, AttrNode{"recv", 3}, true},
		{AttrNode{"packet", 0}, AttrNode{"recv", 0}, true},
		{AttrNode{"packet", 0}, AttrNode{"packet", 2}, true}, // via D == L
		{AttrNode{"packet", 1}, AttrNode{"packet", 3}, false},
		{AttrNode{"packet", 1}, AttrNode{"recv", 3}, false},
		{AttrNode{"packet", 1}, AttrNode{"nosuch", 0}, false},
	} {
		if got := g.Connected(tc.a, tc.b); got != tc.want {
			t.Errorf("Connected(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}

	if !g.Connected(AttrNode{"packet", 1}, AttrNode{"packet", 1}) {
		t.Error("Connected should be reflexive on existing nodes")
	}
}

// TestDNSDependencyGraph traces the key attribute flows of the Figure 19
// program through the merged dependency graph.
func TestDNSDependencyGraph(t *testing.T) {
	g := BuildGraph(apps.DNS())

	// URL flows url -> request -> dnsResult -> reply.
	chain := []AttrNode{{"url", 1}, {"request", 1}, {"dnsResult", 1}, {"reply", 1}}
	for i := 1; i < len(chain); i++ {
		if !g.Connected(chain[0], chain[i]) {
			t.Errorf("URL flow broken: %s not connected to %s", chain[0], chain[i])
		}
	}
	// The request ID reaches the reply but never joins slow state.
	if !g.Connected(AttrNode{"url", 2}, AttrNode{"reply", 3}) {
		t.Error("RQID flow broken")
	}
	if g.JoinSAttr(AttrNode{"url", 2}) || g.JoinSAttr(AttrNode{"request", 3}) {
		t.Error("RQID spuriously joins slow state")
	}
	// request:0 (the nameserver) joins the delegation table.
	if !g.JoinSAttr(AttrNode{"request", 0}) {
		t.Error("request:0 should join nameServer")
	}
	// request:1 (URL) is a UDF argument (f_isSubDomain), hence joinSAttr.
	if !g.JoinSAttr(AttrNode{"request", 1}) {
		t.Error("request:1 should join via the UDF (JOIN-FUNC-ATTR)")
	}
	// EquivalenceKeysFor on a non-input relation works too: request's keys
	// are its location, the URL, and the host — HST connects back to url:0,
	// which joins rootServer — but not the request ID.
	keys := g.EquivalenceKeysFor("request")
	if !reflect.DeepEqual(keys, []int{0, 1, 2}) {
		t.Errorf("request keys = %v, want [0 1 2]", keys)
	}
}

// TestAssignmentFlow checks condition (4) of Section 5.2 using the paper's
// r2' example: recv(@L, S, N, DT) :- packet(@L, S, D, DT), N := L + 2
// creates an edge between packet:0 and recv:2.
func TestAssignmentFlow(t *testing.T) {
	src := `
r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
r2 recv(@L, S, N, DT)   :- packet(@L, S, D, DT), N := L + 2.
`
	g := BuildGraph(ndlog.MustParse(src))
	if !g.Connected(AttrNode{"packet", 0}, AttrNode{"recv", 2}) {
		t.Error("assignment edge packet:0 -- recv:2 missing")
	}
	if g.Connected(AttrNode{"packet", 1}, AttrNode{"recv", 2}) {
		t.Error("spurious assignment edge packet:1 -- recv:2")
	}
}

// TestChainedAssignmentSources checks that an assigned variable used in a
// later assignment propagates its event sources.
func TestChainedAssignmentSources(t *testing.T) {
	src := `r1 out(@L, M) :- e(@L, X), N := X + 1, M := N * 2.`
	g := BuildGraph(ndlog.MustParse(src))
	if !g.Connected(AttrNode{"e", 1}, AttrNode{"out", 1}) {
		t.Error("chained assignment flow e:1 -- out:1 missing")
	}
}

// TestUDFMakesKey checks JOIN-FUNC-ATTR: an event attribute passed to a UDF
// becomes an equivalence key even without joining a relation.
func TestUDFMakesKey(t *testing.T) {
	src := `r1 out(@L, X, Y) :- e(@L, X, Y), Z := f_classify(X), Z == 1.`
	keys := EquivalenceKeys(ndlog.MustParse(src))
	if !reflect.DeepEqual(keys, []int{0, 1}) {
		t.Errorf("keys = %v, want [0 1] (X used in UDF; Y untouched)", keys)
	}
}

// TestConstraintConstantComparison checks JOIN-ARITH with a constant: an
// event attribute compared against a literal is conservatively a key.
func TestConstraintConstantComparison(t *testing.T) {
	src := `r1 out(@L, X, Y) :- e(@L, X, Y), X < 10.`
	keys := EquivalenceKeys(ndlog.MustParse(src))
	if !reflect.DeepEqual(keys, []int{0, 1}) {
		t.Errorf("keys = %v, want [0 1]", keys)
	}
}

// TestKeyThroughChain checks connectivity across rules: an attribute that
// only joins slow state two hops downstream is still a key of the input
// event relation.
func TestKeyThroughChain(t *testing.T) {
	src := `
r1 b(@L, X, Y) :- a(@L, X, Y).
r2 c(@L, X)    :- b(@L, X, Y), lookup(@L, Y).
`
	keys := EquivalenceKeys(ndlog.MustParse(src))
	// a:2 (Y) flows to b:2, which joins lookup:1 downstream; a:1 (X) never
	// joins slow state.
	if !reflect.DeepEqual(keys, []int{0, 2}) {
		t.Errorf("keys = %v, want [0 2]", keys)
	}
}

// TestLocationAlwaysKey: even with no slow joins at all, the input location
// is an equivalence key so events at different nodes never share a class.
func TestLocationAlwaysKey(t *testing.T) {
	src := `r1 out(@L, X) :- e(@L, X).`
	keys := EquivalenceKeys(ndlog.MustParse(src))
	if !reflect.DeepEqual(keys, []int{0}) {
		t.Errorf("keys = %v, want [0]", keys)
	}
}

func TestNodesDeterministic(t *testing.T) {
	g := BuildGraph(apps.Forwarding())
	a := g.Nodes()
	b := g.Nodes()
	if !reflect.DeepEqual(a, b) {
		t.Error("Nodes() not deterministic")
	}
	if len(a) == 0 {
		t.Error("Nodes() empty")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Rel > a[i].Rel || (a[i-1].Rel == a[i].Rel && a[i-1].Idx >= a[i].Idx) {
			t.Errorf("Nodes() not sorted at %d: %v then %v", i, a[i-1], a[i])
		}
	}
}

func TestDOT(t *testing.T) {
	g := BuildGraph(apps.Forwarding())
	dot := g.DOT()
	for _, want := range []string{
		"graph dependency {",
		`"packet:0"`,
		`"recv:3"`,
		`"packet:1" -- "recv:1";`,
		"peripheries=2", // equivalence keys highlighted
		"style=dashed",  // slow-join justification edges
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if g.DOT() != dot {
		t.Error("DOT not deterministic")
	}
}
