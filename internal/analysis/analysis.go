// Package analysis implements the static analysis of Section 5.2: it builds
// the attribute-level dependency graph of a DELP and identifies the
// equivalence keys of the input event relation (the GetEquiKeys algorithm of
// Figure 5), the minimal attribute set whose valuation determines the shape
// of every provenance tree the program can generate (Theorem 1).
//
// Following Appendix B, the analysis derives two judgements over attribute
// nodes (rel:i):
//
//   - joinSAttr(e:i): the event attribute joins slow-changing state — it
//     shares a variable with a slow-changing atom (JOIN-BASE), appears in an
//     arithmetic comparison (JOIN-ARITH-LEFT/RIGHT), or is passed to a
//     user-defined function (JOIN-FUNC-ATTR);
//   - joinFAttr(e:i, p:j): the attribute flows to a head attribute of the
//     same rule, either by sharing the variable or through an assignment.
//
// connected(a, b) is the reflexive-transitive closure of joinFAttr, and an
// event attribute is an equivalence key iff it is connected to some
// joinSAttr attribute (Definition 3). The location attribute e:0 is always
// included so that events at different nodes never share a class.
package analysis

import (
	"fmt"
	"sort"

	"provcompress/internal/ndlog"
)

// AttrNode identifies the i-th attribute of a relation: the vertex (rel:i)
// of the dependency graph.
type AttrNode struct {
	Rel string
	Idx int
}

// String renders the node as rel:i, the paper's notation.
func (n AttrNode) String() string { return fmt.Sprintf("%s:%d", n.Rel, n.Idx) }

// Graph is the attribute-level dependency graph of a program.
type Graph struct {
	prog *ndlog.Program

	nodes map[AttrNode]bool
	// adj holds the undirected joinFAttr edges (event attr <-> head attr).
	adj map[AttrNode]map[AttrNode]bool
	// slowJoin marks attributes with a derived joinSAttr judgement.
	slowJoin map[AttrNode]bool
	// slowEdges records, for rendering and explanation, which slow-changing
	// attribute justified a JOIN-BASE judgement.
	slowEdges map[AttrNode][]AttrNode
}

// BuildGraph constructs the dependency graph of a parsed program. The
// program should already satisfy the DELP restriction; BuildGraph does not
// re-validate it.
func BuildGraph(p *ndlog.Program) *Graph {
	g := &Graph{
		prog:      p,
		nodes:     make(map[AttrNode]bool),
		adj:       make(map[AttrNode]map[AttrNode]bool),
		slowJoin:  make(map[AttrNode]bool),
		slowEdges: make(map[AttrNode][]AttrNode),
	}
	for _, r := range p.Rules {
		g.addRule(r)
	}
	return g
}

func (g *Graph) addNode(n AttrNode) { g.nodes[n] = true }

func (g *Graph) addEdge(a, b AttrNode) {
	if a == b {
		return
	}
	g.addNode(a)
	g.addNode(b)
	if g.adj[a] == nil {
		g.adj[a] = make(map[AttrNode]bool)
	}
	if g.adj[b] == nil {
		g.adj[b] = make(map[AttrNode]bool)
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

func (g *Graph) markSlowJoin(n AttrNode, via *AttrNode) {
	g.addNode(n)
	g.slowJoin[n] = true
	if via != nil {
		g.addNode(*via)
		g.slowEdges[n] = append(g.slowEdges[n], *via)
	}
}

// addRule derives the per-rule edges and joinSAttr marks.
func (g *Graph) addRule(r *ndlog.Rule) {
	eventPos := r.Event.VarPositions()
	headPos := r.Head.VarPositions()
	for i := range r.Event.Args {
		g.addNode(AttrNode{r.Event.Rel, i})
	}
	for i := range r.Head.Args {
		g.addNode(AttrNode{r.Head.Rel, i})
	}

	// varSources maps each bound variable to the event attribute positions
	// its value derives from; assigned variables inherit the sources of
	// their defining expression (evaluated in order).
	varSources := make(map[string][]int, len(eventPos))
	for v, ps := range eventPos {
		varSources[v] = ps
	}
	sourcesOf := func(e ndlog.Expr) []int {
		var out []int
		for _, v := range e.FreeVars(nil) {
			out = append(out, varSources[v]...)
		}
		return out
	}

	// JOIN-BASE: event attribute shares its variable with a slow atom.
	for _, s := range r.Slow {
		for v, sps := range s.VarPositions() {
			eps, ok := eventPos[v]
			if !ok {
				continue
			}
			for _, i := range eps {
				for _, j := range sps {
					via := AttrNode{s.Rel, j}
					g.markSlowJoin(AttrNode{r.Event.Rel, i}, &via)
				}
			}
		}
	}

	// Condition (2) of Section 5.2: event attribute flows to a same-variable
	// head attribute (joinFAttr).
	for v, eps := range eventPos {
		hps, ok := headPos[v]
		if !ok {
			continue
		}
		for _, i := range eps {
			for _, j := range hps {
				g.addEdge(AttrNode{r.Event.Rel, i}, AttrNode{r.Head.Rel, j})
			}
		}
	}

	// Condition (4): assignment flows its right-hand-side event attributes
	// into the head positions of the assigned variable.
	for _, a := range r.Assigns {
		srcs := sourcesOf(a.Expr)
		for _, j := range headPos[a.Var] {
			for _, i := range srcs {
				g.addEdge(AttrNode{r.Event.Rel, i}, AttrNode{r.Head.Rel, j})
			}
		}
		// JOIN-FUNC-ATTR: event attributes passed to a UDF join slow state.
		for _, call := range callsIn(a.Expr) {
			for _, arg := range call.Args {
				for _, i := range sourcesOf(arg) {
					g.markSlowJoin(AttrNode{r.Event.Rel, i}, nil)
				}
			}
		}
		// The assigned variable inherits the event sources of its defining
		// expression, so chained assignments keep flowing.
		varSources[a.Var] = srcs
	}

	// Condition (3) / JOIN-ARITH: event attributes in the same arithmetic
	// atom are connected to each other and join slow state.
	for _, c := range r.Constraints {
		srcs := dedupInts(append(sourcesOf(c.L), sourcesOf(c.R)...))
		for _, i := range srcs {
			g.markSlowJoin(AttrNode{r.Event.Rel, i}, nil)
		}
		for x := 0; x < len(srcs); x++ {
			for y := x + 1; y < len(srcs); y++ {
				g.addEdge(AttrNode{r.Event.Rel, srcs[x]}, AttrNode{r.Event.Rel, srcs[y]})
			}
		}
		for _, e := range []ndlog.Expr{c.L, c.R} {
			for _, call := range callsIn(e) {
				for _, arg := range call.Args {
					for _, i := range sourcesOf(arg) {
						g.markSlowJoin(AttrNode{r.Event.Rel, i}, nil)
					}
				}
			}
		}
	}
}

// callsIn returns every CallExpr nested in e.
func callsIn(e ndlog.Expr) []ndlog.CallExpr {
	var out []ndlog.CallExpr
	switch e := e.(type) {
	case ndlog.CallExpr:
		out = append(out, e)
		for _, a := range e.Args {
			out = append(out, callsIn(a)...)
		}
	case ndlog.BinExpr:
		out = append(out, callsIn(e.L)...)
		out = append(out, callsIn(e.R)...)
	}
	return out
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// JoinSAttr reports whether the joinSAttr judgement was derived for n.
func (g *Graph) JoinSAttr(n AttrNode) bool { return g.slowJoin[n] }

// Connected reports whether a path of joinFAttr edges connects a and b
// (reflexively: Connected(a, a) is true when a is a node of the graph).
func (g *Graph) Connected(a, b AttrNode) bool {
	if !g.nodes[a] || !g.nodes[b] {
		return false
	}
	if a == b {
		return true
	}
	seen := map[AttrNode]bool{a: true}
	queue := []AttrNode{a}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for m := range g.adj[n] {
			if m == b {
				return true
			}
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return false
}

// reachesSlowJoin reports whether n, or any attribute connected to n, has a
// joinSAttr judgement (Definition 3).
func (g *Graph) reachesSlowJoin(n AttrNode) bool {
	if !g.nodes[n] {
		return false
	}
	seen := map[AttrNode]bool{n: true}
	queue := []AttrNode{n}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if g.slowJoin[c] {
			return true
		}
		for m := range g.adj[c] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return false
}

// Nodes returns all graph vertices in deterministic order.
func (g *Graph) Nodes() []AttrNode {
	out := make([]AttrNode, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Idx < out[j].Idx
	})
	return out
}

// EquivalenceKeys runs GetEquiKeys (Figure 5) for the program's input event
// relation: it returns the sorted attribute indexes of the input event
// relation that determine provenance tree equivalence. Index 0 (the input
// location) is always included.
func (g *Graph) EquivalenceKeys() []int {
	return g.EquivalenceKeysFor(g.prog.InputEvent())
}

// EquivalenceKeysFor runs GetEquiKeys for an arbitrary event relation of
// the program — merged multi-program rule sets have one input event
// relation per constituent program.
func (g *Graph) EquivalenceKeysFor(eventRel string) []int {
	arities, err := g.prog.Arities()
	if err != nil {
		// Parse already validated arities; an inconsistent program cannot
		// reach this point through the public constructors.
		panic(err)
	}
	keySet := map[int]bool{0: true}
	for i := 0; i < arities[eventRel]; i++ {
		if g.reachesSlowJoin(AttrNode{eventRel, i}) {
			keySet[i] = true
		}
	}
	keys := make([]int, 0, len(keySet))
	for i := range keySet {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	return keys
}

// EquivalenceKeys is the one-call convenience wrapper: it builds the
// dependency graph of prog and returns the equivalence keys of its input
// event relation.
func EquivalenceKeys(prog *ndlog.Program) []int {
	return BuildGraph(prog).EquivalenceKeys()
}

// EquivalenceKeysFor is the convenience wrapper over a named event
// relation.
func EquivalenceKeysFor(prog *ndlog.Program, eventRel string) []int {
	return BuildGraph(prog).EquivalenceKeysFor(eventRel)
}
