package analysis

import (
	"fmt"
	"sort"

	"provcompress/internal/ndlog"
)

// CheckAdvancedApplicable verifies the assumption the Advanced scheme's
// Stage 3 relies on: the location attribute of every output relation must
// be determined by the equivalence keys. By Lemma 2, an output attribute
// can differ within an equivalence class only if it is connected to a
// non-key event attribute — if that held for a location attribute, members
// of one class could produce outputs at different nodes, and the hmap
// association (which lives at the output node) could never be found.
//
// Both of the paper's applications satisfy the check (recv's location is
// the packet destination, a key; reply's location is the requesting host,
// a key). A synthetic counterexample is out(@H, X) :- e(@L, X, H) with no
// slow-changing joins: H is not a key, so two same-class events can output
// at different nodes.
func CheckAdvancedApplicable(prog *ndlog.Program) error {
	return CheckAdvancedApplicableFor(prog, []string{prog.InputEvent()})
}

// CheckAdvancedApplicableFor runs the check against an explicit set of
// input event relations — merged multi-program rule sets have one per
// constituent program.
func CheckAdvancedApplicableFor(prog *ndlog.Program, eventRels []string) error {
	g := BuildGraph(prog)
	arities, err := prog.Arities()
	if err != nil {
		return err
	}

	outputs := make([]string, 0)
	for rel := range prog.OutputRelations() {
		outputs = append(outputs, rel)
	}
	sort.Strings(outputs)

	for _, ev := range eventRels {
		keySet := make(map[int]bool)
		for _, k := range g.EquivalenceKeysFor(ev) {
			keySet[k] = true
		}
		for _, out := range outputs {
			loc := AttrNode{out, 0}
			for i := 0; i < arities[ev]; i++ {
				if keySet[i] {
					continue
				}
				if g.Connected(AttrNode{ev, i}, loc) {
					return fmt.Errorf(
						"analysis: program not compressible with the Advanced scheme: "+
							"output location %s:0 depends on non-key event attribute %s:%d, "+
							"so outputs of one equivalence class may land on different nodes",
						out, ev, i)
				}
			}
		}
	}
	return nil
}
