package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the dependency graph in Graphviz format, in the style of
// Figure 17: attribute vertices, solid joinFAttr edges, and dashed edges
// from event attributes to the slow-changing attributes they join with.
// Equivalence-key attributes are drawn with a double border.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("graph dependency {\n")
	b.WriteString("  node [shape=ellipse];\n")

	keys := make(map[AttrNode]bool)
	ev := g.prog.InputEvent()
	for _, i := range g.EquivalenceKeys() {
		keys[AttrNode{ev, i}] = true
	}

	for _, n := range g.Nodes() {
		attrs := []string{fmt.Sprintf("label=%q", n.String())}
		if keys[n] {
			attrs = append(attrs, "peripheries=2")
		}
		if g.slowJoin[n] {
			attrs = append(attrs, "style=bold")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.String(), strings.Join(attrs, ", "))
	}

	// joinFAttr edges, each once.
	type edge struct{ a, b string }
	var edges []edge
	for a, nbrs := range g.adj {
		for c := range nbrs {
			if a.String() < c.String() {
				edges = append(edges, edge{a.String(), c.String()})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -- %q;\n", e.a, e.b)
	}

	// Slow-join justification edges, dashed.
	var snodes []AttrNode
	for n := range g.slowEdges {
		snodes = append(snodes, n)
	}
	sort.Slice(snodes, func(i, j int) bool { return snodes[i].String() < snodes[j].String() })
	for _, n := range snodes {
		seen := make(map[AttrNode]bool)
		for _, s := range g.slowEdges[n] {
			if seen[s] {
				continue
			}
			seen[s] = true
			fmt.Fprintf(&b, "  %q -- %q [style=dashed];\n", n.String(), s.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
