package analysis

import (
	"strings"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
)

func TestCheckAdvancedApplicableAccepts(t *testing.T) {
	for _, prog := range []*ndlog.Program{
		apps.Forwarding(), apps.DNS(), apps.ARP(), apps.DHCP(), apps.BGP(), apps.Gossip(),
	} {
		if err := CheckAdvancedApplicable(prog); err != nil {
			t.Errorf("%s rejected: %v", prog.Name, err)
		}
	}
}

func TestCheckAdvancedApplicableRejectsFreeOutputLocation(t *testing.T) {
	// H is not a key (no slow joins, no constraints): outputs of one class
	// can land on different nodes.
	prog := ndlog.MustParse(`r1 out(@H, X) :- e(@L, X, H).`)
	err := CheckAdvancedApplicable(prog)
	if err == nil {
		t.Fatal("unsafe program accepted")
	}
	if !strings.Contains(err.Error(), "out:0") || !strings.Contains(err.Error(), "e:2") {
		t.Errorf("error lacks diagnosis: %v", err)
	}
}

func TestCheckAdvancedApplicableAcceptsKeyedOutputLocation(t *testing.T) {
	// Here H joins a slow table, so it is a key and the program is safe.
	prog := ndlog.MustParse(`r1 out(@H, X) :- e(@L, X, H), hosts(@L, H).`)
	if err := CheckAdvancedApplicable(prog); err != nil {
		t.Errorf("safe program rejected: %v", err)
	}
}

func TestCheckAdvancedApplicableAcceptsSlowDerivedLocation(t *testing.T) {
	// The output location comes from a slow-changing tuple, not the event:
	// identical within a class by construction.
	prog := ndlog.MustParse(`r1 out(@R, X) :- e(@L, X), gw(@L, R).`)
	if err := CheckAdvancedApplicable(prog); err != nil {
		t.Errorf("slow-derived location rejected: %v", err)
	}
}

func TestCheckAdvancedApplicableChainedFlow(t *testing.T) {
	// The unsafe flow can cross rules: H flows through mid to out's
	// location.
	prog := ndlog.MustParse(`
r1 mid(@L, X, H) :- e(@L, X, H).
r2 out(@H, X)    :- mid(@L, X, H).
`)
	if err := CheckAdvancedApplicable(prog); err == nil {
		t.Error("chained unsafe flow accepted")
	}
}
