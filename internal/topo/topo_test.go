package topo

import (
	"testing"
	"time"

	"provcompress/internal/types"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddNode("a")
	g.AddNode("a") // idempotent
	if err := g.AddLink("a", "b", time.Millisecond, 1000); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink("a", "b", time.Millisecond, 1000); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := g.AddLink("b", "a", time.Millisecond, 1000); err == nil {
		t.Error("reverse duplicate link accepted")
	}
	if err := g.AddLink("a", "a", time.Millisecond, 1000); err == nil {
		t.Error("self link accepted")
	}
	if g.NumNodes() != 2 || len(g.Links()) != 1 {
		t.Errorf("nodes = %d, links = %d", g.NumNodes(), len(g.Links()))
	}
	if !g.HasNode("a") || g.HasNode("zz") {
		t.Error("HasNode wrong")
	}
	l, ok := g.FindLink("b", "a")
	if !ok || l.Latency != time.Millisecond {
		t.Errorf("FindLink = %v, %v", l, ok)
	}
	if ns := g.Neighbors("a"); len(ns) != 1 || ns[0] != "b" {
		t.Errorf("Neighbors(a) = %v", ns)
	}
}

func TestConnected(t *testing.T) {
	g := Line(5, "n")
	if !g.Connected() {
		t.Error("line should be connected")
	}
	g.AddNode("island")
	if g.Connected() {
		t.Error("graph with isolated node reported connected")
	}
	if !NewGraph().Connected() {
		t.Error("empty graph should count as connected")
	}
}

func TestHopStatsLine(t *testing.T) {
	g := Line(5, "n")
	d, mean := g.HopStats()
	if d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
	// Sum over ordered pairs of |i-j| for 0..4 is 40; pairs = 20; mean = 2.
	if mean != 2.0 {
		t.Errorf("mean = %v, want 2.0", mean)
	}
}

func TestShortestPathsLine(t *testing.T) {
	g := Line(4, "n")
	r := g.ShortestPaths()
	if next, ok := r.NextHop("n0", "n3"); !ok || next != "n1" {
		t.Errorf("NextHop(n0, n3) = %v, %v", next, ok)
	}
	path := r.Path("n0", "n3")
	want := []types.NodeAddr{"n0", "n1", "n2", "n3"}
	if len(path) != len(want) {
		t.Fatalf("Path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("Path = %v, want %v", path, want)
		}
	}
	if r.Hops("n0", "n3") != 3 {
		t.Errorf("Hops = %d, want 3", r.Hops("n0", "n3"))
	}
	if p := r.Path("n0", "n0"); len(p) != 1 || p[0] != "n0" {
		t.Errorf("Path to self = %v", p)
	}
	if p := r.Path("n0", "missing"); p != nil {
		t.Errorf("Path to missing node = %v", p)
	}
}

func TestShortestPathsPrefersLowLatency(t *testing.T) {
	// Triangle with one slow direct edge and a fast two-hop detour.
	g := NewGraph()
	g.MustAddLink("a", "b", 100*time.Millisecond, 1000)
	g.MustAddLink("a", "c", 10*time.Millisecond, 1000)
	g.MustAddLink("c", "b", 10*time.Millisecond, 1000)
	r := g.ShortestPaths()
	if next, _ := r.NextHop("a", "b"); next != "c" {
		t.Errorf("NextHop(a, b) = %v, want detour via c", next)
	}
}

func TestRouteTuples(t *testing.T) {
	g := Line(3, "n")
	tuples := g.ShortestPaths().RouteTuples()
	// 3 nodes, each with 2 destinations = 6 tuples.
	if len(tuples) != 6 {
		t.Fatalf("RouteTuples len = %d, want 6", len(tuples))
	}
	found := false
	for _, tp := range tuples {
		if tp.Rel != "route" || tp.Arity() != 3 {
			t.Fatalf("bad tuple %v", tp)
		}
		if tp.Args[0].AsString() == "n0" && tp.Args[1].AsString() == "n2" && tp.Args[2].AsString() == "n1" {
			found = true
		}
	}
	if !found {
		t.Error("route(@n0, n2, n1) missing")
	}
	// Deterministic ordering.
	again := g.ShortestPaths().RouteTuples()
	for i := range tuples {
		if !tuples[i].Equal(again[i]) {
			t.Fatal("RouteTuples not deterministic")
		}
	}
}

func TestGenTransitStub(t *testing.T) {
	ts := GenTransitStub(DefaultTransitStub())
	g := ts.Graph
	if g.NumNodes() != 100 {
		t.Errorf("nodes = %d, want 100", g.NumNodes())
	}
	if len(ts.Transit) != 4 || len(ts.Stubs) != 96 {
		t.Errorf("transit = %d, stubs = %d", len(ts.Transit), len(ts.Stubs))
	}
	if !g.Connected() {
		t.Fatal("transit-stub graph not connected")
	}
	d, mean := g.HopStats()
	if d < 8 || d > 16 {
		t.Errorf("hop diameter = %d, want near the paper's 12", d)
	}
	if mean < 4.0 || mean > 7.5 {
		t.Errorf("mean hop distance = %v, want near the paper's 5.3", mean)
	}
	// Link classes respected.
	for _, l := range g.Links() {
		switch {
		case l.Latency == TransitTransitLatency:
			if l.Bandwidth != TransitTransitBandwidth {
				t.Errorf("transit link with bandwidth %d", l.Bandwidth)
			}
		case l.Latency == TransitStubLatency:
			if l.Bandwidth != TransitStubBandwidth {
				t.Errorf("uplink with bandwidth %d", l.Bandwidth)
			}
		case l.Latency == StubStubLatency:
			if l.Bandwidth != StubStubBandwidth {
				t.Errorf("stub link with bandwidth %d", l.Bandwidth)
			}
		default:
			t.Errorf("unexpected link class %v", l)
		}
	}
	// Determinism.
	again := GenTransitStub(DefaultTransitStub())
	if again.Graph.NumNodes() != g.NumNodes() || len(again.Graph.Links()) != len(g.Links()) {
		t.Error("generator not deterministic")
	}
}

func TestGenDNSTree(t *testing.T) {
	tree := GenDNSTree(DefaultDNSTree())
	if tree.Graph.NumNodes() != 100 {
		t.Errorf("servers = %d, want 100", tree.Graph.NumNodes())
	}
	if got := tree.MaxObservedDepth(); got != 27 {
		t.Errorf("max depth = %d, want 27", got)
	}
	if !tree.Graph.Connected() {
		t.Fatal("dns tree not connected")
	}
	// It is a tree: exactly n-1 links.
	if len(tree.Graph.Links()) != 99 {
		t.Errorf("links = %d, want 99", len(tree.Graph.Links()))
	}
	// Domains are consistent: each child's domain is a fresh label under the
	// parent's domain.
	for _, s := range tree.Servers {
		if s == tree.Root {
			continue
		}
		p := tree.Parent[s]
		pd, sd := tree.Domain[p], tree.Domain[s]
		if pd == "" {
			if sd == "" {
				t.Errorf("child %s of root has empty domain", s)
			}
		} else if len(sd) <= len(pd) || sd[len(sd)-len(pd):] != pd {
			t.Errorf("domain %q of %s not under parent domain %q", sd, s, pd)
		}
	}
}

func TestDNSTreeTuples(t *testing.T) {
	tree := GenDNSTree(DNSTreeConfig{NumServers: 10, MaxDepth: 4, Seed: 2})
	clients := tree.AttachClients(2)
	if len(clients) != 2 || !tree.Graph.HasNode(clients[0]) {
		t.Fatalf("clients = %v", clients)
	}
	nst := tree.NameServerTuples(clients)
	var nsCount, rootCount int
	for _, tp := range nst {
		switch tp.Rel {
		case "nameServer":
			nsCount++
		case "rootServer":
			rootCount++
			if tp.Args[1].AsString() != string(tree.Root) {
				t.Errorf("rootServer points at %v", tp.Args[1])
			}
		default:
			t.Errorf("unexpected relation %s", tp.Rel)
		}
	}
	if nsCount != 9 {
		t.Errorf("nameServer tuples = %d, want 9 (one per non-root server)", nsCount)
	}
	if rootCount != 2 {
		t.Errorf("rootServer tuples = %d, want 2", rootCount)
	}

	urls := tree.PickURLs(5)
	if len(urls) != 5 {
		t.Fatalf("urls = %v", urls)
	}
	seen := make(map[string]bool)
	for _, u := range urls {
		if seen[u.URL] {
			t.Errorf("duplicate URL %s", u.URL)
		}
		seen[u.URL] = true
		if u.URL != "www."+tree.Domain[u.Server] {
			t.Errorf("URL %s does not match server domain %s", u.URL, tree.Domain[u.Server])
		}
	}
	art := AddressRecordTuples(urls)
	if len(art) != 5 || art[0].Rel != "addressRecord" {
		t.Errorf("address records = %v", art)
	}

	// Asking for more URLs than servers caps at the server count.
	if got := tree.PickURLs(500); len(got) != 9 {
		t.Errorf("PickURLs(500) = %d records, want 9", len(got))
	}
}

func TestFig2AndFig7(t *testing.T) {
	g := Fig2()
	if g.NumNodes() != 3 || len(g.Links()) != 2 {
		t.Errorf("Fig2: %d nodes, %d links", g.NumNodes(), len(g.Links()))
	}
	rts := Fig2Routes()
	if len(rts) != 2 || rts[0].Rel != "route" {
		t.Errorf("Fig2Routes = %v", rts)
	}
	g7 := Fig7()
	if g7.NumNodes() != 4 || len(g7.Links()) != 4 {
		t.Errorf("Fig7: %d nodes, %d links", g7.NumNodes(), len(g7.Links()))
	}
	if _, ok := g7.FindLink("n1", "n4"); !ok {
		t.Error("Fig7 missing n1 -- n4")
	}
}

func TestStarAndRandom(t *testing.T) {
	s := Star(6, "x")
	if s.NumNodes() != 6 || len(s.Links()) != 5 {
		t.Errorf("Star: %d nodes, %d links", s.NumNodes(), len(s.Links()))
	}
	if len(s.Neighbors("x0")) != 5 {
		t.Errorf("hub degree = %d", len(s.Neighbors("x0")))
	}
	r := Random(20, 5, 3, "r")
	if r.NumNodes() != 20 || !r.Connected() {
		t.Errorf("Random: %d nodes, connected = %v", r.NumNodes(), r.Connected())
	}
	if len(r.Links()) < 19 {
		t.Errorf("Random links = %d, want >= 19", len(r.Links()))
	}
}
