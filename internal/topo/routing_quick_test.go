package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"provcompress/internal/types"
)

// TestShortestPathsPropertyRandomGraphs drives Dijkstra over random
// connected graphs with testing/quick: every returned path must be a real
// walk over existing links ending at the destination, and the hop counts
// must match the path lengths.
func TestShortestPathsPropertyRandomGraphs(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		g := Random(n, r.Intn(10), seed, "v")
		routes := g.ShortestPaths()
		nodes := g.Nodes()
		for _, src := range nodes {
			for _, dst := range nodes {
				if src == dst {
					continue
				}
				path := routes.Path(src, dst)
				if path == nil {
					t.Logf("seed %d: no path %s -> %s in connected graph", seed, src, dst)
					return false
				}
				if path[0] != src || path[len(path)-1] != dst {
					t.Logf("seed %d: path endpoints wrong: %v", seed, path)
					return false
				}
				for i := 1; i < len(path); i++ {
					if _, ok := g.FindLink(path[i-1], path[i]); !ok {
						t.Logf("seed %d: non-adjacent hop %s -> %s", seed, path[i-1], path[i])
						return false
					}
				}
				if routes.Hops(src, dst) != len(path)-1 {
					t.Logf("seed %d: hops %d != path length %d", seed, routes.Hops(src, dst), len(path)-1)
					return false
				}
				// The next hop is the second node of the path.
				if next, ok := routes.NextHop(src, dst); !ok || next != path[1] {
					t.Logf("seed %d: NextHop %v != %v", seed, next, path[1])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestShortestPathsOptimality checks, on random weighted graphs, that the
// chosen path's total latency is minimal, by comparing against a
// brute-force Bellman-Ford relaxation.
func TestShortestPathsOptimality(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g := NewGraph()
		// Random connected graph with random latencies.
		var nodes []string
		for i := 0; i < n; i++ {
			nodes = append(nodes, string(rune('a'+i)))
			g.AddNode(types.NodeAddr(nodes[i]))
			if i > 0 {
				g.MustAddLink(types.NodeAddr(nodes[r.Intn(i)]), types.NodeAddr(nodes[i]),
					time.Duration(1+r.Intn(20))*time.Millisecond, 1_000_000)
			}
		}
		for e := 0; e < n; e++ {
			a, b := nodes[r.Intn(n)], nodes[r.Intn(n)]
			if a == b {
				continue
			}
			if _, ok := g.FindLink(types.NodeAddr(a), types.NodeAddr(b)); ok {
				continue
			}
			g.MustAddLink(types.NodeAddr(a), types.NodeAddr(b),
				time.Duration(1+r.Intn(20))*time.Millisecond, 1_000_000)
		}

		routes := g.ShortestPaths()

		// Bellman-Ford ground truth.
		const inf = time.Hour
		for _, src := range g.Nodes() {
			dist := make(map[types.NodeAddr]time.Duration)
			for _, v := range g.Nodes() {
				dist[v] = inf
			}
			dist[src] = 0
			for i := 0; i < g.NumNodes(); i++ {
				for _, l := range g.Links() {
					if dist[l.A]+l.Latency < dist[l.B] {
						dist[l.B] = dist[l.A] + l.Latency
					}
					if dist[l.B]+l.Latency < dist[l.A] {
						dist[l.A] = dist[l.B] + l.Latency
					}
				}
			}
			for _, dst := range g.Nodes() {
				if src == dst {
					continue
				}
				path := routes.Path(src, dst)
				if path == nil {
					t.Fatalf("seed %d: no path %s -> %s", seed, src, dst)
				}
				var total time.Duration
				for i := 1; i < len(path); i++ {
					l, _ := g.FindLink(path[i-1], path[i])
					total += l.Latency
				}
				if total != dist[dst] {
					t.Errorf("seed %d: path %s -> %s costs %v, optimum %v",
						seed, src, dst, total, dist[dst])
				}
			}
		}
	}
}
