package topo

import (
	"container/heap"
	"sort"
	"time"

	"provcompress/internal/types"
)

// Routes holds shortest-path next-hop tables for every ordered node pair,
// the output of the route precomputation step of Section 6.1 ("we
// pre-computed the shortest path between s and d ... the routes are stored
// in the route tables at each node").
type Routes struct {
	next map[types.NodeAddr]map[types.NodeAddr]types.NodeAddr
	hops map[types.NodeAddr]map[types.NodeAddr]int
}

// ShortestPaths runs Dijkstra from every node with link latency as the edge
// cost (ties broken by hop count, then lexicographic next hop, making the
// result deterministic).
func (g *Graph) ShortestPaths() *Routes {
	r := &Routes{
		next: make(map[types.NodeAddr]map[types.NodeAddr]types.NodeAddr, len(g.nodes)),
		hops: make(map[types.NodeAddr]map[types.NodeAddr]int, len(g.nodes)),
	}
	for _, src := range g.nodes {
		r.next[src], r.hops[src] = g.dijkstra(src)
	}
	return r
}

type pqItem struct {
	node types.NodeAddr
	cost time.Duration
	hops int
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	if q[i].hops != q[j].hops {
		return q[i].hops < q[j].hops
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstra returns, for one source, the first hop towards every destination
// and the hop count of the chosen path.
func (g *Graph) dijkstra(src types.NodeAddr) (map[types.NodeAddr]types.NodeAddr, map[types.NodeAddr]int) {
	type state struct {
		cost    time.Duration
		hops    int
		prev    types.NodeAddr
		settled bool
	}
	states := map[types.NodeAddr]*state{src: {}}
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		st := states[it.node]
		if st.settled {
			continue
		}
		st.settled = true
		for _, m := range g.Neighbors(it.node) {
			l, _ := g.FindLink(it.node, m)
			nc := st.cost + l.Latency
			nh := st.hops + 1
			ms, ok := states[m]
			if !ok {
				states[m] = &state{cost: nc, hops: nh, prev: it.node}
				heap.Push(q, pqItem{node: m, cost: nc, hops: nh})
				continue
			}
			if ms.settled {
				continue
			}
			if nc < ms.cost || nc == ms.cost && nh < ms.hops {
				ms.cost, ms.hops, ms.prev = nc, nh, it.node
				heap.Push(q, pqItem{node: m, cost: nc, hops: nh})
			}
		}
	}
	next := make(map[types.NodeAddr]types.NodeAddr, len(states)-1)
	hops := make(map[types.NodeAddr]int, len(states)-1)
	for dst, st := range states {
		if dst == src {
			continue
		}
		// Walk back to the neighbor of src.
		hop := dst
		for states[hop].prev != src {
			hop = states[hop].prev
		}
		next[dst] = hop
		hops[dst] = st.hops
	}
	return next, hops
}

// NextHop returns the first hop from src towards dst.
func (r *Routes) NextHop(src, dst types.NodeAddr) (types.NodeAddr, bool) {
	n, ok := r.next[src][dst]
	return n, ok
}

// Hops returns the path length in hops from src to dst (0 if src == dst or
// unreachable; use NextHop to distinguish).
func (r *Routes) Hops(src, dst types.NodeAddr) int { return r.hops[src][dst] }

// Path returns the node sequence from src to dst inclusive, or nil if
// unreachable.
func (r *Routes) Path(src, dst types.NodeAddr) []types.NodeAddr {
	if src == dst {
		return []types.NodeAddr{src}
	}
	path := []types.NodeAddr{src}
	cur := src
	for cur != dst {
		n, ok := r.next[cur][dst]
		if !ok {
			return nil
		}
		path = append(path, n)
		cur = n
	}
	return path
}

// RouteTuples materializes the next-hop tables as route(@src, dst, next)
// base tuples for the forwarding application of Figure 1.
func (r *Routes) RouteTuples() []types.Tuple {
	var out []types.Tuple
	srcs := make([]types.NodeAddr, 0, len(r.next))
	for s := range r.next {
		srcs = append(srcs, s)
	}
	sortAddrs(srcs)
	for _, s := range srcs {
		dsts := make([]types.NodeAddr, 0, len(r.next[s]))
		for d := range r.next[s] {
			dsts = append(dsts, d)
		}
		sortAddrs(dsts)
		for _, d := range dsts {
			out = append(out, types.NewTuple("route",
				types.String(string(s)), types.String(string(d)), types.String(string(r.next[s][d]))))
		}
	}
	return out
}

func sortAddrs(xs []types.NodeAddr) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
