// Package topo models network topologies: the undirected graph of
// Section 3's system model, generators for the evaluation topologies (the
// GT-ITM-style transit-stub graph of Section 6.1 and the DNS nameserver
// tree of Section 6.2), and shortest-path routing used to precompute the
// route tables that the forwarding application consumes.
package topo

import (
	"fmt"
	"sort"
	"time"

	"provcompress/internal/types"
)

// Link is an undirected edge with ns-3-style parameters: propagation
// latency and bandwidth in bits per second.
type Link struct {
	A, B      types.NodeAddr
	Latency   time.Duration
	Bandwidth int64 // bits per second
}

// Standard link classes of the paper's transit-stub topology (Section 6.1).
const (
	TransitTransitLatency = 50 * time.Millisecond
	TransitStubLatency    = 10 * time.Millisecond
	StubStubLatency       = 2 * time.Millisecond

	TransitTransitBandwidth = 1_000_000_000 // 1 Gbps
	TransitStubBandwidth    = 100_000_000   // 100 Mbps
	StubStubBandwidth       = 50_000_000    // 50 Mbps
)

// Graph is an undirected multigraph-free network topology.
type Graph struct {
	nodes []types.NodeAddr
	index map[types.NodeAddr]int
	links []Link
	adj   map[types.NodeAddr][]int // node -> indexes into links
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{
		index: make(map[types.NodeAddr]int),
		adj:   make(map[types.NodeAddr][]int),
	}
}

// AddNode adds a node if not already present.
func (g *Graph) AddNode(n types.NodeAddr) {
	if _, ok := g.index[n]; ok {
		return
	}
	g.index[n] = len(g.nodes)
	g.nodes = append(g.nodes, n)
}

// AddLink connects a and b (adding the nodes if needed). Duplicate and
// self links are rejected.
func (g *Graph) AddLink(a, b types.NodeAddr, latency time.Duration, bandwidth int64) error {
	if a == b {
		return fmt.Errorf("topo: self link at %s", a)
	}
	if _, ok := g.FindLink(a, b); ok {
		return fmt.Errorf("topo: duplicate link %s -- %s", a, b)
	}
	g.AddNode(a)
	g.AddNode(b)
	g.links = append(g.links, Link{A: a, B: b, Latency: latency, Bandwidth: bandwidth})
	idx := len(g.links) - 1
	g.adj[a] = append(g.adj[a], idx)
	g.adj[b] = append(g.adj[b], idx)
	return nil
}

// MustAddLink is AddLink that panics on error; for generators.
func (g *Graph) MustAddLink(a, b types.NodeAddr, latency time.Duration, bandwidth int64) {
	if err := g.AddLink(a, b, latency, bandwidth); err != nil {
		panic(err)
	}
}

// HasNode reports whether n is in the topology.
func (g *Graph) HasNode(n types.NodeAddr) bool {
	_, ok := g.index[n]
	return ok
}

// Nodes returns the nodes in insertion order. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Nodes() []types.NodeAddr { return g.nodes }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Links returns all links. The returned slice is shared; callers must not
// modify it.
func (g *Graph) Links() []Link { return g.links }

// FindLink returns the link between a and b, if any.
func (g *Graph) FindLink(a, b types.NodeAddr) (Link, bool) {
	for _, idx := range g.adj[a] {
		l := g.links[idx]
		if l.A == a && l.B == b || l.A == b && l.B == a {
			return l, true
		}
	}
	return Link{}, false
}

// Neighbors returns the nodes adjacent to n, sorted for determinism.
func (g *Graph) Neighbors(n types.NodeAddr) []types.NodeAddr {
	var out []types.NodeAddr
	for _, idx := range g.adj[n] {
		l := g.links[idx]
		if l.A == n {
			out = append(out, l.B)
		} else {
			out = append(out, l.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connected reports whether the topology is a single connected component.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make(map[types.NodeAddr]bool, len(g.nodes))
	stack := []types.NodeAddr{g.nodes[0]}
	seen[g.nodes[0]] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range g.Neighbors(n) {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// HopStats returns the hop-count diameter and the mean hop distance over
// all ordered node pairs, computed by BFS from every node.
func (g *Graph) HopStats() (diameter int, mean float64) {
	var total, pairs int
	for _, src := range g.nodes {
		dist := g.bfs(src)
		for _, d := range dist {
			if d > diameter {
				diameter = d
			}
			total += d
			pairs++
		}
	}
	if pairs > 0 {
		mean = float64(total) / float64(pairs)
	}
	return diameter, mean
}

// WithUniformLinks returns a copy of the topology in which every link has
// the given latency and bandwidth. The query-latency experiment uses it to
// emulate the paper's physical testbed (Section 6.1.3): the logical
// transit-stub topology deployed over a LAN of real machines, where
// per-hop latency is uniform and small.
func (g *Graph) WithUniformLinks(latency time.Duration, bandwidth int64) *Graph {
	out := NewGraph()
	for _, n := range g.nodes {
		out.AddNode(n)
	}
	for _, l := range g.links {
		out.MustAddLink(l.A, l.B, latency, bandwidth)
	}
	return out
}

// bfs returns hop distances from src to every other reachable node.
func (g *Graph) bfs(src types.NodeAddr) map[types.NodeAddr]int {
	dist := map[types.NodeAddr]int{src: 0}
	queue := []types.NodeAddr{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.Neighbors(n) {
			if _, ok := dist[m]; !ok {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	delete(dist, src)
	return dist
}
