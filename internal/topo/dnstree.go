package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"provcompress/internal/types"
)

// Nameserver link parameters (parent-child delegation links) and client
// uplinks for the DNS experiments.
const (
	NSLinkLatency       = 10 * time.Millisecond
	NSLinkBandwidth     = 100_000_000
	ClientLinkLatency   = 5 * time.Millisecond
	ClientLinkBandwidth = 100_000_000
)

// DNSTreeConfig parameterizes the synthetic nameserver hierarchy of
// Section 6.2.
type DNSTreeConfig struct {
	NumServers int // total nameservers including the root
	MaxDepth   int // deepest delegation chain (paper: 27)
	Seed       int64
}

// DefaultDNSTree reproduces the evaluation setup: 100 nameservers with a
// maximum tree depth of 27.
func DefaultDNSTree() DNSTreeConfig {
	return DNSTreeConfig{NumServers: 100, MaxDepth: 27, Seed: 1}
}

// DNSTree is a synthetic DNS delegation hierarchy: a tree of nameservers,
// each authoritative for a domain, with parent-child delegation links.
type DNSTree struct {
	Graph    *Graph
	Root     types.NodeAddr
	Servers  []types.NodeAddr
	Parent   map[types.NodeAddr]types.NodeAddr
	Children map[types.NodeAddr][]types.NodeAddr
	Domain   map[types.NodeAddr]string // "" for the root
	Depth    map[types.NodeAddr]int
}

// URLRecord associates a resolvable URL with the authoritative server that
// holds its address record.
type URLRecord struct {
	URL    string
	Server types.NodeAddr
	IP     string
}

// GenDNSTree builds the hierarchy: first a spine of MaxDepth servers so the
// deepest chain has exactly the configured depth (when NumServers allows),
// then the remaining servers attach to random existing servers above
// MaxDepth-1. Each child is delegated a fresh label under its parent's
// domain.
func GenDNSTree(cfg DNSTreeConfig) *DNSTree {
	if cfg.NumServers < 1 || cfg.MaxDepth < 1 {
		panic(fmt.Sprintf("topo: bad dns config %+v", cfg))
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	t := &DNSTree{
		Graph:    NewGraph(),
		Parent:   make(map[types.NodeAddr]types.NodeAddr),
		Children: make(map[types.NodeAddr][]types.NodeAddr),
		Domain:   make(map[types.NodeAddr]string),
		Depth:    make(map[types.NodeAddr]int),
	}
	addr := func(i int) types.NodeAddr { return types.NodeAddr(fmt.Sprintf("ns%d", i)) }

	t.Root = addr(0)
	t.Graph.AddNode(t.Root)
	t.Servers = append(t.Servers, t.Root)
	t.Domain[t.Root] = ""
	t.Depth[t.Root] = 0

	attach := func(i int, parent types.NodeAddr) types.NodeAddr {
		n := addr(i)
		t.Graph.MustAddLink(parent, n, NSLinkLatency, NSLinkBandwidth)
		t.Servers = append(t.Servers, n)
		t.Parent[n] = parent
		t.Children[parent] = append(t.Children[parent], n)
		t.Depth[n] = t.Depth[parent] + 1
		label := fmt.Sprintf("d%d", i)
		if t.Domain[parent] == "" {
			t.Domain[n] = label
		} else {
			t.Domain[n] = label + "." + t.Domain[parent]
		}
		return n
	}

	// Spine: one chain reaching MaxDepth.
	spineLen := cfg.MaxDepth
	if spineLen > cfg.NumServers-1 {
		spineLen = cfg.NumServers - 1
	}
	prev := t.Root
	i := 1
	for ; i <= spineLen; i++ {
		prev = attach(i, prev)
	}
	// Remaining servers attach to random servers with spare depth.
	for ; i < cfg.NumServers; i++ {
		for {
			parent := t.Servers[r.Intn(len(t.Servers))]
			if t.Depth[parent] < cfg.MaxDepth {
				attach(i, parent)
				break
			}
		}
	}
	return t
}

// MaxObservedDepth returns the deepest server depth in the tree.
func (t *DNSTree) MaxObservedDepth() int {
	max := 0
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	return max
}

// NameServerTuples materializes the delegations as nameServer(@parent,
// childDomain, child) base tuples for rule r2 of the DNS program, plus
// rootServer(@host, root) entries for every client host passed in.
func (t *DNSTree) NameServerTuples(clients []types.NodeAddr) []types.Tuple {
	var out []types.Tuple
	srv := append([]types.NodeAddr(nil), t.Servers...)
	sort.Slice(srv, func(i, j int) bool { return srv[i] < srv[j] })
	for _, p := range srv {
		kids := append([]types.NodeAddr(nil), t.Children[p]...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, c := range kids {
			out = append(out, types.NewTuple("nameServer",
				types.String(string(p)), types.String(t.Domain[c]), types.String(string(c))))
		}
	}
	for _, h := range clients {
		out = append(out, types.NewTuple("rootServer",
			types.String(string(h)), types.String(string(t.Root))))
	}
	return out
}

// PickURLs deterministically selects n distinct resolvable URLs, spread
// over the non-root servers round-robin by depth so the workload mixes
// shallow and deep resolutions (the paper uses 38 distinct URLs). Each URL
// is www.<server domain> and resolves at that server.
func (t *DNSTree) PickURLs(n int) []URLRecord {
	nonRoot := make([]types.NodeAddr, 0, len(t.Servers)-1)
	for _, s := range t.Servers {
		if s != t.Root {
			nonRoot = append(nonRoot, s)
		}
	}
	// Sort by (depth, name) then stride through so depths interleave.
	sort.Slice(nonRoot, func(i, j int) bool {
		if t.Depth[nonRoot[i]] != t.Depth[nonRoot[j]] {
			return t.Depth[nonRoot[i]] < t.Depth[nonRoot[j]]
		}
		return nonRoot[i] < nonRoot[j]
	})
	if n > len(nonRoot) {
		n = len(nonRoot)
	}
	out := make([]URLRecord, 0, n)
	if n == 0 {
		return out
	}
	stride := len(nonRoot) / n
	if stride == 0 {
		stride = 1
	}
	for i := 0; len(out) < n; i++ {
		s := nonRoot[(i*stride)%len(nonRoot)]
		out = append(out, URLRecord{
			URL:    "www." + t.Domain[s],
			Server: s,
			IP:     fmt.Sprintf("10.%d.%d.%d", (i/250)%250, i%250, 1),
		})
	}
	return out
}

// AddressRecordTuples materializes addressRecord(@server, url, ip) base
// tuples for rule r3 of the DNS program.
func AddressRecordTuples(urls []URLRecord) []types.Tuple {
	out := make([]types.Tuple, 0, len(urls))
	for _, u := range urls {
		out = append(out, types.NewTuple("addressRecord",
			types.String(string(u.Server)), types.String(u.URL), types.String(u.IP)))
	}
	return out
}

// AttachClients adds client hosts linked to the root nameserver and returns
// their addresses.
func (t *DNSTree) AttachClients(n int) []types.NodeAddr {
	clients := make([]types.NodeAddr, n)
	for i := range clients {
		clients[i] = types.NodeAddr(fmt.Sprintf("host%d", i))
		t.Graph.MustAddLink(clients[i], t.Root, ClientLinkLatency, ClientLinkBandwidth)
	}
	return clients
}
