package topo

import (
	"fmt"
	"math/rand"

	"provcompress/internal/types"
)

// TransitStubConfig parameterizes the GT-ITM-style transit-stub generator.
// The zero value is not useful; start from DefaultTransitStub.
type TransitStubConfig struct {
	NumTransit        int   // transit (backbone) nodes, connected in a ring
	DomainsPerTransit int   // stub domains hanging off each transit node
	NodesPerDomain    int   // stub nodes per stub domain
	Seed              int64 // deterministic stub-domain wiring
}

// DefaultTransitStub reproduces the evaluation topology of Section 6.1:
// 4 transit nodes, 3 stub domains each, 8 stub nodes per domain — 100 nodes
// in total — with the paper's three link classes.
func DefaultTransitStub() TransitStubConfig {
	return TransitStubConfig{
		NumTransit:        4,
		DomainsPerTransit: 3,
		NodesPerDomain:    8,
		Seed:              1,
	}
}

// TransitStub holds the generated topology plus the node classification the
// experiments need ("nodes where traffic only originates or terminates").
type TransitStub struct {
	Graph   *Graph
	Transit []types.NodeAddr
	Stubs   []types.NodeAddr
}

// GenTransitStub builds a transit-stub topology:
//
//   - transit nodes t0..t(k-1) form a ring (plus all links for k <= 3) with
//     transit-transit link parameters (50 ms, 1 Gbps);
//   - each transit node connects to DomainsPerTransit stub-domain gateways
//     with transit-stub parameters (10 ms, 100 Mbps);
//   - each stub domain is a random near-tree of NodesPerDomain nodes with
//     one extra cross edge, using stub-stub parameters (2 ms, 50 Mbps).
//
// With the default configuration the hop diameter lands near the paper's 12
// and the mean hop distance near 5.3.
func GenTransitStub(cfg TransitStubConfig) *TransitStub {
	if cfg.NumTransit < 1 || cfg.DomainsPerTransit < 1 || cfg.NodesPerDomain < 1 {
		panic(fmt.Sprintf("topo: bad transit-stub config %+v", cfg))
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()
	ts := &TransitStub{Graph: g}

	for i := 0; i < cfg.NumTransit; i++ {
		n := types.NodeAddr(fmt.Sprintf("t%d", i))
		g.AddNode(n)
		ts.Transit = append(ts.Transit, n)
	}
	for i := 0; i < cfg.NumTransit; i++ {
		j := (i + 1) % cfg.NumTransit
		if i != j {
			if _, ok := g.FindLink(ts.Transit[i], ts.Transit[j]); !ok {
				g.MustAddLink(ts.Transit[i], ts.Transit[j], TransitTransitLatency, TransitTransitBandwidth)
			}
		}
	}

	for t := 0; t < cfg.NumTransit; t++ {
		for d := 0; d < cfg.DomainsPerTransit; d++ {
			nodes := make([]types.NodeAddr, cfg.NodesPerDomain)
			for i := range nodes {
				nodes[i] = types.NodeAddr(fmt.Sprintf("s%d-%d-%d", t, d, i))
				g.AddNode(nodes[i])
				ts.Stubs = append(ts.Stubs, nodes[i])
			}
			// Random near-tree biased towards depth: node i attaches to one
			// of its three most recent predecessors.
			for i := 1; i < len(nodes); i++ {
				lo := i - 3
				if lo < 0 {
					lo = 0
				}
				parent := nodes[lo+r.Intn(i-lo)]
				g.MustAddLink(parent, nodes[i], StubStubLatency, StubStubBandwidth)
			}
			// One extra intra-domain edge for redundancy, as GT-ITM stubs have.
			if len(nodes) >= 4 {
				for tries := 0; tries < 16; tries++ {
					a, b := nodes[r.Intn(len(nodes))], nodes[r.Intn(len(nodes))]
					if a == b {
						continue
					}
					if _, ok := g.FindLink(a, b); ok {
						continue
					}
					g.MustAddLink(a, b, StubStubLatency, StubStubBandwidth)
					break
				}
			}
			// Gateway: the domain's first node uplinks to its transit node.
			g.MustAddLink(ts.Transit[t], nodes[0], TransitStubLatency, TransitStubBandwidth)
		}
	}
	return ts
}
