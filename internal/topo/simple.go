package topo

import (
	"fmt"
	"math/rand"
	"time"

	"provcompress/internal/types"
)

// Default link parameters for the small hand-built topologies.
const (
	SimpleLatency   = 2 * time.Millisecond
	SimpleBandwidth = 50_000_000
)

// Line builds a chain prefix0 -- prefix1 -- ... -- prefix(n-1).
func Line(n int, prefix string) *Graph {
	g := NewGraph()
	var prev types.NodeAddr
	for i := 0; i < n; i++ {
		cur := types.NodeAddr(fmt.Sprintf("%s%d", prefix, i))
		g.AddNode(cur)
		if i > 0 {
			g.MustAddLink(prev, cur, SimpleLatency, SimpleBandwidth)
		}
		prev = cur
	}
	return g
}

// Star builds a hub with n-1 leaves: prefix0 is the hub.
func Star(n int, prefix string) *Graph {
	g := NewGraph()
	hub := types.NodeAddr(prefix + "0")
	g.AddNode(hub)
	for i := 1; i < n; i++ {
		g.MustAddLink(hub, types.NodeAddr(fmt.Sprintf("%s%d", prefix, i)), SimpleLatency, SimpleBandwidth)
	}
	return g
}

// Fig2 builds the running example of the paper's Figure 2: n1 -- n2 -- n3.
// The forwarding route tables of the figure (route(@n1,n3,n2) and
// route(@n2,n3,n3)) are returned by Fig2Routes.
func Fig2() *Graph {
	g := NewGraph()
	g.MustAddLink("n1", "n2", SimpleLatency, SimpleBandwidth)
	g.MustAddLink("n2", "n3", SimpleLatency, SimpleBandwidth)
	return g
}

// Fig2Routes returns the route base tuples of Figure 2, directing n1's and
// n2's traffic for destination n3.
func Fig2Routes() []types.Tuple {
	return []types.Tuple{
		types.NewTuple("route", types.String("n1"), types.String("n3"), types.String("n2")),
		types.NewTuple("route", types.String("n2"), types.String("n3"), types.String("n3")),
	}
}

// Fig7 builds the updated topology of Figure 7: Fig2 plus a new node n4
// connected to both n1 and n3, providing the alternative path n1-n4-n3.
func Fig7() *Graph {
	g := Fig2()
	g.MustAddLink("n1", "n4", SimpleLatency, SimpleBandwidth)
	g.MustAddLink("n4", "n3", SimpleLatency, SimpleBandwidth)
	return g
}

// Random builds a connected random graph: a random spanning tree plus extra
// cross edges.
func Random(n, extraEdges int, seed int64, prefix string) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := NewGraph()
	nodes := make([]types.NodeAddr, n)
	for i := range nodes {
		nodes[i] = types.NodeAddr(fmt.Sprintf("%s%d", prefix, i))
		g.AddNode(nodes[i])
		if i > 0 {
			g.MustAddLink(nodes[r.Intn(i)], nodes[i], SimpleLatency, SimpleBandwidth)
		}
	}
	for e := 0; e < extraEdges; e++ {
		for tries := 0; tries < 32; tries++ {
			a, b := nodes[r.Intn(n)], nodes[r.Intn(n)]
			if a == b {
				continue
			}
			if _, ok := g.FindLink(a, b); ok {
				continue
			}
			g.MustAddLink(a, b, SimpleLatency, SimpleBandwidth)
			break
		}
	}
	return g
}
