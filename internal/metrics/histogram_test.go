package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{0.5, 1, 2}); err != nil {
		t.Fatalf("valid bounds rejected: %v", err)
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: a sample exactly
// on a bound lands in that bound's bucket, a sample just above it lands in
// the next, and samples past the last bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []int64{2, 2, 2, 2} // (<=1): 0.5,1; (<=10): 1.0000001,10; (<=100): 99,100; +Inf: 101,1e9
	if len(got) != len(want) {
		t.Fatalf("bucket count slice length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d count = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 10 + 99 + 100 + 101 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestHistogramQuantile checks the rank arithmetic against a uniform fill:
// 100 samples spread evenly across 0..100 with bounds every 10 should put
// the p50 near 50 and the p99 near 99.
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h, err := NewHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	p50, p95, p99 := h.Summary()
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %g, want ~50", p50)
	}
	if p95 < 90 || p95 > 100 {
		t.Fatalf("p95 = %g, want ~95", p95)
	}
	if p99 < 90 || p99 > 100 {
		t.Fatalf("p99 = %g, want ~99", p99)
	}
	// Interpolation inside one bucket: all mass in (10,20] pins every
	// quantile inside that bucket's range.
	h2, _ := NewHistogram(bounds)
	for i := 0; i < 10; i++ {
		h2.Observe(15)
	}
	for _, p := range []float64{0.01, 0.5, 0.99} {
		q := h2.Quantile(p)
		if q <= 10 || q > 20 {
			t.Fatalf("quantile %g = %g, want within (10,20]", p, q)
		}
	}
	// Overflow mass reports +Inf: the histogram cannot see past its last
	// bound, and clamping to it would understate the tail.
	h3, _ := NewHistogram([]float64{1})
	h3.Observe(50)
	if q := h3.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("overflow quantile = %g, want +Inf", q)
	}
	// Out-of-range p clamps.
	if h.Quantile(-1) > h.Quantile(0) || h.Quantile(2) < h.Quantile(1) {
		t.Fatal("out-of-range p must clamp to [0,1]")
	}
}

// TestHistogramQuantileOverflowHeavy is the regression test for the
// silent overflow clamp: with most of the mass past the last bound,
// every tail quantile must read +Inf, not the last finite bound, while
// quantiles that genuinely land in finite buckets stay finite.
func TestHistogramQuantileOverflowHeavy(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	// 10% finite, 90% overflow — the old clamp reported p50..p99 all as 30.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 90; i++ {
		h.Observe(1e6)
	}
	for _, p := range []float64{0.5, 0.95, 0.99, 1} {
		if q := h.Quantile(p); !math.IsInf(q, 1) {
			t.Fatalf("Quantile(%g) = %g, want +Inf (90%% of mass is overflow)", p, q)
		}
	}
	if q := h.Quantile(0.05); math.IsInf(q, 1) || q <= 0 || q > 1 {
		t.Fatalf("Quantile(0.05) = %g, want finite within (0,1]", q)
	}
	// Summary must propagate the overflow, not mask it.
	if _, p95, p99 := h.Summary(); !math.IsInf(p95, 1) || !math.IsInf(p99, 1) {
		t.Fatalf("Summary tails = %g/%g, want +Inf", p95, p99)
	}
}

// TestHistogramQuantileZero pins p=0 behavior: the minimum-rank sample,
// which must be finite when any finite bucket is occupied and +Inf only
// when every sample overflowed.
func TestHistogramQuantileZero(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(1e9)
	if q := h.Quantile(0); q <= 0 || q > 1 {
		t.Fatalf("Quantile(0) = %g, want within (0,1]", q)
	}
	hAllOver, _ := NewHistogram([]float64{1})
	hAllOver.Observe(99)
	if q := hAllOver.Quantile(0); !math.IsInf(q, 1) {
		t.Fatalf("Quantile(0) with all-overflow mass = %g, want +Inf", q)
	}
	hEmpty, _ := NewHistogram([]float64{1})
	if q := hEmpty.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) on empty histogram = %g, want 0", q)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	cases := []struct{ name, value, want string }{
		{"scheme", "advanced", `scheme="advanced"`},
		{"link", `a"b`, `link="a\"b"`},
		{"link", `a\b`, `link="a\\b"`},
		{"note", "line1\nline2", `note="line1\nline2"`},
		{"bad-name", "v", `bad_name="v"`},
	}
	for _, c := range cases {
		if got := PromLabel(c.name, c.value); got != c.want {
			t.Fatalf("PromLabel(%q, %q) = %q, want %q", c.name, c.value, got, c.want)
		}
	}
	// An escaped label must survive a full sample line round trip: one
	// line, parseable, no stray quotes.
	var b strings.Builder
	WriteCounter(&b, "provd_bytes", PromLabel("link", "n0\"\nn1\\"), 7)
	out := b.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("escaped label produced a multi-line sample:\n%q", out)
	}
	if !strings.Contains(out, `link="n0\"\nn1\\"`) {
		t.Fatalf("escaped label wrong:\n%q", out)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.ObserveDuration(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*each)
	}
	var sum int64
	for _, c := range h.BucketCounts() {
		sum += c
	}
	if sum != workers*each {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*each)
	}
}

func TestWritePrometheusCounters(t *testing.T) {
	c := NewCounters()
	c.Add("dial-errors", 3)
	c.Add("sends", 41)
	var b strings.Builder
	WritePrometheus(&b, c, "provd_transport", `scheme="advanced"`)
	out := b.String()
	for _, want := range []string{
		"provd_transport_dial_errors_total{scheme=\"advanced\"} 3\n",
		"provd_transport_sends_total{scheme=\"advanced\"} 41\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	var b2 strings.Builder
	WritePrometheus(&b2, c, "x", "")
	if !strings.Contains(b2.String(), "x_sends_total 41\n") {
		t.Fatalf("unlabeled exposition wrong:\n%s", b2.String())
	}
}

func TestHistogramWritePrometheus(t *testing.T) {
	h, err := NewHistogram([]float64{0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	h.WritePrometheus(&b, "provd_query_seconds", `cache="miss"`)
	out := b.String()
	for _, want := range []string{
		"# TYPE provd_query_seconds histogram\n",
		"provd_query_seconds_bucket{cache=\"miss\",le=\"0.1\"} 1\n",
		"provd_query_seconds_bucket{cache=\"miss\",le=\"1\"} 2\n",
		"provd_query_seconds_bucket{cache=\"miss\",le=\"+Inf\"} 3\n",
		"provd_query_seconds_count{cache=\"miss\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "provd_query_seconds_sum{cache=\"miss\"} 5.55\n") {
		t.Fatalf("sum sample wrong:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"dial-errors":     "dial_errors",
		"dups.suppressed": "dups_suppressed",
		"ok_name":         "ok_name",
		"9lives":          "_9lives",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}
