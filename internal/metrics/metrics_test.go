package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeries(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Last() != 0 || s.GrowthRate() != 0 {
		t.Error("empty series not zero")
	}
	s.Add(0, 100)
	s.Add(10*time.Second, 1100)
	if s.Len() != 2 || s.Last() != 1100 {
		t.Errorf("series = %+v", s)
	}
	if got := s.GrowthRate(); got != 100 {
		t.Errorf("GrowthRate = %v, want 100/s", got)
	}
	// Single point: no rate.
	var one Series
	one.Add(time.Second, 5)
	if one.GrowthRate() != 0 {
		t.Error("single-point growth rate nonzero")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(3); got != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := c.Percentile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := c.Percentile(1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	xs, ys := c.Points()
	if len(xs) != 5 || ys[4] != 1.0 || xs[0] != 1 {
		t.Errorf("Points = %v, %v", xs, ys)
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 || empty.Percentile(0.5) != 0 {
		t.Error("empty CDF not zero")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean wrong")
	}
	if Median([]float64{9, 1, 5}) != 5 {
		t.Error("median wrong")
	}
}

func TestMbps(t *testing.T) {
	// 1,000,000 bytes over 8 seconds = 1 Mbps.
	if got := Mbps(1_000_000, 8*time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("Mbps = %v", got)
	}
	if Mbps(100, 0) != 0 {
		t.Error("zero duration not handled")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{1500, "1.5 KB"},
		{11_800_000_000, "11.8 GB"},
	}
	for _, tc := range cases {
		if got := HumanBytes(tc.n); got != tc.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestHumanRate(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{500, "500 bps"},
		{476_000, "476.00 Kbps"},
		{5_000_000, "5.00 Mbps"},
		{1_500_000_000, "1.50 Gbps"},
	}
	for _, tc := range cases {
		if got := HumanRate(tc.v); got != tc.want {
			t.Errorf("HumanRate(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(
		[]string{"scheme", "storage"},
		[][]string{{"ExSPAN", "11.8 GB"}, {"Advanced", "0.9 GB"}},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scheme") || !strings.Contains(lines[0], "storage") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "Advanced") {
		t.Errorf("row = %q", lines[3])
	}
	// Columns aligned: "storage" starts at the same offset in each line.
	off := strings.Index(lines[0], "storage")
	if strings.Index(lines[2], "11.8") != off {
		t.Errorf("misaligned table:\n%s", out)
	}
}
