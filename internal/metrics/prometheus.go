package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders the package's measurement types in the Prometheus text
// exposition format (version 0.0.4), so a long-lived daemon can expose its
// Counters and Histograms on a /metrics endpoint without importing a
// client library.

// PromName sanitizes a counter name into a legal Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_', and a leading digit
// gains a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelEscaper escapes a label value per the exposition format:
// backslash, double-quote, and newline must be escaped or the sample
// line is unparseable.
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// PromLabel renders one `name="value"` label pair with the value escaped
// for the text exposition format. Every label built in this repo must go
// through it: a raw scheme or link name containing `"`, `\`, or a
// newline would otherwise corrupt the whole scrape.
func PromLabel(name, value string) string {
	return PromName(name) + `="` + promLabelEscaper.Replace(value) + `"`
}

// joinLabels merges comma-separated label fragments, dropping empties.
func joinLabels(labels ...string) string {
	var parts []string
	for _, l := range labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	return strings.Join(parts, ",")
}

// writeSample emits one `name{labels} value` line.
func writeSample(w io.Writer, name, labels, value string) {
	if labels != "" {
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	} else {
		fmt.Fprintf(w, "%s %s\n", name, value)
	}
}

// WriteCounter emits a single monotonically-increasing sample.
func WriteCounter(w io.Writer, name, labels string, v int64) {
	writeSample(w, PromName(name), labels, strconv.FormatInt(v, 10))
}

// WriteGauge emits a single point-in-time sample.
func WriteGauge(w io.Writer, name, labels string, v float64) {
	writeSample(w, PromName(name), labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// WritePrometheus renders every counter in c as one Prometheus counter
// sample named `<prefix>_<name>_total`, with the given label set applied
// to each (pass "" for none). Counter names are sanitized (e.g. the
// transport's "dial-errors" becomes "dial_errors"), and insertion order is
// preserved so scrapes are stable.
func WritePrometheus(w io.Writer, c *Counters, prefix, labels string) {
	for _, name := range c.Names() {
		full := PromName(prefix + "_" + name + "_total")
		writeSample(w, full, labels, strconv.FormatInt(c.Get(name), 10))
	}
}

// WritePrometheus renders the histogram in the standard three-part form:
// cumulative `_bucket{le=...}` samples (ending with le="+Inf"), `_sum`,
// and `_count`.
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	name = PromName(name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	counts := h.BucketCounts()
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		writeSample(w, name+"_bucket", joinLabels(labels, PromLabel("le", le)), strconv.FormatInt(cum, 10))
	}
	cum += counts[len(counts)-1]
	writeSample(w, name+"_bucket", joinLabels(labels, PromLabel("le", "+Inf")), strconv.FormatInt(cum, 10))
	writeSample(w, name+"_sum", labels, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	writeSample(w, name+"_count", labels, strconv.FormatInt(h.Count(), 10))
}
