package metrics

import (
	"reflect"
	"strings"
	"testing"
)

func TestCountersAddGetOrder(t *testing.T) {
	c := NewCounters()
	c.Add("dials", 2)
	c.Add("sends", 10)
	c.Add("dials", 3)
	if got := c.Get("dials"); got != 5 {
		t.Errorf("dials = %d", got)
	}
	if got := c.Get("sends"); got != 10 {
		t.Errorf("sends = %d", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Errorf("absent = %d", got)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"dials", "sends"}) {
		t.Errorf("names = %v; insertion order lost", got)
	}
}

func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("x", 1)
	b := NewCounters()
	b.Add("x", 2)
	b.Add("y", 7)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 7 {
		t.Errorf("merge = x:%d y:%d", a.Get("x"), a.Get("y"))
	}
	if got := a.Names(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("names after merge = %v", got)
	}
}

func TestCountersString(t *testing.T) {
	c := NewCounters()
	c.Add("retries", 4)
	c.Add("drops", 0)
	out := c.String()
	for _, want := range []string{"counter", "value", "retries", "4", "drops"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Rows keep insertion order.
	if strings.Index(out, "retries") > strings.Index(out, "drops") {
		t.Errorf("row order not insertion order:\n%s", out)
	}
}
