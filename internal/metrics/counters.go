package metrics

import "strconv"

// Counters is an ordered set of named int64 counters — the snapshot form
// in which subsystems (e.g. the cluster transport) export their internal
// telemetry for aggregation and display. Names keep first-insertion
// order, so tables render stably.
type Counters struct {
	names []string
	vals  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments a counter by delta, creating it at zero first.
func (c *Counters) Add(name string, delta int64) {
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += delta
}

// Get returns a counter's value (0 if absent).
func (c *Counters) Get(name string) int64 { return c.vals[name] }

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string {
	return append([]string(nil), c.names...)
}

// Merge folds another counter set into this one.
func (c *Counters) Merge(o *Counters) {
	for _, name := range o.names {
		c.Add(name, o.vals[name])
	}
}

// String renders the counters as an aligned two-column table.
func (c *Counters) String() string {
	rows := make([][]string, 0, len(c.names))
	for _, name := range c.names {
		rows = append(rows, []string{name, strconv.FormatInt(c.vals[name], 10)})
	}
	return FormatTable([]string{"counter", "value"}, rows)
}
