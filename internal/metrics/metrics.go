// Package metrics provides the measurement helpers used to regenerate the
// paper's evaluation figures: CDFs of per-node rates, time series of
// storage and bandwidth, growth-rate estimation, and aligned text tables
// for terminal output.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Series is a time series of measurements.
type Series struct {
	Times  []time.Duration
	Values []float64
}

// Add appends a point.
func (s *Series) Add(t time.Duration, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Last returns the final value (0 if empty).
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// GrowthRate fits the average growth per second between the first and last
// points.
func (s *Series) GrowthRate() float64 {
	if len(s.Values) < 2 {
		return 0
	}
	dt := (s.Times[len(s.Times)-1] - s.Times[0]).Seconds()
	if dt <= 0 {
		return 0
	}
	return (s.Values[len(s.Values)-1] - s.Values[0]) / dt
}

// CDF holds an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the p-quantile (p in [0,1]) by nearest-rank.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(p*float64(len(c.sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points returns (value, fraction) pairs suitable for plotting the CDF.
func (c *CDF) Points() (xs, ys []float64) {
	xs = append([]float64(nil), c.sorted...)
	ys = make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / float64(len(xs))
	}
	return xs, ys
}

// Mean averages the samples.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Median returns the middle sample.
func Median(samples []float64) float64 {
	return NewCDF(samples).Percentile(0.5)
}

// Mbps converts a byte count over a duration into megabits per second.
func Mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / d.Seconds()
}

// HumanBytes renders a byte count with a binary-ish decimal unit, e.g.
// "11.8 GB".
func HumanBytes(n int64) string {
	const unit = 1000
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %cB", float64(n)/float64(div), "KMGTPE"[exp])
}

// HumanRate renders a bit-per-second rate, e.g. "5.0 Mbps".
func HumanRate(bitsPerSecond float64) string {
	switch {
	case bitsPerSecond >= 1e9:
		return fmt.Sprintf("%.2f Gbps", bitsPerSecond/1e9)
	case bitsPerSecond >= 1e6:
		return fmt.Sprintf("%.2f Mbps", bitsPerSecond/1e6)
	case bitsPerSecond >= 1e3:
		return fmt.Sprintf("%.2f Kbps", bitsPerSecond/1e3)
	default:
		return fmt.Sprintf("%.0f bps", bitsPerSecond)
	}
}

// FormatTable renders an aligned text table with a header row.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
