package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram safe for concurrent observation:
// every bucket is an atomic counter, so hot paths (the serving layer's
// per-query latency recording) never contend on a lock. Buckets follow
// Prometheus "le" semantics: a sample v lands in the first bucket whose
// upper bound is >= v, and samples above the last bound land in the
// implicit +Inf overflow bucket.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// LatencyBuckets returns the default bucket bounds for request latencies in
// seconds: exponential-ish from 50µs to 30s, dense around the
// sub-millisecond range where cache hits live.
func LatencyBuckets() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5, 10, 30,
	}
}

// NewHistogram builds a histogram over the given upper bounds, which must
// be non-empty and strictly increasing. The bounds slice is copied.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds must be strictly increasing (bound %d: %g <= %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}, nil
}

// NewLatencyHistogram builds a histogram over LatencyBuckets.
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(LatencyBuckets())
	if err != nil {
		panic(err) // the default bounds are valid by construction
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s returns the first index whose bound is >= v, which is
	// exactly the Prometheus "le" bucket; v above every bound falls through
	// to the overflow slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns a copy of the per-bucket counts; the extra final
// element is the +Inf overflow bucket. Under concurrent observation the
// copy is a loose snapshot, not an atomic cut.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the p-quantile (p in [0,1]) from the buckets: it
// finds the bucket holding the target rank and interpolates linearly
// inside it. A quantile landing in the +Inf overflow bucket returns
// +Inf — the histogram cannot see past its last bound, and clamping to
// that bound would let a p99 read "30s" when far more than 1% of
// samples exceeded 30s. Callers rendering quantiles should surface the
// overflow (e.g. ">30s") rather than print the clamped bound.
func (h *Histogram) Quantile(p float64) float64 {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(counts)-1 {
			return math.Inf(1)
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		frac := (rank - prev) / float64(c)
		return lower + (upper-lower)*frac
	}
	return math.Inf(1)
}

// Summary returns the p50/p95/p99 estimates in one call — the shape every
// latency report in this repo prints.
func (h *Histogram) Summary() (p50, p95, p99 float64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}
