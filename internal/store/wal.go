// Package store is the durability subsystem: a length-prefixed,
// CRC-checksummed write-ahead log of accepted state changes with a
// configurable fsync policy, periodic checksummed snapshots of the
// compacted state, and log truncation after a successful snapshot.
//
// The unit of durability is one node directory (NodeStore): the cluster
// runtime gives every member its own directory under the configured data
// dir and appends one record per accepted event, slow-changing
// insert/delete, and sig reset. On recovery the newest valid snapshot is
// restored and the WAL tail replayed; a torn final record — the signature
// of a crash mid-append — is detected by its checksum and skipped instead
// of aborting recovery (everything before it was already durable,
// everything after it never finished).
//
// Crash consistency comes from two rules: snapshots are written to a temp
// file and renamed into place (atomic on POSIX), and WAL generations are
// only deleted after the snapshot covering them is durably on disk. A
// crash at any point therefore leaves either the old snapshot plus its
// full log, or the new snapshot plus the (possibly empty) next
// generation's log — both recover to the same state.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
	"time"
)

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: no accepted event is
	// ever lost, at the price of one fsync per event.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per configured interval (on the
	// first append after it elapses) and on close/checkpoint: a crash can
	// lose up to one interval of tail records, all of which the transport
	// retry budget may still redeliver.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS flushes on its own schedule.
	// Fastest, and still torn-record-safe (the checksum catches partial
	// writes), but a crash can lose any unflushed tail.
	SyncOff
)

// ParseSyncPolicy maps the flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always", "record", "per-record":
		return SyncAlways, nil
	case "interval", "batch":
		return SyncInterval, nil
	case "off", "none", "never":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or off)", s)
}

// String renders the policy as its canonical flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return "always"
	}
}

// walHeaderSize is the per-record framing: u32 payload length, u32
// CRC-32C of the payload.
const walHeaderSize = 8

// maxWALRecord bounds one record; larger lengths indicate corruption.
const maxWALRecord = 64 << 20

// crcTable is the Castagnoli table (hardware-accelerated on most CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wal is one open write-ahead log file.
type wal struct {
	f        *os.File
	policy   SyncPolicy
	interval time.Duration
	lastSync time.Time
	dirty    bool
	hdr      [walHeaderSize]byte
}

func openWAL(path string, policy SyncPolicy, interval time.Duration) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, policy: policy, interval: interval, lastSync: time.Now()}, nil
}

// append frames and writes one record, then applies the sync policy. It
// returns the number of file bytes the record occupied.
func (w *wal) append(payload []byte) (int, error) {
	if len(payload) > maxWALRecord {
		return 0, fmt.Errorf("store: WAL record of %d bytes exceeds limit", len(payload))
	}
	binary.BigEndian.PutUint32(w.hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(w.hdr[4:8], crc32.Checksum(payload, crcTable))
	// One writev-style call: header and payload in a single Write so a
	// crash tears at most the final record, never interleaves two.
	buf := make([]byte, 0, walHeaderSize+len(payload))
	buf = append(buf, w.hdr[:]...)
	buf = append(buf, payload...)
	if _, err := w.f.Write(buf); err != nil {
		return 0, err
	}
	w.dirty = true
	switch w.policy {
	case SyncAlways:
		if err := w.sync(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.interval {
			if err := w.sync(); err != nil {
				return 0, err
			}
		}
	}
	return walHeaderSize + len(payload), nil
}

// sync flushes the file if it has unsynced appends.
func (w *wal) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// close flushes (best-effort under SyncOff semantics is still a flush:
// close is a clean shutdown, not a crash) and closes the file.
func (w *wal) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayWAL streams every intact record of one log file through fn, in
// append order. The first damaged record — an incomplete header or
// payload, a checksum mismatch, or an implausible length — ends replay
// with torn=true and tornBytes counting the discarded tail: each record
// is written in a single append, so damage means the crash landed
// mid-write and nothing after the tear ever committed. This is the
// truncate-at-first-bad-record discipline of production WALs; fn errors
// abort replay and are returned verbatim.
func replayWAL(path string, fn func(rec []byte) error) (records int, torn bool, tornBytes int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, 0, nil
	}
	if err != nil {
		return 0, false, 0, err
	}
	defer f.Close()
	size := int64(0)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	var off int64
	var hdr [walHeaderSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return records, false, 0, nil
		}
		if err == io.ErrUnexpectedEOF {
			return records, true, size - off, nil // torn header
		}
		if err != nil {
			return records, false, 0, err
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxWALRecord {
			return records, true, size - off, nil // implausible length: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, true, size - off, nil // torn payload
			}
			return records, false, 0, err
		}
		if crc32.Checksum(payload, crcTable) != want {
			return records, true, size - off, nil // torn checksum
		}
		if err := fn(payload); err != nil {
			return records, false, 0, err
		}
		off += walHeaderSize + int64(n)
		records++
	}
}
