package store

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Options tunes one node's durability.
type Options struct {
	// Fsync selects when WAL appends reach stable storage.
	Fsync SyncPolicy
	// FsyncInterval is the SyncInterval flush period (default 50ms).
	FsyncInterval time.Duration
	// SnapshotEvery triggers an automatic checkpoint after this many WAL
	// records since the last snapshot (0 = only explicit checkpoints).
	SnapshotEvery int
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	return o
}

// RecoveryStats describes one completed recovery.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a valid snapshot was restored.
	SnapshotLoaded bool
	// SnapshotBytes is the restored snapshot's payload size.
	SnapshotBytes int64
	// SnapshotAge is how stale the restored snapshot was at recovery
	// (time since it was written); zero when none was loaded.
	SnapshotAge time.Duration
	// ReplayedRecords is the number of WAL records applied on top of the
	// snapshot.
	ReplayedRecords int64
	// TornRecords counts torn WAL tails detected and skipped (at most one
	// per log generation).
	TornRecords int64
	// TornBytes is the total size of the discarded torn tails.
	TornBytes int64
	// WallTime is how long the whole recovery took.
	WallTime time.Duration
}

// Stats is a point-in-time snapshot of one NodeStore's durability
// counters.
type Stats struct {
	// WALRecords / WALBytes count appends since the store was opened.
	WALRecords int64
	WALBytes   int64
	// Snapshots / SnapshotBytes count checkpoints written since open.
	Snapshots     int64
	SnapshotBytes int64
	// SnapshotAge is the time since the last checkpoint was written (or
	// restored); negative when no snapshot exists yet.
	SnapshotAge time.Duration
	// Recovery describes the recovery this store performed at open.
	Recovery RecoveryStats
}

// NodeStore is the durable state of one cluster member: its current WAL
// generation plus the newest snapshot. Methods are safe for concurrent
// use; the caller is responsible for ordering Append calls consistently
// with the in-memory applies they describe (the cluster runtime holds its
// per-node durability lock across both).
type NodeStore struct {
	dir  string
	opts Options

	mu           sync.Mutex
	w            *wal
	gen          uint64 // generation the open WAL appends to
	sinceSnap    int    // records appended since the last checkpoint
	lastSnapshot time.Time
	closed       bool

	walRecords    int64
	walBytes      int64
	snapshots     int64
	snapshotBytes int64
	recovery      RecoveryStats
}

// Open prepares a node directory (creating it if needed) and runs
// recovery: restore is called at most once with the newest valid
// snapshot's payload, then apply is called for every intact WAL record
// newer than it, in append order. Both callbacks may be nil when the
// caller has no state to rebuild (a fresh boot directory). On return the
// store is ready to Append.
func Open(dir string, opts Options, restore func(snapshot []byte) error, apply func(rec []byte) error) (*NodeStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ns := &NodeStore{dir: dir, opts: opts.withDefaults()}
	start := time.Now()
	if err := ns.recover(restore, apply); err != nil {
		return nil, err
	}
	ns.recovery.WallTime = time.Since(start)

	w, err := openWAL(walPath(dir, ns.gen), ns.opts.Fsync, ns.opts.FsyncInterval)
	if err != nil {
		return nil, err
	}
	ns.w = w
	return ns, nil
}

// recover restores the newest valid snapshot and replays the WAL
// generations after it. A snapshot that fails its checksum falls back to
// the previous one (whose WAL generations are only deleted after a newer
// snapshot is durable, so the full history is still on disk).
func (ns *NodeStore) recover(restore func([]byte) error, apply func([]byte) error) error {
	snaps, wals, err := scanDir(ns.dir)
	if err != nil {
		return err
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })    // oldest first

	var fromGen uint64
	for _, gen := range snaps {
		payload, err := readSnapshotFile(snapPath(ns.dir, gen))
		if err != nil {
			continue // damaged snapshot: fall back to the previous one
		}
		if restore != nil {
			if err := restore(payload); err != nil {
				return fmt.Errorf("store: restore snapshot gen %d: %w", gen, err)
			}
		}
		ns.recovery.SnapshotLoaded = true
		ns.recovery.SnapshotBytes = int64(len(payload))
		if fi, err := os.Stat(snapPath(ns.dir, gen)); err == nil {
			ns.recovery.SnapshotAge = time.Since(fi.ModTime())
			ns.lastSnapshot = fi.ModTime()
		}
		fromGen = gen
		break
	}

	maxGen := fromGen
	for _, gen := range wals {
		if gen > maxGen {
			maxGen = gen
		}
		if gen < fromGen {
			continue // covered by the restored snapshot
		}
		records, torn, tornBytes, err := replayWAL(walPath(ns.dir, gen), apply)
		if err != nil {
			return fmt.Errorf("store: replay wal gen %d: %w", gen, err)
		}
		ns.recovery.ReplayedRecords += int64(records)
		if torn {
			ns.recovery.TornRecords++
			ns.recovery.TornBytes += tornBytes
		}
	}
	// Append to a fresh generation: the torn tail (if any) stays behind
	// in the old file instead of being overwritten mid-log, and the next
	// checkpoint truncates the lot.
	ns.gen = maxGen
	if ns.recovery.ReplayedRecords > 0 || ns.recovery.TornRecords > 0 {
		ns.gen = maxGen + 1
	}
	return nil
}

// Append logs one record. The record is durable according to the sync
// policy once Append returns. It reports whether the store now wants a
// checkpoint (SnapshotEvery records have accumulated); the caller decides
// when to actually Checkpoint.
func (ns *NodeStore) Append(rec []byte) (wantSnapshot bool, err error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed {
		return false, fmt.Errorf("store: append on closed store %s", ns.dir)
	}
	n, err := ns.w.append(rec)
	if err != nil {
		return false, err
	}
	ns.walRecords++
	ns.walBytes += int64(n)
	ns.sinceSnap++
	return ns.opts.SnapshotEvery > 0 && ns.sinceSnap >= ns.opts.SnapshotEvery, nil
}

// Checkpoint durably writes payload as the new snapshot, rotates the WAL
// to a fresh generation, and truncates (deletes) every older generation
// and snapshot. The caller must guarantee payload reflects every record
// appended so far (the cluster runtime serializes Checkpoint against its
// appends with the same per-node lock).
func (ns *NodeStore) Checkpoint(payload []byte) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed {
		return fmt.Errorf("store: checkpoint on closed store %s", ns.dir)
	}
	// Write the snapshot and open the next generation before touching the
	// live WAL: a failure anywhere in here leaves the store appending to
	// the old generation, fully recoverable.
	newGen := ns.gen + 1
	if _, err := writeSnapshotFile(ns.dir, newGen, payload); err != nil {
		return err
	}
	w, err := openWAL(walPath(ns.dir, newGen), ns.opts.Fsync, ns.opts.FsyncInterval)
	if err != nil {
		return err
	}
	// Seal the old generation; its records are all inside the snapshot.
	if err := ns.w.close(); err != nil {
		w.close() //nolint:errcheck
		return err
	}
	// The new snapshot is durable and the new log open: everything older
	// is dead weight. Deleting it is safe even if we crash mid-loop —
	// recovery picks the newest valid snapshot first.
	snaps, wals, err := scanDir(ns.dir)
	if err == nil {
		for _, g := range snaps {
			if g < newGen {
				os.Remove(snapPath(ns.dir, g)) //nolint:errcheck
			}
		}
		for _, g := range wals {
			if g < newGen {
				os.Remove(walPath(ns.dir, g)) //nolint:errcheck
			}
		}
		syncDir(ns.dir)
	}
	ns.w = w
	ns.gen = newGen
	ns.sinceSnap = 0
	ns.snapshots++
	ns.snapshotBytes += int64(len(payload))
	ns.lastSnapshot = time.Now()
	return nil
}

// Sync forces buffered WAL appends to stable storage regardless of the
// sync policy (clean shutdown, or a checkpoint boundary).
func (ns *NodeStore) Sync() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed {
		return nil
	}
	return ns.w.sync()
}

// Close flushes and closes the WAL. The store cannot be reused; reopen
// the directory with Open to recover.
func (ns *NodeStore) Close() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed {
		return nil
	}
	ns.closed = true
	return ns.w.close()
}

// Dir returns the node directory.
func (ns *NodeStore) Dir() string { return ns.dir }

// Stats snapshots the durability counters.
func (ns *NodeStore) Stats() Stats {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	age := -time.Second
	if !ns.lastSnapshot.IsZero() {
		age = time.Since(ns.lastSnapshot)
	}
	return Stats{
		WALRecords:    ns.walRecords,
		WALBytes:      ns.walBytes,
		Snapshots:     ns.snapshots,
		SnapshotBytes: ns.snapshotBytes,
		SnapshotAge:   age,
		Recovery:      ns.recovery,
	}
}

// Recovery returns the stats of the recovery performed at Open.
func (ns *NodeStore) Recovery() RecoveryStats {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.recovery
}
