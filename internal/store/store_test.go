package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openCollecting opens dir and collects what recovery hands back.
func openCollecting(t *testing.T, dir string, opts Options) (*NodeStore, [][]byte, []byte) {
	t.Helper()
	var recs [][]byte
	var snap []byte
	ns, err := Open(dir, opts,
		func(payload []byte) error {
			snap = append([]byte(nil), payload...)
			return nil
		},
		func(rec []byte) error {
			recs = append(recs, append([]byte(nil), rec...))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return ns, recs, snap
}

// testRecords builds n records of varied sizes, each with distinguishable
// content.
func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		rec := []byte(fmt.Sprintf("record-%03d:", i))
		for len(rec) < 11+i*7%90 {
			rec = append(rec, byte(i))
		}
		recs[i] = rec
	}
	return recs
}

func appendAll(t *testing.T, ns *NodeStore, recs [][]byte) {
	t.Helper()
	for _, rec := range recs {
		if _, err := ns.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreReplayRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Fsync: policy, FsyncInterval: time.Millisecond}
			ns, _, _ := openCollecting(t, dir, opts)
			want := testRecords(100)
			appendAll(t, ns, want)
			st := ns.Stats()
			if st.WALRecords != 100 {
				t.Errorf("WALRecords = %d, want 100", st.WALRecords)
			}
			if err := ns.Close(); err != nil {
				t.Fatal(err)
			}

			ns2, got, snap := openCollecting(t, dir, opts)
			defer ns2.Close()
			if snap != nil {
				t.Error("restore called with no snapshot on disk")
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if string(got[i]) != string(want[i]) {
					t.Fatalf("record %d diverged after replay", i)
				}
			}
			rec := ns2.Recovery()
			if rec.ReplayedRecords != 100 || rec.TornRecords != 0 || rec.SnapshotLoaded {
				t.Errorf("recovery = %+v, want 100 replayed, clean", rec)
			}
		})
	}
}

// TestStoreTornTailCorpus is the crash-mid-append property: for EVERY
// possible truncation point inside the final record — one byte into the
// header through one byte short of complete — recovery must replay
// exactly the preceding records and flag one torn tail. A flipped payload
// byte (torn by checksum, not by length) must behave the same.
func TestStoreTornTailCorpus(t *testing.T) {
	master := t.TempDir()
	ns, _, _ := openCollecting(t, master, Options{Fsync: SyncOff})
	recs := testRecords(5)
	appendAll(t, ns, recs)
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	logs, err := filepath.Glob(filepath.Join(master, "*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("want exactly one log file, have %v (%v)", logs, err)
	}
	full, err := os.ReadFile(logs[0])
	if err != nil {
		t.Fatal(err)
	}
	boundary := len(full) - walHeaderSize - len(recs[4]) // end of record 4

	check := func(t *testing.T, contents []byte) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(logs[0])), contents, 0o644); err != nil {
			t.Fatal(err)
		}
		ns, got, _ := openCollecting(t, dir, Options{Fsync: SyncOff})
		defer ns.Close()
		if len(got) != 4 {
			t.Fatalf("replayed %d records, want 4", len(got))
		}
		for i := 0; i < 4; i++ {
			if string(got[i]) != string(recs[i]) {
				t.Fatalf("record %d diverged", i)
			}
		}
		rec := ns.Recovery()
		if rec.TornRecords != 1 {
			t.Errorf("TornRecords = %d, want 1", rec.TornRecords)
		}
		if rec.TornBytes <= 0 {
			t.Errorf("TornBytes = %d, want > 0", rec.TornBytes)
		}

		// The store must stay usable: new appends land in a fresh
		// generation and survive the next recovery alongside the old ones.
		if _, err := ns.Append([]byte("after-tear")); err != nil {
			t.Fatal(err)
		}
		if err := ns.Close(); err != nil {
			t.Fatal(err)
		}
		ns2, got2, _ := openCollecting(t, dir, Options{Fsync: SyncOff})
		defer ns2.Close()
		if len(got2) != 5 || string(got2[4]) != "after-tear" {
			t.Fatalf("post-tear recovery replayed %d records (last %q), want 5 ending in the new append",
				len(got2), got2[len(got2)-1])
		}
	}

	for cut := boundary + 1; cut < len(full); cut++ {
		t.Run(fmt.Sprintf("truncate-%d", cut), func(t *testing.T) {
			check(t, full[:cut])
		})
	}
	t.Run("corrupt-checksum", func(t *testing.T) {
		flipped := append([]byte(nil), full...)
		flipped[boundary+walHeaderSize+2] ^= 0xFF // a payload byte of record 5
		check(t, flipped)
	})
}

func TestStoreCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Fsync: SyncAlways}
	ns, _, _ := openCollecting(t, dir, opts)
	appendAll(t, ns, testRecords(3))
	payload := []byte("snapshot-state-after-3")
	if err := ns.Checkpoint(payload); err != nil {
		t.Fatal(err)
	}
	post := [][]byte{[]byte("post-snap-1"), []byte("post-snap-2")}
	appendAll(t, ns, post)
	st := ns.Stats()
	if st.Snapshots != 1 || st.SnapshotBytes != int64(len(payload)) {
		t.Errorf("stats after checkpoint = %+v", st)
	}
	if st.SnapshotAge < 0 {
		t.Errorf("SnapshotAge = %v, want >= 0 after a checkpoint", st.SnapshotAge)
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}

	// The pre-checkpoint generation is gone; one snapshot + one log remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var nLog, nSnap int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".log":
			nLog++
		case ".snap":
			nSnap++
		}
	}
	if nLog != 1 || nSnap != 1 {
		t.Errorf("after checkpoint: %d logs, %d snapshots on disk; want 1 and 1", nLog, nSnap)
	}

	ns2, got, snap := openCollecting(t, dir, opts)
	defer ns2.Close()
	if string(snap) != string(payload) {
		t.Errorf("restored snapshot = %q, want %q", snap, payload)
	}
	if len(got) != 2 || string(got[0]) != "post-snap-1" || string(got[1]) != "post-snap-2" {
		t.Errorf("replayed %d records %q, want only the post-checkpoint pair", len(got), got)
	}
	rec := ns2.Recovery()
	if !rec.SnapshotLoaded || rec.ReplayedRecords != 2 {
		t.Errorf("recovery = %+v, want snapshot + 2 replayed", rec)
	}
}

// TestStoreSnapshotEveryWantsCheckpoint pins the cooperative checkpoint
// contract: Append reports the threshold, the caller checkpoints.
func TestStoreSnapshotEveryWantsCheckpoint(t *testing.T) {
	ns, _, _ := openCollecting(t, t.TempDir(), Options{Fsync: SyncOff, SnapshotEvery: 3})
	defer ns.Close()
	wants := 0
	for i := 0; i < 7; i++ {
		want, err := ns.Append([]byte("r"))
		if err != nil {
			t.Fatal(err)
		}
		if want {
			wants++
			if err := ns.Checkpoint([]byte("s")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if wants != 2 { // records 3 and 6
		t.Errorf("wantSnapshot fired %d times over 7 appends with SnapshotEvery=3, want 2", wants)
	}
}

// TestStoreCorruptSnapshotSkipped: a snapshot that fails its checksum is
// not restored — recovery degrades rather than failing the boot.
func TestStoreCorruptSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	ns, _, _ := openCollecting(t, dir, Options{Fsync: SyncAlways})
	appendAll(t, ns, testRecords(2))
	if err := ns.Checkpoint([]byte("good-snapshot")); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want one snapshot, have %v (%v)", snaps, err)
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ns2, got, snap := openCollecting(t, dir, Options{Fsync: SyncAlways})
	defer ns2.Close()
	if snap != nil {
		t.Errorf("corrupt snapshot was restored: %q", snap)
	}
	if ns2.Recovery().SnapshotLoaded {
		t.Error("recovery claims a snapshot was loaded")
	}
	// The post-checkpoint tail is still replayed.
	if len(got) != 1 || string(got[0]) != "tail" {
		t.Errorf("replayed %q, want just the tail record", got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{
		"":           SyncAlways,
		"always":     SyncAlways,
		"record":     SyncAlways,
		"per-record": SyncAlways,
		"ALWAYS":     SyncAlways,
		"interval":   SyncInterval,
		"batch":      SyncInterval,
		"off":        SyncOff,
		"none":       SyncOff,
		"never":      SyncOff,
	}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Error("bad policy spelling accepted")
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round-trip %v -> %q -> %v, %v", p, p.String(), back, err)
		}
	}
}

func TestStoreClosedRefusesAppend(t *testing.T) {
	ns, _, _ := openCollecting(t, t.TempDir(), Options{})
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Append([]byte("x")); err == nil {
		t.Error("append on closed store succeeded")
	}
	if err := ns.Checkpoint([]byte("x")); err == nil {
		t.Error("checkpoint on closed store succeeded")
	}
	if err := ns.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
