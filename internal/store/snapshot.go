package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file layout: an 16-byte header — magic "PCSNAP1\x00", u32
// CRC-32C of the payload, u32 payload length — followed by the payload.
// The file is written to a temp name and renamed into place, so a
// half-written snapshot is never visible under its real name; the
// checksum guards against the rename landing but the data pages not.
var snapMagic = [8]byte{'P', 'C', 'S', 'N', 'A', 'P', '1', 0}

const snapHeaderSize = 16

// writeSnapshotFile durably writes payload as the snapshot for gen.
func writeSnapshotFile(dir string, gen uint64, payload []byte) (string, error) {
	buf := make([]byte, snapHeaderSize, snapHeaderSize+len(payload))
	copy(buf, snapMagic[:])
	binary.BigEndian.PutUint32(buf[8:12], crc32.Checksum(payload, crcTable))
	binary.BigEndian.PutUint32(buf[12:16], uint32(len(payload)))
	buf = append(buf, payload...)

	path := snapPath(dir, gen)
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	syncDir(dir)
	return path, nil
}

// readSnapshotFile loads and verifies one snapshot file.
func readSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < snapHeaderSize || [8]byte(raw[:8]) != snapMagic {
		return nil, fmt.Errorf("store: %s is not a snapshot file", path)
	}
	want := binary.BigEndian.Uint32(raw[8:12])
	n := binary.BigEndian.Uint32(raw[12:16])
	payload := raw[snapHeaderSize:]
	if uint32(len(payload)) != n || crc32.Checksum(payload, crcTable) != want {
		return nil, fmt.Errorf("store: snapshot %s fails its checksum", path)
	}
	return payload, nil
}

// snapPath and walPath name the on-disk files of one generation. The
// generation in a snapshot's name is the first WAL generation whose
// records are NOT covered by it: snap-000007 restores the state as of the
// end of wal-000006, and recovery replays wal-000007 onward.
func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%09d.snap", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%09d.log", gen))
}

// scanDir lists the snapshot and WAL generations present in a directory.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range ents {
		name := ent.Name()
		var gen uint64
		switch {
		case len(name) == len("snap-000000000.snap") && name[:5] == "snap-" && filepath.Ext(name) == ".snap":
			if _, err := fmt.Sscanf(name, "snap-%09d.snap", &gen); err == nil {
				snaps = append(snaps, gen)
			}
		case len(name) == len("wal-000000000.log") && name[:4] == "wal-" && filepath.Ext(name) == ".log":
			if _, err := fmt.Sscanf(name, "wal-%09d.log", &gen); err == nil {
				wals = append(wals, gen)
			}
		}
	}
	return snaps, wals, nil
}

// syncDir fsyncs a directory so renames and unlinks within it are
// durable. Best-effort: not every filesystem supports directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}
