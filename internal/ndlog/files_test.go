package ndlog

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExamplePrograms parses and DELP-validates every .dlog file shipped
// under examples/programs (the inputs the delpc tool documents).
func TestExamplePrograms(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples/programs missing: %v", err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".dlog" {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ParseDELP(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(prog.Rules) == 0 {
				t.Error("no rules")
			}
		})
	}
	if found < 3 {
		t.Errorf("only %d .dlog example programs found", found)
	}
}
