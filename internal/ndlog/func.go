package ndlog

import "provcompress/internal/types"

// Func is the implementation of a user-defined function callable from rule
// bodies (e.g. f_isSubDomain in the DNS program of Figure 19). A Func must
// be pure and deterministic: rule re-execution during provenance querying
// (Section 4, step 2) relies on replaying the exact same derivations.
type Func func(args []types.Value) (types.Value, error)

// FuncMap is a registry of user-defined functions by name.
type FuncMap map[string]Func
