package ndlog

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokIdent            // packet, f_isSubDomain, n1
	tokVar              // N, S, D, DT (uppercase-initial)
	tokInt              // 42, -7 handled by parser via unary minus
	tokString           // "data"
	tokLParen           // (
	tokRParen           // )
	tokComma            // ,
	tokPeriod           // .
	tokAt               // @
	tokDerive           // :-
	tokAssign           // :=
	tokOp               // == != <= >= < > + - * / %
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPeriod:
		return "'.'"
	case tokAt:
		return "'@'"
	case tokDerive:
		return "':-'"
	case tokAssign:
		return "':='"
	case tokOp:
		return "operator"
	default:
		return "unknown"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer turns NDlog source into a token stream. It supports // line
// comments and /* */ block comments.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// errorf formats a lexical error with position information.
func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("ndlog: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 <= len(l.src) {
				if l.pos+1 < len(l.src) && l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				if l.pos >= len(l.src) {
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()
	switch {
	case c == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case c == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case c == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case c == '.':
		l.advance()
		return token{tokPeriod, ".", line, col}, nil
	case c == '@':
		l.advance()
		return token{tokAt, "@", line, col}, nil
	case c == ':':
		l.advance()
		switch l.peekByte() {
		case '-':
			l.advance()
			return token{tokDerive, ":-", line, col}, nil
		case '=':
			l.advance()
			return token{tokAssign, ":=", line, col}, nil
		}
		return token{}, l.errorf(line, col, "expected ':-' or ':=' after ':'")
	case c == '=':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{tokOp, "==", line, col}, nil
		}
		return token{}, l.errorf(line, col, "expected '==' (single '=' is not an operator)")
	case c == '!':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{tokOp, "!=", line, col}, nil
		}
		return token{}, l.errorf(line, col, "expected '!='")
	case c == '<' || c == '>':
		l.advance()
		op := string(c)
		if l.peekByte() == '=' {
			l.advance()
			op += "="
		}
		return token{tokOp, op, line, col}, nil
	case c == '+' || c == '-' || c == '*' || c == '/' || c == '%':
		l.advance()
		return token{tokOp, string(c), line, col}, nil
	case c == '"':
		return l.lexString(line, col)
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance()
		}
		return token{tokInt, l.src[start:l.pos], line, col}, nil
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		r, _ := utf8.DecodeRuneInString(text)
		if unicode.IsUpper(r) {
			return token{tokVar, text, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", c)
	}
}

// lexString scans a double-quoted literal and decodes it with the full
// Go escape syntax (strconv.Unquote), the inverse of how values print
// (strconv.Quote), so print/parse round trips for any string content.
func (l *lexer) lexString(line, col int) (token, error) {
	start := l.pos
	l.advance() // opening quote
	for l.pos < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			raw := l.src[start:l.pos]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return token{}, l.errorf(line, col, "bad string literal %s: %v", raw, err)
			}
			return token{tokString, s, line, col}, nil
		case '\\':
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated string")
			}
			l.advance() // skip the escaped character (may be '"')
		case '\n':
			return token{}, l.errorf(line, col, "newline in string")
		}
	}
	return token{}, l.errorf(line, col, "unterminated string")
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
