package ndlog

import (
	"strings"
	"testing"

	"provcompress/internal/types"
)

// forwardingSrc is the packet-forwarding program of Figure 1.
const forwardingSrc = `
r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
`

// dnsSrc is the recursive DNS resolution program of Figure 19.
const dnsSrc = `
r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
                                   nameServer(@X, DM, SV),
                                   f_isSubDomain(DM, URL) == true.
r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
                                            addressRecord(@X, URL, IPADDR).
r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
`

func TestParseForwarding(t *testing.T) {
	p, err := Parse(forwardingSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(p.Rules))
	}
	r1 := p.Rules[0]
	if r1.Label != "r1" || r1.Head.Rel != "packet" || r1.Event.Rel != "packet" {
		t.Errorf("r1 structure wrong: %v", r1)
	}
	if len(r1.Slow) != 1 || r1.Slow[0].Rel != "route" {
		t.Errorf("r1 slow atoms = %v, want [route]", r1.Slow)
	}
	r2 := p.Rules[1]
	if r2.Head.Rel != "recv" || len(r2.Constraints) != 1 {
		t.Errorf("r2 structure wrong: %v", r2)
	}
	c := r2.Constraints[0]
	if c.Op != OpEq {
		t.Errorf("r2 constraint op = %s, want ==", c.Op)
	}
	if v, ok := c.L.(VarExpr); !ok || v.Name != "D" {
		t.Errorf("r2 constraint lhs = %v, want D", c.L)
	}
	if p.InputEvent() != "packet" {
		t.Errorf("InputEvent = %q, want packet", p.InputEvent())
	}
	slow := p.SlowRelations()
	if !slow["route"] || len(slow) != 1 {
		t.Errorf("SlowRelations = %v, want {route}", slow)
	}
	outs := p.OutputRelations()
	if !outs["recv"] || len(outs) != 1 {
		t.Errorf("OutputRelations = %v, want {recv}", outs)
	}
}

func TestParseDNS(t *testing.T) {
	p, err := Parse(dnsSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(p.Rules))
	}
	r2 := p.Rule("r2")
	if r2 == nil {
		t.Fatal("rule r2 missing")
	}
	if len(r2.Slow) != 1 || r2.Slow[0].Rel != "nameServer" {
		t.Errorf("r2 slow = %v", r2.Slow)
	}
	if len(r2.Constraints) != 1 {
		t.Fatalf("r2 constraints = %v", r2.Constraints)
	}
	call, ok := r2.Constraints[0].L.(CallExpr)
	if !ok || call.Fn != "f_isSubDomain" || len(call.Args) != 2 {
		t.Errorf("r2 constraint lhs = %v, want f_isSubDomain(DM, URL)", r2.Constraints[0].L)
	}
	rhs, ok := r2.Constraints[0].R.(ConstExpr)
	if !ok || !rhs.Val.Equal(types.Bool(true)) {
		t.Errorf("r2 constraint rhs = %v, want true", r2.Constraints[0].R)
	}
	if p.InputEvent() != "url" {
		t.Errorf("InputEvent = %q, want url", p.InputEvent())
	}
	r4 := p.Rule("r4")
	if len(r4.Slow) != 0 || len(r4.Constraints) != 0 {
		t.Errorf("r4 should have only an event atom: %v", r4)
	}
}

func TestParseAssignmentAndArith(t *testing.T) {
	src := `r1 out(@L, N, M) :- in(@L, X, Y), N := X + 2 * Y, M := N - 1, X < 10, Y != 0.`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if len(r.Assigns) != 2 {
		t.Fatalf("assigns = %v", r.Assigns)
	}
	if r.Assigns[0].Var != "N" {
		t.Errorf("assign var = %s", r.Assigns[0].Var)
	}
	be, ok := r.Assigns[0].Expr.(BinExpr)
	if !ok || be.Op != OpAdd {
		t.Fatalf("assign expr = %v, want X + (2*Y)", r.Assigns[0].Expr)
	}
	inner, ok := be.R.(BinExpr)
	if !ok || inner.Op != OpMul {
		t.Errorf("precedence wrong: rhs of + is %v, want 2 * Y", be.R)
	}
	if len(r.Constraints) != 2 || r.Constraints[0].Op != OpLt || r.Constraints[1].Op != OpNe {
		t.Errorf("constraints = %v", r.Constraints)
	}
}

func TestParseLiterals(t *testing.T) {
	src := `r1 out(@L, A, B, C, D, E) :- in(@L, Z), A := -5, B := "hello", C := true, D := false, E := 3 % 2, Z == n1.`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	// Z == n1 : bare lowercase ident is a string constant.
	rhs := r.Constraints[0].R.(ConstExpr)
	if !rhs.Val.Equal(types.String("n1")) {
		t.Errorf("n1 parsed as %v, want string const", rhs.Val)
	}
	if !r.Assigns[0].Expr.(BinExpr).R.(ConstExpr).Val.Equal(types.Int(5)) {
		t.Errorf("unary minus: %v", r.Assigns[0].Expr)
	}
	if !r.Assigns[2].Expr.(ConstExpr).Val.Equal(types.Bool(true)) {
		t.Errorf("true literal: %v", r.Assigns[2].Expr)
	}
}

func TestParseAtomArgumentLiterals(t *testing.T) {
	src := `r1 out(@L, 7, "x", true, -3, n9) :- in(@L, A).`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	args := p.Rules[0].Head.Args
	want := []types.Value{
		{}, // position 0 is the variable L
		types.Int(7), types.String("x"), types.Bool(true), types.Int(-3), types.String("n9"),
	}
	if _, ok := args[0].(Var); !ok {
		t.Errorf("arg0 = %v, want Var", args[0])
	}
	for i := 1; i < len(want); i++ {
		c, ok := args[i].(Const)
		if !ok || !c.Val.Equal(want[i]) {
			t.Errorf("arg%d = %v, want %v", i, args[i], want[i])
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
r1 a(@L, X) :- b(@L, X). /* block
comment */ r2 c(@L, X) :- a(@L, X).
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Errorf("rules = %d, want 2", len(p.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty program"},
		{"no label", `packet(@L) :- x(@L).`, ""},
		{"missing period", `r1 a(@L, X) :- b(@L, X)`, "'.'"},
		{"missing derive", `r1 a(@L, X) b(@L, X).`, "':-'"},
		{"no event", `r1 a(@L, X) :- X == 2.`, "no event atom"},
		{"no location", `r1 a(L, X) :- b(@L, X).`, "location"},
		{"bad char", `r1 a(@L) :- b(@L) & c(@L).`, "unexpected character"},
		{"unterminated string", `r1 a(@L, X) :- b(@L, X), X == "oops.`, "string"},
		{"unterminated comment", `r1 a(@L, X) :- b(@L, X). /* dangling`, "comment"},
		{"single equals", `r1 a(@L, X) :- b(@L, X), X = 2.`, "'=='"},
		{"bad bang", `r1 a(@L, X) :- b(@L, X), X ! 2.`, "'!='"},
		{"lone colon", `r1 a(@L, X) :- b(@L, X), X : 2.`, "':-' or ':='"},
		{"arity clash", "r1 a(@L, X) :- b(@L, X).\nr2 c(@L) :- a(@L).", "arity"},
		{"newline in string", "r1 a(@L, X) :- b(@L, X), X == \"a\nb\".", "string"},
		{"bad escape", `r1 a(@L, X) :- b(@L, X), X == "a\q".`, "bad string literal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	p := MustParse(forwardingSrc)
	again, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, p.String())
	}
	if again.String() != p.String() {
		t.Errorf("print/parse not a fixpoint:\n%s\nvs\n%s", p.String(), again.String())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad source should panic")
		}
	}()
	MustParse("not a program")
}

func TestRulesForEvent(t *testing.T) {
	p := MustParse(forwardingSrc)
	rs := p.RulesForEvent("packet")
	if len(rs) != 2 || rs[0].Label != "r1" || rs[1].Label != "r2" {
		t.Errorf("RulesForEvent(packet) = %v", rs)
	}
	if got := p.RulesForEvent("nosuch"); len(got) != 0 {
		t.Errorf("RulesForEvent(nosuch) = %v", got)
	}
}

func TestArities(t *testing.T) {
	p := MustParse(dnsSrc)
	ar, err := p.Arities()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"url": 3, "rootServer": 2, "request": 4, "nameServer": 3,
		"dnsResult": 5, "addressRecord": 3, "reply": 4,
	}
	for rel, n := range want {
		if ar[rel] != n {
			t.Errorf("arity(%s) = %d, want %d", rel, ar[rel], n)
		}
	}
}
