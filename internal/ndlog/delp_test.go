package ndlog

import (
	"strings"
	"testing"
)

func TestValidateDELPAccepts(t *testing.T) {
	for _, src := range []string{forwardingSrc, dnsSrc} {
		p := MustParse(src)
		if err := p.ValidateDELP(); err != nil {
			t.Errorf("ValidateDELP rejected valid program: %v", err)
		}
	}
}

func TestParseDELP(t *testing.T) {
	if _, err := ParseDELP(forwardingSrc); err != nil {
		t.Errorf("ParseDELP(forwarding) = %v", err)
	}
	if _, err := ParseDELP(`r1 a(@L, X) :- b(@L, X). r2 c(@L, X) :- d(@L, X).`); err == nil {
		t.Error("ParseDELP accepted non-dependent rules")
	}
	if _, err := ParseDELP(`r1 a(@L, X :- b(@L, X).`); err == nil {
		t.Error("ParseDELP accepted syntax error")
	}
}

func TestValidateDELPRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			"non-consecutive",
			"r1 a(@L, X) :- e(@L, X).\nr2 c(@L, X) :- d(@L, X).",
			"not dependent",
		},
		{
			"head as slow atom",
			"r1 a(@L, X) :- e(@L, X).\nr2 c(@L, X) :- a(@L, X), a(@L, X).",
			"non-event atom",
		},
		{
			"input event as slow atom",
			"r1 a(@L, X) :- e(@L, X), e(@L, X).",
			"input event relation",
		},
		{
			"duplicate labels",
			"r1 a(@L, X) :- e(@L, X).\nr1 c(@L, X) :- a(@L, X).",
			"duplicate rule label",
		},
		{
			"unbound head var",
			"r1 a(@L, X, Y) :- e(@L, X).",
			"head variable Y is unbound",
		},
		{
			"unbound constraint var",
			"r1 a(@L, X) :- e(@L, X), Z == 2.",
			"unbound variable Z",
		},
		{
			"unbound assign rhs",
			"r1 a(@L, X, N) :- e(@L, X), N := M + 1.",
			"unbound variable M",
		},
		{
			"assign rebinds",
			"r1 a(@L, X) :- e(@L, X), X := 2.",
			"rebinds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = p.ValidateDELP()
			if err == nil {
				t.Fatalf("ValidateDELP accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateDELPAllowsAssignedHeadVars(t *testing.T) {
	src := `r1 a(@L, N) :- e(@L, X), N := X + 1.`
	p := MustParse(src)
	if err := p.ValidateDELP(); err != nil {
		t.Errorf("assignment-bound head var rejected: %v", err)
	}
}

func TestValidateDELPRecursiveFirstRule(t *testing.T) {
	// Figure 1: r1's head relation equals its own event relation; this is the
	// recursive forwarding rule and must be accepted.
	src := `r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).`
	p := MustParse(src)
	if err := p.ValidateDELP(); err != nil {
		t.Errorf("recursive rule rejected: %v", err)
	}
}
