package ndlog

import (
	"fmt"
	"strconv"

	"provcompress/internal/types"
)

// Parse parses NDlog source text into a Program. The relational atoms are
// split into event (first body atom) and slow-changing atoms; constraints
// and assignments are collected separately. Parse does not enforce the DELP
// restriction — call Program.ValidateDELP (or ParseDELP) for that.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("ndlog: empty program")
	}
	if _, err := prog.Arities(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseDELP parses src and validates the DELP restriction of Definition 1.
func ParseDELP(src string) (*Program, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := p.ValidateDELP(); err != nil {
		return nil, err
	}
	return p, nil
}

func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("ndlog: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errorf(t, "expected %s, found %s %q", k, t.kind, t.text)
	}
	return p.advance(), nil
}

// parseRule parses: label head ":-" bodyElem ("," bodyElem)* "."
func (p *parser) parseRule() (*Rule, error) {
	lbl, err := p.expect(tokIdent)
	if err != nil {
		return nil, fmt.Errorf("%w (rules start with a label, e.g. r1)", err)
	}
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDerive); err != nil {
		return nil, err
	}
	r := &Rule{Label: lbl.text, Head: head}
	sawEvent := false
	for {
		switch {
		case p.peek().kind == tokIdent && p.peek2().kind == tokLParen && p.isAtomStart():
			a, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			if !sawEvent {
				r.Event, sawEvent = a, true
			} else {
				r.Slow = append(r.Slow, a)
			}
		case p.peek().kind == tokVar && p.peek2().kind == tokAssign:
			v := p.advance()
			p.advance() // :=
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Assigns = append(r.Assigns, Assignment{Var: v.text, Expr: e})
		default:
			c, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			r.Constraints = append(r.Constraints, c)
		}
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return nil, err
	}
	if !sawEvent {
		return nil, fmt.Errorf("ndlog: rule %s has no event atom (first body atom must be a relation)", r.Label)
	}
	return r, nil
}

// isAtomStart distinguishes a relational atom `rel(@X, ...)` from a function
// call `f(X, ...)` at a body position: atoms carry the location specifier
// '@' on their first argument.
func (p *parser) isAtomStart() bool {
	// p.pos at IDENT, p.pos+1 at '('.
	if p.pos+2 < len(p.toks) {
		return p.toks[p.pos+2].kind == tokAt
	}
	return false
}

// parseAtom parses rel(@arg0, arg1, ..., argn).
func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, fmt.Errorf("%w (relation name)", err)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return Atom{}, err
	}
	a := Atom{Rel: name.text}
	for i := 0; ; i++ {
		if i == 0 {
			if _, err := p.expect(tokAt); err != nil {
				return Atom{}, fmt.Errorf("%w (the first attribute carries the location specifier '@')", err)
			}
		}
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Atom{}, err
	}
	return a, nil
}

// parseTerm parses an atom argument: a variable or a literal.
func (p *parser) parseTerm() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return Var{Name: t.text}, nil
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf(t, "bad integer %q: %v", t.text, err)
		}
		return Const{Val: types.Int(n)}, nil
	case tokString:
		p.advance()
		return Const{Val: types.String(t.text)}, nil
	case tokIdent:
		p.advance()
		switch t.text {
		case "true":
			return Const{Val: types.Bool(true)}, nil
		case "false":
			return Const{Val: types.Bool(false)}, nil
		default:
			// Bare lowercase identifiers are string constants (node names).
			return Const{Val: types.String(t.text)}, nil
		}
	case tokOp:
		if t.text == "-" && p.peek2().kind == tokInt {
			p.advance()
			it := p.advance()
			n, err := strconv.ParseInt(it.text, 10, 64)
			if err != nil {
				return nil, p.errorf(it, "bad integer %q: %v", it.text, err)
			}
			return Const{Val: types.Int(-n)}, nil
		}
	}
	return nil, p.errorf(t, "expected atom argument, found %s %q", t.kind, t.text)
}

// parseConstraint parses expr cmpop expr.
func (p *parser) parseConstraint() (Constraint, error) {
	l, err := p.parseExpr()
	if err != nil {
		return Constraint{}, err
	}
	t := p.peek()
	if t.kind != tokOp || !isCmpOp(t.text) {
		return Constraint{}, p.errorf(t, "expected comparison operator, found %s %q", t.kind, t.text)
	}
	p.advance()
	r, err := p.parseExpr()
	if err != nil {
		return Constraint{}, err
	}
	return Constraint{Op: CmpOp(t.text), L: l, R: r}, nil
}

func isCmpOp(s string) bool {
	switch CmpOp(s) {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// parseExpr parses addition-level expressions: mul (('+'|'-') mul)*.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.advance().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: BinOp(op), L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%") {
		op := p.advance().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: BinOp(op), L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.kind == tokOp && t.text == "-" {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: OpSub, L: ConstExpr{Val: types.Int(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return VarExpr{Name: t.text}, nil
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf(t, "bad integer %q: %v", t.text, err)
		}
		return ConstExpr{Val: types.Int(n)}, nil
	case tokString:
		p.advance()
		return ConstExpr{Val: types.String(t.text)}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.advance()
			return ConstExpr{Val: types.Bool(true)}, nil
		case "false":
			p.advance()
			return ConstExpr{Val: types.Bool(false)}, nil
		}
		if p.peek2().kind == tokLParen {
			return p.parseCall()
		}
		p.advance()
		return ConstExpr{Val: types.String(t.text)}, nil
	}
	return nil, p.errorf(t, "expected expression, found %s %q", t.kind, t.text)
}

func (p *parser) parseCall() (Expr, error) {
	name := p.advance() // IDENT
	p.advance()         // (
	call := CallExpr{Fn: name.text}
	if p.peek().kind != tokRParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return call, nil
}
