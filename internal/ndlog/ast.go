// Package ndlog implements the Network Datalog dialect of the paper: the
// abstract syntax, a lexer and parser for the concrete syntax used in
// Figures 1 and 19, and the validator for the DELP restriction
// (distributed event-driven linear programs, Definition 1).
//
// Concrete syntax, by example:
//
//	r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
//	r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
//
// Variables begin with an uppercase letter; bare lowercase identifiers are
// string constants (so `route(@n1, n3, n2)` denotes the concrete tuple of
// Figure 2); integers and quoted strings are literals. The first relational
// atom of a rule body is the rule's designated event atom; the remaining
// relational atoms are slow-changing condition atoms. `V := expr` is an
// assignment and `expr op expr` (==, !=, <, <=, >, >=) is a constraint.
// User-defined functions are invoked as `f_name(args)` inside expressions.
package ndlog

import (
	"fmt"
	"strings"

	"provcompress/internal/types"
)

// Term is an argument of a relational atom: either a Var or a Const.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Var is a variable occurrence, e.g. DT.
type Var struct{ Name string }

func (Var) isTerm()          {}
func (v Var) String() string { return v.Name }

// Const is a literal value, e.g. "data", 42, true, or a bare lowercase
// identifier like n1 (a string constant).
type Const struct{ Val types.Value }

func (Const) isTerm() {}
func (c Const) String() string {
	return c.Val.String()
}

// Atom is a relational atom rel(@a0, a1, ..., an). Args[0] carries the
// location specifier.
type Atom struct {
	Rel  string
	Args []Term
}

// Arity returns the number of attributes of the atom.
func (a Atom) Arity() int { return len(a.Args) }

// Vars returns the set of variable names occurring in the atom.
func (a Atom) Vars() map[string]bool {
	vs := make(map[string]bool)
	for _, t := range a.Args {
		if v, ok := t.(Var); ok {
			vs[v.Name] = true
		}
	}
	return vs
}

// VarPositions returns, for each variable name, the list of attribute
// indexes at which it occurs in the atom.
func (a Atom) VarPositions() map[string][]int {
	pos := make(map[string][]int)
	for i, t := range a.Args {
		if v, ok := t.(Var); ok {
			pos[v.Name] = append(pos[v.Name], i)
		}
	}
	return pos
}

// String renders the atom in concrete syntax.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 0 {
			b.WriteByte('@')
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Expr is an expression usable in constraints and assignments.
type Expr interface {
	fmt.Stringer
	isExpr()
	// FreeVars appends the variable names in the expression to dst.
	FreeVars(dst []string) []string
}

// VarExpr references a variable inside an expression.
type VarExpr struct{ Name string }

func (VarExpr) isExpr()          {}
func (v VarExpr) String() string { return v.Name }

// FreeVars appends the variable name.
func (v VarExpr) FreeVars(dst []string) []string { return append(dst, v.Name) }

// ConstExpr is a literal inside an expression.
type ConstExpr struct{ Val types.Value }

func (ConstExpr) isExpr()          {}
func (c ConstExpr) String() string { return c.Val.String() }

// FreeVars returns dst unchanged.
func (c ConstExpr) FreeVars(dst []string) []string { return dst }

// BinOp enumerates arithmetic operators.
type BinOp string

// Arithmetic operators.
const (
	OpAdd BinOp = "+"
	OpSub BinOp = "-"
	OpMul BinOp = "*"
	OpDiv BinOp = "/"
	OpMod BinOp = "%"
)

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

func (BinExpr) isExpr() {}
func (e BinExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R)
}

// FreeVars appends the variables of both operands.
func (e BinExpr) FreeVars(dst []string) []string {
	return e.R.FreeVars(e.L.FreeVars(dst))
}

// CallExpr is a user-defined function invocation, e.g. f_isSubDomain(DM, URL).
type CallExpr struct {
	Fn   string
	Args []Expr
}

func (CallExpr) isExpr() {}
func (e CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// FreeVars appends the variables of all arguments.
func (e CallExpr) FreeVars(dst []string) []string {
	for _, a := range e.Args {
		dst = a.FreeVars(dst)
	}
	return dst
}

// CmpOp enumerates comparison operators usable in constraints.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Constraint is an arithmetic atom in the paper's terminology: a comparison
// between two expressions that must hold for the rule to fire.
type Constraint struct {
	Op   CmpOp
	L, R Expr
}

// String renders the constraint in concrete syntax.
func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Assignment binds a fresh variable to the value of an expression,
// e.g. N := L + 2.
type Assignment struct {
	Var  string
	Expr Expr
}

// String renders the assignment in concrete syntax.
func (a Assignment) String() string {
	return fmt.Sprintf("%s := %s", a.Var, a.Expr)
}

// Rule is one event-driven rule: head :- event, slow..., constraints...,
// assignments... . The parser designates the first relational body atom as
// the event atom; all other relational atoms are slow-changing atoms.
type Rule struct {
	Label       string // e.g. "r1"
	Head        Atom
	Event       Atom
	Slow        []Atom
	Constraints []Constraint
	Assigns     []Assignment
}

// String renders the rule in concrete syntax.
func (r *Rule) String() string {
	var parts []string
	parts = append(parts, r.Event.String())
	for _, s := range r.Slow {
		parts = append(parts, s.String())
	}
	for _, c := range r.Constraints {
		parts = append(parts, c.String())
	}
	for _, a := range r.Assigns {
		parts = append(parts, a.String())
	}
	return fmt.Sprintf("%s %s :- %s.", r.Label, r.Head.String(), strings.Join(parts, ", "))
}

// Program is an ordered list of rules, the unit that the DELP validator and
// the static analysis operate on.
type Program struct {
	Name  string
	Rules []*Rule
}

// String renders the program in concrete syntax, one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Rule returns the rule with the given label, or nil.
func (p *Program) Rule(label string) *Rule {
	for _, r := range p.Rules {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// InputEvent returns the event relation of the first rule: the relation
// whose tuples are injected into the system to trigger executions.
func (p *Program) InputEvent() string {
	if len(p.Rules) == 0 {
		return ""
	}
	return p.Rules[0].Event.Rel
}

// HeadRelations returns the set of relations derived by some rule.
func (p *Program) HeadRelations() map[string]bool {
	hs := make(map[string]bool, len(p.Rules))
	for _, r := range p.Rules {
		hs[r.Head.Rel] = true
	}
	return hs
}

// SlowRelations returns the set of slow-changing relations: non-event body
// relations, which Definition 1 guarantees are never derived by the program.
func (p *Program) SlowRelations() map[string]bool {
	ss := make(map[string]bool)
	for _, r := range p.Rules {
		for _, s := range r.Slow {
			ss[s.Rel] = true
		}
	}
	return ss
}

// OutputRelations returns head relations that never appear as an event in
// any rule body — the "result" relations of the pipeline (e.g. recv, reply).
func (p *Program) OutputRelations() map[string]bool {
	events := make(map[string]bool)
	for _, r := range p.Rules {
		events[r.Event.Rel] = true
	}
	outs := make(map[string]bool)
	for _, r := range p.Rules {
		if !events[r.Head.Rel] {
			outs[r.Head.Rel] = true
		}
	}
	return outs
}

// RulesForEvent returns the rules whose event relation is rel, in program
// order. Several rules may share an event relation (e.g. r1/r2 of packet
// forwarding are both triggered by packet tuples).
func (p *Program) RulesForEvent(rel string) []*Rule {
	var rs []*Rule
	for _, r := range p.Rules {
		if r.Event.Rel == rel {
			rs = append(rs, r)
		}
	}
	return rs
}

// Arities returns the arity of every relation mentioned in the program, or
// an error if a relation is used with inconsistent arity.
func (p *Program) Arities() (map[string]int, error) {
	ar := make(map[string]int)
	record := func(a Atom, where string) error {
		if n, ok := ar[a.Rel]; ok && n != a.Arity() {
			return fmt.Errorf("ndlog: relation %s used with arity %d and %d (%s)", a.Rel, n, a.Arity(), where)
		}
		ar[a.Rel] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := record(r.Head, r.Label+" head"); err != nil {
			return nil, err
		}
		if err := record(r.Event, r.Label+" event"); err != nil {
			return nil, err
		}
		for _, s := range r.Slow {
			if err := record(s, r.Label+" body"); err != nil {
				return nil, err
			}
		}
	}
	return ar, nil
}
