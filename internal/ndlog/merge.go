package ndlog

import (
	"fmt"
)

// MergePrograms combines several DELPs into one rule set for joint
// deployment — the Section 8 future-work scenario of multiple network
// protocols running concurrently and sharing execution rules. Each input
// program must be a valid DELP on its own; rules that are textually
// identical across programs (same label, same structure) are shared, which
// is what lets the provenance compression share their rule-execution nodes
// across programs.
//
// The merge rejects combinations that would change semantics:
//
//   - two different rules with the same label (RIDs would collide);
//   - a relation used with inconsistent arities;
//   - a slow-changing relation of one program that another program derives
//     (condition 3 of Definition 1, applied across the union).
func MergePrograms(progs ...*Program) (*Program, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("ndlog: merge of zero programs")
	}
	for _, p := range progs {
		if err := p.ValidateDELP(); err != nil {
			return nil, fmt.Errorf("ndlog: merge input %q: %w", p.Name, err)
		}
	}
	merged := &Program{Name: "merged"}
	byLabel := make(map[string]*Rule)
	for _, p := range progs {
		for _, r := range p.Rules {
			if prev, ok := byLabel[r.Label]; ok {
				if prev.String() != r.String() {
					return nil, fmt.Errorf(
						"ndlog: merge: label %s names different rules:\n  %s\n  %s",
						r.Label, prev, r)
				}
				continue // identical shared rule
			}
			byLabel[r.Label] = r
			merged.Rules = append(merged.Rules, r)
		}
	}
	if _, err := merged.Arities(); err != nil {
		return nil, fmt.Errorf("ndlog: merge: %w", err)
	}
	heads := merged.HeadRelations()
	for _, r := range merged.Rules {
		for _, s := range r.Slow {
			if heads[s.Rel] {
				return nil, fmt.Errorf(
					"ndlog: merge: relation %s is slow-changing in rule %s but derived by another program",
					s.Rel, r.Label)
			}
		}
	}
	return merged, nil
}

// InputEvents returns the input event relations of the original programs,
// deduplicated in order — the relations whose tuples are injected from
// outside.
func InputEvents(progs ...*Program) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range progs {
		ev := p.InputEvent()
		if ev != "" && !seen[ev] {
			seen[ev] = true
			out = append(out, ev)
		}
	}
	return out
}
