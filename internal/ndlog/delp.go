package ndlog

import (
	"errors"
	"fmt"
)

// ValidateDELP checks that the program is a distributed event-driven linear
// program per Definition 1 of the paper:
//
//  1. each rule is event-driven (head :- event, conditions) — the parser
//     guarantees the structural part; validation additionally checks rule
//     safety (every head variable is bound by the body);
//  2. consecutive rules are dependent: the head relation of rule i is the
//     event relation of rule i+1;
//  3. head relations only appear as event relations in rule bodies, never
//     as slow-changing atoms.
//
// All violations found are reported, joined into one error.
func (p *Program) ValidateDELP() error {
	var errs []error
	if len(p.Rules) == 0 {
		return errors.New("ndlog: delp: empty program")
	}

	// Condition 2: consecutive dependence.
	for i := 0; i+1 < len(p.Rules); i++ {
		cur, next := p.Rules[i], p.Rules[i+1]
		if cur.Head.Rel != next.Event.Rel {
			errs = append(errs, fmt.Errorf(
				"ndlog: delp: rules %s and %s are not dependent: head relation %s of %s is not the event relation %s of %s",
				cur.Label, next.Label, cur.Head.Rel, cur.Label, next.Event.Rel, next.Label))
		}
	}

	// Condition 3: head relations never appear as non-event body atoms.
	heads := p.HeadRelations()
	for _, r := range p.Rules {
		for _, s := range r.Slow {
			if heads[s.Rel] {
				errs = append(errs, fmt.Errorf(
					"ndlog: delp: head relation %s appears as a non-event atom in rule %s",
					s.Rel, r.Label))
			}
		}
	}

	// The input event relation is a stream, not state: it must not be used
	// as a slow-changing atom.
	input := p.InputEvent()
	for _, r := range p.Rules {
		for _, s := range r.Slow {
			if s.Rel == input {
				errs = append(errs, fmt.Errorf(
					"ndlog: delp: input event relation %s used as a slow-changing atom in rule %s",
					input, r.Label))
			}
		}
	}

	// Duplicate rule labels would break provenance RIDs.
	seen := make(map[string]bool, len(p.Rules))
	for _, r := range p.Rules {
		if seen[r.Label] {
			errs = append(errs, fmt.Errorf("ndlog: delp: duplicate rule label %s", r.Label))
		}
		seen[r.Label] = true
	}

	// Safety per rule.
	for _, r := range p.Rules {
		if err := r.checkSafety(); err != nil {
			errs = append(errs, err)
		}
	}

	return errors.Join(errs...)
}

// checkSafety verifies that every variable consumed by the rule (in the
// head, constraints, and assignment right-hand sides) is bound by the event
// atom, a slow-changing atom, or a preceding assignment, and that no
// assignment rebinds an already-bound variable.
func (r *Rule) checkSafety() error {
	bound := make(map[string]bool)
	for v := range r.Event.Vars() {
		bound[v] = true
	}
	for _, s := range r.Slow {
		for v := range s.Vars() {
			bound[v] = true
		}
	}
	var errs []error
	for _, a := range r.Assigns {
		for _, v := range a.Expr.FreeVars(nil) {
			if !bound[v] {
				errs = append(errs, fmt.Errorf(
					"ndlog: delp: rule %s: assignment %s uses unbound variable %s", r.Label, a, v))
			}
		}
		if bound[a.Var] {
			errs = append(errs, fmt.Errorf(
				"ndlog: delp: rule %s: assignment rebinds variable %s", r.Label, a.Var))
		}
		bound[a.Var] = true
	}
	for _, c := range r.Constraints {
		for _, v := range c.R.FreeVars(c.L.FreeVars(nil)) {
			if !bound[v] {
				errs = append(errs, fmt.Errorf(
					"ndlog: delp: rule %s: constraint %s uses unbound variable %s", r.Label, c, v))
			}
		}
	}
	for v := range r.Head.Vars() {
		if !bound[v] {
			errs = append(errs, fmt.Errorf(
				"ndlog: delp: rule %s: head variable %s is unbound", r.Label, v))
		}
	}
	return errors.Join(errs...)
}
