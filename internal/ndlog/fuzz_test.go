package ndlog

import (
	"testing"
)

// FuzzParse checks the parser never panics and that accepted programs
// survive a print/reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		forwardingSrc,
		dnsSrc,
		`r1 a(@L, X) :- b(@L, X), X == 1.`,
		`r1 a(@L, N) :- b(@L, X), N := X * 2 + 1.`,
		`r1 a(@L, B) :- b(@L, X), B := f_check(X, "s"), B == true.`,
		`r1 a(@L) :- b(@L). // comment`,
		`r1 a(@L) :- b(@L). /* block */`,
		`r1 a(@"quoted loc") :- b(@L).`,
		"r1 a(@L, -5) :- b(@L).",
		"", "r1", "r1 a(@L :-", `r1 a(@L, "unterminated) :- b(@L).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted programs must print and reparse to the same text.
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of printed program failed: %v\nprinted:\n%s", err, printed)
		}
		if again.String() != printed {
			t.Fatalf("print/parse not a fixpoint:\n%q\nvs\n%q", printed, again.String())
		}
		// DELP validation must not panic either way.
		_ = prog.ValidateDELP()
	})
}
