// Package wire provides the binary serialization used by the real-socket
// cluster runtime (internal/cluster) and the framing for its TCP protocol.
// It plays the role boost::serialization plays in the paper's prototype:
// a compact, deterministic encoding of tuples, identifiers, and provenance
// table rows.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"provcompress/internal/types"
)

// MaxFrameSize bounds a single frame; larger frames indicate corruption.
const MaxFrameSize = 64 << 20

// bufPool recycles encode/staging buffers for the ingest hot path; it
// stores *[]byte slots so the slice headers themselves are recycled too
// (Put(&local) would heap-allocate a header per cycle). Empty slots
// released by GetBuf wait in slotPool for the next PutBuf, so a
// steady-state Get/Put cycle allocates nothing at all.
var (
	bufPool = sync.Pool{
		New: func() any {
			b := make([]byte, 0, 4<<10)
			return &b
		},
	}
	slotPool = sync.Pool{New: func() any { return new([]byte) }}
)

// maxPooledCap is the largest buffer the pool retains. Occasional giants
// (a partition handoff snapshot, a huge walk result) are left to the GC
// instead of pinning their memory in the pool forever.
const maxPooledCap = 1 << 20

// GetBuf returns an empty pooled buffer. Pass it to Encoder.SetBuf (or
// append to it directly) and hand it back with PutBuf once the bytes are
// no longer referenced; each cycle through the pool is an allocation the
// hot path does not make.
func GetBuf() []byte {
	slot := bufPool.Get().(*[]byte)
	b := (*slot)[:0]
	*slot = nil
	slotPool.Put(slot)
	return b
}

// PutBuf recycles a buffer obtained from GetBuf. The caller must not
// touch the slice (or anything aliasing it) afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	slot := slotPool.Get().(*[]byte)
	*slot = b[:0]
	bufPool.Put(slot)
}

// Encoder appends primitive values to a growing buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with an optional initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// SetBuf points the encoder at an existing buffer (typically from
// GetBuf), so encoding appends into recycled storage instead of growing
// a fresh allocation.
func (e *Encoder) SetBuf(b []byte) { e.buf = b }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Raw appends pre-encoded bytes verbatim (no length prefix). The cluster
// transport uses it to nest an already-encoded frame inside its delivery
// envelope.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// ID appends a fixed-size identifier.
func (e *Encoder) ID(id types.ID) { e.buf = append(e.buf, id[:]...) }

// Blob appends a length-prefixed byte string. The membership subsystem
// uses it to nest an opaque payload (a node snapshot, a WAL record)
// inside a handoff or replication frame without the outer codec knowing
// the payload's layout.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Bool appends a boolean byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Tuple appends a tuple in its canonical encoding, length-prefixed.
func (e *Encoder) Tuple(t types.Tuple) {
	enc := t.Encode()
	e.U32(uint32(len(enc)))
	e.buf = append(e.buf, enc...)
}

// Decoder consumes primitive values from a buffer. The first error sticks;
// check Err after decoding.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated %s at offset %d", what, d.off)
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// ID reads a fixed-size identifier.
func (d *Decoder) ID() types.ID {
	var id types.ID
	if d.err != nil || d.off+len(id) > len(d.buf) {
		d.fail("id")
		return id
	}
	copy(id[:], d.buf[d.off:])
	d.off += len(id)
	return id
}

// Bool reads a boolean byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Blob reads a length-prefixed byte string. The returned slice aliases
// the decoder's buffer; callers that retain it past the buffer's life
// must copy.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("blob")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Tuple reads a length-prefixed tuple.
func (d *Decoder) Tuple() types.Tuple {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail("tuple")
		return types.Tuple{}
	}
	t, used, err := types.DecodeTuple(d.buf[d.off : d.off+n])
	if err != nil || used != n {
		if d.err == nil {
			d.err = fmt.Errorf("wire: bad tuple at offset %d: %v", d.off, err)
		}
		return types.Tuple{}
	}
	d.off += n
	return t
}

// WriteFrame writes a 4-byte big-endian length prefix followed by the
// payload as a single Write: header and payload are staged into one
// pooled buffer so a frame costs one syscall, not two, and a concurrent
// writer can never interleave between prefix and body.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	buf := GetBuf()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	PutBuf(buf)
	return err
}

// ReadFrame reads one length-prefixed frame into a fresh buffer.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameBuf(r, nil)
}

// ReadFrameBuf reads one length-prefixed frame, reusing buf's storage
// when it is large enough (growing it otherwise). A receive loop that
// threads the returned slice back in as the next call's buf decodes its
// whole connection with a single steady-state buffer. The returned slice
// aliases buf; callers that retain decoded data must copy it out before
// the next read.
func ReadFrameBuf(r io.Reader, buf []byte) ([]byte, error) {
	// The length prefix is read into the reusable buffer too (a
	// stack-local header array would escape through the io.Reader call
	// and cost an allocation per frame).
	if cap(buf) < 4 {
		buf = make([]byte, 4<<10)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
