//go:build race

package wire

// raceEnabled reports whether this test binary was built with the race
// detector, which deliberately randomizes sync.Pool reuse (Put drops
// items on the floor to widen interleaving coverage) and so makes
// alloc-count contracts unmeasurable.
const raceEnabled = true
