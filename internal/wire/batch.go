package wire

import "fmt"

// Batch codec: the body of a frameBatch delivery. A batch carries N
// already-encoded sub-frames, each with the (seq, epoch) pair it would
// have carried in its own delivery envelope, so the receiver's duplicate
// filter and in-flight accounting work per sub-frame exactly as they do
// for singles — a redelivered batch is N individually-suppressed
// duplicates, never a double apply.
//
// Layout after the sender header (kind, from, incarnation):
//
//	u32 count
//	count × { u64 seq, u64 epoch, payload section }
//
// where a payload section is either raw
//
//	u8 0, u32 len, len bytes
//
// or delta-encoded against the previous sub-frame's payload
//
//	u8 1, u32 prefixLen, u32 suffixLen, u32 midLen, midLen bytes
//
// meaning: the first prefixLen and last suffixLen bytes equal the
// previous payload's, with midLen fresh bytes between. Consecutive tuple
// shipments of one link share relation names, trace headers, and (per
// the paper's observation) near-identical equivalence keys and AdvMeta
// piggybacks, so the delta routinely removes most of a sub-frame.

// MaxBatchEntries bounds the sub-frame count one batch may carry; larger
// counts indicate corruption.
const MaxBatchEntries = 1 << 12

// BatchEntry is one sub-frame of a batch.
type BatchEntry struct {
	Seq     uint64
	Epoch   uint64
	Payload []byte
}

const (
	batchRaw   = 0
	batchDelta = 1
)

// deltaSplit returns the length of the longest common prefix and suffix
// between prev and cur, with prefix+suffix never exceeding either length
// (the regions must not overlap on the shorter side).
func deltaSplit(prev, cur []byte) (prefix, suffix int) {
	n := len(prev)
	if len(cur) < n {
		n = len(cur)
	}
	for prefix < n && prev[prefix] == cur[prefix] {
		prefix++
	}
	for suffix < n-prefix && prev[len(prev)-1-suffix] == cur[len(cur)-1-suffix] {
		suffix++
	}
	return prefix, suffix
}

// AppendBatch appends the batch body for entries to dst and returns the
// grown buffer plus the encoded payload-section size of each entry
// (appended to sizes), which is what the sender attributes to the
// entry's byte class — everything else in the delivery is batch framing
// overhead. With compress set, each payload after the first is delta
// encoded against its predecessor when that is smaller than raw.
func AppendBatch(dst []byte, entries []BatchEntry, compress bool, sizes []int) ([]byte, []int) {
	dst = appendU32(dst, uint32(len(entries)))
	var prev []byte
	for _, ent := range entries {
		dst = appendU64(dst, ent.Seq)
		dst = appendU64(dst, ent.Epoch)
		start := len(dst)
		if compress && prev != nil {
			prefix, suffix := deltaSplit(prev, ent.Payload)
			// The delta section costs 13 header bytes against raw's 5;
			// take it only when the shared regions pay for the difference.
			if prefix+suffix >= 8 {
				mid := ent.Payload[prefix : len(ent.Payload)-suffix]
				dst = append(dst, batchDelta)
				dst = appendU32(dst, uint32(prefix))
				dst = appendU32(dst, uint32(suffix))
				dst = appendU32(dst, uint32(len(mid)))
				dst = append(dst, mid...)
				sizes = append(sizes, len(dst)-start)
				prev = ent.Payload
				continue
			}
		}
		dst = append(dst, batchRaw)
		dst = appendU32(dst, uint32(len(ent.Payload)))
		dst = append(dst, ent.Payload...)
		sizes = append(sizes, len(dst)-start)
		prev = ent.Payload
	}
	return dst, sizes
}

// DecodeBatch decodes a batch body in two passes: a validating scan
// that sizes the delta arena, then materialization — so a whole batch
// costs two allocations (the entries slice and the arena), not one per
// entry. Raw payloads alias the decoder's buffer; either way the
// returned entries are only valid until the caller reuses that buffer.
func DecodeBatch(d *Decoder) ([]BatchEntry, error) {
	count := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if count < 0 || count > MaxBatchEntries {
		return nil, fmt.Errorf("wire: batch with %d entries", count)
	}
	scan := *d
	arenaSize, err := scanBatch(&scan, count)
	if err != nil {
		return nil, err
	}
	entries := make([]BatchEntry, 0, count)
	arena := make([]byte, 0, arenaSize)
	var prev []byte
	for i := 0; i < count; i++ {
		seq := d.U64()
		epoch := d.U64()
		var payload []byte
		if d.U8() == batchRaw {
			payload = d.Blob()
		} else {
			prefix := int(d.U32())
			suffix := int(d.U32())
			mid := d.Blob()
			start := len(arena)
			arena = append(arena, prev[:prefix]...)
			arena = append(arena, mid...)
			arena = append(arena, prev[len(prev)-suffix:]...)
			payload = arena[start:len(arena):len(arena)]
		}
		entries = append(entries, BatchEntry{Seq: seq, Epoch: epoch, Payload: payload})
		prev = payload
	}
	return entries, nil
}

// scanBatch validates every entry header of a batch body and returns how
// many bytes the delta payloads will materialize to. Only payload
// lengths need tracking: a delta's (prefix, suffix) are valid against
// the previous payload's length regardless of its contents.
func scanBatch(d *Decoder, count int) (int, error) {
	arenaSize, prevLen, decoded := 0, 0, 0
	for i := 0; i < count; i++ {
		d.U64() // seq
		d.U64() // epoch
		switch flag := d.U8(); flag {
		case batchRaw:
			b := d.Blob()
			if d.Err() != nil {
				return 0, d.Err()
			}
			prevLen = len(b)
		case batchDelta:
			prefix := int(d.U32())
			suffix := int(d.U32())
			mid := d.Blob()
			if d.Err() != nil {
				return 0, d.Err()
			}
			if prefix < 0 || suffix < 0 || prefix+suffix > prevLen {
				return 0, fmt.Errorf("wire: batch delta (%d,%d) against %d-byte base", prefix, suffix, prevLen)
			}
			if i == 0 {
				return 0, fmt.Errorf("wire: batch opens with a delta entry")
			}
			prevLen = prefix + len(mid) + suffix
			arenaSize += prevLen
		default:
			return 0, fmt.Errorf("wire: batch entry with unknown encoding %d", flag)
		}
		decoded += prevLen
		if decoded > MaxFrameSize {
			return 0, fmt.Errorf("wire: batch decodes past the frame limit")
		}
	}
	return arenaSize, nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
