package wire

import "fmt"

// Key-set codec: the canonical wire form of a set of 64-bit invalidation
// keys (the equivalence-class / VID tags cached query answers carry, see
// internal/cluster and DESIGN.md §14). The set travels inside walk frames
// and is stored verbatim in cache tags, so the encoding is strict:
//
//   - uvarint count
//   - uvarint first key
//   - uvarint deltas between consecutive keys (strictly positive)
//
// Keys must be sorted ascending with no duplicates; deltas of zero,
// non-minimal varints, overflowing sums, and oversized counts are all
// decode errors. Rejecting every non-canonical byte string is what keeps
// a malformed or hostile frame from ever mis-invalidating (or worse,
// mis-validating) a cache entry: there is exactly one byte string per
// set, so decode∘encode is the identity and encode∘decode is too.

// MaxKeySetLen bounds a decoded key set, mirroring the walk-frame item
// guard (a walk cannot legitimately touch more keys than items).
const MaxKeySetLen = 1 << 20

// AppendKeySet encodes a key set into the encoder. keys must be sorted
// strictly ascending (use NormalizeKeySet first if unsure); the encoding
// of an unsorted or duplicated slice would be rejected by DecodeKeySet.
func (e *Encoder) AppendKeySet(keys []uint64) {
	e.uvarint(uint64(len(keys)))
	prev := uint64(0)
	for i, k := range keys {
		if i == 0 {
			e.uvarint(k)
		} else {
			e.uvarint(k - prev)
		}
		prev = k
	}
}

// DecodeKeySet decodes a canonical key set, returning the sorted keys.
// Every deviation from the canonical form — truncation, a zero delta
// (duplicate key), a non-minimal varint, a sum overflowing 64 bits, or a
// count past MaxKeySetLen — is an error and poisons the decoder.
func (d *Decoder) DecodeKeySet() ([]uint64, error) {
	n, err := d.canonicalUvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxKeySetLen {
		d.fail("key set too large")
		return nil, fmt.Errorf("wire: key set with %d keys", n)
	}
	if n == 0 {
		return nil, nil
	}
	keys := make([]uint64, 0, n)
	cur, err := d.canonicalUvarint()
	if err != nil {
		return nil, err
	}
	keys = append(keys, cur)
	for i := uint64(1); i < n; i++ {
		delta, err := d.canonicalUvarint()
		if err != nil {
			return nil, err
		}
		if delta == 0 {
			d.fail("key set delta")
			return nil, fmt.Errorf("wire: duplicate key in set")
		}
		next := cur + delta
		if next < cur {
			d.fail("key set overflow")
			return nil, fmt.Errorf("wire: key set delta overflows")
		}
		cur = next
		keys = append(keys, cur)
	}
	return keys, nil
}

// NormalizeKeySet sorts and deduplicates a key slice in place, returning
// the canonical set AppendKeySet expects.
func NormalizeKeySet(keys []uint64) []uint64 {
	if len(keys) < 2 {
		return keys
	}
	// Insertion sort: sets are small and usually nearly sorted already.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// uvarint appends the minimal LEB128 encoding of v.
func (e *Encoder) uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// canonicalUvarint reads a uvarint and rejects non-minimal encodings
// (a padded varint would give two byte strings for one set, breaking the
// one-encoding-per-set property the cache tags rely on).
func (d *Decoder) canonicalUvarint() (uint64, error) {
	var v uint64
	var shift uint
	start := d.off
	for {
		if d.off >= len(d.buf) {
			d.fail("uvarint")
			return 0, fmt.Errorf("wire: truncated uvarint")
		}
		b := d.buf[d.off]
		d.off++
		if shift == 63 && b > 1 {
			d.fail("uvarint")
			return 0, fmt.Errorf("wire: uvarint overflows 64 bits")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			n := d.off - start
			if n > 1 && b == 0 {
				d.fail("uvarint")
				return 0, fmt.Errorf("wire: non-minimal uvarint")
			}
			return v, nil
		}
		shift += 7
		if shift > 63 {
			d.fail("uvarint")
			return 0, fmt.Errorf("wire: uvarint too long")
		}
	}
}
