package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func encodeKeySet(keys []uint64) []byte {
	e := NewEncoder(16)
	e.AppendKeySet(keys)
	return e.Bytes()
}

func TestKeySetRoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{1},
		{0, 1, 2, 3},
		{7, 1 << 20, 1 << 40, 1<<64 - 1},
		{42},
		{0, 1<<64 - 1},
	}
	for _, keys := range cases {
		raw := encodeKeySet(keys)
		d := NewDecoder(raw)
		got, err := d.DecodeKeySet()
		if err != nil {
			t.Fatalf("decode(%v): %v", keys, err)
		}
		if len(got) != len(keys) {
			t.Fatalf("decode(%v) = %v", keys, got)
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("decode(%v) = %v", keys, got)
			}
		}
		if d.Remaining() != 0 {
			t.Fatalf("decode(%v) left %d bytes", keys, d.Remaining())
		}
	}
}

func TestKeySetRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := rng.Intn(64)
		keys := make([]uint64, n)
		for j := range keys {
			keys[j] = rng.Uint64() >> uint(rng.Intn(60))
		}
		keys = NormalizeKeySet(keys)
		raw := encodeKeySet(keys)
		got, err := NewDecoder(raw).DecodeKeySet()
		if err != nil {
			t.Fatalf("decode: %v (keys %v)", err, keys)
		}
		if !bytes.Equal(encodeKeySet(got), raw) {
			t.Fatalf("re-encode mismatch for %v", keys)
		}
	}
}

func TestKeySetRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"truncated count":    {0x80},
		"truncated first":    {2, 0x81},
		"truncated delta":    {2, 1},
		"zero delta (dup)":   {2, 5, 0},
		"non-minimal varint": {1, 0x85, 0x00},
		"non-minimal count":  {0x81, 0x00, 1},
		"overflow delta":     {2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x02},
		"oversized count":    {0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, raw := range cases {
		d := NewDecoder(raw)
		if got, err := d.DecodeKeySet(); err == nil {
			t.Errorf("%s: decoded %v, want error", name, got)
		}
		if d.Err() == nil {
			t.Errorf("%s: decoder not poisoned", name)
		}
	}
}

func TestNormalizeKeySet(t *testing.T) {
	got := NormalizeKeySet([]uint64{9, 1, 9, 3, 1, 0})
	want := []uint64{0, 1, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("normalize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalize = %v", got)
		}
	}
}

// FuzzCacheKeyRoundTrip fuzzes the key-set codec the cache tags travel
// in. The invariant is strict canonicality both ways: every decodable
// byte string re-encodes to exactly itself (no two encodings of one
// set), and every encoded set decodes back to exactly the keys that went
// in. A malformed input must error — never silently produce a different
// key set, which is how a corrupt frame could mis-invalidate (or fail to
// invalidate) cached provenance.
func FuzzCacheKeyRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 42})
	f.Add(encodeKeySet([]uint64{0, 1, 2, 1 << 33}))
	f.Add(encodeKeySet([]uint64{7, 9, 1<<64 - 1}))
	f.Add([]byte{2, 5, 0})
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, raw []byte) {
		d := NewDecoder(raw)
		keys, err := d.DecodeKeySet()
		if err != nil {
			if d.Err() == nil {
				t.Fatal("decode error without poisoning the decoder")
			}
			return // malformed input rejected: the only acceptable failure
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("decoded set not strictly ascending: %v", keys)
			}
		}
		// Canonicality: the decoded set must re-encode to the exact bytes
		// consumed (trailing garbage after the set is the caller's concern).
		reenc := encodeKeySet(keys)
		consumed := len(raw) - d.Remaining()
		if !bytes.Equal(reenc, raw[:consumed]) {
			t.Fatalf("re-encode differs: in %x, out %x", raw[:consumed], reenc)
		}
		// And the opposite direction: encode∘decode is the identity.
		back, err := NewDecoder(reenc).DecodeKeySet()
		if err != nil || len(back) != len(keys) {
			t.Fatalf("re-decode: %v (%d keys, want %d)", err, len(back), len(keys))
		}
		for i := range keys {
			if back[i] != keys[i] {
				t.Fatalf("re-decode changed keys: %v -> %v", keys, back)
			}
		}
	})
}
