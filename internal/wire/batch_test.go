package wire

import (
	"bytes"
	"io"
	"testing"
)

func batchOf(payloads ...[]byte) []BatchEntry {
	entries := make([]BatchEntry, len(payloads))
	for i, p := range payloads {
		entries[i] = BatchEntry{Seq: uint64(i + 1), Epoch: uint64(100 + i), Payload: p}
	}
	return entries
}

func decodeBody(t *testing.T, body []byte) []BatchEntry {
	t.Helper()
	d := NewDecoder(body)
	entries, err := DecodeBatch(d)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after batch", d.Remaining())
	}
	return entries
}

func checkRoundTrip(t *testing.T, in []BatchEntry, compress bool) []int {
	t.Helper()
	body, sizes := AppendBatch(nil, in, compress, nil)
	if len(sizes) != len(in) {
		t.Fatalf("%d sizes for %d entries", len(sizes), len(in))
	}
	// The per-entry payload sections plus the fixed framing must account
	// for every encoded byte — this is the attribution invariant the
	// transport relies on to keep class sums equal to link totals.
	framing := 4 + 16*len(in)
	total := framing
	for _, s := range sizes {
		total += s
	}
	if total != len(body) {
		t.Fatalf("sizes sum %d + framing != body %d", total, len(body))
	}
	out := decodeBody(t, body)
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Seq != in[i].Seq || out[i].Epoch != in[i].Epoch {
			t.Fatalf("entry %d header (%d,%d), want (%d,%d)", i, out[i].Seq, out[i].Epoch, in[i].Seq, in[i].Epoch)
		}
		if !bytes.Equal(out[i].Payload, in[i].Payload) {
			t.Fatalf("entry %d payload %q, want %q", i, out[i].Payload, in[i].Payload)
		}
	}
	return sizes
}

func TestBatchRoundTrip(t *testing.T) {
	cases := [][]BatchEntry{
		batchOf(),
		batchOf([]byte{}),
		batchOf([]byte("solo")),
		batchOf([]byte("tuple:packet:n0:n4:aaaa"), []byte("tuple:packet:n0:n4:aaab"), []byte("tuple:packet:n0:n4:aaac")),
		batchOf([]byte("short"), bytes.Repeat([]byte{7}, 4096), []byte{}, []byte("short")),
		batchOf([]byte("same"), []byte("same"), []byte("same")),
	}
	for i, in := range cases {
		for _, compress := range []bool{false, true} {
			t.Logf("case %d compress=%v", i, compress)
			checkRoundTrip(t, in, compress)
		}
	}
}

// TestBatchDeltaCompresses pins that near-identical consecutive payloads
// (the AdvMeta piggyback shape: same relation, same equivalence key, a
// few differing bytes) actually shrink on the wire.
func TestBatchDeltaCompresses(t *testing.T) {
	base := append(bytes.Repeat([]byte{0xAB}, 200), []byte("payload-000")...)
	var entries []BatchEntry
	for i := 0; i < 64; i++ {
		p := append([]byte(nil), base...)
		p[205] = byte(i) // a few bytes differ per frame
		entries = append(entries, BatchEntry{Seq: uint64(i), Epoch: uint64(i), Payload: p})
	}
	raw, _ := AppendBatch(nil, entries, false, nil)
	comp, sizes := AppendBatch(nil, entries, true, nil)
	if len(comp) >= len(raw)/4 {
		t.Fatalf("delta encoding saved too little: %d compressed vs %d raw", len(comp), len(raw))
	}
	// Every entry after the first should have taken the delta path.
	for i, s := range sizes {
		if i > 0 && s >= len(entries[i].Payload) {
			t.Fatalf("entry %d section %d bytes >= raw payload %d", i, s, len(entries[i].Payload))
		}
	}
	checkRoundTrip(t, entries, true)
}

func TestBatchDecodeRejectsCorruption(t *testing.T) {
	deltaNoBase := appendU32(nil, 1)
	deltaNoBase = appendU64(deltaNoBase, 1)
	deltaNoBase = appendU64(deltaNoBase, 1)
	deltaNoBase = append(deltaNoBase, batchDelta)
	deltaNoBase = appendU32(deltaNoBase, 4) // prefix vs an empty base
	deltaNoBase = appendU32(deltaNoBase, 0)
	deltaNoBase = appendU32(deltaNoBase, 0)
	unknownFlag := appendU32(nil, 1)
	unknownFlag = appendU64(unknownFlag, 1)
	unknownFlag = appendU64(unknownFlag, 1)
	unknownFlag = append(unknownFlag, 99)
	cases := map[string][]byte{
		"huge count":     appendU32(nil, MaxBatchEntries+1),
		"truncated":      appendU32(nil, 2),
		"unknown flag":   unknownFlag,
		"delta no base":  deltaNoBase,
		"delta oversize": buildBadDelta(),
	}
	for name, body := range cases {
		if _, err := DecodeBatch(NewDecoder(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// buildBadDelta encodes a raw entry then a delta whose prefix+suffix
// exceed the base payload's length.
func buildBadDelta() []byte {
	body, _ := AppendBatch(nil, batchOf([]byte("base")), false, nil)
	body = appendU64(appendU64(body, 2), 2)
	body = append(body, batchDelta)
	body = appendU32(body, 3) // prefix
	body = appendU32(body, 3) // suffix: 3+3 > len("base")
	body = appendU32(body, 0) // mid
	// Patch the count to 2.
	count := appendU32(nil, 2)
	copy(body, count)
	return body
}

// TestPooledEncodeAllocs pins the pooled hot path: staging a batch into
// a pooled buffer and writing it as one frame must not allocate in
// steady state, and decoding it must cost O(1) allocations per batch,
// not per entry.
func TestPooledEncodeAllocs(t *testing.T) {
	if raceEnabled {
		// The race detector randomly drops sync.Pool items to widen
		// interleaving coverage, so the zero-alloc contract is not
		// measurable here; `make ingest-smoke` enforces it race-free.
		t.Skip("sync.Pool reuse is randomized under the race detector")
	}
	payload := bytes.Repeat([]byte{0xC3}, 128)
	entries := make([]BatchEntry, 64)
	for i := range entries {
		p := append([]byte(nil), payload...)
		p[5] = byte(i)
		entries[i] = BatchEntry{Seq: uint64(i), Epoch: uint64(i), Payload: p}
	}
	sizes := make([]int, 0, len(entries))
	if n := testing.AllocsPerRun(200, func() {
		buf := GetBuf()
		buf, sizes = AppendBatch(buf, entries, true, sizes[:0])
		if err := WriteFrame(io.Discard, buf); err != nil {
			t.Fatal(err)
		}
		PutBuf(buf)
	}); n > 0 {
		t.Fatalf("pooled encode+write path allocates %.1f times per batch, want 0", n)
	}

	body, _ := AppendBatch(nil, entries, true, nil)
	if n := testing.AllocsPerRun(200, func() {
		if _, err := DecodeBatch(NewDecoder(body)); err != nil {
			t.Fatal(err)
		}
	}); n > 4 {
		t.Fatalf("batch decode allocates %.1f times per %d-entry batch, want <= 4", n, len(entries))
	}
}

// TestReadFrameBufReuses pins the pooled read path: a loop threading the
// returned buffer back in must not allocate once the buffer has grown to
// the stream's frame size.
func TestReadFrameBufReuses(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 8; i++ {
		if err := WriteFrame(&stream, bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
	}
	raw := stream.Bytes()
	r := bytes.NewReader(raw)
	buf := make([]byte, 512)
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(raw)
		for {
			p, err := ReadFrameBuf(r, buf)
			if err != nil {
				break
			}
			buf = p
		}
	}); n > 0 {
		t.Fatalf("pooled frame reads allocate %.1f times per pass, want 0", n)
	}
}
