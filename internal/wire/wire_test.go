package wire

import (
	"bytes"
	"testing"

	"provcompress/internal/types"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.U8(7)
	e.U32(123456)
	e.U64(1 << 40)
	e.Str("hello")
	e.Str("")
	e.Bool(true)
	e.Bool(false)
	id := types.HashBytes([]byte("x"))
	e.ID(id)
	tp := types.NewTuple("packet", types.String("n1"), types.Int(-9))
	e.Tuple(tp)

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 123456 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("empty Str = %q", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool mismatch")
	}
	if got := d.ID(); got != id {
		t.Errorf("ID = %v", got)
	}
	if got := d.Tuple(); !got.Equal(tp) {
		t.Errorf("Tuple = %v", got)
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(0)
	e.Str("payload")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.Str()
		if d.Err() == nil {
			t.Errorf("cut %d: no error", cut)
		}
		// Errors stick: further reads stay failed and return zero values.
		if d.U32() != 0 || d.Err() == nil {
			t.Errorf("cut %d: error did not stick", cut)
		}
	}
}

func TestDecoderBadTuple(t *testing.T) {
	e := NewEncoder(0)
	e.U32(3)
	e.U8(0xFF)
	e.U8(0xFF)
	e.U8(0xFF)
	d := NewDecoder(e.Bytes())
	d.Tuple()
	if d.Err() == nil {
		t.Error("bad tuple bytes accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, []byte("three")}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("read past last frame succeeded")
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversized write accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized read accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:6] // header + 2 of 5 payload bytes
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated payload accepted")
	}
}
