package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame checks the frame reader against arbitrary input.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully read frame must round trip.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:4+len(payload)]) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

// FuzzDecoderTuple checks the buffer decoder against arbitrary bytes.
func FuzzDecoderTuple(f *testing.F) {
	e := NewEncoder(0)
	e.Str("hello")
	e.U32(7)
	f.Add(e.Bytes())
	f.Add([]byte{0, 0, 0, 3, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Str()
		_ = d.U32()
		_ = d.Tuple()
		_ = d.ID()
		_ = d.Bool()
		_ = d.Err() // must never panic
	})
}
