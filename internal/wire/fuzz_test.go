package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame checks the frame reader against arbitrary input.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully read frame must round trip.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:4+len(payload)]) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

// FuzzBatchDecode throws arbitrary bytes at the frameBatch body decoder:
// it must reject or decode, never panic, and anything it decodes must
// re-encode to a body that decodes to the same entries.
func FuzzBatchDecode(f *testing.F) {
	seed, _ := AppendBatch(nil, []BatchEntry{
		{Seq: 1, Epoch: 9, Payload: []byte("tuple:packet:n0:n4:a")},
		{Seq: 2, Epoch: 9, Payload: []byte("tuple:packet:n0:n4:b")},
	}, true, nil)
	f.Add(seed)
	raw, _ := AppendBatch(nil, []BatchEntry{{Seq: 7, Epoch: 0, Payload: []byte{}}}, false, nil)
	f.Add(raw)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeBatch(NewDecoder(data))
		if err != nil {
			return
		}
		for _, compress := range []bool{false, true} {
			body, sizes := AppendBatch(nil, entries, compress, nil)
			if len(sizes) != len(entries) {
				t.Fatalf("%d sizes for %d entries", len(sizes), len(entries))
			}
			again, err := DecodeBatch(NewDecoder(body))
			if err != nil {
				t.Fatalf("re-decode (compress=%v): %v", compress, err)
			}
			if len(again) != len(entries) {
				t.Fatalf("re-decode lost entries: %d vs %d", len(again), len(entries))
			}
			for i := range entries {
				if again[i].Seq != entries[i].Seq || again[i].Epoch != entries[i].Epoch ||
					!bytes.Equal(again[i].Payload, entries[i].Payload) {
					t.Fatalf("entry %d did not round trip (compress=%v)", i, compress)
				}
			}
		}
	})
}

// FuzzBatchRoundTrip drives the encoder from fuzzed payload material:
// data is chopped into chunks (so neighbors share prefixes and suffixes,
// exercising the delta path) and the batch must round trip under both
// compression settings.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte("aaaa-bbbb-cccc-dddd-aaaa-bbbb"), uint8(5), true)
	f.Add([]byte{}, uint8(0), false)
	f.Add(bytes.Repeat([]byte{0xEE}, 300), uint8(1), true)
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, compress bool) {
		size := int(chunk)%32 + 1
		var entries []BatchEntry
		for off := 0; off < len(data) && len(entries) < MaxBatchEntries; off += size {
			end := off + size
			if end > len(data) {
				end = len(data)
			}
			entries = append(entries, BatchEntry{
				Seq:     uint64(len(entries)),
				Epoch:   uint64(off),
				Payload: data[off:end],
			})
		}
		body, _ := AppendBatch(nil, entries, compress, nil)
		out, err := DecodeBatch(NewDecoder(body))
		if err != nil {
			t.Fatalf("decode of encoder output: %v", err)
		}
		if len(out) != len(entries) {
			t.Fatalf("decoded %d entries, want %d", len(out), len(entries))
		}
		for i := range entries {
			if !bytes.Equal(out[i].Payload, entries[i].Payload) {
				t.Fatalf("entry %d payload mismatch", i)
			}
		}
	})
}

// FuzzDecoderTuple checks the buffer decoder against arbitrary bytes.
func FuzzDecoderTuple(f *testing.F) {
	e := NewEncoder(0)
	e.Str("hello")
	e.U32(7)
	f.Add(e.Bytes())
	f.Add([]byte{0, 0, 0, 3, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Str()
		_ = d.U32()
		_ = d.Tuple()
		_ = d.ID()
		_ = d.Bool()
		_ = d.Err() // must never panic
	})
}
