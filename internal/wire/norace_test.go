//go:build !race

package wire

// raceEnabled is false in a normal test build; see race_test.go.
const raceEnabled = false
