package engine

import (
	"fmt"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/types"
)

// BenchmarkEvalRuleJoin measures one rule evaluation against a route table
// of growing size (the per-event hot path of the runtime).
func BenchmarkEvalRuleJoin(b *testing.B) {
	prog := apps.Forwarding()
	r1 := prog.Rule("r1")
	for _, routes := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("routes=%d", routes), func(b *testing.B) {
			db := NewDatabase()
			for i := 0; i < routes; i++ {
				db.Insert(types.NewTuple("route",
					types.String("n1"), types.String(fmt.Sprintf("d%d", i)), types.String("n2")))
			}
			ev := pktT("n1", "n1", "d0", "payload")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				firings, err := EvalRule(r1, db, ev, nil)
				if err != nil || len(firings) != 1 {
					b.Fatalf("firings = %d, err = %v", len(firings), err)
				}
			}
		})
	}
}

// BenchmarkEvalRuleConstraint measures the constraint-only rule r2.
func BenchmarkEvalRuleConstraint(b *testing.B) {
	prog := apps.Forwarding()
	r2 := prog.Rule("r2")
	db := NewDatabase()
	ev := pktT("n3", "n1", "n3", "payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalRule(r2, db, ev, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatabaseInsert measures tuple insertion with hashing and
// dedup indexing.
func BenchmarkDatabaseInsert(b *testing.B) {
	db := NewDatabase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Insert(pktT("n1", "n1", "n3", fmt.Sprintf("p%d", i)))
	}
}
