package engine

import (
	"fmt"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// BenchmarkEvalRuleJoin measures one rule evaluation against a route table
// of growing size (the per-event hot path of the runtime).
func BenchmarkEvalRuleJoin(b *testing.B) {
	prog := apps.Forwarding()
	r1 := prog.Rule("r1")
	for _, routes := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("routes=%d", routes), func(b *testing.B) {
			db := NewDatabase()
			for i := 0; i < routes; i++ {
				db.Insert(types.NewTuple("route",
					types.String("n1"), types.String(fmt.Sprintf("d%d", i)), types.String("n2")))
			}
			ev := pktT("n1", "n1", "d0", "payload")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				firings, err := EvalRule(r1, db, ev, nil)
				if err != nil || len(firings) != 1 {
					b.Fatalf("firings = %d, err = %v", len(firings), err)
				}
			}
		})
	}
}

// BenchmarkEvalRuleConstraint measures the constraint-only rule r2.
func BenchmarkEvalRuleConstraint(b *testing.B) {
	prog := apps.Forwarding()
	r2 := prog.Rule("r2")
	db := NewDatabase()
	ev := pktT("n3", "n1", "n3", "payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalRule(r2, db, ev, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinHighFanin is the headline A/B of the indexed join pipeline:
// a two-way join over 512-row relations with fan-in (each event key matches
// 16 a-rows, each of which matches 2 b-rows — 32 firings per event),
// evaluated through the compiled plan (index probes) versus the scan-based
// reference. The indexed path must beat the scan path by ≥5x in both ns/op
// and allocs/op; TestJoinBenchSpeedup enforces the equivalent work ratio.
func BenchmarkJoinHighFanin(b *testing.B) {
	r, db, ev := joinHighFaninFixture()
	b.Run("indexed", func(b *testing.B) {
		plan := CompileRule(r)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			firings, err := plan.Eval(db, ev, nil)
			if err != nil || len(firings) != 32 {
				b.Fatalf("firings = %d, err = %v", len(firings), err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			firings, err := EvalRuleScan(r, db, ev, nil)
			if err != nil || len(firings) != 32 {
				b.Fatalf("firings = %d, err = %v", len(firings), err)
			}
		}
	})
}

// joinHighFaninFixture builds the shared workload of BenchmarkJoinHighFanin
// and the provsim join microbenchmark: event key X=0 joins 16 of 512 a-rows
// and each Y joins 2 b-rows (32 firings). The join attributes sit after the
// fresh variables in each atom, so the scan path clones a binding per row
// before discovering the mismatch — the wasted work per event that bucket
// probes eliminate.
func joinHighFaninFixture() (*ndlog.Rule, *Database, types.Tuple) {
	prog := ndlog.MustParse(`r out(@L, X, Y, Z) :- e(@L, X), a(@L, Y, X), b(@L, Z, Y).`)
	db := NewDatabase()
	loc := types.String("n")
	for i := 0; i < 512; i++ {
		// 32 distinct X values, 16 rows each; Y unique per row.
		db.Insert(types.NewTuple("a", loc, types.Int(int64(i)), types.Int(int64(i%32))))
		// Two b-rows per Y.
		db.Insert(types.NewTuple("b", loc, types.Int(int64(i)), types.Int(int64(i))))
		db.Insert(types.NewTuple("b", loc, types.Int(int64(i+1000)), types.Int(int64(i))))
	}
	return prog.Rule("r"), db, types.NewTuple("e", loc, types.Int(0))
}

// TestJoinBenchSpeedup pins the allocation side of the benchmark contract
// deterministically: on the high-fanin workload the indexed path must
// allocate at least 5x less than the scan path per event.
func TestJoinBenchSpeedup(t *testing.T) {
	r, db, ev := joinHighFaninFixture()
	plan := CompileRule(r)
	// Warm the indexes outside the measurement.
	if _, err := plan.Eval(db, ev, nil); err != nil {
		t.Fatal(err)
	}
	indexed := testing.AllocsPerRun(10, func() {
		if _, err := plan.Eval(db, ev, nil); err != nil {
			t.Fatal(err)
		}
	})
	scan := testing.AllocsPerRun(10, func() {
		if _, err := EvalRuleScan(r, db, ev, nil); err != nil {
			t.Fatal(err)
		}
	})
	if scan < 5*indexed {
		t.Errorf("allocs/event: indexed = %.0f, scan = %.0f — want ≥5x reduction", indexed, scan)
	}
}

// BenchmarkDatabaseInsert measures tuple insertion with hashing and
// dedup indexing.
func BenchmarkDatabaseInsert(b *testing.B) {
	db := NewDatabase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Insert(pktT("n1", "n1", "n3", fmt.Sprintf("p%d", i)))
	}
}
