package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// snapshotOf encodes db into a fresh buffer.
func snapshotOf(db *Database) []byte {
	e := wire.NewEncoder(1024)
	db.EncodeSnapshot(e)
	return e.Bytes()
}

// assertDatabasesEqual compares two databases through their public read
// surface: live rows per relation, counts, the graveyard in FIFO order,
// and VID resolution for both live and deleted tuples.
func assertDatabasesEqual(t *testing.T, want, got *Database, rels []string) {
	t.Helper()
	for _, rel := range rels {
		ws, gs := want.Scan(rel), got.Scan(rel)
		wss := make([]string, len(ws))
		gss := make([]string, len(gs))
		for i, tu := range ws {
			wss[i] = tu.String()
		}
		for i, tu := range gs {
			gss[i] = tu.String()
		}
		sort.Strings(wss)
		sort.Strings(gss)
		if fmt.Sprint(wss) != fmt.Sprint(gss) {
			t.Fatalf("relation %q diverged:\nwant %v\ngot  %v", rel, wss, gss)
		}
		if want.Count(rel) != got.Count(rel) {
			t.Fatalf("count(%q): want %d, got %d", rel, want.Count(rel), got.Count(rel))
		}
	}
	wg, gg := want.GraveyardVIDs(), got.GraveyardVIDs()
	if len(wg) != len(gg) {
		t.Fatalf("graveyard size: want %d, got %d", len(wg), len(gg))
	}
	for i := range wg {
		if wg[i] != gg[i] {
			t.Fatalf("graveyard FIFO order diverged at %d", i)
		}
		wt, wok := want.LookupVID(wg[i])
		gt, gok := got.LookupVID(gg[i])
		if !wok || !gok || !wt.Equal(gt) {
			t.Fatalf("graveyard VID %d resolves differently: %v/%v %v/%v", i, wt, wok, gt, gok)
		}
	}
}

// TestSnapshotRoundTripProperty drives a seeded random mix of inserts and
// deletes (with an occasional graveyard cap change), snapshots, restores
// into a fresh database, and requires the restored store to be
// indistinguishable — including probe answers, which exercise the lazily
// rebuilt secondary indexes.
func TestSnapshotRoundTripProperty(t *testing.T) {
	rels := []string{"a", "b", "c"}
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db := NewDatabase()
			var inserted []types.Tuple
			for op := 0; op < 400; op++ {
				switch {
				case op%97 == 50:
					db.SetGraveyardCap(1 + rng.Intn(10))
				case len(inserted) > 0 && rng.Intn(3) == 0:
					db.Delete(inserted[rng.Intn(len(inserted))])
				default:
					tu := types.NewTuple(rels[rng.Intn(len(rels))],
						types.String(fmt.Sprintf("n%d", rng.Intn(4))),
						types.Int(int64(rng.Intn(20))),
						types.String(fmt.Sprintf("v%d", rng.Intn(6))))
					db.Insert(tu)
					inserted = append(inserted, tu)
				}
			}

			db2 := NewDatabase()
			if err := db2.RestoreSnapshot(wire.NewDecoder(snapshotOf(db))); err != nil {
				t.Fatal(err)
			}
			assertDatabasesEqual(t, db, db2, rels)

			// Probe parity on an index the restore did NOT persist: it must
			// rebuild and answer identically.
			key := probeKey(types.Int(7))
			wp, gp := db.Probe("a", []int{2}, key), db2.Probe("a", []int{2}, key)
			if len(wp) != len(gp) {
				t.Fatalf("probe parity: want %d rows, got %d", len(wp), len(gp))
			}

			// Determinism under future evictions: capping both stores now
			// must evict the same victims (FIFO order survived the codec).
			db.SetGraveyardCap(2)
			db2.SetGraveyardCap(2)
			assertDatabasesEqual(t, db, db2, rels)
		})
	}
}

// TestSnapshotTruncatedErrors feeds every strict prefix of a valid
// snapshot to the decoder: all must fail cleanly, none may panic.
func TestSnapshotTruncatedErrors(t *testing.T) {
	db := NewDatabase()
	db.SetGraveyardCap(4)
	for i := 0; i < 10; i++ {
		tu := types.NewTuple("r", types.String("n"), types.Int(int64(i)))
		db.Insert(tu)
		if i%2 == 0 {
			db.Delete(tu)
		}
	}
	full := snapshotOf(db)
	for cut := 0; cut < len(full); cut++ {
		if err := NewDatabase().RestoreSnapshot(wire.NewDecoder(full[:cut])); err == nil {
			t.Fatalf("truncated snapshot of %d/%d bytes restored without error", cut, len(full))
		}
	}
	if err := NewDatabase().RestoreSnapshot(wire.NewDecoder(full)); err != nil {
		t.Fatalf("full snapshot failed: %v", err)
	}
}

// TestSnapshotVersionRejected: a bumped version byte is an error, not a
// silent misparse.
func TestSnapshotVersionRejected(t *testing.T) {
	db := NewDatabase()
	db.Insert(types.NewTuple("r", types.String("n"), types.Int(1)))
	full := snapshotOf(db)
	full[0] = snapshotVersion + 1
	if err := NewDatabase().RestoreSnapshot(wire.NewDecoder(full)); err == nil {
		t.Fatal("unknown snapshot version accepted")
	}
}

// TestSnapshotRestoreReplacesState: restoring over a populated database
// drops the old contents entirely.
func TestSnapshotRestoreReplacesState(t *testing.T) {
	src := NewDatabase()
	src.Insert(types.NewTuple("keep", types.String("n"), types.Int(1)))
	snap := snapshotOf(src)

	dst := NewDatabase()
	dst.Insert(types.NewTuple("stale", types.String("n"), types.Int(9)))
	stale := types.NewTuple("stale", types.String("n"), types.Int(8))
	dst.Insert(stale)
	dst.Delete(stale) // stale graveyard entry too
	if err := dst.RestoreSnapshot(wire.NewDecoder(snap)); err != nil {
		t.Fatal(err)
	}
	if dst.Count("stale") != 0 || dst.GraveyardSize() != 0 {
		t.Errorf("restore kept stale state: count=%d graveyard=%d", dst.Count("stale"), dst.GraveyardSize())
	}
	if dst.Count("keep") != 1 {
		t.Errorf("restore lost snapshot contents: count=%d", dst.Count("keep"))
	}
}

// TestSnapshotMergeUnion: MergeSnapshot folds a snapshot into a live
// database as a union — overlapping rows stay single, absent rows and
// graveyard entries arrive, and the receiver keeps its own retention cap.
func TestSnapshotMergeUnion(t *testing.T) {
	full := NewDatabase()
	shared := types.NewTuple("r", types.String("n"), types.Int(1))
	only := types.NewTuple("r", types.String("n"), types.Int(2))
	dead := types.NewTuple("r", types.String("n"), types.Int(3))
	full.Insert(shared)
	full.Insert(only)
	full.Insert(dead)
	full.Delete(dead)
	snap := snapshotOf(full)

	dst := NewDatabase()
	dst.SetGraveyardCap(7)
	dst.Insert(shared) // overlap: replication delivered it already
	if err := dst.MergeSnapshot(wire.NewDecoder(snap)); err != nil {
		t.Fatal(err)
	}
	if got := dst.Count("r"); got != 2 {
		t.Fatalf("merged live count = %d, want 2", got)
	}
	if !dst.Contains(only) || !dst.Contains(shared) {
		t.Fatal("merge lost a row")
	}
	if dst.GraveyardSize() != 1 {
		t.Fatalf("merged graveyard size = %d, want 1", dst.GraveyardSize())
	}
	if _, ok := dst.LookupVID(types.HashTuple(dead)); !ok {
		t.Fatal("graveyard VID unresolvable after merge")
	}

	// Idempotent: a second merge changes nothing.
	if err := dst.MergeSnapshot(wire.NewDecoder(snap)); err != nil {
		t.Fatal(err)
	}
	if dst.Count("r") != 2 || dst.GraveyardSize() != 1 {
		t.Fatal("second merge changed state")
	}

	// The receiver's graveyard cap survived (the donor's was unbounded).
	for i := 0; i < 20; i++ {
		tu := types.NewTuple("g", types.String("n"), types.Int(int64(i)))
		dst.Insert(tu)
		dst.Delete(tu)
	}
	if got := dst.GraveyardSize(); got != 7 {
		t.Fatalf("graveyard cap after merge = %d entries, want 7", got)
	}

	// Truncated payloads error rather than panic, even mid-merge.
	for cut := 0; cut < len(snap); cut++ {
		if err := NewDatabase().MergeSnapshot(wire.NewDecoder(snap[:cut])); err == nil {
			t.Fatalf("truncated snapshot of %d/%d bytes merged without error", cut, len(snap))
		}
	}
}
