package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// TestIndexedEvalMatchesScanOracle is the equivalence property test of the
// indexed join pipeline: for randomly generated rules, databases, and event
// tuples, the compiled plan (index probes, reordered atoms) must produce a
// firing set identical to the scan-based reference evaluator EvalRuleScan —
// same heads, same slow tuples in body-atom order, same error behavior.
func TestIndexedEvalMatchesScanOracle(t *testing.T) {
	const cases = 1200
	for seed := int64(0); seed < cases; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genRuleSource(rng)
		prog, err := ndlog.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated unparsable rule %q: %v", seed, src, err)
		}
		r := prog.Rules[0]
		db := genDatabase(rng, r)
		ev := genEvent(rng, r)

		want, errScan := EvalRuleScan(r, db, ev, nil)
		plan := CompileRule(r)
		got, errPlan := plan.Eval(db, ev, nil)

		if (errScan != nil) != (errPlan != nil) {
			t.Fatalf("seed %d: rule %q event %v:\nscan err = %v\nplan err = %v\nplan = %s",
				seed, src, ev, errScan, errPlan, plan)
		}
		if errScan != nil {
			continue
		}
		wk, gk := firingKeys(want), firingKeys(got)
		if strings.Join(wk, "\n") != strings.Join(gk, "\n") {
			t.Fatalf("seed %d: rule %q event %v: firings differ\nplan = %s\nscan (%d):\n%s\nindexed (%d):\n%s",
				seed, src, ev, plan, len(wk), strings.Join(wk, "\n"), len(gk), strings.Join(gk, "\n"))
		}
	}
}

// TestIndexedEvalMatchesScanOracleAppRules runs the same indexed-vs-scan
// equivalence property over every rule of the bundled application DELPs —
// including the BGP and gossip scenarios — with the real UDF registry, so
// the shapes the scenario zoo actually deploys (constraint-gated DNS
// delegation, deep BGP chains, fan-out gossip rules) are pinned against
// the scan oracle, not just the synthetic grammar above.
func TestIndexedEvalMatchesScanOracleAppRules(t *testing.T) {
	progs := []*ndlog.Program{
		apps.Forwarding(), apps.DNS(), apps.ARP(), apps.DHCP(), apps.BGP(), apps.Gossip(),
	}
	funcs := apps.Funcs()
	for _, prog := range progs {
		for _, r := range prog.Rules {
			plan := CompileRule(r)
			for seed := int64(0); seed < 150; seed++ {
				rng := rand.New(rand.NewSource(seed))
				db := genDatabase(rng, r)
				ev := genEvent(rng, r)

				want, errScan := EvalRuleScan(r, db, ev, funcs)
				got, errPlan := plan.Eval(db, ev, funcs)

				if (errScan != nil) != (errPlan != nil) {
					t.Fatalf("%s/%s seed %d: event %v:\nscan err = %v\nplan err = %v",
						prog.Name, r.Label, seed, ev, errScan, errPlan)
				}
				if errScan != nil {
					continue
				}
				wk, gk := firingKeys(want), firingKeys(got)
				if strings.Join(wk, "\n") != strings.Join(gk, "\n") {
					t.Fatalf("%s/%s seed %d: event %v: firings differ\nscan (%d):\n%s\nindexed (%d):\n%s",
						prog.Name, r.Label, seed, ev, len(wk), strings.Join(wk, "\n"), len(gk), strings.Join(gk, "\n"))
				}
			}
		}
	}
}

// firingKeys canonicalizes firings (head plus slow tuples in body order)
// into a sorted string list, so set comparison ignores enumeration order.
func firingKeys(fs []Firing) []string {
	keys := make([]string, len(fs))
	for i, f := range fs {
		var b strings.Builder
		fmt.Fprintf(&b, "%v", f.Head)
		for _, s := range f.Slow {
			fmt.Fprintf(&b, " | %v", s)
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return keys
}

// genRuleSource generates a random single-rule program: an event atom with
// 1-3 payload variables (sometimes repeated, exercising self-unification),
// 1-3 slow atoms over relations s0..s2 mixing bound variables, fresh
// variables and constants (so plans mix index probes and scan fallbacks),
// an optional constraint, and a head over bound variables.
func genRuleSource(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("p out(@L")

	// Event atom payload.
	k := 1 + rng.Intn(3)
	eventArgs := make([]string, k)
	pool := []string{"L"}
	for i := 0; i < k; i++ {
		eventArgs[i] = fmt.Sprintf("E%d", i)
		pool = append(pool, eventArgs[i])
	}
	if k >= 2 && rng.Float64() < 0.2 {
		eventArgs[k-1] = eventArgs[0] // repeated event variable
	}

	// Slow atoms. The parser enforces one arity per relation, so fix each
	// relation's payload arity the first time it is drawn.
	fresh := 0
	relArity := make(map[string]int)
	var atoms []string
	m := 1 + rng.Intn(3)
	for i := 0; i < m; i++ {
		rel := fmt.Sprintf("s%d", rng.Intn(3))
		arity, ok := relArity[rel]
		if !ok {
			arity = 1 + rng.Intn(3)
			relArity[rel] = arity
		}
		var args []string
		if rng.Float64() < 0.8 {
			args = append(args, "L")
		} else {
			v := fmt.Sprintf("LF%d", i)
			args = append(args, v)
			pool = append(pool, v)
		}
		for j := 0; j < arity; j++ {
			switch roll := rng.Float64(); {
			case roll < 0.4:
				args = append(args, pool[rng.Intn(len(pool))])
			case roll < 0.7:
				v := fmt.Sprintf("V%d", fresh)
				fresh++
				args = append(args, v)
				pool = append(pool, v)
			default:
				args = append(args, genConstSource(rng))
			}
		}
		atoms = append(atoms, fmt.Sprintf("%s(@%s)", rel, strings.Join(args, ", ")))
	}

	// Head: the location variable plus 1-3 body variables.
	for n := 1 + rng.Intn(3); n > 0; n-- {
		fmt.Fprintf(&b, ", %s", pool[rng.Intn(len(pool))])
	}
	b.WriteString(") :- e(@L")
	for _, a := range eventArgs {
		fmt.Fprintf(&b, ", %s", a)
	}
	b.WriteString(")")
	for _, a := range atoms {
		fmt.Fprintf(&b, ", %s", a)
	}

	// Optional constraint; may type-error on some bindings, which both
	// evaluation paths must surface identically.
	if rng.Float64() < 0.3 {
		v := pool[rng.Intn(len(pool))]
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, ", %s == %s", v, genConstSource(rng))
		case 1:
			fmt.Fprintf(&b, ", %s != %s", v, genConstSource(rng))
		default:
			fmt.Fprintf(&b, ", %s < 2", v)
		}
	}
	b.WriteString(".")
	return b.String()
}

func genConstSource(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("%d", rng.Intn(3))
	}
	return fmt.Sprintf("%q", string(rune('a'+rng.Intn(3))))
}

// genValue draws from a small domain so joins actually match.
func genValue(rng *rand.Rand) types.Value {
	switch rng.Intn(7) {
	case 0, 1, 2:
		return types.Int(int64(rng.Intn(3)))
	case 3, 4, 5:
		return types.String(string(rune('a' + rng.Intn(3))))
	default:
		return types.Bool(rng.Intn(2) == 0)
	}
}

// genDatabase populates every slow relation the rule mentions with random
// tuples: mostly the atom's arity at location "n", some at a second
// location, and ~10% with a different arity (the store is schema-free and
// indexes must skip tuples they do not cover).
func genDatabase(rng *rand.Rand, r *ndlog.Rule) *Database {
	db := NewDatabase()
	arities := make(map[string][]int)
	for _, atom := range r.Slow {
		arities[atom.Rel] = append(arities[atom.Rel], len(atom.Args))
	}
	for rel, as := range arities {
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			arity := as[rng.Intn(len(as))]
			if rng.Float64() < 0.1 {
				arity++
			}
			args := make([]types.Value, arity)
			if rng.Float64() < 0.85 {
				args[0] = types.String("n")
			} else {
				args[0] = types.String("m")
			}
			for j := 1; j < arity; j++ {
				args[j] = genValue(rng)
			}
			db.Insert(types.Tuple{Rel: rel, Args: args})
		}
	}
	return db
}

// genEvent builds an event tuple at location "n" matching the rule's event
// relation and arity.
func genEvent(rng *rand.Rand, r *ndlog.Rule) types.Tuple {
	args := make([]types.Value, len(r.Event.Args))
	args[0] = types.String("n")
	for i := 1; i < len(args); i++ {
		args[i] = genValue(rng)
	}
	return types.Tuple{Rel: r.Event.Rel, Args: args}
}
