// Rule compilation: at deploy time each rule's slow-changing atoms are
// ordered and annotated with the attribute positions that are bound when
// the atom is joined, so evaluation probes one hash-index bucket per join
// step instead of scanning the relation. The bound-position information is
// the same attribute-level structure the Section 5.2 dependency graph
// (internal/analysis) derives; here it is specialized to the operational
// question "which values are known by step i".

package engine

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// KeySource says how to produce one component of a join step's probe key:
// either a constant baked in at compile time or the value of a variable
// bound by the event atom or an earlier join step.
type KeySource struct {
	Pos   int         // attribute position in the slow atom
	Var   string      // bound variable name; empty for a constant
	Const types.Value // the constant, when Var is empty
}

// JoinStep is one compiled join of a rule plan: the slow atom, its
// position in the rule body (Firing.Slow stays in body-atom order), and
// the probe-key recipe. An empty Keys list means no position is bound at
// this step and the relation is scanned.
type JoinStep struct {
	Atom    ndlog.Atom
	SlowIdx int
	Keys    []KeySource
	// positions caches the sorted Pos list of Keys — the identity of the
	// secondary index this step probes.
	positions []int
}

// RulePlan is a rule compiled for indexed evaluation.
type RulePlan struct {
	Rule  *ndlog.Rule
	Steps []JoinStep
}

// CompileRule builds the join plan of a rule: slow atoms are ordered
// greedily by how many of their attribute positions are bound (constants,
// event-atom variables, and variables bound by already-placed atoms), ties
// broken by body order so plans are deterministic.
func CompileRule(r *ndlog.Rule) *RulePlan {
	bound := make(map[string]bool)
	for v := range r.Event.Vars() {
		bound[v] = true
	}
	placed := make([]bool, len(r.Slow))
	plan := &RulePlan{Rule: r, Steps: make([]JoinStep, 0, len(r.Slow))}
	for len(plan.Steps) < len(r.Slow) {
		best, bestScore := -1, -1
		for i, atom := range r.Slow {
			if placed[i] {
				continue
			}
			score := boundPositions(atom, bound)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		atom := r.Slow[best]
		placed[best] = true
		plan.Steps = append(plan.Steps, compileStep(atom, best, bound))
		for v := range atom.Vars() {
			bound[v] = true
		}
	}
	return plan
}

// boundPositions counts the attribute positions of an atom whose value is
// known given the bound variable set.
func boundPositions(atom ndlog.Atom, bound map[string]bool) int {
	n := 0
	for _, term := range atom.Args {
		switch term := term.(type) {
		case ndlog.Const:
			n++
		case ndlog.Var:
			if bound[term.Name] {
				n++
			}
		}
	}
	return n
}

// compileStep derives the probe-key recipe for an atom joined with the
// given variables bound. Positions beyond the index mask width are left to
// unification (they cannot occur at realistic arities).
func compileStep(atom ndlog.Atom, slowIdx int, bound map[string]bool) JoinStep {
	st := JoinStep{Atom: atom, SlowIdx: slowIdx}
	for i, term := range atom.Args {
		if i >= maxIndexedPos {
			break
		}
		switch term := term.(type) {
		case ndlog.Const:
			st.Keys = append(st.Keys, KeySource{Pos: i, Const: term.Val})
		case ndlog.Var:
			if bound[term.Name] {
				st.Keys = append(st.Keys, KeySource{Pos: i, Var: term.Name})
			}
		}
	}
	st.positions = make([]int, len(st.Keys))
	for i, k := range st.Keys {
		st.positions[i] = k.Pos
	}
	return st
}

// String renders the plan for logs and tests: each step as rel[p0,p1,...]
// in join order.
func (p *RulePlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.Rule.Label)
	for _, st := range p.Steps {
		b.WriteByte(' ')
		b.WriteString(st.Atom.Rel)
		b.WriteByte('[')
		for i, pos := range st.positions {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", pos)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Eval computes every firing of the compiled rule triggered by the event
// tuple ev against db. Each join step probes the secondary hash index for
// its bound positions (building it on first use); candidates from the
// bucket still pass through full unification, which re-checks the bound
// positions and handles repeated variables. The database read lock is held
// for the whole join, so concurrent inserts and deletes cannot disturb the
// buckets mid-evaluation.
func (p *RulePlan) Eval(db *Database, ev types.Tuple, funcs ndlog.FuncMap) ([]Firing, error) {
	r := p.Rule
	if ev.Rel != r.Event.Rel {
		return nil, nil
	}
	base, ok := unify(r.Event, ev, Binding{})
	if !ok {
		return nil, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()

	slow := make([]types.Tuple, len(r.Slow))
	var firings []Firing
	var joinErr error
	var keyBuf []byte
	var rec func(i int, b Binding)
	rec = func(i int, b Binding) {
		if joinErr != nil {
			return
		}
		if i == len(p.Steps) {
			f, ok, err := finishFiring(r, ev, b, append([]types.Tuple(nil), slow...), funcs)
			if err != nil {
				joinErr = err
				return
			}
			if ok {
				firings = append(firings, f)
			}
			return
		}
		st := &p.Steps[i]
		var cands []types.Tuple
		if len(st.Keys) == 0 {
			cands = db.scanLocked(st.Atom.Rel)
		} else {
			keyBuf = keyBuf[:0]
			for _, k := range st.Keys {
				if k.Var != "" {
					keyBuf = b[k.Var].AppendEncode(keyBuf)
				} else {
					keyBuf = k.Const.AppendEncode(keyBuf)
				}
			}
			cands = db.probeLocked(st.Atom.Rel, st.positions, keyBuf)
		}
		for _, cand := range cands {
			if nb, ok := unify(st.Atom, cand, b); ok {
				slow[st.SlowIdx] = cand
				rec(i+1, nb)
			}
		}
	}
	rec(0, base)
	if joinErr != nil {
		return nil, joinErr
	}
	return firings, nil
}

// Plans is the compiled form of a program: one join plan per rule,
// built once at deploy time and shared by every node.
type Plans struct {
	m map[*ndlog.Rule]*RulePlan
}

// CompileProgram compiles every rule of a program.
func CompileProgram(p *ndlog.Program) *Plans {
	ps := &Plans{m: make(map[*ndlog.Rule]*RulePlan, len(p.Rules))}
	for _, r := range p.Rules {
		ps.m[r] = CompileRule(r)
	}
	return ps
}

// For returns the plan of a rule, compiling (and caching globally) plans
// for rules outside the program the Plans were built from.
func (ps *Plans) For(r *ndlog.Rule) *RulePlan {
	if p := ps.m[r]; p != nil {
		return p
	}
	return planFor(r)
}

// Eval evaluates a rule through its compiled plan (or the scan-based
// reference path when the oracle flag is set).
func (ps *Plans) Eval(r *ndlog.Rule, db *Database, ev types.Tuple, funcs ndlog.FuncMap) ([]Firing, error) {
	if scanEvalOnly {
		return EvalRuleScan(r, db, ev, funcs)
	}
	return ps.For(r).Eval(db, ev, funcs)
}

// EvalObserver is notified after one rule evaluation with the number of
// firings it produced. The cluster runtime hangs its per-rule tracing
// spans off this hook; a nil observer costs one comparison.
type EvalObserver func(rule string, firings int, err error)

// EvalObserved is Eval plus an observation callback — kept separate so
// the unobserved hot path stays branch-free.
func (ps *Plans) EvalObserved(r *ndlog.Rule, db *Database, ev types.Tuple, funcs ndlog.FuncMap, obs EvalObserver) ([]Firing, error) {
	fs, err := ps.Eval(r, db, ev, funcs)
	if obs != nil {
		obs(r.Label, len(fs), err)
	}
	return fs, err
}

// scanEvalOnly forces every evaluation through the scan-based reference
// path. It exists as the oracle switch: set PROVCOMPRESS_SCAN_EVAL=1 to
// A/B the indexed pipeline against the original evaluator end to end.
var scanEvalOnly = os.Getenv("PROVCOMPRESS_SCAN_EVAL") != ""

// planCache caches compiled plans for rules evaluated outside a deployed
// program (replay, reconstruction), keyed by rule identity.
var planCache sync.Map // *ndlog.Rule -> *RulePlan

func planFor(r *ndlog.Rule) *RulePlan {
	if p, ok := planCache.Load(r); ok {
		return p.(*RulePlan)
	}
	p, _ := planCache.LoadOrStore(r, CompileRule(r))
	return p.(*RulePlan)
}
