package engine

import (
	"fmt"
	"time"

	"provcompress/internal/ndlog"
	"provcompress/internal/netsim"
	"provcompress/internal/types"
)

// Meta is opaque provenance metadata a Maintainer threads along each
// shipped tuple (the paper's existFlag "tagged along with ev throughout the
// execution", rule-execution references, event hashes, ...).
type Meta any

// Maintainer observes the execution to maintain provenance. The engine
// calls the hooks at well-defined points; the maintainer decides what to
// store and what metadata to attach to each message.
type Maintainer interface {
	// Name identifies the scheme (ExSPAN, Basic, Advanced).
	Name() string
	// Attach wires the maintainer to the runtime before execution starts.
	Attach(rt *Runtime)
	// OnInject runs at the origin node when a fresh input event enters the
	// system; the returned metadata accompanies the event's execution.
	OnInject(n *Node, ev types.Tuple) Meta
	// OnFire runs at the node where a rule fired; the returned metadata is
	// attached to the shipped head tuple.
	OnFire(n *Node, f Firing, in Meta) Meta
	// OnOutput runs at the node where an output tuple (a tuple no rule
	// consumes) lands.
	OnOutput(n *Node, out types.Tuple, in Meta)
	// OnSlowUpdate runs after a slow-changing table changed at a node
	// (Section 5.5); inserted distinguishes insertion from deletion.
	OnSlowUpdate(n *Node, t types.Tuple, inserted bool)
	// HandleMessage processes maintainer-specific messages (sig broadcasts,
	// provenance query protocol); it reports whether the kind was handled.
	HandleMessage(n *Node, msg netsim.Message) bool
	// MetaSize returns the wire size of metadata, for bandwidth accounting.
	MetaSize(m Meta) int
	// StorageBytes returns the serialized size of the provenance state the
	// scheme maintains at one node; TotalStorageBytes sums over all nodes.
	StorageBytes(addr types.NodeAddr) int64
	TotalStorageBytes() int64
}

// MsgTuple is the message kind used for tuple shipment.
const MsgTuple = "tuple"

// DefaultHeaderSize approximates the fixed per-message envelope (addresses,
// kind, length framing) counted towards bandwidth.
const DefaultHeaderSize = 28

// TupleMsg is the payload of a MsgTuple message.
type TupleMsg struct {
	Tuple types.Tuple
	Meta  Meta
}

// Output records an output tuple arrival: what, where implicit in the
// tuple, and when.
type Output struct {
	Tuple types.Tuple
	Time  time.Duration
	Meta  Meta
}

// Runtime couples a DELP, a simulated network, and a provenance maintainer.
type Runtime struct {
	Prog  *ndlog.Program
	Net   *netsim.Network
	Funcs ndlog.FuncMap
	Maint Maintainer

	// HeaderSize is the fixed per-message envelope size in bytes.
	HeaderSize int
	// KeepOutputs controls whether every output tuple is recorded in
	// Outputs; experiments that only need counters disable it to bound
	// memory.
	KeepOutputs bool
	// MaterializeDeliveries controls whether delivered tuples are inserted
	// into node databases (semi-naïve materialization). Provenance querying
	// needs it on; storage/bandwidth experiments that never query disable
	// it to bound memory on long runs.
	MaterializeDeliveries bool

	progs    []*ndlog.Program
	plans    *Plans
	nodes    map[types.NodeAddr]*Node
	outputs  []Output
	nOutputs int64
	injected int64
	fired    int64
	errs     []error
}

// NewRuntime builds a runtime over the network's topology: one node (with
// an empty database) per topology node, handlers installed.
func NewRuntime(net *netsim.Network, prog *ndlog.Program, funcs ndlog.FuncMap, maint Maintainer) *Runtime {
	return newRuntime(net, prog, []*ndlog.Program{prog}, funcs, maint)
}

// NewMultiRuntime deploys several DELPs jointly (the Section 8 future-work
// scenario): the rule sets are merged (identical rules shared), every
// program's rules fire on the shared event streams, and provenance chains
// may interleave rules of different programs.
func NewMultiRuntime(net *netsim.Network, progs []*ndlog.Program, funcs ndlog.FuncMap, maint Maintainer) (*Runtime, error) {
	merged, err := ndlog.MergePrograms(progs...)
	if err != nil {
		return nil, err
	}
	return newRuntime(net, merged, progs, funcs, maint), nil
}

func newRuntime(net *netsim.Network, prog *ndlog.Program, progs []*ndlog.Program, funcs ndlog.FuncMap, maint Maintainer) *Runtime {
	rt := &Runtime{
		Prog:                  prog,
		progs:                 progs,
		plans:                 CompileProgram(prog),
		Net:                   net,
		Funcs:                 funcs,
		Maint:                 maint,
		HeaderSize:            DefaultHeaderSize,
		KeepOutputs:           true,
		MaterializeDeliveries: true,
		nodes:                 make(map[types.NodeAddr]*Node),
	}
	for _, addr := range net.Graph().Nodes() {
		n := NewNode(addr)
		rt.nodes[addr] = n
		addr := addr
		net.SetHandler(addr, func(msg netsim.Message) { rt.dispatch(rt.nodes[addr], msg) })
	}
	maint.Attach(rt)
	return rt
}

// SourcePrograms returns the original programs deployed on the runtime
// (one for NewRuntime; the merge inputs for NewMultiRuntime).
func (rt *Runtime) SourcePrograms() []*ndlog.Program { return rt.progs }

// Node returns the node at addr, or nil.
func (rt *Runtime) Node(addr types.NodeAddr) *Node { return rt.nodes[addr] }

// Nodes returns all nodes keyed by address. Callers must not modify the map.
func (rt *Runtime) Nodes() map[types.NodeAddr]*Node { return rt.nodes }

// Outputs returns the recorded output tuples (if KeepOutputs).
func (rt *Runtime) Outputs() []Output { return rt.outputs }

// NumOutputs returns the number of output tuples produced.
func (rt *Runtime) NumOutputs() int64 { return rt.nOutputs }

// Injected returns the number of injected input events.
func (rt *Runtime) Injected() int64 { return rt.injected }

// Fired returns the number of rule firings.
func (rt *Runtime) Fired() int64 { return rt.fired }

// Errors returns evaluation errors encountered (bad programs or databases).
func (rt *Runtime) Errors() []error { return rt.errs }

// LoadBase inserts base (slow-changing) tuples into the databases of the
// nodes named by their location specifiers. It is the initial configuration
// step and does not trigger sig broadcasts.
func (rt *Runtime) LoadBase(tuples []types.Tuple) error {
	for _, t := range tuples {
		n := rt.nodes[t.Loc()]
		if n == nil {
			return fmt.Errorf("engine: base tuple %s at unknown node", t)
		}
		n.DB.Insert(t)
	}
	return nil
}

// InjectAt schedules the injection of an input event tuple at virtual time
// t at the node named by its location specifier.
func (rt *Runtime) InjectAt(t time.Duration, ev types.Tuple) {
	if rt.nodes[ev.Loc()] == nil {
		panic(fmt.Sprintf("engine: inject %s at unknown node", ev))
	}
	rt.Net.Scheduler().At(t, func() {
		n := rt.nodes[ev.Loc()]
		rt.injected++
		meta := rt.Maint.OnInject(n, ev)
		rt.deliver(n, ev, meta)
	})
}

// Inject schedules the injection at the current virtual time.
func (rt *Runtime) Inject(ev types.Tuple) { rt.InjectAt(rt.Net.Scheduler().Now(), ev) }

// InsertSlow inserts a tuple into a slow-changing table at runtime and
// notifies the maintainer (Section 5.5: insertion triggers a sig broadcast
// under the Advanced scheme).
func (rt *Runtime) InsertSlow(t types.Tuple) {
	n := rt.nodes[t.Loc()]
	if n == nil {
		panic(fmt.Sprintf("engine: slow insert %s at unknown node", t))
	}
	if n.DB.Insert(t) {
		rt.Maint.OnSlowUpdate(n, t, true)
	}
}

// DeleteSlow removes a tuple from a slow-changing table at runtime.
// Deletion does not invalidate stored provenance (provenance is monotone).
func (rt *Runtime) DeleteSlow(t types.Tuple) {
	n := rt.nodes[t.Loc()]
	if n == nil {
		panic(fmt.Sprintf("engine: slow delete %s at unknown node", t))
	}
	if n.DB.Delete(t) {
		rt.Maint.OnSlowUpdate(n, t, false)
	}
}

// dispatch routes an arriving message to tuple delivery or the maintainer.
func (rt *Runtime) dispatch(n *Node, msg netsim.Message) {
	if msg.Kind == MsgTuple {
		tm := msg.Payload.(TupleMsg)
		rt.deliver(n, tm.Tuple, tm.Meta)
		return
	}
	if !rt.Maint.HandleMessage(n, msg) {
		rt.errs = append(rt.errs, fmt.Errorf("engine: %s: unhandled message kind %q", n.Addr, msg.Kind))
	}
}

// deliver evaluates an event tuple at a node, or records it as an output if
// no rule consumes its relation. The tuple is materialized in the node's
// database first — semi-naïve evaluation stores every derivation as
// application state, which is also what the provenance query protocols
// resolve VIDs against.
func (rt *Runtime) deliver(n *Node, t types.Tuple, meta Meta) {
	if rt.MaterializeDeliveries {
		n.DB.Insert(t)
	}
	rules := rt.Prog.RulesForEvent(t.Rel)
	if len(rules) == 0 {
		rt.Maint.OnOutput(n, t, meta)
		rt.nOutputs++
		if rt.KeepOutputs {
			rt.outputs = append(rt.outputs, Output{Tuple: t, Time: rt.Net.Scheduler().Now(), Meta: meta})
		}
		return
	}
	for _, r := range rules {
		firings, err := rt.plans.Eval(r, n.DB, t, rt.Funcs)
		if err != nil {
			rt.errs = append(rt.errs, err)
			continue
		}
		for _, f := range firings {
			rt.fired++
			out := rt.Maint.OnFire(n, f, meta)
			rt.SendTuple(n.Addr, f.Head, out)
		}
	}
}

// SendTuple ships a tuple (with provenance metadata) to the node named by
// its location specifier, paying for the tuple encoding, the metadata, and
// the message envelope on the wire.
func (rt *Runtime) SendTuple(from types.NodeAddr, t types.Tuple, meta Meta) {
	size := t.EncodedSize() + rt.Maint.MetaSize(meta) + rt.HeaderSize
	rt.Net.Send(netsim.Message{
		From:    from,
		To:      t.Loc(),
		Kind:    MsgTuple,
		Payload: TupleMsg{Tuple: t, Meta: meta},
		Size:    size,
	})
}

// Run executes the simulation until no events remain.
func (rt *Runtime) Run() { rt.Net.Scheduler().Run() }

// RunFor executes the simulation for d of virtual time.
func (rt *Runtime) RunFor(d time.Duration) { rt.Net.Scheduler().RunFor(d) }
