package engine

import (
	"fmt"

	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// Binding maps variable names to values during rule evaluation.
type Binding map[string]types.Value

// clone returns an independent copy of the binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// EvalExpr evaluates an expression under a binding with the given
// user-defined function registry.
func EvalExpr(e ndlog.Expr, b Binding, funcs ndlog.FuncMap) (types.Value, error) {
	switch e := e.(type) {
	case ndlog.ConstExpr:
		return e.Val, nil
	case ndlog.VarExpr:
		v, ok := b[e.Name]
		if !ok {
			return types.Value{}, fmt.Errorf("engine: unbound variable %s", e.Name)
		}
		return v, nil
	case ndlog.BinExpr:
		l, err := EvalExpr(e.L, b, funcs)
		if err != nil {
			return types.Value{}, err
		}
		r, err := EvalExpr(e.R, b, funcs)
		if err != nil {
			return types.Value{}, err
		}
		return evalArith(e.Op, l, r)
	case ndlog.CallExpr:
		fn, ok := funcs[e.Fn]
		if !ok {
			return types.Value{}, fmt.Errorf("engine: unknown function %s", e.Fn)
		}
		args := make([]types.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := EvalExpr(a, b, funcs)
			if err != nil {
				return types.Value{}, err
			}
			args[i] = v
		}
		out, err := fn(args)
		if err != nil {
			return types.Value{}, fmt.Errorf("engine: %s: %w", e.Fn, err)
		}
		return out, nil
	default:
		return types.Value{}, fmt.Errorf("engine: unknown expression %T", e)
	}
}

func evalArith(op ndlog.BinOp, l, r types.Value) (types.Value, error) {
	// String concatenation via +.
	if op == ndlog.OpAdd && l.Kind() == types.KindString && r.Kind() == types.KindString {
		return types.String(l.AsString() + r.AsString()), nil
	}
	if l.Kind() != types.KindInt || r.Kind() != types.KindInt {
		return types.Value{}, fmt.Errorf("engine: arithmetic %s on %s and %s values", op, l.Kind(), r.Kind())
	}
	a, b := l.AsInt(), r.AsInt()
	switch op {
	case ndlog.OpAdd:
		return types.Int(a + b), nil
	case ndlog.OpSub:
		return types.Int(a - b), nil
	case ndlog.OpMul:
		return types.Int(a * b), nil
	case ndlog.OpDiv:
		if b == 0 {
			return types.Value{}, fmt.Errorf("engine: division by zero")
		}
		return types.Int(a / b), nil
	case ndlog.OpMod:
		if b == 0 {
			return types.Value{}, fmt.Errorf("engine: modulo by zero")
		}
		return types.Int(a % b), nil
	default:
		return types.Value{}, fmt.Errorf("engine: unknown operator %s", op)
	}
}

// EvalConstraint evaluates a comparison under a binding.
func EvalConstraint(c ndlog.Constraint, b Binding, funcs ndlog.FuncMap) (bool, error) {
	l, err := EvalExpr(c.L, b, funcs)
	if err != nil {
		return false, err
	}
	r, err := EvalExpr(c.R, b, funcs)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case ndlog.OpEq:
		return l.Equal(r), nil
	case ndlog.OpNe:
		return !l.Equal(r), nil
	}
	if l.Kind() != r.Kind() {
		return false, fmt.Errorf("engine: ordered comparison %s between %s and %s", c.Op, l.Kind(), r.Kind())
	}
	cmp := l.Compare(r)
	switch c.Op {
	case ndlog.OpLt:
		return cmp < 0, nil
	case ndlog.OpLe:
		return cmp <= 0, nil
	case ndlog.OpGt:
		return cmp > 0, nil
	case ndlog.OpGe:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("engine: unknown comparison %s", c.Op)
	}
}
