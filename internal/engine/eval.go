package engine

import (
	"fmt"

	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// Firing records one rule execution: the triggering event tuple, the
// slow-changing tuples it joined with (in body-atom order), and the derived
// head tuple. Firings are what the provenance maintainers observe.
type Firing struct {
	Rule  *ndlog.Rule
	Event types.Tuple
	Slow  []types.Tuple
	Head  types.Tuple
}

// String summarizes the firing for logs.
func (f Firing) String() string {
	return fmt.Sprintf("%s: %s => %s", f.Rule.Label, f.Event, f.Head)
}

// EvalRule computes every firing of rule r triggered by the event tuple ev
// against the database db. It evaluates through the rule's compiled join
// plan (compiled and cached on first use — deployed runtimes compile all
// plans up front via CompileProgram), probing secondary hash indexes per
// join step. Set PROVCOMPRESS_SCAN_EVAL=1 to force the scan-based
// reference path instead.
func EvalRule(r *ndlog.Rule, db *Database, ev types.Tuple, funcs ndlog.FuncMap) ([]Firing, error) {
	if scanEvalOnly {
		return EvalRuleScan(r, db, ev, funcs)
	}
	return planFor(r).Eval(db, ev, funcs)
}

// EvalRuleScan is the original scan-based evaluator, kept as the reference
// oracle for the indexed path (property tests assert set-identical
// firings) and for A/B benchmarking: slow-changing atoms are joined in
// body order by backtracking unification over full relation scans;
// assignments extend the binding in order; constraints filter.
func EvalRuleScan(r *ndlog.Rule, db *Database, ev types.Tuple, funcs ndlog.FuncMap) ([]Firing, error) {
	if ev.Rel != r.Event.Rel {
		return nil, nil
	}
	base, ok := unify(r.Event, ev, Binding{})
	if !ok {
		return nil, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	var firings []Firing
	var joinErr error
	var rec func(i int, b Binding, slow []types.Tuple)
	rec = func(i int, b Binding, slow []types.Tuple) {
		if joinErr != nil {
			return
		}
		if i == len(r.Slow) {
			f, ok, err := finishFiring(r, ev, b, slow, funcs)
			if err != nil {
				joinErr = err
				return
			}
			if ok {
				firings = append(firings, f)
			}
			return
		}
		atom := r.Slow[i]
		for _, cand := range db.scanLocked(atom.Rel) {
			if nb, ok := unify(atom, cand, b); ok {
				rec(i+1, nb, append(slow[:len(slow):len(slow)], cand))
			}
		}
	}
	rec(0, base, nil)
	if joinErr != nil {
		return nil, joinErr
	}
	return firings, nil
}

// finishFiring applies assignments and constraints and instantiates the
// head under the completed binding.
func finishFiring(r *ndlog.Rule, ev types.Tuple, b Binding, slow []types.Tuple, funcs ndlog.FuncMap) (Firing, bool, error) {
	if len(r.Assigns) > 0 {
		b = b.clone()
		for _, a := range r.Assigns {
			v, err := EvalExpr(a.Expr, b, funcs)
			if err != nil {
				return Firing{}, false, fmt.Errorf("engine: rule %s: %s: %w", r.Label, a, err)
			}
			b[a.Var] = v
		}
	}
	for _, c := range r.Constraints {
		ok, err := EvalConstraint(c, b, funcs)
		if err != nil {
			return Firing{}, false, fmt.Errorf("engine: rule %s: %s: %w", r.Label, c, err)
		}
		if !ok {
			return Firing{}, false, nil
		}
	}
	head, err := instantiate(r.Head, b)
	if err != nil {
		return Firing{}, false, fmt.Errorf("engine: rule %s: %w", r.Label, err)
	}
	return Firing{Rule: r, Event: ev, Slow: slow, Head: head}, true, nil
}

// unify matches an atom against a concrete tuple, extending the binding.
// It returns the extended binding (a copy if anything was added) and
// whether unification succeeded.
func unify(atom ndlog.Atom, t types.Tuple, b Binding) (Binding, bool) {
	if atom.Rel != t.Rel || len(atom.Args) != len(t.Args) {
		return nil, false
	}
	out := b
	copied := false
	for i, term := range atom.Args {
		switch term := term.(type) {
		case ndlog.Const:
			if !term.Val.Equal(t.Args[i]) {
				return nil, false
			}
		case ndlog.Var:
			if v, ok := out[term.Name]; ok {
				if !v.Equal(t.Args[i]) {
					return nil, false
				}
				continue
			}
			if !copied {
				out = out.clone()
				copied = true
			}
			out[term.Name] = t.Args[i]
		}
	}
	return out, true
}

// instantiate builds the head tuple from a complete binding.
func instantiate(atom ndlog.Atom, b Binding) (types.Tuple, error) {
	args := make([]types.Value, len(atom.Args))
	for i, term := range atom.Args {
		switch term := term.(type) {
		case ndlog.Const:
			args[i] = term.Val
		case ndlog.Var:
			v, ok := b[term.Name]
			if !ok {
				return types.Tuple{}, fmt.Errorf("unbound head variable %s", term.Name)
			}
			args[i] = v
		}
	}
	return types.Tuple{Rel: atom.Rel, Args: args}, nil
}
