package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// countingMaintainer is a no-op maintainer that counts hook invocations.
type countingMaintainer struct {
	rt          *Runtime
	injects     int
	fires       int
	outputs     int
	slowUpdates int
	metaSize    int
}

func (c *countingMaintainer) Name() string       { return "counting" }
func (c *countingMaintainer) Attach(rt *Runtime) { c.rt = rt }
func (c *countingMaintainer) OnInject(*Node, types.Tuple) Meta {
	c.injects++
	return nil
}
func (c *countingMaintainer) OnFire(_ *Node, f Firing, in Meta) Meta {
	c.fires++
	return in
}
func (c *countingMaintainer) OnOutput(*Node, types.Tuple, Meta) { c.outputs++ }
func (c *countingMaintainer) OnSlowUpdate(*Node, types.Tuple, bool) {
	c.slowUpdates++
}
func (c *countingMaintainer) HandleMessage(*Node, netsim.Message) bool { return false }
func (c *countingMaintainer) MetaSize(Meta) int                        { return c.metaSize }
func (c *countingMaintainer) StorageBytes(types.NodeAddr) int64        { return 0 }
func (c *countingMaintainer) TotalStorageBytes() int64                 { return 0 }

func newTestRuntime(t *testing.T, n int, maint Maintainer) *Runtime {
	t.Helper()
	var sched sim.Scheduler
	g := topo.Line(n, "n")
	net := netsim.New(&sched, g)
	rt := NewRuntime(net, apps.Forwarding(), apps.Funcs(), maint)
	if err := rt.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRuntimeForwardingPipeline(t *testing.T) {
	c := &countingMaintainer{}
	rt := newTestRuntime(t, 4, c)
	rt.Inject(pktT("n0", "n0", "n3", "data"))
	rt.Run()

	if len(rt.Errors()) != 0 {
		t.Fatalf("errors: %v", rt.Errors())
	}
	if c.injects != 1 {
		t.Errorf("injects = %d", c.injects)
	}
	// 3 r1 firings (n0, n1, n2) + 1 r2 firing (n3).
	if c.fires != 4 || rt.Fired() != 4 {
		t.Errorf("fires = %d / %d, want 4", c.fires, rt.Fired())
	}
	if c.outputs != 1 || rt.NumOutputs() != 1 {
		t.Errorf("outputs = %d / %d, want 1", c.outputs, rt.NumOutputs())
	}
	outs := rt.Outputs()
	if len(outs) != 1 || !outs[0].Tuple.Equal(types.NewTuple("recv",
		types.String("n3"), types.String("n0"), types.String("n3"), types.String("data"))) {
		t.Fatalf("outputs = %v", outs)
	}
	// Delivery time: 3 hops of latency plus serialization.
	if outs[0].Time < 3*topo.SimpleLatency {
		t.Errorf("delivery time = %v, want >= %v", outs[0].Time, 3*topo.SimpleLatency)
	}
	if rt.Injected() != 1 {
		t.Errorf("Injected = %d", rt.Injected())
	}
	// The intermediate packet tuples are materialized at each hop.
	if _, ok := rt.Node("n1").DB.LookupVID(types.HashTuple(pktT("n1", "n0", "n3", "data"))); !ok {
		t.Error("intermediate packet not materialized at n1")
	}
}

func TestRuntimeMetaSizeCountsOnWire(t *testing.T) {
	run := func(metaSize int) int64 {
		c := &countingMaintainer{metaSize: metaSize}
		rt := newTestRuntime(t, 3, c)
		rt.Inject(pktT("n0", "n0", "n2", "data"))
		rt.Run()
		return rt.Net.TotalBytes()
	}
	small, big := run(0), run(100)
	if big <= small {
		t.Errorf("metadata not counted: bytes %d vs %d", small, big)
	}
}

func TestRuntimeLoadBaseErrors(t *testing.T) {
	rt := newTestRuntime(t, 2, &countingMaintainer{})
	err := rt.LoadBase([]types.Tuple{rt3("ghost", "n1", "n1")})
	if err == nil {
		t.Error("LoadBase at unknown node accepted")
	}
}

func TestRuntimeInjectUnknownNodePanics(t *testing.T) {
	rt := newTestRuntime(t, 2, &countingMaintainer{})
	defer func() {
		if recover() == nil {
			t.Error("inject at unknown node should panic")
		}
	}()
	rt.Inject(pktT("ghost", "g", "n1", "x"))
}

func TestRuntimeSlowUpdates(t *testing.T) {
	c := &countingMaintainer{}
	rt := newTestRuntime(t, 3, c)
	rt.InsertSlow(rt3("n0", "n9", "n1"))
	if c.slowUpdates != 1 {
		t.Errorf("slowUpdates = %d", c.slowUpdates)
	}
	// Duplicate insert: no notification.
	rt.InsertSlow(rt3("n0", "n9", "n1"))
	if c.slowUpdates != 1 {
		t.Errorf("duplicate insert notified: %d", c.slowUpdates)
	}
	rt.DeleteSlow(rt3("n0", "n9", "n1"))
	if c.slowUpdates != 2 {
		t.Errorf("delete not notified: %d", c.slowUpdates)
	}
	// Deleting a missing tuple: no notification.
	rt.DeleteSlow(rt3("n0", "n9", "n1"))
	if c.slowUpdates != 2 {
		t.Errorf("missing delete notified: %d", c.slowUpdates)
	}
}

func TestRuntimeUnhandledMessageRecorded(t *testing.T) {
	c := &countingMaintainer{}
	rt := newTestRuntime(t, 2, c)
	rt.Net.Send(netsim.Message{From: "n0", To: "n1", Kind: "mystery", Size: 1})
	rt.Run()
	if len(rt.Errors()) != 1 {
		t.Errorf("errors = %v, want one unhandled-kind error", rt.Errors())
	}
}

func TestRuntimeEvalErrorRecordedAndIsolated(t *testing.T) {
	// One rule's UDF fails at runtime; the error is recorded and the other
	// rule on the same event still fires.
	prog, err := ndlog.ParseDELP(`
b1 boom(@L, X) :- ev(@L, X), Y := f_boom(X), Y == 1.
b2 fine(@L, X) :- boom(@L, X).
`)
	if err != nil {
		t.Fatal(err)
	}
	funcs := ndlog.FuncMap{
		"f_boom": func(args []types.Value) (types.Value, error) {
			if args[0].AsInt() == 13 {
				return types.Value{}, fmt.Errorf("unlucky")
			}
			return types.Int(1), nil
		},
	}
	var sched sim.Scheduler
	g := topo.Line(2, "n")
	net := netsim.New(&sched, g)
	c := &countingMaintainer{}
	rt := NewRuntime(net, prog, funcs, c)
	rt.Inject(types.NewTuple("ev", types.String("n0"), types.Int(13))) // errors
	rt.Inject(types.NewTuple("ev", types.String("n0"), types.Int(7)))  // fine
	rt.Run()
	if len(rt.Errors()) != 1 {
		t.Fatalf("errors = %v, want exactly the UDF failure", rt.Errors())
	}
	if !strings.Contains(rt.Errors()[0].Error(), "unlucky") {
		t.Errorf("error = %v", rt.Errors()[0])
	}
	// The non-failing event still completed its chain.
	if rt.NumOutputs() != 1 {
		t.Errorf("outputs = %d, want 1", rt.NumOutputs())
	}
}

func TestRuntimeKeepOutputsDisabled(t *testing.T) {
	c := &countingMaintainer{}
	rt := newTestRuntime(t, 3, c)
	rt.KeepOutputs = false
	rt.Inject(pktT("n0", "n0", "n2", "a"))
	rt.Inject(pktT("n0", "n0", "n2", "b"))
	rt.Run()
	if rt.NumOutputs() != 2 {
		t.Errorf("NumOutputs = %d", rt.NumOutputs())
	}
	if len(rt.Outputs()) != 0 {
		t.Errorf("Outputs kept despite KeepOutputs=false")
	}
}

func TestRuntimeDeadEndPacketStops(t *testing.T) {
	// A packet whose destination has no route simply stops deriving.
	c := &countingMaintainer{}
	rt := newTestRuntime(t, 3, c)
	rt.Inject(pktT("n1", "n1", "nowhere", "data"))
	rt.Run()
	if c.outputs != 0 {
		t.Errorf("outputs = %d, want 0", c.outputs)
	}
	if len(rt.Errors()) != 0 {
		t.Errorf("errors: %v", rt.Errors())
	}
}

func TestRuntimeRunFor(t *testing.T) {
	c := &countingMaintainer{}
	rt := newTestRuntime(t, 5, c)
	rt.InjectAt(0, pktT("n0", "n0", "n4", "x"))
	rt.RunFor(time.Millisecond) // not enough virtual time to finish
	if c.outputs != 0 {
		t.Error("pipeline finished too early")
	}
	rt.RunFor(time.Second)
	if c.outputs != 1 {
		t.Errorf("outputs = %d after full run", c.outputs)
	}
}
