package engine

import (
	"testing"

	"provcompress/internal/types"
)

func rt3(loc, dst, next string) types.Tuple {
	return types.NewTuple("route", types.String(loc), types.String(dst), types.String(next))
}

func TestDatabaseInsertScanDelete(t *testing.T) {
	db := NewDatabase()
	a := rt3("n1", "n3", "n2")
	b := rt3("n1", "n4", "n2")
	if !db.Insert(a) {
		t.Error("first insert reported duplicate")
	}
	if db.Insert(a) {
		t.Error("duplicate insert reported new")
	}
	db.Insert(b)
	if db.Count("route") != 2 {
		t.Errorf("count = %d, want 2", db.Count("route"))
	}
	rows := db.Scan("route")
	if len(rows) != 2 || !rows[0].Equal(a) || !rows[1].Equal(b) {
		t.Errorf("scan = %v", rows)
	}
	if !db.Delete(a) {
		t.Error("delete reported missing")
	}
	if db.Delete(a) {
		t.Error("second delete reported present")
	}
	if db.Count("route") != 1 {
		t.Errorf("count after delete = %d", db.Count("route"))
	}
	if len(db.Scan("nosuch")) != 0 {
		t.Error("scan of unknown relation non-empty")
	}
}

func TestDatabaseLookupVIDAndGraveyard(t *testing.T) {
	db := NewDatabase()
	a := rt3("n1", "n3", "n2")
	vid := types.HashTuple(a)
	if _, ok := db.LookupVID(vid); ok {
		t.Error("lookup before insert succeeded")
	}
	db.Insert(a)
	if got, ok := db.LookupVID(vid); !ok || !got.Equal(a) {
		t.Errorf("lookup = %v, %v", got, ok)
	}
	db.Delete(a)
	// Deleted tuples stay resolvable (provenance is monotone) but leave the
	// table.
	if got, ok := db.LookupVID(vid); !ok || !got.Equal(a) {
		t.Error("deleted tuple no longer resolvable by VID")
	}
	if db.Count("route") != 0 {
		t.Error("deleted tuple still scanned")
	}
	// Re-insert after delete works.
	if !db.Insert(a) {
		t.Error("re-insert after delete rejected")
	}
	if db.Count("route") != 1 {
		t.Error("re-inserted tuple not scanned")
	}
}

func TestNodeString(t *testing.T) {
	n := NewNode("n1")
	if n.String() != "node(n1)" {
		t.Errorf("String = %q", n.String())
	}
	if n.DB == nil {
		t.Error("node without database")
	}
}
