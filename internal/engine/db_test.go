package engine

import (
	"testing"

	"provcompress/internal/types"
)

func rt3(loc, dst, next string) types.Tuple {
	return types.NewTuple("route", types.String(loc), types.String(dst), types.String(next))
}

func TestDatabaseInsertScanDelete(t *testing.T) {
	db := NewDatabase()
	a := rt3("n1", "n3", "n2")
	b := rt3("n1", "n4", "n2")
	if !db.Insert(a) {
		t.Error("first insert reported duplicate")
	}
	if db.Insert(a) {
		t.Error("duplicate insert reported new")
	}
	db.Insert(b)
	if db.Count("route") != 2 {
		t.Errorf("count = %d, want 2", db.Count("route"))
	}
	rows := db.Scan("route")
	if len(rows) != 2 || !rows[0].Equal(a) || !rows[1].Equal(b) {
		t.Errorf("scan = %v", rows)
	}
	if !db.Delete(a) {
		t.Error("delete reported missing")
	}
	if db.Delete(a) {
		t.Error("second delete reported present")
	}
	if db.Count("route") != 1 {
		t.Errorf("count after delete = %d", db.Count("route"))
	}
	if len(db.Scan("nosuch")) != 0 {
		t.Error("scan of unknown relation non-empty")
	}
}

func TestDatabaseLookupVIDAndGraveyard(t *testing.T) {
	db := NewDatabase()
	a := rt3("n1", "n3", "n2")
	vid := types.HashTuple(a)
	if _, ok := db.LookupVID(vid); ok {
		t.Error("lookup before insert succeeded")
	}
	db.Insert(a)
	if got, ok := db.LookupVID(vid); !ok || !got.Equal(a) {
		t.Errorf("lookup = %v, %v", got, ok)
	}
	db.Delete(a)
	// Deleted tuples stay resolvable (provenance is monotone) but leave the
	// table.
	if got, ok := db.LookupVID(vid); !ok || !got.Equal(a) {
		t.Error("deleted tuple no longer resolvable by VID")
	}
	if db.Count("route") != 0 {
		t.Error("deleted tuple still scanned")
	}
	// Re-insert after delete works.
	if !db.Insert(a) {
		t.Error("re-insert after delete rejected")
	}
	if db.Count("route") != 1 {
		t.Error("re-inserted tuple not scanned")
	}
}

func TestNodeString(t *testing.T) {
	n := NewNode("n1")
	if n.String() != "node(n1)" {
		t.Errorf("String = %q", n.String())
	}
	if n.DB == nil {
		t.Error("node without database")
	}
}

// TestGraveyardCap is the regression test for unbounded graveyard growth
// under delete churn: with a retention cap set, the oldest deleted
// tuples are evicted FIFO and stop resolving, while the newest stay
// queryable; without a cap every deleted tuple is retained.
func TestGraveyardCap(t *testing.T) {
	mk := func(i int) types.Tuple {
		return types.NewTuple("route",
			types.String("n1"), types.Int(int64(i)), types.String("n2"))
	}

	// Unbounded by default: churn retains everything.
	db := NewDatabase()
	for i := 0; i < 50; i++ {
		db.Insert(mk(i))
		db.Delete(mk(i))
	}
	if got := db.GraveyardSize(); got != 50 {
		t.Fatalf("unbounded graveyard size = %d, want 50", got)
	}

	// Capped: only the newest N survive.
	db2 := NewDatabase()
	db2.SetGraveyardCap(10)
	for i := 0; i < 50; i++ {
		db2.Insert(mk(i))
		db2.Delete(mk(i))
	}
	if got := db2.GraveyardSize(); got != 10 {
		t.Fatalf("capped graveyard size = %d, want 10", got)
	}
	if _, ok := db2.LookupVID(types.HashTuple(mk(0))); ok {
		t.Fatal("evicted tuple still resolvable")
	}
	if _, ok := db2.LookupVID(types.HashTuple(mk(49))); !ok {
		t.Fatal("newest deleted tuple not resolvable")
	}

	// Lowering the cap on a full graveyard evicts immediately.
	db2.SetGraveyardCap(3)
	if got := db2.GraveyardSize(); got != 3 {
		t.Fatalf("size after cap shrink = %d, want 3", got)
	}

	// Re-deleting an already-buried tuple must not double-count.
	db3 := NewDatabase()
	db3.SetGraveyardCap(5)
	db3.Insert(mk(1))
	db3.Delete(mk(1))
	db3.Insert(mk(1))
	db3.Delete(mk(1))
	if got := db3.GraveyardSize(); got != 1 {
		t.Fatalf("re-delete graveyard size = %d, want 1", got)
	}
}

// TestGraveyardReinsertPurge is the regression test for the deletion-storm
// leak: a tuple that is deleted and later re-inserted is live again, so it
// must leave the graveyard — otherwise the graveyard gauge never returns
// to baseline after a storm, the retention cap is consumed by live tuples,
// and a cap eviction can fire an invalidation for a tuple that still
// resolves from the live store.
func TestGraveyardReinsertPurge(t *testing.T) {
	mk := func(i int) types.Tuple {
		return types.NewTuple("route",
			types.String("n1"), types.Int(int64(i)), types.String("n2"))
	}

	// Storm then full re-insert: the graveyard must drain to zero.
	db := NewDatabase()
	db.SetGraveyardCap(4)
	for i := 0; i < 10; i++ {
		db.Insert(mk(i))
	}
	for i := 0; i < 10; i++ {
		db.Delete(mk(i))
	}
	if got := db.GraveyardSize(); got != 4 {
		t.Fatalf("post-storm graveyard size = %d, want 4 (cap)", got)
	}
	for i := 0; i < 10; i++ {
		db.Insert(mk(i))
	}
	if got := db.GraveyardSize(); got != 0 {
		t.Fatalf("graveyard size after full re-insert = %d, want 0", got)
	}
	if got := len(db.GraveyardVIDs()); got != 0 {
		t.Fatalf("GraveyardVIDs after full re-insert = %d entries, want 0", got)
	}

	// Stale order slots must not count toward the cap or surface as
	// evictions: after re-inserting 6..9 (their order slots go stale),
	// deleting four fresh tuples must keep exactly cap entries live and
	// never evict a live VID.
	for i := 6; i < 10; i++ {
		db.Delete(mk(i))
	}
	for i := 10; i < 14; i++ {
		db.Insert(mk(i))
	}
	for i := 10; i < 14; i++ {
		db.Delete(mk(i))
	}
	if got := db.GraveyardSize(); got != 4 {
		t.Fatalf("graveyard size = %d, want 4", got)
	}
	// The four oldest (6..9) were evicted; the newest four resolve.
	for i := 10; i < 14; i++ {
		if _, ok := db.LookupVID(types.HashTuple(mk(i))); !ok {
			t.Fatalf("newest deleted tuple %d not resolvable", i)
		}
	}
	// A re-inserted tuple resolves from the live store, not the graveyard.
	if got, ok := db.LookupVID(types.HashTuple(mk(0))); !ok || !got.Equal(mk(0)) {
		t.Fatal("re-inserted tuple not resolvable from live store")
	}
}
