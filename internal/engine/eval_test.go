package engine

import (
	"fmt"
	"strings"
	"testing"

	"provcompress/internal/apps"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

func pktT(loc, src, dst, dt string) types.Tuple {
	return types.NewTuple("packet",
		types.String(loc), types.String(src), types.String(dst), types.String(dt))
}

func TestEvalRuleForwardingR1(t *testing.T) {
	prog := apps.Forwarding()
	r1 := prog.Rule("r1")
	db := NewDatabase()
	db.Insert(rt3("n1", "n3", "n2"))
	db.Insert(rt3("n1", "n5", "n4"))

	firings, err := EvalRule(r1, db, pktT("n1", "n1", "n3", "data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(firings) != 1 {
		t.Fatalf("firings = %d, want 1 (only the n3 route matches)", len(firings))
	}
	f := firings[0]
	if !f.Head.Equal(pktT("n2", "n1", "n3", "data")) {
		t.Errorf("head = %v", f.Head)
	}
	if len(f.Slow) != 1 || !f.Slow[0].Equal(rt3("n1", "n3", "n2")) {
		t.Errorf("slow = %v", f.Slow)
	}
	if !strings.Contains(f.String(), "r1") {
		t.Errorf("firing string = %q", f.String())
	}
}

func TestEvalRuleForwardingR2Constraint(t *testing.T) {
	prog := apps.Forwarding()
	r2 := prog.Rule("r2")
	db := NewDatabase()

	// D == L holds: fires.
	firings, err := EvalRule(r2, db, pktT("n3", "n1", "n3", "data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(firings) != 1 {
		t.Fatalf("firings = %d, want 1", len(firings))
	}
	if firings[0].Head.Rel != "recv" {
		t.Errorf("head = %v", firings[0].Head)
	}

	// D != L: does not fire.
	firings, err = EvalRule(r2, db, pktT("n2", "n1", "n3", "data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(firings) != 0 {
		t.Errorf("firings = %d, want 0", len(firings))
	}
}

func TestEvalRuleWrongEventRelation(t *testing.T) {
	prog := apps.Forwarding()
	firings, err := EvalRule(prog.Rule("r1"), NewDatabase(), rt3("n1", "n3", "n2"), nil)
	if err != nil || len(firings) != 0 {
		t.Errorf("firings = %v, err = %v", firings, err)
	}
}

func TestEvalRuleMultipleJoins(t *testing.T) {
	// A rule joining two slow relations, with a shared variable.
	prog := ndlog.MustParse(`
r1 out(@L, X, Y, Z) :- e(@L, X), a(@L, X, Y), b(@L, Y, Z).
`)
	db := NewDatabase()
	db.Insert(types.NewTuple("a", types.String("n"), types.Int(1), types.Int(10)))
	db.Insert(types.NewTuple("a", types.String("n"), types.Int(1), types.Int(20)))
	db.Insert(types.NewTuple("a", types.String("n"), types.Int(2), types.Int(30)))
	db.Insert(types.NewTuple("b", types.String("n"), types.Int(10), types.Int(100)))
	db.Insert(types.NewTuple("b", types.String("n"), types.Int(20), types.Int(200)))

	ev := types.NewTuple("e", types.String("n"), types.Int(1))
	firings, err := EvalRule(prog.Rule("r1"), db, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	// X=1 joins a-rows (1,10),(1,20); b joins on Y: 10->100, 20->200.
	if len(firings) != 2 {
		t.Fatalf("firings = %d, want 2", len(firings))
	}
	for _, f := range firings {
		if len(f.Slow) != 2 {
			t.Errorf("slow tuples = %d, want 2", len(f.Slow))
		}
	}
}

func TestEvalRuleSelfJoinVariableConsistency(t *testing.T) {
	// The same variable appearing twice in the event atom must unify.
	prog := ndlog.MustParse(`r1 out(@L, X) :- e(@L, X, X).`)
	db := NewDatabase()
	ok1, err := EvalRule(prog.Rule("r1"), db,
		types.NewTuple("e", types.String("n"), types.Int(3), types.Int(3)), nil)
	if err != nil || len(ok1) != 1 {
		t.Errorf("equal args: firings = %v, err = %v", ok1, err)
	}
	ok2, err := EvalRule(prog.Rule("r1"), db,
		types.NewTuple("e", types.String("n"), types.Int(3), types.Int(4)), nil)
	if err != nil || len(ok2) != 0 {
		t.Errorf("unequal args: firings = %v, err = %v", ok2, err)
	}
}

func TestEvalRuleAssignmentsAndUDF(t *testing.T) {
	prog := ndlog.MustParse(`r1 out(@L, N, B) :- e(@L, X), N := X * 2 + 1, B := f_even(N), N > 0.`)
	funcs := ndlog.FuncMap{
		"f_even": func(args []types.Value) (types.Value, error) {
			return types.Bool(args[0].AsInt()%2 == 0), nil
		},
	}
	db := NewDatabase()
	ev := types.NewTuple("e", types.String("n"), types.Int(5))
	firings, err := EvalRule(prog.Rule("r1"), db, ev, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(firings) != 1 {
		t.Fatalf("firings = %d", len(firings))
	}
	h := firings[0].Head
	if h.Args[1].AsInt() != 11 || h.Args[2].AsBool() != false {
		t.Errorf("head = %v, want N=11, B=false", h)
	}
}

func TestEvalRuleErrors(t *testing.T) {
	db := NewDatabase()
	ev := types.NewTuple("e", types.String("n"), types.String("notanint"))

	// Arithmetic on a string.
	prog := ndlog.MustParse(`r1 out(@L, N) :- e(@L, X), N := X * 2.`)
	if _, err := EvalRule(prog.Rule("r1"), db, ev, nil); err == nil {
		t.Error("arithmetic on string accepted")
	}

	// Unknown function.
	prog = ndlog.MustParse(`r1 out(@L, N) :- e(@L, X), N := f_missing(X).`)
	if _, err := EvalRule(prog.Rule("r1"), db, ev, nil); err == nil {
		t.Error("unknown function accepted")
	}

	// Division by zero.
	prog = ndlog.MustParse(`r1 out(@L, N) :- e(@L, X), N := 1 / 0.`)
	if _, err := EvalRule(prog.Rule("r1"), db, ev, nil); err == nil {
		t.Error("division by zero accepted")
	}

	// Ordered comparison across kinds.
	prog = ndlog.MustParse(`r1 out(@L, X) :- e(@L, X), X < 3.`)
	if _, err := EvalRule(prog.Rule("r1"), db, ev, nil); err == nil {
		t.Error("cross-kind ordered comparison accepted")
	}
}

func TestEvalExprStringConcat(t *testing.T) {
	b := Binding{"A": types.String("foo"), "B": types.String("bar")}
	e := ndlog.BinExpr{Op: ndlog.OpAdd, L: ndlog.VarExpr{Name: "A"}, R: ndlog.VarExpr{Name: "B"}}
	v, err := EvalExpr(e, b, nil)
	if err != nil || v.AsString() != "foobar" {
		t.Errorf("concat = %v, %v", v, err)
	}
}

func TestEvalConstraintOperators(t *testing.T) {
	b := Binding{"X": types.Int(3), "Y": types.Int(5), "S": types.String("abc")}
	cases := []struct {
		src  string
		want bool
	}{
		{`X == 3`, true}, {`X != 3`, false}, {`X < Y`, true}, {`X <= 3`, true},
		{`Y > 9`, false}, {`Y >= 5`, true}, {`S == "abc"`, true}, {`S != "abc"`, false},
	}
	for _, tc := range cases {
		prog := ndlog.MustParse(fmt.Sprintf(`r1 out(@L, X, Y, S) :- e(@L, X, Y, S), %s.`, tc.src))
		got, err := EvalConstraint(prog.Rules[0].Constraints[0], b, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalArithOperators(t *testing.T) {
	b := Binding{"X": types.Int(7), "Y": types.Int(2)}
	cases := []struct {
		src  string
		want int64
	}{
		{"X + Y", 9}, {"X - Y", 5}, {"X * Y", 14}, {"X / Y", 3}, {"X % Y", 1},
	}
	for _, tc := range cases {
		prog := ndlog.MustParse(fmt.Sprintf(`r1 out(@L, N) :- e(@L, X, Y), N := %s.`, tc.src))
		got, err := EvalExpr(prog.Rules[0].Assigns[0].Expr, b, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got.AsInt() != tc.want {
			t.Errorf("%s = %v, want %d", tc.src, got, tc.want)
		}
	}
}

func TestEvalExprUnbound(t *testing.T) {
	if _, err := EvalExpr(ndlog.VarExpr{Name: "Z"}, Binding{}, nil); err == nil {
		t.Error("unbound variable accepted")
	}
}
