package engine

import (
	"sort"

	"provcompress/internal/types"
)

// maxIndexedPos bounds the attribute positions a secondary index may cover:
// position sets are encoded as uint64 bitmasks. Relations in practice have
// single-digit arities; a rule joining on a position beyond the mask simply
// falls back to a scan for that atom.
const maxIndexedPos = 64

// hashIndex is one secondary index of a relation: rows grouped by the
// canonical encoding of their values at a fixed set of attribute positions.
// Each join step of a compiled rule plan probes exactly one bucket instead
// of scanning the relation.
type hashIndex struct {
	positions []int // sorted attribute indexes the key covers
	buckets   map[string][]types.Tuple
}

func newHashIndex(positions []int) *hashIndex {
	return &hashIndex{
		positions: append([]int(nil), positions...),
		buckets:   make(map[string][]types.Tuple),
	}
}

// appendIndexKey appends the canonical encoding of args at the given
// positions to dst. The per-value encoding is self-delimiting (kind byte +
// payload), so concatenation cannot collide across position sets of equal
// length.
func appendIndexKey(dst []byte, args []types.Value, positions []int) []byte {
	for _, p := range positions {
		dst = args[p].AppendEncode(dst)
	}
	return dst
}

// covers reports whether the tuple has every indexed position. The store is
// schema-free, so a relation may hold tuples of mixed arity; a tuple too
// short for the index key can never unify with the atom probing it and is
// simply left out of the buckets.
func (ix *hashIndex) covers(t types.Tuple) bool {
	return len(ix.positions) == 0 || ix.positions[len(ix.positions)-1] < len(t.Args)
}

// add appends a tuple to its bucket.
func (ix *hashIndex) add(t types.Tuple) {
	if !ix.covers(t) {
		return
	}
	key := appendIndexKey(nil, t.Args, ix.positions)
	ix.buckets[string(key)] = append(ix.buckets[string(key)], t)
}

// remove deletes a tuple from its bucket (swap-remove; buckets are sets
// because the relation store has set semantics). Empty buckets are dropped
// so churn does not leak map entries.
func (ix *hashIndex) remove(t types.Tuple) {
	if !ix.covers(t) {
		return
	}
	var kb [64]byte
	key := appendIndexKey(kb[:0], t.Args, ix.positions)
	bucket := ix.buckets[string(key)]
	for i := range bucket {
		if bucket[i].Equal(t) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket[last] = types.Tuple{}
			bucket = bucket[:last]
			if len(bucket) == 0 {
				delete(ix.buckets, string(key))
			} else {
				ix.buckets[string(key)] = bucket
			}
			return
		}
	}
}

// probe returns the bucket for the key encoding, without copying. The
// string conversion in the map lookup does not allocate.
func (ix *hashIndex) probe(key []byte) []types.Tuple {
	return ix.buckets[string(key)]
}

// posMask encodes a sorted position set as a bitmask, the identity of a
// secondary index. ok is false when a position does not fit the mask.
func posMask(positions []int) (uint64, bool) {
	var m uint64
	for _, p := range positions {
		if p < 0 || p >= maxIndexedPos {
			return 0, false
		}
		m |= 1 << uint(p)
	}
	return m, true
}

// sortedPositions returns a sorted copy of positions with duplicates
// removed.
func sortedPositions(positions []int) []int {
	out := append([]int(nil), positions...)
	sort.Ints(out)
	n := 0
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			out[n] = p
			n++
		}
	}
	return out[:n]
}
