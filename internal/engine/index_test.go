package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"provcompress/internal/types"
)

func probeKey(vals ...types.Value) []byte {
	var key []byte
	for _, v := range vals {
		key = v.AppendEncode(key)
	}
	return key
}

func TestDatabaseSwapRemoveDelete(t *testing.T) {
	db := NewDatabase()
	const n = 100
	for i := 0; i < n; i++ {
		db.Insert(rt3("n1", fmt.Sprintf("d%d", i), "n2"))
	}
	// Delete from the middle: the last row is swapped into the hole, the
	// remaining set is intact, and the VID position map stays consistent so
	// later deletes still find their rows.
	for i := 0; i < n; i += 2 {
		if !db.Delete(rt3("n1", fmt.Sprintf("d%d", i), "n2")) {
			t.Fatalf("delete d%d reported missing", i)
		}
	}
	if db.Count("route") != n/2 {
		t.Fatalf("count = %d, want %d", db.Count("route"), n/2)
	}
	left := make(map[string]bool)
	for _, row := range db.Scan("route") {
		left[row.Args[1].AsString()] = true
	}
	for i := 0; i < n; i++ {
		want := i%2 == 1
		if left[fmt.Sprintf("d%d", i)] != want {
			t.Errorf("d%d present = %v, want %v", i, !want, want)
		}
	}
}

func TestDatabaseProbeMatchesScan(t *testing.T) {
	db := NewDatabase()
	for i := 0; i < 64; i++ {
		db.Insert(types.NewTuple("edge",
			types.String("n"), types.Int(int64(i%8)), types.Int(int64(i))))
	}
	positions := []int{1}
	for want := 0; want < 8; want++ {
		got := db.Probe("edge", positions, probeKey(types.Int(int64(want))))
		if len(got) != 8 {
			t.Fatalf("bucket %d has %d rows, want 8", want, len(got))
		}
		for _, row := range got {
			if row.Args[1].AsInt() != int64(want) {
				t.Errorf("bucket %d holds %v", want, row)
			}
		}
	}
	if db.IndexCount("edge") != 1 {
		t.Errorf("index count = %d, want 1 (one position set)", db.IndexCount("edge"))
	}
	// A second position set builds a second index.
	db.Probe("edge", []int{1, 2}, probeKey(types.Int(3), types.Int(3)))
	if db.IndexCount("edge") != 2 {
		t.Errorf("index count = %d, want 2", db.IndexCount("edge"))
	}
}

// TestDatabaseIndexConsistencyUnderChurn hammers a relation with random
// inserts and deletes after its indexes exist, asserting after every step
// that probing agrees with filtering a full scan.
func TestDatabaseIndexConsistencyUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDatabase()
	mk := func(k, v int) types.Tuple {
		return types.NewTuple("kv", types.String("n"), types.Int(int64(k)), types.Int(int64(v)))
	}
	// Force the index into existence before any churn.
	db.Probe("kv", []int{1}, probeKey(types.Int(0)))

	live := make(map[[2]int]bool)
	for step := 0; step < 2000; step++ {
		k, v := rng.Intn(8), rng.Intn(50)
		if rng.Intn(3) > 0 {
			db.Insert(mk(k, v))
			live[[2]int{k, v}] = true
		} else {
			db.Delete(mk(k, v))
			delete(live, [2]int{k, v})
		}
	}
	for k := 0; k < 8; k++ {
		want := 0
		for kv := range live {
			if kv[0] == k {
				want++
			}
		}
		got := db.Probe("kv", []int{1}, probeKey(types.Int(int64(k))))
		if len(got) != want {
			t.Fatalf("bucket %d: %d rows, want %d", k, len(got), want)
		}
		for _, row := range got {
			if !live[[2]int{int(row.Args[1].AsInt()), int(row.Args[2].AsInt())}] {
				t.Fatalf("bucket %d holds deleted row %v", k, row)
			}
		}
	}
	if db.Count("kv") != len(live) {
		t.Errorf("count = %d, want %d", db.Count("kv"), len(live))
	}
}

// TestDatabaseIndexSkipsShortTuples: the store is schema-free, so an index
// over position 2 must ignore (not crash on) tuples of arity 2.
func TestDatabaseIndexSkipsShortTuples(t *testing.T) {
	db := NewDatabase()
	short := types.NewTuple("r", types.String("n"), types.Int(1))
	long := types.NewTuple("r", types.String("n"), types.Int(1), types.Int(2))
	db.Insert(short)
	db.Insert(long)
	got := db.Probe("r", []int{2}, probeKey(types.Int(2)))
	if len(got) != 1 || !got[0].Equal(long) {
		t.Errorf("probe = %v, want only the arity-3 tuple", got)
	}
	// Deleting the short tuple must not disturb the index either.
	db.Delete(short)
	got = db.Probe("r", []int{2}, probeKey(types.Int(2)))
	if len(got) != 1 {
		t.Errorf("probe after delete = %v", got)
	}
}
