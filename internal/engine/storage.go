// Storage contract of the engine: Store is the interface carved out of
// Database so the durability layer (internal/store, internal/cluster) and
// alternative backends program against a contract instead of the concrete
// in-memory implementation. Database is the canonical implementation; the
// snapshot codec below is what the write-ahead-log subsystem checkpoints
// and restores.
package engine

import (
	"fmt"

	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// Store is the tuple-storage contract the evaluator and the provenance
// protocols consume: the mutable tuple store with set semantics, the
// scan/probe read surface the join plans run over, and the deleted-tuple
// graveyard that keeps provenance VIDs resolvable after deletion.
type Store interface {
	// Insert adds a tuple (set semantics) and reports whether it was new.
	Insert(t types.Tuple) bool
	// Delete removes a tuple, retaining its contents in the graveyard,
	// and reports whether it was present.
	Delete(t types.Tuple) bool
	// Contains reports whether a live (non-deleted) tuple is stored.
	Contains(t types.Tuple) bool
	// Scan returns the tuples of a relation (stability caveats on Database.Scan).
	Scan(rel string) []types.Tuple
	// Probe returns the tuples matching key at the given attribute positions.
	Probe(rel string, positions []int, key []byte) []types.Tuple
	// Count returns the number of live tuples in a relation.
	Count(rel string) int
	// LookupVID resolves a tuple by content hash, live or deleted.
	LookupVID(vid types.ID) (types.Tuple, bool)
	// SetGraveyardCap bounds deleted-tuple retention (0 = unbounded).
	SetGraveyardCap(n int)
	// GraveyardSize returns the number of deleted tuples retained.
	GraveyardSize() int
}

var _ Store = (*Database)(nil)

// Contains reports whether a live tuple is stored (deleted tuples are not
// contained even though their contents remain resolvable). The durability
// layer uses it to decide whether a mutation will be accepted before
// writing its WAL record.
func (db *Database) Contains(t types.Tuple) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.byVID[types.HashTuple(t)]
	return ok
}

// GraveyardVIDs returns the retained deleted-tuple VIDs oldest-first — the
// FIFO eviction order. Exposed for the snapshot codec and for tests that
// pin eviction behavior.
func (db *Database) GraveyardVIDs() []types.ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []types.ID
	for _, vid := range db.graveyardOrder[db.graveyardHead:] {
		// Skip stale slots left behind by a delete→re-insert cycle.
		if _, ok := db.graveyard[vid]; ok {
			out = append(out, vid)
		}
	}
	return out
}

// Reset empties the database in place: tables, indexes, VID map, and
// graveyard all drop; the graveyard cap is retained. Recovery uses it to
// discard a crashed node's in-memory state before replaying the durable
// log, without invalidating the *Database pointers other goroutines hold.
func (db *Database) Reset() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables = make(map[string]*relation)
	db.byVID = make(map[types.ID]types.Tuple)
	db.graveyard = nil
	db.graveyardOrder = nil
	db.graveyardHead = 0
}

// snapshotVersion tags the Database snapshot layout.
const snapshotVersion = 1

// EncodeSnapshot serializes the database — every relation's rows in slice
// order, the graveyard contents in FIFO order, and the retention cap —
// into the encoder. Secondary indexes are deliberately not persisted: they
// rebuild lazily on first probe, so a snapshot stays small and a restore
// answers probes identically without trusting on-disk index state.
func (db *Database) EncodeSnapshot(e *wire.Encoder) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e.U8(snapshotVersion)
	e.U32(uint32(len(db.tables)))
	for rel, r := range db.tables {
		e.Str(rel)
		e.U32(uint32(len(r.rows)))
		for _, t := range r.rows {
			e.Tuple(t)
		}
	}
	// Stale order slots (delete→re-insert) carry VIDs absent from the map;
	// only live entries are persisted, in FIFO order.
	var live []types.ID
	for _, vid := range db.graveyardOrder[db.graveyardHead:] {
		if _, ok := db.graveyard[vid]; ok {
			live = append(live, vid)
		}
	}
	e.U32(uint32(len(live)))
	for _, vid := range live {
		e.Tuple(db.graveyard[vid])
	}
	e.U32(uint32(db.graveyardCap))
}

// maxSnapshotItems bounds a decoded collection; larger counts indicate a
// corrupt snapshot rather than a plausible state.
const maxSnapshotItems = 1 << 26

// RestoreSnapshot resets the database and rebuilds it from an encoded
// snapshot: rows re-insert in their recorded order (so scans and the
// swap-remove position map come back identical), and the graveyard
// re-populates in FIFO order (so future cap evictions pick the same
// victims as the pre-crash store would have).
func (db *Database) RestoreSnapshot(d *wire.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("engine: unsupported database snapshot version %d", v)
	}
	db.Reset()
	nTables := d.U32()
	if nTables > maxSnapshotItems {
		return fmt.Errorf("engine: snapshot with %d tables", nTables)
	}
	for i := uint32(0); i < nTables && d.Err() == nil; i++ {
		rel := d.Str()
		nRows := d.U32()
		if nRows > maxSnapshotItems {
			return fmt.Errorf("engine: snapshot relation %q with %d rows", rel, nRows)
		}
		for j := uint32(0); j < nRows && d.Err() == nil; j++ {
			db.Insert(d.Tuple())
		}
	}
	nGrave := d.U32()
	if nGrave > maxSnapshotItems {
		return fmt.Errorf("engine: snapshot with %d graveyard entries", nGrave)
	}
	db.mu.Lock()
	for i := uint32(0); i < nGrave && d.Err() == nil; i++ {
		t := d.Tuple()
		vid := types.HashTuple(t)
		if db.graveyard == nil {
			db.graveyard = make(map[types.ID]types.Tuple)
		}
		if _, ok := db.graveyard[vid]; !ok {
			db.graveyard[vid] = t
			db.graveyardOrder = append(db.graveyardOrder, vid)
		}
	}
	db.graveyardCap = int(d.U32())
	db.enforceGraveyardCapLocked()
	db.mu.Unlock()
	if err := d.Err(); err != nil {
		return fmt.Errorf("engine: corrupt database snapshot: %w", err)
	}
	return nil
}

// MergeSnapshot folds a snapshot into the live database without resetting
// it: rows insert with set semantics (duplicates are no-ops), graveyard
// entries append only when absent, and the snapshot's retention cap is
// decoded but discarded — the receiver keeps its own cap. The membership
// subsystem uses it to install a partition handoff or read-repair payload
// over a store that may already hold replicated inserts for the same
// partition, in either arrival order.
func (db *Database) MergeSnapshot(d *wire.Decoder) error {
	if v := d.U8(); d.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("engine: unsupported database snapshot version %d", v)
	}
	nTables := d.U32()
	if nTables > maxSnapshotItems {
		return fmt.Errorf("engine: snapshot with %d tables", nTables)
	}
	for i := uint32(0); i < nTables && d.Err() == nil; i++ {
		rel := d.Str()
		nRows := d.U32()
		if nRows > maxSnapshotItems {
			return fmt.Errorf("engine: snapshot relation %q with %d rows", rel, nRows)
		}
		for j := uint32(0); j < nRows && d.Err() == nil; j++ {
			t := d.Tuple()
			if d.Err() == nil {
				db.Insert(t)
			}
		}
	}
	nGrave := d.U32()
	if nGrave > maxSnapshotItems {
		return fmt.Errorf("engine: snapshot with %d graveyard entries", nGrave)
	}
	db.mu.Lock()
	for i := uint32(0); i < nGrave && d.Err() == nil; i++ {
		t := d.Tuple()
		vid := types.HashTuple(t)
		if db.graveyard == nil {
			db.graveyard = make(map[types.ID]types.Tuple)
		}
		if _, ok := db.graveyard[vid]; !ok {
			db.graveyard[vid] = t
			db.graveyardOrder = append(db.graveyardOrder, vid)
		}
	}
	_ = d.U32() // donor's graveyard cap: framing only
	db.enforceGraveyardCapLocked()
	db.mu.Unlock()
	if err := d.Err(); err != nil {
		return fmt.Errorf("engine: corrupt database snapshot: %w", err)
	}
	return nil
}
