// Package engine executes DELPs over a distributed set of nodes following
// the pipelined semi-naïve evaluation strategy of Section 3.1: an event
// tuple arriving at a node joins the local slow-changing tables, fires
// every rule it matches, and ships each head tuple to the node named by its
// location specifier, where evaluation continues until the pipeline's output
// relations are reached.
//
// The engine is provenance-agnostic: a Maintainer (internal/core) observes
// injections, rule firings and outputs through hooks and threads its own
// metadata along each shipped tuple, which is how the three provenance
// schemes of the paper are realized without duplicating the evaluator.
//
// Rule evaluation is index-driven: rules are compiled into join plans
// (plan.go) whose steps probe per-relation secondary hash indexes
// (index.go) instead of scanning candidate tables, turning the per-event
// join from O(Π|rel_i|) into a sequence of bucket probes.
package engine

import (
	"fmt"
	"sync"

	"provcompress/internal/types"
)

// relation is one table of the store: rows in slice order for scans, a
// parallel VID slice plus a VID→position map for O(1) swap-remove deletes,
// and the secondary hash indexes built so far (keyed by the bitmask of the
// attribute positions they cover).
type relation struct {
	rows []types.Tuple
	vids []types.ID
	pos  map[types.ID]int
	idx  map[uint64]*hashIndex
}

func newRelation() *relation {
	return &relation{
		pos: make(map[types.ID]int),
		idx: make(map[uint64]*hashIndex),
	}
}

// Database is one node's local relational store of base (slow-changing)
// tuples and locally derived tuples of interest.
//
// The store is safe for concurrent use: mutations take the write lock,
// reads the read lock, and rule evaluation (plan.go) holds the read lock
// for the duration of a join so the row slices and index buckets it
// iterates stay stable against concurrent swap-remove deletes. This is
// what lets the cluster runtime evaluate independent events on parallel
// shards while slow-changing updates proceed.
type Database struct {
	// mu is the store lock: Insert/Delete exclusive, scans/probes shared.
	mu sync.RWMutex
	// idxMu serializes lazy index construction, which happens under the
	// shared (read) side of mu: concurrent probes for a missing index must
	// not both install it. Lock order is always mu before idxMu.
	idxMu sync.Mutex

	tables map[string]*relation
	byVID  map[types.ID]types.Tuple
	// graveyard retains the contents of deleted tuples so provenance —
	// which is monotone (Section 5.5: deletions do not affect stored
	// provenance) — can still resolve the VIDs it recorded. Under delete
	// churn it grows without bound unless a retention cap is set, in
	// which case the oldest entries are evicted FIFO (graveyardOrder)
	// and provenance referencing them stops resolving — the
	// monotonicity/memory tradeoff documented in DESIGN.md §10.
	graveyard map[types.ID]types.Tuple
	// graveyardOrder is a head-compacted FIFO of graveyard VIDs:
	// graveyardOrder[graveyardHead:] are the live entries, oldest first.
	// Eviction advances the head (zeroing the vacated slot so the ID is
	// collectable) and copy-compacts once the dead prefix outgrows the
	// live tail, so a long-running capped node never pins the backing
	// array of every entry it ever evicted.
	graveyardOrder []types.ID
	graveyardHead  int
	graveyardCap   int // 0 = unbounded
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		tables: make(map[string]*relation),
		byVID:  make(map[types.ID]types.Tuple),
	}
}

// Insert adds a tuple; duplicates (set semantics) are ignored.
// It reports whether the tuple was newly added.
func (db *Database) Insert(t types.Tuple) bool {
	vid := types.HashTuple(t)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.byVID[vid]; ok {
		return false
	}
	db.byVID[vid] = t
	// A re-inserted tuple is live again: drop its graveyard entry so the
	// gauge and the retention cap track only genuinely deleted tuples (and
	// so a later cap eviction cannot fire an invalidation for a live VID).
	// Its slot in graveyardOrder stays behind as a stale entry; the cap
	// enforcement skips VIDs no longer in the map.
	if _, ok := db.graveyard[vid]; ok {
		delete(db.graveyard, vid)
	}
	rel := db.tables[t.Rel]
	if rel == nil {
		rel = newRelation()
		db.tables[t.Rel] = rel
	}
	rel.pos[vid] = len(rel.rows)
	rel.rows = append(rel.rows, t)
	rel.vids = append(rel.vids, vid)
	for _, ix := range rel.idx {
		ix.add(t)
	}
	return true
}

// Delete removes a tuple from its table in O(1) by swapping the last row
// into its slot (the VID→position map keeps positions stable to look up);
// every secondary index built for the relation is kept consistent. It
// reports whether the tuple was present. The tuple's content stays
// resolvable through LookupVID so that previously recorded provenance
// remains queryable.
func (db *Database) Delete(t types.Tuple) bool {
	ok, _ := db.DeleteEvicted(t)
	return ok
}

// DeleteEvicted is Delete, additionally reporting the VIDs of graveyard
// entries evicted by the retention cap as a consequence of this delete.
// Provenance referencing an evicted VID can no longer resolve its
// contents, so the serving layer treats those VIDs as invalidated too — a
// cached tree that resolved the tuple before eviction must not outlive
// the fresh recomputation that cannot (DESIGN.md §14).
func (db *Database) DeleteEvicted(t types.Tuple) (bool, []types.ID) {
	vid := types.HashTuple(t)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.byVID[vid]; !ok {
		return false, nil
	}
	delete(db.byVID, vid)
	var evicted []types.ID
	if db.graveyard == nil {
		db.graveyard = make(map[types.ID]types.Tuple)
	}
	if _, ok := db.graveyard[vid]; !ok {
		db.graveyard[vid] = t
		db.graveyardOrder = append(db.graveyardOrder, vid)
		evicted = db.enforceGraveyardCapLocked()
	}
	rel := db.tables[t.Rel]
	if rel == nil {
		return true, evicted
	}
	i, ok := rel.pos[vid]
	if !ok {
		return true, evicted
	}
	last := len(rel.rows) - 1
	if i != last {
		rel.rows[i] = rel.rows[last]
		rel.vids[i] = rel.vids[last]
		rel.pos[rel.vids[i]] = i
	}
	rel.rows[last] = types.Tuple{}
	rel.rows = rel.rows[:last]
	rel.vids = rel.vids[:last]
	delete(rel.pos, vid)
	for _, ix := range rel.idx {
		ix.remove(t)
	}
	return true, evicted
}

// Scan returns the tuples of a relation. The order is insertion order
// until the first Delete on the relation (deletes swap the last row into
// the vacated slot). The returned slice must not be modified, and is only
// stable until the next write — concurrent readers that need a stable view
// across a whole join go through the evaluator, which holds the read lock
// for its duration.
func (db *Database) Scan(rel string) []types.Tuple {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.scanLocked(rel)
}

// scanLocked is Scan for callers already holding mu (either side).
func (db *Database) scanLocked(rel string) []types.Tuple {
	if r := db.tables[rel]; r != nil {
		return r.rows
	}
	return nil
}

// Probe returns the tuples of a relation whose values at the given
// positions encode to key, using (and lazily building) the secondary hash
// index for that position set. positions must be sorted; key is the
// concatenated canonical encoding of the sought values (appendIndexKey).
// The same stability caveats as Scan apply.
func (db *Database) Probe(rel string, positions []int, key []byte) []types.Tuple {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.probeLocked(rel, positions, key)
}

// probeLocked looks up (building on first use) the index for the position
// set and returns the bucket for key. The caller must hold mu — the read
// side suffices: index construction only reads rows, and idxMu serializes
// the map install against concurrent probes.
func (db *Database) probeLocked(relName string, positions []int, key []byte) []types.Tuple {
	rel := db.tables[relName]
	if rel == nil {
		return nil
	}
	mask, ok := posMask(positions)
	if !ok {
		return nil
	}
	db.idxMu.Lock()
	ix := rel.idx[mask]
	if ix == nil {
		ix = newHashIndex(positions)
		for _, t := range rel.rows {
			ix.add(t)
		}
		rel.idx[mask] = ix
	}
	db.idxMu.Unlock()
	return ix.probe(key)
}

// IndexCount returns the number of secondary indexes built for a relation
// (observability and tests).
func (db *Database) IndexCount(rel string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.idxMu.Lock()
	defer db.idxMu.Unlock()
	if r := db.tables[rel]; r != nil {
		return len(r.idx)
	}
	return 0
}

// LookupVID resolves a tuple by its content hash, used by the provenance
// query protocols to fetch slow-changing tuple contents referenced by VIDs.
// Deleted tuples remain resolvable (provenance is monotone).
func (db *Database) LookupVID(vid types.ID) (types.Tuple, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.byVID[vid]; ok {
		return t, true
	}
	t, ok := db.graveyard[vid]
	return t, ok
}

// SetGraveyardCap bounds the graveyard to at most n deleted tuples,
// evicting the oldest entries FIFO when the cap is exceeded; n <= 0
// restores the default unbounded retention. Capping trades provenance
// monotonicity for memory: a provenance entry recorded before an
// evicted tuple's deletion can no longer resolve that VID's contents.
func (db *Database) SetGraveyardCap(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 0 {
		n = 0
	}
	db.graveyardCap = n
	db.enforceGraveyardCapLocked()
}

// enforceGraveyardCapLocked evicts oldest-first down to the cap,
// returning the evicted VIDs. Caller holds mu exclusively. Eviction
// advances graveyardHead instead of re-slicing (which would pin the
// evicted prefix in the backing array forever); the dead prefix is
// copy-compacted away once it exceeds the live tail.
func (db *Database) enforceGraveyardCapLocked() []types.ID {
	if db.graveyardCap <= 0 {
		return nil
	}
	var evicted []types.ID
	// The cap applies to live entries (the map), not the order slice: a
	// delete→re-insert leaves a stale order slot behind, which is popped
	// here without counting as an eviction.
	for len(db.graveyard) > db.graveyardCap && db.graveyardHead < len(db.graveyardOrder) {
		oldest := db.graveyardOrder[db.graveyardHead]
		db.graveyardOrder[db.graveyardHead] = types.ID{}
		db.graveyardHead++
		if _, live := db.graveyard[oldest]; !live {
			continue
		}
		delete(db.graveyard, oldest)
		evicted = append(evicted, oldest)
	}
	// Also drain any stale prefix so re-inserted VIDs don't pin slots.
	for db.graveyardHead < len(db.graveyardOrder) {
		if _, live := db.graveyard[db.graveyardOrder[db.graveyardHead]]; live {
			break
		}
		db.graveyardOrder[db.graveyardHead] = types.ID{}
		db.graveyardHead++
	}
	if db.graveyardHead > len(db.graveyardOrder)-db.graveyardHead {
		n := copy(db.graveyardOrder, db.graveyardOrder[db.graveyardHead:])
		db.graveyardOrder = db.graveyardOrder[:n]
		db.graveyardHead = 0
	}
	return evicted
}

// GraveyardSize returns the number of deleted tuples retained for VID
// resolution — the gauge the serving layer exports.
func (db *Database) GraveyardSize() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.graveyard)
}

// Count returns the number of tuples in a relation.
func (db *Database) Count(rel string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if r := db.tables[rel]; r != nil {
		return len(r.rows)
	}
	return 0
}

// Node is one entity of the distributed system: an address plus its local
// database.
type Node struct {
	Addr types.NodeAddr
	DB   *Database
}

// NewNode returns a node with an empty database.
func NewNode(addr types.NodeAddr) *Node {
	return &Node{Addr: addr, DB: NewDatabase()}
}

// String identifies the node in logs.
func (n *Node) String() string { return fmt.Sprintf("node(%s)", n.Addr) }
