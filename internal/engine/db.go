// Package engine executes DELPs over a distributed set of nodes following
// the pipelined semi-naïve evaluation strategy of Section 3.1: an event
// tuple arriving at a node joins the local slow-changing tables, fires
// every rule it matches, and ships each head tuple to the node named by its
// location specifier, where evaluation continues until the pipeline's output
// relations are reached.
//
// The engine is provenance-agnostic: a Maintainer (internal/core) observes
// injections, rule firings and outputs through hooks and threads its own
// metadata along each shipped tuple, which is how the three provenance
// schemes of the paper are realized without duplicating the evaluator.
package engine

import (
	"fmt"

	"provcompress/internal/types"
)

// Database is one node's local relational store of base (slow-changing)
// tuples and locally derived tuples of interest.
type Database struct {
	tables map[string][]types.Tuple
	byVID  map[types.ID]types.Tuple
	// graveyard retains the contents of deleted tuples so provenance —
	// which is monotone (Section 5.5: deletions do not affect stored
	// provenance) — can still resolve the VIDs it recorded.
	graveyard map[types.ID]types.Tuple
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		tables: make(map[string][]types.Tuple),
		byVID:  make(map[types.ID]types.Tuple),
	}
}

// Insert adds a tuple; duplicates (set semantics) are ignored.
// It reports whether the tuple was newly added.
func (db *Database) Insert(t types.Tuple) bool {
	vid := types.HashTuple(t)
	if _, ok := db.byVID[vid]; ok {
		return false
	}
	db.byVID[vid] = t
	db.tables[t.Rel] = append(db.tables[t.Rel], t)
	return true
}

// Delete removes a tuple from its table; it reports whether the tuple was
// present. The tuple's content stays resolvable through LookupVID so that
// previously recorded provenance remains queryable.
func (db *Database) Delete(t types.Tuple) bool {
	vid := types.HashTuple(t)
	if _, ok := db.byVID[vid]; !ok {
		return false
	}
	delete(db.byVID, vid)
	if db.graveyard == nil {
		db.graveyard = make(map[types.ID]types.Tuple)
	}
	db.graveyard[vid] = t
	rows := db.tables[t.Rel]
	for i := range rows {
		if rows[i].Equal(t) {
			db.tables[t.Rel] = append(rows[:i:i], rows[i+1:]...)
			break
		}
	}
	return true
}

// Scan returns the tuples of a relation in insertion order. The returned
// slice must not be modified.
func (db *Database) Scan(rel string) []types.Tuple { return db.tables[rel] }

// LookupVID resolves a tuple by its content hash, used by the provenance
// query protocols to fetch slow-changing tuple contents referenced by VIDs.
// Deleted tuples remain resolvable (provenance is monotone).
func (db *Database) LookupVID(vid types.ID) (types.Tuple, bool) {
	if t, ok := db.byVID[vid]; ok {
		return t, true
	}
	t, ok := db.graveyard[vid]
	return t, ok
}

// Count returns the number of tuples in a relation.
func (db *Database) Count(rel string) int { return len(db.tables[rel]) }

// Node is one entity of the distributed system: an address plus its local
// database.
type Node struct {
	Addr types.NodeAddr
	DB   *Database
}

// NewNode returns a node with an empty database.
func NewNode(addr types.NodeAddr) *Node {
	return &Node{Addr: addr, DB: NewDatabase()}
}

// String identifies the node in logs.
func (n *Node) String() string { return fmt.Sprintf("node(%s)", n.Addr) }
