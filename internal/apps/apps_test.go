package apps

import (
	"testing"

	"provcompress/internal/types"
)

func TestProgramsParseAndValidate(t *testing.T) {
	if p := Forwarding(); p.Name != "forwarding" || len(p.Rules) != 2 {
		t.Errorf("Forwarding: %v", p)
	}
	if p := DNS(); p.Name != "dns" || len(p.Rules) != 4 {
		t.Errorf("DNS: %v", p)
	}
	if p := ARP(); p.Name != "arp" || len(p.Rules) != 2 {
		t.Errorf("ARP: %v", p)
	}
	if p := BGP(); p.Name != "bgp" || len(p.Rules) != 2 {
		t.Errorf("BGP: %v", p)
	}
	if p := Gossip(); p.Name != "gossip" || len(p.Rules) != 2 {
		t.Errorf("Gossip: %v", p)
	}
}

func TestFuncsRegistry(t *testing.T) {
	fns := Funcs()
	if fns["f_isSubDomain"] == nil {
		t.Fatal("f_isSubDomain not registered")
	}
}

func TestIsSubDomain(t *testing.T) {
	cases := []struct {
		dm, url string
		want    bool
	}{
		{"com", "www.hello.com", true},
		{"hello.com", "www.hello.com", true},
		{"www.hello.com", "www.hello.com", true},
		{"org", "www.hello.com", false},
		{"ello.com", "www.hello.com", false}, // label boundary respected
		{"", "anything.at.all", true},        // root domain
		{".", "anything.at.all", true},       // root domain, dot form
		{"com.", "www.hello.com", true},      // trailing dots tolerated
		{"hello.com", "hello.org", false},
		// RFC 1035: DNS names compare case-insensitively.
		{"COM", "www.hello.com", true},
		{"com", "WWW.HELLO.COM", true},
		{"Hello.Com", "www.HELLO.com", true},
		{"ORG", "www.hello.com", false},
	}
	for _, tc := range cases {
		got, err := IsSubDomain([]types.Value{types.String(tc.dm), types.String(tc.url)})
		if err != nil {
			t.Fatalf("IsSubDomain(%q, %q): %v", tc.dm, tc.url, err)
		}
		if got.AsBool() != tc.want {
			t.Errorf("IsSubDomain(%q, %q) = %v, want %v", tc.dm, tc.url, got.AsBool(), tc.want)
		}
	}
}

func TestIsSubDomainErrors(t *testing.T) {
	if _, err := IsSubDomain([]types.Value{types.String("com")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := IsSubDomain([]types.Value{types.Int(1), types.String("x")}); err == nil {
		t.Error("wrong types accepted")
	}
}
