// Package apps holds the DELP sources of the paper's network applications —
// packet forwarding (Figure 1), recursive DNS resolution (Figure 19) — plus
// an ARP responder as an additional example of the model's generality
// (Section 3.1), together with the user-defined functions they require.
package apps

import (
	"fmt"
	"strings"

	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// ForwardingSrc is the packet-forwarding program of Figure 1. r1 forwards a
// packet at node L towards destination D via the next hop N found in the
// local route table; r2 delivers a packet that has reached its destination
// into the recv table.
const ForwardingSrc = `
r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
`

// DNSSrc is the recursive DNS resolution program of Figure 19. r1 forwards
// a new request to the root nameserver; r2 walks the delegation chain via
// nameServer entries whose domain covers the requested URL; r3 resolves the
// request at the authoritative server holding an addressRecord; r4 returns
// the result to the requesting host.
const DNSSrc = `
r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
                                   nameServer(@X, DM, SV),
                                   f_isSubDomain(DM, URL) == true.
r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
                                            addressRecord(@X, URL, IPADDR).
r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
`

// ARPSrc is an Address Resolution Protocol responder written as a DELP:
// a host sends an arpRequest for an IP address to the owner O, which
// answers from its arpEntry table — after checking the requester H against
// its known-hosts table, which also makes H an equivalence key (the reply
// location must be determined by the keys for the Advanced scheme's
// Stage 3; see analysis.CheckAdvancedApplicable). It is a third
// application demonstrating the event-driven model of Section 3.1.
const ARPSrc = `
r1 arpReply(@O, IP, MAC, H) :- arpRequest(@O, IP, H), arpEntry(@O, IP, MAC),
                               known(@O, H).
r2 arpLearned(@H, IP, MAC)  :- arpReply(@O, IP, MAC, H).
`

// DHCPSrc models a DHCP-style address assignment handshake as a DELP
// (Section 3.1 lists DHCP among the protocols the model covers): a client
// H's discover reaches the server SV, which offers every address in its
// pool; the client's accept table gates the request; the server
// acknowledges addresses still in the pool.
const DHCPSrc = `
d1 dhcpOffer(@H, SV, IP)   :- dhcpDiscover(@SV, H), pool(@SV, IP).
d2 dhcpRequest(@SV, H, IP) :- dhcpOffer(@H, SV, IP), accept(@H, SV).
d3 dhcpAck(@H, SV, IP)     :- dhcpRequest(@SV, H, IP), pool(@SV, IP).
`

// BGPSrc models BGP-style interdomain route advertisement as a DELP. An
// advertisement for prefix P carried by origin O with sequence number SQ is
// propagated hop by hop along the slow bgpRoute table (b1) and installed
// into the RIB at every AS that owns the prefix's policy entry (b2). The
// interesting provenance shape is the opposite of packet forwarding:
// advertisements are long-lived and the *slow* state churns — route policy
// updates arrive as InsertSlow/DeleteSlow, each insert broadcasting a §5.5
// sig that resets the equivalence-key epoch, so the Advanced scheme's
// graveyard and deferred-landing machinery see sustained pressure.
const BGPSrc = `
b1 advert(@N, P, O, SQ) :- advert(@L, P, O, SQ), bgpRoute(@L, P, N).
b2 rib(@L, P, O, SQ)    :- advert(@L, P, O, SQ), bgpOwner(@L, P).
`

// GossipSrc models epidemic dissemination as a DELP: a rumor R from origin
// O replicates to every gossip peer of the current holder (g1) and is
// delivered locally wherever a gossipMember row exists (g2). Over a k-ary
// peer tree one injected rumor fans out exponentially, producing wide,
// shallow provenance trees — the opposite extreme from BGP's deep chains —
// and, because the only equivalence key is the location, a single class
// absorbs every rumor at a node, stressing the Advanced scheme's deferred
// output landings.
const GossipSrc = `
g1 rumor(@N, R, O)   :- rumor(@L, R, O), gossipPeer(@L, N).
g2 deliver(@L, R, O) :- rumor(@L, R, O), gossipMember(@L).
`

// Forwarding returns the parsed and DELP-validated packet forwarding
// program.
func Forwarding() *ndlog.Program {
	return mustDELP("forwarding", ForwardingSrc)
}

// DNS returns the parsed and DELP-validated DNS resolution program.
func DNS() *ndlog.Program {
	return mustDELP("dns", DNSSrc)
}

// ARP returns the parsed and DELP-validated ARP program.
func ARP() *ndlog.Program {
	return mustDELP("arp", ARPSrc)
}

// DHCP returns the parsed and DELP-validated DHCP program.
func DHCP() *ndlog.Program {
	return mustDELP("dhcp", DHCPSrc)
}

// BGP returns the parsed and DELP-validated interdomain routing program.
func BGP() *ndlog.Program {
	return mustDELP("bgp", BGPSrc)
}

// Gossip returns the parsed and DELP-validated gossip dissemination
// program.
func Gossip() *ndlog.Program {
	return mustDELP("gossip", GossipSrc)
}

func mustDELP(name, src string) *ndlog.Program {
	p, err := ndlog.ParseDELP(src)
	if err != nil {
		panic(fmt.Sprintf("apps: %s program invalid: %v", name, err))
	}
	p.Name = name
	return p
}

// Funcs returns the user-defined function registry required by the bundled
// applications.
func Funcs() ndlog.FuncMap {
	return ndlog.FuncMap{
		"f_isSubDomain": IsSubDomain,
	}
}

// IsSubDomain implements f_isSubDomain(DM, URL): it reports whether the URL
// falls under the domain DM. Domains are dot-separated label sequences; the
// empty string and "." denote the root domain, which covers everything.
// For example www.hello.com falls under "com" and "hello.com" but not under
// "org" or "ello.com". Comparison is case-insensitive per RFC 1035 §2.3.3.
func IsSubDomain(args []types.Value) (types.Value, error) {
	if len(args) != 2 {
		return types.Value{}, fmt.Errorf("f_isSubDomain: want 2 arguments, got %d", len(args))
	}
	if args[0].Kind() != types.KindString || args[1].Kind() != types.KindString {
		return types.Value{}, fmt.Errorf("f_isSubDomain: arguments must be strings")
	}
	dm := strings.ToLower(strings.Trim(args[0].AsString(), "."))
	url := strings.ToLower(strings.Trim(args[1].AsString(), "."))
	if dm == "" {
		return types.Bool(true), nil
	}
	if url == dm {
		return types.Bool(true), nil
	}
	return types.Bool(strings.HasSuffix(url, "."+dm)), nil
}
