package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). We emit "X" (complete) events with
// microsecond timestamps plus "M" (metadata) events naming each node as
// a process.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid,omitempty"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Cat  string            `json:"cat,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func toMicros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// appendChrome converts spans to Chrome events, assigning one pid per
// distinct node (stable across calls via the pids map).
func appendChrome(events []chromeEvent, spans []Span, pids map[string]int) []chromeEvent {
	for _, sp := range spans {
		pid, ok := pids[sp.Node]
		if !ok {
			pid = len(pids) + 1
			pids[sp.Node] = pid
			events = append(events, chromeEvent{
				Name: "process_name",
				Ph:   "M",
				Pid:  pid,
				Args: map[string]string{"name": sp.Node},
			})
		}
		dur := toMicros(sp.End - sp.Start)
		if dur < 0 {
			dur = 0
		}
		args := map[string]string{
			"trace":  fmt.Sprintf("%d", sp.Trace),
			"span":   fmt.Sprintf("%d", sp.ID),
			"parent": fmt.Sprintf("%d", sp.Parent),
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Pid:  pid,
			Tid:  1,
			Ts:   toMicros(sp.Start),
			Dur:  dur,
			Cat:  sp.Kind,
			Args: args,
		})
	}
	return events
}

// WriteChromeTrace writes one trace as Chrome trace-event JSON. An
// unknown (or nil-collector) trace writes an empty traceEvents array.
func (c *Collector) WriteChromeTrace(w io.Writer, id TraceID) error {
	events := appendChrome(nil, c.Trace(id), map[string]int{})
	return writeChrome(w, events)
}

// WriteChromeTraceAll writes every retained trace into one Chrome trace
// document, oldest trace first.
func (c *Collector) WriteChromeTraceAll(w io.Writer) error {
	var events []chromeEvent
	pids := map[string]int{}
	for _, id := range c.TraceIDs() {
		events = appendChrome(events, c.Trace(id), pids)
	}
	return writeChrome(w, events)
}

func writeChrome(w io.Writer, events []chromeEvent) error {
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events})
}

// ValidateChrome parses data as Chrome trace-event JSON and checks it is
// non-empty and well-formed: at least one "X" event, every event carries
// a name and phase, and no negative timestamps or durations. It returns
// the number of "X" (span) events.
func ValidateChrome(data []byte) (int, error) {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: invalid chrome trace JSON: %w", err)
	}
	complete := 0
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			return 0, fmt.Errorf("trace: event %d missing phase", i)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d missing name", i)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return 0, fmt.Errorf("trace: event %d has negative ts/dur", i)
		}
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete == 0 {
		return 0, fmt.Errorf("trace: chrome trace has no span events")
	}
	return complete, nil
}

// CheckLinked verifies spans form a single parent-linked tree: exactly
// one root (Parent == 0), every other span's parent present in the set,
// and every span on the same trace. It is the structural assertion the
// chaos and smoke gates run against collected traces.
func CheckLinked(spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("trace: no spans")
	}
	tid := spans[0].Trace
	ids := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		if sp.Trace != tid {
			return fmt.Errorf("trace: span %d on trace %d, want %d", sp.ID, sp.Trace, tid)
		}
		if ids[sp.ID] {
			return fmt.Errorf("trace: duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = true
	}
	roots := 0
	for _, sp := range spans {
		if sp.Parent == 0 {
			roots++
			continue
		}
		if !ids[sp.Parent] {
			return fmt.Errorf("trace: span %d has unknown parent %d", sp.ID, sp.Parent)
		}
	}
	if roots != 1 {
		return fmt.Errorf("trace: %d roots, want exactly 1", roots)
	}
	return nil
}

// Nodes returns the distinct node names appearing in spans, sorted.
func Nodes(spans []Span) []string {
	set := map[string]bool{}
	for _, sp := range spans {
		set[sp.Node] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
