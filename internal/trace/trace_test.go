package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	s := c.StartSpan(SpanContext{}, "n0", "test", "noop")
	if s != nil {
		t.Fatalf("nil collector returned non-nil span")
	}
	s.SetAttr("k", "v")
	s.End()
	if got := s.Context(); got.Valid() {
		t.Fatalf("nil span context = %+v, want invalid", got)
	}
	if c.Trace(1) != nil || c.SpanCount() != 0 || c.Dropped() != 0 || c.TraceCount() != 0 {
		t.Fatalf("nil collector accessors not zero")
	}
}

func TestSpanTreeAcrossNodes(t *testing.T) {
	c := NewCollector(0)
	root := c.StartSpan(SpanContext{}, "n0", "inject", "inject packet")
	rootCtx := root.Context()
	if !rootCtx.Valid() {
		t.Fatalf("root context invalid")
	}

	// Children on two other "nodes", one nested grandchild.
	c1 := c.StartSpan(rootCtx, "n1", "process", "process recv")
	g1 := c.StartSpan(c1.Context(), "n1", "rule", "fire r2")
	g1.SetAttr("rule", "r2")
	g1.End()
	c1.End()
	c2 := c.StartSpan(rootCtx, "n2", "process", "process recv")
	c2.End()
	root.End()

	spans := c.Trace(rootCtx.Trace)
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if err := CheckLinked(spans); err != nil {
		t.Fatalf("CheckLinked: %v", err)
	}
	if got := Nodes(spans); len(got) != 3 || got[0] != "n0" || got[2] != "n2" {
		t.Fatalf("Nodes = %v", got)
	}
	// Spans are sorted by start; the root started first.
	if spans[0].ID != SpanID(rootCtx.Span) || spans[0].Parent != 0 {
		t.Fatalf("first span is not the root: %+v", spans[0])
	}
	for _, sp := range spans {
		if sp.End < sp.Start {
			t.Fatalf("span %d ends before it starts", sp.ID)
		}
	}
}

func TestCheckLinkedRejectsBrokenTrees(t *testing.T) {
	if err := CheckLinked(nil); err == nil {
		t.Fatalf("empty span set accepted")
	}
	// Orphan parent.
	spans := []Span{
		{Trace: 1, ID: 1, Parent: 0},
		{Trace: 1, ID: 2, Parent: 99},
	}
	if err := CheckLinked(spans); err == nil || !strings.Contains(err.Error(), "unknown parent") {
		t.Fatalf("orphan accepted: %v", err)
	}
	// Two roots.
	spans = []Span{
		{Trace: 1, ID: 1, Parent: 0},
		{Trace: 1, ID: 2, Parent: 0},
	}
	if err := CheckLinked(spans); err == nil || !strings.Contains(err.Error(), "roots") {
		t.Fatalf("forest accepted: %v", err)
	}
	// Mixed traces.
	spans = []Span{
		{Trace: 1, ID: 1, Parent: 0},
		{Trace: 2, ID: 2, Parent: 1},
	}
	if err := CheckLinked(spans); err == nil {
		t.Fatalf("mixed traces accepted")
	}
}

func TestEvictionDropsOldestTrace(t *testing.T) {
	c := NewCollector(4)
	mk := func() TraceID {
		s := c.StartSpan(SpanContext{}, "n0", "t", "root")
		ctx := s.Context()
		child := c.StartSpan(ctx, "n0", "t", "child")
		child.End()
		s.End()
		return ctx.Trace
	}
	t1 := mk()
	t2 := mk()
	t3 := mk() // 6 spans total; budget 4 → t1 evicted
	if got := c.Trace(t1); got != nil {
		t.Fatalf("oldest trace survived eviction: %d spans", len(got))
	}
	if c.Trace(t2) == nil || c.Trace(t3) == nil {
		t.Fatalf("newer traces evicted")
	}
	if c.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.Dropped())
	}
	if c.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4", c.SpanCount())
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	c := NewCollector(0)
	root := c.StartSpan(SpanContext{}, "n0", "query", "query recv")
	root.SetAttr("scheme", "advanced")
	child := c.StartSpan(root.Context(), "n1", "walk", "walk hop")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf, root.Context().Trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	if n != 2 {
		t.Fatalf("span events = %d, want 2", n)
	}
	// Must carry process metadata naming both nodes and the attr.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	s := buf.String()
	for _, want := range []string{`"process_name"`, `"n0"`, `"n1"`, `"scheme":"advanced"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, s)
		}
	}

	// Unknown trace → empty but valid JSON that fails validation.
	buf.Reset()
	if err := c.WriteChromeTrace(&buf, 999999); err != nil {
		t.Fatalf("WriteChromeTrace(unknown): %v", err)
	}
	if _, err := ValidateChrome(buf.Bytes()); err == nil {
		t.Fatalf("empty trace passed validation")
	}

	// All-traces writer covers everything retained.
	buf.Reset()
	if err := c.WriteChromeTraceAll(&buf); err != nil {
		t.Fatalf("WriteChromeTraceAll: %v", err)
	}
	if n, err := ValidateChrome(buf.Bytes()); err != nil || n != 2 {
		t.Fatalf("ValidateChrome(all) = %d, %v", n, err)
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := []string{
		`not json`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"X","ts":1}]}`,             // no name
		`{"traceEvents":[{"name":"a","ts":1}]}`,           // no phase
		`{"traceEvents":[{"name":"a","ph":"X","ts":-5}]}`, // negative ts
	}
	for _, in := range cases {
		if _, err := ValidateChrome([]byte(in)); err == nil {
			t.Fatalf("ValidateChrome accepted %q", in)
		}
	}
}
