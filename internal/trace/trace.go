// Package trace is the lightweight distributed-tracing layer of the
// cluster runtime. A span records one unit of work (an event injection,
// a per-node derivation step, a query walk hop) on a monotonic clock;
// spans are parent-linked into a tree per trace, and the (trace, span)
// context rides inside the cluster's wire frames so one injected event
// or one distributed query produces a single tree spanning every node
// it touched.
//
// The API is nil-safe end to end: a nil *Collector hands out nil
// *ActiveSpan values whose methods are all no-ops, so instrumented code
// paths pay one pointer test when tracing is off.
package trace

import (
	"sort"
	"sync"
	"time"
)

// TraceID names one causally-linked tree of spans. Zero means "no trace"
// on the wire.
type TraceID uint64

// SpanID names one span within a trace. Zero means "no parent".
type SpanID uint64

// SpanContext is the propagated part of a span: enough to parent a child
// span on another node. The zero value is the empty context.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one finished unit of work. Start and End are offsets on the
// collector's monotonic clock (time since the collector was created), so
// spans recorded on different goroutines order consistently even if the
// wall clock steps.
type Span struct {
	Trace  TraceID       `json:"trace"`
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent"`
	Node   string        `json:"node"`
	Kind   string        `json:"kind"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// DefaultMaxSpans bounds a collector's retained spans unless overridden.
const DefaultMaxSpans = 1 << 16

// Collector allocates IDs and retains finished spans, bounded by a span
// budget: when the budget is exceeded the oldest whole trace is evicted
// (partial trees are worse than absent ones) and counted as dropped.
type Collector struct {
	epoch time.Time

	mu       sync.Mutex
	nextID   uint64
	maxSpans int
	spans    map[TraceID][]Span
	order    []TraceID // trace insertion order, oldest first
	total    int
	dropped  uint64
}

// NewCollector returns a collector retaining at most maxSpans spans
// (DefaultMaxSpans if maxSpans <= 0).
func NewCollector(maxSpans int) *Collector {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Collector{
		epoch:    time.Now(),
		maxSpans: maxSpans,
		spans:    make(map[TraceID][]Span),
	}
}

// now returns the monotonic offset since the collector was created.
func (c *Collector) now() time.Duration { return time.Since(c.epoch) }

func (c *Collector) nextSpanID() uint64 {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	return id
}

// ActiveSpan is an in-flight span. It is owned by one goroutine; End
// publishes it to the collector. All methods are no-ops on nil.
type ActiveSpan struct {
	c    *Collector
	span Span
}

// StartSpan opens a span under parent. A zero parent context starts a
// new trace rooted at this span. Safe on a nil collector (returns nil).
func (c *Collector) StartSpan(parent SpanContext, node, kind, name string) *ActiveSpan {
	if c == nil {
		return nil
	}
	s := &ActiveSpan{c: c}
	s.span = Span{
		Trace:  parent.Trace,
		ID:     SpanID(c.nextSpanID()),
		Parent: parent.Span,
		Node:   node,
		Kind:   kind,
		Name:   name,
		Start:  c.now(),
	}
	if s.span.Trace == 0 {
		// A root span starts a fresh trace; reuse the span ID as the
		// trace ID so both are unique under the same counter.
		s.span.Trace = TraceID(s.span.ID)
		s.span.Parent = 0
	}
	return s
}

// Context returns the propagatable (trace, span) pair. Zero on nil.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.span.Trace, Span: s.span.ID}
}

// SetAttr annotates the span. No-op on nil.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
}

// End closes the span and records it in the collector. No-op on nil;
// calling End twice records the span twice, so don't.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.End = s.c.now()
	s.c.record(s.span)
}

func (c *Collector) record(sp Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.spans[sp.Trace]; !ok {
		c.order = append(c.order, sp.Trace)
	}
	c.spans[sp.Trace] = append(c.spans[sp.Trace], sp)
	c.total++
	for c.total > c.maxSpans && len(c.order) > 1 {
		oldest := c.order[0]
		c.order = c.order[1:]
		n := len(c.spans[oldest])
		delete(c.spans, oldest)
		c.total -= n
		c.dropped += uint64(n)
	}
}

// Trace returns the finished spans of one trace, sorted by start time,
// or nil if unknown. Safe on a nil collector.
func (c *Collector) Trace(id TraceID) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	src := c.spans[id]
	out := make([]Span, len(src))
	copy(out, src)
	c.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TraceIDs returns the retained trace IDs, oldest first. Safe on nil.
func (c *Collector) TraceIDs() []TraceID {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TraceID, len(c.order))
	copy(out, c.order)
	return out
}

// SpanCount returns the number of retained spans. Safe on nil.
func (c *Collector) SpanCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// TraceCount returns the number of retained traces. Safe on nil.
func (c *Collector) TraceCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}

// Dropped returns the number of spans evicted under the budget. Safe on
// nil.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
