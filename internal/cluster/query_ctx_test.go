package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"provcompress/internal/types"
)

// TestQueryContextCanceled pins the cancellation contract: a context
// canceled before (or while) a query waits aborts the wait with ctx.Err()
// instead of burning the per-attempt timeout.
func TestQueryContextCanceled(t *testing.T) {
	c := fig2Cluster(t)
	ev := pkt("n1", "n1", "n3", "data")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out := recvT("n3", "n1", "n3", "data")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := c.QueryContext(ctx, out, types.ZeroID, 30*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled query took %v; should abort immediately", elapsed)
	}

	// A live context still answers.
	res, err := c.QueryContext(context.Background(), out, types.ZeroID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) == 0 {
		t.Fatal("no trees from live-context query")
	}

	// A deadline in the past is equivalent to an immediate cancel.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := c.QueryContext(dctx, out, types.ZeroID, 10*time.Second); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEventHookFires checks that every accepted Inject fires its class
// key, every InsertSlow its VID key, output landings fire VID keys, and
// that clearing the hook stops the calls.
func TestEventHookFires(t *testing.T) {
	c := fig2Cluster(t)
	var classFires, vidFires atomic.Int64
	c.SetEventHook(func(keys []InvalKey) {
		for _, k := range keys {
			if IsVIDKey(k) {
				vidFires.Add(1)
			} else {
				classFires.Add(1)
			}
		}
	})

	if err := c.Inject(pkt("n1", "n1", "n3", "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(pkt("n1", "n1", "n3", "b")); err != nil {
		t.Fatal(err)
	}
	if got := classFires.Load(); got != 2 {
		t.Fatalf("hook fired %d class keys after 2 injects, want 2", got)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Both derivations reached their output tuples: each landing fires the
	// output's VID key.
	if got := vidFires.Load(); got < 2 {
		t.Fatalf("hook fired %d VID keys after 2 derivations landed, want >= 2", got)
	}
	slow := types.NewTuple("link", types.String("n1"), types.String("n1"), types.String("n3"))
	before := vidFires.Load()
	if err := c.InsertSlow(slow); err != nil {
		t.Fatal(err)
	}
	if got := vidFires.Load(); got != before+1 {
		t.Fatalf("hook fired %d VID keys after slow insert, want %d", got, before+1)
	}
	// A duplicate slow insert is not an accepted change.
	if err := c.InsertSlow(slow); err != nil {
		t.Fatal(err)
	}
	if got := vidFires.Load(); got != before+1 {
		t.Fatalf("hook fired %d VID keys after duplicate slow insert, want %d", got, before+1)
	}
	c.SetEventHook(nil)
	if err := c.Inject(pkt("n1", "n1", "n3", "c")); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := classFires.Load(); got != 2 {
		t.Fatalf("hook fired %d class keys after clearing, want 2", got)
	}
}
