package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"provcompress/internal/types"
)

// TestQueryContextCanceled pins the cancellation contract: a context
// canceled before (or while) a query waits aborts the wait with ctx.Err()
// instead of burning the per-attempt timeout.
func TestQueryContextCanceled(t *testing.T) {
	c := fig2Cluster(t)
	ev := pkt("n1", "n1", "n3", "data")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out := recvT("n3", "n1", "n3", "data")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := c.QueryContext(ctx, out, types.ZeroID, 30*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled query took %v; should abort immediately", elapsed)
	}

	// A live context still answers.
	res, err := c.QueryContext(context.Background(), out, types.ZeroID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) == 0 {
		t.Fatal("no trees from live-context query")
	}

	// A deadline in the past is equivalent to an immediate cancel.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := c.QueryContext(dctx, out, types.ZeroID, 10*time.Second); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEventHookFires checks that every accepted Inject and InsertSlow runs
// the installed hook, and that clearing it stops the calls.
func TestEventHookFires(t *testing.T) {
	c := fig2Cluster(t)
	var fired atomic.Int64
	c.SetEventHook(func() { fired.Add(1) })

	if err := c.Inject(pkt("n1", "n1", "n3", "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Inject(pkt("n1", "n1", "n3", "b")); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != 2 {
		t.Fatalf("hook fired %d times after 2 injects, want 2", got)
	}
	slow := types.NewTuple("link", types.String("n1"), types.String("n1"), types.String("n3"))
	if err := c.InsertSlow(slow); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != 3 {
		t.Fatalf("hook fired %d times after slow insert, want 3", got)
	}
	// A duplicate slow insert is not an accepted change.
	if err := c.InsertSlow(slow); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != 3 {
		t.Fatalf("hook fired %d times after duplicate slow insert, want 3", got)
	}
	c.SetEventHook(nil)
	if err := c.Inject(pkt("n1", "n1", "n3", "c")); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != 3 {
		t.Fatalf("hook fired %d times after clearing, want 3", got)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
