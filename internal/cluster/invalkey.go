package cluster

import (
	"hash/fnv"

	"provcompress/internal/types"
)

// Invalidation keys are the currency of the serving layer's dependency-
// indexed result cache (internal/provserve, DESIGN.md §14). Every cached
// provenance answer is tagged with the set of keys its distributed walk
// touched; every accepted state change fires the keys it affects through
// the cluster event hook, and only cache entries tagged with a fired key
// are evicted.
//
// Two key kinds share the uint64 keyspace, discriminated by bit 0:
//
//   - class keys (bit 0 clear): the §5.2 equivalence class of an event
//     tuple — its relation plus the values at the relation's
//     equivalence-key attributes. Fired on Inject; tagged onto entries
//     for each leaf event of the returned trees, so a new event of a
//     class a cached tree derives from evicts that tree.
//   - VID keys (bit 0 set): the content hash of a single tuple. Fired
//     when provenance lands on an output (Output returning the VID),
//     when a slow-changing tuple is inserted or deleted, and when the
//     graveyard cap evicts a VID's contents; tagged onto an entry for
//     its root output and every tuple/EvID the walk resolved.
//
// Soundness rests on the VID keys: an event's injection fires its class
// key before downstream derivation completes, but any derivation that
// changes a cached output's provenance must eventually land a prov row
// on that output's VID — and the landing fires the VID key the entry is
// tagged with, evicting it (or, via the admission check in provserve,
// dropping an in-flight answer admitted before the landing).

// InvalKey is a 64-bit cache-invalidation key.
type InvalKey = uint64

// VIDInvalKey returns the invalidation key of one tuple's content hash.
func VIDInvalKey(id types.ID) InvalKey {
	h := fnv.New64a()
	h.Write([]byte{'v'}) //nolint:errcheck // fnv never fails
	h.Write(id[:])       //nolint:errcheck
	return h.Sum64() | 1
}

// EventClassKey returns the §5.2 equivalence-class invalidation key of an
// event tuple: its relation plus the values at the relation's
// equivalence-key attributes (the same attributes shardOf routes by).
// Relations without rules hash over every argument, which degrades the
// class to the single tuple — still sound, just maximally fine.
func (c *Cluster) EventClassKey(t types.Tuple) InvalKey {
	h := fnv.New64a()
	h.Write([]byte{'c'})   //nolint:errcheck // fnv never fails
	h.Write([]byte(t.Rel)) //nolint:errcheck
	var buf [64]byte
	if keys, ok := c.shardKeys[t.Rel]; ok {
		for _, i := range keys {
			if i < len(t.Args) {
				h.Write(t.Args[i].AppendEncode(buf[:0])) //nolint:errcheck
			}
		}
	} else {
		for _, a := range t.Args {
			h.Write(a.AppendEncode(buf[:0])) //nolint:errcheck
		}
	}
	return h.Sum64() &^ 1
}

// IsVIDKey reports which kind an invalidation key is (bit 0 set = VID
// key, clear = equivalence-class key) — the label the serving layer uses
// for its per-reason eviction counters.
func IsVIDKey(k InvalKey) bool { return k&1 == 1 }

// addInvalKey inserts k into a small sorted key set, keeping it sorted
// and duplicate-free (the canonical form the wire codec expects).
func addInvalKey(set []uint64, k uint64) []uint64 {
	i := 0
	for i < len(set) && set[i] < k {
		i++
	}
	if i < len(set) && set[i] == k {
		return set
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = k
	return set
}

// vidKeysOf maps tuple IDs to their VID invalidation keys.
func vidKeysOf(ids []types.ID) []InvalKey {
	if len(ids) == 0 {
		return nil
	}
	out := make([]InvalKey, len(ids))
	for i, id := range ids {
		out[i] = VIDInvalKey(id)
	}
	return out
}
