package cluster

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/scenario"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// TestShardOfClassStable: events of the same equivalence class (§5.2 — for
// forwarding, packets sharing src/dst) must land on the same shard, so their
// executions stay serialized; the payload must not influence the shard.
func TestShardOfClassStable(t *testing.T) {
	g := topo.Line(3, "n")
	c, err := New(Config{
		Prog: apps.Forwarding(), Funcs: apps.Funcs(),
		Nodes: g.Nodes(), Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", c.Shards())
	}
	base := c.shardOf(pkt("n0", "n0", "n2", "payload-0"))
	for i := 1; i < 50; i++ {
		ev := pkt("n0", "n0", "n2", fmt.Sprintf("payload-%d", i))
		if s := c.shardOf(ev); s != base {
			t.Fatalf("same-class event %v on shard %d, class shard %d", ev, s, base)
		}
	}
	// Fifty classes over 8 shards must spread (not all collapse onto one).
	shards := make(map[int]bool)
	for i := 0; i < 50; i++ {
		shards[c.shardOf(pkt("n0", "n0", fmt.Sprintf("d%d", i), "x"))] = true
	}
	if len(shards) < 2 {
		t.Errorf("50 classes all mapped to one shard")
	}
}

// TestShardedOutputsMatchSerial: the same workload run with Shards:1
// (serial) and Shards:4 must produce identical output multisets — sharding
// changes interleaving, never results.
func TestShardedOutputsMatchSerial(t *testing.T) {
	run := func(shards int) []string {
		g := topo.Line(5, "n")
		c, err := New(Config{
			Prog: apps.Forwarding(), Funcs: apps.Funcs(),
			Nodes: g.Nodes(), Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
			t.Fatal(err)
		}
		for _, dst := range []string{"n2", "n3", "n4"} {
			for i := 0; i < 15; i++ {
				if err := c.Inject(pkt("n0", "n0", dst, fmt.Sprintf("%s-%d", dst, i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.Quiesce(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		var outs []string
		for _, o := range c.AllOutputs() {
			outs = append(outs, fmt.Sprintf("%v", o))
		}
		sort.Strings(outs)
		return outs
	}
	serial, sharded := run(1), run(4)
	if len(serial) != 45 {
		t.Fatalf("serial outputs = %d, want 45", len(serial))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("output %d differs: serial %s, sharded %s", i, serial[i], sharded[i])
		}
	}
}

// TestShardedOutputsMatchSerialScenarios extends the sharded-vs-serial
// equivalence certificate to the BGP and gossip DELPs: deep slow-routed
// chains and exponential fan-out must be invariant to shard interleaving
// exactly like packet forwarding.
func TestShardedOutputsMatchSerialScenarios(t *testing.T) {
	for _, name := range []string{"bgp", "gossip"} {
		sc, err := scenario.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			run := func(shards int) []string {
				g := sc.Topology(7)
				c, err := New(Config{
					Prog: sc.Prog(), Funcs: sc.Funcs(),
					Nodes: g.Nodes(), Shards: shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if err := c.LoadBase(sc.Base(g)); err != nil {
					t.Fatal(err)
				}
				for seq := int64(0); seq < 24; seq++ {
					if err := c.Inject(sc.Event(g, seq)); err != nil {
						t.Fatal(err)
					}
				}
				if err := c.Quiesce(30 * time.Second); err != nil {
					t.Fatal(err)
				}
				var outs []string
				for _, o := range c.AllOutputs() {
					outs = append(outs, fmt.Sprintf("%v", o))
				}
				sort.Strings(outs)
				return outs
			}
			serial, sharded := run(1), run(4)
			if len(serial) == 0 {
				t.Fatal("serial run produced no outputs")
			}
			if len(serial) != len(sharded) {
				t.Fatalf("output counts differ: serial %d, sharded %d", len(serial), len(sharded))
			}
			for i := range serial {
				if serial[i] != sharded[i] {
					t.Fatalf("output %d differs: serial %s, sharded %s", i, serial[i], sharded[i])
				}
			}
		})
	}
}

// TestAdvancedStatsBGPChurn certifies the §5.5 sig path is measurably
// exercised by BGP-style slow churn: every InsertSlow broadcasts a sig
// that clears htequi on all members (SigClears counts them), and the
// post-reset re-maintenance of an already-seen class re-lands chains.
func TestAdvancedStatsBGPChurn(t *testing.T) {
	sc, err := scenario.Get("bgp")
	if err != nil {
		t.Fatal(err)
	}
	g := sc.Topology(5)
	c, err := New(Config{Prog: sc.Prog(), Funcs: sc.Funcs(), Nodes: g.Nodes(), Scheme: "advanced"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(sc.Base(g)); err != nil {
		t.Fatal(err)
	}
	if s := c.AdvancedStats(); s.SigClears != 0 {
		t.Fatalf("pre-churn SigClears = %d, want 0", s.SigClears)
	}
	for seq := int64(0); seq < 8; seq++ {
		if err := c.Inject(sc.Event(g, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	const churns = 3
	for i := 0; i < churns; i++ {
		if err := c.InsertSlow(sc.Churn(g, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := c.AdvancedStats()
	// Each slow insert broadcasts one sig to every member.
	if want := int64(churns * len(g.Nodes())); stats.SigClears != want {
		t.Fatalf("SigClears = %d, want %d (%d inserts x %d nodes)", stats.SigClears, want, churns, len(g.Nodes()))
	}
	// Post-reset, a repeated-class advert must re-maintain instead of
	// relying on the cleared htequi.
	for seq := int64(8); seq < 16; seq++ {
		if err := c.Inject(sc.Event(g, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.AdvancedStats().SigClears; got != stats.SigClears {
		t.Fatalf("SigClears moved without slow churn: %d -> %d", stats.SigClears, got)
	}
}

// TestShardHammerSlowUpdates races sharded event execution against
// concurrent slow-table churn on one node: inserts and deletes of routes
// for destinations the injected packets never use, while packets flow
// through the same database. Under -race this is the store's main
// concurrency certificate; functionally every packet must still arrive.
func TestShardHammerSlowUpdates(t *testing.T) {
	g := topo.Line(4, "n")
	c, err := New(Config{
		Prog: apps.Forwarding(), Funcs: apps.Funcs(),
		Nodes: g.Nodes(), Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}

	churnRoute := func(i int) types.Tuple {
		return types.NewTuple("route",
			types.String("n1"), types.String(fmt.Sprintf("ghost%d", i%17)), types.String("n2"))
	}
	const packets = 120
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < packets; i++ {
			if err := c.Inject(pkt("n0", "n0", "n3", fmt.Sprintf("p%d", i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 600; i++ {
			if i%2 == 0 {
				if err := c.InsertSlow(churnRoute(i)); err != nil {
					t.Error(err)
					return
				}
			} else {
				if err := c.DeleteSlow(churnRoute(i - 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := c.Quiesce(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Outputs("n3")); got != packets {
		t.Fatalf("outputs = %d, want %d", got, packets)
	}
	// The store survived the churn with its indexes intact: the forwarding
	// routes used by the packets are still probeable.
	n1 := c.Node("n1")
	if n1 == nil {
		t.Fatal("node n1 missing")
	}
}
