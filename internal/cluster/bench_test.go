package cluster

import (
	"fmt"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/core"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// BenchmarkClusterForwarding measures end-to-end packet throughput over
// real loopback TCP with provenance maintenance, per scheme.
func BenchmarkClusterForwarding(b *testing.B) {
	for _, scheme := range []string{core.SchemeExSPAN, core.SchemeBasic, core.SchemeAdvanced} {
		b.Run(scheme, func(b *testing.B) {
			g := topo.Line(5, "n")
			c, err := New(Config{Prog: apps.Forwarding(), Funcs: apps.Funcs(),
				Nodes: g.Nodes(), Scheme: scheme})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Inject(pkt("n0", "n0", "n4", fmt.Sprintf("p%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Quiesce(time.Minute); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if got := len(c.Outputs("n4")); got != b.N {
				b.Fatalf("outputs = %d, want %d", got, b.N)
			}
			b.ReportMetric(float64(c.TotalStorageBytes())/float64(b.N), "stored-bytes/pkt")
		})
	}
}

// BenchmarkClusterQuery measures one distributed provenance query over
// real sockets.
func BenchmarkClusterQuery(b *testing.B) {
	g := topo.Line(6, "n")
	c, err := New(Config{Prog: apps.Forwarding(), Funcs: apps.Funcs(), Nodes: g.Nodes()})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		b.Fatal(err)
	}
	ev := pkt("n0", "n0", "n5", "bench")
	if err := c.Inject(ev); err != nil {
		b.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		b.Fatal(err)
	}
	out := types.NewTuple("recv", ev.Args[2], ev.Args[1], ev.Args[2], ev.Args[3])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil || len(res.Trees) != 1 {
			b.Fatalf("query: %v (%d trees)", err, len(res.Trees))
		}
	}
}
