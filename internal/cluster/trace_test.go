package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/topo"
	"provcompress/internal/trace"
	"provcompress/internal/types"
)

// tracedChain boots an n-node chain cluster with a span collector and
// the shortest-path routes loaded, mirroring clusterboot.Boot.
func tracedChain(t *testing.T, n int, scheme string) (*Cluster, *trace.Collector) {
	t.Helper()
	tr := trace.NewCollector(0)
	g := topo.Line(n, "n")
	c, err := New(Config{
		Prog:   apps.Forwarding(),
		Funcs:  apps.Funcs(),
		Nodes:  g.Nodes(),
		Scheme: scheme,
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return c, tr
}

// TestInjectTraceSpansEveryHop injects one end-to-end packet across a
// 5-node chain and asserts the derivation produces a single
// parent-linked span tree whose spans cover every node the packet
// touched, with rule spans nested under each hop's process span.
func TestInjectTraceSpansEveryHop(t *testing.T) {
	c, tr := tracedChain(t, 5, "advanced")
	ev := pkt("n0", "n0", "n4", "traced")
	tid, err := c.InjectTraced(ev)
	if err != nil {
		t.Fatal(err)
	}
	if tid == 0 {
		t.Fatal("InjectTraced returned zero trace ID with a tracer configured")
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	spans := tr.Trace(tid)
	if err := trace.CheckLinked(spans); err != nil {
		t.Fatalf("inject span tree broken: %v\nspans: %+v", err, spans)
	}
	nodes := trace.Nodes(spans)
	want := []string{"n0", "n1", "n2", "n3", "n4"}
	if fmt.Sprint(nodes) != fmt.Sprint(want) {
		t.Fatalf("trace covers nodes %v, want %v", nodes, want)
	}
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Kind]++
	}
	if kinds["inject"] != 1 {
		t.Fatalf("inject spans = %d, want 1 (kinds: %v)", kinds["inject"], kinds)
	}
	if kinds["process"] < 5 {
		t.Fatalf("process spans = %d, want >= 5 (one per hop)", kinds["process"])
	}
	if kinds["rule"] < 4 {
		t.Fatalf("rule spans = %d, want >= 4 (the chain fires a rule per forwarding hop)", kinds["rule"])
	}

	// The tree must export as valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, tid); err != nil {
		t.Fatal(err)
	}
	if n, err := trace.ValidateChrome(buf.Bytes()); err != nil || n != len(spans) {
		t.Fatalf("chrome export: %d events, err %v (want %d events)", n, err, len(spans))
	}
}

// TestQueryTraceSpansEveryHop runs one distributed provenance query on a
// 5-node chain and asserts the acceptance property: a single
// parent-linked span tree covering every hop the walk took, exportable
// as valid Chrome trace JSON.
func TestQueryTraceSpansEveryHop(t *testing.T) {
	c, tr := tracedChain(t, 5, "advanced")
	ev := pkt("n0", "n0", "n4", "qtrace")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	out := recvT("n4", "n0", "n4", "qtrace")
	res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) == 0 {
		t.Fatal("query returned no provenance")
	}
	if res.TraceID == 0 {
		t.Fatal("query returned zero trace ID with a tracer configured")
	}
	spans := tr.Trace(res.TraceID)
	if err := trace.CheckLinked(spans); err != nil {
		t.Fatalf("query span tree broken: %v\nspans: %+v", err, spans)
	}
	kinds := map[string]int{}
	walkNodes := map[string]bool{}
	for _, sp := range spans {
		kinds[sp.Kind]++
		if sp.Kind == "walk" {
			walkNodes[sp.Node] = true
		}
	}
	if kinds["query"] != 1 || kinds["reconstruct"] != 1 {
		t.Fatalf("kinds = %v, want exactly one query and one reconstruct span", kinds)
	}
	// The walk must have produced one span per hop it reported.
	if kinds["walk"] != res.Hops {
		t.Fatalf("walk spans = %d, want %d (one per reported hop)", kinds["walk"], res.Hops)
	}
	// The provenance chain of an end-to-end packet lives on every chain
	// node, so the walk must have visited all five.
	if len(walkNodes) != 5 {
		t.Fatalf("walk visited %d nodes (%v), want 5", len(walkNodes), walkNodes)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, res.TraceID); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
}

// TestUntracedClusterProducesNoSpans pins the nil-tracer fast path: no
// spans, zero trace IDs, frames carrying zero trace headers end to end.
func TestUntracedClusterProducesNoSpans(t *testing.T) {
	c := fig2Cluster(t)
	ev := pkt("n1", "n1", "n3", "untraced")
	tid, err := c.InjectTraced(ev)
	if err != nil {
		t.Fatal(err)
	}
	if tid != 0 {
		t.Fatalf("InjectTraced on untraced cluster returned trace ID %d", tid)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(recvT("n3", "n1", "n3", "untraced"), types.HashTuple(ev), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != 0 {
		t.Fatalf("query on untraced cluster returned trace ID %d", res.TraceID)
	}
	if c.Tracer() != nil {
		t.Fatal("untraced cluster has a tracer")
	}
}

// TestByteClassAttribution asserts the per-class byte counters mirror
// the netsim taxonomy on the real runtime: base, provenance, and query
// bytes are all non-zero after an inject+query workload, their sum
// equals the aggregate transport byte total, and the per-link breakdown
// sums to the same figures.
func TestByteClassAttribution(t *testing.T) {
	c, _ := tracedChain(t, 5, "advanced")
	for i := 0; i < 4; i++ {
		if err := c.Inject(pkt("n0", "n0", "n4", fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A slow-changing insert broadcasts sig frames (provenance class).
	if err := c.InsertSlow(types.NewTuple("route", types.String("n0"), types.String("n9"), types.String("n1"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ev := pkt("n0", "n0", "n4", "b0")
	if _, err := c.Query(recvT("n4", "n0", "n4", "b0"), types.HashTuple(ev), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	s := c.TransportStats()
	if s.BytesTotal == 0 {
		t.Fatal("no bytes counted")
	}
	if s.BytesBase == 0 || s.BytesProv == 0 || s.BytesQuery == 0 {
		t.Fatalf("byte classes not all populated: base=%d prov=%d query=%d", s.BytesBase, s.BytesProv, s.BytesQuery)
	}
	if sum := s.BytesBase + s.BytesProv + s.BytesQuery + s.BytesBatch; sum != s.BytesTotal {
		t.Fatalf("class sum %d != total %d", sum, s.BytesTotal)
	}

	links := c.LinkByteStats()
	if len(links) == 0 {
		t.Fatal("no per-link stats")
	}
	var lt, lb, lp, lq, lx int64
	for _, l := range links {
		if l.Base+l.Prov+l.Query+l.Batch != l.Total {
			t.Fatalf("link %s->%s classes sum %d != total %d", l.From, l.To, l.Base+l.Prov+l.Query+l.Batch, l.Total)
		}
		lt += l.Total
		lb += l.Base
		lp += l.Prov
		lq += l.Query
		lx += l.Batch
	}
	if lt != s.BytesTotal || lb != s.BytesBase || lp != s.BytesProv || lq != s.BytesQuery || lx != s.BytesBatch {
		t.Fatalf("link sums (%d/%d/%d/%d/%d) != aggregate (%d/%d/%d/%d/%d)",
			lt, lb, lp, lq, lx, s.BytesTotal, s.BytesBase, s.BytesProv, s.BytesQuery, s.BytesBatch)
	}
}

// TestChaosTraceAndBytesConsistency is the chaos-suite case for the
// observability layer: across a Kill/Restart cycle, every collected
// trace must stay a single parent-linked tree, and the per-class byte
// counters (which live on the nodes, not the discarded transports) must
// keep summing exactly to the aggregate transport byte total.
func TestChaosTraceAndBytesConsistency(t *testing.T) {
	tr := trace.NewCollector(0)
	g := topo.Line(4, "n")
	c, err := New(Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: g.Nodes(),
		// Budget sized so retries comfortably span the restart window.
		Transport: TransportConfig{RetryBudget: 12, BackoffMax: 100 * time.Millisecond},
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}

	checkBytes := func(when string) {
		t.Helper()
		s := c.TransportStats()
		if sum := s.BytesBase + s.BytesProv + s.BytesQuery + s.BytesBatch; sum != s.BytesTotal {
			t.Fatalf("%s: class sum %d != total %d", when, sum, s.BytesTotal)
		}
	}

	before := pkt("n0", "n0", "n3", "before")
	tidBefore, err := c.InjectTraced(before)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	bytesBeforeKill := c.TransportStats().BytesTotal
	checkBytes("before kill")

	mid := c.Node("n2")
	mid.Kill()
	time.Sleep(20 * time.Millisecond)

	during := pkt("n0", "n0", "n3", "during")
	tidDuring, err := c.InjectTraced(during)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkBytes("after restart")

	// The per-link counters must have survived the transport teardown
	// that Kill performs: bytes counted before the kill cannot vanish.
	if got := c.TransportStats().BytesTotal; got < bytesBeforeKill {
		t.Fatalf("byte total went backwards across kill/restart: %d -> %d", bytesBeforeKill, got)
	}

	out := recvT("n3", "n0", "n3", "during")
	res, err := c.Query(out, types.HashTuple(during), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("query after restart: %v (%d trees)", err, len(res.Trees))
	}
	checkBytes("after query")

	// Every trace collected across the chaos window — the pre-kill
	// derivation, the injection that straddled the crash, and the
	// post-restart query — must be a single parent-linked tree.
	for _, tid := range []trace.TraceID{tidBefore, tidDuring, res.TraceID} {
		spans := tr.Trace(tid)
		if err := trace.CheckLinked(spans); err != nil {
			t.Fatalf("trace %d broken across kill/restart: %v\nspans: %+v", tid, err, spans)
		}
	}
	// The straddling injection's derivation completed after the restart,
	// so its tree must reach the far end of the chain.
	nodes := trace.Nodes(tr.Trace(tidDuring))
	if fmt.Sprint(nodes) != fmt.Sprint([]string{"n0", "n1", "n2", "n3"}) {
		t.Fatalf("straddling trace covers %v, want all 4 chain nodes", nodes)
	}
}
