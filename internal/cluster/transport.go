package cluster

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/metrics"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// TransportConfig tunes the fault-tolerant cluster transport. The zero
// value selects the defaults noted on each field.
type TransportConfig struct {
	// QueueLen bounds the per-peer outbound queue drained by the link's
	// writer goroutine (default 1024). Handlers never block on the network
	// itself; at worst they block briefly on a full queue.
	QueueLen int
	// EnqueueTimeout is how long a sender blocks on a full queue before
	// the frame is dropped and accounted (default 2s).
	EnqueueTimeout time.Duration
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// WriteTimeout is the per-send write deadline, so a stalled peer
	// cannot block a sender forever (default 2s).
	WriteTimeout time.Duration
	// RetryBudget is how many times a failed send is retried (with a
	// fresh dial if needed) before the frame is dropped (default 4).
	RetryBudget int
	// BackoffBase is the first retry backoff; it doubles per attempt with
	// jitter (default 2ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth (default 200ms).
	BackoffMax time.Duration
	// IdleConnTimeout closes a link's connection after it has sent nothing
	// for this long; the next frame transparently re-dials. Zero (the
	// default) keeps connections open forever. Large clusters need this:
	// membership gossip touches O(log N) peers per node in a burst, and
	// without reaping each burst pins its sockets — two file descriptors
	// per connection, both ends in this process — for the cluster's
	// lifetime.
	IdleConnTimeout time.Duration
}

func (tc TransportConfig) withDefaults() TransportConfig {
	if tc.QueueLen <= 0 {
		tc.QueueLen = 1024
	}
	if tc.EnqueueTimeout <= 0 {
		tc.EnqueueTimeout = 2 * time.Second
	}
	if tc.DialTimeout <= 0 {
		tc.DialTimeout = time.Second
	}
	if tc.WriteTimeout <= 0 {
		tc.WriteTimeout = 2 * time.Second
	}
	if tc.RetryBudget <= 0 {
		tc.RetryBudget = 4
	}
	if tc.BackoffBase <= 0 {
		tc.BackoffBase = 2 * time.Millisecond
	}
	if tc.BackoffMax <= 0 {
		tc.BackoffMax = 200 * time.Millisecond
	}
	return tc
}

// transportStats holds the live per-node transport counters.
type transportStats struct {
	dials        atomic.Int64
	redials      atomic.Int64
	dialErrors   atomic.Int64
	sends        atomic.Int64
	sendErrors   atomic.Int64
	retries      atomic.Int64
	drops        atomic.Int64
	queueDrops   atomic.Int64
	dups         atomic.Int64
	lateResults  atomic.Int64
	queryRetries atomic.Int64
	faultDrops   atomic.Int64
	faultDelays  atomic.Int64
	faultResets  atomic.Int64
	// bytesTotal counts every wire byte successfully written (envelope +
	// length prefix). The per-class split lives on the node's persistent
	// per-link counters (linkBytes) so it survives transport teardown on
	// Kill; total-vs-sum equality is the cross-check the chaos suite
	// asserts.
	bytesTotal atomic.Int64
}

// Byte classes for per-message-class attribution, mirroring the netsim
// cost model: base-tuple shipping, provenance maintenance (piggybacked
// metadata and sig broadcasts), and query traffic (walks and results).
const (
	classBase uint8 = iota
	classProv
	classQuery
)

// classNames orders the class labels for export.
var classNames = [...]string{classBase: "base", classProv: "prov", classQuery: "query"}

// linkBytes is the persistent per-(sender, peer) byte attribution. It
// lives on the sending node, not the transport, because Kill discards
// transports while the paper-style bandwidth breakdown must survive
// crash/restart cycles.
type linkBytes struct {
	total atomic.Int64
	base  atomic.Int64
	prov  atomic.Int64
	query atomic.Int64
}

// add attributes one delivered frame of wireBytes total bytes, of which
// provBytes (≤ wireBytes) carried piggybacked provenance metadata.
func (lb *linkBytes) add(class uint8, wireBytes, provBytes int) {
	lb.total.Add(int64(wireBytes))
	if provBytes > wireBytes {
		provBytes = wireBytes
	}
	switch class {
	case classProv:
		lb.prov.Add(int64(wireBytes))
	case classQuery:
		lb.query.Add(int64(wireBytes))
	default:
		lb.prov.Add(int64(provBytes))
		lb.base.Add(int64(wireBytes - provBytes))
	}
}

// TransportStats is a point-in-time snapshot of the transport counters,
// summed over the nodes it was collected from. It makes link failure
// observable: a healthy run shows zero redials/retries/drops, a chaos run
// shows exactly what the transport absorbed.
type TransportStats struct {
	Dials        int64 // successful connection establishments
	Redials      int64 // successful dials on a link that had worked before
	DialErrors   int64 // failed connection attempts
	Sends        int64 // frames written to the wire
	SendErrors   int64 // failed writes (including write-deadline expiry)
	Retries      int64 // re-attempts after a failed attempt
	Drops        int64 // frames abandoned after the retry budget
	QueueDrops   int64 // frames dropped on a persistently full queue
	Dups         int64 // redelivered duplicates suppressed by the receiver
	LateResults  int64 // query results that arrived after the query timed out
	QueryRetries int64 // Query walks re-issued after a result timeout
	FaultDrops   int64 // writes discarded by the fault plan
	FaultDelays  int64 // writes stalled by the fault plan
	FaultResets  int64 // connections reset by the fault plan

	// Byte attribution (successful writes only, envelope + length prefix):
	// BytesBase + BytesProv + BytesQuery == BytesTotal.
	BytesTotal int64 // every wire byte written
	BytesBase  int64 // base-tuple shipping
	BytesProv  int64 // provenance maintenance (metadata piggyback + sig)
	BytesQuery int64 // query walks and results
}

// accumulate folds one node's live counters into the snapshot.
func (s *TransportStats) accumulate(ts *transportStats) {
	s.Dials += ts.dials.Load()
	s.Redials += ts.redials.Load()
	s.DialErrors += ts.dialErrors.Load()
	s.Sends += ts.sends.Load()
	s.SendErrors += ts.sendErrors.Load()
	s.Retries += ts.retries.Load()
	s.Drops += ts.drops.Load()
	s.QueueDrops += ts.queueDrops.Load()
	s.Dups += ts.dups.Load()
	s.LateResults += ts.lateResults.Load()
	s.QueryRetries += ts.queryRetries.Load()
	s.FaultDrops += ts.faultDrops.Load()
	s.FaultDelays += ts.faultDelays.Load()
	s.FaultResets += ts.faultResets.Load()
	s.BytesTotal += ts.bytesTotal.Load()
}

// Counters exports the snapshot as an ordered metrics counter set.
func (s TransportStats) Counters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("dials", s.Dials)
	c.Add("redials", s.Redials)
	c.Add("dial-errors", s.DialErrors)
	c.Add("sends", s.Sends)
	c.Add("send-errors", s.SendErrors)
	c.Add("retries", s.Retries)
	c.Add("drops", s.Drops)
	c.Add("queue-drops", s.QueueDrops)
	c.Add("dups-suppressed", s.Dups)
	c.Add("late-results", s.LateResults)
	c.Add("query-retries", s.QueryRetries)
	c.Add("fault-drops", s.FaultDrops)
	c.Add("fault-delays", s.FaultDelays)
	c.Add("fault-resets", s.FaultResets)
	c.Add("bytes-total", s.BytesTotal)
	c.Add("bytes-base", s.BytesBase)
	c.Add("bytes-prov", s.BytesProv)
	c.Add("bytes-query", s.BytesQuery)
	return c
}

// String renders the snapshot as an aligned table.
func (s TransportStats) String() string { return s.Counters().String() }

// outFrame is one queued delivery: the encoded inner frame plus the
// destination accounting epoch captured at enqueue time, the byte class
// of the payload, and how many payload bytes are piggybacked provenance
// metadata (for class base frames carrying Advanced metadata).
type outFrame struct {
	payload   []byte
	epoch     uint64
	class     uint8
	provBytes int
}

// transport is one directed link: a bounded outbound queue drained by a
// dedicated writer goroutine that dials (and re-dials) the peer, applies
// write deadlines, injects plan faults, and retries failed sends with
// exponential backoff and jitter. Exactly one transport exists per
// (sender node, peer) pair at a time, so frames carry strictly increasing
// sequence numbers in write order and the receiver can suppress
// redelivered duplicates with a per-sender high-water mark.
type transport struct {
	owner *Node
	to    types.NodeAddr
	cfg   TransportConfig
	stats *transportStats

	queue chan outFrame
	stop  chan struct{}

	qmu     sync.Mutex
	stopped bool

	// Writer-goroutine state (no locking needed).
	conn       net.Conn
	everDialed bool
	seq        uint64
	rng        *rand.Rand
	faults     *linkFaults
}

func newTransport(n *Node, to types.NodeAddr) *transport {
	t := &transport{
		owner:  n,
		to:     to,
		cfg:    n.c.tcfg,
		stats:  &n.stats,
		queue:  make(chan outFrame, n.c.tcfg.QueueLen),
		stop:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(linkSeed(1, n.addr, to))),
		faults: n.c.faults.link(n.addr, to),
	}
	return t
}

// halt stops the writer; queued frames are drained and accounted.
func (t *transport) halt() {
	t.qmu.Lock()
	if !t.stopped {
		t.stopped = true
		close(t.stop)
	}
	t.qmu.Unlock()
}

// abandon settles the accounting for a frame the transport gives up on.
func (t *transport) abandon(f outFrame) {
	t.stats.drops.Add(1)
	t.owner.c.acctSettle(t.to, f.epoch)
}

// enqueue hands a frame to the writer goroutine. On a persistently full
// queue the frame is dropped and settled rather than blocking the caller
// forever (backpressure with a bounded stall).
func (t *transport) enqueue(f outFrame) {
	t.qmu.Lock()
	if t.stopped {
		t.qmu.Unlock()
		t.abandon(f)
		return
	}
	select {
	case t.queue <- f:
		t.qmu.Unlock()
		return
	default:
	}
	t.qmu.Unlock()
	timer := time.NewTimer(t.cfg.EnqueueTimeout)
	defer timer.Stop()
	select {
	case t.queue <- f:
	case <-t.stop:
		t.abandon(f)
	case <-timer.C:
		t.stats.queueDrops.Add(1)
		t.owner.c.acctSettle(t.to, f.epoch)
	}
}

// run is the writer goroutine: it drains the queue in order, delivering
// each frame (with retries) before touching the next, so per-link ordering
// is preserved and the receiver's duplicate filter stays a simple
// high-water mark. With IdleConnTimeout set it also reaps the connection
// after a quiet period; the sequence numbers live on the transport, not
// the connection, so the receiver's duplicate filter is unaffected by the
// re-dial.
func (t *transport) run() {
	defer t.owner.wg.Done()
	var idle *time.Timer
	var idleC <-chan time.Time
	if t.cfg.IdleConnTimeout > 0 {
		idle = time.NewTimer(t.cfg.IdleConnTimeout)
		idleC = idle.C
		defer idle.Stop()
	}
	for {
		select {
		case <-t.stop:
			t.drain()
			return
		case f := <-t.queue:
			t.deliver(f)
			if idle != nil {
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				idle.Reset(t.cfg.IdleConnTimeout)
			}
		case <-idleC:
			t.closeConn()
			idle.Reset(t.cfg.IdleConnTimeout)
		}
	}
}

// drain settles every frame still queued at halt time. A short grace
// window catches senders that were already blocked in enqueue when the
// transport halted.
func (t *transport) drain() {
	defer t.closeConn()
	for {
		select {
		case f := <-t.queue:
			t.abandon(f)
		case <-time.After(10 * time.Millisecond):
			return
		}
	}
}

func (t *transport) closeConn() {
	if t.conn != nil {
		t.conn.Close()
		t.conn = nil
	}
}

// sleep waits d unless the transport halts first.
func (t *transport) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.stop:
		return false
	case <-timer.C:
		return true
	}
}

// backoff returns the jittered exponential backoff before retry #attempt
// (attempt >= 1): half the doubled-and-capped base plus a random half.
func (t *transport) backoff(attempt int) time.Duration {
	d := t.cfg.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= t.cfg.BackoffMax {
			d = t.cfg.BackoffMax
			break
		}
	}
	if d > t.cfg.BackoffMax {
		d = t.cfg.BackoffMax
	}
	return d/2 + time.Duration(t.rng.Int63n(int64(d/2)+1))
}

// deliver writes one frame, retrying with backoff and reconnection up to
// the retry budget. A frame that exhausts the budget is dropped and its
// accounting settled so Quiesce cannot wedge on it.
func (t *transport) deliver(f outFrame) {
	t.seq++
	env := encodeEnvelope(t.owner.addr, t.owner.incarnation.Load(), t.seq, f.epoch, f.payload)
	dialFailed := false
	for attempt := 0; attempt <= t.cfg.RetryBudget; attempt++ {
		if attempt > 0 {
			t.stats.retries.Add(1)
			if !t.sleep(t.backoff(attempt)) {
				t.abandon(f)
				return
			}
		}
		switch t.faults.next() {
		case faultDrop:
			t.stats.faultDrops.Add(1)
			continue // the sender observes a lost write and retries
		case faultDelay:
			t.stats.faultDelays.Add(1)
			if !t.sleep(t.faults.delayFor()) {
				t.abandon(f)
				return
			}
		case faultReset:
			t.stats.faultResets.Add(1)
			t.closeConn()
		}
		if t.conn == nil {
			conn, err := net.DialTimeout("tcp", t.owner.c.node(t.to).listenAddr(), t.cfg.DialTimeout)
			if err != nil {
				t.stats.dialErrors.Add(1)
				dialFailed = true
				continue
			}
			t.stats.dials.Add(1)
			if t.everDialed {
				t.stats.redials.Add(1)
			}
			t.everDialed = true
			t.conn = conn
		}
		t.conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		if err := wire.WriteFrame(t.conn, env); err != nil {
			t.stats.sendErrors.Add(1)
			t.closeConn()
			continue
		}
		t.stats.sends.Add(1)
		// Attribute the wire bytes (envelope + 4-byte length prefix) to
		// the frame's message class, on the write that actually succeeded.
		wireBytes := len(env) + 4
		t.stats.bytesTotal.Add(int64(wireBytes))
		t.owner.linkBytesTo(t.to).add(f.class, wireBytes, f.provBytes)
		t.faults.sent()
		return
	}
	// Budget exhausted. Only hard evidence raises a suspicion: every dial
	// failed and no connection was ever held for this frame — the peer's
	// listener is gone, not merely slow or lossy (a fault-plan drop storm
	// keeps its connection and must not mark the peer Down).
	if t.conn == nil && dialFailed {
		t.owner.suspect(t.to)
	}
	t.abandon(f)
}
