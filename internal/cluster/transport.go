package cluster

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/metrics"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// TransportConfig tunes the fault-tolerant cluster transport. The zero
// value selects the defaults noted on each field.
type TransportConfig struct {
	// QueueLen bounds the per-peer outbound queue drained by the link's
	// writer goroutine (default 1024). Handlers never block on the network
	// itself; at worst they block briefly on a full queue.
	QueueLen int
	// EnqueueTimeout is how long a sender blocks on a full queue before
	// the frame is dropped and accounted (default 2s).
	EnqueueTimeout time.Duration
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// WriteTimeout is the per-send write deadline, so a stalled peer
	// cannot block a sender forever (default 2s).
	WriteTimeout time.Duration
	// RetryBudget is how many times a failed send is retried (with a
	// fresh dial if needed) before the frame is dropped (default 4).
	RetryBudget int
	// BackoffBase is the first retry backoff; it doubles per attempt with
	// jitter (default 2ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth (default 200ms).
	BackoffMax time.Duration
	// IdleConnTimeout closes a link's connection after it has sent nothing
	// for this long; the next frame transparently re-dials. Zero (the
	// default) keeps connections open forever. Large clusters need this:
	// membership gossip touches O(log N) peers per node in a burst, and
	// without reaping each burst pins its sockets — two file descriptors
	// per connection, both ends in this process — for the cluster's
	// lifetime.
	IdleConnTimeout time.Duration
	// MaxBatchBytes flushes the writer's coalescing buffer once the queued
	// sub-frame payloads reach this size (default 64KiB). Batching is the
	// ingest fast path: the writer drains its queue into one frameBatch
	// delivery per flush instead of one envelope (and one write syscall)
	// per frame.
	MaxBatchBytes int
	// BatchFlush is the coalescing deadline: once the writer holds a frame
	// it waits at most this long for companions before flushing (default
	// 1ms), bounding the latency cost under light load. A batch of one
	// falls back to the classic single-frame envelope.
	BatchFlush time.Duration
	// DisableBatch delivers every frame in its own envelope — the
	// per-tuple baseline the ingest benchmarks A/B against.
	DisableBatch bool
	// DisableCompress turns off the delta compression of batched
	// sub-frames (on by default: consecutive tuple shipments repeat
	// relation names, equivalence keys, and AdvMeta piggybacks, so the
	// wire encoding compresses for the same reason the paper's storage
	// does).
	DisableCompress bool
}

func (tc TransportConfig) withDefaults() TransportConfig {
	if tc.QueueLen <= 0 {
		tc.QueueLen = 1024
	}
	if tc.EnqueueTimeout <= 0 {
		tc.EnqueueTimeout = 2 * time.Second
	}
	if tc.DialTimeout <= 0 {
		tc.DialTimeout = time.Second
	}
	if tc.WriteTimeout <= 0 {
		tc.WriteTimeout = 2 * time.Second
	}
	if tc.RetryBudget <= 0 {
		tc.RetryBudget = 4
	}
	if tc.BackoffBase <= 0 {
		tc.BackoffBase = 2 * time.Millisecond
	}
	if tc.BackoffMax <= 0 {
		tc.BackoffMax = 200 * time.Millisecond
	}
	if tc.MaxBatchBytes <= 0 {
		tc.MaxBatchBytes = 64 << 10
	}
	if tc.BatchFlush <= 0 {
		tc.BatchFlush = time.Millisecond
	}
	return tc
}

// maxBatchFrames caps the sub-frame count of one batch. It stays well
// under both the receiver's dedup window (so a redelivered batch's seqs
// are all still tracked) and wire.MaxBatchEntries.
const maxBatchFrames = 512

// transportStats holds the live per-node transport counters.
type transportStats struct {
	dials        atomic.Int64
	redials      atomic.Int64
	dialErrors   atomic.Int64
	sends        atomic.Int64
	sendErrors   atomic.Int64
	retries      atomic.Int64
	drops        atomic.Int64
	queueDrops   atomic.Int64
	dups         atomic.Int64
	lateResults  atomic.Int64
	queryRetries atomic.Int64
	faultDrops   atomic.Int64
	faultDelays  atomic.Int64
	faultResets  atomic.Int64
	batches      atomic.Int64
	batchFrames  atomic.Int64
	// bytesTotal counts every wire byte successfully written (envelope +
	// length prefix). The per-class split lives on the node's persistent
	// per-link counters (linkBytes) so it survives transport teardown on
	// Kill; total-vs-sum equality is the cross-check the chaos suite
	// asserts.
	bytesTotal atomic.Int64
}

// Byte classes for per-message-class attribution, mirroring the netsim
// cost model: base-tuple shipping, provenance maintenance (piggybacked
// metadata and sig broadcasts), query traffic (walks and results), and
// batch framing overhead (delivery headers of coalesced frames, whose
// payload bytes are attributed to their own classes).
const (
	classBase uint8 = iota
	classProv
	classQuery
	classBatch
)

// classNames orders the class labels for export.
var classNames = [...]string{classBase: "base", classProv: "prov", classQuery: "query", classBatch: "batch"}

// linkBytes is the persistent per-(sender, peer) byte attribution. It
// lives on the sending node, not the transport, because Kill discards
// transports while the paper-style bandwidth breakdown must survive
// crash/restart cycles.
type linkBytes struct {
	total atomic.Int64
	base  atomic.Int64
	prov  atomic.Int64
	query atomic.Int64
	batch atomic.Int64
}

// add attributes one delivered frame of wireBytes total bytes, of which
// provBytes (≤ wireBytes) carried piggybacked provenance metadata.
func (lb *linkBytes) add(class uint8, wireBytes, provBytes int) {
	lb.total.Add(int64(wireBytes))
	if provBytes > wireBytes {
		provBytes = wireBytes
	}
	switch class {
	case classProv:
		lb.prov.Add(int64(wireBytes))
	case classQuery:
		lb.query.Add(int64(wireBytes))
	case classBatch:
		lb.batch.Add(int64(wireBytes))
	default:
		lb.prov.Add(int64(provBytes))
		lb.base.Add(int64(wireBytes - provBytes))
	}
}

// TransportStats is a point-in-time snapshot of the transport counters,
// summed over the nodes it was collected from. It makes link failure
// observable: a healthy run shows zero redials/retries/drops, a chaos run
// shows exactly what the transport absorbed.
type TransportStats struct {
	Dials        int64 // successful connection establishments
	Redials      int64 // successful dials on a link that had worked before
	DialErrors   int64 // failed connection attempts
	Sends        int64 // frames written to the wire
	SendErrors   int64 // failed writes (including write-deadline expiry)
	Retries      int64 // re-attempts after a failed attempt
	Drops        int64 // frames abandoned after the retry budget
	QueueDrops   int64 // frames dropped on a persistently full queue
	Dups         int64 // redelivered duplicates suppressed by the receiver
	LateResults  int64 // query results that arrived after the query timed out
	QueryRetries int64 // Query walks re-issued after a result timeout
	FaultDrops   int64 // writes discarded by the fault plan
	FaultDelays  int64 // writes stalled by the fault plan
	FaultResets  int64 // connections reset by the fault plan
	Batches      int64 // coalesced frameBatch deliveries written
	BatchFrames  int64 // sub-frames those batches carried

	// Byte attribution (successful writes only, envelope + length prefix):
	// BytesBase + BytesProv + BytesQuery + BytesBatch == BytesTotal.
	BytesTotal int64 // every wire byte written
	BytesBase  int64 // base-tuple shipping
	BytesProv  int64 // provenance maintenance (metadata piggyback + sig)
	BytesQuery int64 // query walks and results
	BytesBatch int64 // batch framing overhead around coalesced sub-frames
}

// accumulate folds one node's live counters into the snapshot.
func (s *TransportStats) accumulate(ts *transportStats) {
	s.Dials += ts.dials.Load()
	s.Redials += ts.redials.Load()
	s.DialErrors += ts.dialErrors.Load()
	s.Sends += ts.sends.Load()
	s.SendErrors += ts.sendErrors.Load()
	s.Retries += ts.retries.Load()
	s.Drops += ts.drops.Load()
	s.QueueDrops += ts.queueDrops.Load()
	s.Dups += ts.dups.Load()
	s.LateResults += ts.lateResults.Load()
	s.QueryRetries += ts.queryRetries.Load()
	s.FaultDrops += ts.faultDrops.Load()
	s.FaultDelays += ts.faultDelays.Load()
	s.FaultResets += ts.faultResets.Load()
	s.Batches += ts.batches.Load()
	s.BatchFrames += ts.batchFrames.Load()
	s.BytesTotal += ts.bytesTotal.Load()
}

// Counters exports the snapshot as an ordered metrics counter set.
func (s TransportStats) Counters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("dials", s.Dials)
	c.Add("redials", s.Redials)
	c.Add("dial-errors", s.DialErrors)
	c.Add("sends", s.Sends)
	c.Add("send-errors", s.SendErrors)
	c.Add("retries", s.Retries)
	c.Add("drops", s.Drops)
	c.Add("queue-drops", s.QueueDrops)
	c.Add("dups-suppressed", s.Dups)
	c.Add("late-results", s.LateResults)
	c.Add("query-retries", s.QueryRetries)
	c.Add("fault-drops", s.FaultDrops)
	c.Add("fault-delays", s.FaultDelays)
	c.Add("fault-resets", s.FaultResets)
	c.Add("batches", s.Batches)
	c.Add("batch-frames", s.BatchFrames)
	c.Add("bytes-total", s.BytesTotal)
	c.Add("bytes-base", s.BytesBase)
	c.Add("bytes-prov", s.BytesProv)
	c.Add("bytes-query", s.BytesQuery)
	c.Add("bytes-batch", s.BytesBatch)
	return c
}

// String renders the snapshot as an aligned table.
func (s TransportStats) String() string { return s.Counters().String() }

// outFrame is one queued delivery: the encoded inner frame plus the
// destination accounting epoch captured at enqueue time, the byte class
// of the payload, and how many payload bytes are piggybacked provenance
// metadata (for class base frames carrying Advanced metadata). pooled
// marks a payload the transport owns exclusively (drawn from the wire
// buffer pool by the encode fast path) and recycles once the frame
// settles; broadcast frames shared across links must not set it.
type outFrame struct {
	payload   []byte
	epoch     uint64
	class     uint8
	provBytes int
	pooled    bool
}

// transport is one directed link: a bounded outbound queue drained by a
// dedicated writer goroutine that dials (and re-dials) the peer, applies
// write deadlines, injects plan faults, and retries failed sends with
// exponential backoff and jitter. Exactly one transport exists per
// (sender node, peer) pair at a time, so frames carry strictly increasing
// sequence numbers in write order and the receiver can suppress
// redelivered duplicates with a per-sender high-water mark.
type transport struct {
	owner *Node
	to    types.NodeAddr
	cfg   TransportConfig
	stats *transportStats

	queue chan outFrame
	stop  chan struct{}

	qmu     sync.Mutex
	stopped bool

	// Writer-goroutine state (no locking needed).
	conn       net.Conn
	everDialed bool
	seq        uint64
	rng        *rand.Rand
	faults     *linkFaults

	// Coalescing scratch, reused across flushes by the writer goroutine.
	batch   []outFrame
	entries []wire.BatchEntry
	sizes   []int
}

func newTransport(n *Node, to types.NodeAddr) *transport {
	t := &transport{
		owner:  n,
		to:     to,
		cfg:    n.c.tcfg,
		stats:  &n.stats,
		queue:  make(chan outFrame, n.c.tcfg.QueueLen),
		stop:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(linkSeed(1, n.addr, to))),
		faults: n.c.faults.link(n.addr, to),
	}
	return t
}

// halt stops the writer; queued frames are drained and accounted.
func (t *transport) halt() {
	t.qmu.Lock()
	if !t.stopped {
		t.stopped = true
		close(t.stop)
	}
	t.qmu.Unlock()
}

// release recycles a pooled payload once the transport is finished with
// it (written, dropped, or drained). Exactly one release happens per
// frame; shared broadcast payloads are never pooled.
func (t *transport) release(f outFrame) {
	if f.pooled {
		wire.PutBuf(f.payload)
	}
}

// abandon settles the accounting for a frame the transport gives up on.
func (t *transport) abandon(f outFrame) {
	t.stats.drops.Add(1)
	t.owner.c.acctSettle(t.to, f.epoch)
	t.release(f)
}

// enqueue hands a frame to the writer goroutine. On a persistently full
// queue the frame is dropped and settled rather than blocking the caller
// forever (backpressure with a bounded stall).
func (t *transport) enqueue(f outFrame) {
	t.qmu.Lock()
	if t.stopped {
		t.qmu.Unlock()
		t.abandon(f)
		return
	}
	select {
	case t.queue <- f:
		t.qmu.Unlock()
		return
	default:
	}
	t.qmu.Unlock()
	timer := time.NewTimer(t.cfg.EnqueueTimeout)
	defer timer.Stop()
	select {
	case t.queue <- f:
	case <-t.stop:
		t.abandon(f)
	case <-timer.C:
		t.stats.queueDrops.Add(1)
		t.owner.c.acctSettle(t.to, f.epoch)
		t.release(f)
	}
}

// run is the writer goroutine: it drains the queue in order, delivering
// each frame (with retries) before touching the next, so per-link ordering
// is preserved and the receiver's duplicate filter stays a simple
// high-water mark. With IdleConnTimeout set it also reaps the connection
// after a quiet period; the sequence numbers live on the transport, not
// the connection, so the receiver's duplicate filter is unaffected by the
// re-dial.
func (t *transport) run() {
	defer t.owner.wg.Done()
	var idle *time.Timer
	var idleC <-chan time.Time
	if t.cfg.IdleConnTimeout > 0 {
		idle = time.NewTimer(t.cfg.IdleConnTimeout)
		idleC = idle.C
		defer idle.Stop()
	}
	for {
		select {
		case <-t.stop:
			t.drain()
			return
		case f := <-t.queue:
			if t.cfg.DisableBatch {
				t.deliver(f)
			} else {
				t.deliverBatch(t.collect(f))
			}
			if idle != nil {
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				idle.Reset(t.cfg.IdleConnTimeout)
			}
		case <-idleC:
			t.closeConn()
			idle.Reset(t.cfg.IdleConnTimeout)
		}
	}
}

// drain settles every frame still queued at halt time. A short grace
// window catches senders that were already blocked in enqueue when the
// transport halted.
func (t *transport) drain() {
	defer t.closeConn()
	for {
		select {
		case f := <-t.queue:
			t.abandon(f)
		case <-time.After(10 * time.Millisecond):
			return
		}
	}
}

// watchConn camps on a read of the outbound connection for its whole
// life. The protocol is strictly one-way (receivers answer on their own
// links, never on the inbound socket), so the read only ever returns
// when the peer is gone — EOF from a closed listener socket, a reset, or
// our own closeConn. Closing the conn right then makes the next write
// fail immediately instead of "succeeding" into the send buffer of a
// connection whose peer died, which matters for exactly-once
// accounting: a frame the sender believes delivered is settled by
// nobody. (The pre-batching writer got this detection by accident — its
// separate header write drew the peer's RST before the payload write —
// and the single-write fast path must not lose it.)
func watchConn(conn net.Conn) {
	var p [1]byte
	conn.Read(p[:]) //nolint:errcheck // any return means the link is dead
	conn.Close()
}

func (t *transport) closeConn() {
	if t.conn != nil {
		t.conn.Close()
		t.conn = nil
	}
}

// sleep waits d unless the transport halts first.
func (t *transport) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.stop:
		return false
	case <-timer.C:
		return true
	}
}

// backoff returns the jittered exponential backoff before retry #attempt
// (attempt >= 1): half the doubled-and-capped base plus a random half.
func (t *transport) backoff(attempt int) time.Duration {
	d := t.cfg.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= t.cfg.BackoffMax {
			d = t.cfg.BackoffMax
			break
		}
	}
	if d > t.cfg.BackoffMax {
		d = t.cfg.BackoffMax
	}
	return d/2 + time.Duration(t.rng.Int63n(int64(d/2)+1))
}

// writeEnv writes one encoded delivery (envelope or batch), retrying
// with backoff and reconnection up to the retry budget, and reports
// whether a write succeeded. Fault injection, dialing, deadlines, and
// suspicion all live here so single and batched deliveries fail the
// same way.
func (t *transport) writeEnv(env []byte) bool {
	dialFailed := false
	for attempt := 0; attempt <= t.cfg.RetryBudget; attempt++ {
		if attempt > 0 {
			t.stats.retries.Add(1)
			if !t.sleep(t.backoff(attempt)) {
				return false
			}
		}
		switch t.faults.next() {
		case faultDrop:
			t.stats.faultDrops.Add(1)
			continue // the sender observes a lost write and retries
		case faultDelay:
			t.stats.faultDelays.Add(1)
			if !t.sleep(t.faults.delayFor()) {
				return false
			}
		case faultReset:
			t.stats.faultResets.Add(1)
			t.closeConn()
		}
		if t.conn == nil {
			conn, err := net.DialTimeout("tcp", t.owner.c.node(t.to).listenAddr(), t.cfg.DialTimeout)
			if err != nil {
				t.stats.dialErrors.Add(1)
				dialFailed = true
				continue
			}
			t.stats.dials.Add(1)
			if t.everDialed {
				t.stats.redials.Add(1)
			}
			t.everDialed = true
			t.conn = conn
			go watchConn(conn)
		}
		if err := t.conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout)); err != nil {
			// A connection that cannot even take a deadline is dead.
			t.stats.sendErrors.Add(1)
			t.closeConn()
			continue
		}
		if err := wire.WriteFrame(t.conn, env); err != nil {
			t.stats.sendErrors.Add(1)
			t.closeConn()
			continue
		}
		t.stats.sends.Add(1)
		t.stats.bytesTotal.Add(int64(len(env) + 4))
		t.faults.sent()
		return true
	}
	// Budget exhausted. Only hard evidence raises a suspicion: every dial
	// failed and no connection was ever held for this delivery — the
	// peer's listener is gone, not merely slow or lossy (a fault-plan
	// drop storm keeps its connection and must not mark the peer Down).
	if t.conn == nil && dialFailed {
		t.owner.suspect(t.to)
	}
	return false
}

// deliver writes one frame in its own envelope. A frame that exhausts
// the retry budget is dropped and its accounting settled so Quiesce
// cannot wedge on it.
func (t *transport) deliver(f outFrame) {
	t.seq++
	env := appendEnvelope(wire.GetBuf(), t.owner.addr, t.owner.incarnation.Load(), t.seq, f.epoch, f.payload)
	if t.writeEnv(env) {
		// Attribute the wire bytes (envelope + 4-byte length prefix) to
		// the frame's message class, on the write that actually succeeded.
		t.owner.linkBytesTo(t.to).add(f.class, len(env)+4, f.provBytes)
		t.release(f)
	} else {
		t.abandon(f)
	}
	wire.PutBuf(env)
}

// collect coalesces the first frame with whatever else arrives before
// the flush: the queue is drained without waiting first, then the batch
// holds for the flush deadline, and either the size threshold, the
// frame cap, or the deadline closes it. The returned slice is writer
// scratch, valid until the next collect.
func (t *transport) collect(first outFrame) []outFrame {
	t.batch = append(t.batch[:0], first)
	size := len(first.payload)
	for size < t.cfg.MaxBatchBytes && len(t.batch) < maxBatchFrames {
		select {
		case f := <-t.queue:
			t.batch = append(t.batch, f)
			size += len(f.payload)
			continue
		default:
		}
		break
	}
	if size >= t.cfg.MaxBatchBytes || len(t.batch) >= maxBatchFrames {
		return t.batch
	}
	deadline := time.NewTimer(t.cfg.BatchFlush)
	defer deadline.Stop()
	for size < t.cfg.MaxBatchBytes && len(t.batch) < maxBatchFrames {
		select {
		case f := <-t.queue:
			t.batch = append(t.batch, f)
			size += len(f.payload)
		case <-deadline.C:
			return t.batch
		case <-t.stop:
			// Halting: flush what is held; the run loop's drain settles
			// whatever is still queued.
			return t.batch
		}
	}
	return t.batch
}

// deliverBatch writes a coalesced batch as one frameBatch delivery — one
// write syscall for the whole flush. Each sub-frame keeps its own
// sequence number and accounting epoch inside the batch body, so the
// receiver dedups and settles per sub-frame and a redelivered batch is
// suppressed frame by frame, exactly like redelivered singles. A batch
// of one takes the classic envelope path so light load leaves the wire
// format untouched.
func (t *transport) deliverBatch(batch []outFrame) {
	if len(batch) == 1 {
		t.deliver(batch[0])
		return
	}
	entries := t.entries[:0]
	for i := range batch {
		t.seq++
		entries = append(entries, wire.BatchEntry{Seq: t.seq, Epoch: batch[i].epoch, Payload: batch[i].payload})
	}
	var e wire.Encoder
	e.SetBuf(wire.GetBuf())
	e.U8(frameBatch)
	e.Str(string(t.owner.addr))
	e.U64(t.owner.incarnation.Load())
	env, sizes := wire.AppendBatch(e.Bytes(), entries, !t.cfg.DisableCompress, t.sizes[:0])
	t.sizes = sizes
	for i := range entries {
		entries[i].Payload = nil
	}
	t.entries = entries
	// The payloads are copied into the batch buffer; pooled ones recycle
	// now, before the (possibly long) retry loop.
	for i := range batch {
		t.release(batch[i])
		batch[i].payload = nil
	}
	if t.writeEnv(env) {
		// Per-class attribution stays exact under coalescing: each
		// sub-frame's encoded payload section goes to its own class, and
		// the remaining bytes — length prefix, batch header, per-entry
		// seq/epoch headers, delta framing — are the batch class, so the
		// class sums still reconcile with the link totals byte for byte.
		lb := t.owner.linkBytesTo(t.to)
		payloadBytes := 0
		for i := range batch {
			lb.add(batch[i].class, sizes[i], batch[i].provBytes)
			payloadBytes += sizes[i]
		}
		lb.add(classBatch, len(env)+4-payloadBytes, 0)
		t.stats.batches.Add(1)
		t.stats.batchFrames.Add(int64(len(batch)))
	} else {
		for i := range batch {
			t.stats.drops.Add(1)
			t.owner.c.acctSettle(t.to, batch[i].epoch)
		}
	}
	wire.PutBuf(env)
}
