package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// batchedBurstOutcome drives a burst of events through a 4-node chain —
// enough concurrent traffic that the writers genuinely coalesce — under
// an optional fault plan and an optional Kill/Restart of the middle
// node, and returns the sorted outputs, a sample of provenance trees,
// and the transport stats. The retry budget is sized so the restart
// lands inside the retry window (no frame is ever dropped), which is
// what makes the outcome comparable byte-for-byte against a clean run.
func batchedBurstOutcome(t *testing.T, plan *FaultPlan, tcfg TransportConfig, killRestart bool) ([]string, map[string]string, TransportStats, *Cluster) {
	t.Helper()
	g := topo.Line(4, "n")
	tcfg.RetryBudget = 12
	tcfg.BackoffMax = 100 * time.Millisecond
	c, err := New(Config{
		Prog:      apps.Forwarding(),
		Funcs:     apps.Funcs(),
		Nodes:     g.Nodes(),
		Transport: tcfg,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	var evs []types.Tuple
	for i := 0; i < 24; i++ {
		evs = append(evs, pkt("n0", "n0", "n3", fmt.Sprintf("burst-%02d", i)))
	}
	inject := func(from, to int) {
		for _, ev := range evs[from:to] {
			if err := c.Inject(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if killRestart {
		// Half the burst rides through the kill: the frames land in the
		// retry window and must survive the batched redelivery without a
		// single duplicate apply or lost settle.
		inject(0, len(evs)/2)
		c.Node("n2").Kill()
		inject(len(evs)/2, len(evs))
		time.Sleep(100 * time.Millisecond)
		if err := c.Restart("n2"); err != nil {
			t.Fatal(err)
		}
	} else {
		inject(0, len(evs))
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	var outputs []string
	for _, out := range c.AllOutputs() {
		outputs = append(outputs, out.String())
	}
	sort.Strings(outputs)
	trees := make(map[string]string)
	for _, ev := range []types.Tuple{evs[0], evs[len(evs)/2], evs[len(evs)-1]} {
		out := types.NewTuple("recv", ev.Args[2], ev.Args[1], ev.Args[2], ev.Args[3])
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil {
			t.Fatalf("query %v: %v", out, err)
		}
		if len(res.Trees) != 1 {
			t.Fatalf("query %v: %d trees", out, len(res.Trees))
		}
		trees[ev.String()] = res.Trees[0].String()
	}
	return outputs, trees, c.TransportStats(), c
}

// checkByteClassesExact asserts the accounting invariant batching must
// not bend: per link and in aggregate, base+prov+query+batch equals the
// byte total exactly — no byte is double-attributed or dropped by the
// coalescing path, faults or not.
func checkByteClassesExact(t *testing.T, c *Cluster, when string) {
	t.Helper()
	s := c.TransportStats()
	if sum := s.BytesBase + s.BytesProv + s.BytesQuery + s.BytesBatch; sum != s.BytesTotal {
		t.Fatalf("%s: class sum %d != byte total %d", when, sum, s.BytesTotal)
	}
	var lt, lsum int64
	for _, l := range c.LinkByteStats() {
		if l.Base+l.Prov+l.Query+l.Batch != l.Total {
			t.Fatalf("%s: link %s->%s classes sum %d != total %d",
				when, l.From, l.To, l.Base+l.Prov+l.Query+l.Batch, l.Total)
		}
		lt += l.Total
		lsum += l.Base + l.Prov + l.Query + l.Batch
	}
	if lt != s.BytesTotal {
		t.Fatalf("%s: link totals %d != aggregate total %d", when, lt, s.BytesTotal)
	}
}

// TestChaosBatchedIngestFaults is the chaos property for the ingest fast
// path: with frame coalescing and delta compression on, a seeded plan of
// drops, stalls, and mid-stream resets — faults landing between and
// inside batches — plus a Kill/Restart of a mid-chain node must leave
// outputs and provenance trees identical to a clean unbatched run, with
// the per-class byte accounting still exact to the byte.
func TestChaosBatchedIngestFaults(t *testing.T) {
	wantOut, wantTrees, clean, _ := batchedBurstOutcome(t, nil, TransportConfig{DisableBatch: true}, false)
	if clean.Drops > 0 || clean.QueueDrops > 0 {
		t.Fatalf("clean unbatched run lost frames: %+v", clean)
	}

	plan := &FaultPlan{
		Seed:       11,
		Drop:       0.08,
		Delay:      0.05,
		DelayFor:   2 * time.Millisecond,
		ResetAfter: 5,
	}
	gotOut, gotTrees, stats, c := batchedBurstOutcome(t, plan, TransportConfig{}, true)

	if strings.Join(gotOut, "\n") != strings.Join(wantOut, "\n") {
		t.Errorf("batched outputs diverged under faults:\ngot:\n%s\nwant:\n%s",
			strings.Join(gotOut, "\n"), strings.Join(wantOut, "\n"))
	}
	for ev, want := range wantTrees {
		if gotTrees[ev] != want {
			t.Errorf("tree for %s diverged under batched faults:\ngot:\n%s\nwant:\n%s", ev, gotTrees[ev], want)
		}
	}
	if stats.Batches == 0 {
		t.Error("burst formed no batches; the chaos run never exercised coalescing")
	}
	if stats.BatchFrames <= stats.Batches {
		t.Errorf("batches carried %d sub-frames across %d batches; no real coalescing happened",
			stats.BatchFrames, stats.Batches)
	}
	if stats.BytesBatch == 0 {
		t.Error("no bytes attributed to batch framing despite batches on the wire")
	}
	if stats.FaultDrops+stats.FaultDelays+stats.FaultResets == 0 {
		t.Error("fault plan injected nothing; chaos run was vacuous")
	}
	checkByteClassesExact(t, c, "after chaos burst")
}

// TestBatchedDisableMatchesUnbatched pins the A/B knob itself: the same
// workload with batching disabled produces the same outputs and keeps
// the batch counters at exactly zero (the knob really selects the
// legacy wire path).
func TestBatchedDisableMatchesUnbatched(t *testing.T) {
	wantOut, _, _, _ := batchedBurstOutcome(t, nil, TransportConfig{}, false)
	gotOut, _, stats, c := batchedBurstOutcome(t, nil, TransportConfig{DisableBatch: true}, false)
	if strings.Join(gotOut, "\n") != strings.Join(wantOut, "\n") {
		t.Errorf("unbatched outputs diverged from batched:\ngot:\n%s\nwant:\n%s",
			strings.Join(gotOut, "\n"), strings.Join(wantOut, "\n"))
	}
	if stats.Batches != 0 || stats.BatchFrames != 0 || stats.BytesBatch != 0 {
		t.Errorf("DisableBatch still produced batches: %d batches, %d sub-frames, %d batch bytes",
			stats.Batches, stats.BatchFrames, stats.BytesBatch)
	}
	checkByteClassesExact(t, c, "unbatched run")
}
