package cluster

import (
	"fmt"

	"provcompress/internal/core"
	"provcompress/internal/membership"
	"provcompress/internal/trace"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// Trace header helpers: every tuple and walk frame carries a (trace ID,
// span ID) pair right after its kind byte. Zero means "untraced"; a
// receiver parents its own spans under the carried context, which is
// how one injection or one distributed query becomes a single
// parent-linked span tree across nodes.
func encodeTraceCtx(e *wire.Encoder, sc trace.SpanContext) {
	e.U64(uint64(sc.Trace))
	e.U64(uint64(sc.Span))
}

func decodeTraceCtx(d *wire.Decoder) trace.SpanContext {
	t := d.U64()
	s := d.U64()
	return trace.SpanContext{Trace: trace.TraceID(t), Span: trace.SpanID(s)}
}

// Frame kinds of the cluster protocol.
const (
	frameTuple    = 1 // tuple shipment (fresh input event or derived head)
	frameSig      = 2 // Section 5.5 equivalence-table reset broadcast
	frameWalk     = 3 // traveling provenance query (Section 5.6)
	frameResult   = 4 // completed walk returning to the querier
	frameEnvelope = 5 // transport delivery envelope wrapping any of the above

	// Membership subsystem frames (membership.go). All of them are cluster
	// upkeep rather than base-tuple traffic or query traffic, so the
	// transport attributes every byte to the provenance class.
	frameView       = 6  // gossiped membership view delta (full CRDT view)
	frameRepl       = 7  // one replicated durable-format record for a partition
	frameHandoff    = 8  // partition snapshot stream: bootstrap, handoff, repair
	frameHandoffAck = 9  // receiver acknowledges a handoff installed
	frameRepairReq  = 10 // returning owner asks a replica for its shadow copy

	// frameBatch is a coalesced delivery: one write carrying N sub-frames,
	// each with its own (seq, epoch) so dedup and in-flight accounting
	// stay per-frame (wire.AppendBatch / wire.DecodeBatch).
	frameBatch = 11
)

// encodeEnvelope wraps an already-encoded frame in the transport delivery
// envelope. The (sender, incarnation, seq) triple lets the receiver drop
// redelivered duplicates — a retried send whose first write actually
// reached the peer — and epoch carries the in-flight accounting epoch of
// the destination so crashed-and-drained frames are not double-settled.
func encodeEnvelope(from types.NodeAddr, incarnation, seq, epoch uint64, inner []byte) []byte {
	return appendEnvelope(make([]byte, 0, len(inner)+40), from, incarnation, seq, epoch, inner)
}

// appendEnvelope is encodeEnvelope into an existing buffer (typically a
// pooled one), so the transport's write path allocates nothing per frame.
func appendEnvelope(dst []byte, from types.NodeAddr, incarnation, seq, epoch uint64, inner []byte) []byte {
	var e wire.Encoder
	e.SetBuf(dst)
	e.U8(frameEnvelope)
	e.Str(string(from))
	e.U64(incarnation)
	e.U64(seq)
	e.U64(epoch)
	e.Raw(inner)
	return e.Bytes()
}

// tupleFrame ships a tuple plus the Advanced metadata. Fresh marks an
// injected input event whose Stage 1 runs at the receiver. Trace is the
// span context the shipment is causally under (zero when untraced).
type tupleFrame struct {
	Tuple types.Tuple
	Fresh bool
	Meta  core.AdvMeta
	Trace trace.SpanContext
}

func (f *tupleFrame) encode() []byte {
	b, _ := f.encodeSized()
	return b
}

// encodeSized also reports how many of the payload bytes carry the
// piggybacked provenance metadata, which the transport attributes to
// the provenance byte class (the rest of a tuple frame is base-tuple
// shipping). The buffer is pooled: callers hand the frame to sendOwned
// (or release it themselves), and the transport recycles it on settle.
func (f *tupleFrame) encodeSized() ([]byte, int) {
	e := new(wire.Encoder)
	e.SetBuf(wire.GetBuf())
	e.U8(frameTuple)
	encodeTraceCtx(e, f.Trace)
	e.Tuple(f.Tuple)
	e.Bool(f.Fresh)
	metaStart := e.Len()
	if !f.Fresh {
		encodeMeta(e, f.Meta)
	}
	return e.Bytes(), e.Len() - metaStart
}

func decodeTupleFrame(d *wire.Decoder) (*tupleFrame, error) {
	f := &tupleFrame{}
	f.Trace = decodeTraceCtx(d)
	f.Tuple = d.Tuple()
	f.Fresh = d.Bool()
	if !f.Fresh {
		f.Meta = decodeMeta(d)
	}
	return f, d.Err()
}

func encodeMeta(e *wire.Encoder, m core.AdvMeta) {
	e.ID(m.Eq)
	e.Bool(m.Exist)
	e.ID(m.EvID)
	encodeRef(e, m.Prev)
}

func decodeMeta(d *wire.Decoder) core.AdvMeta {
	var m core.AdvMeta
	m.Eq = d.ID()
	m.Exist = d.Bool()
	m.EvID = d.ID()
	m.Prev = decodeRef(d)
	return m
}

func encodeRef(e *wire.Encoder, r core.Ref) {
	e.Str(string(r.Loc))
	e.ID(r.RID)
}

func decodeRef(d *wire.Decoder) core.Ref {
	loc := d.Str()
	rid := d.ID()
	return core.Ref{Loc: types.NodeAddr(loc), RID: rid}
}

func encodeSig() []byte {
	e := wire.NewEncoder(1)
	e.U8(frameSig)
	return e.Bytes()
}

// walkFrame is the traveling provenance query: the anchor rows, the DFS
// worklist, and everything collected so far. The same layout returns to
// the querier as a result frame.
type walkFrame struct {
	QID     uint64
	Querier types.NodeAddr
	Root    types.Tuple
	EvID    types.ID
	// Trace is the span context of the previous hop (or the query root);
	// each node re-parents it to its own walk span before forwarding, so
	// the walk's spans chain hop to hop.
	Trace trace.SpanContext

	RootProvs []core.Prov
	Work      []core.Ref
	Entries   []core.CollectedEntry
	// Provs carries the prov rows collected along the walk (ExSPAN needs
	// them to follow derivations during reconstruction).
	Provs  []core.Prov
	Tuples []types.Tuple
	// EqKeys is the sorted invalidation-key set (invalkey.go) the walk
	// accumulated: the VID keys of every tuple/EvID a serving node
	// resolved for it plus the class keys of leaf events. It travels in
	// the canonical key-set codec (wire.AppendKeySet), so a corrupt or
	// hostile frame cannot smuggle a non-canonical set into a cache tag.
	EqKeys []uint64
	Hops   uint32
	// Partial marks a walk that could not finish because a node it needed
	// was unreachable. The querier fails the query immediately instead of
	// burning its retry budget re-walking into the same outage — with
	// replication on it re-plans against a replica instead.
	Partial bool
}

// encode serializes the walk as kind frameWalk or frameResult. The
// buffer is pooled (each walk frame travels exactly one link before
// being re-encoded); send it with sendOwned.
func (f *walkFrame) encode(kind uint8) []byte {
	e := new(wire.Encoder)
	e.SetBuf(wire.GetBuf())
	e.U8(kind)
	encodeTraceCtx(e, f.Trace)
	e.U64(f.QID)
	e.Str(string(f.Querier))
	e.Tuple(f.Root)
	e.ID(f.EvID)
	e.U32(uint32(len(f.RootProvs)))
	for _, p := range f.RootProvs {
		e.Str(string(p.Loc))
		e.ID(p.VID)
		encodeRef(e, p.Ref)
		e.ID(p.EvID)
	}
	e.U32(uint32(len(f.Work)))
	for _, r := range f.Work {
		encodeRef(e, r)
	}
	e.U32(uint32(len(f.Entries)))
	for _, ce := range f.Entries {
		e.Str(string(ce.Entry.Loc))
		e.ID(ce.Entry.RID)
		e.Str(ce.Entry.Rule)
		e.U32(uint32(len(ce.Entry.VIDs)))
		for _, v := range ce.Entry.VIDs {
			e.ID(v)
		}
		encodeRef(e, ce.Entry.Next)
		e.U32(uint32(len(ce.Nexts)))
		for _, r := range ce.Nexts {
			encodeRef(e, r)
		}
	}
	e.U32(uint32(len(f.Provs)))
	for _, p := range f.Provs {
		e.Str(string(p.Loc))
		e.ID(p.VID)
		encodeRef(e, p.Ref)
		e.ID(p.EvID)
	}
	e.U32(uint32(len(f.Tuples)))
	for _, t := range f.Tuples {
		e.Tuple(t)
	}
	e.AppendKeySet(f.EqKeys)
	e.U32(f.Hops)
	e.Bool(f.Partial)
	return e.Bytes()
}

const maxWalkItems = 1 << 20

func decodeWalkFrame(d *wire.Decoder) (*walkFrame, error) {
	f := &walkFrame{}
	f.Trace = decodeTraceCtx(d)
	f.QID = d.U64()
	f.Querier = types.NodeAddr(d.Str())
	f.Root = d.Tuple()
	f.EvID = d.ID()
	n := d.U32()
	if n > maxWalkItems {
		return nil, fmt.Errorf("cluster: walk frame with %d prov rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var p core.Prov
		p.Loc = types.NodeAddr(d.Str())
		p.VID = d.ID()
		p.Ref = decodeRef(d)
		p.EvID = d.ID()
		f.RootProvs = append(f.RootProvs, p)
	}
	n = d.U32()
	if n > maxWalkItems {
		return nil, fmt.Errorf("cluster: walk frame with %d work refs", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		f.Work = append(f.Work, decodeRef(d))
	}
	n = d.U32()
	if n > maxWalkItems {
		return nil, fmt.Errorf("cluster: walk frame with %d entries", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var ce core.CollectedEntry
		ce.Entry.Loc = types.NodeAddr(d.Str())
		ce.Entry.RID = d.ID()
		ce.Entry.Rule = d.Str()
		vn := d.U32()
		if vn > maxWalkItems {
			return nil, fmt.Errorf("cluster: entry with %d vids", vn)
		}
		for j := uint32(0); j < vn && d.Err() == nil; j++ {
			ce.Entry.VIDs = append(ce.Entry.VIDs, d.ID())
		}
		ce.Entry.Next = decodeRef(d)
		ln := d.U32()
		if ln > maxWalkItems {
			return nil, fmt.Errorf("cluster: entry with %d links", ln)
		}
		for j := uint32(0); j < ln && d.Err() == nil; j++ {
			ce.Nexts = append(ce.Nexts, decodeRef(d))
		}
		f.Entries = append(f.Entries, ce)
	}
	n = d.U32()
	if n > maxWalkItems {
		return nil, fmt.Errorf("cluster: walk frame with %d collected prov rows", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var p core.Prov
		p.Loc = types.NodeAddr(d.Str())
		p.VID = d.ID()
		p.Ref = decodeRef(d)
		p.EvID = d.ID()
		f.Provs = append(f.Provs, p)
	}
	n = d.U32()
	if n > maxWalkItems {
		return nil, fmt.Errorf("cluster: walk frame with %d tuples", n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		f.Tuples = append(f.Tuples, d.Tuple())
	}
	if d.Err() == nil {
		keys, err := d.DecodeKeySet()
		if err != nil {
			return nil, err
		}
		f.EqKeys = keys
	}
	f.Hops = d.U32()
	f.Partial = d.Bool()
	return f, d.Err()
}

// encodeView wraps the CRDT membership view for gossip.
func encodeView(v *membership.View) []byte {
	e := wire.NewEncoder(64)
	e.U8(frameView)
	v.Encode(e)
	return e.Bytes()
}

func decodeViewFrame(d *wire.Decoder) (*membership.View, error) {
	return membership.DecodeView(d)
}

// encodeRepl ships one durable-format record (encodeDurEvent /
// encodeDurTuple / recSigPayload, durability.go) for the partition owned
// by `owner`, so a replica can maintain its shadow copy by replaying the
// exact byte stream the owner logged (or would have logged).
func encodeRepl(owner types.NodeAddr, rec []byte) []byte {
	e := wire.NewEncoder(len(rec) + 16)
	e.U8(frameRepl)
	e.Str(string(owner))
	e.Blob(rec)
	return e.Bytes()
}

func decodeReplFrame(d *wire.Decoder) (types.NodeAddr, []byte, error) {
	owner := types.NodeAddr(d.Str())
	rec := d.Blob()
	return owner, rec, d.Err()
}

// encodeHandoff streams a whole partition — the snapshotPayload of
// `owner`'s state — to a peer. HID correlates the final frame's ack;
// final=false frames (replica bootstrap, read-repair replies) are not
// acked. The same frame serves three flows: bootstrapping a new replica,
// handing a partition to its next owner on leave, and answering a
// repair request from a returning owner.
func encodeHandoff(owner types.NodeAddr, hid uint64, final bool, snap []byte) []byte {
	e := wire.NewEncoder(len(snap) + 24)
	e.U8(frameHandoff)
	e.Str(string(owner))
	e.U64(hid)
	e.Bool(final)
	e.Blob(snap)
	return e.Bytes()
}

func decodeHandoffFrame(d *wire.Decoder) (owner types.NodeAddr, hid uint64, final bool, snap []byte, err error) {
	owner = types.NodeAddr(d.Str())
	hid = d.U64()
	final = d.Bool()
	snap = d.Blob()
	return owner, hid, final, snap, d.Err()
}

// encodeHandoffAck confirms a final handoff installed at the receiver;
// the sender's routing flip (and Ready gauge) waits on it.
func encodeHandoffAck(hid uint64, owner types.NodeAddr) []byte {
	e := wire.NewEncoder(24)
	e.U8(frameHandoffAck)
	e.U64(hid)
	e.Str(string(owner))
	return e.Bytes()
}

func decodeHandoffAckFrame(d *wire.Decoder) (hid uint64, owner types.NodeAddr, err error) {
	hid = d.U64()
	owner = types.NodeAddr(d.Str())
	return hid, owner, d.Err()
}

// encodeRepairReq asks a replica to send back its shadow of the
// requester's own partition (read-repair after a crash window).
func encodeRepairReq(owner types.NodeAddr) []byte {
	e := wire.NewEncoder(16)
	e.U8(frameRepairReq)
	e.Str(string(owner))
	return e.Bytes()
}

func decodeRepairReqFrame(d *wire.Decoder) (types.NodeAddr, error) {
	owner := types.NodeAddr(d.Str())
	return owner, d.Err()
}
