// Package cluster is the real-socket deployment of the system: every node
// is a goroutine with its own TCP listener, tuples and provenance-query
// messages travel as length-prefixed binary frames over loopback
// connections, and provenance is maintained with any of the three schemes
// (ExSPAN, Basic, or the Section 5 equivalence-based Advanced compression).
//
// It corresponds to the paper's physical testbed of Section 6.1.3 ("actual
// sockets were used over a physical network"), complementing the
// discrete-event simulation used for the storage and bandwidth
// experiments. The DELP engine (internal/engine) and the per-scheme state
// machines (core.NodeState) are shared with the simulated runtime; only
// the transport differs.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/analysis"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/ndlog"
	"provcompress/internal/types"
)

// Config describes the cluster to boot.
type Config struct {
	// Prog is the DELP every node runs; it must validate.
	Prog *ndlog.Program
	// Funcs registers the user-defined functions the program calls.
	Funcs ndlog.FuncMap
	// Nodes lists the member addresses.
	Nodes []types.NodeAddr
	// Scheme selects the provenance maintenance scheme (core.SchemeExSPAN,
	// core.SchemeBasic, or core.SchemeAdvanced); empty selects Advanced.
	Scheme string
}

// Cluster is a set of live nodes on loopback TCP.
type Cluster struct {
	prog   *ndlog.Program
	funcs  ndlog.FuncMap
	keys   []int
	scheme string

	nodes map[types.NodeAddr]*Node

	inflight atomic.Int64
	nextQID  atomic.Uint64
	closed   atomic.Bool
}

// Node is one cluster member: a listener, a database, and the scheme's
// provenance state, all driven by its message loop.
type Node struct {
	c       *Cluster
	addr    types.NodeAddr
	ln      net.Listener
	tcpAddr string

	mu      sync.Mutex
	db      *engine.Database
	state   core.NodeState
	outputs []types.Tuple

	connMu sync.Mutex
	conns  map[types.NodeAddr]*peerConn

	pendMu  sync.Mutex
	pending map[uint64]chan *walkFrame

	wg sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// New boots the cluster: one listener per node, the program validated and
// analyzed once, every node starting with an empty database.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Prog.ValidateDELP(); err != nil {
		return nil, err
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = core.SchemeAdvanced
	}
	c := &Cluster{
		prog:   cfg.Prog,
		funcs:  cfg.Funcs,
		keys:   analysis.EquivalenceKeys(cfg.Prog),
		scheme: scheme,
		nodes:  make(map[types.NodeAddr]*Node, len(cfg.Nodes)),
	}
	for _, addr := range cfg.Nodes {
		if _, dup := c.nodes[addr]; dup {
			c.Close()
			return nil, fmt.Errorf("cluster: duplicate node %s", addr)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: listen for %s: %w", addr, err)
		}
		state, err := core.NewNodeState(scheme, c.keys)
		if err != nil {
			c.Close()
			return nil, err
		}
		n := &Node{
			c:       c,
			addr:    addr,
			ln:      ln,
			tcpAddr: ln.Addr().String(),
			db:      engine.NewDatabase(),
			state:   state,
			conns:   make(map[types.NodeAddr]*peerConn),
			pending: make(map[uint64]chan *walkFrame),
		}
		c.nodes[addr] = n
	}
	for _, n := range c.nodes {
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return c, nil
}

// Node returns a member by address, or nil.
func (c *Cluster) Node(addr types.NodeAddr) *Node { return c.nodes[addr] }

// Keys returns the equivalence-key indexes in use.
func (c *Cluster) Keys() []int { return append([]int(nil), c.keys...) }

// LoadBase inserts base tuples directly into the member databases (the
// initial configuration step).
func (c *Cluster) LoadBase(tuples []types.Tuple) error {
	for _, t := range tuples {
		n := c.nodes[t.Loc()]
		if n == nil {
			return fmt.Errorf("cluster: base tuple %s at unknown node", t)
		}
		n.mu.Lock()
		n.db.Insert(t)
		n.mu.Unlock()
	}
	return nil
}

// Inject sends a fresh input event to its origin node over TCP.
func (c *Cluster) Inject(ev types.Tuple) error {
	origin := c.nodes[ev.Loc()]
	if origin == nil {
		return fmt.Errorf("cluster: inject %s at unknown node", ev)
	}
	f := &tupleFrame{Tuple: ev, Fresh: true}
	c.inflight.Add(1)
	return origin.sendFrom(origin.addr, ev.Loc(), f.encode())
}

// InsertSlow inserts a slow-changing tuple at runtime and broadcasts sig
// (Section 5.5).
func (c *Cluster) InsertSlow(t types.Tuple) error {
	n := c.nodes[t.Loc()]
	if n == nil {
		return fmt.Errorf("cluster: slow insert %s at unknown node", t)
	}
	n.mu.Lock()
	inserted := n.db.Insert(t)
	n.mu.Unlock()
	if !inserted {
		return nil
	}
	frame := encodeSig()
	for addr := range c.nodes {
		c.inflight.Add(1)
		if err := n.sendFrom(n.addr, addr, frame); err != nil {
			return err
		}
	}
	return nil
}

// Quiesce blocks until no messages are in flight (stable for a settle
// window) or the deadline passes.
func (c *Cluster) Quiesce(deadline time.Duration) error {
	end := time.Now().Add(deadline)
	stable := 0
	for time.Now().Before(end) {
		if c.inflight.Load() == 0 {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: quiesce timeout with %d messages in flight", c.inflight.Load())
}

// Outputs returns the output tuples that arrived at one node.
func (c *Cluster) Outputs(addr types.NodeAddr) []types.Tuple {
	n := c.nodes[addr]
	if n == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]types.Tuple(nil), n.outputs...)
}

// AllOutputs returns every output across the cluster.
func (c *Cluster) AllOutputs() []types.Tuple {
	var out []types.Tuple
	for _, n := range c.nodes {
		out = append(out, c.Outputs(n.addr)...)
	}
	return out
}

// StorageBytes returns the provenance storage at one node.
func (c *Cluster) StorageBytes(addr types.NodeAddr) int64 {
	n := c.nodes[addr]
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state.StorageBytes()
}

// TotalStorageBytes sums provenance storage across members.
func (c *Cluster) TotalStorageBytes() int64 {
	var total int64
	for addr := range c.nodes {
		total += c.StorageBytes(addr)
	}
	return total
}

// Close shuts down listeners and connections.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, n := range c.nodes {
		if n.ln != nil {
			n.ln.Close()
		}
		n.connMu.Lock()
		for _, pc := range n.conns {
			pc.conn.Close()
		}
		n.connMu.Unlock()
	}
	for _, n := range c.nodes {
		n.wg.Wait()
	}
}
