// Package cluster is the real-socket deployment of the system: every node
// is a goroutine with its own TCP listener, tuples and provenance-query
// messages travel as length-prefixed binary frames over loopback
// connections, and provenance is maintained with any of the three schemes
// (ExSPAN, Basic, or the Section 5 equivalence-based Advanced compression).
//
// It corresponds to the paper's physical testbed of Section 6.1.3 ("actual
// sockets were used over a physical network"), complementing the
// discrete-event simulation used for the storage and bandwidth
// experiments. The DELP engine (internal/engine) and the per-scheme state
// machines (core.NodeState) are shared with the simulated runtime; only
// the transport differs.
//
// Unlike the paper's healthy-testbed assumption, this runtime carries a
// fault model: every link is a fault-tolerant transport (transport.go)
// with reconnection, retries, backoff and write deadlines; FaultPlan
// (faults.go) injects deterministic drops/delays/resets; and nodes can be
// crashed and revived with Node.Kill and Cluster.Restart. In-flight
// accounting is epoch-based per destination so Quiesce stays trustworthy
// when frames are lost or a member dies: every enqueued frame is settled
// exactly once — by the receiver that processes it, by the sender that
// gives up on it, or by the drain that accompanies a crash.
package cluster

import (
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/analysis"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/membership"
	"provcompress/internal/ndlog"
	"provcompress/internal/store"
	"provcompress/internal/trace"
	"provcompress/internal/types"
)

// Config describes the cluster to boot.
type Config struct {
	// Prog is the DELP every node runs; it must validate.
	Prog *ndlog.Program
	// Funcs registers the user-defined functions the program calls.
	Funcs ndlog.FuncMap
	// Nodes lists the member addresses.
	Nodes []types.NodeAddr
	// Scheme selects the provenance maintenance scheme (core.SchemeExSPAN,
	// core.SchemeBasic, or core.SchemeAdvanced); empty selects Advanced.
	Scheme string
	// Transport tunes the fault-tolerant sender; zero values pick the
	// defaults documented on TransportConfig.
	Transport TransportConfig
	// Faults, when non-nil, deterministically injects transport faults
	// (drops, delays, one-shot resets) keyed off its seed.
	Faults *FaultPlan
	// Shards is the number of per-node event-execution workers. Arriving
	// event tuples are routed to a shard by their equivalence key (the
	// Section 5.2 analysis, per event relation), so events of the same
	// class serialize while independent classes evaluate concurrently.
	// 0 picks min(GOMAXPROCS, 8); 1 serializes each node.
	Shards int
	// Tracer, when non-nil, collects distributed spans: injections, walk
	// hops, and rule firings across every node the work touches. Nil
	// disables tracing at near-zero cost.
	Tracer *trace.Collector
	// GraveyardCap bounds each node database's deleted-tuple graveyard
	// (0 = unbounded). See Database.SetGraveyardCap for the provenance
	// monotonicity tradeoff.
	GraveyardCap int
	// DataDir, when non-empty, makes every node durable: each member keeps
	// a write-ahead log plus snapshots in DataDir/<node>/ and recovers its
	// state from them at boot and on Restart. Empty keeps the cluster
	// volatile (provenance survives Kill/Restart only in RAM).
	DataDir string
	// Durability tunes the per-node stores (fsync policy, snapshot
	// cadence); ignored when DataDir is empty.
	Durability store.Options
	// Replicas is the k of k-way provenance replication: every member
	// streams its accepted records to k rendezvous-chosen peers, which
	// maintain shadow copies of its partition so distributed queries fail
	// over during an outage instead of exhausting their retry budget.
	// 0 disables replication (the pre-membership behavior).
	Replicas int
}

// Cluster is a set of live nodes on loopback TCP.
type Cluster struct {
	prog   *ndlog.Program
	funcs  ndlog.FuncMap
	keys   []int
	scheme string
	tcfg   TransportConfig
	faults *FaultPlan
	tracer *trace.Collector

	// dataDir / dopts configure durability ("" = volatile cluster).
	dataDir string
	dopts   store.Options

	// plans holds the join plans compiled from the program at boot; every
	// node evaluates through them (the deploy-time rule compiler).
	plans *engine.Plans
	// shardKeys maps each event relation to its equivalence-key attribute
	// indexes, the shard routing key for arriving event tuples.
	shardKeys map[string][]int
	nshards   int
	// stopCh stops the per-node shard workers (and unblocks readers
	// waiting to enqueue) when the cluster closes.
	stopCh chan struct{}

	// graveyardCap is remembered from Config so members added at runtime
	// (Join) get the same retention bound as boot-time members.
	graveyardCap int
	// replicas is the k of k-way provenance replication (Config.Replicas).
	replicas int

	// nodes is copy-on-write: readers load the current map wholesale from
	// the atomic (no lock on any hot path), and the rare mutation — Join
	// adding a member — swaps in a fresh copy under nodesMu. Nodes are
	// never removed: a departed member stays in the map dead, exactly like
	// a killed one, so late frames addressed to it settle normally.
	nodesMu  sync.Mutex
	nodesVal atomic.Value // of map[types.NodeAddr]*Node

	// membStats aggregates the membership-subsystem counters
	// (membership.go); hot paths touch it only when the feature is active.
	memb membStats

	// In-flight accounting: inflight is the global count Quiesce watches;
	// destCount/destEpoch track per-destination counts so a crash can
	// drain exactly the frames addressed to the dead member (the epoch
	// bump invalidates their later settles).
	inflight  atomic.Int64
	acctMu    sync.Mutex
	destCount map[types.NodeAddr]int64
	destEpoch map[types.NodeAddr]uint64

	idleMu sync.Mutex
	idleCh chan struct{}

	nextQID atomic.Uint64
	nextHID atomic.Uint64
	closed  atomic.Bool

	// eventHook, when set, is called after every accepted state change
	// (Inject, InsertSlow, DeleteSlow, provenance landing on an output)
	// with the invalidation keys the change touched (invalkey.go). The
	// serving layer uses it to evict exactly the cached query results
	// that depend on those keys.
	eventHook atomic.Value // of func([]InvalKey)
}

// Node is one cluster member: a listener, a database, and the scheme's
// provenance state, all driven by its message loop.
type Node struct {
	c    *Cluster
	addr types.NodeAddr

	// addrMu guards the listener identity, which changes on Restart.
	addrMu  sync.Mutex
	ln      net.Listener
	tcpAddr string

	alive       atomic.Bool
	incarnation atomic.Uint64

	mu      sync.Mutex
	db      *engine.Database
	state   core.NodeState
	outputs []types.Tuple

	// dur is set at boot when the cluster has a data dir; durMu then
	// serializes every {WAL append + apply} pair so log order equals apply
	// order (see durability.go). dstore is only swapped on Restart, under
	// durMu, with the node dead.
	dur       bool
	durMu     sync.Mutex
	dstore    *store.NodeStore
	durErrors atomic.Int64

	transMu sync.Mutex
	trans   map[types.NodeAddr]*transport

	// linkMu guards the per-peer byte attribution; counters persist
	// across Kill/Restart (transports do not).
	linkMu sync.Mutex
	links  map[types.NodeAddr]*linkBytes

	inMu    sync.Mutex
	inConns map[net.Conn]struct{}

	// seqMu guards the per-sender delivery trackers used to suppress
	// redelivered duplicates.
	seqMu   sync.Mutex
	lastSeq map[types.NodeAddr]*seqTracker

	// shardCh holds the per-shard work queues; each has a dedicated
	// worker goroutine that runs the DELP pipeline step for its events.
	shardCh []chan shardWork

	pendMu  sync.Mutex
	pending map[uint64]chan *walkFrame

	// Membership state (membership.go): the node's copy of the gossiped
	// cluster view, its own announcement epoch, the cached replica target
	// set, and the partition copies it holds for other members (replica
	// shadows while the owner is alive, handed-off partitions after the
	// owner left).
	viewMu         sync.Mutex
	view           *membership.View
	downLeft       atomic.Int64 // members not Alive() in view; gates hot-path view checks
	memberEpoch    atomic.Uint64
	replTargets    atomic.Value // of []types.NodeAddr
	replVersion    uint64       // view version replTargets was computed at (under viewMu)
	partsMu        sync.Mutex
	parts          map[types.NodeAddr]*partition
	ackMu          sync.Mutex
	handoffWaits   map[uint64]chan struct{}
	handoffsActive atomic.Int64 // acked handoffs in flight; Ready gates on zero

	stats transportStats

	wg sync.WaitGroup
}

// seqTracker is one sender's delivery history: the incarnation of its
// newest stream and a sliding window of delivered seqs.
type seqTracker struct {
	inc    uint64
	maxSeq uint64
	seen   map[uint64]struct{}
}

// New boots the cluster: one listener per node, the program validated and
// analyzed once, every node starting with an empty database.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Prog.ValidateDELP(); err != nil {
		return nil, err
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = core.SchemeAdvanced
	}
	graph := analysis.BuildGraph(cfg.Prog)
	shardKeys := make(map[string][]int)
	for _, r := range cfg.Prog.Rules {
		if _, ok := shardKeys[r.Event.Rel]; !ok {
			shardKeys[r.Event.Rel] = graph.EquivalenceKeysFor(r.Event.Rel)
		}
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
		if nshards > 8 {
			nshards = 8
		}
	}
	c := &Cluster{
		prog:         cfg.Prog,
		funcs:        cfg.Funcs,
		keys:         graph.EquivalenceKeys(),
		scheme:       scheme,
		tcfg:         cfg.Transport.withDefaults(),
		faults:       cfg.Faults,
		tracer:       cfg.Tracer,
		dataDir:      cfg.DataDir,
		dopts:        cfg.Durability,
		plans:        engine.CompileProgram(cfg.Prog),
		shardKeys:    shardKeys,
		nshards:      nshards,
		graveyardCap: cfg.GraveyardCap,
		replicas:     cfg.Replicas,
		stopCh:       make(chan struct{}),
		destCount:    make(map[types.NodeAddr]int64, len(cfg.Nodes)),
		destEpoch:    make(map[types.NodeAddr]uint64, len(cfg.Nodes)),
	}
	nodes := make(map[types.NodeAddr]*Node, len(cfg.Nodes))
	c.nodesVal.Store(nodes)
	// Every boot member starts with the same static view: everyone Up at
	// epoch 1. A static view needs no gossip — membership frames only flow
	// when something changes — so a healthy fixed-membership run stays
	// byte-identical to the pre-membership transport.
	bootView := membership.NewView()
	for _, addr := range cfg.Nodes {
		bootView.Set(membership.Member{Addr: addr, Epoch: 1, State: membership.Up})
	}
	for _, addr := range cfg.Nodes {
		if _, dup := nodes[addr]; dup {
			c.Close()
			return nil, fmt.Errorf("cluster: duplicate node %s", addr)
		}
		n, err := c.newNode(addr, bootView.Clone())
		if err != nil {
			c.Close()
			return nil, err
		}
		nodes[addr] = n
	}
	for _, n := range nodes {
		c.startNode(n)
	}
	return c, nil
}

// newNode builds one member — listener, database, scheme state, durable
// store when configured — without starting its goroutines. The caller
// registers it in the nodes map and calls startNode.
func (c *Cluster) newNode(addr types.NodeAddr, view *membership.View) (*Node, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: listen for %s: %w", addr, err)
	}
	state, err := core.NewNodeState(c.scheme, c.keys)
	if err != nil {
		ln.Close()
		return nil, err
	}
	n := &Node{
		c:            c,
		addr:         addr,
		ln:           ln,
		tcpAddr:      ln.Addr().String(),
		db:           engine.NewDatabase(),
		state:        state,
		trans:        make(map[types.NodeAddr]*transport),
		links:        make(map[types.NodeAddr]*linkBytes),
		inConns:      make(map[net.Conn]struct{}),
		lastSeq:      make(map[types.NodeAddr]*seqTracker),
		pending:      make(map[uint64]chan *walkFrame),
		view:         view,
		parts:        make(map[types.NodeAddr]*partition),
		handoffWaits: make(map[uint64]chan struct{}),
	}
	if row, ok := view.Get(addr); ok {
		n.memberEpoch.Store(row.Epoch)
	}
	n.refreshViewLocked(false)
	if c.graveyardCap > 0 {
		n.db.SetGraveyardCap(c.graveyardCap)
	}
	if c.dataDir != "" {
		// Recover before anything runs: the restore/replay callbacks
		// rebuild db, state, and outputs with the node still quiescent.
		n.dur = true
		if err := c.openStore(n); err != nil {
			ln.Close()
			return nil, err
		}
	}
	n.alive.Store(true)
	return n, nil
}

// startNode launches a member's shard workers and accept loop.
func (c *Cluster) startNode(n *Node) {
	n.shardCh = make([]chan shardWork, c.nshards)
	for i := range n.shardCh {
		ch := make(chan shardWork, shardQueueDepth)
		n.shardCh[i] = ch
		n.wg.Add(1)
		go n.shardWorker(ch)
	}
	n.wg.Add(1)
	go n.acceptLoop(n.ln)
}

// nodeMap returns the current copy-on-write member map. The map must not
// be mutated; Join swaps in a new one.
func (c *Cluster) nodeMap() map[types.NodeAddr]*Node {
	return c.nodesVal.Load().(map[types.NodeAddr]*Node)
}

// node returns a member by address, or nil.
func (c *Cluster) node(addr types.NodeAddr) *Node { return c.nodeMap()[addr] }

// addNode registers a runtime-joined member in a fresh copy of the map.
func (c *Cluster) addNode(n *Node) error {
	c.nodesMu.Lock()
	defer c.nodesMu.Unlock()
	old := c.nodeMap()
	if _, dup := old[n.addr]; dup {
		return fmt.Errorf("cluster: member %s already exists", n.addr)
	}
	next := make(map[types.NodeAddr]*Node, len(old)+1)
	for a, m := range old {
		next[a] = m
	}
	next[n.addr] = n
	c.nodesVal.Store(next)
	return nil
}

// shardQueueDepth bounds each shard's pending-event queue; a full queue
// backpressures the TCP reader that is enqueueing (which in turn
// backpressures the sender's transport), bounding per-node memory.
const shardQueueDepth = 256

// shardOf routes an event tuple to a shard: events with equal values at
// their relation's equivalence-key attributes — the attributes that
// determine the shape of the provenance their execution generates
// (Theorem 1) — always land on the same shard, so per-class provenance
// chains observe a serial order while independent classes run
// concurrently. Relations without rules (outputs) hash over the whole
// tuple for spread.
func (c *Cluster) shardOf(t types.Tuple) int {
	if c.nshards == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(t.Rel)) //nolint:errcheck // fnv never fails
	var buf [64]byte
	if keys, ok := c.shardKeys[t.Rel]; ok {
		for _, i := range keys {
			if i < len(t.Args) {
				h.Write(t.Args[i].AppendEncode(buf[:0])) //nolint:errcheck
			}
		}
	} else {
		for _, a := range t.Args {
			h.Write(a.AppendEncode(buf[:0])) //nolint:errcheck
		}
	}
	return int(h.Sum32() % uint32(c.nshards))
}

// Shards returns the per-node shard count in use.
func (c *Cluster) Shards() int { return c.nshards }

// Node returns a member by address, or nil.
func (c *Cluster) Node(addr types.NodeAddr) *Node { return c.node(addr) }

// SetEventHook installs fn to run after every accepted state change
// (successful Inject, InsertSlow, DeleteSlow, or provenance landing on
// an output tuple) with the invalidation keys the change touched. Pass
// nil to clear. The hook must be cheap and non-blocking; it runs on the
// goroutine that applied the change — for output landings that is a
// shard worker, so the hook must also be safe for concurrent calls.
func (c *Cluster) SetEventHook(fn func(keys []InvalKey)) {
	if fn == nil {
		fn = func([]InvalKey) {}
	}
	c.eventHook.Store(fn)
}

// fireEventHook invokes the installed hook, if any, with the touched
// keys.
func (c *Cluster) fireEventHook(keys ...InvalKey) {
	if fn, ok := c.eventHook.Load().(func([]InvalKey)); ok {
		fn(keys)
	}
}

// Keys returns the equivalence-key indexes in use.
func (c *Cluster) Keys() []int { return append([]int(nil), c.keys...) }

// listenAddr returns the node's current TCP address (it changes on
// Restart, so dialers read it per attempt).
func (n *Node) listenAddr() string {
	n.addrMu.Lock()
	defer n.addrMu.Unlock()
	return n.tcpAddr
}

// acctEnqueue counts one frame bound for `to` and returns the destination
// epoch the frame must carry for its eventual settle.
func (c *Cluster) acctEnqueue(to types.NodeAddr) uint64 {
	c.acctMu.Lock()
	defer c.acctMu.Unlock()
	c.destCount[to]++
	c.inflight.Add(1)
	return c.destEpoch[to]
}

// acctSettle retires one frame bound for `to` that was counted under
// epoch. A frame from a drained epoch (the destination crashed since) was
// already retired by acctDrain, so it is ignored — this is what keeps a
// lost-and-retried frame from being settled twice.
func (c *Cluster) acctSettle(to types.NodeAddr, epoch uint64) {
	c.acctMu.Lock()
	settled := c.destEpoch[to] == epoch && c.destCount[to] > 0
	if settled {
		c.destCount[to]--
	}
	c.acctMu.Unlock()
	if settled && c.inflight.Add(-1) == 0 {
		c.kickIdle()
	}
}

// acctDrain retires every frame still counted against `to` (its listener
// and sockets are gone, so none of them will be processed) and bumps the
// epoch so stragglers do not double-settle.
func (c *Cluster) acctDrain(to types.NodeAddr) {
	c.acctMu.Lock()
	n := c.destCount[to]
	c.destCount[to] = 0
	c.destEpoch[to]++
	c.acctMu.Unlock()
	if n > 0 && c.inflight.Add(-n) == 0 {
		c.kickIdle()
	}
}

// idleKick returns a channel closed the next time in-flight reaches zero.
// Callers must obtain the channel before re-reading the counter to avoid
// a missed wakeup.
func (c *Cluster) idleKick() <-chan struct{} {
	c.idleMu.Lock()
	defer c.idleMu.Unlock()
	if c.idleCh == nil {
		c.idleCh = make(chan struct{})
	}
	return c.idleCh
}

func (c *Cluster) kickIdle() {
	c.idleMu.Lock()
	if c.idleCh != nil {
		close(c.idleCh)
		c.idleCh = nil
	}
	c.idleMu.Unlock()
}

// LoadBase inserts base tuples directly into the member databases (the
// initial configuration step).
func (c *Cluster) LoadBase(tuples []types.Tuple) error {
	for _, t := range tuples {
		n := c.node(t.Loc())
		if n == nil {
			return fmt.Errorf("cluster: base tuple %s at unknown node", t)
		}
		n.insertDurable(t)
	}
	return nil
}

// Inject sends a fresh input event to its origin node over TCP. The
// in-flight accounting happens inside the send path, so a failed enqueue
// leaks nothing and Quiesce stays balanced.
func (c *Cluster) Inject(ev types.Tuple) error {
	_, err := c.InjectTraced(ev)
	return err
}

// InjectTraced is Inject returning the trace ID of the derivation's span
// tree (zero when the cluster has no tracer). The injection span is the
// tree's root; every downstream derivation step on every node parents
// under it through the frame trace headers.
func (c *Cluster) InjectTraced(ev types.Tuple) (trace.TraceID, error) {
	origin := c.node(ev.Loc())
	if origin == nil {
		return 0, fmt.Errorf("cluster: inject %s at unknown node", ev)
	}
	sp := c.tracer.StartSpan(trace.SpanContext{}, string(ev.Loc()), "inject", "inject "+ev.Rel)
	sp.SetAttr("scheme", c.scheme)
	f := &tupleFrame{Tuple: ev, Fresh: true, Trace: sp.Context()}
	err := origin.sendOwned(ev.Loc(), f.encode(), classBase, 0)
	sp.End()
	if err != nil {
		return 0, err
	}
	c.fireEventHook(c.EventClassKey(ev))
	return sp.Context().Trace, nil
}

// Tracer returns the cluster's span collector (nil when tracing is off).
func (c *Cluster) Tracer() *trace.Collector { return c.tracer }

// InsertSlow inserts a slow-changing tuple at runtime and broadcasts sig
// (Section 5.5).
func (c *Cluster) InsertSlow(t types.Tuple) error {
	n := c.node(t.Loc())
	if n == nil {
		return fmt.Errorf("cluster: slow insert %s at unknown node", t)
	}
	if !n.insertDurable(t) {
		return nil
	}
	frame := encodeSig()
	for addr := range c.nodeMap() {
		// Sig broadcasts are provenance maintenance (Section 5.5).
		if err := n.send(addr, frame, classProv, 0); err != nil {
			return err
		}
	}
	c.fireEventHook(VIDInvalKey(types.HashTuple(t)))
	return nil
}

// DeleteSlow removes a slow-changing tuple at runtime. Deletion does not
// invalidate stored provenance (Section 5.5: provenance is monotone), so
// no sig broadcast is needed and the tuple's content stays resolvable via
// the database graveyard for later provenance queries. The secondary join
// indexes are kept consistent by the delete itself.
func (c *Cluster) DeleteSlow(t types.Tuple) error {
	n := c.node(t.Loc())
	if n == nil {
		return fmt.Errorf("cluster: slow delete %s at unknown node", t)
	}
	if ok, evicted := n.deleteDurable(t); ok {
		// The deleted tuple's VID key evicts cached trees that joined
		// against it; graveyard-cap evictions additionally invalidate any
		// tree that resolved a now-unresolvable VID.
		keys := append(vidKeysOf(evicted), VIDInvalKey(types.HashTuple(t)))
		c.fireEventHook(keys...)
	}
	return nil
}

// quiesceSettle is how long the in-flight counter must stay at zero
// before Quiesce declares the cluster settled (the old 3×2ms poll
// window, kept as a plain re-check after the idle notification).
const quiesceSettle = 6 * time.Millisecond

// Quiesce blocks until no messages are in flight (stable for a settle
// window) or the deadline passes. It waits on the idle notification the
// accounting raises when the counter hits zero instead of busy-polling.
func (c *Cluster) Quiesce(deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for {
		kick := c.idleKick()
		if c.inflight.Load() == 0 {
			remain := time.Until(end)
			if remain <= 0 {
				break
			}
			wait := quiesceSettle
			if wait > remain {
				wait = remain
			}
			time.Sleep(wait)
			if c.inflight.Load() == 0 {
				return nil
			}
			continue
		}
		remain := time.Until(end)
		if remain <= 0 {
			break
		}
		timer := time.NewTimer(remain)
		select {
		case <-kick:
			timer.Stop()
		case <-timer.C:
		}
	}
	c.acctMu.Lock()
	stuck := make(map[types.NodeAddr]int64)
	for to, cnt := range c.destCount {
		if cnt > 0 {
			stuck[to] = cnt
		}
	}
	c.acctMu.Unlock()
	return fmt.Errorf("cluster: quiesce timeout with %d messages in flight (per dest: %v)", c.inflight.Load(), stuck)
}

// Outputs returns the output tuples that arrived at one node.
func (c *Cluster) Outputs(addr types.NodeAddr) []types.Tuple {
	n := c.node(addr)
	if n == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]types.Tuple(nil), n.outputs...)
}

// AllOutputs returns every output across the cluster.
func (c *Cluster) AllOutputs() []types.Tuple {
	var out []types.Tuple
	for _, n := range c.nodeMap() {
		out = append(out, c.Outputs(n.addr)...)
	}
	return out
}

// StorageBytes returns the provenance storage at one node.
func (c *Cluster) StorageBytes(addr types.NodeAddr) int64 {
	n := c.node(addr)
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state.StorageBytes()
}

// TotalStorageBytes sums provenance storage across members.
func (c *Cluster) TotalStorageBytes() int64 {
	var total int64
	for addr := range c.nodeMap() {
		total += c.StorageBytes(addr)
	}
	return total
}

// AdvancedStats sums the Advanced scheme's sig-reset and deferred-landing
// counters across members. Zero for the other schemes, which have neither
// path.
func (c *Cluster) AdvancedStats() core.AdvancedStats {
	var total core.AdvancedStats
	for _, n := range c.nodeMap() {
		n.mu.Lock()
		if adv, ok := n.state.(*core.AdvancedState); ok {
			total.Add(adv.Stats())
		}
		n.mu.Unlock()
	}
	return total
}

// TransportStats sums the transport counters across members.
func (c *Cluster) TransportStats() TransportStats {
	var s TransportStats
	for _, n := range c.nodeMap() {
		s.accumulate(&n.stats)
		n.addLinkBytes(&s)
	}
	return s
}

// TransportStats snapshots this node's transport counters.
func (n *Node) TransportStats() TransportStats {
	var s TransportStats
	s.accumulate(&n.stats)
	n.addLinkBytes(&s)
	return s
}

// linkBytesTo returns (creating on first use) the persistent byte
// counters for the directed link to a peer.
func (n *Node) linkBytesTo(to types.NodeAddr) *linkBytes {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	lb := n.links[to]
	if lb == nil {
		lb = &linkBytes{}
		n.links[to] = lb
	}
	return lb
}

// addLinkBytes folds the node's per-link class counters into a snapshot.
func (n *Node) addLinkBytes(s *TransportStats) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	for _, lb := range n.links {
		s.BytesBase += lb.base.Load()
		s.BytesProv += lb.prov.Load()
		s.BytesQuery += lb.query.Load()
		s.BytesBatch += lb.batch.Load()
	}
}

// LinkByteStats is the per-directed-link byte attribution, the real
// runtime's analogue of the netsim per-link LinkStats.
type LinkByteStats struct {
	From, To types.NodeAddr
	Total    int64
	Base     int64
	Prov     int64
	Query    int64
	Batch    int64
}

// LinkByteStats snapshots every directed link's byte attribution,
// sorted by (From, To) so scrapes and logs are stable.
func (c *Cluster) LinkByteStats() []LinkByteStats {
	var out []LinkByteStats
	for _, n := range c.nodeMap() {
		n.linkMu.Lock()
		for to, lb := range n.links {
			out = append(out, LinkByteStats{
				From:  n.addr,
				To:    to,
				Total: lb.total.Load(),
				Base:  lb.base.Load(),
				Prov:  lb.prov.Load(),
				Query: lb.query.Load(),
				Batch: lb.batch.Load(),
			})
		}
		n.linkMu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// GraveyardSize sums the deleted-tuple graveyard sizes across members —
// the gauge the serving layer exports.
func (c *Cluster) GraveyardSize() int {
	total := 0
	for _, n := range c.nodeMap() {
		total += n.db.GraveyardSize()
	}
	return total
}

// Alive reports whether the node is up (not killed).
func (n *Node) Alive() bool { return n.alive.Load() }

// Kill simulates a node crash: the listener and every socket close, the
// outbound queues drain, and every frame still counted against this node
// is retired so Quiesce cannot wedge on messages a dead member will never
// process. Provenance state and the database survive (the paper treats
// provenance tables as durable storage); in-flight messages do not,
// beyond what peer retry budgets recover after a Restart.
func (n *Node) Kill() {
	if !n.alive.CompareAndSwap(true, false) {
		return
	}
	n.addrMu.Lock()
	ln := n.ln
	n.addrMu.Unlock()
	ln.Close()
	n.inMu.Lock()
	for conn := range n.inConns {
		conn.Close()
	}
	n.inMu.Unlock()
	n.stopTransports()
	n.c.acctDrain(n.addr)
}

// stopTransports halts every outbound link and forgets it; frames still
// queued are drained and settled by the writers.
func (n *Node) stopTransports() {
	n.transMu.Lock()
	for _, t := range n.trans {
		t.halt()
	}
	n.trans = make(map[types.NodeAddr]*transport)
	n.transMu.Unlock()
}

// Restart revives a killed node on a fresh listener (and port). Peers
// re-dial lazily through their transports; the bumped incarnation resets
// the receivers' duplicate filters for this node's fresh send streams.
func (c *Cluster) Restart(addr types.NodeAddr) error {
	n := c.node(addr)
	if n == nil {
		return fmt.Errorf("cluster: restart unknown node %s", addr)
	}
	if c.closed.Load() {
		return fmt.Errorf("cluster: restart %s on closed cluster", addr)
	}
	if n.alive.Load() {
		return fmt.Errorf("cluster: restart live node %s", addr)
	}
	if n.durable() {
		// A durable restart is a real recovery: the crashed in-memory state
		// is discarded and rebuilt from the snapshot + WAL tail before the
		// node accepts traffic again.
		if err := c.recoverForRestart(n); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cluster: relisten for %s: %w", addr, err)
	}
	n.addrMu.Lock()
	n.ln = ln
	n.tcpAddr = ln.Addr().String()
	n.addrMu.Unlock()
	n.incarnation.Add(1)
	n.alive.Store(true)
	n.wg.Add(1)
	go n.acceptLoop(ln)
	n.announceRestart()
	return nil
}

// Close shuts down listeners, connections, shard workers, and writer
// goroutines.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, n := range c.nodeMap() {
		n.Kill()
	}
	// Stop the shard workers after the sockets are gone: this also
	// unblocks any reader still trying to enqueue into a full shard, and
	// whatever stays queued was already retired by the kill drains.
	close(c.stopCh)
	for _, n := range c.nodeMap() {
		n.wg.Wait()
	}
	// With every worker stopped, flush and close the durable stores.
	for _, n := range c.nodeMap() {
		n.durMu.Lock()
		if n.dstore != nil {
			n.dstore.Close() //nolint:errcheck // shutdown path
			n.dstore = nil
		}
		n.durMu.Unlock()
	}
}
