package cluster

import (
	"fmt"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/netsim"
	"provcompress/internal/sim"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

func pkt(loc, src, dst, dt string) types.Tuple {
	return types.NewTuple("packet",
		types.String(loc), types.String(src), types.String(dst), types.String(dt))
}

func recvT(loc, src, dst, dt string) types.Tuple {
	return types.NewTuple("recv",
		types.String(loc), types.String(src), types.String(dst), types.String(dt))
}

func fig2Cluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: []types.NodeAddr{"n1", "n2", "n3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(topo.Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterForwardingOverTCP(t *testing.T) {
	c := fig2Cluster(t)
	ev := pkt("n1", "n1", "n3", "data")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	outs := c.Outputs("n3")
	if len(outs) != 1 || !outs[0].Equal(recvT("n3", "n1", "n3", "data")) {
		t.Fatalf("outputs = %v", outs)
	}
	if c.TotalStorageBytes() <= 0 {
		t.Error("no provenance stored")
	}
}

func TestClusterQueryMatchesSimulation(t *testing.T) {
	// Ground truth from the simulated Recorder.
	var sched sim.Scheduler
	net := netsim.New(&sched, topo.Fig2())
	rec := core.NewRecorder()
	rrt := engine.NewRuntime(net, apps.Forwarding(), apps.Funcs(), rec)
	if err := rrt.LoadBase(topo.Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	evData := pkt("n1", "n1", "n3", "data")
	evURL := pkt("n1", "n1", "n3", "url")
	rrt.InjectAt(0, evData)
	rrt.InjectAt(time.Millisecond, evURL)
	rrt.Run()

	// The cluster transport supports all three schemes; each must return
	// the exact simulated trees over the real wire.
	for _, scheme := range []string{core.SchemeExSPAN, core.SchemeBasic, core.SchemeAdvanced} {
		t.Run(scheme, func(t *testing.T) {
			c, err := New(Config{
				Prog:   apps.Forwarding(),
				Funcs:  apps.Funcs(),
				Nodes:  []types.NodeAddr{"n1", "n2", "n3"},
				Scheme: scheme,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.LoadBase(topo.Fig2Routes()); err != nil {
				t.Fatal(err)
			}
			if err := c.Inject(evData); err != nil {
				t.Fatal(err)
			}
			if err := c.Quiesce(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			if err := c.Inject(evURL); err != nil {
				t.Fatal(err)
			}
			if err := c.Quiesce(5 * time.Second); err != nil {
				t.Fatal(err)
			}

			for _, ev := range []types.Tuple{evData, evURL} {
				out := recvT("n3", "n1", "n3", ev.Args[3].AsString())
				res, err := c.Query(out, types.HashTuple(ev), 5*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Trees) != 1 {
					t.Fatalf("trees = %d for %v", len(res.Trees), out)
				}
				want := rec.TreesFor(types.HashTuple(out), types.HashTuple(ev))
				if len(want) != 1 || !res.Trees[0].Equal(want[0]) {
					t.Errorf("cluster tree differs from simulation:\ngot:\n%s\nwant:\n%s", res.Trees[0], want[0])
				}
				if res.Latency <= 0 || res.Hops == 0 {
					t.Errorf("latency = %v, hops = %d", res.Latency, res.Hops)
				}
			}

			// Storage ordering across schemes is covered by the simulated
			// experiments; here just confirm the scheme stored something.
			if c.TotalStorageBytes() <= 0 {
				t.Error("no provenance stored")
			}
		})
	}
}

func TestClusterStorageOrderingAcrossSchemes(t *testing.T) {
	// The paper's headline inequality, measured over the real wire:
	// Advanced < Basic < ExSPAN for a shared-class workload.
	totals := make(map[string]int64)
	for _, scheme := range []string{core.SchemeExSPAN, core.SchemeBasic, core.SchemeAdvanced} {
		g := topo.Line(5, "n")
		c, err := New(Config{Prog: apps.Forwarding(), Funcs: apps.Funcs(),
			Nodes: g.Nodes(), Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
			c.Close()
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			if err := c.Inject(pkt("n0", "n0", "n4", fmt.Sprintf("p%d", i))); err != nil {
				c.Close()
				t.Fatal(err)
			}
		}
		if err := c.Quiesce(10 * time.Second); err != nil {
			c.Close()
			t.Fatal(err)
		}
		totals[scheme] = c.TotalStorageBytes()
		c.Close()
	}
	if !(totals[core.SchemeAdvanced] < totals[core.SchemeBasic] &&
		totals[core.SchemeBasic] < totals[core.SchemeExSPAN]) {
		t.Errorf("storage ordering violated over TCP: %v", totals)
	}
}

func TestClusterUnknownScheme(t *testing.T) {
	if _, err := New(Config{
		Prog:   apps.Forwarding(),
		Nodes:  []types.NodeAddr{"a", "b"},
		Scheme: "zstd",
	}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := New(Config{
		Prog:   apps.Forwarding(),
		Nodes:  []types.NodeAddr{"a", "b"},
		Scheme: core.SchemeAdvancedInterClass,
	}); err == nil {
		t.Error("inter-class variant should be rejected on the cluster transport")
	}
}

func TestClusterCompressionSharing(t *testing.T) {
	c := fig2Cluster(t)
	// Ten packets of the same class: the chain is stored once.
	for i := 0; i < 10; i++ {
		if err := c.Inject(pkt("n1", "n1", "n3", fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Quiesce(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	n3 := c.Node("n3")
	n3.mu.Lock()
	rows := n3.state.ProvRows(types.HashTuple(recvT("n3", "n1", "n3", "p0")), types.ZeroID)
	n3.mu.Unlock()
	if len(rows) != 1 {
		t.Fatalf("prov rows for p0 = %d", len(rows))
	}
	// Compression: storage stays sublinear in the packet count.
	perPacket := float64(c.TotalStorageBytes()) / 10
	if perPacket > 400 {
		t.Errorf("storage per packet = %.0f bytes; compression not effective", perPacket)
	}
}

func TestClusterSlowUpdateSig(t *testing.T) {
	c, err := New(Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: []types.NodeAddr{"n1", "n2", "n3", "n4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(topo.Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadBase([]types.Tuple{
		types.NewTuple("route", types.String("n4"), types.String("n3"), types.String("n3")),
	}); err != nil {
		t.Fatal(err)
	}

	before := pkt("n1", "n1", "n3", "before")
	if err := c.Inject(before); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Reroute through n4: delete old route locally, insert the new one
	// (sig broadcast resets htequi cluster-wide).
	n1 := c.Node("n1")
	n1.mu.Lock()
	n1.db.Delete(types.NewTuple("route", types.String("n1"), types.String("n3"), types.String("n2")))
	n1.mu.Unlock()
	if err := c.InsertSlow(types.NewTuple("route",
		types.String("n1"), types.String("n3"), types.String("n4"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	after := pkt("n1", "n1", "n3", "after")
	if err := c.Inject(after); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	res, err := c.Query(recvT("n3", "n1", "n3", "after"), types.HashTuple(after), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 1 {
		t.Fatalf("trees = %d", len(res.Trees))
	}
	// The new tree crosses n4.
	if !res.Trees[0].Child.Child.Output.Equal(pkt("n4", "n1", "n3", "after")) {
		t.Errorf("tree does not cross n4:\n%s", res.Trees[0])
	}
	// The old tree is still queryable.
	resOld, err := c.Query(recvT("n3", "n1", "n3", "before"), types.HashTuple(before), 5*time.Second)
	if err != nil || len(resOld.Trees) != 1 {
		t.Fatalf("old query: %v, %d trees", err, len(resOld.Trees))
	}
}

func TestClusterQueryUnknownTuple(t *testing.T) {
	c := fig2Cluster(t)
	res, err := c.Query(recvT("n3", "zz", "n3", "ghost"), types.ZeroID, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 0 {
		t.Errorf("trees = %d", len(res.Trees))
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := New(Config{Prog: apps.Forwarding(), Nodes: nil}); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := New(Config{Prog: apps.Forwarding(),
		Nodes: []types.NodeAddr{"a", "a"}}); err == nil {
		t.Error("duplicate node accepted")
	}
	c := fig2Cluster(t)
	if err := c.Inject(pkt("ghost", "a", "b", "x")); err == nil {
		t.Error("inject at unknown node accepted")
	}
	if err := c.LoadBase([]types.Tuple{types.NewTuple("route", types.String("ghost"))}); err == nil {
		t.Error("base tuple at unknown node accepted")
	}
	if _, err := c.Query(recvT("ghost", "a", "b", "x"), types.ZeroID, time.Second); err == nil {
		t.Error("query at unknown node accepted")
	}
}

func TestClusterConcurrentInjectionSoak(t *testing.T) {
	// Many packets of several classes injected back-to-back without
	// quiescing in between: messages of different executions interleave on
	// the wire; the pending-output path must keep every association intact.
	g := topo.Line(6, "n")
	c, err := New(Config{Prog: apps.Forwarding(), Funcs: apps.Funcs(), Nodes: g.Nodes()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	const perClass = 20
	dsts := []string{"n5", "n4", "n3"}
	var evs []types.Tuple
	for _, d := range dsts {
		for i := 0; i < perClass; i++ {
			evs = append(evs, pkt("n0", "n0", d, fmt.Sprintf("%s-%d", d, i)))
		}
	}
	for _, ev := range evs {
		if err := c.Inject(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range dsts {
		total += len(c.Outputs(types.NodeAddr(d)))
	}
	if total != len(evs) {
		t.Fatalf("outputs = %d, want %d", total, len(evs))
	}
	// Every packet's provenance is queryable and has the right event.
	for _, ev := range evs {
		out := types.NewTuple("recv", ev.Args[2], ev.Args[1], ev.Args[2], ev.Args[3])
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Trees) != 1 || !res.Trees[0].EventOf().Equal(ev) {
			t.Fatalf("query %v: %d trees", out, len(res.Trees))
		}
	}
	// Compression held: ~one chain per class.
	perPacket := float64(c.TotalStorageBytes()) / float64(len(evs))
	if perPacket > 400 {
		t.Errorf("storage per packet = %.0f bytes", perPacket)
	}
}

func TestClusterDNSOverTCP(t *testing.T) {
	tree := topo.GenDNSTree(topo.DNSTreeConfig{NumServers: 10, MaxDepth: 4, Seed: 2})
	clients := tree.AttachClients(1)
	urls := tree.PickURLs(3)
	nodes := append([]types.NodeAddr{}, tree.Servers...)
	nodes = append(nodes, clients...)

	c, err := New(Config{Prog: apps.DNS(), Funcs: apps.Funcs(), Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(tree.NameServerTuples(clients)); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadBase(topo.AddressRecordTuples(urls)); err != nil {
		t.Fatal(err)
	}

	ev := types.NewTuple("url",
		types.String(string(clients[0])), types.String(urls[0].URL), types.Int(1))
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	outs := c.Outputs(clients[0])
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
	if outs[0].Args[2].AsString() != urls[0].IP {
		t.Errorf("resolved to %v, want %s", outs[0], urls[0].IP)
	}
	res, err := c.Query(outs[0], types.HashTuple(ev), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 1 {
		t.Fatalf("trees = %d", len(res.Trees))
	}
	if !res.Trees[0].EventOf().Equal(ev) {
		t.Errorf("event = %v", res.Trees[0].EventOf())
	}
}
