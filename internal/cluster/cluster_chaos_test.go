package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// forwardingOutcome runs the forwarding DELP over a 4-node chain under an
// optional fault plan and returns the sorted outputs plus the provenance
// tree of every injected event, so a chaos run can be compared
// byte-for-byte against the fault-free run.
func forwardingOutcome(t *testing.T, plan *FaultPlan, tcfg TransportConfig) (outputs []string, trees map[string]string, stats TransportStats) {
	t.Helper()
	g := topo.Line(4, "n")
	c, err := New(Config{
		Prog:      apps.Forwarding(),
		Funcs:     apps.Funcs(),
		Nodes:     g.Nodes(),
		Transport: tcfg,
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	var evs []types.Tuple
	for _, dst := range []string{"n3", "n2"} {
		for i := 0; i < 5; i++ {
			evs = append(evs, pkt("n0", "n0", dst, fmt.Sprintf("%s-p%d", dst, i)))
		}
	}
	for _, ev := range evs {
		if err := c.Inject(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, out := range c.AllOutputs() {
		outputs = append(outputs, out.String())
	}
	sort.Strings(outputs)
	trees = make(map[string]string, len(evs))
	for _, ev := range evs {
		out := types.NewTuple("recv", ev.Args[2], ev.Args[1], ev.Args[2], ev.Args[3])
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil {
			t.Fatalf("query %v: %v", out, err)
		}
		if len(res.Trees) != 1 {
			t.Fatalf("query %v: %d trees", out, len(res.Trees))
		}
		trees[ev.String()] = res.Trees[0].String()
	}
	return outputs, trees, c.TransportStats()
}

// TestChaosForwardingDropDelayReset is the headline chaos property: under
// a seeded plan of frame drops, write stalls, and one-shot connection
// resets, the forwarding DELP converges to exactly the fault-free outputs
// and every provenance query returns exactly the fault-free tree — the
// transport's retry/backoff/reconnect machinery absorbs every injected
// fault.
func TestChaosForwardingDropDelayReset(t *testing.T) {
	wantOut, wantTrees, clean := forwardingOutcome(t, nil, TransportConfig{})
	if clean.Retries != 0 || clean.Drops != 0 {
		t.Fatalf("fault-free run not clean: %+v", clean)
	}
	plan := &FaultPlan{
		Seed:       7,
		Drop:       0.08,
		Delay:      0.05,
		DelayFor:   2 * time.Millisecond,
		ResetAfter: 6,
	}
	gotOut, gotTrees, stats := forwardingOutcome(t, plan, TransportConfig{})
	if strings.Join(gotOut, "\n") != strings.Join(wantOut, "\n") {
		t.Errorf("outputs diverged under faults:\ngot:\n%s\nwant:\n%s",
			strings.Join(gotOut, "\n"), strings.Join(wantOut, "\n"))
	}
	for ev, want := range wantTrees {
		if gotTrees[ev] != want {
			t.Errorf("tree for %s diverged under faults:\ngot:\n%s\nwant:\n%s", ev, gotTrees[ev], want)
		}
	}
	if stats.FaultDrops+stats.FaultDelays+stats.FaultResets == 0 {
		t.Error("fault plan injected nothing; chaos run was vacuous")
	}
	if stats.FaultDrops > 0 && stats.Retries == 0 {
		t.Error("faults were injected but nothing retried")
	}
	if stats.Drops > 0 || stats.QueueDrops > 0 {
		t.Errorf("survivable plan lost frames permanently: %+v", stats)
	}
}

// TestChaosDNSDrop runs the DNS DELP under a seeded drop plan and checks
// resolution results and provenance trees against the fault-free run.
func TestChaosDNSDrop(t *testing.T) {
	run := func(plan *FaultPlan) (out string, tree string) {
		t.Helper()
		dtree := topo.GenDNSTree(topo.DNSTreeConfig{NumServers: 10, MaxDepth: 4, Seed: 2})
		clients := dtree.AttachClients(1)
		urls := dtree.PickURLs(3)
		nodes := append([]types.NodeAddr{}, dtree.Servers...)
		nodes = append(nodes, clients...)
		c, err := New(Config{Prog: apps.DNS(), Funcs: apps.Funcs(), Nodes: nodes, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.LoadBase(dtree.NameServerTuples(clients)); err != nil {
			t.Fatal(err)
		}
		if err := c.LoadBase(topo.AddressRecordTuples(urls)); err != nil {
			t.Fatal(err)
		}
		ev := types.NewTuple("url",
			types.String(string(clients[0])), types.String(urls[0].URL), types.Int(1))
		if err := c.Inject(ev); err != nil {
			t.Fatal(err)
		}
		if err := c.Quiesce(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		outs := c.Outputs(clients[0])
		if len(outs) != 1 {
			t.Fatalf("outputs = %v", outs)
		}
		res, err := c.Query(outs[0], types.HashTuple(ev), 10*time.Second)
		if err != nil || len(res.Trees) != 1 {
			t.Fatalf("query: %v (%d trees)", err, len(res.Trees))
		}
		return outs[0].String(), res.Trees[0].String()
	}
	wantOut, wantTree := run(nil)
	gotOut, gotTree := run(&FaultPlan{Seed: 11, Drop: 0.05})
	if gotOut != wantOut {
		t.Errorf("DNS output diverged under faults: got %s, want %s", gotOut, wantOut)
	}
	if gotTree != wantTree {
		t.Errorf("DNS tree diverged under faults:\ngot:\n%s\nwant:\n%s", gotTree, wantTree)
	}
}

// TestChaosKillRestartRecovers crashes a mid-chain node while traffic is
// addressed to it and revives it inside the senders' retry window: the
// redial/retry machinery must deliver the delayed frames after the
// restart, so no packet is lost and provenance stays queryable end-to-end.
func TestChaosKillRestartRecovers(t *testing.T) {
	g := topo.Line(4, "n")
	c, err := New(Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: g.Nodes(),
		// Budget sized so retries comfortably span the restart window.
		Transport: TransportConfig{RetryBudget: 12, BackoffMax: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	before := pkt("n0", "n0", "n3", "before")
	if err := c.Inject(before); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	mid := c.Node("n2")
	mid.Kill()
	if mid.Alive() {
		t.Fatal("killed node reports alive")
	}
	time.Sleep(20 * time.Millisecond) // let peers observe the closed sockets

	during := pkt("n0", "n0", "n3", "during")
	if err := c.Inject(during); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // the n1->n2 transport is now redialing
	if err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	after := pkt("n0", "n0", "n3", "after")
	if err := c.Inject(after); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	outs := c.Outputs("n3")
	if len(outs) != 3 {
		t.Fatalf("outputs after restart = %v, want 3 packets", outs)
	}
	for _, ev := range []types.Tuple{before, during, after} {
		out := recvT("n3", "n0", "n3", ev.Args[3].AsString())
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil || len(res.Trees) != 1 {
			t.Fatalf("query %v after restart: %v (%d trees)", out, err, len(res.Trees))
		}
	}
	stats := c.TransportStats()
	if stats.Redials == 0 {
		t.Errorf("no redials recorded across a kill/restart: %+v", stats)
	}
	if stats.Drops > 0 {
		t.Errorf("frames were dropped despite the restart landing in the retry window: %+v", stats)
	}
}

// TestChaosKillNeverWedges is the fatal-crash property: when a node dies
// and never comes back, sends addressed to it exhaust their budget and
// are dropped with clean accounting — Quiesce returns promptly instead of
// wedging, surviving traffic is unaffected, and a query whose walk needs
// the dead node fails with a clean timeout instead of hanging.
func TestChaosKillNeverWedges(t *testing.T) {
	g := topo.Line(4, "n")
	c, err := New(Config{Prog: apps.Forwarding(), Funcs: apps.Funcs(), Nodes: g.Nodes()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	before := pkt("n0", "n0", "n3", "before")
	if err := c.Inject(before); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	c.Node("n2").Kill()
	time.Sleep(20 * time.Millisecond)

	lost := pkt("n0", "n0", "n3", "lost")
	if err := c.Inject(lost); err != nil {
		t.Fatal(err)
	}
	// Traffic that never touches the dead node keeps flowing.
	short := pkt("n0", "n0", "n1", "short")
	if err := c.Inject(short); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Quiesce(20 * time.Second); err != nil {
		t.Fatalf("quiesce wedged on a dead member: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("quiesce took %v; drops should settle fast", elapsed)
	}

	if outs := c.Outputs("n3"); len(outs) != 1 || !outs[0].Equal(recvT("n3", "n0", "n3", "before")) {
		t.Errorf("n3 outputs = %v, want only the pre-crash packet", outs)
	}
	if outs := c.Outputs("n1"); len(outs) != 1 {
		t.Errorf("n1 outputs = %v; traffic avoiding the dead node was lost", outs)
	}

	// The lost packet never produced an output, so its query is cleanly
	// empty; the pre-crash packet's walk needs the dead node, so its
	// query times out cleanly (bounded by the retry in Query).
	res, err := c.Query(recvT("n3", "n0", "n3", "lost"), types.HashTuple(lost), time.Second)
	if err != nil || len(res.Trees) != 0 {
		t.Errorf("query for lost packet: %v (%d trees), want clean empty result", err, len(res.Trees))
	}
	if _, err := c.Query(recvT("n3", "n0", "n3", "before"), types.HashTuple(before), 300*time.Millisecond); err == nil {
		t.Error("query whose walk crosses a dead node reported success")
	}

	stats := c.TransportStats()
	if stats.Drops == 0 {
		t.Errorf("no drops recorded for traffic into a dead node: %+v", stats)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatalf("final quiesce wedged: %v", err)
	}
}

// TestQueryTimeoutLateResultCounted is the regression test for the
// pending-map race: a result frame arriving after Query gave up used to
// vanish silently; now it lands in the LateResults counter, and the
// pending map stays clean so later queries are unaffected.
func TestQueryTimeoutLateResultCounted(t *testing.T) {
	c, err := New(Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: []types.NodeAddr{"n1", "n2", "n3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(topo.Fig2Routes()); err != nil {
		t.Fatal(err)
	}
	ev := pkt("n1", "n1", "n3", "data")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	out := recvT("n3", "n1", "n3", "data")

	// A nanosecond budget expires before any result frame can cross the
	// wire: both attempts give up, and both walks complete afterwards.
	if _, err := c.Query(out, types.HashTuple(ev), time.Nanosecond); err == nil {
		t.Fatal("nanosecond query reported success")
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := c.TransportStats()
	if stats.LateResults == 0 {
		t.Errorf("late result frames were not counted: %+v", stats)
	}
	if stats.QueryRetries == 0 {
		t.Errorf("query retry was not counted: %+v", stats)
	}

	// The pending map is clean: a patient query still succeeds.
	res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("follow-up query: %v (%d trees)", err, len(res.Trees))
	}
}

// TestQuiesceIdleReturnsFast checks the idle-notification path: an idle
// cluster settles in the settle window, not by burning the deadline.
func TestQuiesceIdleReturnsFast(t *testing.T) {
	c, err := New(Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: []types.NodeAddr{"n1", "n2", "n3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("idle quiesce took %v", elapsed)
	}
}

// TestRestartErrors covers the Restart misuse surface.
func TestRestartErrors(t *testing.T) {
	c, err := New(Config{
		Prog:  apps.Forwarding(),
		Funcs: apps.Funcs(),
		Nodes: []types.NodeAddr{"n1", "n2", "n3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Restart("ghost"); err == nil {
		t.Error("restart of unknown node accepted")
	}
	if err := c.Restart("n1"); err == nil {
		t.Error("restart of live node accepted")
	}
	c.Node("n1").Kill()
	c.Node("n1").Kill() // idempotent
	if err := c.Restart("n1"); err != nil {
		t.Errorf("restart of killed node: %v", err)
	}
}
