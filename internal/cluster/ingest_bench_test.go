package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/topo"
	"provcompress/internal/wire"
)

// ingestPayloads builds the workload shape the fast path is tuned for:
// event frames of a couple hundred bytes where consecutive frames share
// relation names, trace headers, and most of their metadata — only a few
// bytes differ frame to frame, which is what the batch delta encoder
// exploits.
func ingestPayloads() [][]byte {
	base := []byte("tuple:packet:n0:n3:advmeta:")
	for len(base) < 224 {
		base = append(base, "eqkey-0123456789abcdef:"...)
	}
	payloads := make([][]byte, 64)
	for i := range payloads {
		p := append([]byte(nil), base...)
		p[40] = byte(i)
		p[len(p)-1] = byte(i * 7)
		payloads[i] = p
	}
	return payloads
}

// benchIngestWire measures the wire tier of the ingest path over a real
// loopback TCP connection: frames produced, framed, written, read back,
// and decoded. The per-tuple variant is the legacy shape (one envelope
// allocation and one frame write per event, one fresh read buffer per
// frame); the batched variant is the fast path (pooled staging buffers,
// 256 events per frameBatch, reused read buffer, arena decode).
func benchIngestWire(b *testing.B, batched, compress bool) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- 0
			return
		}
		defer conn.Close()
		events := 0
		var buf []byte
		for {
			payload, err := wire.ReadFrameBuf(conn, buf)
			if err != nil {
				break
			}
			buf = payload[:cap(payload)]
			d := wire.NewDecoder(payload)
			if d.U8() == frameBatch {
				d.Str() // from
				d.U64() // incarnation
				entries, err := wire.DecodeBatch(d)
				if err != nil {
					break
				}
				events += len(entries)
			} else {
				events++
			}
		}
		done <- events
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}

	payloads := ingestPayloads()
	const perBatch = 256
	entries := make([]wire.BatchEntry, 0, perBatch)
	var sizes []int
	bytesPerEvent := 0

	b.ReportAllocs()
	b.ResetTimer()
	seq := uint64(0)
	if batched {
		for sent := 0; sent < b.N; {
			entries = entries[:0]
			for len(entries) < perBatch && sent+len(entries) < b.N {
				seq++
				entries = append(entries, wire.BatchEntry{Seq: seq, Epoch: 1, Payload: payloads[int(seq)%len(payloads)]})
			}
			var e wire.Encoder
			e.SetBuf(wire.GetBuf())
			e.U8(frameBatch)
			e.Str("n0")
			e.U64(1)
			env, s := wire.AppendBatch(e.Bytes(), entries, compress, sizes[:0])
			sizes = s
			if err := wire.WriteFrame(conn, env); err != nil {
				b.Fatal(err)
			}
			bytesPerEvent += len(env) + 4
			wire.PutBuf(env)
			sent += len(entries)
		}
	} else {
		for sent := 0; sent < b.N; sent++ {
			seq++
			e := wire.NewEncoder(0)
			e.U8(frameEnvelope)
			e.Str("n0")
			e.U64(1)
			e.U64(seq)
			e.U64(1)
			e.Raw(payloads[int(seq)%len(payloads)])
			if err := wire.WriteFrame(conn, e.Bytes()); err != nil {
				b.Fatal(err)
			}
			bytesPerEvent += e.Len() + 4
		}
	}
	conn.Close()
	got := <-done
	b.StopTimer()
	if got != b.N {
		b.Fatalf("receiver decoded %d events, sender wrote %d", got, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(bytesPerEvent)/float64(b.N), "bytes/event")
}

// BenchmarkIngest is the wire-tier A/B for the ingest fast path. The
// acceptance bar for the batched+pooled variant against per-tuple is
// ≥5x events/s and ≥10x fewer allocs/event.
func BenchmarkIngest(b *testing.B) {
	b.Run("per-tuple", func(b *testing.B) { benchIngestWire(b, false, false) })
	b.Run("batched", func(b *testing.B) { benchIngestWire(b, true, true) })
	b.Run("batched-nocompress", func(b *testing.B) { benchIngestWire(b, true, false) })
}

// BenchmarkIngestCluster measures the full pipeline — inject, route,
// derive, ship, settle — across a 4-node chain with batching on and off.
func BenchmarkIngestCluster(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"batched", false}, {"unbatched", true}} {
		b.Run(mode.name, func(b *testing.B) {
			g := topo.Line(4, "n")
			c, err := New(Config{
				Prog:      apps.Forwarding(),
				Funcs:     apps.Funcs(),
				Nodes:     g.Nodes(),
				Scheme:    "advanced",
				Transport: TransportConfig{DisableBatch: mode.disable},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Inject(pkt("n0", "n0", "n3", fmt.Sprintf("bench-%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Quiesce(60 * time.Second); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
