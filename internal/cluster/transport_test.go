package cluster

import (
	"strings"
	"testing"
	"time"

	"provcompress/internal/types"
)

func TestTransportConfigDefaults(t *testing.T) {
	tc := TransportConfig{}.withDefaults()
	if tc.QueueLen <= 0 || tc.EnqueueTimeout <= 0 || tc.DialTimeout <= 0 ||
		tc.WriteTimeout <= 0 || tc.RetryBudget <= 0 || tc.BackoffBase <= 0 || tc.BackoffMax <= 0 {
		t.Errorf("defaults left a zero field: %+v", tc)
	}
	// Explicit settings survive.
	tc = TransportConfig{RetryBudget: 9, BackoffMax: time.Second}.withDefaults()
	if tc.RetryBudget != 9 || tc.BackoffMax != time.Second {
		t.Errorf("explicit settings overridden: %+v", tc)
	}
}

func TestBackoffBoundedAndGrowing(t *testing.T) {
	n := &Node{addr: "a", c: &Cluster{tcfg: TransportConfig{}.withDefaults()}}
	tr := newTransport(n, "b")
	prevCap := time.Duration(0)
	for attempt := 1; attempt <= 12; attempt++ {
		d := tr.backoff(attempt)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %v", attempt, d)
		}
		if d > tr.cfg.BackoffMax {
			t.Fatalf("backoff(%d) = %v exceeds cap %v", attempt, d, tr.cfg.BackoffMax)
		}
		// The deterministic floor (half the doubled base) grows until the cap.
		floor := tr.cfg.BackoffBase
		for i := 1; i < attempt; i++ {
			floor *= 2
			if floor >= tr.cfg.BackoffMax {
				floor = tr.cfg.BackoffMax
				break
			}
		}
		if d < floor/2 {
			t.Fatalf("backoff(%d) = %v below floor %v", attempt, d, floor/2)
		}
		if floor/2 < prevCap {
			t.Fatalf("floor shrank at attempt %d", attempt)
		}
		prevCap = floor / 2
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	plan := &FaultPlan{Seed: 99, Drop: 0.2, Delay: 0.1, ResetAfter: 5}
	draw := func() []faultAction {
		l := plan.link("a", "b")
		var seq []faultAction
		for i := 0; i < 200; i++ {
			a := l.next()
			if a == faultNone || a == faultDelay {
				l.sent() // pretend the write succeeded
			}
			seq = append(seq, a)
		}
		return seq
	}
	first, second := draw(), draw()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("fault sequence diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
	resets := 0
	for _, a := range first {
		if a == faultReset {
			resets++
		}
	}
	if resets != 1 {
		t.Errorf("one-shot reset fired %d times", resets)
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var plan *FaultPlan
	l := plan.link("a", "b")
	if l != nil {
		t.Fatal("nil plan produced a fault stream")
	}
	if l.next() != faultNone {
		t.Error("nil stream injected a fault")
	}
	l.sent() // must not panic
}

func TestLinkFaultsOneShotReset(t *testing.T) {
	plan := &FaultPlan{Seed: 1, ResetAfter: 3}
	l := plan.link("x", "y")
	for i := 0; i < 3; i++ {
		if a := l.next(); a != faultNone {
			t.Fatalf("fault %v before the reset threshold", a)
		}
		l.sent()
	}
	if a := l.next(); a != faultReset {
		t.Fatalf("expected reset after %d sends, got %v", plan.ResetAfter, a)
	}
	for i := 0; i < 10; i++ {
		if a := l.next(); a != faultNone {
			t.Fatalf("reset is not one-shot: %v", a)
		}
		l.sent()
	}
}

func TestSeenDuplicate(t *testing.T) {
	n := &Node{lastSeq: make(map[types.NodeAddr]*seqTracker)}
	cases := []struct {
		inc, seq uint64
		dup      bool
	}{
		{0, 1, false}, // first delivery
		{0, 1, true},  // exact redelivery
		{0, 2, false}, // next in stream
		{0, 2, true},  // redelivery again
		{0, 1, true},  // stale duplicate
		{0, 5, false}, // reordered ahead
		{0, 3, false}, // reordered first delivery still accepted
		{0, 3, true},  // ...but its duplicate is not
		{1, 1, false}, // sender restarted: fresh stream
		{0, 9, true},  // frame from the old incarnation
		{1, 2, false},
	}
	for i, tc := range cases {
		if got := n.seenDuplicate("peer", tc.inc, tc.seq); got != tc.dup {
			t.Errorf("case %d (inc=%d seq=%d): dup=%v, want %v", i, tc.inc, tc.seq, got, tc.dup)
		}
	}
	// Streams are tracked per sender.
	if n.seenDuplicate("other", 0, 1) {
		t.Error("fresh sender flagged as duplicate")
	}
}

func TestTransportStatsRendering(t *testing.T) {
	s := TransportStats{Dials: 3, Retries: 2, Drops: 1, LateResults: 4}
	c := s.Counters()
	if c.Get("dials") != 3 || c.Get("retries") != 2 || c.Get("drops") != 1 || c.Get("late-results") != 4 {
		t.Errorf("counters = %v", c)
	}
	out := s.String()
	for _, want := range []string{"dials", "retries", "late-results", "counter", "value"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered stats missing %q:\n%s", want, out)
		}
	}
}

func TestTransportStatsAccumulate(t *testing.T) {
	var live transportStats
	live.dials.Add(2)
	live.sends.Add(7)
	live.faultResets.Add(1)
	var s TransportStats
	s.accumulate(&live)
	s.accumulate(&live)
	if s.Dials != 4 || s.Sends != 14 || s.FaultResets != 2 {
		t.Errorf("accumulate = %+v", s)
	}
}
