package cluster

import (
	"errors"
	"fmt"
	"net"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// acceptLoop accepts peer connections and spawns a reader per connection.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one connection and dispatches them.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		n.handleFrame(payload)
	}
}

// handleFrame processes one frame; the cluster in-flight counter drops
// when processing (including any follow-up sends) completes.
func (n *Node) handleFrame(payload []byte) {
	defer n.c.inflight.Add(-1)
	d := wire.NewDecoder(payload)
	kind := d.U8()
	switch kind {
	case frameTuple:
		f, err := decodeTupleFrame(d)
		if err != nil {
			return
		}
		n.handleTuple(f)
	case frameSig:
		n.mu.Lock()
		n.state.ClearEquiKeys()
		n.mu.Unlock()
	case frameWalk:
		f, err := decodeWalkFrame(d)
		if err != nil {
			return
		}
		n.handleWalk(f)
	case frameResult:
		f, err := decodeWalkFrame(d)
		if err != nil {
			return
		}
		n.pendMu.Lock()
		ch := n.pending[f.QID]
		delete(n.pending, f.QID)
		n.pendMu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// handleTuple runs the DELP pipeline step for an arriving tuple: join the
// local slow tables, fire the matching rules, maintain provenance via the
// Advanced state machine, and ship the heads.
func (n *Node) handleTuple(f *tupleFrame) {
	n.mu.Lock()
	n.db.Insert(f.Tuple)
	meta := f.Meta
	if f.Fresh {
		meta = n.state.Inject(f.Tuple)
	}
	rules := n.c.prog.RulesForEvent(f.Tuple.Rel)
	if len(rules) == 0 {
		n.state.Output(f.Tuple, meta)
		n.outputs = append(n.outputs, f.Tuple)
		n.mu.Unlock()
		return
	}
	type shipment struct {
		head types.Tuple
		meta core.AdvMeta
	}
	var ships []shipment
	for _, r := range rules {
		firings, err := engine.EvalRule(r, n.db, f.Tuple, n.c.funcs)
		if err != nil {
			continue
		}
		for _, fr := range firings {
			out := n.state.FireAt(n.addr, fr, meta)
			ships = append(ships, shipment{head: fr.Head, meta: out})
		}
	}
	n.mu.Unlock()

	for _, s := range ships {
		frame := (&tupleFrame{Tuple: s.head, Meta: s.meta}).encode()
		n.c.inflight.Add(1)
		if err := n.sendFrom(n.addr, s.head.Loc(), frame); err != nil {
			n.c.inflight.Add(-1)
		}
	}
}

// handleWalk advances a traveling provenance query: it collects every
// worklist reference stored at this node, then forwards the walk or
// returns the result.
func (n *Node) handleWalk(f *walkFrame) {
	n.mu.Lock()
	for {
		idx := -1
		for i := len(f.Work) - 1; i >= 0; i-- {
			if f.Work[i].Loc == n.addr {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		ref := f.Work[idx]
		f.Work = append(f.Work[:idx], f.Work[idx+1:]...)
		ce, vids, provs, nexts, ok := n.state.Collect(ref)
		if !ok {
			continue
		}
		f.Entries = append(f.Entries, ce)
		f.Provs = append(f.Provs, provs...)
		for _, vid := range vids {
			if t, ok := n.db.LookupVID(vid); ok {
				f.Tuples = appendTupleOnce(f.Tuples, t)
			}
		}
		if n.state.EventByEvID() && hasNilRef(ce.Nexts) {
			// Chain leaf: resolve the event tuples by EVID (Section 5.6).
			for _, evid := range walkEventIDs(f) {
				if t, ok := n.db.LookupVID(evid); ok {
					f.Tuples = appendTupleOnce(f.Tuples, t)
				}
			}
		}
		for _, nx := range nexts {
			f.Work = append(f.Work, nx)
		}
	}
	n.mu.Unlock()

	f.Hops++
	if len(f.Work) == 0 {
		n.c.inflight.Add(1)
		if err := n.sendFrom(n.addr, f.Querier, f.encode(frameResult)); err != nil {
			n.c.inflight.Add(-1)
		}
		return
	}
	target := f.Work[len(f.Work)-1].Loc
	n.c.inflight.Add(1)
	if err := n.sendFrom(n.addr, target, f.encode(frameWalk)); err != nil {
		n.c.inflight.Add(-1)
	}
}

func hasNilRef(refs []core.Ref) bool {
	for _, r := range refs {
		if r.IsNil() {
			return true
		}
	}
	return false
}

func appendTupleOnce(ts []types.Tuple, t types.Tuple) []types.Tuple {
	for _, u := range ts {
		if u.Equal(t) {
			return ts
		}
	}
	return append(ts, t)
}

func walkEventIDs(f *walkFrame) []types.ID {
	if !f.EvID.IsZero() {
		return []types.ID{f.EvID}
	}
	var out []types.ID
	seen := make(map[types.ID]bool)
	for _, p := range f.RootProvs {
		if !p.EvID.IsZero() && !seen[p.EvID] {
			seen[p.EvID] = true
			out = append(out, p.EvID)
		}
	}
	return out
}

// sendFrom delivers a frame to a peer over its TCP listener, dialing and
// caching the connection on first use.
func (n *Node) sendFrom(_ types.NodeAddr, to types.NodeAddr, frame []byte) error {
	peer := n.c.nodes[to]
	if peer == nil {
		return fmt.Errorf("cluster: send to unknown node %s", to)
	}
	n.connMu.Lock()
	pc := n.conns[to]
	if pc == nil {
		conn, err := net.Dial("tcp", peer.tcpAddr)
		if err != nil {
			n.connMu.Unlock()
			return err
		}
		pc = &peerConn{conn: conn}
		n.conns[to] = pc
	}
	n.connMu.Unlock()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return wire.WriteFrame(pc.conn, frame)
}

// QueryResult is the outcome of a distributed query over the cluster.
type QueryResult struct {
	Trees   []*core.Tree
	Latency time.Duration
	Hops    int
}

// Query retrieves the provenance of an output tuple over the real
// protocol: the walk starts at the output's node, travels the shared
// chains over TCP, and the reconstruction (TRANSFORM_TO_D) runs back at
// the querier. Pass types.ZeroID as evid for every stored derivation.
func (c *Cluster) Query(out types.Tuple, evid types.ID, timeout time.Duration) (QueryResult, error) {
	querier := c.nodes[out.Loc()]
	if querier == nil {
		return QueryResult{}, fmt.Errorf("cluster: query at unknown node %s", out)
	}
	start := time.Now()
	qid := c.nextQID.Add(1)
	ch := make(chan *walkFrame, 1)
	querier.pendMu.Lock()
	querier.pending[qid] = ch
	querier.pendMu.Unlock()

	f := &walkFrame{QID: qid, Querier: querier.addr, Root: out, EvID: evid}
	querier.mu.Lock()
	f.RootProvs = querier.state.ProvRows(types.HashTuple(out), evid)
	querier.mu.Unlock()
	seen := make(map[core.Ref]bool)
	for _, p := range f.RootProvs {
		if !p.Ref.IsNil() && !seen[p.Ref] {
			seen[p.Ref] = true
			f.Work = append(f.Work, p.Ref)
		}
	}
	if len(f.Work) == 0 {
		querier.pendMu.Lock()
		delete(querier.pending, qid)
		querier.pendMu.Unlock()
		return QueryResult{Latency: time.Since(start)}, nil
	}
	// Start the walk by sending it to the first target (possibly self).
	target := f.Work[len(f.Work)-1].Loc
	c.inflight.Add(1)
	if err := querier.sendFrom(querier.addr, target, f.encode(frameWalk)); err != nil {
		c.inflight.Add(-1)
		return QueryResult{}, err
	}

	select {
	case res := <-ch:
		trees := reconstructWalk(c, querier, res)
		return QueryResult{Trees: trees, Latency: time.Since(start), Hops: int(res.Hops)}, nil
	case <-time.After(timeout):
		querier.pendMu.Lock()
		delete(querier.pending, qid)
		querier.pendMu.Unlock()
		return QueryResult{}, errors.New("cluster: query timeout")
	}
}

// reconstructWalk rebuilds the provenance trees from a completed walk
// using the querier's scheme state.
func reconstructWalk(c *Cluster, querier *Node, f *walkFrame) []*core.Tree {
	entries := make(map[core.Ref]core.CollectedEntry, len(f.Entries))
	for _, ce := range f.Entries {
		entries[core.Ref{Loc: ce.Entry.Loc, RID: ce.Entry.RID}] = ce
	}
	tuples := make(map[types.ID]types.Tuple, len(f.Tuples))
	for _, t := range f.Tuples {
		tuples[types.HashTuple(t)] = t
	}
	provs := make(map[types.ID][]core.Prov, len(f.Provs))
	for _, p := range f.Provs {
		provs[p.VID] = append(provs[p.VID], p)
	}
	raw := querier.state.Reconstruct(c.prog, c.funcs, f.Root, f.RootProvs, entries, tuples, provs)
	var trees []*core.Tree
	for _, t := range raw {
		if !f.EvID.IsZero() && t.EvID() != f.EvID {
			continue
		}
		dup := false
		for _, u := range trees {
			if u.Equal(t) {
				dup = true
				break
			}
		}
		if !dup {
			trees = append(trees, t)
		}
	}
	return trees
}
