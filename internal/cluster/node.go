package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/trace"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// acceptLoop accepts peer connections and spawns a reader per connection.
// It takes the listener as an argument because Restart replaces n.ln.
func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.inMu.Lock()
		n.inConns[conn] = struct{}{}
		n.inMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one connection and dispatches them.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.inMu.Lock()
		delete(n.inConns, conn)
		n.inMu.Unlock()
		conn.Close()
	}()
	// One reusable buffer serves the connection's whole life: frames are
	// handled synchronously and everything retained past handleFrame
	// (decoded tuples, walk frames) is copied out of the raw bytes, so
	// the steady state reads with zero per-frame allocation.
	var buf []byte
	for {
		payload, err := wire.ReadFrameBuf(conn, buf)
		if err != nil {
			return
		}
		buf = payload[:cap(payload)]
		n.handleFrame(payload)
	}
}

// dedupWindow is how far behind the newest seq a frame may arrive and
// still be judged on the seen-set; anything older is treated as a
// duplicate. Reordering only happens when a retried stream overlaps the
// tail of a dying connection, which spans at most the outbound queue, so
// the window is comfortably larger than any queue.
const dedupWindow = 1 << 13

// seenDuplicate records the (incarnation, seq) of a sender's frame and
// reports whether it was already delivered. A strict high-water mark is
// not enough: after a connection reset, frames buffered on the dying
// connection can be read after newer frames on its replacement, so the
// filter keeps a sliding seen-set per sender and only duplicates (same
// seq delivered twice) are suppressed — reordered firsts are accepted. A
// lower incarnation is a frame from before the sender's last restart.
func (n *Node) seenDuplicate(from types.NodeAddr, inc, seq uint64) bool {
	n.seqMu.Lock()
	defer n.seqMu.Unlock()
	st := n.lastSeq[from]
	if st == nil || inc > st.inc {
		st = &seqTracker{inc: inc, seen: make(map[uint64]struct{})}
		n.lastSeq[from] = st
	} else if inc < st.inc {
		return true // stream from before the sender's restart
	}
	if seq+dedupWindow <= st.maxSeq {
		return true // too old to distinguish from a duplicate
	}
	if _, ok := st.seen[seq]; ok {
		return true
	}
	st.seen[seq] = struct{}{}
	if seq > st.maxSeq {
		st.maxSeq = seq
	}
	if len(st.seen) > 2*dedupWindow {
		for s := range st.seen {
			if s+dedupWindow <= st.maxSeq {
				delete(st.seen, s)
			}
		}
	}
	return false
}

// handleFrame processes one transport delivery. The envelope path
// carries one frame; the batch path carries N coalesced sub-frames, each
// with its own (seq, epoch), dispatched in order after the whole batch
// decoded (so a corrupt batch is dropped atomically, like a corrupt
// envelope). Dedup runs per sub-frame: a redelivered batch whose first
// copy arrived is N suppressed duplicates, never a double apply.
func (n *Node) handleFrame(payload []byte) {
	d := wire.NewDecoder(payload)
	switch d.U8() {
	case frameEnvelope:
		from := types.NodeAddr(d.Str())
		inc := d.U64()
		seq := d.U64()
		epoch := d.U64()
		if d.Err() != nil {
			return // malformed envelope: the epoch is unreadable, floor guards the counter
		}
		if n.seenDuplicate(from, inc, seq) {
			n.stats.dups.Add(1)
			return
		}
		n.dispatch(from, d, epoch)
	case frameBatch:
		from := types.NodeAddr(d.Str())
		inc := d.U64()
		entries, err := wire.DecodeBatch(d)
		if err != nil {
			return // malformed batch: nothing was counted for it
		}
		for _, ent := range entries {
			if n.seenDuplicate(from, inc, ent.Seq) {
				n.stats.dups.Add(1)
				continue
			}
			n.dispatch(from, wire.NewDecoder(ent.Payload), ent.Epoch)
		}
	}
}

// dispatch processes one frame already past the duplicate filter. The
// frame's in-flight accounting settles when processing (including any
// follow-up sends) completes. Event tuples are not processed inline:
// they are routed to the shard owning their equivalence class, and the
// shard worker settles them after the pipeline step ran.
func (n *Node) dispatch(from types.NodeAddr, d *wire.Decoder, epoch uint64) {
	settled := false
	defer func() {
		if !settled {
			n.c.acctSettle(n.addr, epoch)
		}
	}()
	kind := d.U8()
	switch kind {
	case frameTuple:
		f, err := decodeTupleFrame(d)
		if err != nil {
			return
		}
		settled = true // the shard worker settles after processing
		n.enqueueShard(f, epoch)
	case frameSig:
		n.applySig()
	case frameWalk:
		f, err := decodeWalkFrame(d)
		if err != nil {
			return
		}
		n.handleWalk(f)
	case frameResult:
		f, err := decodeWalkFrame(d)
		if err != nil {
			return
		}
		n.pendMu.Lock()
		ch := n.pending[f.QID]
		delete(n.pending, f.QID)
		n.pendMu.Unlock()
		if ch == nil {
			// The result lost the race against the query timeout that
			// unregistered the channel; count it so the loss is visible.
			n.stats.lateResults.Add(1)
			return
		}
		ch <- f
	case frameView:
		v, err := decodeViewFrame(d)
		if err != nil {
			return
		}
		n.handleView(v)
	case frameRepl:
		owner, rec, err := decodeReplFrame(d)
		if err != nil {
			return
		}
		n.handleRepl(owner, rec)
	case frameHandoff:
		owner, hid, acked, snap, err := decodeHandoffFrame(d)
		if err != nil {
			return
		}
		n.handleHandoff(from, owner, hid, acked, snap)
	case frameHandoffAck:
		hid, _, err := decodeHandoffAckFrame(d)
		if err != nil {
			return
		}
		n.handleHandoffAck(hid)
	case frameRepairReq:
		owner, err := decodeRepairReqFrame(d)
		if err != nil {
			return
		}
		n.handleRepairReq(from, owner)
	}
}

// shardWork is one event tuple traveling from the frame decoder to the
// shard worker owning its equivalence class, carrying the in-flight epoch
// it must settle under.
type shardWork struct {
	f     *tupleFrame
	epoch uint64
}

// enqueueShard hands an event tuple to its equivalence-class shard. A full
// shard queue blocks the reader (backpressure through TCP); a closing
// cluster settles the frame instead, matching the kill-drain accounting.
func (n *Node) enqueueShard(f *tupleFrame, epoch uint64) {
	select {
	case n.shardCh[n.c.shardOf(f.Tuple)] <- shardWork{f: f, epoch: epoch}:
	case <-n.c.stopCh:
		n.c.acctSettle(n.addr, epoch)
	}
}

// shardWorker drains one shard queue for the life of the cluster. Events
// queued behind a node crash are dropped (the crash drain already retired
// their accounting, so the settle here is a no-op for them).
func (n *Node) shardWorker(ch chan shardWork) {
	defer n.wg.Done()
	for {
		select {
		case <-n.c.stopCh:
			return
		case w := <-ch:
			if n.alive.Load() {
				n.processTuple(w.f)
			}
			n.c.acctSettle(n.addr, w.epoch)
		}
	}
}

// processTuple runs the DELP pipeline step for an arriving tuple. On a
// volatile node the apply runs directly; on a durable one the frame is
// logged to the WAL first and {append + apply} hold durMu so log order
// equals apply order (durability.go). Shipping the derived heads happens
// outside the lock either way.
func (n *Node) processTuple(f *tupleFrame) {
	if loc := f.Tuple.Loc(); loc != n.addr {
		// A redirected tuple: its owner has Left and this node is the
		// acting owner of the partition (membership.go).
		n.processHosted(loc, f)
		return
	}
	if !n.durable() {
		ships := n.applyTuple(f)
		if n.c.replicas > 0 {
			n.replicate(encodeDurEvent(f))
		}
		n.shipAll(ships)
		return
	}
	n.durMu.Lock()
	rec := encodeDurEvent(f)
	want := n.logApply(rec)
	ships := n.applyTuple(f)
	if want {
		n.checkpointLocked()
	}
	n.durMu.Unlock()
	n.replicate(rec)
	n.shipAll(ships)
}

// outShip is a derived head ready to travel: its destination, the encoded
// frame, and the piggybacked provenance metadata size for byte
// attribution.
type outShip struct {
	to        types.NodeAddr
	frame     []byte
	provBytes int
}

// shipAll sends the derived heads of one apply. Ship frames are pooled
// (encodeSized), so each travels as an owned buffer the transport
// recycles.
func (n *Node) shipAll(ships []outShip) {
	for _, s := range ships {
		n.sendOwned(s.to, s.frame, classBase, s.provBytes) //nolint:errcheck // a send the node cannot even enqueue is a drop
	}
}

// applyTuple is the pipeline step proper: join the local slow tables, fire
// the matching rules, maintain provenance via the scheme's state machine,
// and return the heads to ship. The join runs against the database's own
// read-write lock — outside n.mu — so shards evaluate concurrently; only
// the provenance state transitions serialize on n.mu. Events of one
// equivalence class are processed by one shard in arrival order, which is
// what keeps per-class provenance chains consistent. WAL replay re-runs
// this same function and discards the returned shipments: each node's log
// holds exactly the frames it processed, so nothing re-travels the
// network.
func (n *Node) applyTuple(f *tupleFrame) []outShip {
	sp := n.c.startSpan(f.Trace, n.addr, "process", "process "+f.Tuple.Rel)
	defer sp.End()
	n.db.Insert(f.Tuple)
	meta := f.Meta
	if f.Fresh {
		n.mu.Lock()
		meta = n.state.Inject(f.Tuple)
		n.mu.Unlock()
	}
	rules := n.c.prog.RulesForEvent(f.Tuple.Rel)
	if len(rules) == 0 {
		n.mu.Lock()
		landed := n.state.Output(f.Tuple, meta)
		n.outputs = append(n.outputs, f.Tuple)
		n.mu.Unlock()
		sp.SetAttr("output", "true")
		if len(landed) > 0 {
			// Provenance landed on these outputs (possibly deferred outputs
			// of earlier events, under Advanced): fire their VID keys so
			// cached trees for them — including cached empty answers — are
			// evicted now that their derivations changed.
			n.c.fireEventHook(vidKeysOf(landed)...)
		}
		return nil
	}
	type shipment struct {
		head types.Tuple
		meta core.AdvMeta
	}
	var ships []shipment
	for _, r := range rules {
		// The rule span brackets the join itself; the EvalObserved hook
		// annotates it with the firing count the plan produced.
		rsp := n.c.startSpan(sp.Context(), n.addr, "rule", "rule "+r.Label)
		var obs engine.EvalObserver
		if rsp != nil {
			obs = func(rule string, firings int, evalErr error) {
				rsp.SetAttr("firings", strconv.Itoa(firings))
				if evalErr != nil {
					rsp.SetAttr("error", evalErr.Error())
				}
			}
		}
		firings, err := n.c.plans.EvalObserved(r, n.db, f.Tuple, n.c.funcs, obs)
		rsp.End()
		if err != nil || len(firings) == 0 {
			continue
		}
		n.mu.Lock()
		for _, fr := range firings {
			out := n.state.FireAt(n.addr, fr, meta)
			ships = append(ships, shipment{head: fr.Head, meta: out})
		}
		n.mu.Unlock()
	}

	out := make([]outShip, 0, len(ships))
	for _, s := range ships {
		// Shipped heads carry this process span's context so the next
		// hop's span parents under it; the metadata piggyback bytes are
		// attributed to the provenance class.
		frame, metaBytes := (&tupleFrame{Tuple: s.head, Meta: s.meta, Trace: sp.Context()}).encodeSized()
		out = append(out, outShip{to: s.head.Loc(), frame: frame, provBytes: metaBytes})
	}
	return out
}

// maxWalkHops caps a walk's node visits; a walk still traveling past it
// is bouncing between members whose views disagree about who can serve,
// and returns Partial instead of orbiting forever.
const maxWalkHops = 1024

// handleWalk advances a traveling provenance query: it collects every
// worklist reference this node can serve — its own refs always, a held
// partition's refs while the owner is unreachable — then forwards the
// walk (routing around dead members) or returns the result. A walk that
// needs a member nobody reachable can stand in for returns Partial, so
// the querier fails fast instead of spending its retry budget.
func (n *Node) handleWalk(f *walkFrame) {
	sp := n.c.startSpan(f.Trace, n.addr, "walk", "walk "+f.Root.Rel)
	for {
		idx := -1
		for i := len(f.Work) - 1; i >= 0; i-- {
			if n.canServe(f.Work[i].Loc) {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		ref := f.Work[idx]
		f.Work = append(f.Work[:idx], f.Work[idx+1:]...)
		n.collectRef(ref, f)
	}

	f.Hops++
	if sp != nil {
		// Re-parent the frame under this hop's span so the next node (or
		// the querier's reconstruction) chains beneath it.
		sp.SetAttr("hop", strconv.FormatUint(uint64(f.Hops), 10))
		sp.SetAttr("entries", strconv.Itoa(len(f.Entries)))
		f.Trace = sp.Context()
	}
	if len(f.Work) == 0 {
		n.sendOwned(f.Querier, f.encode(frameResult), classQuery, 0) //nolint:errcheck
		sp.End()
		return
	}
	target := n.routeWalk(f.Work[len(f.Work)-1].Loc)
	if target == "" || target == n.addr || f.Hops >= maxWalkHops {
		f.Partial = true
		n.c.memb.partialWalks.Add(1)
		if sp != nil {
			sp.SetAttr("partial", "true")
		}
		n.sendOwned(f.Querier, f.encode(frameResult), classQuery, 0) //nolint:errcheck
		sp.End()
		return
	}
	n.sendOwned(target, f.encode(frameWalk), classQuery, 0) //nolint:errcheck
	sp.End()
}

// collectRef serves one worklist reference from whichever state holds it:
// the node's own (ref.Loc == n.addr) or a held partition's. The caller
// already established servability via canServe.
func (n *Node) collectRef(ref core.Ref, f *walkFrame) {
	var (
		st core.NodeState
		db *engine.Database
		mu *sync.Mutex
	)
	if ref.Loc == n.addr {
		st, db, mu = n.state, n.db, &n.mu
	} else {
		p := n.partitionFor(ref.Loc, false)
		if p == nil {
			return
		}
		st, db, mu = p.state, p.db, &p.mu
	}
	mu.Lock()
	ce, vids, provs, nexts, ok := st.Collect(ref)
	evByID := st.EventByEvID()
	mu.Unlock()
	if !ok {
		return
	}
	f.Entries = append(f.Entries, ce)
	f.Provs = append(f.Provs, provs...)
	for _, vid := range vids {
		// Tag the walk with every VID it depended on here, resolved or not
		// — a later insert/delete/graveyard eviction of that VID fires the
		// same key (invalkey.go), evicting the answer this walk produces.
		f.EqKeys = addInvalKey(f.EqKeys, VIDInvalKey(vid))
		if t, ok := db.LookupVID(vid); ok {
			f.Tuples = appendTupleOnce(f.Tuples, t)
		}
	}
	if evByID && hasNilRef(ce.Nexts) {
		// Chain leaf: resolve the event tuples by EVID (Section 5.6).
		for _, evid := range walkEventIDs(f) {
			f.EqKeys = addInvalKey(f.EqKeys, VIDInvalKey(evid))
			if t, ok := db.LookupVID(evid); ok {
				f.Tuples = appendTupleOnce(f.Tuples, t)
				// A leaf event also ties the answer to its §5.2 equivalence
				// class: a fresh injection of the same class changes the
				// derivations this tree belongs to.
				f.EqKeys = addInvalKey(f.EqKeys, n.c.EventClassKey(t))
			}
		}
	}
	for _, nx := range nexts {
		f.Work = append(f.Work, nx)
	}
}

func hasNilRef(refs []core.Ref) bool {
	for _, r := range refs {
		if r.IsNil() {
			return true
		}
	}
	return false
}

func appendTupleOnce(ts []types.Tuple, t types.Tuple) []types.Tuple {
	for _, u := range ts {
		if u.Equal(t) {
			return ts
		}
	}
	return append(ts, t)
}

func walkEventIDs(f *walkFrame) []types.ID {
	if !f.EvID.IsZero() {
		return []types.ID{f.EvID}
	}
	var out []types.ID
	seen := make(map[types.ID]bool)
	for _, p := range f.RootProvs {
		if !p.EvID.IsZero() && !seen[p.EvID] {
			seen[p.EvID] = true
			out = append(out, p.EvID)
		}
	}
	return out
}

// send hands a frame to the fault-tolerant transport for the peer,
// counting it in flight. class and provBytes drive the per-link byte
// attribution when the write eventually succeeds. The actual
// dial/write/retry happens on the link's writer goroutine, so handlers
// never block on the network; every counted frame is settled exactly
// once, by whichever side finishes with it.
func (n *Node) send(to types.NodeAddr, frame []byte, class uint8, provBytes int) error {
	return n.sendFrame(to, frame, class, provBytes, false)
}

// sendOwned is send for a frame whose buffer came from the wire buffer
// pool and belongs to this delivery alone (tuple shipments, walk
// frames): the transport recycles it once the frame settles. Broadcast
// frames shared across peers must use send.
func (n *Node) sendOwned(to types.NodeAddr, frame []byte, class uint8, provBytes int) error {
	return n.sendFrame(to, frame, class, provBytes, true)
}

func (n *Node) sendFrame(to types.NodeAddr, frame []byte, class uint8, provBytes int, pooled bool) error {
	if n.c.closed.Load() {
		return fmt.Errorf("cluster: send on closed cluster")
	}
	if !n.alive.Load() {
		return fmt.Errorf("cluster: send from dead node %s", n.addr)
	}
	if n.downLeft.Load() != 0 {
		// A frame addressed to a departed (Left) member redirects to the
		// acting owner of its partition; Down members keep their traffic
		// (the retry budget delivers it when they return).
		to = n.routeFor(to)
	}
	peer := n.c.node(to)
	if peer == nil {
		return fmt.Errorf("cluster: send to unknown node %s", to)
	}
	t := n.transportTo(to)
	epoch := n.c.acctEnqueue(to)
	t.enqueue(outFrame{payload: frame, epoch: epoch, class: class, provBytes: provBytes, pooled: pooled})
	return nil
}

// startSpan opens a child span under a propagated context; it returns
// nil (a no-op span) when tracing is off or the incoming frame was
// untraced, so untraced traffic never fabricates single-hop traces.
func (c *Cluster) startSpan(parent trace.SpanContext, node types.NodeAddr, kind, name string) *trace.ActiveSpan {
	if c.tracer == nil || !parent.Valid() {
		return nil
	}
	return c.tracer.StartSpan(parent, string(node), kind, name)
}

// transportTo returns (creating on first use) the outbound link to a peer.
func (n *Node) transportTo(to types.NodeAddr) *transport {
	n.transMu.Lock()
	defer n.transMu.Unlock()
	t := n.trans[to]
	if t == nil {
		t = newTransport(n, to)
		n.trans[to] = t
		n.wg.Add(1)
		go t.run()
	}
	return t
}

// QueryResult is the outcome of a distributed query over the cluster.
type QueryResult struct {
	Trees   []*core.Tree
	Latency time.Duration
	Hops    int
	// TraceID names the query's span tree in the cluster's trace
	// collector (zero when tracing is off).
	TraceID trace.TraceID
	// InvalKeys is the sorted, duplicate-free set of invalidation keys
	// (invalkey.go) the answer depends on: the root output's VID key
	// (always present, even for an empty answer), the VID keys of every
	// tuple/EvID the walk touched, and the equivalence-class keys of the
	// trees' leaf events. A cache storing this result must evict it when
	// any of these keys fires through the cluster event hook.
	InvalKeys []uint64
}

// queryAttempts bounds how many times Query issues its walk: the first
// try plus one retry if the result frame never arrives before timeout
// (the walk or its result may have been lost to a fault).
const queryAttempts = 2

// Query retrieves the provenance of an output tuple over the real
// protocol: the walk starts at the output's node, travels the shared
// chains over TCP, and the reconstruction (TRANSFORM_TO_D) runs back at
// the querier. Pass types.ZeroID as evid for every stored derivation.
//
// timeout bounds each attempt; a walk whose result frame never returns is
// re-issued once before the query fails, so a single lost message does
// not fail the query.
func (c *Cluster) Query(out types.Tuple, evid types.ID, timeout time.Duration) (QueryResult, error) {
	return c.QueryContext(context.Background(), out, evid, timeout)
}

// QueryContext is Query with caller-driven cancellation: when ctx is done
// (an HTTP client disconnected, a deadline passed upstream), the in-flight
// wait aborts immediately instead of burning the full per-attempt timeout.
// Walk frames already traveling the cluster complete on their own; their
// results are counted as late (TransportStats.LateResults), never
// delivered to the canceled waiter.
func (c *Cluster) QueryContext(ctx context.Context, out types.Tuple, evid types.ID, timeout time.Duration) (QueryResult, error) {
	querier := c.node(out.Loc())
	var ps *partition
	if querier == nil || !querier.Alive() {
		// The owner is unreachable: with replication on, a rendezvous
		// replica holding its partition shadow acts as the querier; the
		// suspicion teaches the acting querier's view so walk routing and
		// serving agree the owner is out.
		acting, p := c.failoverQuerier(out.Loc())
		if acting == nil {
			if querier == nil {
				return QueryResult{}, fmt.Errorf("cluster: query at unknown node %s", out)
			}
			return QueryResult{}, fmt.Errorf("cluster: query at dead node %s", out.Loc())
		}
		acting.suspect(out.Loc())
		c.memb.failovers.Add(1)
		querier, ps = acting, p
	}
	// The query root span anchors the whole distributed walk's tree; a
	// nil tracer makes qsp a no-op and qctx the zero (untraced) context.
	var qsp *trace.ActiveSpan
	if c.tracer != nil {
		qsp = c.tracer.StartSpan(trace.SpanContext{}, string(querier.addr), "query", "query "+out.Rel)
		qsp.SetAttr("scheme", c.scheme)
	}
	qctx := qsp.Context()
	start := time.Now()
	for attempt := 0; attempt < queryAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			qsp.End()
			return QueryResult{}, err
		}
		if attempt > 0 {
			querier.stats.queryRetries.Add(1)
			qsp.SetAttr("retried", "true")
		}
		res, done, err := c.tryQuery(ctx, querier, ps, out, evid, timeout, qctx)
		if err != nil {
			qsp.End()
			return QueryResult{}, err
		}
		if done {
			res.Latency = time.Since(start)
			res.TraceID = qctx.Trace
			qsp.End()
			return res, nil
		}
	}
	qsp.End()
	return QueryResult{}, errors.New("cluster: query timeout")
}

// tryQuery issues one walk and waits for its result; done=false means the
// attempt timed out and the caller may retry. qctx is the query root
// span's context (zero when untraced) the walk frames travel under. A
// non-nil ps means querier is acting for a dead owner and anchors the
// walk in its partition shadow instead of its own state.
func (c *Cluster) tryQuery(ctx context.Context, querier *Node, ps *partition, out types.Tuple, evid types.ID, timeout time.Duration, qctx trace.SpanContext) (QueryResult, bool, error) {
	qid := c.nextQID.Add(1)
	ch := make(chan *walkFrame, 1)
	querier.pendMu.Lock()
	querier.pending[qid] = ch
	querier.pendMu.Unlock()
	unregister := func() {
		querier.pendMu.Lock()
		delete(querier.pending, qid)
		querier.pendMu.Unlock()
	}

	f := &walkFrame{QID: qid, Querier: querier.addr, Root: out, EvID: evid, Trace: qctx}
	if ps != nil {
		ps.mu.Lock()
		f.RootProvs = ps.state.ProvRows(types.HashTuple(out), evid)
		ps.mu.Unlock()
	} else {
		querier.mu.Lock()
		f.RootProvs = querier.state.ProvRows(types.HashTuple(out), evid)
		querier.mu.Unlock()
	}
	seen := make(map[core.Ref]bool)
	for _, p := range f.RootProvs {
		if !p.Ref.IsNil() && !seen[p.Ref] {
			seen[p.Ref] = true
			f.Work = append(f.Work, p.Ref)
		}
	}
	if len(f.Work) == 0 {
		unregister()
		// An empty answer is still cacheable: its key set ties it to the
		// root output's VID, which fires when provenance eventually lands.
		return QueryResult{InvalKeys: c.walkInvalKeys(out, evid, f, nil)}, true, nil
	}
	// Start the walk by sending it to the first target (possibly self),
	// routed around members the view knows are out. An unroutable first
	// hop fails the query immediately — the membership view is exactly
	// what keeps the retry budget off known-dead peers.
	target := querier.routeWalk(f.Work[len(f.Work)-1].Loc)
	if target == "" {
		unregister()
		return QueryResult{}, true, fmt.Errorf("cluster: query needs unreachable member %s", f.Work[len(f.Work)-1].Loc)
	}
	if err := querier.sendOwned(target, f.encode(frameWalk), classQuery, 0); err != nil {
		unregister()
		return QueryResult{}, false, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.Partial {
			// The walk could not reach a member it needed and no replica
			// stood in. Retrying would hit the same outage, so fail now
			// with the retry budget unspent.
			return QueryResult{}, true, fmt.Errorf("cluster: query partial: a member the walk needs is unreachable")
		}
		// The reconstruction span parents under the last hop's span, so
		// the tree reads inject→walk…walk→reconstruct end to end.
		rsp := c.startSpan(res.Trace, querier.addr, "reconstruct", "reconstruct "+res.Root.Rel)
		state := querier.state
		if ps != nil {
			state = ps.state
		}
		trees := reconstructWalk(c, querier, state, res)
		rsp.SetAttr("trees", strconv.Itoa(len(trees)))
		rsp.End()
		return QueryResult{Trees: trees, Hops: int(res.Hops), InvalKeys: c.walkInvalKeys(out, evid, res, trees)}, true, nil
	case <-timer.C:
		unregister()
		return QueryResult{}, false, nil
	case <-ctx.Done():
		unregister()
		return QueryResult{}, false, ctx.Err()
	}
}

// walkInvalKeys assembles a query answer's invalidation-key set from the
// completed walk frame and the reconstructed trees: the keys the walk's
// serving nodes accumulated in EqKeys, the root output's VID key, the
// anchoring prov rows' VIDs and EvIDs, and each tree's leaf-event class
// and EvID keys. The set stays sorted/deduplicated (addInvalKey), i.e.
// canonical for the wire codec and for tagging cache entries.
func (c *Cluster) walkInvalKeys(out types.Tuple, evid types.ID, f *walkFrame, trees []*core.Tree) []uint64 {
	keys := append([]uint64(nil), f.EqKeys...)
	keys = addInvalKey(keys, VIDInvalKey(types.HashTuple(out)))
	if !evid.IsZero() {
		keys = addInvalKey(keys, VIDInvalKey(evid))
	}
	for _, p := range f.RootProvs {
		keys = addInvalKey(keys, VIDInvalKey(p.VID))
		if !p.EvID.IsZero() {
			keys = addInvalKey(keys, VIDInvalKey(p.EvID))
		}
	}
	for _, t := range trees {
		keys = addInvalKey(keys, c.EventClassKey(t.EventOf()))
		keys = addInvalKey(keys, VIDInvalKey(t.EvID()))
	}
	return keys
}

// reconstructWalk rebuilds the provenance trees from a completed walk
// using the given scheme state (the querier's own, or the partition
// shadow's when the query failed over to a replica).
func reconstructWalk(c *Cluster, querier *Node, state core.NodeState, f *walkFrame) []*core.Tree {
	entries := make(map[core.Ref]core.CollectedEntry, len(f.Entries))
	for _, ce := range f.Entries {
		entries[core.Ref{Loc: ce.Entry.Loc, RID: ce.Entry.RID}] = ce
	}
	tuples := make(map[types.ID]types.Tuple, len(f.Tuples))
	for _, t := range f.Tuples {
		tuples[types.HashTuple(t)] = t
	}
	provs := make(map[types.ID][]core.Prov, len(f.Provs))
	for _, p := range f.Provs {
		provs[p.VID] = append(provs[p.VID], p)
	}
	raw := state.Reconstruct(c.prog, c.funcs, f.Root, f.RootProvs, entries, tuples, provs)
	var trees []*core.Tree
	for _, t := range raw {
		if !f.EvID.IsZero() && t.EvID() != f.EvID {
			continue
		}
		dup := false
		for _, u := range trees {
			if u.Equal(t) {
				dup = true
				break
			}
		}
		if !dup {
			trees = append(trees, t)
		}
	}
	return trees
}
