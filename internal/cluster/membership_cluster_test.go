package cluster

import (
	"fmt"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/membership"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// elasticLine boots an n-node forwarding chain with the given replication
// factor and a retry budget small enough that a dead peer is suspected
// (and gossiped) within a quiesce window.
func elasticLine(t *testing.T, n, replicas int) (*Cluster, *topo.Graph) {
	t.Helper()
	g := topo.Line(n, "n")
	c, err := New(Config{
		Prog:      apps.Forwarding(),
		Funcs:     apps.Funcs(),
		Nodes:     g.Nodes(),
		Replicas:  replicas,
		Transport: TransportConfig{RetryBudget: 3, BackoffMax: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return c, g
}

// TestHealthyRunNoMembershipTraffic pins the subsystem's zero-cost
// property: a fixed-membership run with no failures exchanges no view
// frames at all — the statically converged boot view never changes, so
// gossip has nothing to say.
func TestHealthyRunNoMembershipTraffic(t *testing.T) {
	c, _ := elasticLine(t, 4, 0)
	if err := c.Inject(pkt("n0", "n0", "n3", "quiet")); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(recvT("n3", "n0", "n3", "quiet"), types.HashTuple(pkt("n0", "n0", "n3", "quiet")), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	s := c.MembershipStats()
	if s.ViewFrames != 0 || s.Suspicions != 0 || s.PartialWalks != 0 {
		t.Fatalf("healthy run produced membership traffic: %+v", s)
	}
	if s.Members != 4 || s.Alive != 4 {
		t.Fatalf("view = %d members / %d alive, want 4/4", s.Members, s.Alive)
	}
}

// TestSuspicionConvergesOnKill asserts the evidence-based failure path:
// killing a member and then sending traffic through it exhausts the
// transport retry budget, which marks the member Down, and gossip carries
// that row to every surviving view.
func TestSuspicionConvergesOnKill(t *testing.T) {
	c, _ := elasticLine(t, 4, 0)
	c.Node("n2").Kill()

	// Traffic that needs the n1->n2 link: the failed dials are the
	// suspicion evidence.
	if err := c.Inject(pkt("n0", "n0", "n3", "lost")); err != nil {
		t.Fatal(err)
	}
	c.Quiesce(10 * time.Second) //nolint:errcheck // drops expected
	if err := c.WaitMemberState("n2", membership.Down, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s := c.MembershipStats()
	if s.Suspicions == 0 {
		t.Fatal("no suspicion recorded after killing a member under traffic")
	}
	if s.ViewFrames == 0 {
		t.Fatal("suspicion did not gossip")
	}
}

// TestQueryFastFailSkipsDeadPeer is the regression test for the retry
// storm bug: a query whose walk needs a member every view already knows
// is down must fail immediately — zero walk retries, no camping on the
// dead peer's retry budget.
func TestQueryFastFailSkipsDeadPeer(t *testing.T) {
	c, _ := elasticLine(t, 4, 0)
	before := pkt("n0", "n0", "n3", "before")
	if err := c.Inject(before); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	c.Node("n2").Kill()
	// Prime every view: traffic through the dead node raises the
	// suspicion, quiesce lets it gossip everywhere.
	if err := c.Inject(pkt("n0", "n0", "n3", "prime")); err != nil {
		t.Fatal(err)
	}
	c.Quiesce(10 * time.Second) //nolint:errcheck // drops expected
	if err := c.WaitMemberState("n2", membership.Down, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	retriesBefore := c.TransportStats().QueryRetries
	start := time.Now()
	_, err := c.Query(recvT("n3", "n0", "n3", "before"), types.HashTuple(before), 30*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query crossing a known-dead member succeeded without replicas")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("fast-fail took %v; the walk burned timeout budget on a known-dead peer", elapsed)
	}
	if got := c.TransportStats().QueryRetries - retriesBefore; got != 0 {
		t.Fatalf("query spent %d retries on a member the view knew was down, want 0", got)
	}
}

// TestReplicaFailoverAfterKill is the acceptance property for k-way
// replication: with Replicas 2, killing the node that owns a query's
// output mid-run must leave the query answerable — a rendezvous replica
// acts as the querier from its partition shadow and returns the same
// derivation tree the primary would have.
func TestReplicaFailoverAfterKill(t *testing.T) {
	c, _ := elasticLine(t, 4, 2)
	ev := pkt("n0", "n0", "n3", "replicated")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	out := recvT("n3", "n0", "n3", "replicated")
	base, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
	if err != nil || len(base.Trees) != 1 {
		t.Fatalf("baseline query: %v (%d trees)", err, len(base.Trees))
	}

	c.Node("n3").Kill()
	// Prime suspicion so the failover walk routes around the dead owner.
	if err := c.Inject(pkt("n0", "n0", "n3", "prime")); err != nil {
		t.Fatal(err)
	}
	c.Quiesce(10 * time.Second) //nolint:errcheck // drops expected
	if err := c.WaitMemberState("n3", membership.Down, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
	if err != nil {
		t.Fatalf("query after killing the owner with replicas=2: %v", err)
	}
	if len(res.Trees) != 1 {
		t.Fatalf("failover query returned %d trees, want 1", len(res.Trees))
	}
	if !res.Trees[0].Equal(base.Trees[0]) {
		t.Fatalf("failover tree differs from the primary's:\nprimary: %v\nreplica: %v", base.Trees[0], res.Trees[0])
	}
	s := c.MembershipStats()
	if s.Failovers == 0 {
		t.Fatal("query succeeded but no failover was counted")
	}
	if s.ReplRecords == 0 {
		t.Fatal("replication factor 2 shipped no records")
	}
}

// TestJoinAddsMemberAndBootstraps grows the cluster at runtime: the new
// member must converge to Up in every view, receive bootstrap snapshots
// for the partitions it now replicates, and leave existing data fully
// queryable.
func TestJoinAddsMemberAndBootstraps(t *testing.T) {
	c, _ := elasticLine(t, 3, 1)
	ev := pkt("n0", "n0", "n2", "prejoin")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.Join("n3"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitMemberState("n3", membership.Up, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Ready() {
		t.Fatal("cluster not Ready after join settled")
	}

	members := c.Members()
	if len(members) != 4 {
		t.Fatalf("after join: %d members, want 4 (%v)", len(members), members)
	}
	seen := false
	for _, m := range members {
		if m.Addr == "n3" {
			seen = true
			if m.State != membership.Up {
				t.Fatalf("joined member state = %v, want Up", m.State)
			}
		}
	}
	if !seen {
		t.Fatalf("joined member missing from view: %v", members)
	}

	// The newcomer changed the rendezvous placement for someone, so at
	// least one bootstrap snapshot must have streamed.
	if s := c.MembershipStats(); s.Handoffs == 0 || s.HandoffBytes == 0 {
		t.Fatalf("join moved no partition data: %+v", s)
	}

	res, err := c.Query(recvT("n2", "n0", "n2", "prejoin"), types.HashTuple(ev), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("pre-join data after join: %v (%d trees)", err, len(res.Trees))
	}
}

// TestLeaveHandsOffAndStaysQueryable shrinks the cluster cooperatively: a
// mid-chain member leaves, its partition streams to the rendezvous
// successor, and both old provenance (walks crossing the departed member)
// and new traffic (tuples addressed to it, now redirected and applied by
// the acting owner) keep working.
func TestLeaveHandsOffAndStaysQueryable(t *testing.T) {
	c, _ := elasticLine(t, 4, 1)
	pre := pkt("n0", "n0", "n3", "preleave")
	if err := c.Inject(pre); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.Leave("n1"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitMemberState("n1", membership.Left, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s := c.MembershipStats()
	if s.Handoffs == 0 || s.HandoffBytes == 0 {
		t.Fatalf("leave streamed no partition data: %+v", s)
	}
	if s.RebalanceSeconds <= 0 {
		t.Fatalf("leave recorded no rebalance time: %+v", s)
	}

	// Exactly one acting primary for the departed member's partition, and
	// every surviving view agrees who it is.
	owner := c.OwnerOf("n1")
	if owner == "" {
		t.Fatal("no acting owner for the departed member's partition")
	}
	for _, addr := range []types.NodeAddr{"n0", "n2", "n3"} {
		n := c.Node(addr)
		servers := n.serversFor("n1")
		if len(servers) == 0 || servers[0] != owner {
			t.Fatalf("%s routes n1's partition to %v, cluster owner is %s", addr, servers, owner)
		}
	}
	if !c.Node(owner).canServe("n1") {
		t.Fatalf("acting owner %s does not hold n1's partition", owner)
	}

	// Old provenance: the walk for the pre-leave packet needs derivation
	// steps that happened at n1; the acting owner serves them.
	res, err := c.Query(recvT("n3", "n0", "n3", "preleave"), types.HashTuple(pre), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("pre-leave provenance after leave: %v (%d trees)", err, len(res.Trees))
	}

	// New traffic: the chain still routes through "n1" logically; sends
	// addressed to it redirect to the acting owner, whose hosted partition
	// applies the rules and forwards downstream.
	post := pkt("n0", "n0", "n3", "postleave")
	if err := c.Inject(post); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, out := range c.Outputs("n3") {
		if fmt.Sprint(out) == fmt.Sprint(recvT("n3", "n0", "n3", "postleave")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-leave packet never arrived: outputs %v", c.Outputs("n3"))
	}
	res, err = c.Query(recvT("n3", "n0", "n3", "postleave"), types.HashTuple(post), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("post-leave provenance: %v (%d trees)", err, len(res.Trees))
	}
}

// TestRestartReadRepair exercises the owner-return path: a killed member
// comes back, re-announces Up at a fresh epoch (beating the Down row the
// suspicion spread), and asks its replicas for their shadows back.
func TestRestartReadRepair(t *testing.T) {
	c, _ := elasticLine(t, 4, 2)
	ev := pkt("n0", "n0", "n3", "repair")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	c.Node("n2").Kill()
	if err := c.Inject(pkt("n0", "n0", "n3", "prime")); err != nil {
		t.Fatal(err)
	}
	c.Quiesce(10 * time.Second) //nolint:errcheck // drops expected
	if err := c.WaitMemberState("n2", membership.Down, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitMemberState("n2", membership.Up, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s := c.MembershipStats(); s.Repairs == 0 {
		t.Fatalf("restart triggered no read-repair: %+v", s)
	}
	res, err := c.Query(recvT("n3", "n0", "n3", "repair"), types.HashTuple(ev), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("query after restart+repair: %v (%d trees)", err, len(res.Trees))
	}
}
