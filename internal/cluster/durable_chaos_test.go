package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/store"
	"provcompress/internal/topo"
	"provcompress/internal/types"
)

// durableCluster boots a 4-node forwarding chain that persists under dir.
func durableCluster(t *testing.T, dir string, opts store.Options) *Cluster {
	t.Helper()
	g := topo.Line(4, "n")
	c, err := New(Config{
		Prog:       apps.Forwarding(),
		Funcs:      apps.Funcs(),
		Nodes:      g.Nodes(),
		DataDir:    dir,
		Durability: opts,
		Transport:  TransportConfig{RetryBudget: 12, BackoffMax: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}
	return c
}

// clusterOutcome captures everything a recovery must reproduce: the sorted
// output set, the provenance tree of every event, and the per-node storage
// accounting.
func clusterOutcome(t *testing.T, c *Cluster, evs []types.Tuple) (outputs []string, trees map[string]string) {
	t.Helper()
	for _, out := range c.AllOutputs() {
		outputs = append(outputs, out.String())
	}
	sort.Strings(outputs)
	trees = make(map[string]string, len(evs))
	for _, ev := range evs {
		out := recvT(ev.Args[2].AsString(), ev.Args[1].AsString(), ev.Args[2].AsString(), ev.Args[3].AsString())
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil {
			t.Fatalf("query %v: %v", out, err)
		}
		if len(res.Trees) != 1 {
			t.Fatalf("query %v: %d trees", out, len(res.Trees))
		}
		trees[ev.String()] = res.Trees[0].String()
	}
	return outputs, trees
}

func durableTestEvents(n int) []types.Tuple {
	evs := make([]types.Tuple, 0, n)
	for i := 0; i < n; i++ {
		dst := "n3"
		if i%3 == 2 {
			dst = "n2"
		}
		evs = append(evs, pkt("n0", "n0", dst, fmt.Sprintf("dur-p%d", i)))
	}
	return evs
}

// TestChaosDurableKillRestartReplaysWAL is the headline durability
// property: a killed node's RAM state is discarded on Restart
// (recoverForRestart builds a fresh state machine), so if outputs and
// provenance trees match the pre-crash run, they were reconstructed from
// the snapshot + WAL on disk — not carried over in memory.
func TestChaosDurableKillRestartReplaysWAL(t *testing.T) {
	// SnapshotEvery 0: no automatic checkpoints, recovery is pure WAL
	// replay.
	c := durableCluster(t, t.TempDir(), store.Options{Fsync: store.SyncAlways})
	defer c.Close()

	evs := durableTestEvents(9)
	for _, ev := range evs {
		if err := c.Inject(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantOut, wantTrees := clusterOutcome(t, c, evs)
	wantBytes := c.StorageBytes("n2")
	if wantBytes <= 0 {
		t.Fatalf("mid-chain node reports %d provenance bytes before the crash", wantBytes)
	}

	c.Node("n2").Kill()
	time.Sleep(20 * time.Millisecond)
	if err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	ds := c.DurabilityStats()
	if !ds.Enabled {
		t.Fatal("durability not enabled despite DataDir")
	}
	if ds.ReplayedRecords == 0 {
		t.Errorf("restart replayed no WAL records: %+v", ds)
	}
	if ds.RecoveredNodes == 0 {
		t.Errorf("no member reports a recovery: %+v", ds)
	}
	if ds.TornRecords != 0 {
		t.Errorf("clean kill after quiesce produced torn records: %+v", ds)
	}

	gotOut, gotTrees := clusterOutcome(t, c, evs)
	if strings.Join(gotOut, "\n") != strings.Join(wantOut, "\n") {
		t.Errorf("outputs diverged across crash recovery:\ngot:\n%s\nwant:\n%s",
			strings.Join(gotOut, "\n"), strings.Join(wantOut, "\n"))
	}
	for ev, want := range wantTrees {
		if gotTrees[ev] != want {
			t.Errorf("tree for %s diverged across crash recovery:\ngot:\n%s\nwant:\n%s",
				ev, gotTrees[ev], want)
		}
	}
	if got := c.StorageBytes("n2"); got != wantBytes {
		t.Errorf("storage accounting diverged across recovery: want %d, got %d", wantBytes, got)
	}

	// New traffic flows through the recovered node.
	extra := pkt("n0", "n0", "n3", "post-recovery")
	if err := c.Inject(extra); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(recvT("n3", "n0", "n3", "post-recovery"), types.HashTuple(extra), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("post-recovery query: %v (%d trees)", err, len(res.Trees))
	}
}

// TestChaosDurableSnapshotPlusTail: with a small checkpoint threshold the
// recovery path is snapshot restore plus a short WAL tail, and the result
// is indistinguishable from the replay-everything path.
func TestChaosDurableSnapshotPlusTail(t *testing.T) {
	c := durableCluster(t, t.TempDir(), store.Options{Fsync: store.SyncAlways, SnapshotEvery: 4})
	defer c.Close()

	evs := durableTestEvents(9)
	for _, ev := range evs {
		if err := c.Inject(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ds := c.DurabilityStats(); ds.Snapshots == 0 {
		t.Fatalf("no checkpoints fired with SnapshotEvery=4 over %d events: %+v", len(evs), ds)
	}
	wantOut, wantTrees := clusterOutcome(t, c, evs)

	c.Node("n2").Kill()
	time.Sleep(20 * time.Millisecond)
	if err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	if ds := c.DurabilityStats(); ds.RecoveredNodes == 0 {
		t.Errorf("no member reports a recovery: %+v", ds)
	}
	gotOut, gotTrees := clusterOutcome(t, c, evs)
	if strings.Join(gotOut, "\n") != strings.Join(wantOut, "\n") {
		t.Errorf("outputs diverged across snapshot recovery:\ngot:\n%s\nwant:\n%s",
			strings.Join(gotOut, "\n"), strings.Join(wantOut, "\n"))
	}
	for ev, want := range wantTrees {
		if gotTrees[ev] != want {
			t.Errorf("tree for %s diverged across snapshot recovery:\ngot:\n%s\nwant:\n%s",
				ev, gotTrees[ev], want)
		}
	}
}

// TestChaosDurableRollingRestart kills and recovers every member in turn —
// after the full roll, no byte of provenance state survives from the
// original boot, yet every query still answers with the original tree.
func TestChaosDurableRollingRestart(t *testing.T) {
	c := durableCluster(t, t.TempDir(), store.Options{Fsync: store.SyncAlways, SnapshotEvery: 6})
	defer c.Close()

	evs := durableTestEvents(6)
	for _, ev := range evs {
		if err := c.Inject(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantOut, wantTrees := clusterOutcome(t, c, evs)
	wantTotal := c.TotalStorageBytes()

	for _, addr := range []types.NodeAddr{"n0", "n1", "n2", "n3"} {
		c.Node(addr).Kill()
		time.Sleep(20 * time.Millisecond)
		if err := c.Restart(addr); err != nil {
			t.Fatalf("restart %s: %v", addr, err)
		}
		if err := c.Quiesce(30 * time.Second); err != nil {
			t.Fatalf("quiesce after restarting %s: %v", addr, err)
		}
	}

	ds := c.DurabilityStats()
	if ds.RecoveredNodes != 4 {
		t.Errorf("RecoveredNodes = %d after a full roll, want 4: %+v", ds.RecoveredNodes, ds)
	}
	gotOut, gotTrees := clusterOutcome(t, c, evs)
	if strings.Join(gotOut, "\n") != strings.Join(wantOut, "\n") {
		t.Errorf("outputs diverged across rolling restart:\ngot:\n%s\nwant:\n%s",
			strings.Join(gotOut, "\n"), strings.Join(wantOut, "\n"))
	}
	for ev, want := range wantTrees {
		if gotTrees[ev] != want {
			t.Errorf("tree for %s diverged across rolling restart:\ngot:\n%s\nwant:\n%s",
				ev, gotTrees[ev], want)
		}
	}
	if got := c.TotalStorageBytes(); got != wantTotal {
		t.Errorf("total storage accounting diverged across rolling restart: want %d, got %d", wantTotal, got)
	}
}

// TestChaosDurableKillMidTraffic kills a node while frames addressed to it
// are in flight (crash-mid-write from the node's perspective), restarts it,
// and requires the combination of disk recovery and transport retries to
// deliver every packet with correct provenance.
func TestChaosDurableKillMidTraffic(t *testing.T) {
	c := durableCluster(t, t.TempDir(), store.Options{Fsync: store.SyncAlways, SnapshotEvery: 5})
	defer c.Close()

	before := pkt("n0", "n0", "n3", "before")
	if err := c.Inject(before); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	c.Node("n2").Kill()
	time.Sleep(20 * time.Millisecond)

	// Injected while n2 is down: n0/n1 process and ship; the n1->n2 leg
	// retries until the restart lands.
	during := pkt("n0", "n0", "n3", "during")
	if err := c.Inject(during); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	after := pkt("n0", "n0", "n3", "after")
	if err := c.Inject(after); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if outs := c.Outputs("n3"); len(outs) != 3 {
		t.Fatalf("outputs after mid-traffic crash = %v, want 3 packets", outs)
	}
	for _, ev := range []types.Tuple{before, during, after} {
		out := recvT("n3", "n0", "n3", ev.Args[3].AsString())
		res, err := c.Query(out, types.HashTuple(ev), 10*time.Second)
		if err != nil || len(res.Trees) != 1 {
			t.Fatalf("query %v after mid-traffic crash: %v (%d trees)", out, err, len(res.Trees))
		}
	}
	ds := c.DurabilityStats()
	if ds.RecoveredNodes == 0 {
		t.Errorf("no member reports a recovery: %+v", ds)
	}
	if stats := c.TransportStats(); stats.Drops > 0 {
		t.Errorf("frames lost despite restart landing in the retry window: %+v", stats)
	}
}
