package cluster

import (
	"hash/fnv"
	"math/rand"
	"time"

	"provcompress/internal/types"
)

// FaultPlan deterministically injects transport faults into the cluster:
// frame drops, write stalls, and one-shot connection resets, all keyed off
// a seeded per-link RNG so a chaos run is reproducible. Node crashes are
// driven explicitly through Node.Kill and Cluster.Restart rather than by
// the RNG, so tests control exactly when a member disappears.
//
// A dropped or stalled write is observed by the sender as a failed
// attempt, so the transport's retry/backoff machinery recovers from any
// fault the plan injects with probability < 1; the plan models a lossy
// network, not a lossy application.
type FaultPlan struct {
	// Seed keys the per-link RNG streams; two runs with the same seed and
	// the same plan inject the same fault sequence on every link.
	Seed int64
	// Drop is the per-write-attempt probability that the frame is
	// discarded before reaching the wire (transient link loss).
	Drop float64
	// Delay is the per-write-attempt probability that the write stalls
	// for DelayFor before proceeding (a slow peer or congested link).
	Delay float64
	// DelayFor is how long a delayed attempt stalls (default 5ms).
	DelayFor time.Duration
	// ResetAfter, when positive, resets each link's connection once after
	// that many successful writes (a one-shot mid-stream RST).
	ResetAfter int
}

// faultAction is what the plan injects on one write attempt.
type faultAction int

const (
	faultNone faultAction = iota
	faultDrop
	faultDelay
	faultReset
)

// linkSeed derives a stable per-link RNG seed from the plan seed and the
// link endpoints.
func linkSeed(seed int64, from, to types.NodeAddr) int64 {
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{'>'})
	h.Write([]byte(to))
	return seed ^ int64(h.Sum64())
}

// linkFaults is the per-link fault stream: one exists per transport and is
// only touched by that transport's writer goroutine, so the injected
// sequence is a deterministic function of (plan, link, attempt index).
type linkFaults struct {
	plan  *FaultPlan
	rng   *rand.Rand
	sends int  // successful writes on this link
	reset bool // the one-shot reset already fired
}

// link returns the fault stream for one directed link (nil plan = nil
// stream = no faults).
func (p *FaultPlan) link(from, to types.NodeAddr) *linkFaults {
	if p == nil {
		return nil
	}
	return &linkFaults{
		plan: p,
		rng:  rand.New(rand.NewSource(linkSeed(p.Seed, from, to))),
	}
}

// delayFor returns the stall duration for a delay fault.
func (l *linkFaults) delayFor() time.Duration {
	if l.plan.DelayFor > 0 {
		return l.plan.DelayFor
	}
	return 5 * time.Millisecond
}

// next draws the fault action for the next write attempt.
func (l *linkFaults) next() faultAction {
	if l == nil {
		return faultNone
	}
	if l.plan.ResetAfter > 0 && !l.reset && l.sends >= l.plan.ResetAfter {
		l.reset = true
		return faultReset
	}
	if l.plan.Drop <= 0 && l.plan.Delay <= 0 {
		return faultNone
	}
	r := l.rng.Float64()
	if r < l.plan.Drop {
		return faultDrop
	}
	if r < l.plan.Drop+l.plan.Delay {
		return faultDelay
	}
	return faultNone
}

// sent records one successful write (feeds the one-shot reset trigger).
func (l *linkFaults) sent() {
	if l != nil {
		l.sends++
	}
}
