package cluster

import (
	"math/rand"
	"testing"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/types"
)

// TestMalformedFramesNoPanic feeds truncated and corrupted frames of
// every protocol kind through the receive path: nothing may panic, the
// in-flight accounting must stay balanced (the floor guard refuses to
// settle frames it never counted), and the cluster must keep working
// afterwards. It complements the wire-level fuzz test, which covers the
// codec but not the cluster's frame handlers.
func TestMalformedFramesNoPanic(t *testing.T) {
	c := fig2Cluster(t)
	n := c.Node("n1")

	inners := map[string][]byte{
		"tuple":   (&tupleFrame{Tuple: pkt("n1", "n1", "n3", "x"), Fresh: true}).encode(),
		"tuple2":  (&tupleFrame{Tuple: pkt("n2", "n1", "n3", "y"), Meta: core.AdvMeta{}}).encode(),
		"sig":     encodeSig(),
		"walk":    sampleWalk().encode(frameWalk),
		"result":  sampleWalk().encode(frameResult),
		"unknown": {0xEE, 0x01, 0x02},
	}

	var seq uint64
	feed := func(payload []byte) {
		n.handleFrame(payload)
	}
	for name, inner := range inners {
		// Every truncation of the enveloped frame, including an empty
		// payload and a cut inside the envelope header.
		full := encodeEnvelope("zz", 0, 0, 0, inner)
		for cut := 0; cut <= len(full); cut++ {
			seq++
			env := encodeEnvelope("zz", 0, seq, 0, inner)
			limit := cut
			if limit > len(env) {
				limit = len(env)
			}
			feed(env[:limit])
		}
		// Seeded random corruption of the full frame.
		rng := rand.New(rand.NewSource(int64(len(name))))
		for trial := 0; trial < 64; trial++ {
			seq++
			env := encodeEnvelope("zz", 0, seq, 0, inner)
			for flips := 0; flips <= trial%4; flips++ {
				env[rng.Intn(len(env))] ^= byte(1 << rng.Intn(8))
			}
			feed(env)
		}
	}
	// Absurd repeat counts inside a walk frame must be rejected by the
	// item guard, not allocated.
	seq++
	huge := sampleWalk().encode(frameWalk)
	// The first U32 count (RootProvs) sits after kind+qid+querier+root+evid.
	feed(encodeEnvelope("zz", 0, seq, 0, corruptFirstCount(huge)))

	// Corrupt-but-decodable tuples may legitimately fire rules and ship
	// real (counted) frames; those settle. What must NOT remain is any
	// residue from the malformed ones, which were never counted.
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.inflight.Load(); got != 0 {
		t.Fatalf("in-flight counter leaked to %d on malformed frames", got)
	}

	// The cluster still forwards and answers queries.
	ev := pkt("n1", "n1", "n3", "after-garbage")
	if err := c.Inject(ev); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, out := range c.Outputs("n3") {
		if out.Equal(recvT("n3", "n1", "n3", "after-garbage")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("forwarding broken after malformed frames: %v", c.Outputs("n3"))
	}
	res, err := c.Query(recvT("n3", "n1", "n3", "after-garbage"), types.HashTuple(ev), 10*time.Second)
	if err != nil || len(res.Trees) != 1 {
		t.Fatalf("query broken after malformed frames: %v (%d trees)", err, len(res.Trees))
	}
}

// TestMalformedFrameAccountingUnderLoad interleaves garbage with real
// traffic: the garbage must neither wedge Quiesce (by stealing settles)
// nor corrupt the real packets' provenance.
func TestMalformedFrameAccountingUnderLoad(t *testing.T) {
	c := fig2Cluster(t)
	n2 := c.Node("n2")
	for i := 0; i < 8; i++ {
		if err := c.Inject(pkt("n1", "n1", "n3", string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
		n2.handleFrame(encodeEnvelope("zz", 0, uint64(i+1), 0, []byte{frameTuple, 0xFF}))
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Outputs("n3")); got != 8 {
		t.Fatalf("outputs = %d, want 8", got)
	}
	if got := c.inflight.Load(); got != 0 {
		t.Fatalf("in-flight counter = %d after quiesce", got)
	}
}

// sampleWalk builds a small well-formed walk frame to truncate/corrupt.
func sampleWalk() *walkFrame {
	return &walkFrame{
		QID:     42,
		Querier: "n1",
		Root:    pkt("n1", "n1", "n3", "w"),
		Work:    []core.Ref{{Loc: "n2"}},
		Hops:    3,
	}
}

// corruptFirstCount overwrites the RootProvs count field with a value far
// past maxWalkItems.
func corruptFirstCount(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	// Layout: kind(1) + qid(8) + querier len(4)+2 + root len(4)+n + evid(20) + count(4).
	// Rather than computing the exact offset, force every aligned u32 that
	// currently reads small to a huge value; the decoder must survive all
	// of them.
	for i := 1; i+4 <= len(out); i += 4 {
		out[i] = 0xFF
	}
	return out
}
