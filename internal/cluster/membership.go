// Elastic membership for the real-socket cluster: every node keeps a
// gossiped CRDT view of the member set (internal/membership), partitions
// are placed by rendezvous hashing, and with Config.Replicas > 0 each
// member streams its accepted records to k peers that maintain shadow
// copies of its partition.
//
// The moving parts, and how they compose with the existing fault model:
//
//   - View gossip (frameView) only flows when the view changes. A cluster
//     booted with a fixed member set starts from a static converged view,
//     so a healthy fixed-membership run sends zero membership frames and
//     stays byte-identical to the pre-membership transport.
//
//   - Suspicion is evidence-based, not probe-based: a transport that
//     abandons a frame after exhausting its retry budget without ever
//     holding a connection (every dial failed) marks the peer Down in the
//     sender's view and gossips. There are no heartbeat probes, so the
//     retry window that lets a killed-and-restarted node catch its
//     traffic is untouched. A member seeing itself Down refutes by
//     re-announcing Up at a higher epoch.
//
//   - Replication (frameRepl) ships the same byte records the durability
//     layer logs (durability.go), so a replica replays the owner's apply
//     stream through the same code path recovery uses. Shadows never ship
//     derived heads — the owner already did.
//
//   - Handoff (frameHandoff) streams snapshotPayload — the exact codec
//     checkpoints use — and installs it by merging, not restoring, so a
//     replicated record that raced ahead of the snapshot is kept and one
//     the snapshot already contains is a no-op, in either arrival order.
//
//   - Query failover: when a partition's owner is unreachable, walks are
//     served from (or routed to) a rendezvous replica; a walk that cannot
//     reach anyone holding the data returns Partial and the querier fails
//     fast instead of burning its retry budget on a known outage.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/engine"
	"provcompress/internal/membership"
	"provcompress/internal/metrics"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// partition is a local copy of another member's state: a replica shadow
// while the owner is alive, a hosted partition once the owner has Left.
// It carries the same (database, scheme state, outputs) triple a Node
// does, so the snapshot/merge codecs and the walk-serving code apply to
// both unchanged.
type partition struct {
	owner types.NodeAddr

	mu      sync.Mutex
	db      *engine.Database
	state   core.NodeState
	outputs []types.Tuple
}

// membStats are the cluster-wide membership counters. Everything here is
// off the hot path of a fixed-membership run: the counters only move when
// views change, replication is on, or a failover happens.
type membStats struct {
	viewFrames   atomic.Int64 // gossip frames sent
	suspicions   atomic.Int64 // members marked Down from transport evidence
	refutations  atomic.Int64 // self re-announcements beating a false Down
	replRecords  atomic.Int64 // replicated records shipped
	handoffs     atomic.Int64 // partition snapshots streamed
	handoffBytes atomic.Int64 // snapshot payload bytes moved by handoffs
	repairs      atomic.Int64 // read-repair merges applied into an owner
	failovers    atomic.Int64 // queries answered through a replica
	partialWalks atomic.Int64 // walks returned Partial (unreachable member)
	rebalanceNs  atomic.Int64 // wall time spent waiting on handoff acks
}

// MembershipStats is a point-in-time snapshot of the membership
// subsystem, summed across members.
type MembershipStats struct {
	Replicas     int   // configured k
	Members      int   // rows in the (merged) view, any state
	Alive        int   // members the view believes serve traffic
	ViewVersion  uint64
	ViewFrames   int64
	Suspicions   int64
	Refutations  int64
	ReplRecords  int64
	Handoffs     int64
	HandoffBytes int64
	Repairs      int64
	Failovers    int64
	PartialWalks int64
	// RebalanceSeconds is the cumulative wall time Leave/bootstrap flows
	// spent waiting for handoff acknowledgements.
	RebalanceSeconds float64
}

// Counters exports the snapshot as an ordered metrics counter set.
func (s MembershipStats) Counters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("members", int64(s.Members))
	c.Add("alive", int64(s.Alive))
	c.Add("view-version", int64(s.ViewVersion))
	c.Add("view-frames", s.ViewFrames)
	c.Add("suspicions", s.Suspicions)
	c.Add("refutations", s.Refutations)
	c.Add("repl-records", s.ReplRecords)
	c.Add("handoffs", s.Handoffs)
	c.Add("handoff-bytes", s.HandoffBytes)
	c.Add("repairs", s.Repairs)
	c.Add("failovers", s.Failovers)
	c.Add("partial-walks", s.PartialWalks)
	return c
}

// MembershipStats snapshots the cluster's membership counters plus the
// first live member's view summary.
func (c *Cluster) MembershipStats() MembershipStats {
	s := MembershipStats{
		Replicas:         c.replicas,
		ViewFrames:       c.memb.viewFrames.Load(),
		Suspicions:       c.memb.suspicions.Load(),
		Refutations:      c.memb.refutations.Load(),
		ReplRecords:      c.memb.replRecords.Load(),
		Handoffs:         c.memb.handoffs.Load(),
		HandoffBytes:     c.memb.handoffBytes.Load(),
		Repairs:          c.memb.repairs.Load(),
		Failovers:        c.memb.failovers.Load(),
		PartialWalks:     c.memb.partialWalks.Load(),
		RebalanceSeconds: time.Duration(c.memb.rebalanceNs.Load()).Seconds(),
	}
	if n := c.firstAlive(); n != nil {
		n.viewMu.Lock()
		s.Members = n.view.Len()
		s.Alive = len(n.view.AliveAddrs())
		s.ViewVersion = n.view.Version()
		n.viewMu.Unlock()
	}
	return s
}

// Replicas returns the configured replication factor.
func (c *Cluster) Replicas() int { return c.replicas }

// firstAlive returns the lowest-addressed live member, or nil.
func (c *Cluster) firstAlive() *Node {
	var best *Node
	for _, n := range c.nodeMap() {
		if n.Alive() && (best == nil || n.addr < best.addr) {
			best = n
		}
	}
	return best
}

// Members returns the membership rows as the cluster currently believes
// them: the union (CRDT merge) of every live member's view, sorted by
// address. After a Quiesce the per-node views agree and this is exactly
// each node's local view.
func (c *Cluster) Members() []membership.Member {
	merged := membership.NewView()
	for _, n := range c.nodeMap() {
		if !n.Alive() {
			continue
		}
		n.viewMu.Lock()
		v := n.view.Clone()
		n.viewMu.Unlock()
		merged.Merge(v)
	}
	return merged.Members()
}

// WaitMemberState blocks until every live member's view records addr in
// exactly state st, or the timeout passes.
func (c *Cluster) WaitMemberState(addr types.NodeAddr, st membership.State, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		agreed := true
		for _, n := range c.nodeMap() {
			if !n.Alive() || n.addr == addr {
				continue
			}
			n.viewMu.Lock()
			row, ok := n.view.Get(addr)
			n.viewMu.Unlock()
			if !ok || row.State != st {
				agreed = false
				break
			}
		}
		if agreed {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: view did not converge on %s=%s", addr, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// OwnerOf returns the member that serves L's partition when L itself is
// gone: the best rendezvous candidate among the non-Left members other
// than L. Every converged member computes the same answer, which is the
// exactly-one-acting-primary property the chaos suite asserts.
func (c *Cluster) OwnerOf(L types.NodeAddr) types.NodeAddr {
	n := c.firstAlive()
	if n == nil {
		return ""
	}
	servers := n.serversFor(L)
	if len(servers) == 0 {
		return ""
	}
	return servers[0]
}

// Ready reports whether no partition handoff is in progress anywhere:
// every streamed snapshot has been acknowledged (or written off). The
// serving layer's /readyz gates on it.
func (c *Cluster) Ready() bool {
	for _, n := range c.nodeMap() {
		if n.handoffsActive.Load() != 0 {
			return false
		}
	}
	return true
}

// waitReady polls Ready until it holds or the deadline passes.
func (c *Cluster) waitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for !c.Ready() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// --- View plumbing on the node ---

// viewAlive reports whether this node's view believes addr serves
// traffic. The downLeft gate keeps the check a single atomic load on the
// (overwhelmingly common) fully-healthy view.
func (n *Node) viewAlive(addr types.NodeAddr) bool {
	if n.downLeft.Load() == 0 {
		return true
	}
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	return n.view.Alive(addr)
}

// refreshViewLocked recomputes everything derived from the view: the
// downLeft gate and, with replication on, the cached replica target set.
// It returns the targets that need a bootstrap snapshot — peers that just
// became replica targets (or came back from Down and need their shadow
// refreshed). Callers hold viewMu and must send the bootstraps after
// releasing it (the snapshot takes n.mu). newNode passes bootstrap=false:
// at boot everyone is empty, so the record stream alone builds a complete
// shadow and no frames flow.
func (n *Node) refreshViewLocked(bootstrap bool) []types.NodeAddr {
	alive := n.view.AliveAddrs()
	n.downLeft.Store(int64(n.view.Len() - len(alive)))
	if n.c.replicas <= 0 {
		return nil
	}
	targets := membership.Replicas(n.addr, n.c.replicas, alive)
	old, _ := n.replTargets.Load().([]types.NodeAddr)
	n.replTargets.Store(targets)
	n.replVersion = n.view.Version()
	if !bootstrap {
		return nil
	}
	var boots []types.NodeAddr
	for _, t := range targets {
		known := false
		for _, o := range old {
			if o == t {
				known = true
				break
			}
		}
		if !known {
			boots = append(boots, t)
		}
	}
	return boots
}

// gossipTargetsLocked picks the fan-out for one gossip round: peers at
// ring distances 1, 2, 4, 8, … over the sorted alive member list (at most
// 8 of them), so a change reaches N members in O(log N) rounds without
// any member addressing the whole cluster. Callers hold viewMu.
func (n *Node) gossipTargetsLocked() []types.NodeAddr {
	alive := n.view.AliveAddrs()
	self := -1
	for i, a := range alive {
		if a == n.addr {
			self = i
			break
		}
	}
	if self < 0 {
		// Not alive in our own view (e.g. announcing Left): fan out from
		// position 0 so the announcement still spreads.
		self = 0
	}
	var out []types.NodeAddr
	seen := make(map[types.NodeAddr]bool, 8)
	for d := 1; d < len(alive) && len(out) < 8; d *= 2 {
		t := alive[(self+d)%len(alive)]
		if t == n.addr || seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// gossipView sends this node's current full view to its gossip fan-out.
// Used only where the whole view IS the news (a joiner introducing the
// seed view it was given); everything else gossips deltas.
func (n *Node) gossipView() {
	n.viewMu.Lock()
	frame := encodeView(n.view)
	targets := n.gossipTargetsLocked()
	n.viewMu.Unlock()
	n.sendGossip(frame, targets)
}

// gossipDelta sends just the changed rows to the gossip fan-out. The
// row-wise CRDT merge makes a partial view carry this update's full
// news, so the epidemic payload stays O(changed rows) instead of
// O(membership) — at 1000 members that is the difference between moving
// kilobytes and moving a gigabyte per convergence.
func (n *Node) gossipDelta(delta []membership.Member) {
	if len(delta) == 0 {
		return
	}
	dv := membership.NewView()
	for _, m := range delta {
		dv.Set(m)
	}
	n.viewMu.Lock()
	targets := n.gossipTargetsLocked()
	n.viewMu.Unlock()
	n.sendGossip(encodeView(dv), targets)
}

func (n *Node) sendGossip(frame []byte, targets []types.NodeAddr) {
	for _, t := range targets {
		if n.send(t, frame, classProv, 0) == nil {
			n.c.memb.viewFrames.Add(1)
		}
	}
}

// handleView merges a gossiped view. On change it re-gossips the changed
// rows (that is the epidemic), refutes a false suspicion of itself, and
// bootstraps any peer that just became one of its replica targets.
func (n *Node) handleView(v *membership.View) {
	n.viewMu.Lock()
	delta := n.view.MergeDelta(v)
	var boots []types.NodeAddr
	if len(delta) > 0 {
		if row, ok := n.view.Get(n.addr); ok && row.State == membership.Down && n.alive.Load() {
			// Someone suspects us but we are processing frames: refute at a
			// higher epoch than the suspicion carried.
			e := row.Epoch + 1
			if cur := n.memberEpoch.Load(); cur >= e {
				e = cur + 1
			}
			n.memberEpoch.Store(e)
			up := membership.Member{Addr: n.addr, Epoch: e, State: membership.Up}
			n.view.Set(up)
			delta = append(delta, up)
			n.c.memb.refutations.Add(1)
		}
		boots = n.refreshViewLocked(true)
	}
	n.viewMu.Unlock()
	if len(delta) == 0 {
		return
	}
	n.gossipDelta(delta)
	for _, b := range boots {
		n.sendBootstrap(b)
	}
}

// suspect marks a peer Down at its current epoch after hard transport
// evidence (transport.go calls this when a frame is abandoned with every
// dial failed and no connection ever held). The same epoch plus the
// higher Down rank wins the merge against the stale Up row everywhere,
// and the peer refutes at epoch+1 if it is actually alive.
func (n *Node) suspect(peer types.NodeAddr) {
	if !n.alive.Load() || n.c.closed.Load() || peer == n.addr {
		return
	}
	n.viewMu.Lock()
	row, ok := n.view.Get(peer)
	if !ok || !row.State.Alive() {
		n.viewMu.Unlock()
		return
	}
	down := membership.Member{Addr: peer, Epoch: row.Epoch, State: membership.Down}
	n.view.Set(down)
	boots := n.refreshViewLocked(true)
	n.viewMu.Unlock()
	n.c.memb.suspicions.Add(1)
	n.gossipDelta([]membership.Member{down})
	for _, b := range boots {
		n.sendBootstrap(b)
	}
}

// announce sets this node's own row to st at a fresh epoch and gossips
// the row.
func (n *Node) announce(st membership.State) {
	n.viewMu.Lock()
	e := n.memberEpoch.Add(1)
	if row, ok := n.view.Get(n.addr); ok && row.Epoch >= e {
		e = row.Epoch + 1
		n.memberEpoch.Store(e)
	}
	self := membership.Member{Addr: n.addr, Epoch: e, State: st}
	n.view.Set(self)
	boots := n.refreshViewLocked(true)
	n.viewMu.Unlock()
	n.gossipDelta([]membership.Member{self})
	for _, b := range boots {
		n.sendBootstrap(b)
	}
}

// serversFor returns the members that can serve L's partition when L is
// unreachable: the top-k rendezvous candidates among the non-Left members
// other than L (k at least 1 so routing works even without replication).
// Placement intentionally includes Down members — a transient failure
// must not move partitions, readers just skip to the next candidate.
func (n *Node) serversFor(L types.NodeAddr) []types.NodeAddr {
	k := n.c.replicas
	if k < 1 {
		k = 1
	}
	n.viewMu.Lock()
	cands := make([]types.NodeAddr, 0, n.view.Len())
	for _, m := range n.view.Members() {
		if m.Addr != L && m.State != membership.Left {
			cands = append(cands, m.Addr)
		}
	}
	n.viewMu.Unlock()
	return membership.Owners([]byte(L), k, cands)
}

// routeFor redirects a frame addressed to a Left member to the acting
// owner of its partition. Down members are NOT redirected: they may be
// restarting, and the transport retry budget is exactly the mechanism
// that delivers to them when they come back. Callers gate on downLeft so
// a healthy view costs one atomic load.
func (n *Node) routeFor(to types.NodeAddr) types.NodeAddr {
	n.viewMu.Lock()
	row, ok := n.view.Get(to)
	n.viewMu.Unlock()
	if !ok || row.State != membership.Left {
		return to
	}
	for _, s := range n.serversFor(to) {
		if s == n.addr || n.viewAlive(s) {
			return s
		}
	}
	return to
}

// routeWalk returns the member a walk bound for refs owned by L should
// visit: L itself while the view believes it alive, otherwise the first
// reachable rendezvous server (self counts only when it actually holds
// the partition). "" means nobody reachable can serve — the walk must
// return Partial.
func (n *Node) routeWalk(L types.NodeAddr) types.NodeAddr {
	if n.viewAlive(L) {
		return L
	}
	for _, s := range n.serversFor(L) {
		if s == n.addr {
			if n.partitionFor(L, false) != nil {
				return s
			}
			continue
		}
		if n.viewAlive(s) {
			return s
		}
	}
	return ""
}

// canServe reports whether this node can answer walk refs owned by loc:
// its own refs always, a held partition's refs only while the owner is
// unreachable (an alive owner has fresher data and serves itself).
func (n *Node) canServe(loc types.NodeAddr) bool {
	if loc == n.addr {
		return true
	}
	if n.downLeft.Load() == 0 {
		return false
	}
	if n.viewAlive(loc) {
		return false
	}
	return n.partitionFor(loc, false) != nil
}

// partitionFor returns (optionally creating) the local copy of owner's
// partition.
func (n *Node) partitionFor(owner types.NodeAddr, create bool) *partition {
	n.partsMu.Lock()
	defer n.partsMu.Unlock()
	p := n.parts[owner]
	if p == nil && create {
		st, err := core.NewNodeState(n.c.scheme, n.c.keys)
		if err != nil {
			return nil
		}
		p = &partition{owner: owner, db: engine.NewDatabase(), state: st}
		if n.c.graveyardCap > 0 {
			p.db.SetGraveyardCap(n.c.graveyardCap)
		}
		n.parts[owner] = p
	}
	return p
}

// --- Replication ---

// replicate ships one durable-format record to this member's replica
// targets. The record bytes are exactly what the WAL logs, so owner and
// shadow replay identical streams. Off (and a single atomic load) when
// replication is disabled or the target cache is empty.
func (n *Node) replicate(rec []byte) {
	if n.c.replicas <= 0 {
		return
	}
	targets, _ := n.replTargets.Load().([]types.NodeAddr)
	if len(targets) == 0 {
		return
	}
	frame := encodeRepl(n.addr, rec)
	for _, t := range targets {
		if n.send(t, frame, classProv, 0) == nil {
			n.c.memb.replRecords.Add(1)
		}
	}
}

// handleRepl applies one replicated record into the shadow of owner's
// partition, through the same per-kind switch recovery uses.
func (n *Node) handleRepl(owner types.NodeAddr, rec []byte) {
	if owner == n.addr {
		return // a confused echo; our own state is authoritative
	}
	p := n.partitionFor(owner, true)
	if p == nil {
		return
	}
	p.mu.Lock()
	p.applyRecord(n.c, rec) //nolint:errcheck // a corrupt record only degrades this shadow
	p.mu.Unlock()
}

// applyRecord replays one durable-format record into the partition —
// the shadow-side mirror of Node.applyRecord. Derived heads are never
// shipped: the owner already shipped them.
func (p *partition) applyRecord(c *Cluster, rec []byte) error {
	d := wire.NewDecoder(rec)
	switch kind := d.U8(); kind {
	case recEvent:
		f, err := decodeDurEvent(d)
		if err != nil {
			return err
		}
		p.applyTuple(c, f, false)
	case recInsert:
		t := d.Tuple()
		if err := d.Err(); err != nil {
			return err
		}
		p.db.Insert(t)
	case recDelete:
		t := d.Tuple()
		if err := d.Err(); err != nil {
			return err
		}
		p.db.Delete(t)
	case recSig:
		p.state.ClearEquiKeys()
	default:
		return fmt.Errorf("cluster: unknown replicated record kind %d", kind)
	}
	return nil
}

// applyTuple runs the pipeline step against the partition's own database
// and state, mirroring Node.applyTuple without tracing. FireAt uses the
// owner's address so the shadow's provenance rows carry the same
// (Loc, RID) identities the owner's do — a walk served from the shadow
// resolves the same refs. ship=true (hosted partitions, owner Left)
// returns the derived heads for the host to ship on the owner's behalf.
func (p *partition) applyTuple(c *Cluster, f *tupleFrame, ship bool) []outShip {
	p.db.Insert(f.Tuple)
	meta := f.Meta
	if f.Fresh {
		meta = p.state.Inject(f.Tuple)
	}
	rules := c.prog.RulesForEvent(f.Tuple.Rel)
	if len(rules) == 0 {
		landed := p.state.Output(f.Tuple, meta)
		p.outputs = appendTupleOnce(p.outputs, f.Tuple)
		if ship && len(landed) > 0 {
			// Acting owner: fire the landing like Node.applyTuple would
			// have. Shadow applies (ship=false) stay silent — the owner
			// fired the same keys when it applied the record itself.
			c.fireEventHook(vidKeysOf(landed)...)
		}
		return nil
	}
	var out []outShip
	for _, r := range rules {
		firings, err := c.plans.EvalObserved(r, p.db, f.Tuple, c.funcs, nil)
		if err != nil || len(firings) == 0 {
			continue
		}
		for _, fr := range firings {
			m := p.state.FireAt(p.owner, fr, meta)
			if ship {
				frame, metaBytes := (&tupleFrame{Tuple: fr.Head, Meta: m}).encodeSized()
				out = append(out, outShip{to: fr.Head.Loc(), frame: frame, provBytes: metaBytes})
			}
		}
	}
	return out
}

// snapshotPayload serializes the partition in the node-snapshot layout,
// so handoff payloads and checkpoint payloads share one codec.
func (p *partition) snapshotPayload() []byte {
	e := wire.NewEncoder(4096)
	e.U8(nodeSnapVersion)
	p.db.EncodeSnapshot(e)
	p.state.Persist(e)
	e.U32(uint32(len(p.outputs)))
	for _, t := range p.outputs {
		e.Tuple(t)
	}
	return e.Bytes()
}

// install merges a snapshot payload into the partition. Merge, not
// restore: replicated records that arrived before the snapshot survive,
// and rows the snapshot duplicates are no-ops — so bootstrap is gap-free
// without any freeze window at the owner.
func (p *partition) install(payload []byte) error {
	d := wire.NewDecoder(payload)
	if v := d.U8(); d.Err() == nil && v != nodeSnapVersion {
		return fmt.Errorf("cluster: unsupported handoff snapshot version %d", v)
	}
	if err := p.db.MergeSnapshot(d); err != nil {
		return err
	}
	if err := p.state.Merge(d); err != nil {
		return err
	}
	nOut := d.U32()
	if nOut > maxDurItems {
		return fmt.Errorf("cluster: handoff snapshot with %d outputs", nOut)
	}
	for i := uint32(0); i < nOut && d.Err() == nil; i++ {
		p.outputs = appendTupleOnce(p.outputs, d.Tuple())
	}
	return d.Err()
}

// processHosted applies a redirected tuple (addressed to a Left member)
// into that member's hosted partition, shipping the derived heads as the
// acting owner. Hosted applies are RAM-only at the host: the departed
// owner's WAL is closed, and re-replicating on its behalf would need its
// identity — the cooperative-leave caveat DESIGN.md documents.
func (n *Node) processHosted(owner types.NodeAddr, f *tupleFrame) {
	p := n.partitionFor(owner, true)
	if p == nil {
		return
	}
	p.mu.Lock()
	ships := p.applyTuple(n.c, f, true)
	p.mu.Unlock()
	n.shipAll(ships)
}

// --- Handoff and read-repair ---

// handoffAckTimeout is how long a streamed snapshot may wait for its ack
// before the sender writes it off (the receiver may have died); Ready
// must not wedge on a dead receiver.
const handoffAckTimeout = 10 * time.Second

// sendHandoff streams snap (owner's partition in snapshot layout) to a
// peer. acked handoffs register an HID wait and hold the Ready gauge
// until the receiver confirms the install (or the timeout writes it off).
func (n *Node) sendHandoff(to, owner types.NodeAddr, snap []byte, acked bool) {
	hid := uint64(0)
	if acked {
		hid = n.c.nextHID.Add(1)
		ch := make(chan struct{})
		n.ackMu.Lock()
		n.handoffWaits[hid] = ch
		n.ackMu.Unlock()
		n.handoffsActive.Add(1)
		go func() {
			timer := time.NewTimer(handoffAckTimeout)
			defer timer.Stop()
			select {
			case <-ch:
			case <-timer.C:
				n.ackMu.Lock()
				if _, ok := n.handoffWaits[hid]; ok {
					delete(n.handoffWaits, hid)
					n.handoffsActive.Add(-1)
				}
				n.ackMu.Unlock()
			}
		}()
	}
	if err := n.send(to, encodeHandoff(owner, hid, acked, snap), classProv, 0); err != nil {
		if acked {
			n.handleHandoffAck(hid) // undo the registration; nothing is coming
		}
		return
	}
	n.c.memb.handoffs.Add(1)
	n.c.memb.handoffBytes.Add(int64(len(snap)))
}

// sendBootstrap streams this node's own partition to a peer that just
// became one of its replica targets, so the shadow starts complete; the
// concurrent record stream keeps it complete (merge-install makes the
// overlap safe in either order).
func (n *Node) sendBootstrap(to types.NodeAddr) {
	if !n.alive.Load() {
		return
	}
	n.sendHandoff(to, n.addr, n.snapshotPayload(), true)
}

// handleHandoff installs a streamed partition. A payload for our own
// address is a read-repair reply: it merges into the node's primary
// state. Anything else merges into the partition shadow. Acked handoffs
// confirm back to the sender, whose routing flip waits on it.
func (n *Node) handleHandoff(from, owner types.NodeAddr, hid uint64, acked bool, snap []byte) {
	if owner == n.addr {
		if err := n.mergeSelf(snap); err == nil {
			n.c.memb.repairs.Add(1)
		}
	} else if p := n.partitionFor(owner, true); p != nil {
		p.mu.Lock()
		p.install(snap) //nolint:errcheck // a corrupt payload only degrades this copy
		p.mu.Unlock()
	}
	if acked {
		n.send(from, encodeHandoffAck(hid, owner), classProv, 0) //nolint:errcheck
	}
}

// handleHandoffAck completes one acked handoff wait.
func (n *Node) handleHandoffAck(hid uint64) {
	n.ackMu.Lock()
	ch, ok := n.handoffWaits[hid]
	if ok {
		delete(n.handoffWaits, hid)
		n.handoffsActive.Add(-1)
	}
	n.ackMu.Unlock()
	if ok {
		close(ch)
	}
}

// waitHandoffs blocks until every acked handoff this node sent has
// settled, or the timeout passes.
func (n *Node) waitHandoffs(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for n.handoffsActive.Load() != 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// mergeSelf folds a snapshot payload into this node's own primary state
// (read-repair). On a durable node the merged rows are forced into a
// checkpoint immediately: they never passed through the WAL, so only the
// snapshot can make them survive the next crash.
func (n *Node) mergeSelf(payload []byte) error {
	apply := func() error {
		d := wire.NewDecoder(payload)
		if v := d.U8(); d.Err() == nil && v != nodeSnapVersion {
			return fmt.Errorf("cluster: unsupported repair snapshot version %d", v)
		}
		if err := n.db.MergeSnapshot(d); err != nil {
			return err
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if err := n.state.Merge(d); err != nil {
			return err
		}
		nOut := d.U32()
		if nOut > maxDurItems {
			return fmt.Errorf("cluster: repair snapshot with %d outputs", nOut)
		}
		for i := uint32(0); i < nOut && d.Err() == nil; i++ {
			n.outputs = appendTupleOnce(n.outputs, d.Tuple())
		}
		return d.Err()
	}
	if !n.durable() {
		return apply()
	}
	n.durMu.Lock()
	defer n.durMu.Unlock()
	err := apply()
	if err == nil {
		n.checkpointLocked()
	}
	return err
}

// handleRepairReq answers a returning owner with this node's shadow of
// its partition. Un-acked: the requester merges whatever arrives.
func (n *Node) handleRepairReq(from, owner types.NodeAddr) {
	p := n.partitionFor(owner, false)
	if p == nil {
		return
	}
	p.mu.Lock()
	snap := p.snapshotPayload()
	p.mu.Unlock()
	n.sendHandoff(from, owner, snap, false)
}

// requestRepair asks every reachable rendezvous server for this node's
// partition to send its shadow back. Called after Restart; merges are
// idempotent so overlapping replies are fine.
func (n *Node) requestRepair() {
	if n.c.replicas <= 0 {
		return
	}
	frame := encodeRepairReq(n.addr)
	for _, s := range n.serversFor(n.addr) {
		if n.viewAlive(s) {
			n.send(s, frame, classProv, 0) //nolint:errcheck
		}
	}
}

// --- Join / Leave ---

// joinSettle bounds how long Join waits for bootstrap handoffs to land
// before flipping the new member Up.
const joinSettle = 5 * time.Second

// Join adds a member at runtime: the node boots with a view seeded from a
// live member plus itself Joining, announces itself, receives whatever
// partition bootstraps the new rendezvous placement sends its way, and
// flips Up once the handoffs settle. The routing table (every member's
// rendezvous map) only starts preferring the newcomer as its view learns
// of it — after its shadows exist.
func (c *Cluster) Join(addr types.NodeAddr) error {
	if c.closed.Load() {
		return fmt.Errorf("cluster: join on closed cluster")
	}
	seedFrom := c.firstAlive()
	if seedFrom == nil {
		return fmt.Errorf("cluster: no live member to join through")
	}
	seedFrom.viewMu.Lock()
	seed := seedFrom.view.Clone()
	seedFrom.viewMu.Unlock()
	seed.Set(membership.Member{Addr: addr, Epoch: 1, State: membership.Joining})
	n, err := c.newNode(addr, seed)
	if err != nil {
		return err
	}
	if err := c.addNode(n); err != nil {
		n.ln.Close()
		n.durMu.Lock()
		if n.dstore != nil {
			n.dstore.Close() //nolint:errcheck
			n.dstore = nil
		}
		n.durMu.Unlock()
		return err
	}
	c.startNode(n)
	n.gossipView() // announce Joining; members react with bootstraps
	c.waitReady(joinSettle)
	n.announce(membership.Up)
	return nil
}

// Leave removes a member cooperatively: announce Leaving (no one picks it
// as a new replica target), drain in-flight traffic, stream its partition
// to the rendezvous successors and wait for their acks, announce Left
// (the routing flip — every member now redirects this address), wait for
// the cluster to learn it, then shut the node down. With Replicas == 0
// the successors' first copy is this final handoff; anything a member
// sent to the leaver after its drain window is the documented
// cooperative-leave loss window.
func (c *Cluster) Leave(addr types.NodeAddr) error {
	n := c.node(addr)
	if n == nil {
		return fmt.Errorf("cluster: leave unknown node %s", addr)
	}
	if !n.Alive() {
		return fmt.Errorf("cluster: leave dead node %s", addr)
	}
	n.announce(membership.Leaving)
	c.Quiesce(2 * time.Second) //nolint:errcheck // best-effort drain; handoff covers what settled
	start := time.Now()
	snap := n.snapshotPayload()
	for _, s := range n.serversFor(n.addr) {
		if n.viewAlive(s) {
			n.sendHandoff(s, n.addr, snap, true)
		}
	}
	n.waitHandoffs(handoffAckTimeout)
	c.memb.rebalanceNs.Add(int64(time.Since(start)))
	n.announce(membership.Left)
	c.WaitMemberState(addr, membership.Left, 5*time.Second) //nolint:errcheck // best effort; redirects still converge by gossip
	n.Kill()
	return nil
}

// failoverQuerier finds a live member holding a partition shadow for L,
// walking L's rendezvous servers in placement order so every caller picks
// the same acting querier. nil when replication is off or nobody holds a
// copy.
func (c *Cluster) failoverQuerier(L types.NodeAddr) (*Node, *partition) {
	if c.replicas <= 0 {
		return nil, nil
	}
	probe := c.firstAlive()
	if probe == nil {
		return nil, nil
	}
	for _, s := range probe.serversFor(L) {
		sn := c.node(s)
		if sn == nil || !sn.Alive() {
			continue
		}
		if p := sn.partitionFor(L, false); p != nil {
			return sn, p
		}
	}
	return nil, nil
}

// announceRestart is the membership half of Cluster.Restart: the revived
// node re-announces Up at a fresh epoch (beating any Down row a suspicion
// left behind) and asks its replicas to send their shadows back so
// anything its recovery missed is read-repaired.
func (n *Node) announceRestart() {
	n.announce(membership.Up)
	n.requestRepair()
}
