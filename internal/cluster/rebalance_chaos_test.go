package cluster

import (
	"fmt"
	"testing"
	"time"

	"provcompress/internal/apps"
	"provcompress/internal/membership"
	"provcompress/internal/topo"
	"provcompress/internal/trace"
	"provcompress/internal/types"
)

// TestRebalanceUnderChaos drives a partition handoff while one of the
// likely recipients crashes and comes back inside the retry window: a
// member leaves concurrently with a kill/restart of another node. The
// invariants that must hold throughout are the chaos suite's trinity —
// every collected trace stays a single parent-linked tree, the per-class
// byte counters keep summing exactly to the transport total (handoff and
// replication bytes included), and once the dust settles the departed
// member's partition has exactly one acting primary that every surviving
// view agrees on.
func TestRebalanceUnderChaos(t *testing.T) {
	tr := trace.NewCollector(0)
	g := topo.Line(5, "n")
	c, err := New(Config{
		Prog:     apps.Forwarding(),
		Funcs:    apps.Funcs(),
		Nodes:    g.Nodes(),
		Replicas: 2,
		Tracer:   tr,
		// Budget sized so frames to the crashed recipient survive until
		// its restart instead of being written off.
		Transport: TransportConfig{RetryBudget: 12, BackoffMax: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadBase(g.ShortestPaths().RouteTuples()); err != nil {
		t.Fatal(err)
	}

	checkBytes := func(when string) {
		t.Helper()
		s := c.TransportStats()
		if sum := s.BytesBase + s.BytesProv + s.BytesQuery + s.BytesBatch; sum != s.BytesTotal {
			t.Fatalf("%s: class sum %d != total %d", when, sum, s.BytesTotal)
		}
	}

	before := pkt("n0", "n0", "n4", "before")
	tidBefore, err := c.InjectTraced(before)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkBytes("after load")

	// Crash a node, then start the leave while it is down. The leaver's
	// handoff targets may include the crashed node; those frames ride the
	// retry budget and land after the restart below.
	c.Node("n3").Kill()
	leaveErr := make(chan error, 1)
	go func() { leaveErr <- c.Leave("n1") }()
	time.Sleep(100 * time.Millisecond)
	if err := c.Restart("n3"); err != nil {
		t.Fatal(err)
	}
	if err := <-leaveErr; err != nil {
		t.Fatal(err)
	}
	if err := c.WaitMemberState("n1", membership.Left, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkBytes("after rebalance")

	// Exactly one acting primary for the departed member, agreed by every
	// surviving view, actually holding the partition.
	owner := c.OwnerOf("n1")
	if owner == "" {
		t.Fatal("no acting owner for the departed member's partition")
	}
	holders := 0
	for _, addr := range []types.NodeAddr{"n0", "n2", "n3", "n4"} {
		n := c.Node(addr)
		if !n.Alive() {
			t.Fatalf("%s died during rebalance", addr)
		}
		servers := n.serversFor("n1")
		if len(servers) == 0 || servers[0] != owner {
			t.Fatalf("%s routes n1's partition to %v, cluster owner is %s", addr, servers, owner)
		}
		if n.canServe("n1") {
			holders++
		}
	}
	if holders == 0 {
		t.Fatal("no surviving node can serve the departed member's partition")
	}
	if !c.Node(owner).canServe("n1") {
		t.Fatalf("agreed owner %s does not hold n1's partition", owner)
	}

	// Traffic through the departed member still flows end to end, and its
	// derivation trace is one parent-linked tree spanning the redirect.
	after := pkt("n0", "n0", "n4", "after")
	tidAfter, err := c.InjectTraced(after)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkBytes("after post-rebalance inject")

	found := false
	for _, out := range c.Outputs("n4") {
		if fmt.Sprint(out) == fmt.Sprint(recvT("n4", "n0", "n4", "after")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-rebalance packet never arrived: outputs %v", c.Outputs("n4"))
	}

	resBefore, err := c.Query(recvT("n4", "n0", "n4", "before"), types.HashTuple(before), 10*time.Second)
	if err != nil || len(resBefore.Trees) != 1 {
		t.Fatalf("pre-rebalance provenance: %v (%d trees)", err, len(resBefore.Trees))
	}
	resAfter, err := c.Query(recvT("n4", "n0", "n4", "after"), types.HashTuple(after), 10*time.Second)
	if err != nil || len(resAfter.Trees) != 1 {
		t.Fatalf("post-rebalance provenance: %v (%d trees)", err, len(resAfter.Trees))
	}
	checkBytes("after queries")

	for _, tid := range []trace.TraceID{tidBefore, tidAfter, resBefore.TraceID, resAfter.TraceID} {
		spans := tr.Trace(tid)
		if err := trace.CheckLinked(spans); err != nil {
			t.Fatalf("trace %d broken across rebalance chaos: %v\nspans: %+v", tid, err, spans)
		}
	}

	s := c.MembershipStats()
	if s.Handoffs == 0 || s.HandoffBytes == 0 {
		t.Fatalf("rebalance moved no partition data: %+v", s)
	}
}
