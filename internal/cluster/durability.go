package cluster

import (
	"fmt"
	"log"
	"path/filepath"
	"strings"
	"time"

	"provcompress/internal/core"
	"provcompress/internal/store"
	"provcompress/internal/types"
	"provcompress/internal/wire"
)

// Durability glue: when Config.DataDir is set, every node owns a
// store.NodeStore (WAL + snapshots) in its own subdirectory. The write
// discipline is log-then-apply under the node's durMu: the WAL record is
// appended first, then the in-memory apply runs, and no other apply can
// interleave — so WAL order equals apply order, and replaying the log
// through the same apply path (with head-shipping disabled) rebuilds the
// exact pre-crash state. A crash between append and apply just means the
// record replays on recovery, which is idempotent against the snapshot it
// follows.
//
// The durMu serialization is the durability tradeoff: shards that would
// evaluate concurrently on a volatile node serialize their applies on a
// durable one. With DataDir unset nothing here runs and the concurrent
// fast path is unchanged.

// WAL record kinds. Each record payload starts with one of these bytes.
const (
	recEvent  = 1 // processed tuple frame (fresh event or derived head)
	recInsert = 2 // slow-changing insert (LoadBase / InsertSlow)
	recDelete = 3 // slow-changing delete
	recSig    = 4 // equivalence-table reset broadcast (Section 5.5)
)

// nodeSnapVersion tags the per-node snapshot payload layout: the database
// snapshot, the scheme state, and the node's output list.
const nodeSnapVersion = 1

// maxDurItems bounds decoded collection sizes in durable payloads.
const maxDurItems = 1 << 26

// durable reports whether this node persists its state. Set once at boot
// and never changed, so it is readable without a lock.
func (n *Node) durable() bool { return n.dur }

// nodeDataDir names one member's storage directory.
func (c *Cluster) nodeDataDir(addr types.NodeAddr) string {
	return filepath.Join(c.dataDir, sanitizeAddr(string(addr)))
}

// sanitizeAddr maps a node address onto a safe directory name.
func sanitizeAddr(addr string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, addr)
}

// openStore runs recovery for one node and attaches its NodeStore. The
// caller guarantees no apply is running (boot, or a restart with the node
// dead and durMu held).
func (c *Cluster) openStore(n *Node) error {
	ns, err := store.Open(c.nodeDataDir(n.addr), c.dopts, n.restoreSnapshot, n.applyRecord)
	if err != nil {
		return fmt.Errorf("cluster: open store for %s: %w", n.addr, err)
	}
	n.dstore = ns
	return nil
}

// durFail records a durability error. The node keeps running on its
// in-memory state — an engine that stops accepting events because a disk
// write failed would violate the availability the rest of the fault model
// works for — but the error is counted, logged, and surfaced in stats so
// operators see the durability guarantee is degraded.
func (n *Node) durFail(op string, err error) {
	if n.durErrors.Add(1) <= 3 {
		log.Printf("cluster: %s: durability %s failed: %v", n.addr, op, err)
	}
}

// logApply appends rec and reports whether the store now wants a
// checkpoint. Callers hold durMu.
func (n *Node) logApply(rec []byte) bool {
	if n.dstore == nil {
		return false
	}
	want, err := n.dstore.Append(rec)
	if err != nil {
		n.durFail("append", err)
		return false
	}
	return want
}

// checkpointLocked snapshots the node and truncates its WAL. Callers hold
// durMu, so the payload reflects every appended record.
func (n *Node) checkpointLocked() {
	if n.dstore == nil {
		return
	}
	if err := n.dstore.Checkpoint(n.snapshotPayload()); err != nil {
		n.durFail("checkpoint", err)
	}
}

// snapshotPayload serializes the node's full recoverable state: the
// database (live tuples + graveyard), the scheme's provenance tables, and
// the output tuples that arrived here.
func (n *Node) snapshotPayload() []byte {
	e := wire.NewEncoder(4096)
	e.U8(nodeSnapVersion)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.db.EncodeSnapshot(e)
	n.state.Persist(e)
	e.U32(uint32(len(n.outputs)))
	for _, t := range n.outputs {
		e.Tuple(t)
	}
	return e.Bytes()
}

// restoreSnapshot is the recovery callback: it rebuilds the node from a
// snapshot payload. It runs with the node quiescent (boot or dead).
func (n *Node) restoreSnapshot(payload []byte) error {
	d := wire.NewDecoder(payload)
	if v := d.U8(); d.Err() == nil && v != nodeSnapVersion {
		return fmt.Errorf("cluster: unsupported node snapshot version %d", v)
	}
	if err := n.db.RestoreSnapshot(d); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.state.Restore(d); err != nil {
		return err
	}
	nOut := d.U32()
	if nOut > maxDurItems {
		return fmt.Errorf("cluster: node snapshot with %d outputs", nOut)
	}
	n.outputs = n.outputs[:0]
	for i := uint32(0); i < nOut && d.Err() == nil; i++ {
		n.outputs = append(n.outputs, d.Tuple())
	}
	return d.Err()
}

// applyRecord is the recovery callback: it re-runs one WAL record through
// the same apply path the live node used, with head-shipping disabled —
// each node's log holds exactly the frames it processed, so per-node
// replay is independent and nothing travels the network.
func (n *Node) applyRecord(rec []byte) error {
	d := wire.NewDecoder(rec)
	switch kind := d.U8(); kind {
	case recEvent:
		f, err := decodeDurEvent(d)
		if err != nil {
			return fmt.Errorf("cluster: corrupt event record: %w", err)
		}
		n.applyTuple(f)
	case recInsert:
		t := d.Tuple()
		if err := d.Err(); err != nil {
			return fmt.Errorf("cluster: corrupt insert record: %w", err)
		}
		n.db.Insert(t)
	case recDelete:
		t := d.Tuple()
		if err := d.Err(); err != nil {
			return fmt.Errorf("cluster: corrupt delete record: %w", err)
		}
		n.db.Delete(t)
	case recSig:
		n.mu.Lock()
		n.state.ClearEquiKeys()
		n.mu.Unlock()
	default:
		return fmt.Errorf("cluster: unknown WAL record kind %d", kind)
	}
	return nil
}

// encodeDurEvent frames a processed tuple for the WAL. The trace context
// is deliberately dropped: replay is untraced.
func encodeDurEvent(f *tupleFrame) []byte {
	e := wire.NewEncoder(128)
	e.U8(recEvent)
	e.Tuple(f.Tuple)
	e.Bool(f.Fresh)
	if !f.Fresh {
		encodeMeta(e, f.Meta)
	}
	return e.Bytes()
}

func decodeDurEvent(d *wire.Decoder) (*tupleFrame, error) {
	f := &tupleFrame{}
	f.Tuple = d.Tuple()
	f.Fresh = d.Bool()
	if !f.Fresh {
		f.Meta = decodeMeta(d)
	}
	return f, d.Err()
}

func encodeDurTuple(kind uint8, t types.Tuple) []byte {
	e := wire.NewEncoder(64)
	e.U8(kind)
	e.Tuple(t)
	return e.Bytes()
}

var recSigPayload = []byte{recSig}

// insertDurable inserts a slow-changing tuple, logging it first on a
// durable node. It reports whether the tuple was new.
func (n *Node) insertDurable(t types.Tuple) bool {
	if !n.durable() {
		if !n.db.Insert(t) {
			return false
		}
		if n.c.replicas > 0 {
			n.replicate(encodeDurTuple(recInsert, t))
		}
		return true
	}
	n.durMu.Lock()
	if n.db.Contains(t) {
		n.durMu.Unlock()
		return false // already stored; no record, matching the volatile path
	}
	rec := encodeDurTuple(recInsert, t)
	want := n.logApply(rec)
	n.db.Insert(t)
	if want {
		n.checkpointLocked()
	}
	n.durMu.Unlock()
	n.replicate(rec)
	return true
}

// deleteDurable removes a slow-changing tuple, logging it first on a
// durable node. It reports whether the tuple was present, plus the VIDs
// of any graveyard entries the retention cap evicted as a consequence
// (DeleteEvicted) — the serving layer invalidates cached trees that
// resolved them.
func (n *Node) deleteDurable(t types.Tuple) (bool, []types.ID) {
	if !n.durable() {
		ok, evicted := n.db.DeleteEvicted(t)
		if !ok {
			return false, nil
		}
		if n.c.replicas > 0 {
			n.replicate(encodeDurTuple(recDelete, t))
		}
		return true, evicted
	}
	n.durMu.Lock()
	if !n.db.Contains(t) {
		n.durMu.Unlock()
		return false, nil
	}
	rec := encodeDurTuple(recDelete, t)
	want := n.logApply(rec)
	_, evicted := n.db.DeleteEvicted(t)
	if want {
		n.checkpointLocked()
	}
	n.durMu.Unlock()
	n.replicate(rec)
	return true, evicted
}

// applySig handles a sig broadcast: on a durable node the reset is logged
// so a replayed log clears the equivalence table at the same point in the
// apply order the live node did.
func (n *Node) applySig() {
	if !n.durable() {
		n.mu.Lock()
		n.state.ClearEquiKeys()
		n.mu.Unlock()
		if n.c.replicas > 0 {
			n.replicate(recSigPayload)
		}
		n.clearHostedSig()
		return
	}
	n.durMu.Lock()
	want := n.logApply(recSigPayload)
	n.mu.Lock()
	n.state.ClearEquiKeys()
	n.mu.Unlock()
	if want {
		n.checkpointLocked()
	}
	n.durMu.Unlock()
	n.replicate(recSigPayload)
	n.clearHostedSig()
}

// clearHostedSig applies a sig broadcast to the hosted partitions —
// members that Left have no replication stream anymore, so their acting
// owner clears their equivalence tables off the direct broadcast. Shadows
// of live owners are left alone: their owner's replicated recSig clears
// them at the right point in the record stream.
func (n *Node) clearHostedSig() {
	if n.downLeft.Load() == 0 {
		return
	}
	n.partsMu.Lock()
	parts := make([]*partition, 0, len(n.parts))
	for _, p := range n.parts {
		parts = append(parts, p)
	}
	n.partsMu.Unlock()
	for _, p := range parts {
		if n.viewAlive(p.owner) {
			continue
		}
		p.mu.Lock()
		p.state.ClearEquiKeys()
		p.mu.Unlock()
	}
}

// recoverForRestart rebuilds a dead durable node from disk: the crashed
// in-memory state is discarded — database, scheme state, outputs — and the
// newest snapshot plus WAL tail replayed in its place, so Restart proves
// the durability path instead of relying on RAM survival. Any apply still
// in flight from before the kill finishes (or lands in the old WAL
// generation) before the lock admits us.
func (c *Cluster) recoverForRestart(n *Node) error {
	n.durMu.Lock()
	defer n.durMu.Unlock()
	if n.dstore != nil {
		n.dstore.Close() //nolint:errcheck // discarded for a fresh recovery
		n.dstore = nil
	}
	state, err := core.NewNodeState(c.scheme, c.keys)
	if err != nil {
		return err
	}
	n.db.Reset()
	n.mu.Lock()
	n.state = state
	n.outputs = nil
	n.mu.Unlock()
	return c.openStore(n)
}

// Checkpoint forces a snapshot + WAL truncation on every durable member
// (a clean shutdown writes one so the next boot recovers with zero
// replay). It is a no-op on a cluster without a data dir.
func (c *Cluster) Checkpoint() error {
	if c.dataDir == "" {
		return nil
	}
	var firstErr error
	for _, n := range c.nodeMap() {
		n.durMu.Lock()
		if n.dstore != nil {
			if err := n.dstore.Checkpoint(n.snapshotPayload()); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cluster: checkpoint %s: %w", n.addr, err)
			}
		}
		n.durMu.Unlock()
	}
	return firstErr
}

// SyncWAL flushes every durable member's WAL to stable storage regardless
// of the fsync policy.
func (c *Cluster) SyncWAL() error {
	if c.dataDir == "" {
		return nil
	}
	var firstErr error
	for _, n := range c.nodeMap() {
		n.durMu.Lock()
		if n.dstore != nil {
			if err := n.dstore.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		n.durMu.Unlock()
	}
	return firstErr
}

// DurabilityStats aggregates the durability counters across members.
type DurabilityStats struct {
	// Enabled reports whether the cluster persists state at all.
	Enabled bool
	// Fsync is the WAL sync policy in effect.
	Fsync string
	// WALRecords / WALBytes count appends since boot (or last restart).
	WALRecords int64
	WALBytes   int64
	// Snapshots / SnapshotBytes count checkpoints written since boot.
	Snapshots     int64
	SnapshotBytes int64
	// SnapshotAgeSeconds is the age of the stalest member snapshot
	// (negative when some member has never checkpointed).
	SnapshotAgeSeconds float64
	// ReplayedRecords / TornRecords / TornBytes describe the recoveries the
	// members performed at their most recent (re)open.
	ReplayedRecords int64
	TornRecords     int64
	TornBytes       int64
	// RecoveredNodes counts members whose last open restored a snapshot or
	// replayed records.
	RecoveredNodes int
	// RecoverySeconds sums the members' recovery wall times.
	RecoverySeconds float64
	// Errors counts durability failures the cluster survived (appends or
	// checkpoints that could not reach disk).
	Errors int64
}

// DurabilityStats snapshots the cluster's durability counters.
func (c *Cluster) DurabilityStats() DurabilityStats {
	ds := DurabilityStats{Enabled: c.dataDir != "", Fsync: c.dopts.Fsync.String()}
	if !ds.Enabled {
		return ds
	}
	var age time.Duration
	neverSnapped := false
	for _, n := range c.nodeMap() {
		ds.Errors += n.durErrors.Load()
		n.durMu.Lock()
		dstore := n.dstore
		n.durMu.Unlock()
		if dstore == nil {
			continue
		}
		s := dstore.Stats()
		ds.WALRecords += s.WALRecords
		ds.WALBytes += s.WALBytes
		ds.Snapshots += s.Snapshots
		ds.SnapshotBytes += s.SnapshotBytes
		if s.SnapshotAge < 0 {
			neverSnapped = true
		} else if s.SnapshotAge > age {
			age = s.SnapshotAge
		}
		ds.ReplayedRecords += s.Recovery.ReplayedRecords
		ds.TornRecords += s.Recovery.TornRecords
		ds.TornBytes += s.Recovery.TornBytes
		if s.Recovery.SnapshotLoaded || s.Recovery.ReplayedRecords > 0 {
			ds.RecoveredNodes++
		}
		ds.RecoverySeconds += s.Recovery.WallTime.Seconds()
	}
	ds.SnapshotAgeSeconds = age.Seconds()
	if neverSnapped {
		ds.SnapshotAgeSeconds = -1
	}
	return ds
}

// DataDir returns the cluster's storage root ("" when volatile).
func (c *Cluster) DataDir() string { return c.dataDir }
