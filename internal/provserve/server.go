// Package provserve is the serving layer: a long-lived HTTP/JSON daemon
// over one or more live clusters (one per provenance scheme), turning the
// one-shot CLI query path into an online service. It exists because the
// paper's point — compressed provenance makes distributed querying cheap
// enough to use online (§5–§6) — needs a resident process to be visible:
// cold-start CLI runs pay cluster bring-up on every query, while a daemon
// pays it once and then serves queries from a worker pool fronted by an
// epoch-invalidated result cache.
//
// Serving discipline:
//
//   - Queries run on a bounded worker pool; the HTTP handler never runs a
//     distributed walk on its own goroutine.
//   - Admission control: a bounded pending queue; when it is full the
//     daemon answers 429 with Retry-After instead of queueing unboundedly.
//   - Multi-tenancy: requests carry a tenant label (X-Tenant / ?tenant=)
//     and each configured tenant gets a token-bucket rate limit plus an
//     inflight quota on the worker pool (tenant.go), so one tenant's
//     burst 429s itself, not its neighbors. Per-tenant counters ride the
//     tenant label on /metrics and /v1/stats.
//   - Result cache: an LRU keyed by (scheme, output tuple, event ID)
//     with dependency-indexed invalidation (cache.go, DESIGN.md §14):
//     every entry is tagged with the invalidation-key set its walk
//     touched, the cluster event hook delivers the keys each accepted
//     event fires, and only dependent entries are evicted — unrelated
//     queries stay hot under sustained writes. The pre-keyed global
//     epoch discipline survives behind Config.LegacyEpochInvalidation
//     (every event evicts everything) as the A/B baseline.
//   - Cancellation: the request context is threaded into
//     Cluster.QueryContext, so a disconnected client aborts its in-flight
//     distributed query instead of burning the timeout.
//
// Endpoints: POST /v1/events, GET /v1/query, GET /v1/outputs,
// GET /v1/stats, GET /v1/members (membership view + elastic counters),
// GET /v1/trace/{id} (Chrome trace JSON), GET /readyz (503 while any
// cluster is mid-handoff), GET /metrics (Prometheus text),
// /debug/pprof/*.
package provserve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"provcompress/internal/cluster"
	"provcompress/internal/metrics"
	"provcompress/internal/trace"
	"provcompress/internal/types"
)

// Config describes the serving daemon.
type Config struct {
	// Clusters maps lowercase scheme names ("exspan", "basic",
	// "advanced") to running clusters. At least one is required.
	Clusters map[string]*cluster.Cluster
	// DefaultScheme is used when a query names no scheme; empty picks
	// "advanced" if present, else an arbitrary configured scheme.
	DefaultScheme string
	// Workers is the query worker pool size (default 8).
	Workers int
	// QueueDepth bounds the pending-query queue; a full queue rejects
	// with 429 (default 64).
	QueueDepth int
	// CacheSize bounds the result cache entries (default 1024).
	CacheSize int
	// QueryTimeout bounds each distributed query attempt (default 10s).
	QueryTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Tracer, when set, is the span collector shared by the configured
	// clusters; it backs GET /v1/trace/{id} and the trace gauges on
	// /metrics. Nil disables the trace endpoint (404).
	Tracer *trace.Collector
	// Tenants configures per-tenant admission budgets (tenant.go). The
	// list may include DefaultTenant to bound unlabeled traffic; any
	// other tenant a request names that is not listed here bills to the
	// default. Empty means single-tenant: everything is "default",
	// unlimited (the global queue is still the backstop).
	Tenants []TenantConfig
	// LegacyEpochInvalidation restores the pre-keyed cache discipline:
	// every accepted event evicts the whole cache, regardless of which
	// invalidation keys it fired. It exists as the A/B baseline for the
	// mixed-workload benchmark (cmd/provload, cmd/provsim) and costs the
	// hit rate its near-zero value under sustained writes.
	LegacyEpochInvalidation bool

	// beforeQuery, when set, runs on the worker goroutine before each
	// admitted query executes. Test hook: lets tests hold workers busy to
	// exercise admission control deterministically.
	beforeQuery func()
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
type Server struct {
	cfg     Config
	schemes []string // sorted configured scheme names
	mux     *http.ServeMux
	cache   *depCache
	// tenants maps tenant name to its admission state; always contains
	// DefaultTenant. tenantNames is the sorted key list for stable
	// /metrics and /v1/stats output.
	tenants     map[string]*tenant
	tenantNames []string
	// epoch counts accepted events. Deprecated as an invalidation
	// mechanism (the cache is key-invalidated); still exposed on
	// /v1/query, /v1/events and /v1/stats for compatibility.
	epoch atomic.Uint64

	queue chan *queryJob
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	start time.Time

	// Serving counters.
	events      atomic.Int64
	queries     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	rejected    atomic.Int64
	queryErrors atomic.Int64
	canceled    atomic.Int64
	inflight    atomic.Int64

	coldLatency *metrics.Histogram // full serve time, cache misses
	hitLatency  *metrics.Histogram // full serve time, cache hits
}

// queryJob is one admitted query traveling from the HTTP handler to a
// worker and back.
type queryJob struct {
	ctx      context.Context
	c        *cluster.Cluster
	out      types.Tuple
	evid     types.ID
	epoch    uint64 // event epoch at admission (response compatibility)
	admitSeq uint64 // cache invalidation sequence at admission (depCache.Admit)
	res      cluster.QueryResult
	err      error
	done     chan struct{}
}

// New builds the server and starts its worker pool. Call Close to drain.
func New(cfg Config) (*Server, error) {
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("provserve: no clusters configured")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 10 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:         cfg,
		cache:       newDepCache(cfg.CacheSize),
		queue:       make(chan *queryJob, cfg.QueueDepth),
		stop:        make(chan struct{}),
		start:       time.Now(),
		coldLatency: metrics.NewLatencyHistogram(),
		hitLatency:  metrics.NewLatencyHistogram(),
	}
	for name, c := range cfg.Clusters {
		if c == nil {
			return nil, fmt.Errorf("provserve: nil cluster for scheme %q", name)
		}
		s.schemes = append(s.schemes, name)
		// Every accepted state change delivers the invalidation keys it
		// fired; evict exactly the cached results tagged with them (or
		// everything, in the legacy A/B mode). The epoch still counts
		// events for response compatibility. Events are injected per
		// cluster, so one logical event may fire more than once — firing
		// is idempotent on an already-evicted entry.
		c.SetEventHook(func(keys []cluster.InvalKey) {
			s.epoch.Add(1)
			if cfg.LegacyEpochInvalidation {
				s.cache.InvalidateAll(invalEpoch)
			} else {
				s.cache.Invalidate(keys)
			}
		})
	}
	s.tenants = make(map[string]*tenant, len(cfg.Tenants)+1)
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("provserve: tenant with empty name")
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("provserve: duplicate tenant %q", tc.Name)
		}
		s.tenants[tc.Name] = newTenant(tc)
	}
	if _, ok := s.tenants[DefaultTenant]; !ok {
		s.tenants[DefaultTenant] = newTenant(TenantConfig{Name: DefaultTenant})
	}
	for name := range s.tenants {
		s.tenantNames = append(s.tenantNames, name)
	}
	sort.Strings(s.tenantNames)
	sort.Strings(s.schemes)
	if cfg.DefaultScheme == "" {
		if _, ok := cfg.Clusters["advanced"]; ok {
			s.cfg.DefaultScheme = "advanced"
		} else {
			s.cfg.DefaultScheme = s.schemes[0]
		}
	} else if _, ok := cfg.Clusters[strings.ToLower(cfg.DefaultScheme)]; !ok {
		return nil, fmt.Errorf("provserve: default scheme %q has no cluster", cfg.DefaultScheme)
	} else {
		s.cfg.DefaultScheme = strings.ToLower(cfg.DefaultScheme)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/members", s.handleMembers)
	mux.HandleFunc("/v1/events", s.handleEvents)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/outputs", s.handleOutputs)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Epoch returns the current cache epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Close stops the worker pool and fails any queries still queued. It does
// not close the clusters (the caller owns them) and is idempotent.
func (s *Server) Close() {
	s.once.Do(func() {
		close(s.stop)
		s.wg.Wait()
		// Workers are gone; fail whatever is still queued so no handler
		// waits forever. Handlers racing an enqueue against Close also
		// select on s.stop, so nothing new can strand after this drain.
		for {
			select {
			case j := <-s.queue:
				j.err = fmt.Errorf("provserve: server shutting down")
				close(j.done)
			default:
				return
			}
		}
	})
}

// worker runs admitted queries until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *queryJob) {
	defer close(j.done)
	if s.cfg.beforeQuery != nil {
		s.cfg.beforeQuery()
	}
	if err := j.ctx.Err(); err != nil {
		// The client vanished while the job sat in the queue.
		j.err = err
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	j.res, j.err = j.c.QueryContext(j.ctx, j.out, j.evid, s.cfg.QueryTimeout)
}

// --- request plumbing -------------------------------------------------

// jsonError answers with a JSON error body and the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// tupleSpec is the wire form of a tuple: a relation name plus JSON-native
// argument values (string, integral number, or bool).
type tupleSpec struct {
	Rel  string `json:"rel"`
	Args []any  `json:"args"`
}

// tuple converts the spec into a typed tuple.
func (ts tupleSpec) tuple() (types.Tuple, error) {
	if ts.Rel == "" {
		return types.Tuple{}, fmt.Errorf("missing relation name")
	}
	if len(ts.Args) == 0 {
		return types.Tuple{}, fmt.Errorf("tuple %s needs at least the location argument", ts.Rel)
	}
	args := make([]types.Value, len(ts.Args))
	for i, raw := range ts.Args {
		switch v := raw.(type) {
		case string:
			args[i] = types.String(v)
		case bool:
			args[i] = types.Bool(v)
		case float64:
			if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
				return types.Tuple{}, fmt.Errorf("arg %d of %s: %v is not an exact integer", i, ts.Rel, v)
			}
			args[i] = types.Int(int64(v))
		default:
			return types.Tuple{}, fmt.Errorf("arg %d of %s: unsupported JSON type %T", i, ts.Rel, raw)
		}
	}
	return types.NewTuple(ts.Rel, args...), nil
}

// specOf renders a tuple back into its wire form.
func specOf(t types.Tuple) tupleSpec {
	args := make([]any, len(t.Args))
	for i, a := range t.Args {
		switch a.Kind() {
		case types.KindInt:
			args[i] = a.AsInt()
		case types.KindBool:
			args[i] = a.AsBool()
		default:
			args[i] = a.AsString()
		}
	}
	return tupleSpec{Rel: t.Rel, Args: args}
}

// schemeOf resolves the scheme query parameter to a configured cluster.
func (s *Server) schemeOf(r *http.Request) (string, *cluster.Cluster, error) {
	name := strings.ToLower(r.URL.Query().Get("scheme"))
	if name == "" {
		name = s.cfg.DefaultScheme
	}
	c, ok := s.cfg.Clusters[name]
	if !ok {
		return "", nil, fmt.Errorf("unknown scheme %q (configured: %s)", name, strings.Join(s.schemes, ", "))
	}
	return name, c, nil
}

// cacheKey builds the result-cache key from scheme + output tuple + event
// ID, exactly the identity of a query's answer.
func cacheKey(scheme string, out types.Tuple, evid types.ID) string {
	return scheme + "|" + string(out.Encode()) + "|" + evid.Hex()
}

// --- endpoints --------------------------------------------------------

// eventsRequest is the POST /v1/events body: one or more input events,
// optionally followed by a quiesce wait so callers can read their writes.
type eventsRequest struct {
	Events []tupleSpec `json:"events"`
	// WaitMS, when positive, blocks until every cluster quiesces (or the
	// wait expires) before responding, so a follow-up query observes the
	// events' full derivations.
	WaitMS int64 `json:"wait_ms"`
}

type eventsResponse struct {
	Accepted int    `json:"accepted"`
	Epoch    uint64 `json:"epoch"`
	Quiesced bool   `json:"quiesced"`
}

// handleEvents injects input events into every configured cluster (each
// scheme maintains provenance for the same stream, which is what makes
// cross-scheme queries comparable).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// One token per request (a batched POST is one admission decision);
	// the per-event count is the tenant's write-volume counter.
	tn := s.tenantOf(r)
	if ok, wait := tn.allow(time.Now()); !ok {
		tn.rejectedRate.Add(1)
		s.rejectTenant(w, tn, "rate", wait)
		return
	}
	var req eventsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad events body: %v", err)
		return
	}
	if len(req.Events) == 0 {
		jsonError(w, http.StatusBadRequest, "no events")
		return
	}
	tuples := make([]types.Tuple, len(req.Events))
	for i, spec := range req.Events {
		t, err := spec.tuple()
		if err != nil {
			jsonError(w, http.StatusBadRequest, "event %d: %v", i, err)
			return
		}
		tuples[i] = t
	}
	accepted := 0
	for _, t := range tuples {
		for _, name := range s.schemes {
			if err := s.cfg.Clusters[name].Inject(t); err != nil {
				jsonError(w, http.StatusBadRequest, "inject %s: %v", t, err)
				return
			}
		}
		accepted++
		s.events.Add(1)
		tn.events.Add(1)
	}
	quiesced := true
	if req.WaitMS > 0 {
		wait := time.Duration(req.WaitMS) * time.Millisecond
		for _, name := range s.schemes {
			if err := s.cfg.Clusters[name].Quiesce(wait); err != nil {
				quiesced = false
			}
		}
	}
	writeJSON(w, http.StatusOK, eventsResponse{
		Accepted: accepted,
		Epoch:    s.epoch.Load(),
		Quiesced: quiesced,
	})
}

// queryResponse is the GET /v1/query reply.
type queryResponse struct {
	Tuple  string `json:"tuple"`
	Scheme string `json:"scheme"`
	EvID   string `json:"evid,omitempty"`
	Cached bool   `json:"cached"`
	// Epoch is the global event count the answer was admitted under.
	// Deprecated: it no longer governs invalidation (the cache is
	// key-invalidated; see CacheKeys) and is kept for compatibility —
	// a cached answer can legitimately carry an Epoch older than the
	// server's current one when the intervening events touched none of
	// its keys.
	Epoch uint64 `json:"epoch"`
	// CacheKeys is the size of the answer's invalidation-key set (the
	// equivalence-class and VID keys its walk touched).
	CacheKeys int      `json:"cache_keys"`
	Trees     []string `json:"trees"`
	Hops      int      `json:"hops"`
	// QueryNS is the distributed walk's latency (the cold cost; for a
	// cache hit, the cost the hit avoided). ServeNS is this request's
	// server-side handling time.
	QueryNS int64 `json:"query_ns"`
	ServeNS int64 `json:"serve_ns"`
	// TraceID, when the daemon runs with tracing enabled, names the
	// distributed span tree the walk produced; fetch it from
	// GET /v1/trace/{trace_id}. Cache hits replay the cold run's ID.
	TraceID string `json:"trace_id,omitempty"`
}

// traceIDString renders a trace ID for the wire: 16 hex chars, or empty
// for the zero (untraced) ID.
func traceIDString(id trace.TraceID) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// handleQuery answers a distributed provenance query, consulting the
// result cache first. Parameters: rel (relation name), args (JSON array),
// scheme (optional), evid (optional 40-char hex event ID).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	began := time.Now()
	tn := s.tenantOf(r)
	if ok, wait := tn.allow(began); !ok {
		tn.rejectedRate.Add(1)
		s.rejectTenant(w, tn, "rate", wait)
		return
	}
	scheme, c, err := s.schemeOf(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := r.URL.Query()
	var rawArgs []any
	if err := json.Unmarshal([]byte(q.Get("args")), &rawArgs); err != nil {
		jsonError(w, http.StatusBadRequest, "args must be a JSON array: %v", err)
		return
	}
	out, err := tupleSpec{Rel: q.Get("rel"), Args: rawArgs}.tuple()
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	evid := types.ZeroID
	if hexID := q.Get("evid"); hexID != "" {
		raw, err := hex.DecodeString(hexID)
		if err != nil || len(raw) != len(evid) {
			jsonError(w, http.StatusBadRequest, "evid must be %d hex characters", 2*len(evid))
			return
		}
		copy(evid[:], raw)
	}
	s.queries.Add(1)
	tn.queries.Add(1)

	key := cacheKey(scheme, out, evid)
	if ans, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		s.hitLatency.ObserveDuration(time.Since(began))
		writeJSON(w, http.StatusOK, queryResponse{
			Tuple: out.String(), Scheme: scheme, EvID: q.Get("evid"),
			Cached: true, Epoch: ans.Epoch, CacheKeys: len(ans.Keys),
			Trees: ans.Trees, Hops: ans.Hops,
			QueryNS: ans.ColdNS, ServeNS: time.Since(began).Nanoseconds(),
			TraceID: traceIDString(ans.TraceID),
		})
		return
	}
	s.cacheMisses.Add(1)

	// The tenant's inflight quota guards the worker pool, not the cache:
	// hits above never reach here. Released when the handler returns,
	// whatever path it takes.
	if !tn.acquire() {
		tn.rejectedQuota.Add(1)
		s.rejectTenant(w, tn, "inflight-quota", 0)
		return
	}
	defer tn.release()

	// The admission snapshot must precede the walk: a key firing between
	// here and the walk's completion drops the answer at Put.
	j := &queryJob{ctx: r.Context(), c: c, out: out, evid: evid,
		epoch: s.epoch.Load(), admitSeq: s.cache.Admit(), done: make(chan struct{})}
	select {
	case s.queue <- j:
	case <-s.stop:
		jsonError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
		// Admission control: the pending queue is full. Shed load now —
		// a bounded 429 beats an unbounded goroutine pile-up.
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
		jsonError(w, http.StatusTooManyRequests, "query queue full (%d pending)", len(s.queue))
		return
	}
	select {
	case <-j.done:
	case <-s.stop:
		jsonError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if j.err != nil {
		if r.Context().Err() != nil {
			s.canceled.Add(1)
			return // client is gone; nothing to write
		}
		s.queryErrors.Add(1)
		jsonError(w, http.StatusBadGateway, "query failed: %v", j.err)
		return
	}
	trees := make([]string, len(j.res.Trees))
	for i, t := range j.res.Trees {
		trees[i] = t.String()
	}
	ans := answer{Trees: trees, Hops: j.res.Hops, ColdNS: j.res.Latency.Nanoseconds(),
		Epoch: j.epoch, Keys: j.res.InvalKeys, AdmitSeq: j.admitSeq, TraceID: j.res.TraceID}
	s.cache.Put(key, ans)
	s.coldLatency.ObserveDuration(time.Since(began))
	writeJSON(w, http.StatusOK, queryResponse{
		Tuple: out.String(), Scheme: scheme, EvID: q.Get("evid"),
		Cached: false, Epoch: j.epoch, CacheKeys: len(j.res.InvalKeys),
		Trees: trees, Hops: j.res.Hops,
		QueryNS: j.res.Latency.Nanoseconds(), ServeNS: time.Since(began).Nanoseconds(),
		TraceID: traceIDString(j.res.TraceID),
	})
}

// handleOutputs lists the output tuples a scheme's cluster has produced,
// in wire form ready to feed back into /v1/query (the load generator's
// sampling frame).
func (s *Server) handleOutputs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	_, c, err := s.schemeOf(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	outs := c.AllOutputs()
	specs := make([]tupleSpec, len(outs))
	for i, t := range outs {
		specs[i] = specOf(t)
	}
	// Deterministic order so Zipf ranks are stable across scrapes.
	sort.Slice(specs, func(i, j int) bool {
		a, _ := json.Marshal(specs[i]) //nolint:errcheck
		b, _ := json.Marshal(specs[j]) //nolint:errcheck
		return string(a) < string(b)
	})
	writeJSON(w, http.StatusOK, map[string]any{"outputs": specs})
}

// handleReadyz is the readiness probe: 200 once every configured cluster
// has no partition handoff in flight, 503 while any is still rebalancing.
// (The daemon additionally serves a bare 503 on every path before the
// clusters finish booting — WAL replay happens before this handler is
// even installed, see cmd/provd.)
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	for _, name := range s.schemes {
		if !s.cfg.Clusters[name].Ready() {
			jsonError(w, http.StatusServiceUnavailable, "scheme %s rebalancing: partition handoff in progress", name)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// memberInfo is the wire form of one membership row.
type memberInfo struct {
	Addr  string `json:"addr"`
	Epoch uint64 `json:"epoch"`
	State string `json:"state"`
}

// handleMembers reports the cluster membership view per scheme: the
// merged member rows plus the membership counters (replication,
// handoffs, failovers, rebalance time).
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := map[string]any{}
	for _, name := range s.schemes {
		c := s.cfg.Clusters[name]
		var rows []memberInfo
		for _, m := range c.Members() {
			rows = append(rows, memberInfo{Addr: string(m.Addr), Epoch: m.Epoch, State: m.State.String()})
		}
		ms := c.MembershipStats()
		stats := map[string]any{"replicas": ms.Replicas, "rebalance_seconds": ms.RebalanceSeconds}
		mc := ms.Counters()
		for _, cn := range mc.Names() {
			stats[strings.ReplaceAll(cn, "-", "_")] = mc.Get(cn)
		}
		resp[name] = map[string]any{"members": rows, "stats": stats}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the GET /v1/stats reply.
type statsResponse struct {
	// Epoch counts accepted events. Deprecated: invalidation is keyed,
	// not epoch-based — see the cache-invalidated-* server counters for
	// what actually evicts entries. Kept for scrape compatibility.
	Epoch    uint64                 `json:"epoch"`
	UptimeNS int64                  `json:"uptime_ns"`
	Server   map[string]int64       `json:"server"`
	Schemes  map[string]schemeStats `json:"schemes"`
	// Tenants reports per-tenant admission counters (always at least the
	// default tenant).
	Tenants map[string]tenantStats `json:"tenants"`
}

// tenantStats is the wire form of one tenant's admission counters.
type tenantStats struct {
	Queries       int64 `json:"queries"`
	Events        int64 `json:"events"`
	Inflight      int64 `json:"inflight"`
	RejectedRate  int64 `json:"rejected_rate"`
	RejectedQuota int64 `json:"rejected_quota"`
}

type schemeStats struct {
	Transport    map[string]int64 `json:"transport"`
	StorageBytes int64            `json:"storage_bytes"`
	Outputs      int              `json:"outputs"`
	// Membership holds the elastic-membership counters (view frames,
	// handoffs, failovers, …; see cluster.MembershipStats).
	Membership map[string]int64 `json:"membership"`
	// Durability is present only when the scheme's cluster runs with a
	// data dir (WAL + snapshots).
	Durability *durabilityStats `json:"durability,omitempty"`
}

// durabilityStats is the wire form of cluster.DurabilityStats.
type durabilityStats struct {
	Fsync              string  `json:"fsync"`
	WALRecords         int64   `json:"wal_records"`
	WALBytes           int64   `json:"wal_bytes"`
	Snapshots          int64   `json:"snapshots"`
	SnapshotBytes      int64   `json:"snapshot_bytes"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	ReplayedRecords    int64   `json:"replayed_records"`
	TornRecords        int64   `json:"torn_records"`
	TornBytes          int64   `json:"torn_bytes"`
	RecoveredNodes     int     `json:"recovered_nodes"`
	RecoverySeconds    float64 `json:"recovery_seconds"`
	Errors             int64   `json:"errors"`
}

func durabilityOf(c *cluster.Cluster) *durabilityStats {
	ds := c.DurabilityStats()
	if !ds.Enabled {
		return nil
	}
	return &durabilityStats{
		Fsync:              ds.Fsync,
		WALRecords:         ds.WALRecords,
		WALBytes:           ds.WALBytes,
		Snapshots:          ds.Snapshots,
		SnapshotBytes:      ds.SnapshotBytes,
		SnapshotAgeSeconds: ds.SnapshotAgeSeconds,
		ReplayedRecords:    ds.ReplayedRecords,
		TornRecords:        ds.TornRecords,
		TornBytes:          ds.TornBytes,
		RecoveredNodes:     ds.RecoveredNodes,
		RecoverySeconds:    ds.RecoverySeconds,
		Errors:             ds.Errors,
	}
}

func (s *Server) serverCounters() *metrics.Counters {
	_, _, stale, evictions := s.cache.Stats()
	c := metrics.NewCounters()
	c.Add("events", s.events.Load())
	c.Add("queries", s.queries.Load())
	c.Add("cache-hits", s.cacheHits.Load())
	c.Add("cache-misses", s.cacheMisses.Load())
	c.Add("cache-stale-drops", stale)
	c.Add("cache-evictions", evictions)
	// Per-reason invalidation counters (entries dropped): which kind of
	// key firing — or legacy epoch sweep, or mid-walk race — killed them.
	for reason, n := range s.cache.Invalidations() {
		c.Add("cache-invalidated-"+reason, n)
	}
	c.Add("rejected", s.rejected.Load())
	c.Add("query-errors", s.queryErrors.Load())
	c.Add("canceled", s.canceled.Load())
	return c
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := statsResponse{
		Epoch:    s.epoch.Load(),
		UptimeNS: time.Since(s.start).Nanoseconds(),
		Server:   map[string]int64{},
		Schemes:  map[string]schemeStats{},
		Tenants:  map[string]tenantStats{},
	}
	for _, name := range s.tenantNames {
		tn := s.tenants[name]
		resp.Tenants[name] = tenantStats{
			Queries:       tn.queries.Load(),
			Events:        tn.events.Load(),
			Inflight:      tn.inflight.Load(),
			RejectedRate:  tn.rejectedRate.Load(),
			RejectedQuota: tn.rejectedQuota.Load(),
		}
	}
	sc := s.serverCounters()
	for _, name := range sc.Names() {
		resp.Server[name] = sc.Get(name)
	}
	for _, name := range s.schemes {
		c := s.cfg.Clusters[name]
		tc := c.TransportStats().Counters()
		tm := map[string]int64{}
		for _, cn := range tc.Names() {
			tm[cn] = tc.Get(cn)
		}
		mc := c.MembershipStats().Counters()
		mm := map[string]int64{}
		for _, cn := range mc.Names() {
			mm[cn] = mc.Get(cn)
		}
		resp.Schemes[name] = schemeStats{
			Transport:    tm,
			StorageBytes: c.TotalStorageBytes(),
			Outputs:      len(c.AllOutputs()),
			Membership:   mm,
			Durability:   durabilityOf(c),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves GET /v1/trace/{id}: the named span tree rendered as
// Chrome trace-event JSON (load it in chrome://tracing or Perfetto). The
// ID is the 16-hex-char trace_id a /v1/query response carries. 404 when
// tracing is disabled or the trace is unknown (it may have been evicted
// under the span budget).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.Tracer == nil {
		jsonError(w, http.StatusNotFound, "tracing disabled (start the daemon with -trace)")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if raw == "" {
		// No ID: list the collected trace IDs so callers can discover
		// what is fetchable.
		ids := s.cfg.Tracer.TraceIDs()
		hexIDs := make([]string, len(ids))
		for i, id := range ids {
			hexIDs[i] = traceIDString(id)
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": hexIDs})
		return
	}
	id, err := strconv.ParseUint(raw, 16, 64)
	if err != nil || id == 0 {
		jsonError(w, http.StatusBadRequest, "trace ID must be hex (got %q)", raw)
		return
	}
	if len(s.cfg.Tracer.Trace(trace.TraceID(id))) == 0 {
		jsonError(w, http.StatusNotFound, "unknown trace %s (evicted or never collected)", raw)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.cfg.Tracer.WriteChromeTrace(w, trace.TraceID(id)) //nolint:errcheck
}

// handleMetrics renders the Prometheus text exposition: serving counters,
// latency histograms split by cache outcome, and per-scheme transport,
// byte-class, storage, graveyard, and trace series. Every label value
// goes through metrics.PromLabel so a hostile scheme name cannot corrupt
// the scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, s.serverCounters(), "provd", "")
	metrics.WriteGauge(w, "provd_epoch", "", float64(s.epoch.Load()))
	metrics.WriteGauge(w, "provd_inflight_queries", "", float64(s.inflight.Load()))
	metrics.WriteGauge(w, "provd_queue_pending", "", float64(len(s.queue)))
	metrics.WriteGauge(w, "provd_queue_capacity", "", float64(cap(s.queue)))
	metrics.WriteGauge(w, "provd_cache_entries", "", float64(s.cache.Len()))
	metrics.WriteGauge(w, "provd_cache_dep_keys", "", float64(s.cache.DepKeys()))
	invals := s.cache.Invalidations()
	for _, reason := range []string{invalClass, invalVID, invalEpoch, invalInflight, invalLRU} {
		metrics.WriteCounter(w, "provd_cache_invalidations_total",
			metrics.PromLabel("reason", reason), invals[reason])
	}
	metrics.WriteGauge(w, "provd_uptime_seconds", "", time.Since(s.start).Seconds())
	for _, name := range s.tenantNames {
		tn := s.tenants[name]
		label := metrics.PromLabel("tenant", name)
		metrics.WriteCounter(w, "provd_tenant_queries_total", label, tn.queries.Load())
		metrics.WriteCounter(w, "provd_tenant_events_total", label, tn.events.Load())
		metrics.WriteGauge(w, "provd_tenant_inflight", label, float64(tn.inflight.Load()))
		metrics.WriteCounter(w, "provd_tenant_rejected_total",
			label+","+metrics.PromLabel("reason", "rate"), tn.rejectedRate.Load())
		metrics.WriteCounter(w, "provd_tenant_rejected_total",
			label+","+metrics.PromLabel("reason", "inflight-quota"), tn.rejectedQuota.Load())
	}
	s.coldLatency.WritePrometheus(w, "provd_query_seconds", `cache="miss"`)
	s.hitLatency.WritePrometheus(w, "provd_query_seconds", `cache="hit"`)
	if tr := s.cfg.Tracer; tr != nil {
		metrics.WriteGauge(w, "provd_traces", "", float64(tr.TraceCount()))
		metrics.WriteGauge(w, "provd_trace_spans", "", float64(tr.SpanCount()))
		metrics.WriteCounter(w, "provd_trace_spans_dropped_total", "", int64(tr.Dropped()))
	}
	for _, name := range s.schemes {
		c := s.cfg.Clusters[name]
		label := metrics.PromLabel("scheme", name)
		ts := c.TransportStats()
		metrics.WritePrometheus(w, ts.Counters(), "provd_transport", label)
		metrics.WriteGauge(w, "provd_storage_bytes", label, float64(c.TotalStorageBytes()))
		metrics.WriteGauge(w, "provd_graveyard_tuples", label, float64(c.GraveyardSize()))
		// Per-class byte attribution: the three classes sum to the
		// transport byte total by construction (see cluster.linkBytes).
		for _, cl := range []struct {
			class string
			bytes int64
		}{{"base", ts.BytesBase}, {"prov", ts.BytesProv}, {"query", ts.BytesQuery}, {"batch", ts.BytesBatch}} {
			metrics.WriteCounter(w, "provd_bytes_total",
				label+","+metrics.PromLabel("class", cl.class), cl.bytes)
		}
		ms := c.MembershipStats()
		metrics.WritePrometheus(w, ms.Counters(), "provd_membership", label)
		metrics.WriteGauge(w, "provd_membership_replicas", label, float64(ms.Replicas))
		metrics.WriteGauge(w, "provd_rebalance_seconds", label, ms.RebalanceSeconds)
		ready := 0.0
		if c.Ready() {
			ready = 1
		}
		metrics.WriteGauge(w, "provd_ready", label, ready)
		if ds := c.DurabilityStats(); ds.Enabled {
			metrics.WriteCounter(w, "provd_wal_records_total", label, ds.WALRecords)
			metrics.WriteCounter(w, "provd_wal_bytes_total", label, ds.WALBytes)
			metrics.WriteCounter(w, "provd_snapshots_total", label, ds.Snapshots)
			metrics.WriteCounter(w, "provd_snapshot_bytes_total", label, ds.SnapshotBytes)
			metrics.WriteGauge(w, "provd_snapshot_age_seconds", label, ds.SnapshotAgeSeconds)
			metrics.WriteGauge(w, "provd_recovery_replayed_records", label, float64(ds.ReplayedRecords))
			metrics.WriteCounter(w, "provd_recovery_torn_records_total", label, ds.TornRecords)
			metrics.WriteGauge(w, "provd_recovery_seconds", label, ds.RecoverySeconds)
			metrics.WriteCounter(w, "provd_durability_errors_total", label, ds.Errors)
		}
	}
}
