package provserve

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestLoadReportRendersOverflowHonestly is the regression test for the
// quantile-clamping bug: a tail quantile that landed past the last
// histogram bound must render as ">bound", never as a fabricated finite
// latency, and the +Inf value must not overflow time.Duration.
func TestLoadReportRendersOverflowHonestly(t *testing.T) {
	if d, over := quantileDuration(math.Inf(1)); !over || d != 0 {
		t.Fatalf("quantileDuration(+Inf) = (%v, %v), want (0, true)", d, over)
	}
	if d, over := quantileDuration(0.25); over || d != 250*time.Millisecond {
		t.Fatalf("quantileDuration(0.25) = (%v, %v), want (250ms, false)", d, over)
	}

	r := &LoadReport{
		Requests:  100,
		Elapsed:   time.Second,
		QPS:       100,
		P50:       2 * time.Millisecond,
		P99Over:   true,
		TailBound: 30 * time.Second,
	}
	out := r.String()
	if !strings.Contains(out, "p99 >30s") {
		t.Fatalf("overflowed p99 not rendered as >30s:\n%s", out)
	}
	if !strings.Contains(out, "p50 2ms") {
		t.Fatalf("finite p50 rendered wrong:\n%s", out)
	}
}
