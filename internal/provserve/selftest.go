package provserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"provcompress/internal/trace"
	"provcompress/internal/workload"
)

// SelfTestConfig tunes the end-to-end smoke run.
type SelfTestConfig struct {
	// BaseURL is the root of a running daemon that was booted with all
	// the schemes listed in Schemes.
	BaseURL string
	// Schemes are the scheme names to query (default: advanced only).
	Schemes []string
	// Nodes is the chain length of the daemon's topology (used to pick
	// the longest route for injected packets; default 5).
	Nodes int
	// Packets is how many packets to inject (default 12).
	Packets int
	// LoadRequests sizes the closing benchmark phase (default 400).
	LoadRequests int
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

// SelfTest exercises a running daemon end to end over real HTTP — the
// `make serve-smoke` gate:
//
//  1. inject a packet workload over POST /v1/events and quiesce;
//  2. run one cold query per scheme and assert it returns provenance;
//  3. repeat the advanced query and assert it is served from cache at
//     least 10x faster (server-side) than the cold run;
//  4. scrape /metrics and assert the serving counters are non-zero;
//  5. run a short Zipf-driven load phase and report QPS + p50/p95/p99.
//
// It returns an error on the first violated expectation.
func SelfTest(cfg SelfTestConfig) error {
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"advanced"}
	}
	if cfg.Nodes < 2 {
		cfg.Nodes = 5
	}
	if cfg.Packets <= 0 {
		cfg.Packets = 12
	}
	if cfg.LoadRequests <= 0 {
		cfg.LoadRequests = 400
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// 1. Inject packets end to end across the chain (n0 -> n<last>) plus
	// some shorter flows, then quiesce so queries see full derivations.
	last := fmt.Sprintf("n%d", cfg.Nodes-1)
	var events []tupleSpec
	for i := 0; i < cfg.Packets; i++ {
		src, dst := "n0", last
		if i%3 == 1 && cfg.Nodes > 2 {
			dst = fmt.Sprintf("n%d", cfg.Nodes/2)
		}
		payload := workload.Payload(int64(i), 48)
		events = append(events, tupleSpec{Rel: "packet", Args: []any{src, src, dst, payload}})
	}
	body, err := json.Marshal(eventsRequest{Events: events, WaitMS: 15000})
	if err != nil {
		return err
	}
	resp, err := client.Post(cfg.BaseURL+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("selftest: inject: %w", err)
	}
	var evResp eventsResponse
	err = json.NewDecoder(resp.Body).Decode(&evResp)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest: inject: status %s (decode err %v)", resp.Status, err)
	}
	if evResp.Accepted != len(events) || !evResp.Quiesced {
		return fmt.Errorf("selftest: inject accepted %d/%d, quiesced=%v", evResp.Accepted, len(events), evResp.Quiesced)
	}
	fmt.Fprintf(cfg.Out, "injected %d events over HTTP (epoch %d)\n", evResp.Accepted, evResp.Epoch)

	// 2. One cold query per scheme for the first end-to-end packet.
	payload0 := workload.Payload(0, 48)
	target := tupleSpec{Rel: "recv", Args: []any{last, "n0", last, payload0}}
	coldNS := map[string]int64{}
	for _, scheme := range cfg.Schemes {
		qr, status, err := getQuery(client, cfg.BaseURL, scheme, target)
		if err != nil {
			return fmt.Errorf("selftest: cold query (%s): %w", scheme, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("selftest: cold query (%s): status %d", scheme, status)
		}
		if len(qr.Trees) == 0 {
			return fmt.Errorf("selftest: cold query (%s): no provenance trees", scheme)
		}
		if qr.Cached {
			return fmt.Errorf("selftest: first query (%s) claimed a cache hit", scheme)
		}
		coldNS[scheme] = qr.ServeNS
		fmt.Fprintf(cfg.Out, "cold query (%s): %d tree(s), %d hops, %.2fms server-side\n",
			scheme, len(qr.Trees), qr.Hops, float64(qr.ServeNS)/1e6)

		// When the daemon runs with -trace, the query names its span
		// tree; it must be fetchable as valid Chrome trace JSON.
		if qr.TraceID != "" {
			tresp, err := client.Get(cfg.BaseURL + "/v1/trace/" + qr.TraceID)
			if err != nil {
				return fmt.Errorf("selftest: trace fetch (%s): %w", scheme, err)
			}
			tbody, err := io.ReadAll(tresp.Body)
			tresp.Body.Close()
			if err != nil || tresp.StatusCode != http.StatusOK {
				return fmt.Errorf("selftest: trace fetch (%s): status %s err %v", scheme, tresp.Status, err)
			}
			n, err := trace.ValidateChrome(tbody)
			if err != nil {
				return fmt.Errorf("selftest: trace %s (%s) is not valid Chrome JSON: %w", qr.TraceID, scheme, err)
			}
			fmt.Fprintf(cfg.Out, "trace %s (%s): %d spans, valid Chrome trace JSON\n", qr.TraceID, scheme, n)
		}
	}

	// 3. The same query repeated must hit the cache and be >=10x faster
	// server-side than its cold run (take the best of a few repeats so a
	// scheduler hiccup cannot fail the gate spuriously).
	scheme := cfg.Schemes[0]
	var bestHitNS int64 = 1 << 62
	for i := 0; i < 5; i++ {
		qr, status, err := getQuery(client, cfg.BaseURL, scheme, target)
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("selftest: warm query %d: status %d err %v", i, status, err)
		}
		if !qr.Cached {
			return fmt.Errorf("selftest: repeat query %d (%s) missed the cache", i, scheme)
		}
		if qr.ServeNS < bestHitNS {
			bestHitNS = qr.ServeNS
		}
	}
	if bestHitNS*10 > coldNS[scheme] {
		return fmt.Errorf("selftest: cache hit not >=10x faster: cold %dns vs best hit %dns", coldNS[scheme], bestHitNS)
	}
	fmt.Fprintf(cfg.Out, "cached query (%s): %.1fx faster than cold (%.3fms -> %.3fms)\n",
		scheme, float64(coldNS[scheme])/float64(bestHitNS),
		float64(coldNS[scheme])/1e6, float64(bestHitNS)/1e6)

	// 4. /metrics must expose non-zero serving counters.
	mresp, err := client.Get(cfg.BaseURL + "/metrics")
	if err != nil {
		return fmt.Errorf("selftest: metrics scrape: %w", err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil || mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest: metrics scrape: status %s err %v", mresp.Status, err)
	}
	exposition := string(mbody)
	for _, counter := range []string{"provd_events_total", "provd_queries_total", "provd_cache_hits_total"} {
		v, ok := promValue(exposition, counter)
		if !ok {
			return fmt.Errorf("selftest: /metrics missing %s", counter)
		}
		if v <= 0 {
			return fmt.Errorf("selftest: /metrics %s = %g, want > 0", counter, v)
		}
	}
	if !strings.Contains(exposition, "provd_query_seconds_bucket") {
		return fmt.Errorf("selftest: /metrics missing the latency histogram")
	}
	fmt.Fprintf(cfg.Out, "metrics scrape ok (%d bytes, cache hits visible)\n", len(mbody))

	// 5. Benchmark phase: Zipf-skewed load, report throughput + tails.
	report, err := RunLoad(LoadConfig{
		BaseURL:     cfg.BaseURL,
		Scheme:      scheme,
		Requests:    cfg.LoadRequests,
		Concurrency: 8,
		Alpha:       0.9,
		Seed:        1,
	})
	if err != nil {
		return fmt.Errorf("selftest: load phase: %w", err)
	}
	if report.Errors > 0 {
		return fmt.Errorf("selftest: load phase had %d errors:\n%s", report.Errors, report)
	}
	fmt.Fprintf(cfg.Out, "load phase: %s\n", report)
	return nil
}

// getQuery issues one GET /v1/query and decodes the reply.
func getQuery(client *http.Client, baseURL, scheme string, spec tupleSpec) (queryResponse, int, error) {
	args, err := json.Marshal(spec.Args)
	if err != nil {
		return queryResponse{}, 0, err
	}
	v := url.Values{}
	v.Set("rel", spec.Rel)
	v.Set("args", string(args))
	if scheme != "" {
		v.Set("scheme", scheme)
	}
	resp, err := client.Get(baseURL + "/v1/query?" + v.Encode())
	if err != nil {
		return queryResponse{}, 0, err
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil && resp.StatusCode == http.StatusOK {
		return queryResponse{}, resp.StatusCode, err
	}
	return qr, resp.StatusCode, nil
}

// promValue scans a text exposition for an unlabeled sample of the named
// series and returns its value.
func promValue(exposition, name string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
