package provserve

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"provcompress/internal/cluster"
	"provcompress/internal/types"
)

// This file is the oracle-backed correctness suite for the keyed cache:
// seeded random insert/delete/query interleavings run against a live
// server, and every answer the server serves — cached or cold — must be
// byte-identical to a fresh, cacheless recomputation on the same cluster
// (the oracle). A cache that ever serves a tree the current cluster state
// would not reproduce fails here, whichever invalidation path it slipped
// through.

// oracleOp is one step of a generated interleaving. Ops are plain values
// so a failing case dumps as a replayable script: shrink by deleting
// lines and re-running with the same seed space.
type oracleOp struct {
	Kind    string // "inject", "delete", "insert", "query"
	Src     string
	Dst     string
	Payload string
}

func (o oracleOp) String() string {
	switch o.Kind {
	case "insert":
		return fmt.Sprintf("insert link %s->phantom", o.Src)
	case "query":
		return fmt.Sprintf("query recv(@%s,%s,%s,%s)", o.Dst, o.Src, o.Dst, o.Payload)
	default:
		return fmt.Sprintf("%s packet(@%s,%s,%s,%s)", o.Kind, o.Src, o.Src, o.Dst, o.Payload)
	}
}

// oracleCase generates one seeded interleaving over a small payload pool.
// Every payload has a fixed (src,dst) pair so queries know their output
// tuple; queries may run before the payload's packet is injected, which
// exercises cached-empty-answer invalidation.
func oracleCase(rng *rand.Rand, id int) []oracleOp {
	pairs := [][2]string{{"n0", "n2"}, {"n2", "n0"}, {"n1", "n2"}, {"n0", "n1"}}
	pool := make([]oracleOp, 3)
	for i := range pool {
		p := pairs[rng.Intn(len(pairs))]
		pool[i] = oracleOp{Src: p[0], Dst: p[1], Payload: fmt.Sprintf("c%dp%d", id, i)}
	}
	var ops []oracleOp
	injected := []oracleOp{}
	steps := 5 + rng.Intn(5)
	for i := 0; i < steps; i++ {
		pick := pool[rng.Intn(len(pool))]
		switch r := rng.Intn(10); {
		case r < 4:
			pick.Kind = "inject"
			ops = append(ops, pick)
			injected = append(injected, pick)
		case r < 6 && len(injected) > 0:
			del := injected[rng.Intn(len(injected))]
			del.Kind = "delete"
			ops = append(ops, del)
		case r < 7:
			ops = append(ops, oracleOp{Kind: "insert", Src: pick.Src})
		default:
			pick.Kind = "query"
			ops = append(ops, pick)
		}
	}
	// Always end with a query per payload so every case checks at least
	// the pool's final answers (repeat queries exercise cache hits).
	for _, p := range pool {
		p.Kind = "query"
		ops = append(ops, p)
	}
	return ops
}

// runOracleOps executes an interleaving, comparing every query answer
// against the oracle. Returns a diagnostic on the first divergence.
func runOracleOps(t *testing.T, c *cluster.Cluster, baseURL string, ops []oracleOp, caseID int) {
	t.Helper()
	for i, op := range ops {
		switch op.Kind {
		case "inject":
			er := postEvents(t, baseURL, 10000, packetSpec(op.Src, op.Dst, op.Payload))
			if er.Accepted != 1 || !er.Quiesced {
				t.Fatalf("case %d op %d (%s): inject = %+v", caseID, i, op, er)
			}
		case "delete":
			pktT := types.NewTuple("packet", types.String(op.Src), types.String(op.Src),
				types.String(op.Dst), types.String(op.Payload))
			if err := c.DeleteSlow(pktT); err != nil {
				t.Fatalf("case %d op %d (%s): %v", caseID, i, op, err)
			}
		case "insert":
			// A link to a phantom endpoint: durable, class-irrelevant, but
			// its VID key fires through the full invalidation path.
			link := types.NewTuple("link", types.String(op.Src), types.String(op.Src),
				types.String("phantom-"+op.Payload))
			if err := c.InsertSlow(link); err != nil {
				t.Fatalf("case %d op %d (%s): %v", caseID, i, op, err)
			}
			if err := c.Quiesce(5 * time.Second); err != nil {
				t.Fatalf("case %d op %d (%s): quiesce: %v", caseID, i, op, err)
			}
		case "query":
			spec := tupleSpec{Rel: "recv", Args: []any{op.Dst, op.Src, op.Dst, op.Payload}}
			qr, resp := get(t, baseURL, spec)
			if resp.StatusCode != 200 {
				t.Fatalf("case %d op %d (%s): query status %d", caseID, i, op, resp.StatusCode)
			}
			served := append([]string(nil), qr.Trees...)
			sort.Strings(served)

			out, err := spec.tuple()
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Query(out, types.ZeroID, 10*time.Second)
			if err != nil {
				t.Fatalf("case %d op %d (%s): oracle query: %v", caseID, i, op, err)
			}
			oracle := make([]string, len(res.Trees))
			for j, tr := range res.Trees {
				oracle[j] = tr.String()
			}
			sort.Strings(oracle)

			if strings.Join(served, "\x00") != strings.Join(oracle, "\x00") {
				var b strings.Builder
				fmt.Fprintf(&b, "case %d diverged at op %d (cached=%v)\n", caseID, i, qr.Cached)
				fmt.Fprintf(&b, "replay script (ops executed up to the divergence):\n")
				for j := 0; j <= i; j++ {
					fmt.Fprintf(&b, "  %2d: %s\n", j, ops[j])
				}
				fmt.Fprintf(&b, "served (%d trees):\n", len(served))
				for _, s := range served {
					fmt.Fprintf(&b, "  %s\n", s)
				}
				fmt.Fprintf(&b, "oracle (%d trees):\n", len(oracle))
				for _, s := range oracle {
					fmt.Fprintf(&b, "  %s\n", s)
				}
				t.Fatal(b.String())
			}
		}
	}
}

// TestCacheOracleProperty replays ≥500 seeded interleavings (cases split
// across the three compression schemes) against the oracle. One cluster
// and server persist per scheme: payloads are unique per case, so cases
// compound into a long mixed history — invalidation has to stay correct
// under accumulation, not just from a cold start.
func TestCacheOracleProperty(t *testing.T) {
	const casesPerScheme = 170 // ×3 schemes = 510
	for si, scheme := range []string{"advanced", "basic", "exspan"} {
		si, scheme := si, scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			cases := casesPerScheme
			if testing.Short() {
				cases = 20
			}
			c := newTestCluster(t, 3, scheme)
			s, ts := newTestServer(t, Config{
				Clusters:      map[string]*cluster.Cluster{scheme: c},
				DefaultScheme: scheme,
			})
			rng := rand.New(rand.NewSource(0x5eed0 + int64(si)))
			for cs := 0; cs < cases; cs++ {
				runOracleOps(t, c, ts.URL, oracleCase(rng, cs), cs)
			}
			hits, _, _, _ := s.cache.Stats()
			if hits == 0 {
				t.Fatal("interleavings produced zero cache hits; the suite is not exercising the cache")
			}
		})
	}
}
