package provserve

import "testing"

func TestEpochCacheBasics(t *testing.T) {
	c := newEpochCache(2)
	if _, ok := c.Get("a", 0); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", answer{Hops: 1, Epoch: 0})
	if ans, ok := c.Get("a", 0); !ok || ans.Hops != 1 {
		t.Fatalf("Get(a) = %+v, %v", ans, ok)
	}
	// An epoch bump makes the entry unservable and drops it.
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("stale entry served across epoch bump")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not dropped, len=%d", c.Len())
	}
	_, _, stale, _ := c.Stats()
	if stale != 1 {
		t.Fatalf("stale drops = %d, want 1", stale)
	}
}

func TestEpochCacheLRUEviction(t *testing.T) {
	c := newEpochCache(2)
	c.Put("a", answer{Hops: 1})
	c.Put("b", answer{Hops: 2})
	// Touch "a" so "b" is the eviction victim.
	if _, ok := c.Get("a", 0); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", answer{Hops: 3})
	if _, ok := c.Get("b", 0); ok {
		t.Fatal("LRU victim b still cached")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k, 0); !ok {
			t.Fatalf("%s evicted, want resident", k)
		}
	}
	_, _, _, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
}

func TestEpochCacheReplace(t *testing.T) {
	c := newEpochCache(2)
	c.Put("a", answer{Hops: 1, Epoch: 0})
	c.Put("a", answer{Hops: 9, Epoch: 3})
	if c.Len() != 1 {
		t.Fatalf("len = %d after replacing a key, want 1", c.Len())
	}
	if ans, ok := c.Get("a", 3); !ok || ans.Hops != 9 {
		t.Fatalf("Get(a, 3) = %+v, %v; want replaced answer", ans, ok)
	}
}

func TestEpochCacheMinCapacity(t *testing.T) {
	c := newEpochCache(0) // clamps to 1
	c.Put("a", answer{})
	c.Put("b", answer{})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamp)", c.Len())
	}
}
