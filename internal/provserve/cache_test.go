package provserve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestDepCacheBasics(t *testing.T) {
	c := newDepCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	// "a" depends on keys {2, 5}; "b" only on {8}.
	c.Put("a", answer{Hops: 1, Keys: []uint64{2, 5}})
	c.Put("b", answer{Hops: 2, Keys: []uint64{8}})
	if ans, ok := c.Get("a"); !ok || ans.Hops != 1 {
		t.Fatalf("Get(a) = %+v, %v", ans, ok)
	}
	// Firing key 5 (bit 0 set = VID key) evicts "a" and only "a".
	if n := c.Invalidate([]uint64{5}); n != 1 {
		t.Fatalf("Invalidate(5) evicted %d, want 1", n)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry served after its key fired")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("independent entry evicted")
	}
	if got := c.Invalidations()[invalVID]; got != 1 {
		t.Fatalf("vid invalidations = %d, want 1", got)
	}
	// Firing key 2 (bit 0 clear = class key) finds no dependents left.
	if n := c.Invalidate([]uint64{2}); n != 0 {
		t.Fatalf("Invalidate(2) evicted %d, want 0", n)
	}
}

func TestDepCacheInflightDrop(t *testing.T) {
	c := newDepCache(4)
	seq := c.Admit()
	// Key 6 fires while the walk is (notionally) running.
	c.Invalidate([]uint64{6})
	// The in-flight answer touched key 6: dropped at Put.
	c.Put("a", answer{Keys: []uint64{4, 6}, AdmitSeq: seq})
	if _, ok := c.Get("a"); ok {
		t.Fatal("answer admitted before a key firing was served")
	}
	_, _, stale, _ := c.Stats()
	if stale != 1 {
		t.Fatalf("stale drops = %d, want 1", stale)
	}
	if got := c.Invalidations()[invalInflight]; got != 1 {
		t.Fatalf("inflight invalidations = %d, want 1", got)
	}
	// An answer whose keys did not fire since admission is kept.
	c.Put("b", answer{Keys: []uint64{4}, AdmitSeq: seq})
	if _, ok := c.Get("b"); !ok {
		t.Fatal("untouched in-flight answer dropped")
	}
	// A fresh admission after the firing may cache the same keys.
	c.Put("c", answer{Keys: []uint64{6}, AdmitSeq: c.Admit()})
	if _, ok := c.Get("c"); !ok {
		t.Fatal("re-admitted answer dropped")
	}
}

func TestDepCacheInvalidateAll(t *testing.T) {
	c := newDepCache(4)
	seq := c.Admit()
	c.Put("a", answer{Keys: []uint64{2}, AdmitSeq: seq})
	c.Put("b", answer{Keys: []uint64{4}, AdmitSeq: seq})
	if n := c.InvalidateAll(invalEpoch); n != 2 {
		t.Fatalf("InvalidateAll evicted %d, want 2", n)
	}
	if c.Len() != 0 || c.DepKeys() != 0 {
		t.Fatalf("len=%d depKeys=%d after InvalidateAll, want 0/0", c.Len(), c.DepKeys())
	}
	if got := c.Invalidations()[invalEpoch]; got != 2 {
		t.Fatalf("epoch invalidations = %d, want 2", got)
	}
	// The floor rose: answers admitted before the sweep are dropped even
	// for keys the lastInval map no longer tracks.
	c.Put("c", answer{Keys: []uint64{1234}, AdmitSeq: seq})
	if _, ok := c.Get("c"); ok {
		t.Fatal("pre-sweep in-flight answer served after InvalidateAll")
	}
}

func TestDepCacheLRUEviction(t *testing.T) {
	c := newDepCache(2)
	seq := c.Admit()
	c.Put("a", answer{Hops: 1, Keys: []uint64{2}, AdmitSeq: seq})
	c.Put("b", answer{Hops: 2, Keys: []uint64{4}, AdmitSeq: seq})
	// Touch "a" so "b" is the eviction victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", answer{Hops: 3, Keys: []uint64{6}, AdmitSeq: seq})
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU victim b still cached")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want resident", k)
		}
	}
	_, _, _, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	// The victim was unindexed: firing its key finds nothing.
	if n := c.Invalidate([]uint64{4}); n != 0 {
		t.Fatalf("Invalidate(4) evicted %d after LRU removal, want 0", n)
	}
}

func TestDepCacheReplace(t *testing.T) {
	c := newDepCache(2)
	c.Put("a", answer{Hops: 1, Keys: []uint64{2}})
	c.Put("a", answer{Hops: 9, Keys: []uint64{4}})
	if c.Len() != 1 {
		t.Fatalf("len = %d after replacing a key, want 1", c.Len())
	}
	if ans, ok := c.Get("a"); !ok || ans.Hops != 9 {
		t.Fatalf("Get(a) = %+v, %v; want replaced answer", ans, ok)
	}
	// The replacement re-tagged the entry: the old key is dead, the new
	// one evicts.
	if n := c.Invalidate([]uint64{2}); n != 0 {
		t.Fatalf("stale tag still indexed: evicted %d", n)
	}
	if n := c.Invalidate([]uint64{4}); n != 1 {
		t.Fatalf("replacement tag not indexed: evicted %d", n)
	}
}

func TestDepCacheMinCapacity(t *testing.T) {
	c := newDepCache(0) // clamps to 1
	c.Put("a", answer{})
	c.Put("b", answer{})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (capacity clamp)", c.Len())
	}
}

// TestDepCacheHammer drives concurrent Get/Put/Invalidate/InvalidateAll
// traffic through the cache under the race detector (make verify runs the
// suite with -race). Beyond freedom from data races it checks the one
// invariant observable mid-storm: an answer must never be served after
// one of its keys fired post-admission — enforced here by making each
// worker invalidate a key and then verify entries tagged with it are
// gone.
func TestDepCacheHammer(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
		keys    = 32
	)
	c := newDepCache(64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				k := uint64(rng.Intn(keys))
				name := fmt.Sprintf("e%d", rng.Intn(96))
				switch rng.Intn(10) {
				case 0:
					c.InvalidateAll(invalEpoch)
				case 1, 2:
					c.Invalidate([]uint64{k})
					// Eager eviction is synchronous: no entry tagged with k
					// may survive the call.
					if _, ok := c.Get(fmt.Sprintf("tag%d", k)); ok {
						t.Errorf("entry tag%d served after its key %d fired", k, k)
						return
					}
				case 3, 4, 5:
					seq := c.Admit()
					// Entries named tag<k> are tagged exactly {k}, so the
					// invalidate arm above can check them.
					c.Put(fmt.Sprintf("tag%d", k), answer{Keys: []uint64{k}, AdmitSeq: seq})
				case 6:
					seq := c.Admit()
					c.Put(name, answer{Keys: []uint64{k, k + keys}, AdmitSeq: seq})
				default:
					c.Get(name)
				}
			}
		}(w)
	}
	wg.Wait()
	c.Len()
	c.DepKeys()
	c.Stats()
	c.Invalidations()
}
